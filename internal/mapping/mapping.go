// Package mapping is the RESPARC compiler: it enumerates an SNN's
// connectivity matrices across Memristive Crossbar Arrays, packs MCAs into
// mPEs and mPEs into NeuroCells, and reports the utilization and
// time-multiplexing statistics that drive the energy/performance model.
//
// Dense layers partition into a grid of fully used MCA tiles (§3.1.1,
// Fig 5): a neuron whose fan-in exceeds the MCA rows is computed by
// time-multiplexing several MCA column currents onto the neuron. Sparse
// (convolutional) layers use the input-sharing packing of §3.1.1: output
// neurons at the same spatial location share their receptive field, so the
// mapper groups outputs to maximize cross-point utilization; utilization
// still falls as the MCA grows — the effect behind Fig 12(c).
package mapping

import (
	"fmt"
	"sort"

	"resparc/internal/device"
	"resparc/internal/snn"
)

// Config selects the crossbar size and the fixed hierarchy parameters
// (Fig 8: 4 MCAs per mPE, 4x4 mPEs per NeuroCell).
type Config struct {
	// MCASize is the square crossbar dimension N (rows == cols). The paper
	// evaluates 32, 64 (default) and 128.
	MCASize int
	// MCAsPerMPE is the number of crossbars per macro processing engine.
	MCAsPerMPE int
	// MPEsPerNC is the number of mPEs per NeuroCell.
	MPEsPerNC int
	// Tech is the memristive technology; MCASize must not exceed its
	// reliable maximum.
	Tech device.Technology
	// DisableInputSharing maps each sparse-layer unit (one conv location /
	// one pooled output) to its own crossbar block instead of packing units
	// with overlapping receptive fields together — the naive mapping
	// §3.1.1 argues against. Ablation only.
	DisableInputSharing bool
	// SparseDenseMaxFill routes dense layers whose non-zero weight fraction
	// is at or below this value through the sparse unit packer (one unit
	// per output neuron, rows for its non-zero inputs only) — §3.1.1's
	// sparse-connectivity optimization applied to pruned MLPs. Zero
	// disables the feature (dense layers always tile densely).
	//
	// Input sharing only pays off for STRUCTURED sparsity (outputs whose
	// non-zero inputs overlap, e.g. block-pruned matrices); unstructured
	// random pruning has no input locality, so its per-output units share
	// almost nothing and dense tiling remains the better mapping — the
	// classic crossbar argument for structured pruning.
	SparseDenseMaxFill float64
}

// DefaultConfig returns the paper's default: 64x64 Ag-Si MCAs, 4 per mPE,
// 16 mPEs per NeuroCell.
func DefaultConfig() Config {
	return Config{MCASize: 64, MCAsPerMPE: 4, MPEsPerNC: 16, Tech: device.AgSi}
}

// Validate checks the configuration against the technology constraint.
func (c Config) Validate() error {
	if c.MCASize < 2 {
		return fmt.Errorf("mapping: MCA size %d", c.MCASize)
	}
	if c.MCAsPerMPE < 1 || c.MPEsPerNC < 1 {
		return fmt.Errorf("mapping: hierarchy %d MCAs/mPE, %d mPEs/NC", c.MCAsPerMPE, c.MPEsPerNC)
	}
	if err := c.Tech.Validate(); err != nil {
		return err
	}
	if c.MCASize > c.Tech.MaxSize {
		return fmt.Errorf("mapping: MCA size %d exceeds %s reliable maximum %d (technology-aware constraint)",
			c.MCASize, c.Tech.Name, c.Tech.MaxSize)
	}
	return nil
}

// MCA is one allocated crossbar: the input neurons wired to its rows, the
// output neurons wired to its columns, and the programmed cross-point count.
type MCA struct {
	// Layer is the index of the SNN layer this MCA belongs to.
	Layer int
	// Group identifies the output-neuron group: all MCAs of a group feed
	// the same neurons and are integrated one after another
	// (time-multiplexed, Fig 5b); len(group) == MuxDegree.
	Group int
	// Inputs are the flat presynaptic indices on the rows (<= MCASize).
	Inputs []int32
	// Outputs are the flat postsynaptic indices on the columns (<= MCASize).
	Outputs []int32
	// Taps is the number of programmed (used) cross-points.
	Taps int
	// MPE and NC are the placement indices assigned by packing; Slot is the
	// crossbar slot within the mPE ([0, MCAsPerMPE)). Together (MPE, Slot)
	// name the physical crossbar — the coordinate fault campaigns key on.
	MPE, NC, Slot int
}

// Utilization is the fraction of the physical array occupied by programmed
// cross-points.
func (m *MCA) Utilization(size int) float64 {
	return float64(m.Taps) / float64(size*size)
}

// LayerMapping is the allocation of one SNN layer.
type LayerMapping struct {
	Layer *snn.Layer
	// MCASize is this layer's crossbar dimension. Map sets it uniformly
	// from Config.MCASize; mappings realized from a heterogeneous Placement
	// carry a different size per layer. Zero (hand-constructed mappings
	// predating the field) falls back to the config via Mapping.LayerSize.
	MCASize int
	MCAs    []MCA
	// Groups is the number of output groups; MuxDegree is the maximum
	// number of MCAs feeding one group (the time-multiplexing degree).
	Groups    int
	MuxDegree int
	// Utilization is taps / (N² * len(MCAs)).
	Utilization float64
	// MPEFirst/MPELast and NCFirst/NCLast are the placement ranges
	// (inclusive-exclusive on Last+1... inclusive indices).
	MPEFirst, MPELast int
	NCFirst, NCLast   int
}

// Mapping is a complete placement of a network for one configuration.
type Mapping struct {
	Net    *snn.Network
	Cfg    Config
	Layers []LayerMapping
	// Totals.
	MCAs, MPEs, NCs int
	// SpareFirst/Spares delimit the spare-mPE pool appended by the
	// fault-aware pass (see RemapFaulty); zero Spares means no pool.
	SpareFirst, Spares int
	// spareCursor is the next unassigned spare slot (slot-major).
	spareCursor int
}

// Map places the network onto the hierarchy. Layers are allocated in order;
// MCAs pack densely into mPEs (4 per mPE) and mPEs into NeuroCells, with
// every layer starting on a fresh mPE (a layer's neurons live with its
// MCAs). Every layer uses the uniform cfg.MCASize; heterogeneous per-layer
// sizes come from a Placement (see Mapper and Placement.Apply).
func Map(net *snn.Network, cfg Config) (*Mapping, error) {
	return mapLayers(net, cfg, nil, nil)
}

// mapLayers is the generalized placement core behind Map and
// Placement.Apply: sizes[li], when non-zero, overrides cfg.MCASize for
// layer li (heterogeneous crossbars), and ncAlign[li] starts layer li on a
// fresh NeuroCell boundary instead of merely a fresh mPE — the placement
// knob that decides whether consecutive layers share a NeuroCell (and so
// whether their traffic rides the switch networks or the global bus, see
// TransportOf). Nil slices reproduce Map exactly.
func mapLayers(net *snn.Network, cfg Config, sizes []int, ncAlign []bool) (*Mapping, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(net.Layers) == 0 {
		return nil, fmt.Errorf("mapping: network %q has no layers", net.Name)
	}
	m := &Mapping{Net: net, Cfg: cfg}
	mpeCursor := 0
	for li, l := range net.Layers {
		n := cfg.MCASize
		if li < len(sizes) && sizes[li] > 0 {
			n = sizes[li]
		}
		if n < 2 || n > cfg.Tech.MaxSize {
			return nil, fmt.Errorf("mapping: layer %d MCA size %d outside [2,%d] for %s",
				li, n, cfg.Tech.MaxSize, cfg.Tech.Name)
		}
		lm, err := layerMappingFor(li, l, cfg, n)
		if err != nil {
			return nil, err
		}
		if li < len(ncAlign) && ncAlign[li] && mpeCursor%cfg.MPEsPerNC != 0 {
			mpeCursor += cfg.MPEsPerNC - mpeCursor%cfg.MPEsPerNC
		}
		// Pack this layer's MCAs into mPEs starting at a fresh mPE.
		lm.MPEFirst = mpeCursor
		for i := range lm.MCAs {
			lm.MCAs[i].MPE = mpeCursor + i/cfg.MCAsPerMPE
			lm.MCAs[i].NC = lm.MCAs[i].MPE / cfg.MPEsPerNC
			lm.MCAs[i].Slot = i % cfg.MCAsPerMPE
		}
		used := (len(lm.MCAs) + cfg.MCAsPerMPE - 1) / cfg.MCAsPerMPE
		mpeCursor += used
		lm.MPELast = mpeCursor - 1
		lm.NCFirst = lm.MPEFirst / cfg.MPEsPerNC
		lm.NCLast = lm.MPELast / cfg.MPEsPerNC
		// Utilization over allocated arrays.
		taps := 0
		for i := range lm.MCAs {
			taps += lm.MCAs[i].Taps
		}
		lm.Utilization = float64(taps) / float64(n*n*len(lm.MCAs))
		m.Layers = append(m.Layers, lm)
	}
	m.MPEs = mpeCursor
	m.NCs = (mpeCursor + cfg.MPEsPerNC - 1) / cfg.MPEsPerNC
	for i := range m.Layers {
		m.MCAs += len(m.Layers[i].MCAs)
	}
	return m, nil
}

// layerMappingFor maps one layer onto size-n crossbars, position-free (no
// mPE/NC assignment yet). Within-layer packing is independent of where the
// layer lands: every layer starts on a fresh mPE, so MCA i always occupies
// relative mPE i/MCAsPerMPE — the property the mapper's cost model exploits
// to cache per-(layer, size) statistics.
func layerMappingFor(li int, l *snn.Layer, cfg Config, n int) (LayerMapping, error) {
	var lm LayerMapping
	var err error
	switch l.Kind {
	case snn.DenseLayer:
		if cfg.SparseDenseMaxFill > 0 && denseFill(l) <= cfg.SparseDenseMaxFill {
			lm = packUnits(li, denseUnits(l), cfg, n)
		} else {
			lm = mapDense(li, l, n)
		}
	case snn.ConvLayer, snn.PoolLayer:
		lm, err = mapSparse(li, l, cfg, n)
		if err != nil {
			return LayerMapping{}, err
		}
	default:
		return LayerMapping{}, fmt.Errorf("mapping: layer %d unknown kind", li)
	}
	lm.Layer = l
	lm.MCASize = n
	return lm, nil
}

// LayerSize returns layer li's crossbar dimension: the per-layer size when
// the mapping carries one, the uniform Config.MCASize otherwise. Consumers
// that model or build physical arrays (core, neurocell, repair, fault
// surveys) must size per layer through this instead of reaching into
// Cfg.MCASize, or heterogeneous placements would mis-model the hardware.
func (m *Mapping) LayerSize(li int) int {
	if s := m.Layers[li].MCASize; s > 0 {
		return s
	}
	return m.Cfg.MCASize
}

// mapDense tiles the Out x In connectivity matrix with N x N blocks
// (Fig 5b). Row blocks of one column stripe share an output group and are
// time-multiplexed onto its neurons.
func mapDense(li int, l *snn.Layer, n int) LayerMapping {
	in, out := l.InSize(), l.OutSize()
	colBlocks := (out + n - 1) / n
	rowBlocks := (in + n - 1) / n
	lm := LayerMapping{Groups: colBlocks, MuxDegree: rowBlocks}
	group := 0
	for cb := 0; cb < colBlocks; cb++ {
		o0 := cb * n
		o1 := min(o0+n, out)
		outputs := rangeSlice(o0, o1)
		for rb := 0; rb < rowBlocks; rb++ {
			i0 := rb * n
			i1 := min(i0+n, in)
			lm.MCAs = append(lm.MCAs, MCA{
				Layer:   li,
				Group:   group,
				Inputs:  rangeSlice(i0, i1),
				Outputs: outputs,
				Taps:    (i1 - i0) * (o1 - o0),
			})
		}
		group++
	}
	return lm
}

// unit is the indivisible packing element of the sparse mapper: a set of
// output neurons sharing one input set. For convolutions a unit is one
// spatial location (all output channels share the receptive field — the
// input-sharing of §3.1.1); for pooling a unit is a single output neuron
// (windows are disjoint, nothing is shared).
type unit struct {
	inputs  []int32
	outputs []int32
	taps    int
}

// mapSparse packs convolution/pool outputs into MCAs with input sharing.
func mapSparse(li int, l *snn.Layer, cfg Config, n int) (LayerMapping, error) {
	units, err := unitsOf(l)
	if err != nil {
		return LayerMapping{}, fmt.Errorf("mapping: layer %d: %w", li, err)
	}
	return packUnits(li, units, cfg, n), nil
}

// denseFill returns the non-zero weight fraction of a dense layer.
func denseFill(l *snn.Layer) float64 {
	if l.W == nil || len(l.W.Data) == 0 {
		return 1
	}
	nz := l.W.Data.CountNonZero(0)
	return float64(nz) / float64(len(l.W.Data))
}

// denseUnits builds one packing unit per output neuron of a (pruned) dense
// layer: its rows are exactly the inputs with non-zero weights.
func denseUnits(l *snn.Layer) []unit {
	units := make([]unit, 0, l.OutSize())
	for o := 0; o < l.OutSize(); o++ {
		row := l.W.Row(o)
		var ins []int32
		for i, w := range row {
			if w != 0 {
				ins = append(ins, int32(i))
			}
		}
		units = append(units, unit{
			inputs:  ins,
			outputs: []int32{int32(o)},
			taps:    len(ins),
		})
	}
	return units
}

// packUnits packs units into MCAs with input sharing: units are added to a
// block while the union of their inputs fits the rows and their outputs fit
// the columns. When a single unit exceeds the array, its inputs split
// across time-multiplexed row chunks (one group per column chunk).
func packUnits(li int, units []unit, cfg Config, n int) LayerMapping {
	lm := LayerMapping{}
	group := 0
	i := 0
	for i < len(units) {
		inputSet := map[int32]bool{}
		var blockIns []int32
		var blockOuts []int32
		taps := 0
		added := 0
		for i < len(units) {
			u := units[i]
			newIn := 0
			for _, v := range u.inputs {
				if !inputSet[v] {
					newIn++
				}
			}
			if added > 0 && (cfg.DisableInputSharing ||
				len(inputSet)+newIn > n || len(blockOuts)+len(u.outputs) > n) {
				break // block full
			}
			if added == 0 && (newIn > n || len(u.outputs) > n) {
				// Single unit exceeds the array: split into
				// time-multiplexed groups of row chunks, one group per
				// column chunk (a group shares one set of output neurons).
				split, next := splitLocation(li, group, u.inputs, u.outputs, n)
				lm.MCAs = append(lm.MCAs, split...)
				group = next
				i++
				added = -1 // mark handled
				break
			}
			for _, v := range u.inputs {
				if !inputSet[v] {
					inputSet[v] = true
					blockIns = append(blockIns, v)
				}
			}
			blockOuts = append(blockOuts, u.outputs...)
			taps += u.taps
			added++
			i++
		}
		if added <= 0 {
			continue
		}
		sort.Slice(blockIns, func(a, b int) bool { return blockIns[a] < blockIns[b] })
		lm.MCAs = append(lm.MCAs, MCA{
			Layer: li, Group: group,
			Inputs: blockIns, Outputs: blockOuts, Taps: taps,
		})
		group++
	}
	lm.Groups = group
	for g, count := 0, map[int]int{}; g < len(lm.MCAs); g++ {
		count[lm.MCAs[g].Group]++
		if count[lm.MCAs[g].Group] > lm.MuxDegree {
			lm.MuxDegree = count[lm.MCAs[g].Group]
		}
	}
	return lm
}

// unitsOf enumerates the packing units of a sparse layer in row-major
// spatial order.
func unitsOf(l *snn.Layer) ([]unit, error) {
	geom := l.Geom
	outShape, err := geom.OutShape()
	if err != nil {
		return nil, err
	}
	var units []unit
	for y := 0; y < outShape.H; y++ {
		for x := 0; x < outShape.W; x++ {
			// In-bounds receptive-field positions of the location.
			var pos [][2]int
			for ky := 0; ky < geom.K; ky++ {
				iy := y*geom.Stride + ky - geom.Pad
				if iy < 0 || iy >= geom.In.H {
					continue
				}
				for kx := 0; kx < geom.K; kx++ {
					ix := x*geom.Stride + kx - geom.Pad
					if ix < 0 || ix >= geom.In.W {
						continue
					}
					pos = append(pos, [2]int{iy, ix})
				}
			}
			if l.Kind == snn.PoolLayer {
				// One unit per output channel: its own window only.
				for c := 0; c < outShape.C; c++ {
					ins := make([]int32, len(pos))
					for i, p := range pos {
						ins[i] = int32(geom.In.Index(p[0], p[1], c))
					}
					units = append(units, unit{
						inputs:  ins,
						outputs: []int32{int32(outShape.Index(y, x, c))},
						taps:    len(pos),
					})
				}
				continue
			}
			// Conv: all output channels share the full receptive field.
			ins := make([]int32, 0, len(pos)*geom.In.C)
			for _, p := range pos {
				for c := 0; c < geom.In.C; c++ {
					ins = append(ins, int32(geom.In.Index(p[0], p[1], c)))
				}
			}
			outs := make([]int32, outShape.C)
			for c := 0; c < outShape.C; c++ {
				outs[c] = int32(outShape.Index(y, x, c))
			}
			units = append(units, unit{inputs: ins, outputs: outs, taps: len(ins) * outShape.C})
		}
	}
	return units, nil
}

// splitLocation maps one output location whose receptive field (or channel
// count) exceeds a single array: inputs chunk across row blocks and outputs
// across column blocks. Each column block is its own group (a group shares
// one set of output neurons); the row blocks of that group are
// time-multiplexed onto them. It returns the MCAs and the next free group
// id.
func splitLocation(li, group int, pin, pout []int32, n int) ([]MCA, int) {
	var out []MCA
	for ob := 0; ob < len(pout); ob += n {
		oe := min(ob+n, len(pout))
		for ib := 0; ib < len(pin); ib += n {
			ie := min(ib+n, len(pin))
			out = append(out, MCA{
				Layer: li, Group: group,
				Inputs:  append([]int32(nil), pin[ib:ie]...),
				Outputs: append([]int32(nil), pout[ob:oe]...),
				Taps:    (ie - ib) * (oe - ob),
			})
		}
		group++
	}
	return out, group
}

func rangeSlice(a, b int) []int32 {
	out := make([]int32, b-a)
	for i := range out {
		out[i] = int32(a + i)
	}
	return out
}

// TotalUtilization returns taps / capacity over the whole mapping, sized
// per layer (uniform mappings reduce to the classic taps / (arrays * N²)).
func (m *Mapping) TotalUtilization() float64 {
	taps, capacity := 0, 0
	for i := range m.Layers {
		for j := range m.Layers[i].MCAs {
			taps += m.Layers[i].MCAs[j].Taps
		}
		n := m.LayerSize(i)
		capacity += len(m.Layers[i].MCAs) * n * n
	}
	if capacity == 0 {
		return 0
	}
	return float64(taps) / float64(capacity)
}

// Transport is the path a layer's input spikes take (Fig 7).
type Transport int

const (
	// Switch means the high-throughput parallel switch network inside
	// NeuroCells (Fig 7a): the layer's producers can be co-located with its
	// consumers region by region.
	Switch Transport = iota
	// Bus means serial transfer through the shared global IO bus and the
	// input SRAM (Fig 7b).
	Bus
)

func (t Transport) String() string {
	if t == Bus {
		return "bus"
	}
	return "switch"
}

// TransportOf decides how layer li receives its inputs:
//
//   - Layer 0 always loads from the input SRAM over the global bus
//     (tag-based broadcast to its NeuroCells, §3.1.3).
//   - Dense layers need every input at every column group; if the layer
//     together with its producer does not fit one NeuroCell, the data is
//     staged through the SRAM and broadcast on the bus.
//   - Pool layers and stride-aligned convolutions (K <= stride, which
//     includes 1x1 convs) have disjoint, region-aligned receptive fields:
//     with region-partitioned placement their traffic stays inside the
//     NeuroCell switch networks regardless of span (Fig 7a).
//   - Overlapping convolutions (K > stride) straddle region borders; they
//     use the bus when spanning NeuroCells, like dense layers.
func (m *Mapping) TransportOf(li int) Transport {
	if li == 0 {
		return Bus
	}
	l := m.Layers[li].Layer
	switch l.Kind {
	case snn.PoolLayer:
		return Switch
	case snn.ConvLayer:
		if l.Geom.K <= l.Geom.Stride {
			return Switch
		}
	}
	cur, prev := m.Layers[li], m.Layers[li-1]
	if cur.NCFirst != cur.NCLast || prev.NCFirst != prev.NCLast {
		return Bus
	}
	if cur.NCFirst != prev.NCFirst {
		return Bus
	}
	return Switch
}

// CrossNC reports whether layer li receives its inputs over the global IO
// bus; see TransportOf.
func (m *Mapping) CrossNC(li int) bool { return m.TransportOf(li) == Bus }

// Validate checks the structural invariants of a mapping: every MCA within
// array bounds, groups sharing identical output lists, every layer output
// covered by at least one MCA, placements monotone and within the chip.
// Returns nil for a well-formed mapping; Map always produces one, so this
// is chiefly a guard for hand-constructed or mutated mappings.
func (m *Mapping) Validate() error {
	prevMPE := -1
	for li := range m.Layers {
		lm := &m.Layers[li]
		n := m.LayerSize(li)
		if lm.MPEFirst <= prevMPE {
			return fmt.Errorf("mapping: layer %d placement overlaps the previous layer", li)
		}
		prevMPE = lm.MPELast
		groupOuts := map[int]string{}
		covered := map[int32]bool{}
		for ai := range lm.MCAs {
			a := &lm.MCAs[ai]
			if len(a.Inputs) == 0 || len(a.Inputs) > n || len(a.Outputs) == 0 || len(a.Outputs) > n {
				return fmt.Errorf("mapping: layer %d MCA %d violates the %dx%d array", li, ai, n, n)
			}
			if a.Taps < 0 || a.Taps > len(a.Inputs)*len(a.Outputs) {
				return fmt.Errorf("mapping: layer %d MCA %d has %d taps for %dx%d", li, ai, a.Taps, len(a.Inputs), len(a.Outputs))
			}
			if (a.MPE < lm.MPEFirst || a.MPE > lm.MPELast) && !m.inSpareRegion(a.MPE) {
				return fmt.Errorf("mapping: layer %d MCA %d placed at mPE %d outside [%d,%d] and the spare pool",
					li, ai, a.MPE, lm.MPEFirst, lm.MPELast)
			}
			key := fmt.Sprint(a.Outputs)
			if prev, ok := groupOuts[a.Group]; ok && prev != key {
				return fmt.Errorf("mapping: layer %d group %d has inconsistent outputs", li, a.Group)
			}
			groupOuts[a.Group] = key
			for _, o := range a.Outputs {
				if int(o) < 0 || int(o) >= lm.Layer.OutSize() {
					return fmt.Errorf("mapping: layer %d output %d out of range", li, o)
				}
				covered[o] = true
			}
			for _, in := range a.Inputs {
				if int(in) < 0 || int(in) >= lm.Layer.InSize() {
					return fmt.Errorf("mapping: layer %d input %d out of range", li, in)
				}
			}
		}
		if len(covered) != lm.Layer.OutSize() {
			return fmt.Errorf("mapping: layer %d covers %d of %d outputs", li, len(covered), lm.Layer.OutSize())
		}
	}
	if m.MPEs > m.NCs*m.Cfg.MPEsPerNC {
		return fmt.Errorf("mapping: %d mPEs exceed %d NeuroCells", m.MPEs, m.NCs)
	}
	return nil
}

// ProgramCost estimates the one-off configuration cost of writing every
// mapped synapse into its crossbar with the mapping's technology: energy is
// per-device write-verify pulses over all taps; time assumes MCAs program
// in parallel, rows within an MCA sequentially (one row of devices is
// written concurrently per pulse train).
func (m *Mapping) ProgramCost() (energyJ, timeS float64) {
	tech := m.Cfg.Tech
	pulses := float64(tech.WritePulsesPerDevice())
	maxRows := 0
	taps := 0
	for li := range m.Layers {
		for ai := range m.Layers[li].MCAs {
			a := &m.Layers[li].MCAs[ai]
			taps += a.Taps
			if r := len(a.Inputs); r > maxRows {
				maxRows = r
			}
		}
	}
	energyJ = float64(taps) * pulses * tech.WritePulseEnergy
	timeS = float64(maxRows) * pulses * tech.WritePulseTime
	return energyJ, timeS
}

// Switches returns the number of programmable switches available to the
// layer's packet traffic: 9 per NeuroCell spanned (Fig 8's 4x4 cell has 9
// switches); non-standard cell sizes scale as d*d/2+1.
func (lm *LayerMapping) Switches(cfg Config) int {
	ncs := lm.NCLast - lm.NCFirst + 1
	per := 9
	if cfg.MPEsPerNC != 16 {
		per = cfg.MPEsPerNC/2 + 1
	}
	return ncs * per
}

// BestMCASize returns the crossbar size (among candidates permitted by the
// technology) minimizing the given cost function — the technology-aware
// mapping of contribution 3 with a caller-supplied cost (typically
// energy-per-classification from the full architecture simulator).
//
// Deprecated: this is the single-knob, uniform-size special case of the
// Mapper API. New code should plan through a Mapper — Greedy with
// Constraints.Sizes = []int{size} prices one uniform size with the built-in
// cost model, and BestUniform sweeps the candidate sizes the way this
// function does, returning a full Placement instead of a bare size.
func BestMCASize(candidates []int, tech device.Technology, cost func(size int) (float64, error)) (int, float64, error) {
	best, bestCost := 0, 0.0
	found := false
	for _, n := range candidates {
		if n > tech.MaxSize {
			continue
		}
		c, err := cost(n)
		if err != nil {
			return 0, 0, err
		}
		if !found || c < bestCost {
			best, bestCost, found = n, c, true
		}
	}
	if !found {
		return 0, 0, fmt.Errorf("mapping: no candidate size permitted by %s (max %d)", tech.Name, tech.MaxSize)
	}
	return best, bestCost, nil
}
