package mapping

import (
	"resparc/internal/fault"
	"resparc/internal/snn"
)

// This file turns a fault campaign into the health reports RemapFaulty
// consumes. BadTaps counts *damaging* stuck devices only: a device stuck
// low on the plane of the differential pair that rests at GMin anyway (the
// positive plane of a negative weight, or either plane of a zero tap) does
// not change the programmed weight and is discounted, mirroring
// xbar.BenignStuck.

// DeadFunc reports whether a physical slot is unusable.
type DeadFunc func(fault.SlotID) bool

// CellsFunc enumerates a slot's stuck devices for a rows x cols crossbar —
// fault.Campaign.StuckCells for a one-shot fabrication campaign, or a
// lifetime model's fabrication + wear union at some age.
type CellsFunc func(id fault.SlotID, rows, cols int) []fault.StuckCell

// SurveyCells inspects every allocation's physical crossbar against an
// arbitrary fault source and reports the unhealthy ones: allocations on
// dead slots, and allocations with damaging stuck devices inside their used
// region. Healthy allocations are omitted. The result is deterministic
// (placement order) and feeds RemapFaulty directly. dead may be nil (no
// kill switches).
func (m *Mapping) SurveyCells(dead DeadFunc, cells CellsFunc) []MCAHealth {
	var out []MCAHealth
	for li := range m.Layers {
		lm := &m.Layers[li]
		n := m.LayerSize(li)
		for ai := range lm.MCAs {
			a := &lm.MCAs[ai]
			id := fault.SlotID{MPE: a.MPE, Slot: a.Slot}
			h := MCAHealth{Layer: li, Index: ai}
			if dead != nil && dead(id) {
				h.Dead = true
				out = append(out, h)
				continue
			}
			h.BadTaps = damagingTaps(cells(id, n, n), lm.Layer, a)
			if h.BadTaps > 0 {
				out = append(out, h)
			}
		}
	}
	return out
}

// SurveyCampaign is SurveyCells over a one-shot fabrication campaign.
func (m *Mapping) SurveyCampaign(camp fault.Campaign) []MCAHealth {
	return m.SurveyCells(camp.SlotDead, camp.StuckCells)
}

// ScreenCells builds a RemapConfig.Screen that accepts a spare slot for an
// allocation only when the slot is alive and carries at most maxBadTaps
// damaging stuck devices over the allocation's used region — the
// configuration-time program-verify screen, evaluated against an arbitrary
// fault source instead of hardware.
func (m *Mapping) ScreenCells(dead DeadFunc, cells CellsFunc, maxBadTaps int) func(fault.SlotID, *MCA) bool {
	// The screen callback only receives the allocation, so recover its
	// layer (and the layer's crossbar size) through the placement tables
	// once up front.
	layerOf := make(map[*MCA]*snn.Layer)
	sizeOf := make(map[*MCA]int)
	for li := range m.Layers {
		lm := &m.Layers[li]
		n := m.LayerSize(li)
		for ai := range lm.MCAs {
			layerOf[&lm.MCAs[ai]] = lm.Layer
			sizeOf[&lm.MCAs[ai]] = n
		}
	}
	return func(id fault.SlotID, a *MCA) bool {
		if dead != nil && dead(id) {
			return false
		}
		l, ok := layerOf[a]
		if !ok {
			return false
		}
		n := sizeOf[a]
		return damagingTaps(cells(id, n, n), l, a) <= maxBadTaps
	}
}

// CampaignScreen is ScreenCells over a one-shot fabrication campaign.
func (m *Mapping) CampaignScreen(camp fault.Campaign, maxBadTaps int) func(fault.SlotID, *MCA) bool {
	return m.ScreenCells(camp.SlotDead, camp.StuckCells, maxBadTaps)
}

// damagingTaps counts the stuck devices that land on a used, non-benign
// cross-point of the allocation when placed on the surveyed slot.
func damagingTaps(stuck []fault.StuckCell, l *snn.Layer, a *MCA) int {
	bad := 0
	for _, sc := range stuck {
		if sc.R >= len(a.Inputs) || sc.C >= len(a.Outputs) {
			continue
		}
		w, ok := l.Weight(int(a.Outputs[sc.C]), int(a.Inputs[sc.R]))
		if !ok {
			continue // unused cross-point (conv slack)
		}
		if benignStuckAt(sc, w) {
			continue
		}
		bad++
	}
	return bad
}

// benignStuckAt reports whether a stuck device leaves the programmed weight
// unchanged: stuck low on a plane that rests at GMin for this weight's
// sign. Stuck-high devices always distort the pair.
func benignStuckAt(sc fault.StuckCell, w float64) bool {
	if sc.State != fault.StuckLow {
		return false
	}
	if sc.Plane == fault.Pos {
		return w <= 0
	}
	return w >= 0
}
