package mapping

import (
	"fmt"
	"strings"
)

// Floorplan renders the placement as ASCII NeuroCell grids: one box per NC,
// one cell per mPE, labeled with the index of the layer occupying it ("--"
// for unused mPEs). maxNCs caps the output for chips with hundreds of
// NeuroCells (0 means all).
func (m *Mapping) Floorplan(maxNCs int) string {
	dim := 1
	for dim*dim < m.Cfg.MPEsPerNC {
		dim++
	}
	// mPE -> layer index.
	layerOf := make(map[int]int)
	for li := range m.Layers {
		lm := &m.Layers[li]
		for mpe := lm.MPEFirst; mpe <= lm.MPELast; mpe++ {
			layerOf[mpe] = li
		}
	}
	ncs := m.NCs
	truncated := false
	if maxNCs > 0 && ncs > maxNCs {
		ncs = maxNCs
		truncated = true
	}
	var sb strings.Builder
	lo, hi := m.Cfg.MCASize, m.Cfg.MCASize
	for li := range m.Layers {
		if n := m.LayerSize(li); li == 0 {
			lo, hi = n, n
		} else if n < lo {
			lo = n
		} else if n > hi {
			hi = n
		}
	}
	if lo == hi {
		fmt.Fprintf(&sb, "floorplan: %d NeuroCell(s), %d mPEs, %d MCAs (MCA size %d)\n",
			m.NCs, m.MPEs, m.MCAs, lo)
	} else {
		fmt.Fprintf(&sb, "floorplan: %d NeuroCell(s), %d mPEs, %d MCAs (MCA sizes %d-%d)\n",
			m.NCs, m.MPEs, m.MCAs, lo, hi)
	}
	for nc := 0; nc < ncs; nc++ {
		fmt.Fprintf(&sb, "NC %d:\n", nc)
		for y := 0; y < dim; y++ {
			sb.WriteString("  ")
			for x := 0; x < dim; x++ {
				local := y*dim + x
				if local >= m.Cfg.MPEsPerNC {
					continue
				}
				mpe := nc*m.Cfg.MPEsPerNC + local
				if li, ok := layerOf[mpe]; ok {
					fmt.Fprintf(&sb, "[L%-2d]", li)
				} else {
					sb.WriteString("[-- ]")
				}
			}
			sb.WriteByte('\n')
		}
	}
	if truncated {
		fmt.Fprintf(&sb, "... (%d more NeuroCells)\n", m.NCs-ncs)
	}
	// Legend.
	sb.WriteString("legend:")
	for li := range m.Layers {
		fmt.Fprintf(&sb, " L%d=%s", li, m.Layers[li].Layer.Name)
	}
	sb.WriteByte('\n')
	return sb.String()
}
