package mapping

import (
	"strings"
	"testing"

	"resparc/internal/snn"
	"resparc/internal/tensor"
)

func TestFloorplan(t *testing.T) {
	w1 := tensor.NewMat(128, 128)
	l1, err := snn.NewDense("hidden", 128, 128, w1, 1)
	if err != nil {
		t.Fatal(err)
	}
	w2 := tensor.NewMat(10, 128)
	l2, err := snn.NewDense("out", 128, 10, w2, 1)
	if err != nil {
		t.Fatal(err)
	}
	net, err := snn.NewNetwork("n", tensor.Shape3{H: 1, W: 1, C: 128}, l1, l2)
	if err != nil {
		t.Fatal(err)
	}
	m, err := Map(net, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	fp := m.Floorplan(0)
	if !strings.Contains(fp, "NC 0:") {
		t.Fatalf("missing NC header:\n%s", fp)
	}
	if !strings.Contains(fp, "[L0 ]") || !strings.Contains(fp, "[L1 ]") {
		t.Fatalf("missing layer cells:\n%s", fp)
	}
	if !strings.Contains(fp, "[-- ]") {
		t.Fatalf("missing empty mPEs:\n%s", fp)
	}
	if !strings.Contains(fp, "L0=hidden") || !strings.Contains(fp, "L1=out") {
		t.Fatalf("missing legend:\n%s", fp)
	}
	// Occupied cells match the mPE count ("[L" appears only in grid cells).
	if got := strings.Count(fp, "[L"); got != m.MPEs {
		t.Fatalf("occupied cells %d, want %d:\n%s", got, m.MPEs, fp)
	}
}

func TestFloorplanTruncation(t *testing.T) {
	w := tensor.NewMat(2048, 2048)
	l, err := snn.NewDense("big", 2048, 2048, w, 1)
	if err != nil {
		t.Fatal(err)
	}
	net, err := snn.NewNetwork("n", tensor.Shape3{H: 1, W: 1, C: 2048}, l)
	if err != nil {
		t.Fatal(err)
	}
	m, err := Map(net, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if m.NCs < 3 {
		t.Skipf("net too small: %d NCs", m.NCs)
	}
	fp := m.Floorplan(2)
	if !strings.Contains(fp, "more NeuroCells") {
		t.Fatalf("missing truncation notice:\n%s", fp[:200])
	}
	if strings.Contains(fp, "NC 2:") {
		t.Fatal("truncation did not stop at 2 NCs")
	}
}
