package mapping

import (
	"math/rand"
	"reflect"
	"testing"

	"resparc/internal/fault"
	"resparc/internal/tensor"
)

// remapMapping builds a small two-layer dense mapping for remap tests.
func remapMapping(t *testing.T) *Mapping {
	t.Helper()
	net := netOf(t, tensor.Shape3{H: 1, W: 1, C: 128},
		denseLayer(t, 128, 64), denseLayer(t, 64, 10))
	m, err := Map(net, cfg(64))
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestRemapMovesToSpares(t *testing.T) {
	m := remapMapping(t)
	origMPEs := m.MPEs
	a := &m.Layers[0].MCAs[0]
	from := fault.SlotID{MPE: a.MPE, Slot: a.Slot}

	rep, err := m.RemapFaulty([]MCAHealth{{Layer: 0, Index: 0, BadTaps: 50}},
		RemapConfig{SpareMPEs: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Faulty != 1 || len(rep.Moves) != 1 || rep.IsDegraded() {
		t.Fatalf("report %+v, want one clean move", rep)
	}
	mv := rep.Moves[0]
	if mv.From != from {
		t.Fatalf("move from %v, want %v", mv.From, from)
	}
	want := fault.SlotID{MPE: origMPEs, Slot: 0}
	if mv.To != want {
		t.Fatalf("move to %v, want first spare slot %v", mv.To, want)
	}
	if a.MPE != want.MPE || a.Slot != want.Slot {
		t.Fatalf("allocation not updated: mPE %d slot %d", a.MPE, a.Slot)
	}
	if a.NC != want.MPE/m.Cfg.MPEsPerNC {
		t.Fatalf("allocation NC %d not recomputed", a.NC)
	}
	if m.MPEs != origMPEs+1 {
		t.Fatalf("MPEs = %d, want %d (one spare consumed)", m.MPEs, origMPEs+1)
	}
	// The mapping must stay internally consistent with the spare placement.
	if err := m.Validate(); err != nil {
		t.Fatalf("mapping invalid after remap: %v", err)
	}
}

func TestRemapToleratesSmallDamage(t *testing.T) {
	m := remapMapping(t)
	rep, err := m.RemapFaulty([]MCAHealth{{Layer: 0, Index: 0, BadTaps: 3}},
		RemapConfig{SpareMPEs: 1, MaxBadTaps: 3})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Faulty != 0 || len(rep.Moves) != 0 || rep.SparesUsed != 0 {
		t.Fatalf("tolerated allocation was acted on: %+v", rep)
	}
	// Dead allocations are moved regardless of MaxBadTaps.
	rep, err = m.RemapFaulty([]MCAHealth{{Layer: 0, Index: 0, Dead: true}},
		RemapConfig{SpareMPEs: 1, MaxBadTaps: 1 << 30})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Moves) != 1 {
		t.Fatalf("dead allocation not moved: %+v", rep)
	}
}

func TestRemapScreenBurnsSlots(t *testing.T) {
	m := remapMapping(t)
	spareFirst := m.MPEs
	// Reject the first spare slot only: the pass must burn it and land the
	// allocation on slot 1 of the spare mPE.
	screened := 0
	rep, err := m.RemapFaulty([]MCAHealth{{Layer: 0, Index: 0, Dead: true}},
		RemapConfig{
			SpareMPEs: 1,
			Screen: func(id fault.SlotID, a *MCA) bool {
				screened++
				return !(id.MPE == spareFirst && id.Slot == 0)
			},
		})
	if err != nil {
		t.Fatal(err)
	}
	if screened != 2 {
		t.Fatalf("screen called %d times, want 2", screened)
	}
	if len(rep.Moves) != 1 || rep.Moves[0].To != (fault.SlotID{MPE: spareFirst, Slot: 1}) {
		t.Fatalf("moves %+v, want relocation to slot 1 after burning slot 0", rep.Moves)
	}
	if rep.SparesUsed != 2 {
		t.Fatalf("SparesUsed = %d, want 2 (burned + consumed)", rep.SparesUsed)
	}
}

func TestRemapPoolExhaustionDegrades(t *testing.T) {
	m := remapMapping(t)
	// No spares at all: everything faulty degrades in place.
	health := []MCAHealth{
		{Layer: 0, Index: 0, Dead: true},
		{Layer: 0, Index: 1, BadTaps: 17},
	}
	rep, err := m.RemapFaulty(health, RemapConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.IsDegraded() || len(rep.Degraded) != 2 || len(rep.Moves) != 0 {
		t.Fatalf("report %+v, want both degraded", rep)
	}
	deadTaps := m.Layers[0].MCAs[0].Taps
	if want := deadTaps + 17; rep.ResidualBadTaps != want {
		t.Fatalf("ResidualBadTaps = %d, want %d", rep.ResidualBadTaps, want)
	}
	totalTaps := 0
	for li := range m.Layers {
		for ai := range m.Layers[li].MCAs {
			totalTaps += m.Layers[li].MCAs[ai].Taps
		}
	}
	if want := float64(rep.ResidualBadTaps) / float64(totalTaps); rep.EstAccuracyLoss != want {
		t.Fatalf("EstAccuracyLoss = %g, want %g", rep.EstAccuracyLoss, want)
	}
	if rep.EstAccuracyLoss <= 0 || rep.EstAccuracyLoss > 1 {
		t.Fatalf("EstAccuracyLoss %g out of (0,1]", rep.EstAccuracyLoss)
	}
}

func TestRemapDeterministicOrder(t *testing.T) {
	health := []MCAHealth{
		{Layer: 1, Index: 0, Dead: true},
		{Layer: 0, Index: 1, Dead: true},
		{Layer: 0, Index: 0, Dead: true},
	}
	var first []Move
	for trial := 0; trial < 5; trial++ {
		m := remapMapping(t)
		shuffled := append([]MCAHealth(nil), health...)
		rand.New(rand.NewSource(int64(trial))).Shuffle(len(shuffled), func(i, j int) {
			shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
		})
		rep, err := m.RemapFaulty(shuffled, RemapConfig{SpareMPEs: 1})
		if err != nil {
			t.Fatal(err)
		}
		if trial == 0 {
			first = rep.Moves
			continue
		}
		if !reflect.DeepEqual(rep.Moves, first) {
			t.Fatalf("trial %d moves %+v differ from %+v", trial, rep.Moves, first)
		}
	}
}

func TestRemapRejectsBadHealth(t *testing.T) {
	m := remapMapping(t)
	if _, err := m.RemapFaulty([]MCAHealth{{Layer: 9, Index: 0}}, RemapConfig{}); err == nil {
		t.Fatal("out-of-range layer accepted")
	}
	if _, err := m.RemapFaulty([]MCAHealth{{Layer: 0, Index: 99}}, RemapConfig{}); err == nil {
		t.Fatal("out-of-range index accepted")
	}
	if _, err := m.RemapFaulty(nil, RemapConfig{SpareMPEs: -1}); err == nil {
		t.Fatal("negative spare pool accepted")
	}
}
