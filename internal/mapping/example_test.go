package mapping_test

import (
	"fmt"

	"resparc/internal/mapping"
	"resparc/internal/snn"
	"resparc/internal/tensor"
)

// Mapping a 128x128 dense layer onto the default 64x64 crossbars tiles it
// into a 2x2 grid: two output groups, each time-multiplexing two row
// blocks (Fig 5b).
func ExampleMap() {
	w := tensor.NewMat(128, 128)
	layer, err := snn.NewDense("fc", 128, 128, w, 1)
	if err != nil {
		fmt.Println(err)
		return
	}
	net, err := snn.NewNetwork("example", tensor.Shape3{H: 1, W: 1, C: 128}, layer)
	if err != nil {
		fmt.Println(err)
		return
	}
	m, err := mapping.Map(net, mapping.DefaultConfig())
	if err != nil {
		fmt.Println(err)
		return
	}
	lm := m.Layers[0]
	fmt.Printf("%d MCAs, %d groups, mux degree %d, utilization %.0f%%\n",
		len(lm.MCAs), lm.Groups, lm.MuxDegree, 100*lm.Utilization)
	// Output:
	// 4 MCAs, 2 groups, mux degree 2, utilization 100%
}

// The Mapper API plans a placement artifact instead of mapping directly:
// Greedy reproduces the uniform baseline, Annealed searches per-layer sizes
// and alignment. The Placement round-trips through JSON and Apply realizes
// it into the exact Mapping the simulator consumes.
func ExampleMapper() {
	w := tensor.NewMat(128, 128)
	layer, err := snn.NewDense("fc", 128, 128, w, 1)
	if err != nil {
		fmt.Println(err)
		return
	}
	net, err := snn.NewNetwork("example", tensor.Shape3{H: 1, W: 1, C: 128}, layer)
	if err != nil {
		fmt.Println(err)
		return
	}
	cons := mapping.DefaultConstraints(mapping.DefaultConfig())
	cons.Steps = 4
	p, err := (mapping.Greedy{}).Plan(net, cons)
	if err != nil {
		fmt.Println(err)
		return
	}
	m, err := p.Apply(net)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("%s placement: layer size %d, %d MCAs, %d mPEs\n",
		p.Mapper, p.Layers[0].MCASize, m.MCAs, m.MPEs)
	// Output:
	// greedy placement: layer size 64, 4 MCAs, 1 mPEs
}
