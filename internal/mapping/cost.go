package mapping

import (
	"fmt"
	"sync"

	"resparc/internal/bitvec"
	"resparc/internal/energy"
	"resparc/internal/event"
	"resparc/internal/packet"
	"resparc/internal/parallel"
	"resparc/internal/snn"
	"resparc/internal/tensor"
)

// This file is the mapper's cost model: a surrogate of the architecture
// simulator (internal/core's transaction-level accounting and its pipelined
// event engine, plus internal/shard's link model) that prices a candidate
// placement — per-layer MCA sizes, NeuroCell alignment, shard cuts — without
// building a chip. It replays the same closed forms over a probe input's
// spike rasters: rasters depend only on (input, encoder), never on the
// mapping, so they are captured once and every candidate is a cheap walk
// over cached per-(layer, size) packing statistics plus one small
// discrete-event pipeline simulation. Predictions are untouched by mapping,
// so the mapper only ever trades modeled energy/latency/traffic.

// LinkCost models one chip-to-chip hop for the mapper's traffic term. It
// mirrors shard.LinkParams field for field (shard sits above core and so
// cannot be imported from here); DefaultLinkCost and shard.DefaultLinkParams
// are kept in lockstep by a test in internal/shard.
type LinkCost struct {
	// FlitWidth is the flit payload in spike bits.
	FlitWidth int
	// FlitEnergy is the joules to move one surviving flit across the hop.
	FlitEnergy float64
	// ZeroCheck is the joules to zero-check one flit (paid for every flit).
	ZeroCheck float64
	// FlitsPerCycle is the hop's width in flits per NeuroCell cycle.
	FlitsPerCycle int
	// SyncCycles is the per-timestep handshake overhead of the hop.
	SyncCycles int
	// RecvBuf bounds the receiving pad's raster buffer (in timesteps).
	RecvBuf int
}

// DefaultLinkCost derives the hop model from the chip's energy parameters —
// the same derivation as shard.DefaultLinkParams.
func DefaultLinkCost(p energy.Params) LinkCost {
	return LinkCost{
		FlitWidth:     packet.Width,
		FlitEnergy:    6 * p.BusWord,
		ZeroCheck:     p.ZeroCheck,
		FlitsPerCycle: 4,
		SyncCycles:    2,
		RecvBuf:       2,
	}
}

// Weights blend the normalized cost terms into the scalar objective the
// mapper minimizes: each term is the candidate's value relative to the
// greedy baseline, so a weight of 1 means "a 1% saving here is worth a 1%
// saving there".
type Weights struct {
	// Energy weights modeled energy per classification (chip + link).
	Energy float64
	// Latency weights the pipelined makespan of the probe classification.
	Latency float64
	// Traffic weights inter-chip link energy (relative to baseline total
	// energy), discouraging cut placements that push dense boundaries
	// off-chip even when the pipeline hides their latency.
	Traffic float64
}

// DefaultWeights returns the balanced objective: energy and latency at
// parity (minimizing their product's first-order variation, i.e. EDP), with
// a small traffic term.
func DefaultWeights() Weights { return Weights{Energy: 1, Latency: 1, Traffic: 0.25} }

// Constraints parameterize a Mapper.Plan call: the hardware hierarchy, the
// admissible crossbar sizes, the shard topology, and the probe workload the
// cost model prices candidates on. Build one with DefaultConstraints and
// override fields; a zero Constraints is not valid (EventDriven would be
// off, unlike any shipped configuration).
type Constraints struct {
	// Hierarchy fixes MCAsPerMPE/MPEsPerNC/Tech; its MCASize is the uniform
	// baseline size (what Greedy plans, and the legacy direct path used).
	Hierarchy Config
	// Sizes are the per-layer MCA sizes the mapper may choose from,
	// defaulting to the paper's {32, 64, 128} filtered to the technology's
	// reliable maximum.
	Sizes []int
	// Shards is the chip count (1 = single chip, no cuts).
	Shards int
	// MaxMPEsPerChip, when positive, rejects candidates placing more mPEs
	// than this on any one chip.
	MaxMPEsPerChip int
	// Steps is the probe classification's timestep count.
	Steps int
	// Seed seeds the probe encoder (the cost model uses Seed+7 fork 0 — the
	// stream sample 0 sees under the experiment harness's convention).
	Seed int64
	// MaxProb is the probe encoder's peak spike probability.
	MaxProb float64
	// Probe is the probe intensity vector; nil synthesizes a uniform
	// mid-gray input of the network's input size.
	Probe tensor.Vec
	// Params are the energy/timing parameters of the modeled chip.
	Params energy.Params
	// PacketWidth is the spike-packet width in bits.
	PacketWidth int
	// EventDriven models the §3.2 zero-check gating (on in every shipped
	// configuration; DefaultConstraints sets it).
	EventDriven bool
	// Link models each chip-to-chip hop (zero value selects DefaultLinkCost
	// of Params).
	Link LinkCost
	// Weights blend the objective (zero value selects DefaultWeights).
	Weights Weights
}

// DefaultConstraints returns the paper-default search space for a hierarchy:
// sizes {32, 64, 128} (technology permitting), a 16-step mid-gray probe,
// 45nm energies, event-driven gating on, balanced weights.
func DefaultConstraints(cfg Config) Constraints {
	return Constraints{
		Hierarchy:   cfg,
		Shards:      1,
		Steps:       16,
		Seed:        1,
		MaxProb:     0.8,
		Params:      energy.Default45nm(),
		PacketWidth: packet.Width,
		EventDriven: true,
	}
}

// normalize fills defaulted fields in place and validates the rest.
func (c *Constraints) normalize() error {
	if err := c.Hierarchy.Validate(); err != nil {
		return err
	}
	if len(c.Sizes) == 0 {
		c.Sizes = []int{32, 64, 128}
	}
	sizes := make([]int, 0, len(c.Sizes))
	for _, n := range c.Sizes {
		if n < 2 {
			return fmt.Errorf("mapping: candidate MCA size %d", n)
		}
		if n <= c.Hierarchy.Tech.MaxSize {
			sizes = append(sizes, n)
		}
	}
	if len(sizes) == 0 {
		return fmt.Errorf("mapping: no candidate size permitted by %s (max %d)",
			c.Hierarchy.Tech.Name, c.Hierarchy.Tech.MaxSize)
	}
	c.Sizes = sizes
	if c.Shards < 1 {
		c.Shards = 1
	}
	if c.Steps < 1 {
		c.Steps = 16
	}
	if c.MaxProb <= 0 {
		c.MaxProb = 0.8
	}
	if c.PacketWidth < 1 || c.PacketWidth > 64 {
		return fmt.Errorf("mapping: packet width %d out of [1,64]", c.PacketWidth)
	}
	if (c.Link == LinkCost{}) {
		c.Link = DefaultLinkCost(c.Params)
	}
	if c.Link.FlitWidth < 1 {
		return fmt.Errorf("mapping: link flit width %d", c.Link.FlitWidth)
	}
	if (c.Weights == Weights{}) {
		c.Weights = DefaultWeights()
	}
	return nil
}

// sizeIndex returns the index of size n in the candidate set, or -1.
func (c *Constraints) sizeIndex(n int) int {
	for i, s := range c.Sizes {
		if s == n {
			return i
		}
	}
	return -1
}

// candidate is one point of the mapper's search space.
type candidate struct {
	// size[li] indexes Constraints.Sizes.
	size []int
	// align[li] starts layer li on a fresh NeuroCell.
	align []bool
	// cuts are the shard cut points (ascending layer indices, exclusive 0).
	cuts []int
}

func (c candidate) clone() candidate {
	return candidate{
		size:  append([]int(nil), c.size...),
		align: append([]bool(nil), c.align...),
		cuts:  append([]int(nil), c.cuts...),
	}
}

// stepCost is one (layer, size) pairing's position-independent activity on
// one probe timestep, mirroring the core observer's per-step accounting.
type stepCost struct {
	// words is the deduped per-mPE source-word count (each pays a
	// zero-check); delivered is the occupied subset (each pays the switch
	// hop and buffer accesses).
	words, delivered int32
	// active MCAs, spiking rows driven, neuron integrations, and the
	// time-multiplexing depth reached.
	active, rows, integrations, maxMux int32
	// crossbarE is the summed crossbar conduction energy (rows x the
	// per-MCA factor the observer uses).
	crossbarE float64
}

// sizeStats caches everything position-independent about mapping one layer
// onto one candidate MCA size: the packing's footprint and its per-probe-step
// activity. Layers always start on a fresh mPE, so none of this depends on
// where the layer lands.
type sizeStats struct {
	mcas, mpeSpan int
	step          []stepCost
}

// layerPos is a candidate's realized position of one layer.
type layerPos struct {
	mpeFirst, mpeSpan int
	ncFirst, ncLast   int
}

// evaluator prices candidates for one (network, constraints) pair. It is
// immutable after newEvaluator, so concurrent annealing chains share one.
type evaluator struct {
	net  *snn.Network
	cons Constraints

	sramAccess float64
	// in[li][t] is layer li's input raster on probe step t (layer 0 sees the
	// encoded input); out[li][t] its output raster.
	in, out [][]*bitvec.Bits
	// busSent/busTotal: packet words of in[li][t] surviving/total at the
	// chip packet width. spikes: out[li][t] popcount. flitSent/flitTotal:
	// link flits of out[li][t] at the hop flit width.
	busSent, busTotal   [][]int32
	spikes              [][]int32
	flitSent, flitTotal [][]int32
	// stats[li][szIdx] is the cached packing of layer li at Sizes[szIdx].
	stats [][]*sizeStats
}

// newEvaluator captures the probe rasters and precomputes the per-(layer,
// size) packing statistics for every admissible size.
func newEvaluator(net *snn.Network, cons Constraints) (*evaluator, error) {
	if len(net.Layers) == 0 {
		return nil, fmt.Errorf("mapping: network %q has no layers", net.Name)
	}
	ev := &evaluator{net: net, cons: cons}

	// The SRAM is sized exactly as core.New sizes it, so the bus term prices
	// the same accesses.
	maxBits := net.Input.Size()
	for _, l := range net.Layers {
		if n := l.OutSize(); n > maxBits {
			maxBits = n
		}
	}
	bytes := maxBits / 8
	if bytes < 1024 {
		bytes = 1024
	}
	ev.sramAccess = energy.NewSRAM(bytes).AccessEnergy()

	probe := cons.Probe
	if probe == nil {
		probe = tensor.NewVec(net.Input.Size())
		probe.Fill(0.5)
	}
	if len(probe) != net.Input.Size() {
		return nil, fmt.Errorf("mapping: probe has %d intensities, input needs %d", len(probe), net.Input.Size())
	}

	// Capture the probe classification's rasters once: they depend only on
	// (input, encoder), never on any placement decision.
	L := len(net.Layers)
	st := snn.NewState(net)
	enc := snn.NewPoissonEncoder(cons.MaxProb, cons.Seed+7).ForkSeed(0)
	ev.in = make([][]*bitvec.Bits, L)
	ev.out = make([][]*bitvec.Bits, L)
	for li := 0; li < L; li++ {
		ev.in[li] = make([]*bitvec.Bits, cons.Steps)
		ev.out[li] = make([]*bitvec.Bits, cons.Steps)
	}
	for t := 0; t < cons.Steps; t++ {
		inBits := bitvec.New(net.Input.Size())
		enc.Encode(probe, inBits)
		st.Step(inBits)
		ev.in[0][t] = inBits
		for li := 0; li < L; li++ {
			o := bitvec.New(net.Layers[li].OutSize())
			o.CopyFrom(st.LayerSpikes(li))
			ev.out[li][t] = o
			if li+1 < L {
				ev.in[li+1][t] = o
			}
		}
	}

	// Raster-only statistics (independent of any mapping decision).
	w := cons.PacketWidth
	fw := cons.Link.FlitWidth
	ev.busSent = make([][]int32, L)
	ev.busTotal = make([][]int32, L)
	ev.spikes = make([][]int32, L)
	ev.flitSent = make([][]int32, L)
	ev.flitTotal = make([][]int32, L)
	for li := 0; li < L; li++ {
		ev.busSent[li] = make([]int32, cons.Steps)
		ev.busTotal[li] = make([]int32, cons.Steps)
		ev.spikes[li] = make([]int32, cons.Steps)
		ev.flitSent[li] = make([]int32, cons.Steps)
		ev.flitTotal[li] = make([]int32, cons.Steps)
		for t := 0; t < cons.Steps; t++ {
			zero, total := ev.in[li][t].ZeroPackets(w)
			sent := total - zero
			if !cons.EventDriven {
				sent = total
			}
			ev.busSent[li][t] = int32(sent)
			ev.busTotal[li][t] = int32(total)
			ev.spikes[li][t] = int32(ev.out[li][t].Count())
			fzero, ftotal := ev.out[li][t].ZeroPackets(fw)
			ev.flitSent[li][t] = int32(ftotal - fzero)
			ev.flitTotal[li][t] = int32(ftotal)
		}
	}

	// Per-(layer, size) packing statistics, built eagerly so the evaluator
	// is read-only for concurrent chains.
	S := len(cons.Sizes)
	ev.stats = make([][]*sizeStats, L)
	for li := range ev.stats {
		ev.stats[li] = make([]*sizeStats, S)
	}
	var mu sync.Mutex
	var firstErr error
	parallel.ForEach(L*S, parallel.Clamp(0, L*S), func(_, i int) {
		li, szIdx := i/S, i%S
		stats, err := ev.buildStats(li, szIdx)
		if err != nil {
			mu.Lock()
			if firstErr == nil {
				firstErr = err
			}
			mu.Unlock()
			return
		}
		ev.stats[li][szIdx] = stats
	})
	if firstErr != nil {
		return nil, firstErr
	}
	return ev, nil
}

// buildStats packs layer li at Sizes[szIdx] (position-free) and replays the
// probe rasters through the packing, mirroring the event-engine accounting:
// an inverse input->MCA adjacency scatters each spike, word occupancy is
// stamped in the same pass, and per-mPE word lists are deduped in
// first-encounter order — the same structure core's eventPlans caches.
func (ev *evaluator) buildStats(li, szIdx int) (*sizeStats, error) {
	cfg := ev.cons.Hierarchy
	n := ev.cons.Sizes[szIdx]
	l := ev.net.Layers[li]
	lm, err := layerMappingFor(li, l, cfg, n)
	if err != nil {
		return nil, err
	}
	p := ev.cons.Params
	w := ev.cons.PacketWidth
	ed := ev.cons.EventDriven

	insz := l.InSize()
	nwords := (insz + w - 1) / w
	inToMCA := make([][]int32, insz)
	factorXbar := make([]float64, len(lm.MCAs))
	outs := make([]int32, len(lm.MCAs))
	groupOf := make([]int32, len(lm.MCAs))
	type run struct{ mcaLo, mcaHi, wordLo, wordHi int32 }
	var runs []run
	var words []int32
	curMPE := -1
	mcaLo, wordLo := int32(0), int32(0)
	seen := map[int]bool{}
	for ai := range lm.MCAs {
		mca := &lm.MCAs[ai]
		relMPE := ai / cfg.MCAsPerMPE
		if relMPE != curMPE {
			if ai > 0 {
				runs = append(runs, run{mcaLo, int32(ai), wordLo, int32(len(words))})
				mcaLo, wordLo = int32(ai), int32(len(words))
				seen = map[int]bool{}
			}
			curMPE = relMPE
		}
		usedPerRow := 0.0
		if len(mca.Inputs) > 0 {
			usedPerRow = float64(mca.Taps) / float64(len(mca.Inputs))
		}
		idlePerRow := float64(n) - usedPerRow
		if p.GateIdleColumns {
			idlePerRow = 0
		}
		factorXbar[ai] = usedPerRow*p.XbarCellActive + idlePerRow*p.XbarCellActive*p.XbarIdleFrac
		outs[ai] = int32(len(mca.Outputs))
		groupOf[ai] = int32(mca.Group)
		lastWord := -1
		for _, in := range mca.Inputs {
			inToMCA[in] = append(inToMCA[in], int32(ai))
			word := int(in) / w
			if word != lastWord {
				lastWord = word
				if !seen[word] {
					seen[word] = true
					words = append(words, int32(word))
				}
			}
		}
	}
	if len(lm.MCAs) > 0 {
		runs = append(runs, run{mcaLo, int32(len(lm.MCAs)), wordLo, int32(len(words))})
	}

	st := &sizeStats{
		mcas:    len(lm.MCAs),
		mpeSpan: (len(lm.MCAs) + cfg.MCAsPerMPE - 1) / cfg.MCAsPerMPE,
		step:    make([]stepCost, ev.cons.Steps),
	}
	rows := make([]int32, len(lm.MCAs))
	rowTok := make([]int32, len(lm.MCAs))
	wordTok := make([]int32, nwords)
	ga := make([]int32, lm.Groups)
	for t := 0; t < ev.cons.Steps; t++ {
		tok := int32(t + 1)
		ev.in[li][t].ForEachSet(func(i int) {
			wd := i / w
			if wordTok[wd] != tok {
				wordTok[wd] = tok
			}
			for _, m := range inToMCA[i] {
				if rowTok[m] != tok {
					rowTok[m] = tok
					rows[m] = 0
				}
				rows[m]++
			}
		})
		sc := &st.step[t]
		for i := range ga {
			ga[i] = 0
		}
		for _, r := range runs {
			for mi := r.mcaLo; mi < r.mcaHi; mi++ {
				var rr int32
				if rowTok[mi] == tok {
					rr = rows[mi]
				}
				if rr == 0 && ed {
					continue
				}
				sc.active++
				sc.rows += rr
				sc.crossbarE += float64(rr) * factorXbar[mi]
				sc.integrations += outs[mi]
				if ga[groupOf[mi]]++; ga[groupOf[mi]] > sc.maxMux {
					sc.maxMux = ga[groupOf[mi]]
				}
			}
			for wi := r.wordLo; wi < r.wordHi; wi++ {
				sc.words++
				if wordTok[words[wi]] == tok || !ed {
					sc.delivered++
				}
			}
		}
	}
	return st, nil
}

// positions realizes a candidate's layer positions (the mPE cursor walk of
// mapLayers, without building any MCA).
func (ev *evaluator) positions(c candidate) ([]layerPos, int) {
	perNC := ev.cons.Hierarchy.MPEsPerNC
	pos := make([]layerPos, len(ev.net.Layers))
	cursor := 0
	for li := range pos {
		if c.align[li] && cursor%perNC != 0 {
			cursor += perNC - cursor%perNC
		}
		span := ev.stats[li][c.size[li]].mpeSpan
		pos[li] = layerPos{
			mpeFirst: cursor, mpeSpan: span,
			ncFirst: cursor / perNC, ncLast: (cursor + span - 1) / perNC,
		}
		cursor += span
	}
	return pos, cursor
}

// crossNC mirrors Mapping.TransportOf over candidate positions.
func (ev *evaluator) crossNC(li int, pos []layerPos) bool {
	if li == 0 {
		return true
	}
	l := ev.net.Layers[li]
	switch l.Kind {
	case snn.PoolLayer:
		return false
	case snn.ConvLayer:
		if l.Geom.K <= l.Geom.Stride {
			return false
		}
	}
	cur, prev := pos[li], pos[li-1]
	if cur.ncFirst != cur.ncLast || prev.ncFirst != prev.ncLast {
		return true
	}
	return cur.ncFirst != prev.ncFirst
}

// layerStep prices one (layer, timestep) stage of a candidate: its energy
// and its sync/bus/local durations, with the core observer's closed forms.
func (ev *evaluator) layerStep(li, t int, szIdx int, cross bool, pos layerPos) (e float64, sync, bus, local int32) {
	p := ev.cons.Params
	sc := &ev.stats[li][szIdx].step[t]

	ncSpan := pos.ncLast - pos.ncFirst + 1
	sync = int32(p.SyncCyclesPerNC * ((ncSpan + 7) / 8))

	if cross {
		total := ev.busTotal[li][t]
		sent := ev.busSent[li][t]
		e += float64(total) * p.ZeroCheck
		per := 2.0
		if li == 0 {
			per = 1.0
		}
		e += float64(sent) * per * (p.BusWord + ev.sramAccess)
		bus = int32((int(sent) + p.BusWordsPerCycle - 1) / p.BusWordsPerCycle)
	}

	e += float64(sc.words) * p.ZeroCheck
	e += float64(sc.delivered) * (p.SwitchHop + 2*p.BufferAccess)
	e += float64(sc.active) * p.MPEControl
	e += sc.crossbarE
	e += float64(sc.integrations) * p.NeuronIntegrate

	sp := ev.spikes[li][t]
	e += float64(sp) * (p.NeuronSpike + p.SpikeHandling)

	per := 9
	if ev.cons.Hierarchy.MPEsPerNC != 16 {
		per = ev.cons.Hierarchy.MPEsPerNC/2 + 1
	}
	switches := ncSpan * per
	delivery := (int(sc.delivered) + switches - 1) / switches
	integrate := int(sc.maxMux) * p.IntegrateCycles
	drain := 0
	if sp > 0 || sc.maxMux > 0 {
		drain = (int(sp) + pos.mpeSpan - 1) / pos.mpeSpan
		if sp == 0 {
			drain++
		}
	}
	local = int32(delivery + integrate + drain)
	return e, sync, bus, local
}

// stage is one (timestep, layer) pipeline stage duration, the mapper-local
// twin of core.StageDur.
type stage struct{ sync, bus, local int32 }

// evaluate prices a full candidate. The Objective field is left zero — it is
// relative to a baseline the caller supplies to objective().
func (ev *evaluator) evaluate(c candidate) (CostBreakdown, error) {
	L := len(ev.net.Layers)
	pos, cursor := ev.positions(c)

	ranges := cutRanges(c.cuts, L)
	if limit := ev.cons.MaxMPEsPerChip; limit > 0 {
		for _, r := range ranges {
			mpes := 0
			for li := r[0]; li < r[1]; li++ {
				mpes += pos[li].mpeSpan
			}
			if mpes > limit {
				return CostBreakdown{}, fmt.Errorf("mapping: layers [%d,%d) need %d mPEs, chip capacity %d",
					r[0], r[1], mpes, limit)
			}
		}
	}

	cross := make([]bool, L)
	for li := 0; li < L; li++ {
		cross[li] = ev.crossNC(li, pos)
	}

	steps := ev.cons.Steps
	energyJ := 0.0
	stages := make([][]stage, steps)
	for t := 0; t < steps; t++ {
		stages[t] = make([]stage, L)
		for li := 0; li < L; li++ {
			e, sync, bus, local := ev.layerStep(li, t, c.size[li], cross[li], pos[li])
			energyJ += e
			stages[t][li] = stage{sync, bus, local}
		}
	}

	// Inter-chip hops: each cut's boundary raster crosses as zero-checked
	// flits, with the shard link model's energy and occupancy.
	lp := ev.cons.Link
	fpc := lp.FlitsPerCycle
	if fpc < 1 {
		fpc = 1
	}
	linkFlits := 0
	linkE := 0.0
	hops := make([][]int64, len(c.cuts))
	for h, cut := range c.cuts {
		bl := cut - 1 // boundary layer: its output raster crosses the hop
		hops[h] = make([]int64, steps)
		for t := 0; t < steps; t++ {
			sent := int(ev.flitSent[bl][t])
			linkFlits += sent
			linkE += float64(ev.flitTotal[bl][t])*lp.ZeroCheck + float64(sent)*lp.FlitEnergy
			hops[h][t] = int64(lp.SyncCycles + (sent+fpc-1)/fpc)
		}
	}

	makespan := pipelineMakespan(stages, ranges, hops, lp.RecvBuf)
	perNC := ev.cons.Hierarchy.MPEsPerNC
	return CostBreakdown{
		EnergyJ:     energyJ + linkE,
		LatencyS:    float64(makespan) * ev.cons.Params.NCCycle(),
		LinkFlits:   linkFlits,
		LinkEnergyJ: linkE,
		MPEs:        cursor,
		NCs:         (cursor + perNC - 1) / perNC,
	}, nil
}

// objective blends a cost against the baseline under the constraint weights.
func (ev *evaluator) objective(c, base CostBreakdown) float64 {
	return objectiveOf(c, base, ev.cons.Weights)
}

// objectiveOf is the weighted normalized objective: each term is the
// candidate's value relative to the baseline's.
func objectiveOf(c, base CostBreakdown, w Weights) float64 {
	obj := 0.0
	if base.EnergyJ > 0 {
		obj += w.Energy * c.EnergyJ / base.EnergyJ
		obj += w.Traffic * c.LinkEnergyJ / base.EnergyJ
	}
	if base.LatencyS > 0 {
		obj += w.Latency * c.LatencyS / base.LatencyS
	}
	return obj
}

// cutRanges converts cut points to [lo, hi) layer ranges.
func cutRanges(cuts []int, layers int) [][2]int {
	out := make([][2]int, 0, len(cuts)+1)
	lo := 0
	for _, c := range cuts {
		out = append(out, [2]int{lo, c})
		lo = c
	}
	return append(out, [2]int{lo, layers})
}

// pipelineMakespan is the mapper's pipeline DES, mirroring the composition
// core.PipelineMakespan and shard's eventMakespan use: stage (chip s,
// timestep t, layer j) starts once (s, t-1, j) and (s, t, j-1) are done;
// each chip's bus phases serialize on that chip's global bus; each hop
// transfers rasters strictly in timestep order under a bounded receive
// buffer. stages is indexed [timestep][global layer]; ranges partitions the
// layers into chips; hops[h][t] is hop h's transfer occupancy for raster t.
func pipelineMakespan(stages [][]stage, ranges [][2]int, hops [][]int64, recvBuf int) int64 {
	T := len(stages)
	if T == 0 {
		return 0
	}
	S := len(ranges)
	if recvBuf < 1 {
		recvBuf = 1
	}

	var eng event.Engine
	buses := make([]event.Resource, S)
	need := make([][][]int8, S)
	for s := 0; s < S; s++ {
		L := ranges[s][1] - ranges[s][0]
		need[s] = make([][]int8, T)
		for t := 0; t < T; t++ {
			need[s][t] = make([]int8, L)
			for j := 0; j < L; j++ {
				if t > 0 {
					need[s][t][j]++
				}
				if j > 0 || s > 0 {
					need[s][t][j]++
				}
			}
		}
	}

	readyAt := make([][]int64, S-1)
	next := make([]int, S-1)
	busy := make([]bool, S-1)
	credits := make([]int, S-1)
	for h := range readyAt {
		readyAt[h] = make([]int64, T)
		for t := range readyAt[h] {
			readyAt[h][t] = -1
		}
		credits[h] = recvBuf
	}

	var launch func(s, t, j int)
	signal := func(s, t, j int) {
		if t >= T || j >= len(need[s][t]) {
			return
		}
		need[s][t][j]--
		if need[s][t][j] <= 0 {
			launch(s, t, j)
		}
	}
	var trySend func(h int)
	trySend = func(h int) {
		t := next[h]
		if t >= T || busy[h] || readyAt[h][t] < 0 || credits[h] == 0 {
			return
		}
		busy[h] = true
		credits[h]--
		eng.Schedule(eng.Now()+hops[h][t], int32(1<<20+h), func() {
			busy[h] = false
			next[h]++
			signal(h+1, t, 0)
			trySend(h)
		})
	}
	launch = func(s, t, j int) {
		d := stages[t][ranges[s][0]+j]
		busAt := eng.Now() + int64(d.sync)
		end := busAt + int64(d.local)
		if d.bus > 0 {
			start := buses[s].Acquire(busAt, int64(d.bus))
			end = start + int64(d.bus) + int64(d.local)
		}
		last := j == len(need[s][t])-1
		eng.Schedule(end, int32(s<<10+j), func() {
			if last && s < S-1 {
				readyAt[s][t] = eng.Now()
				trySend(s)
			}
			if j == 0 && s > 0 {
				credits[s-1]++
				trySend(s - 1)
			}
			signal(s, t, j+1)
			signal(s, t+1, j)
		})
	}
	eng.Schedule(0, 0, func() { launch(0, 0, 0) })
	return eng.Run()
}

// minimaxCuts cuts the per-layer mPE spans into n contiguous parts
// minimizing the maximum part sum, returning the cut points (part starts,
// exclusive 0) — the same DP internal/shard partitions with, so a greedy
// placement's cuts reproduce shard.New's partition exactly.
func minimaxCuts(spans []int, n int) []int {
	L := len(spans)
	if n > L {
		n = L
	}
	if n <= 1 {
		return nil
	}
	prefix := make([]int, L+1)
	for i, c := range spans {
		prefix[i+1] = prefix[i] + c
	}
	const inf = int(^uint(0) >> 1)
	dp := make([][]int, n+1)
	cut := make([][]int, n+1)
	for k := range dp {
		dp[k] = make([]int, L+1)
		cut[k] = make([]int, L+1)
		for i := range dp[k] {
			dp[k][i] = inf
		}
	}
	dp[0][0] = 0
	for k := 1; k <= n; k++ {
		for i := k; i <= L; i++ {
			for j := k - 1; j < i; j++ {
				if dp[k-1][j] == inf {
					continue
				}
				v := dp[k-1][j]
				if s := prefix[i] - prefix[j]; s > v {
					v = s
				}
				if v < dp[k][i] {
					dp[k][i] = v
					cut[k][i] = j
				}
			}
		}
	}
	cuts := make([]int, 0, n-1)
	hi := L
	for k := n; k >= 2; k-- {
		hi = cut[k][hi]
		cuts = append(cuts, hi)
	}
	// Collected back to front; reverse into ascending order.
	for i, j := 0, len(cuts)-1; i < j; i, j = i+1, j-1 {
		cuts[i], cuts[j] = cuts[j], cuts[i]
	}
	return cuts
}
