package mapping

import (
	"fmt"
	"sort"

	"resparc/internal/fault"
)

// This file is the fault-aware mapping pass: given per-allocation health
// (from program-verify reports or a fault campaign survey), it remaps
// allocations sitting on unrepairable crossbars to spare mPEs, and marks
// the mapping degraded — with an estimated accuracy loss — for whatever it
// cannot move. The ILP-remapping literature (Pohl et al.) treats routing
// around heterogeneous/degraded crossbars as a first-class compiler
// concern; this is the greedy, screened-spares version of that idea.
//
// Why screening matters: at the Ag-Si default defect rate (0.002) a 64x64
// crossbar carries ~16 expected stuck devices, so EVERY array — spares
// included — has faults. Unscreened spares would trade one set of faults
// for another. Real deployments bin arrays at configuration time (the
// program-verify loop is exactly the screen), so RemapConfig.Screen lets
// the caller accept only spare slots whose fault map is clean over the
// allocation's used region.

// MCAHealth is the observed health of one mapped allocation.
type MCAHealth struct {
	// Layer/Index locate the allocation: Layers[Layer].MCAs[Index].
	Layer, Index int
	// BadTaps is the number of unrepairable used cross-points (from the
	// verify report, after discounting benign stuck cells).
	BadTaps int
	// Dead marks a whole-slot or whole-mPE kill: the allocation computes
	// nothing at all.
	Dead bool
}

// RemapConfig tunes the fault-aware pass.
type RemapConfig struct {
	// SpareMPEs is the size of the spare pool appended after the mapping's
	// last used mPE (each spare mPE holds MCAsPerMPE slots).
	SpareMPEs int
	// MaxBadTaps: allocations with at most this many bad used taps are
	// tolerated in place (no move). Dead allocations are always moved.
	MaxBadTaps int
	// Screen reports whether a spare slot is known-good for the allocation
	// (the configuration-time program-verify screen). nil accepts every
	// spare unconditionally.
	Screen func(id fault.SlotID, a *MCA) bool
}

// Move records one allocation relocated to a spare slot.
type Move struct {
	Layer, Index int
	From, To     fault.SlotID
}

// RemapReport is the outcome of one fault-aware pass.
type RemapReport struct {
	// Faulty is the number of allocations over the tolerance (or dead).
	Faulty int
	// Moves lists the relocations performed.
	Moves []Move
	// SparesUsed counts spare slots consumed (including previous passes).
	SparesUsed int
	// Degraded lists the allocations that could not be moved (spare pool
	// exhausted or screened out): the mapping still runs, wrong.
	Degraded []MCAHealth
	// ResidualBadTaps sums BadTaps over Degraded (dead allocations count
	// all their taps).
	ResidualBadTaps int
	// EstAccuracyLoss estimates the classification-accuracy cost of the
	// residual damage: the fraction of programmed synapses that are wrong,
	// saturated at 1. A crude first-order proxy — the faults sweep
	// (experiments) measures the real number.
	EstAccuracyLoss float64
}

// Degraded reports whether residual damage remains after the pass.
func (r *RemapReport) IsDegraded() bool { return len(r.Degraded) > 0 }

func (r *RemapReport) String() string {
	return fmt.Sprintf("remap: %d faulty, %d moved, %d spares used, %d degraded (est. accuracy loss %.1f%%)",
		r.Faulty, len(r.Moves), r.SparesUsed, len(r.Degraded), 100*r.EstAccuracyLoss)
}

// RemapFaulty relocates unhealthy allocations to spare mPEs. Spares sit
// after the mapping's original last mPE ([SpareFirst, SpareFirst+Spares));
// each faulty allocation takes the first spare slot the screen accepts.
// Allocations that cannot be placed are returned in Degraded and the
// mapping keeps its (wrong) placement — callers decide whether to serve
// degraded or refuse.
//
// The pass mutates the mapping's placements (MPE/NC/Slot of moved MCAs,
// the spare-region bookkeeping, and the MPEs/NCs totals); performance
// accounting still uses the original per-layer placement ranges, treating
// spares as co-located — a first-order simplification.
func (m *Mapping) RemapFaulty(health []MCAHealth, cfg RemapConfig) (*RemapReport, error) {
	if cfg.SpareMPEs < 0 {
		return nil, fmt.Errorf("mapping: negative spare pool %d", cfg.SpareMPEs)
	}
	if m.SpareFirst == 0 {
		m.SpareFirst = m.MPEs
	}
	if cfg.SpareMPEs > m.Spares {
		m.Spares = cfg.SpareMPEs
	}
	rep := &RemapReport{SparesUsed: m.spareCursor}
	// Deterministic processing order regardless of how the caller gathered
	// the health reports.
	sorted := append([]MCAHealth(nil), health...)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].Layer != sorted[j].Layer {
			return sorted[i].Layer < sorted[j].Layer
		}
		return sorted[i].Index < sorted[j].Index
	})
	totalTaps := 0
	for li := range m.Layers {
		for ai := range m.Layers[li].MCAs {
			totalTaps += m.Layers[li].MCAs[ai].Taps
		}
	}
	for _, h := range sorted {
		if h.Layer < 0 || h.Layer >= len(m.Layers) {
			return nil, fmt.Errorf("mapping: health report for layer %d of %d", h.Layer, len(m.Layers))
		}
		lm := &m.Layers[h.Layer]
		if h.Index < 0 || h.Index >= len(lm.MCAs) {
			return nil, fmt.Errorf("mapping: health report for MCA %d of layer %d (%d MCAs)", h.Index, h.Layer, len(lm.MCAs))
		}
		if !h.Dead && h.BadTaps <= cfg.MaxBadTaps {
			continue
		}
		rep.Faulty++
		a := &lm.MCAs[h.Index]
		moved := false
		for !moved {
			slot, ok := m.nextSpare()
			if !ok {
				break // pool exhausted
			}
			if cfg.Screen != nil && !cfg.Screen(slot, a) {
				continue // screened out; the slot is burned (it is faulty)
			}
			rep.Moves = append(rep.Moves, Move{
				Layer: h.Layer, Index: h.Index,
				From: fault.SlotID{MPE: a.MPE, Slot: a.Slot},
				To:   slot,
			})
			a.MPE, a.Slot = slot.MPE, slot.Slot
			a.NC = slot.MPE / m.Cfg.MPEsPerNC
			moved = true
		}
		if !moved {
			rep.Degraded = append(rep.Degraded, h)
			if h.Dead {
				rep.ResidualBadTaps += a.Taps
			} else {
				rep.ResidualBadTaps += h.BadTaps
			}
		}
	}
	rep.SparesUsed = m.spareCursor
	if totalTaps > 0 {
		rep.EstAccuracyLoss = float64(rep.ResidualBadTaps) / float64(totalTaps)
		if rep.EstAccuracyLoss > 1 {
			rep.EstAccuracyLoss = 1
		}
	}
	// Extend the chip to cover the consumed spares.
	if used := (m.spareCursor + m.Cfg.MCAsPerMPE - 1) / m.Cfg.MCAsPerMPE; used > 0 {
		if last := m.SpareFirst + used; last > m.MPEs {
			m.MPEs = last
		}
		if ncs := (m.MPEs + m.Cfg.MPEsPerNC - 1) / m.Cfg.MPEsPerNC; ncs > m.NCs {
			m.NCs = ncs
		}
	}
	return rep, nil
}

// nextSpare hands out spare slots in order: slot-major within each spare
// mPE. Returns ok=false when the pool is exhausted.
func (m *Mapping) nextSpare() (fault.SlotID, bool) {
	if m.spareCursor >= m.Spares*m.Cfg.MCAsPerMPE {
		return fault.SlotID{}, false
	}
	id := fault.SlotID{
		MPE:  m.SpareFirst + m.spareCursor/m.Cfg.MCAsPerMPE,
		Slot: m.spareCursor % m.Cfg.MCAsPerMPE,
	}
	m.spareCursor++
	return id, true
}

// inSpareRegion reports whether an mPE index lies in the spare pool.
func (m *Mapping) inSpareRegion(mpeIdx int) bool {
	return m.Spares > 0 && mpeIdx >= m.SpareFirst && mpeIdx < m.SpareFirst+m.Spares
}
