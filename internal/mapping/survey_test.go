package mapping

import (
	"reflect"
	"testing"

	"resparc/internal/fault"
)

// SurveyCells/ScreenCells over a campaign's own dead/cells functions must
// agree exactly with the campaign-specialized wrappers, and a wear source
// layered on top must only grow the reported damage.
func TestSurveyCellsMatchesCampaign(t *testing.T) {
	m := remapMapping(t)
	camp := fault.Campaign{Seed: 21, StuckFraction: 0.01, StuckHighShare: 0.5}

	direct := m.SurveyCampaign(camp)
	viaCells := m.SurveyCells(camp.SlotDead, camp.StuckCells)
	if !reflect.DeepEqual(direct, viaCells) {
		t.Fatalf("SurveyCells %+v differs from SurveyCampaign %+v", viaCells, direct)
	}
	if len(direct) == 0 {
		t.Fatal("expected some unhealthy allocations at 1% stuck")
	}

	lt := fault.Lifetime{Camp: camp, EOL: 1e6, WearFraction: 0.02}
	aged := m.SurveyCells(camp.SlotDead, func(id fault.SlotID, rows, cols int) []fault.StuckCell {
		return append(lt.WearCells(id, rows, cols, lt.EOL), camp.StuckCells(id, rows, cols)...)
	})
	total := func(hs []MCAHealth) int {
		n := 0
		for _, h := range hs {
			n += h.BadTaps
		}
		return n
	}
	if total(aged) <= total(direct) {
		t.Fatalf("EOL wear did not add damage: %d vs %d bad taps", total(aged), total(direct))
	}

	// Screen equivalence on a spare slot: same accept/reject decision.
	a := &m.Layers[0].MCAs[0]
	spare := fault.SlotID{MPE: m.MPEs + 1, Slot: 0}
	s1 := m.CampaignScreen(camp, 4)(spare, a)
	s2 := m.ScreenCells(camp.SlotDead, camp.StuckCells, 4)(spare, a)
	if s1 != s2 {
		t.Fatalf("screen decisions differ: %v vs %v", s1, s2)
	}
}
