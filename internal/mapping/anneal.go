package mapping

import (
	"math"
	"math/rand"

	"resparc/internal/parallel"
	"resparc/internal/snn"
)

// Annealed is the optimizing Mapper: simulated annealing over per-layer MCA
// sizes, NeuroCell alignment and shard cut points, followed by a
// branch-and-bound sweep of the size vector for small networks. The schedule
// is fully deterministic — every chain runs a seeded generator, chains are
// independent, and the winner is the (objective, chain index) minimum — so
// the same seed always yields a byte-identical Placement regardless of
// worker count.
type Annealed struct {
	// Seed seeds the search (chain i uses Seed + 1000*i). Zero is a valid
	// seed, not "random": there is no nondeterminism anywhere.
	Seed int64
	// Iters is the per-chain iteration count (<= 0 selects 400).
	Iters int
	// Chains is the number of independent annealing chains (<= 0 selects 4).
	// Chains run concurrently but the outcome is worker-count independent.
	Chains int
	// NoRefine skips the branch-and-bound size sweep.
	NoRefine bool
}

// Name implements Mapper.
func (Annealed) Name() string { return "annealed" }

// refineMaxLayers bounds the branch-and-bound sweep: |Sizes|^L leaves are
// explored (with pruning) only when L is at most this.
const refineMaxLayers = 12

// refineMaxNodes caps the sweep's evaluations as a backstop for wide size
// sets.
const refineMaxNodes = 20000

// Plan implements Mapper.
func (a Annealed) Plan(net *snn.Network, cons Constraints) (*Placement, error) {
	if err := cons.normalize(); err != nil {
		return nil, err
	}
	iters := a.Iters
	if iters <= 0 {
		iters = 400
	}
	chains := a.Chains
	if chains <= 0 {
		chains = 4
	}
	ev, err := newEvaluator(net, cons)
	if err != nil {
		return nil, err
	}

	// The greedy layout is both the baseline the objective normalizes
	// against and every chain's starting point.
	start, err := ev.greedyCandidate()
	if err != nil {
		return nil, err
	}
	baseCost, err := ev.evaluate(start)
	if err != nil {
		return nil, err
	}

	type outcome struct {
		c   candidate
		obj float64
	}
	results := make([]outcome, chains)
	parallel.ForEach(chains, parallel.Clamp(chains, chains), func(_, i int) {
		c, obj := ev.annealChain(start, baseCost, a.Seed+1000*int64(i), iters)
		results[i] = outcome{c: c, obj: obj}
	})
	best := results[0]
	for _, r := range results[1:] {
		// Strict < keeps the lowest chain index on ties — deterministic.
		if r.obj < best.obj {
			best = r
		}
	}

	if !a.NoRefine && len(net.Layers) <= refineMaxLayers {
		best.c, best.obj = ev.refineSizes(best.c, best.obj, baseCost)
	}
	// Rebalance the cuts for the final sizes and keep whichever is better.
	if len(best.c.cuts) > 0 {
		rb := best.c.clone()
		rb.cuts = ev.balancedCuts(rb)
		if cost, err := ev.evaluate(rb); err == nil {
			if obj := ev.objective(cost, baseCost); obj < best.obj {
				best.c, best.obj = rb, obj
			}
		}
	}

	cost, err := ev.evaluate(best.c)
	if err != nil {
		return nil, err
	}
	cost.Objective = ev.objective(cost, baseCost)
	return ev.placement("annealed", a.Seed, best.c, cost)
}

// annealChain runs one simulated-annealing chain and returns its best
// visited candidate. The temperature follows a geometric schedule from 20%
// of the starting objective down three decades; acceptance is the standard
// Metropolis criterion.
func (ev *evaluator) annealChain(start candidate, baseCost CostBreakdown, seed int64, iters int) (candidate, float64) {
	rng := rand.New(rand.NewSource(seed))
	cur := start.clone()
	curObj := ev.objective(baseCost, baseCost)
	bestC, bestObj := cur.clone(), curObj

	t0 := 0.2 * curObj
	alpha := math.Pow(1e-3, 1/float64(iters)) // t0 -> t0/1000 over the run
	temp := t0
	for i := 0; i < iters; i++ {
		cand := ev.neighbor(cur, rng)
		cost, err := ev.evaluate(cand)
		if err != nil {
			temp *= alpha
			continue // infeasible (capacity): never accepted
		}
		obj := ev.objective(cost, baseCost)
		if obj <= curObj || rng.Float64() < math.Exp((curObj-obj)/temp) {
			cur, curObj = cand, obj
			if obj < bestObj {
				bestC, bestObj = cand.clone(), obj
			}
		}
		temp *= alpha
	}
	return bestC, bestObj
}

// neighbor draws one mutation of the candidate: resize a layer (most
// common), toggle a layer's NeuroCell alignment, shift a shard cut, or
// resize every layer at once (the move that escapes uniform-size local
// minima in one step).
func (ev *evaluator) neighbor(c candidate, rng *rand.Rand) candidate {
	out := c.clone()
	L := len(out.size)
	S := len(ev.cons.Sizes)
	move := rng.Intn(10)
	switch {
	case move < 5 && S > 1: // resize one layer
		li := rng.Intn(L)
		out.size[li] = (out.size[li] + 1 + rng.Intn(S-1)) % S
	case move < 7 && L > 1: // toggle alignment (layer 0 always starts at 0)
		li := 1 + rng.Intn(L-1)
		out.align[li] = !out.align[li]
	case move < 9 && len(out.cuts) > 0: // shift one cut
		h := rng.Intn(len(out.cuts))
		delta := 1
		if rng.Intn(2) == 0 {
			delta = -1
		}
		nc := out.cuts[h] + delta
		lo, hi := 1, L-1
		if h > 0 {
			lo = out.cuts[h-1] + 1
		}
		if h < len(out.cuts)-1 {
			hi = out.cuts[h+1] - 1
		}
		if nc >= lo && nc <= hi {
			out.cuts[h] = nc
		}
	default: // global resize
		if S > 1 {
			sz := rng.Intn(S)
			for li := range out.size {
				out.size[li] = sz
			}
		}
	}
	return out
}

// refineSizes exhausts the per-layer size vectors around the annealed
// winner (alignment and cuts held fixed) by depth-first branch and bound.
// The bound is admissible: a prefix's weighted energy alone — remaining
// layers and the whole latency term can only add cost — so pruning never
// discards the optimum; refineMaxNodes caps the walk as a safety net.
func (ev *evaluator) refineSizes(c candidate, bestObj float64, baseCost CostBreakdown) (candidate, float64) {
	L := len(ev.net.Layers)
	S := len(ev.cons.Sizes)
	if baseCost.EnergyJ <= 0 {
		return c, bestObj
	}
	wE := ev.cons.Weights.Energy
	best := c.clone()
	work := c.clone()
	nodes := 0

	// prefixE[li] accumulates the decided layers' energy. A layer's energy
	// depends only on its own (size, position) and whether it crosses
	// NeuroCells — which the decided prefix fully determines.
	var dfs func(li, cursor int, prefixE float64, pos []layerPos)
	dfs = func(li, cursor int, prefixE float64, pos []layerPos) {
		if nodes >= refineMaxNodes {
			return
		}
		if li == L {
			nodes++
			cand := work.clone()
			cost, err := ev.evaluate(cand)
			if err != nil {
				return
			}
			if obj := ev.objective(cost, baseCost); obj < bestObj {
				bestObj = obj
				best = cand
			}
			return
		}
		if wE*prefixE/baseCost.EnergyJ >= bestObj {
			return // admissible lower bound already exceeds the incumbent
		}
		perNC := ev.cons.Hierarchy.MPEsPerNC
		for s := 0; s < S; s++ {
			work.size[li] = s
			cur := cursor
			if work.align[li] && cur%perNC != 0 {
				cur += perNC - cur%perNC
			}
			span := ev.stats[li][s].mpeSpan
			pos[li] = layerPos{
				mpeFirst: cur, mpeSpan: span,
				ncFirst: cur / perNC, ncLast: (cur + span - 1) / perNC,
			}
			e := 0.0
			cross := ev.crossNC(li, pos)
			for t := 0; t < ev.cons.Steps; t++ {
				et, _, _, _ := ev.layerStep(li, t, s, cross, pos[li])
				e += et
			}
			dfs(li+1, cur+span, prefixE+e, pos)
		}
		work.size[li] = c.size[li]
	}
	dfs(0, 0, 0, make([]layerPos, L))
	return best, bestObj
}
