package mapping

import (
	"bytes"
	"reflect"
	"testing"

	"resparc/internal/snn"
	"resparc/internal/tensor"
)

// testNetwork is a small heterogeneous stack: a conv layer, a wide dense
// layer (time-multiplexed at small sizes), and a classifier head.
func testNetwork(t *testing.T) (*snn.Network, Config) {
	t.Helper()
	geom := tensor.ConvGeom{In: tensor.Shape3{H: 8, W: 8, C: 3}, OutC: 8, K: 3, Stride: 1, Pad: 1}
	conv := convLayer(t, geom)
	outShape, err := geom.OutShape()
	if err != nil {
		t.Fatal(err)
	}
	d1 := denseLayer(t, outShape.Size(), 96)
	d2 := denseLayer(t, 96, 10)
	net := netOf(t, geom.In, conv, d1, d2)
	return net, cfg(64)
}

func testConstraints(c Config) Constraints {
	cons := DefaultConstraints(c)
	cons.Steps = 6
	return cons
}

func TestGreedyPlanMatchesMap(t *testing.T) {
	net, c := testNetwork(t)
	p, err := (Greedy{}).Plan(net, testConstraints(c))
	if err != nil {
		t.Fatal(err)
	}
	if p.Mapper != "greedy" || p.SchemaVersion != PlacementSchemaVersion {
		t.Fatalf("mapper %q schema %d", p.Mapper, p.SchemaVersion)
	}
	applied, err := p.Apply(net)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := Map(net, c)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(applied.Layers, direct.Layers) {
		t.Fatal("greedy placement realizes a different mapping than the direct path")
	}
	if applied.MPEs != direct.MPEs || applied.NCs != direct.NCs || applied.MCAs != direct.MCAs {
		t.Fatalf("totals differ: %d/%d/%d vs %d/%d/%d",
			applied.MPEs, applied.NCs, applied.MCAs, direct.MPEs, direct.NCs, direct.MCAs)
	}
	if p.Cost.EnergyJ <= 0 || p.Cost.LatencyS <= 0 {
		t.Fatalf("degenerate cost %+v", p.Cost)
	}
}

func TestPlacementRoundTrip(t *testing.T) {
	net, c := testNetwork(t)
	p, err := (Greedy{}).Plan(net, testConstraints(c))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WritePlacement(&buf, p); err != nil {
		t.Fatal(err)
	}
	back, err := ReadPlacement(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(p, back) {
		t.Fatalf("round trip changed the placement:\n%+v\n%+v", p, back)
	}
	if err := back.Validate(net); err != nil {
		t.Fatal(err)
	}
}

func TestPlacementSchemaVersionRejected(t *testing.T) {
	net, c := testNetwork(t)
	p, err := (Greedy{}).Plan(net, testConstraints(c))
	if err != nil {
		t.Fatal(err)
	}
	p.SchemaVersion = PlacementSchemaVersion + 1
	var buf bytes.Buffer
	if err := WritePlacement(&buf, p); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadPlacement(&buf); err == nil {
		t.Fatal("future schema version accepted")
	}
}

func TestAnnealedDeterministic(t *testing.T) {
	net, c := testNetwork(t)
	cons := testConstraints(c)
	m := Annealed{Seed: 42, Iters: 60, Chains: 3}
	var out [2][]byte
	for i := range out {
		p, err := m.Plan(net, cons)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := WritePlacement(&buf, p); err != nil {
			t.Fatal(err)
		}
		out[i] = buf.Bytes()
	}
	if !bytes.Equal(out[0], out[1]) {
		t.Fatalf("same seed produced different placements:\n%s\n%s", out[0], out[1])
	}
}

func TestAnnealedNotWorseThanGreedy(t *testing.T) {
	net, c := testNetwork(t)
	cons := testConstraints(c)
	g, err := (Greedy{}).Plan(net, cons)
	if err != nil {
		t.Fatal(err)
	}
	a, err := (Annealed{Seed: 1, Iters: 120, Chains: 2}).Plan(net, cons)
	if err != nil {
		t.Fatal(err)
	}
	// Both objectives are normalized against the same greedy baseline, and
	// the annealer's incumbent starts at that baseline, so it can never end
	// worse.
	if a.Cost.Objective > g.Cost.Objective {
		t.Fatalf("annealed objective %.6f worse than greedy %.6f", a.Cost.Objective, g.Cost.Objective)
	}
	if err := a.Validate(net); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Apply(net); err != nil {
		t.Fatal(err)
	}
}

func TestAnnealedShardCuts(t *testing.T) {
	net, c := testNetwork(t)
	cons := testConstraints(c)
	cons.Shards = 2
	a, err := (Annealed{Seed: 7, Iters: 80, Chains: 2}).Plan(net, cons)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.ShardCuts) != 1 {
		t.Fatalf("want 1 cut for 2 shards, got %v", a.ShardCuts)
	}
	if r := a.ShardRanges(len(net.Layers)); len(r) != 2 || r[0][0] != 0 || r[1][1] != len(net.Layers) {
		t.Fatalf("bad ranges %v", r)
	}
	if a.Cost.LinkFlits <= 0 || a.Cost.LinkEnergyJ <= 0 {
		t.Fatalf("2-shard plan models no link traffic: %+v", a.Cost)
	}
}

func TestHeterogeneousApply(t *testing.T) {
	net, c := testNetwork(t)
	p, err := (Greedy{}).Plan(net, testConstraints(c))
	if err != nil {
		t.Fatal(err)
	}
	p.Layers[0].MCASize = 32
	p.Layers[1].MCASize = 128
	p.Layers[2].NCAlign = true
	m, err := p.Apply(net)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	want := []int{32, 128, 64}
	for li, n := range want {
		if m.LayerSize(li) != n {
			t.Fatalf("layer %d size %d, want %d", li, m.LayerSize(li), n)
		}
	}
	// NC alignment starts layer 2 on a fresh NeuroCell.
	if m.Layers[2].MPEFirst%c.MPEsPerNC != 0 {
		t.Fatalf("aligned layer starts at mPE %d (not a multiple of %d)", m.Layers[2].MPEFirst, c.MPEsPerNC)
	}
}

func TestApplyRejectsWrongNetwork(t *testing.T) {
	net, c := testNetwork(t)
	p, err := (Greedy{}).Plan(net, testConstraints(c))
	if err != nil {
		t.Fatal(err)
	}
	other := netOf(t, tensor.Shape3{H: 1, W: 1, C: 16}, denseLayer(t, 16, 4))
	if _, err := p.Apply(other); err == nil {
		t.Fatal("placement applied to a different network")
	}
}

func TestBestUniform(t *testing.T) {
	net, c := testNetwork(t)
	cons := testConstraints(c)
	p, err := BestUniform(net, cons)
	if err != nil {
		t.Fatal(err)
	}
	first := p.Layers[0].MCASize
	for _, lp := range p.Layers {
		if lp.MCASize != first {
			t.Fatalf("BestUniform produced heterogeneous sizes: %+v", p.Layers)
		}
	}
	if first != 32 && first != 64 && first != 128 {
		t.Fatalf("size %d not among the default candidates", first)
	}
}

func TestMinimaxCuts(t *testing.T) {
	cuts := minimaxCuts([]int{4, 4, 4, 4}, 2)
	if len(cuts) != 1 || cuts[0] != 2 {
		t.Fatalf("got %v", cuts)
	}
	if got := minimaxCuts([]int{5}, 3); len(got) != 0 {
		t.Fatalf("single layer got cuts %v", got)
	}
}
