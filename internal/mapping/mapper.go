package mapping

import (
	"fmt"

	"resparc/internal/snn"
)

// Mapper is the pluggable placement strategy: it plans how a network lands
// on the crossbar hierarchy — per-layer MCA size, NeuroCell alignment, shard
// cut points — and returns the decision as a serializable Placement
// artifact. Consumers (core, shard, serve, the cmd tools) realize the
// artifact with Placement.Apply instead of re-deriving layout.
type Mapper interface {
	// Name identifies the strategy ("greedy", "annealed").
	Name() string
	// Plan searches the constraint space and returns the chosen placement
	// with its modeled cost breakdown.
	Plan(net *snn.Network, cons Constraints) (*Placement, error)
}

// Greedy is the legacy one-shot strategy as a Mapper: the uniform baseline
// MCA size everywhere (Constraints.Hierarchy.MCASize), no NeuroCell
// alignment, and — for multi-chip plans — the minimax mPE-balance cuts
// internal/shard derives on its own. Applying a Greedy placement therefore
// reproduces the direct Map(net, cfg) + shard.New path bit for bit.
type Greedy struct{}

// Name implements Mapper.
func (Greedy) Name() string { return "greedy" }

// Plan implements Mapper.
func (Greedy) Plan(net *snn.Network, cons Constraints) (*Placement, error) {
	if err := cons.normalize(); err != nil {
		return nil, err
	}
	ev, err := newEvaluator(net, cons)
	if err != nil {
		return nil, err
	}
	c, err := ev.greedyCandidate()
	if err != nil {
		return nil, err
	}
	cost, err := ev.evaluate(c)
	if err != nil {
		return nil, err
	}
	cost.Objective = ev.objective(cost, cost)
	return ev.placement("greedy", 0, c, cost)
}

// BestUniform sweeps the constraint's candidate sizes with Greedy plans and
// returns the uniform placement minimizing the modeled objective — the
// Mapper-API successor of BestMCASize (heterogeneous search is Annealed's
// job). The returned placement's Objective is relative to the plan at the
// baseline Hierarchy.MCASize.
func BestUniform(net *snn.Network, cons Constraints) (*Placement, error) {
	if err := cons.normalize(); err != nil {
		return nil, err
	}
	var best *Placement
	for _, n := range cons.Sizes {
		c := cons
		c.Hierarchy.MCASize = n
		if n > c.Hierarchy.Tech.MaxSize {
			continue
		}
		p, err := Greedy{}.Plan(net, c)
		if err != nil {
			return nil, err
		}
		if best == nil || objectiveOf(p.Cost, best.Cost, cons.Weights) < objectiveOf(best.Cost, best.Cost, cons.Weights) {
			best = p
		}
	}
	if best == nil {
		return nil, fmt.Errorf("mapping: no candidate size permitted by %s (max %d)",
			cons.Hierarchy.Tech.Name, cons.Hierarchy.Tech.MaxSize)
	}
	return best, nil
}

// greedyCandidate is the legacy layout as a search point: the uniform
// baseline size, no alignment, minimax cuts.
func (ev *evaluator) greedyCandidate() (candidate, error) {
	base := ev.cons.Hierarchy.MCASize
	szIdx := ev.cons.sizeIndex(base)
	if szIdx < 0 {
		return candidate{}, fmt.Errorf("mapping: baseline MCA size %d not among candidates %v",
			base, ev.cons.Sizes)
	}
	L := len(ev.net.Layers)
	c := candidate{size: make([]int, L), align: make([]bool, L)}
	for li := range c.size {
		c.size[li] = szIdx
	}
	c.cuts = ev.balancedCuts(c)
	return c, nil
}

// balancedCuts re-derives the minimax mPE-balance cut points for the
// candidate's current sizes (nil for single-chip plans).
func (ev *evaluator) balancedCuts(c candidate) []int {
	if ev.cons.Shards <= 1 {
		return nil
	}
	spans := make([]int, len(ev.net.Layers))
	for li := range spans {
		spans[li] = ev.stats[li][c.size[li]].mpeSpan
	}
	return minimaxCuts(spans, ev.cons.Shards)
}

// placement serializes a candidate into the versioned artifact, realizing
// the mapping once to record the per-layer footprint and transports.
func (ev *evaluator) placement(mapper string, seed int64, c candidate, cost CostBreakdown) (*Placement, error) {
	cfg := ev.cons.Hierarchy
	p := &Placement{
		SchemaVersion: PlacementSchemaVersion,
		Network:       ev.net.Name,
		Mapper:        mapper,
		Seed:          seed,
		MCAsPerMPE:    cfg.MCAsPerMPE,
		MPEsPerNC:     cfg.MPEsPerNC,
		Tech:          cfg.Tech.Name,
		Layers:        make([]LayerPlace, len(ev.net.Layers)),
		ShardCuts:     append([]int(nil), c.cuts...),
		Cost:          cost,
	}
	for li := range p.Layers {
		p.Layers[li] = LayerPlace{
			Name:    ev.net.Layers[li].Name,
			MCASize: ev.cons.Sizes[c.size[li]],
			NCAlign: c.align[li],
		}
	}
	m, err := p.Apply(ev.net)
	if err != nil {
		return nil, err
	}
	for li := range p.Layers {
		lm := &m.Layers[li]
		p.Layers[li].MCAs = len(lm.MCAs)
		p.Layers[li].MPEs = lm.MPELast - lm.MPEFirst + 1
		p.Layers[li].Utilization = lm.Utilization
		p.Layers[li].Transport = m.TransportOf(li).String()
	}
	return p, nil
}
