package mapping

import (
	"math/rand"
	"testing"
	"testing/quick"

	"resparc/internal/device"
	"resparc/internal/snn"
	"resparc/internal/tensor"
)

func denseLayer(t *testing.T, in, out int) *snn.Layer {
	t.Helper()
	w := tensor.NewMat(out, in)
	w.Data.Fill(0.1)
	l, err := snn.NewDense("d", in, out, w, 1)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func convLayer(t *testing.T, geom tensor.ConvGeom) *snn.Layer {
	t.Helper()
	w := tensor.NewMat(geom.OutC, geom.FanIn())
	w.Data.Fill(0.1)
	l, err := snn.NewConv("c", geom, w, 1)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func netOf(t *testing.T, input tensor.Shape3, layers ...*snn.Layer) *snn.Network {
	t.Helper()
	n, err := snn.NewNetwork("n", input, layers...)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func cfg(size int) Config {
	c := DefaultConfig()
	c.MCASize = size
	c.Tech = device.PCM // allows up to 256 for sweep tests
	return c
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	c := DefaultConfig()
	c.MCASize = 256 // exceeds Ag-Si max 128
	if err := c.Validate(); err == nil {
		t.Fatal("technology constraint not enforced")
	}
	c = DefaultConfig()
	c.MCASize = 1
	if err := c.Validate(); err == nil {
		t.Fatal("size 1 accepted")
	}
	c = DefaultConfig()
	c.MCAsPerMPE = 0
	if err := c.Validate(); err == nil {
		t.Fatal("0 MCAs/mPE accepted")
	}
}

func TestMapDenseExactFit(t *testing.T) {
	// 128 inputs x 128 outputs on 64x64: a 2x2 tile grid, fully utilized.
	net := netOf(t, tensor.Shape3{H: 1, W: 1, C: 128}, denseLayer(t, 128, 128))
	m, err := Map(net, cfg(64))
	if err != nil {
		t.Fatal(err)
	}
	lm := m.Layers[0]
	if len(lm.MCAs) != 4 {
		t.Fatalf("MCAs = %d, want 4", len(lm.MCAs))
	}
	if lm.Groups != 2 || lm.MuxDegree != 2 {
		t.Fatalf("Groups=%d Mux=%d", lm.Groups, lm.MuxDegree)
	}
	if lm.Utilization != 1.0 {
		t.Fatalf("Utilization = %v, want 1", lm.Utilization)
	}
	if m.MPEs != 1 || m.NCs != 1 {
		t.Fatalf("MPEs=%d NCs=%d", m.MPEs, m.NCs)
	}
}

func TestMapDensePartialEdge(t *testing.T) {
	// 100x70 on 64: 2 col blocks x 2 row blocks; utilization < 1.
	net := netOf(t, tensor.Shape3{H: 1, W: 1, C: 100}, denseLayer(t, 100, 70))
	m, err := Map(net, cfg(64))
	if err != nil {
		t.Fatal(err)
	}
	lm := m.Layers[0]
	if len(lm.MCAs) != 4 {
		t.Fatalf("MCAs = %d", len(lm.MCAs))
	}
	taps := 0
	for _, a := range lm.MCAs {
		taps += a.Taps
		if len(a.Inputs) > 64 || len(a.Outputs) > 64 {
			t.Fatalf("block exceeds array: %d in %d out", len(a.Inputs), len(a.Outputs))
		}
	}
	if taps != 100*70 {
		t.Fatalf("taps = %d, want %d", taps, 7000)
	}
	if lm.Utilization >= 1 || lm.Utilization <= 0 {
		t.Fatalf("Utilization = %v", lm.Utilization)
	}
}

// Fig 5's scenario: fan-in 4 neurons on 2x2 MCAs -> degree-2 multiplexing.
func TestMapDenseTimeMultiplexing(t *testing.T) {
	net := netOf(t, tensor.Shape3{H: 1, W: 1, C: 4}, denseLayer(t, 4, 2))
	c := cfg(2)
	m, err := Map(net, c)
	if err != nil {
		t.Fatal(err)
	}
	lm := m.Layers[0]
	if lm.MuxDegree != 2 {
		t.Fatalf("MuxDegree = %d, want 2 (Fig 5b)", lm.MuxDegree)
	}
	if len(lm.MCAs) != 2 || lm.Groups != 1 {
		t.Fatalf("MCAs=%d Groups=%d", len(lm.MCAs), lm.Groups)
	}
}

// The paper's headline utilization effect: CNN mapping utilization falls as
// the MCA grows (input sharing cannot keep large arrays full), while MLP
// utilization stays near 1.
func TestUtilizationTrend(t *testing.T) {
	geom := tensor.ConvGeom{In: tensor.Shape3{H: 28, W: 28, C: 1}, K: 5, Stride: 1, Pad: 0, OutC: 12}
	cnnNet := netOf(t, geom.In, convLayer(t, geom))
	mlpNet := netOf(t, tensor.Shape3{H: 1, W: 1, C: 784}, denseLayer(t, 784, 512))
	var cnnU, mlpU []float64
	for _, size := range []int{32, 64, 128} {
		mc, err := Map(cnnNet, cfg(size))
		if err != nil {
			t.Fatal(err)
		}
		cnnU = append(cnnU, mc.TotalUtilization())
		mm, err := Map(mlpNet, cfg(size))
		if err != nil {
			t.Fatal(err)
		}
		mlpU = append(mlpU, mm.TotalUtilization())
	}
	if !(cnnU[0] > cnnU[1] && cnnU[1] > cnnU[2]) {
		t.Fatalf("CNN utilization should fall with size: %v", cnnU)
	}
	for i, u := range mlpU {
		if u < 0.85 {
			t.Fatalf("MLP utilization[%d] = %v, want near 1", i, u)
		}
	}
	if cnnU[2] >= mlpU[2] {
		t.Fatalf("CNN utilization (%v) must trail MLP (%v) at 128", cnnU[2], mlpU[2])
	}
}

// Every connectivity tap must land on exactly one MCA, per output neuron.
func TestSparseMappingCoversAllTaps(t *testing.T) {
	geom := tensor.ConvGeom{In: tensor.Shape3{H: 10, W: 10, C: 2}, K: 3, Stride: 1, Pad: 1, OutC: 4}
	l := convLayer(t, geom)
	net := netOf(t, geom.In, l)
	m, err := Map(net, cfg(32))
	if err != nil {
		t.Fatal(err)
	}
	// Reference: in-bounds fan-in per output.
	out, _ := geom.OutShape()
	wantPerOut := make(map[int]int)
	_ = geom.ForEachTap(func(outIdx, inIdx, _ int) {
		if inIdx >= 0 {
			wantPerOut[outIdx]++
		}
	})
	gotPerOut := make(map[int]int)
	for _, a := range m.Layers[0].MCAs {
		// Each MCA contributes |inputs ∩ receptive field| per output; Taps
		// aggregates them, so reconstruct per-output from the block
		// structure: outputs in a block share the block's input set
		// restricted to their own receptive field. For coverage we count
		// via Taps distribution: total taps must match.
		_ = a
	}
	totalWant := 0
	for _, v := range wantPerOut {
		totalWant += v
	}
	totalGot := 0
	seenOutputs := make(map[int32]int)
	for _, a := range m.Layers[0].MCAs {
		totalGot += a.Taps
		for _, o := range a.Outputs {
			seenOutputs[o]++
		}
	}
	if totalGot != totalWant {
		t.Fatalf("taps mapped %d, want %d", totalGot, totalWant)
	}
	// Every output neuron appears in at least one MCA and outputs never
	// repeat within a group... with full fan-in per location each output
	// appears exactly once.
	if len(seenOutputs) != out.Size() {
		t.Fatalf("outputs covered %d, want %d", len(seenOutputs), out.Size())
	}
	for o, cnt := range seenOutputs {
		if cnt != 1 {
			t.Fatalf("output %d mapped %d times", o, cnt)
		}
	}
	_ = gotPerOut
}

// Fan-in larger than the array splits a location into a time-multiplexed
// group.
func TestSparseSplitLargeFanIn(t *testing.T) {
	// Fan-in = 5*5*8 = 200 > 32 rows.
	geom := tensor.ConvGeom{In: tensor.Shape3{H: 8, W: 8, C: 8}, K: 5, Stride: 1, Pad: 0, OutC: 4}
	net := netOf(t, geom.In, convLayer(t, geom))
	m, err := Map(net, cfg(32))
	if err != nil {
		t.Fatal(err)
	}
	lm := m.Layers[0]
	if lm.MuxDegree < (200+31)/32 {
		t.Fatalf("MuxDegree = %d, want >= %d", lm.MuxDegree, (200+31)/32)
	}
	for _, a := range lm.MCAs {
		if len(a.Inputs) > 32 || len(a.Outputs) > 32 {
			t.Fatalf("split block exceeds array")
		}
	}
}

func TestMapPoolLayer(t *testing.T) {
	p, err := snn.NewPool("p", tensor.Shape3{H: 8, W: 8, C: 4}, 2, 0.499)
	if err != nil {
		t.Fatal(err)
	}
	net := netOf(t, tensor.Shape3{H: 8, W: 8, C: 4}, p)
	m, err := Map(net, cfg(32))
	if err != nil {
		t.Fatal(err)
	}
	taps := 0
	for _, a := range m.Layers[0].MCAs {
		taps += a.Taps
	}
	if taps != p.Synapses() {
		t.Fatalf("pool taps %d, want %d", taps, p.Synapses())
	}
}

func TestPlacementAndCrossNC(t *testing.T) {
	// Two small layers fit one NC: layer 1 should not cross NC.
	net := netOf(t, tensor.Shape3{H: 1, W: 1, C: 128},
		denseLayer(t, 128, 128), denseLayer(t, 128, 64))
	m, err := Map(net, cfg(64))
	if err != nil {
		t.Fatal(err)
	}
	if !m.CrossNC(0) {
		t.Fatal("layer 0 always loads via the bus")
	}
	if m.CrossNC(1) {
		t.Fatal("small consecutive layers in one NC must use the switch network")
	}
	// Layers must start on fresh mPEs and be contiguous.
	if m.Layers[1].MPEFirst <= m.Layers[0].MPELast &&
		m.Layers[1].MPEFirst != m.Layers[0].MPELast+1 {
		t.Fatalf("layer placement overlaps: %+v %+v", m.Layers[0], m.Layers[1])
	}

	// A large layer spanning several NCs forces bus transfers.
	big := netOf(t, tensor.Shape3{H: 1, W: 1, C: 2048},
		denseLayer(t, 2048, 2048), denseLayer(t, 2048, 10))
	mb, err := Map(big, cfg(64))
	if err != nil {
		t.Fatal(err)
	}
	if mb.NCs < 2 {
		t.Fatalf("big net NCs = %d, expected several", mb.NCs)
	}
	if !mb.CrossNC(1) {
		t.Fatal("layer following a multi-NC layer must use the bus")
	}
}

func TestMapErrors(t *testing.T) {
	empty, _ := snn.NewNetwork("e", tensor.Shape3{H: 1, W: 1, C: 4})
	if _, err := Map(empty, cfg(64)); err == nil {
		t.Fatal("empty network accepted")
	}
	net := netOf(t, tensor.Shape3{H: 1, W: 1, C: 4}, denseLayer(t, 4, 4))
	bad := cfg(64)
	bad.MCASize = 0
	if _, err := Map(net, bad); err == nil {
		t.Fatal("invalid config accepted")
	}
}

func TestBestMCASize(t *testing.T) {
	// Cost minimized at 64.
	cost := func(n int) (float64, error) {
		d := float64(n - 64)
		return d*d + 10, nil
	}
	best, c, err := BestMCASize([]int{32, 64, 128, 512}, device.AgSi, cost)
	if err != nil {
		t.Fatal(err)
	}
	if best != 64 || c != 10 {
		t.Fatalf("best=%d cost=%v", best, c)
	}
	// All candidates beyond the technology limit -> error.
	if _, _, err := BestMCASize([]int{512}, device.Spintronic, cost); err == nil {
		t.Fatal("expected error when no size fits the technology")
	}
	// Spintronic (max 64) must skip 128 even if cheaper.
	cheap128 := func(n int) (float64, error) {
		if n == 128 {
			return 0, nil
		}
		return 5, nil
	}
	best, _, err = BestMCASize([]int{32, 64, 128}, device.Spintronic, cheap128)
	if err != nil {
		t.Fatal(err)
	}
	if best == 128 {
		t.Fatal("technology constraint violated")
	}
}

// Property: for random dense layers, every MCA respects the array bounds,
// groups tile the outputs exactly, and taps total the synapse count.
func TestMapDenseProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		in := 1 + rng.Intn(300)
		out := 1 + rng.Intn(300)
		size := []int{16, 32, 64}[rng.Intn(3)]
		w := tensor.NewMat(out, in)
		l, err := snn.NewDense("d", in, out, w, 1)
		if err != nil {
			return false
		}
		net, err := snn.NewNetwork("n", tensor.Shape3{H: 1, W: 1, C: in}, l)
		if err != nil {
			return false
		}
		m, err := Map(net, cfg(size))
		if err != nil {
			return false
		}
		lm := m.Layers[0]
		taps := 0
		outCover := map[int32]int{}
		for _, a := range lm.MCAs {
			if len(a.Inputs) > size || len(a.Outputs) > size || len(a.Inputs) == 0 || len(a.Outputs) == 0 {
				return false
			}
			taps += a.Taps
		}
		// Each group covers each of its outputs MuxDegree times in total
		// across row blocks; count distinct outputs once per group.
		for _, a := range lm.MCAs {
			if a.Group < 0 || a.Group >= lm.Groups {
				return false
			}
		}
		for _, a := range lm.MCAs {
			for _, o := range a.Outputs {
				outCover[o]++
			}
		}
		for o := int32(0); o < int32(out); o++ {
			if outCover[o] == 0 {
				return false
			}
		}
		return taps == in*out
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Map's output is always well-formed; mutations are caught.
func TestValidate(t *testing.T) {
	net := netOf(t, tensor.Shape3{H: 1, W: 1, C: 100},
		denseLayer(t, 100, 80), denseLayer(t, 80, 10))
	m, err := Map(net, cfg(32))
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Validate(); err != nil {
		t.Fatalf("fresh mapping invalid: %v", err)
	}
	// Mutations must be rejected.
	mutate := func(f func(*Mapping)) error {
		m2, err := Map(net, cfg(32))
		if err != nil {
			t.Fatal(err)
		}
		f(m2)
		return m2.Validate()
	}
	if err := mutate(func(m *Mapping) { m.Layers[0].MCAs[0].Taps = -1 }); err == nil {
		t.Error("negative taps accepted")
	}
	if err := mutate(func(m *Mapping) { m.Layers[0].MCAs[0].Outputs[0] = 9999 }); err == nil {
		t.Error("out-of-range output accepted")
	}
	if err := mutate(func(m *Mapping) { m.Layers[0].MCAs[0].MPE = 500 }); err == nil {
		t.Error("out-of-range placement accepted")
	}
	if err := mutate(func(m *Mapping) {
		m.Layers[0].MCAs = m.Layers[0].MCAs[:1]
	}); err == nil {
		t.Error("missing output coverage accepted")
	}
	if err := mutate(func(m *Mapping) { m.Layers[1].MPEFirst = 0 }); err == nil {
		t.Error("overlapping placement accepted")
	}
}

// Property: every mapping produced by Map validates, across layer kinds
// and sizes.
func TestMapAlwaysValidates(t *testing.T) {
	geom := tensor.ConvGeom{In: tensor.Shape3{H: 12, W: 12, C: 1}, K: 3, Stride: 1, Pad: 1, OutC: 6}
	conv := convLayer(t, geom)
	pool, err := snn.NewPool("p", tensor.Shape3{H: 12, W: 12, C: 6}, 2, 0.499)
	if err != nil {
		t.Fatal(err)
	}
	fc := denseLayer(t, 216, 10)
	net := netOf(t, geom.In, conv, pool, fc)
	for _, size := range []int{8, 16, 32, 64} {
		m, err := Map(net, cfg(size))
		if err != nil {
			t.Fatal(err)
		}
		if err := m.Validate(); err != nil {
			t.Fatalf("size %d: %v", size, err)
		}
	}
}
