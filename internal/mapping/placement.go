package mapping

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"resparc/internal/device"
	"resparc/internal/snn"
)

// PlacementSchemaVersion is the current Placement artifact schema. Version 1
// introduced the artifact: per-layer MCA sizes and NeuroCell alignment,
// shard cut points, and the modeled cost breakdown of the mapper that
// produced it.
const PlacementSchemaVersion = 1

// LayerPlace records one layer's placement decisions plus the realized
// statistics a reader wants without re-running the mapper.
type LayerPlace struct {
	// Name is the layer name (checked against the network on Apply).
	Name string `json:"name"`
	// MCASize is the layer's crossbar dimension.
	MCASize int `json:"mca_size"`
	// NCAlign starts the layer on a fresh NeuroCell boundary instead of
	// merely a fresh mPE.
	NCAlign bool `json:"nc_align,omitempty"`
	// MCAs/MPEs and Utilization are informational (recomputed on Apply).
	MCAs        int     `json:"mcas"`
	MPEs        int     `json:"mpes"`
	Utilization float64 `json:"utilization"`
	// Transport is the modeled input path ("bus" or "switch") under this
	// placement. Informational.
	Transport string `json:"transport"`
}

// CostBreakdown is the mapper's modeled cost of a placement: the surrogate
// model's per-classification energy, pipelined latency (event-engine
// makespan over the probe raster) and inter-chip link traffic, plus the
// weighted objective the search minimized. All values are modeled on the
// probe input — they track, but are not identical to, the averages a full
// evaluation measures.
type CostBreakdown struct {
	EnergyJ     float64 `json:"energy_j"`
	LatencyS    float64 `json:"latency_s"`
	LinkFlits   int     `json:"link_flits,omitempty"`
	LinkEnergyJ float64 `json:"link_energy_j,omitempty"`
	Objective   float64 `json:"objective"`
	MPEs        int     `json:"mpes"`
	NCs         int     `json:"ncs"`
}

// Placement is the serializable mapping artifact: everything needed to
// deterministically rebuild a Mapping (Apply) without re-running the search,
// versioned so future schema changes stay detectable. core, shard, serve
// and the cmd tools consume this instead of re-deriving layout.
//
// The wire form is canonical: fixed field order, no maps, no timestamps —
// the same mapper run (same seed) marshals to byte-identical JSON.
type Placement struct {
	SchemaVersion int `json:"schema_version"`
	// Network is the network name the placement was planned for.
	Network string `json:"network"`
	// Mapper names the strategy that produced the placement ("greedy",
	// "annealed").
	Mapper string `json:"mapper"`
	// Seed is the search seed (annealed) or 0 (greedy).
	Seed int64 `json:"seed"`
	// Hierarchy parameters and technology the placement assumes.
	MCAsPerMPE int    `json:"mcas_per_mpe"`
	MPEsPerNC  int    `json:"mpes_per_nc"`
	Tech       string `json:"tech"`
	// Layers holds the per-layer decisions in network layer order.
	Layers []LayerPlace `json:"layers"`
	// ShardCuts are the layer indices where a new chip begins (ascending,
	// exclusive of 0); empty means single-chip.
	ShardCuts []int `json:"shard_cuts,omitempty"`
	// Cost is the modeled cost breakdown of this placement.
	Cost CostBreakdown `json:"cost"`
}

// WritePlacement writes the artifact as indented canonical JSON.
func WritePlacement(w io.Writer, p *Placement) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(p); err != nil {
		return fmt.Errorf("mapping: writing placement: %w", err)
	}
	return nil
}

// WritePlacementFile writes the artifact to a file.
func WritePlacementFile(path string, p *Placement) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("mapping: %w", err)
	}
	if err := WritePlacement(f, p); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadPlacement decodes an artifact written by WritePlacement, rejecting
// unknown schema versions.
func ReadPlacement(r io.Reader) (*Placement, error) {
	var p Placement
	if err := json.NewDecoder(r).Decode(&p); err != nil {
		return nil, fmt.Errorf("mapping: reading placement: %w", err)
	}
	if p.SchemaVersion < 1 || p.SchemaVersion > PlacementSchemaVersion {
		return nil, fmt.Errorf("mapping: placement schema version %d (this build reads 1..%d)",
			p.SchemaVersion, PlacementSchemaVersion)
	}
	return &p, nil
}

// ReadPlacementFile reads an artifact from a file.
func ReadPlacementFile(path string) (*Placement, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("mapping: %w", err)
	}
	defer f.Close()
	p, err := ReadPlacement(f)
	if err != nil {
		return nil, fmt.Errorf("mapping: %s: %w", path, err)
	}
	return p, nil
}

// TechByName resolves a technology by its wire name (case-sensitive, the
// names device.All reports).
func TechByName(name string) (device.Technology, error) {
	for _, t := range device.All() {
		if t.Name == name {
			return t, nil
		}
	}
	return device.Technology{}, fmt.Errorf("mapping: unknown technology %q", name)
}

// Validate checks the artifact against a network: matching name, one layer
// entry per network layer (names aligned), a known technology, sizes within
// its reliable maximum, and well-formed shard cuts.
func (p *Placement) Validate(net *snn.Network) error {
	if p.SchemaVersion < 1 || p.SchemaVersion > PlacementSchemaVersion {
		return fmt.Errorf("mapping: placement schema version %d", p.SchemaVersion)
	}
	if p.Network != net.Name {
		return fmt.Errorf("mapping: placement is for network %q, not %q", p.Network, net.Name)
	}
	if len(p.Layers) != len(net.Layers) {
		return fmt.Errorf("mapping: placement has %d layers, network %q has %d",
			len(p.Layers), net.Name, len(net.Layers))
	}
	if p.MCAsPerMPE < 1 || p.MPEsPerNC < 1 {
		return fmt.Errorf("mapping: placement hierarchy %d MCAs/mPE, %d mPEs/NC", p.MCAsPerMPE, p.MPEsPerNC)
	}
	tech, err := TechByName(p.Tech)
	if err != nil {
		return err
	}
	for li, lp := range p.Layers {
		if lp.Name != net.Layers[li].Name {
			return fmt.Errorf("mapping: placement layer %d is %q, network has %q", li, lp.Name, net.Layers[li].Name)
		}
		if lp.MCASize < 2 || lp.MCASize > tech.MaxSize {
			return fmt.Errorf("mapping: placement layer %d MCA size %d outside [2,%d] for %s",
				li, lp.MCASize, tech.MaxSize, tech.Name)
		}
	}
	prev := 0
	for _, c := range p.ShardCuts {
		if c <= prev || c >= len(net.Layers) {
			return fmt.Errorf("mapping: placement shard cuts %v not strictly ascending in (0,%d)",
				p.ShardCuts, len(net.Layers))
		}
		prev = c
	}
	return nil
}

// Apply realizes the placement on the network: the deterministic rebuild of
// the Mapping the artifact describes. A uniform placement without alignment
// reproduces Map(net, cfg) exactly.
func (p *Placement) Apply(net *snn.Network) (*Mapping, error) {
	if err := p.Validate(net); err != nil {
		return nil, err
	}
	tech, err := TechByName(p.Tech)
	if err != nil {
		return nil, err
	}
	cfg := Config{
		MCASize:    p.Layers[0].MCASize,
		MCAsPerMPE: p.MCAsPerMPE,
		MPEsPerNC:  p.MPEsPerNC,
		Tech:       tech,
	}
	sizes := make([]int, len(p.Layers))
	align := make([]bool, len(p.Layers))
	uniform := true
	for li, lp := range p.Layers {
		sizes[li] = lp.MCASize
		align[li] = lp.NCAlign
		if lp.MCASize != cfg.MCASize {
			uniform = false
		}
		if cfg.MCASize < lp.MCASize {
			cfg.MCASize = lp.MCASize
		}
	}
	if uniform {
		align2 := false
		for _, a := range align {
			align2 = align2 || a
		}
		if !align2 {
			// The fast path doubles as the equivalence guarantee: a uniform,
			// unaligned placement realizes through the very same call the
			// legacy direct path uses.
			return Map(net, cfg)
		}
	}
	return mapLayers(net, cfg, sizes, align)
}

// ShardRanges converts the cut points to contiguous [lo, hi) layer ranges
// over an L-layer network (one range when there are no cuts).
func (p *Placement) ShardRanges(layers int) [][2]int {
	out := make([][2]int, 0, len(p.ShardCuts)+1)
	lo := 0
	for _, c := range p.ShardCuts {
		out = append(out, [2]int{lo, c})
		lo = c
	}
	out = append(out, [2]int{lo, layers})
	return out
}

// Sizes returns the per-layer MCA sizes in layer order.
func (p *Placement) Sizes() []int {
	out := make([]int, len(p.Layers))
	for i, lp := range p.Layers {
		out[i] = lp.MCASize
	}
	return out
}
