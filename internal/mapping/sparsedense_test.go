package mapping

import (
	"math/rand"
	"testing"

	"resparc/internal/snn"
	"resparc/internal/tensor"
)

// prunedDense builds a dense layer with the given non-zero fraction.
func prunedDense(t *testing.T, in, out int, fill float64, seed int64) *snn.Layer {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	w := tensor.NewMat(out, in)
	for i := range w.Data {
		if rng.Float64() < fill {
			w.Data[i] = 0.1 + rng.Float64()
		}
	}
	l, err := snn.NewDense("pruned", in, out, w, 1)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

// blockDense builds a block-diagonal dense layer: structured sparsity
// where groups of outputs share exactly one block of inputs.
func blockDense(t *testing.T, n, blocks int, seed int64) *snn.Layer {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	w := tensor.NewMat(n, n)
	bs := n / blocks
	for b := 0; b < blocks; b++ {
		for o := b * bs; o < (b+1)*bs; o++ {
			for i := b * bs; i < (b+1)*bs; i++ {
				w.Set(o, i, 0.1+rng.Float64())
			}
		}
	}
	l, err := snn.NewDense("block", n, n, w, 1)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

// Structured (block) sparsity is where input sharing pays: a block-diagonal
// 256x256 matrix with 32x32 blocks packs two blocks per 64x64 array instead
// of tiling 16 mostly-empty arrays.
func TestSparseDensePackingStructured(t *testing.T) {
	l := blockDense(t, 256, 8, 1)
	net, err := snn.NewNetwork("n", tensor.Shape3{H: 1, W: 1, C: 256}, l)
	if err != nil {
		t.Fatal(err)
	}
	md, err := Map(net, cfg(64))
	if err != nil {
		t.Fatal(err)
	}
	sparse := cfg(64)
	sparse.SparseDenseMaxFill = 0.3
	ms, err := Map(net, sparse)
	if err != nil {
		t.Fatal(err)
	}
	if ms.MCAs >= md.MCAs {
		t.Fatalf("structured sparse packing used %d arrays vs dense %d", ms.MCAs, md.MCAs)
	}
	// Taps must cover exactly the non-zero weights.
	nz := l.W.Data.CountNonZero(0)
	taps := 0
	for _, a := range ms.Layers[0].MCAs {
		taps += a.Taps
		if len(a.Inputs) > 64 || len(a.Outputs) > 64 {
			t.Fatal("array bounds violated")
		}
	}
	if taps != nz {
		t.Fatalf("sparse taps %d != non-zeros %d", taps, nz)
	}
	// Two 32x32 blocks fit per 64x64 array: exactly 4 arrays for 8 blocks
	// (dense tiling burns 16 arrays whose cross-points are mostly zero
	// weights).
	if ms.MCAs != 4 {
		t.Fatalf("expected 4 arrays for the block-diagonal layer, got %d", ms.MCAs)
	}
}

// Unstructured random pruning has no input locality: per-output units share
// almost nothing, so sparse packing does NOT beat dense tiling — the
// classic argument for structured pruning on crossbars. The mapping must
// still be correct (exact tap coverage).
func TestSparseDenseUnstructuredIsNotBetter(t *testing.T) {
	l := prunedDense(t, 256, 256, 0.1, 1)
	net, err := snn.NewNetwork("n", tensor.Shape3{H: 1, W: 1, C: 256}, l)
	if err != nil {
		t.Fatal(err)
	}
	md, err := Map(net, cfg(64))
	if err != nil {
		t.Fatal(err)
	}
	sparse := cfg(64)
	sparse.SparseDenseMaxFill = 0.3
	ms, err := Map(net, sparse)
	if err != nil {
		t.Fatal(err)
	}
	if ms.MCAs < md.MCAs {
		t.Fatalf("unexpected: unstructured sparse packing beat dense tiling (%d vs %d arrays)", ms.MCAs, md.MCAs)
	}
	nz := l.W.Data.CountNonZero(0)
	taps := 0
	for _, a := range ms.Layers[0].MCAs {
		taps += a.Taps
	}
	if taps != nz {
		t.Fatalf("sparse taps %d != non-zeros %d", taps, nz)
	}
}

// A dense layer above the fill threshold keeps the dense tiling.
func TestSparseDenseThresholdRespected(t *testing.T) {
	l := prunedDense(t, 128, 128, 0.9, 2)
	net, err := snn.NewNetwork("n", tensor.Shape3{H: 1, W: 1, C: 128}, l)
	if err != nil {
		t.Fatal(err)
	}
	c := cfg(64)
	c.SparseDenseMaxFill = 0.3
	m, err := Map(net, c)
	if err != nil {
		t.Fatal(err)
	}
	// Dense tiling of 128x128 on 64: exactly 4 full tiles.
	if len(m.Layers[0].MCAs) != 4 {
		t.Fatalf("dense layer above threshold should tile densely, got %d MCAs", len(m.Layers[0].MCAs))
	}
}

// An output pruned to zero fan-in must still appear in the mapping (its
// neuron exists even if it can never fire).
func TestSparseDenseZeroFanInOutput(t *testing.T) {
	w := tensor.NewMat(3, 8)
	w.Set(0, 1, 0.5)
	w.Set(2, 7, 0.5) // output 1 has no inputs
	l, err := snn.NewDense("d", 8, 3, w, 1)
	if err != nil {
		t.Fatal(err)
	}
	net, err := snn.NewNetwork("n", tensor.Shape3{H: 1, W: 1, C: 8}, l)
	if err != nil {
		t.Fatal(err)
	}
	c := cfg(8)
	c.SparseDenseMaxFill = 1.0
	m, err := Map(net, c)
	if err != nil {
		t.Fatal(err)
	}
	covered := map[int32]bool{}
	for _, a := range m.Layers[0].MCAs {
		for _, o := range a.Outputs {
			covered[o] = true
		}
	}
	for o := int32(0); o < 3; o++ {
		if !covered[o] {
			t.Fatalf("output %d missing from sparse-dense mapping", o)
		}
	}
}
