package mapping

import (
	"testing"

	"resparc/internal/device"
	"resparc/internal/snn"
	"resparc/internal/tensor"
)

// BenchmarkMapDense measures tiling a 784x1024 dense layer onto 64x64
// arrays.
func BenchmarkMapDense(b *testing.B) {
	w := tensor.NewMat(1024, 784)
	l, err := snn.NewDense("d", 784, 1024, w, 1)
	if err != nil {
		b.Fatal(err)
	}
	net, err := snn.NewNetwork("bench", tensor.Shape3{H: 1, W: 1, C: 784}, l)
	if err != nil {
		b.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Tech = device.PCM
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Map(net, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMapConv measures the input-sharing sparse packer on a
// 28x28 3x3x32 convolution.
func BenchmarkMapConv(b *testing.B) {
	geom := tensor.ConvGeom{In: tensor.Shape3{H: 28, W: 28, C: 1}, K: 3, Stride: 1, Pad: 1, OutC: 32}
	w := tensor.NewMat(32, 9)
	l, err := snn.NewConv("c", geom, w, 1)
	if err != nil {
		b.Fatal(err)
	}
	net, err := snn.NewNetwork("bench", geom.In, l)
	if err != nil {
		b.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Tech = device.PCM
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Map(net, cfg); err != nil {
			b.Fatal(err)
		}
	}
}
