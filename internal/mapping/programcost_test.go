package mapping

import (
	"testing"

	"resparc/internal/device"
	"resparc/internal/snn"
	"resparc/internal/tensor"
)

func TestProgramCost(t *testing.T) {
	w := tensor.NewMat(64, 64)
	l, err := snn.NewDense("d", 64, 64, w, 1)
	if err != nil {
		t.Fatal(err)
	}
	net, err := snn.NewNetwork("n", tensor.Shape3{H: 1, W: 1, C: 64}, l)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Tech = device.AgSi
	m, err := Map(net, cfg)
	if err != nil {
		t.Fatal(err)
	}
	e, tm := m.ProgramCost()
	// 64*64 taps, 8 pulses each, 10 pJ per pulse.
	wantE := 64.0 * 64 * 8 * 10e-12
	if e != wantE {
		t.Fatalf("energy %g, want %g", e, wantE)
	}
	// 64 rows x 8 pulses x 50 ns.
	wantT := 64.0 * 8 * 50e-9
	if tm != wantT {
		t.Fatalf("time %g, want %g", tm, wantT)
	}

	// The configuration cost is a one-off: even for this small network it
	// exceeds a single classification's energy budget, which is why the
	// paper scopes it out of the per-classification numbers (§4.2).
	if e < 1e-9 {
		t.Fatal("programming energy implausibly low")
	}
}

func TestProgramCostScalesWithTaps(t *testing.T) {
	build := func(out int) *Mapping {
		w := tensor.NewMat(out, 64)
		l, err := snn.NewDense("d", 64, out, w, 1)
		if err != nil {
			t.Fatal(err)
		}
		net, err := snn.NewNetwork("n", tensor.Shape3{H: 1, W: 1, C: 64}, l)
		if err != nil {
			t.Fatal(err)
		}
		m, err := Map(net, DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	small, _ := build(32).ProgramCost()
	big, _ := build(128).ProgramCost()
	if big <= small {
		t.Fatalf("programming energy must scale with synapses: %g vs %g", small, big)
	}
}
