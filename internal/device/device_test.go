package device

import "testing"

func TestBuiltinsValid(t *testing.T) {
	for _, tech := range All() {
		if err := tech.Validate(); err != nil {
			t.Errorf("%s: %v", tech.Name, err)
		}
	}
	if len(All()) != 3 {
		t.Fatalf("expected 3 technologies, got %d", len(All()))
	}
}

func TestConductanceRange(t *testing.T) {
	// Paper §4.2: 20 kΩ–200 kΩ.
	if PCM.GMin() != 1.0/200e3 || PCM.GMax() != 1.0/20e3 {
		t.Fatalf("PCM conductances %g %g", PCM.GMin(), PCM.GMax())
	}
	if PCM.GMax() <= PCM.GMin() {
		t.Fatal("GMax must exceed GMin")
	}
}

func TestBits(t *testing.T) {
	cases := []struct {
		levels, bits int
	}{{2, 1}, {4, 2}, {16, 4}, {256, 8}}
	for _, c := range cases {
		tech := PCM.WithLevels(c.levels)
		if got := tech.Bits(); got != c.bits {
			t.Errorf("levels %d: Bits = %d, want %d", c.levels, got, c.bits)
		}
	}
	// Paper default: 16 levels = 4 bits.
	if PCM.Bits() != 4 {
		t.Fatalf("default Bits = %d", PCM.Bits())
	}
}

func TestWithLevelsDoesNotMutate(t *testing.T) {
	orig := AgSi.Levels
	_ = AgSi.WithLevels(4)
	if AgSi.Levels != orig {
		t.Fatal("WithLevels mutated the original")
	}
}

func TestValidateRejectsBadParams(t *testing.T) {
	bad := []Technology{
		{Name: "r", RMin: 0, RMax: 1, Levels: 4, MaxSize: 64},
		{Name: "r", RMin: 2, RMax: 1, Levels: 4, MaxSize: 64},
		{Name: "l", RMin: 1, RMax: 2, Levels: 1, MaxSize: 64},
		{Name: "s", RMin: 1, RMax: 2, Levels: 4, MaxSize: 1},
		{Name: "v", RMin: 1, RMax: 2, Levels: 4, MaxSize: 64, VariationSigma: -1},
		{Name: "f", RMin: 1, RMax: 2, Levels: 4, MaxSize: 64, StuckFraction: 1},
	}
	for i, tech := range bad {
		if tech.Validate() == nil {
			t.Errorf("case %d accepted: %+v", i, tech)
		}
	}
}

// StuckFraction and the level count interact: the expected defect rate must
// leave at least two usable levels, or the device cannot store a weight.
func TestValidateUsableLevels(t *testing.T) {
	base := Technology{Name: "t", RMin: 1, RMax: 2, MaxSize: 64}
	cases := []struct {
		name    string
		levels  int
		stuck   float64
		wantErr bool
	}{
		{"clean 2-level", 2, 0, false},
		{"2-level tiny defects", 2, 1e-4, true}, // 2*(1-1e-4) < 2
		{"4-level half stuck", 4, 0.5, false},   // 2 usable exactly
		{"4-level mostly stuck", 4, 0.6, true},  // 1.6 usable
		{"16-level heavy defects", 16, 0.8, false},
		{"16-level extreme defects", 16, 0.9, true},
	}
	for _, c := range cases {
		tech := base
		tech.Levels, tech.StuckFraction = c.levels, c.stuck
		err := tech.Validate()
		if (err != nil) != c.wantErr {
			t.Errorf("%s: Validate() = %v, wantErr %v", c.name, err, c.wantErr)
		}
	}
}

// Table-driven bounds check for all three presets: every preset must be
// valid, support its documented crossbar sizes, and keep its defect rate far
// from the usable-level limit.
func TestPresetBounds(t *testing.T) {
	cases := []struct {
		tech      Technology
		maxSize   int
		levels    int
		bits      int
		stuckFrac float64
	}{
		{PCM, 256, 16, 4, 0.001},
		{AgSi, 128, 16, 4, 0.002},
		{Spintronic, 64, 16, 4, 0.0005},
	}
	for _, c := range cases {
		if err := c.tech.Validate(); err != nil {
			t.Errorf("%s: %v", c.tech.Name, err)
			continue
		}
		if c.tech.MaxSize != c.maxSize {
			t.Errorf("%s: MaxSize %d, want %d", c.tech.Name, c.tech.MaxSize, c.maxSize)
		}
		if c.tech.Levels != c.levels || c.tech.Bits() != c.bits {
			t.Errorf("%s: %d levels (%d bits), want %d (%d)",
				c.tech.Name, c.tech.Levels, c.tech.Bits(), c.levels, c.bits)
		}
		if c.tech.StuckFraction != c.stuckFrac {
			t.Errorf("%s: StuckFraction %g, want %g", c.tech.Name, c.tech.StuckFraction, c.stuckFrac)
		}
		if usable := float64(c.tech.Levels) * (1 - c.tech.StuckFraction); usable < float64(c.tech.Levels)-1 {
			t.Errorf("%s: defect rate eats a whole level (%g usable of %d)",
				c.tech.Name, usable, c.tech.Levels)
		}
		if c.tech.GMax() <= c.tech.GMin() {
			t.Errorf("%s: conductance range inverted", c.tech.Name)
		}
	}
}

func TestSizeOrdering(t *testing.T) {
	// Reliability ordering motivates the tech-aware mapper: PCM supports
	// the largest arrays, spintronic the smallest.
	if !(PCM.MaxSize > AgSi.MaxSize && AgSi.MaxSize > Spintronic.MaxSize) {
		t.Fatalf("size ordering broken: %d %d %d", PCM.MaxSize, AgSi.MaxSize, Spintronic.MaxSize)
	}
	// The paper's default 64x64 must be reliable on the default (Ag-Si)
	// technology, and 128 must also be mappable (Fig 12 explores it).
	if AgSi.MaxSize < 128 {
		t.Fatalf("Ag-Si must support the Fig 12 sweep up to 128, max %d", AgSi.MaxSize)
	}
}

func TestWritePulsesPerDevice(t *testing.T) {
	if PCM.WritePulsesPerDevice() != 8 { // 16 levels / 2
		t.Fatalf("PCM pulses = %d", PCM.WritePulsesPerDevice())
	}
	two := PCM.WithLevels(2)
	if two.WritePulsesPerDevice() != 1 {
		t.Fatalf("2-level pulses = %d", two.WritePulsesPerDevice())
	}
	for _, tech := range All() {
		if tech.WritePulseEnergy <= 0 || tech.WritePulseTime <= 0 {
			t.Fatalf("%s: write parameters unset", tech.Name)
		}
	}
}
