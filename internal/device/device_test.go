package device

import "testing"

func TestBuiltinsValid(t *testing.T) {
	for _, tech := range All() {
		if err := tech.Validate(); err != nil {
			t.Errorf("%s: %v", tech.Name, err)
		}
	}
	if len(All()) != 3 {
		t.Fatalf("expected 3 technologies, got %d", len(All()))
	}
}

func TestConductanceRange(t *testing.T) {
	// Paper §4.2: 20 kΩ–200 kΩ.
	if PCM.GMin() != 1.0/200e3 || PCM.GMax() != 1.0/20e3 {
		t.Fatalf("PCM conductances %g %g", PCM.GMin(), PCM.GMax())
	}
	if PCM.GMax() <= PCM.GMin() {
		t.Fatal("GMax must exceed GMin")
	}
}

func TestBits(t *testing.T) {
	cases := []struct {
		levels, bits int
	}{{2, 1}, {4, 2}, {16, 4}, {256, 8}}
	for _, c := range cases {
		tech := PCM.WithLevels(c.levels)
		if got := tech.Bits(); got != c.bits {
			t.Errorf("levels %d: Bits = %d, want %d", c.levels, got, c.bits)
		}
	}
	// Paper default: 16 levels = 4 bits.
	if PCM.Bits() != 4 {
		t.Fatalf("default Bits = %d", PCM.Bits())
	}
}

func TestWithLevelsDoesNotMutate(t *testing.T) {
	orig := AgSi.Levels
	_ = AgSi.WithLevels(4)
	if AgSi.Levels != orig {
		t.Fatal("WithLevels mutated the original")
	}
}

func TestValidateRejectsBadParams(t *testing.T) {
	bad := []Technology{
		{Name: "r", RMin: 0, RMax: 1, Levels: 4, MaxSize: 64},
		{Name: "r", RMin: 2, RMax: 1, Levels: 4, MaxSize: 64},
		{Name: "l", RMin: 1, RMax: 2, Levels: 1, MaxSize: 64},
		{Name: "s", RMin: 1, RMax: 2, Levels: 4, MaxSize: 1},
		{Name: "v", RMin: 1, RMax: 2, Levels: 4, MaxSize: 64, VariationSigma: -1},
		{Name: "f", RMin: 1, RMax: 2, Levels: 4, MaxSize: 64, StuckFraction: 1},
	}
	for i, tech := range bad {
		if tech.Validate() == nil {
			t.Errorf("case %d accepted: %+v", i, tech)
		}
	}
}

func TestSizeOrdering(t *testing.T) {
	// Reliability ordering motivates the tech-aware mapper: PCM supports
	// the largest arrays, spintronic the smallest.
	if !(PCM.MaxSize > AgSi.MaxSize && AgSi.MaxSize > Spintronic.MaxSize) {
		t.Fatalf("size ordering broken: %d %d %d", PCM.MaxSize, AgSi.MaxSize, Spintronic.MaxSize)
	}
	// The paper's default 64x64 must be reliable on the default (Ag-Si)
	// technology, and 128 must also be mappable (Fig 12 explores it).
	if AgSi.MaxSize < 128 {
		t.Fatalf("Ag-Si must support the Fig 12 sweep up to 128, max %d", AgSi.MaxSize)
	}
}

func TestWritePulsesPerDevice(t *testing.T) {
	if PCM.WritePulsesPerDevice() != 8 { // 16 levels / 2
		t.Fatalf("PCM pulses = %d", PCM.WritePulsesPerDevice())
	}
	two := PCM.WithLevels(2)
	if two.WritePulsesPerDevice() != 1 {
		t.Fatalf("2-level pulses = %d", two.WritePulsesPerDevice())
	}
	for _, tech := range All() {
		if tech.WritePulseEnergy <= 0 || tech.WritePulseTime <= 0 {
			t.Fatalf("%s: write parameters unset", tech.Name)
		}
	}
}
