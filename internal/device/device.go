// Package device models the memristive synapse technologies that determine
// a crossbar's electrical parameters and the maximum array size that still
// operates reliably. MCA size is a strong function of technology (paper §1):
// large arrays suffer sneak paths, process variation and parasitic voltage
// drops, so each technology caps the usable crossbar dimension — the
// constraint behind RESPARC's "technology-aware" mapping (contribution 3).
package device

import "fmt"

// Technology describes one memristive synapse technology.
type Technology struct {
	Name string
	// RMin and RMax bound the programmable resistance range in ohms. The
	// paper's working range is 20 kΩ–200 kΩ (§4.2), typical of PCM and
	// Ag-Si.
	RMin, RMax float64
	// Levels is the number of programmable conductance levels per device
	// (16 levels = 4-bit weights in the paper).
	Levels int
	// MaxSize is the largest reliable square crossbar dimension for the
	// technology (rows == cols). Crossbars larger than this suffer
	// compounding non-idealities (§1, [11]).
	MaxSize int
	// VariationSigma is the lognormal sigma of programmed-conductance
	// variation used by the non-ideality model.
	VariationSigma float64
	// StuckFraction is the fraction of devices stuck at a rail (fabrication
	// defects) injected by the non-ideality model.
	StuckFraction float64
	// WritePulseEnergy is the energy of one programming pulse (J). The
	// paper excludes programming from its per-classification numbers
	// (§4.2: training is offline and configuration is infrequent); the
	// configuration-cost model uses it to quantify that one-off cost.
	WritePulseEnergy float64
	// WritePulseTime is the duration of one programming pulse (s).
	WritePulseTime float64
}

// WritePulsesPerDevice is the average number of write-verify pulses needed
// to land a device on its target level: half the level range.
func (t Technology) WritePulsesPerDevice() int {
	p := t.Levels / 2
	if p < 1 {
		p = 1
	}
	return p
}

// GMin returns the minimum programmable conductance in siemens.
func (t Technology) GMin() float64 { return 1 / t.RMax }

// GMax returns the maximum programmable conductance in siemens.
func (t Technology) GMax() float64 { return 1 / t.RMin }

// Bits returns the weight precision the technology supports (log2 Levels).
func (t Technology) Bits() int {
	b := 0
	for l := t.Levels; l > 1; l >>= 1 {
		b++
	}
	return b
}

// WithLevels returns a copy of the technology with the level count replaced
// (used by the bit-discretization sweep of Fig 14).
func (t Technology) WithLevels(levels int) Technology {
	t.Levels = levels
	return t
}

// Validate reports whether the technology parameters are self-consistent.
func (t Technology) Validate() error {
	switch {
	case t.RMin <= 0 || t.RMax <= t.RMin:
		return fmt.Errorf("device %s: resistance range [%g, %g] invalid", t.Name, t.RMin, t.RMax)
	case t.Levels < 2:
		return fmt.Errorf("device %s: %d levels (need >= 2)", t.Name, t.Levels)
	case t.MaxSize < 2:
		return fmt.Errorf("device %s: max size %d (need >= 2)", t.Name, t.MaxSize)
	case t.VariationSigma < 0 || t.StuckFraction < 0 || t.StuckFraction >= 1:
		return fmt.Errorf("device %s: bad non-ideality parameters", t.Name)
	case float64(t.Levels)*(1-t.StuckFraction) < 2:
		// A device needs at least two programmable levels to represent a
		// weight; when the expected defect rate eats the level budget the
		// technology cannot store information at all.
		return fmt.Errorf("device %s: stuck fraction %g leaves fewer than 2 usable levels of %d",
			t.Name, t.StuckFraction, t.Levels)
	}
	return nil
}

// The paper's §4.2 parameters: 20 kΩ–200 kΩ with 16 levels. Per-technology
// maximum sizes follow the reliability discussion of [11]/[16]: PCM scales
// furthest, Ag-Si is the paper's default-size technology, spintronic devices
// are constrained to small arrays.
var (
	// PCM is a phase-change-memory synapse ([9]).
	PCM = Technology{
		Name: "PCM", RMin: 20e3, RMax: 200e3, Levels: 16,
		MaxSize: 256, VariationSigma: 0.05, StuckFraction: 0.001,
		WritePulseEnergy: 25e-12, WritePulseTime: 100e-9,
	}
	// AgSi is an Ag-Si memristor synapse ([6]); the paper's default 64x64
	// evaluation size is within its reliable range.
	AgSi = Technology{
		Name: "Ag-Si", RMin: 20e3, RMax: 200e3, Levels: 16,
		MaxSize: 128, VariationSigma: 0.08, StuckFraction: 0.002,
		WritePulseEnergy: 10e-12, WritePulseTime: 50e-9,
	}
	// Spintronic is a domain-wall-motion synapse ([10]); low resistance
	// makes large arrays lossy, capping size early.
	Spintronic = Technology{
		Name: "Spintronic", RMin: 5e3, RMax: 50e3, Levels: 16,
		MaxSize: 64, VariationSigma: 0.04, StuckFraction: 0.0005,
		WritePulseEnergy: 2e-12, WritePulseTime: 10e-9,
	}
)

// All lists the built-in technologies.
func All() []Technology { return []Technology{PCM, AgSi, Spintronic} }
