package experiments

import (
	"fmt"
	"math/rand"
	"testing"

	"resparc/internal/bench"
	"resparc/internal/core"
	"resparc/internal/mapping"
	"resparc/internal/neurocell"
	"resparc/internal/perf"
	"resparc/internal/report"
	"resparc/internal/shard"
	"resparc/internal/sim"
	"resparc/internal/tensor"
)

// eventShardCounts are the chip counts the -fig event shard section sweeps.
var eventShardCounts = []int{1, 2, 4}

// eventChip builds one benchmark's chip under the experiment configuration.
func eventChip(cfg Config, b bench.Benchmark) (*core.Chip, []tensor.Vec, error) {
	net, err := b.Build(cfg.Seed)
	if err != nil {
		return nil, nil, err
	}
	m, err := mapping.Map(net, cfg.mapConfig(cfg.MCASize))
	if err != nil {
		return nil, nil, err
	}
	copt := core.DefaultOptions()
	copt.Params = cfg.Params
	copt.Steps = cfg.Steps
	copt.Stepped = cfg.Stepped
	copt.BlockSize = cfg.BlockSize
	chip, err := core.New(net, m, copt)
	if err != nil {
		return nil, nil, err
	}
	inputs, err := inputsFor(b, net, cfg)
	if err != nil {
		return nil, nil, err
	}
	return chip, inputs, nil
}

// FigEvent compares the stepped and the event-engine accounting paths: per
// benchmark the modeled classification cycles (serial sum vs pipelined
// makespan), the simulator's own wall-clock per batch, the x{1,2,4} sharded
// makespans with link backpressure, and the NoC fabric's congestion against
// the contention-free bound. The modeled rows are pure functions of the seed
// (merging them header-preservingly keeps BENCH_RESULTS.json byte-identical
// across same-seed reruns); only the event/walltime rows carry real time.
func FigEvent(cfg Config) ([]perf.BenchEntry, *report.Table, error) {
	var entries []perf.BenchEntry
	t := report.NewTable("Event-driven engine (stepped vs event)",
		"Row", "Stepped", "Event", "Ratio", "Wait", "Spikes/step")

	for _, b := range bench.All() {
		chip, inputs, err := eventChip(cfg, b)
		if err != nil {
			return nil, nil, fmtErr("event", err)
		}
		n := len(inputs)

		// Modeled latency: the same classifications, accounted both ways.
		// Predictions/energies are bit-identical; only Cycles differ.
		var cycles [2]int64
		var wait, spikes [2]float64
		for mi, evt := range []bool{false, true} {
			res, srep, err := chip.ClassifyBatch(inputs, cfg.encoders(), sim.Options{Workers: cfg.Workers, EventEngine: evt})
			if err != nil {
				return nil, nil, fmtErr("event", err)
			}
			rep := srep.Detail.(core.Report)
			cycles[mi] = int64(rep.Counts.Cycles) / int64(n)
			wait[mi] = float64(rep.BusWait) / float64(n)
			spikes[mi] = res.SpikesPerStep
			label := "stepped"
			if evt {
				label = "event"
			}
			entries = append(entries, perf.BenchEntry{
				Name:          fmt.Sprintf("event/latency/%s/%s", b.Name, label),
				NsPerOp:       res.Latency * 1e9,
				Iterations:    n,
				ModelCycles:   cycles[mi],
				WaitCycles:    int64(wait[mi]),
				SpikesPerStep: res.SpikesPerStep,
			})
		}
		t.Add("latency/"+b.Name+" (cycles)",
			fmt.Sprintf("%d", cycles[0]), fmt.Sprintf("%d", cycles[1]),
			fmt.Sprintf("%.2fx", float64(cycles[0])/float64(cycles[1])),
			fmt.Sprintf("%.0f", wait[1]), fmt.Sprintf("%.1f", spikes[1]))

		// Simulator wall-clock: the event path's cost scales with spikes, the
		// stepped path's with timesteps x mapped inputs.
		var ns [2]float64
		for mi, evt := range []bool{false, true} {
			var runErr error
			res := testing.Benchmark(func(tb *testing.B) {
				tb.ReportAllocs()
				for i := 0; i < tb.N; i++ {
					if _, _, err := chip.ClassifyBatch(inputs, cfg.encoders(), sim.Options{Workers: 1, EventEngine: evt}); err != nil {
						runErr = err
						tb.FailNow()
					}
				}
			})
			if runErr != nil {
				return nil, nil, fmtErr("event", runErr)
			}
			label := "stepped"
			if evt {
				label = "event"
			}
			e := benchEntry(fmt.Sprintf("event/walltime/%s/%s", b.Name, label), res, n, 1)
			ns[mi] = e.NsPerOp
			entries = append(entries, e)
		}
		t.Add("walltime/"+b.Name+" (ns/op)",
			fmt.Sprintf("%.0f", ns[0]), fmt.Sprintf("%.0f", ns[1]),
			fmt.Sprintf("%.2fx", ns[0]/ns[1]), "", "")

		// Sharded pipeline: global makespan with serialized, credit-limited
		// inter-chip links; WaitCycles records the link backpressure.
		for _, sn := range eventShardCounts {
			multi, err := shard.New(chip, shard.Config{Shards: sn})
			if err != nil {
				return nil, nil, fmtErr("event", err)
			}
			res, srep, err := multi.ClassifyBatch(inputs, cfg.encoders(), sim.Options{Workers: cfg.Workers, EventEngine: true})
			if err != nil {
				return nil, nil, fmtErr("event", err)
			}
			rep := srep.Detail.(shard.Report)
			mk := int64(rep.Chip.Counts.Cycles) / int64(n)
			lw := int64(rep.Link.WaitCycles) / int64(n)
			entries = append(entries, perf.BenchEntry{
				Name:          fmt.Sprintf("event/shard/%s/x%d", b.Name, len(rep.Ranges)),
				NsPerOp:       res.Latency * 1e9,
				Iterations:    n,
				Workers:       len(rep.Ranges),
				ModelCycles:   mk,
				WaitCycles:    lw,
				SpikesPerStep: res.SpikesPerStep,
			})
			t.Add(fmt.Sprintf("shard/%s/x%d (cycles)", b.Name, len(rep.Ranges)),
				"", fmt.Sprintf("%d", mk), "", fmt.Sprintf("%d", lw), "")
		}
	}

	// NoC fabric congestion: dim-4 cell, 72 packets per pattern, event
	// engine vs the contention-free bound. The hotspot gap (event > ideal)
	// is the acceptance criterion for real congestion modeling.
	nocEntries, err := eventNoCRows(cfg.Seed, 4, 72, t)
	if err != nil {
		return nil, nil, fmtErr("event", err)
	}
	entries = append(entries, nocEntries...)
	return entries, t, nil
}

// eventNoCRows runs the three traffic patterns on the event-driven fabric
// and records delivery span, queuing and the ideal bound.
func eventNoCRows(seed int64, dim, packets int, t *report.Table) ([]perf.BenchEntry, error) {
	var entries []perf.BenchEntry
	rng := rand.New(rand.NewSource(seed))
	mpes := dim * dim
	for _, pattern := range []string{"neighbor", "random", "hotspot"} {
		tr := make([]neurocell.Transfer, packets)
		for i := range tr {
			switch pattern {
			case "neighbor":
				src := i % mpes
				tr[i] = neurocell.Transfer{SrcMPE: src, DstMPE: (src + 1) % mpes}
			case "random":
				tr[i] = neurocell.Transfer{SrcMPE: rng.Intn(mpes), DstMPE: rng.Intn(mpes)}
			case "hotspot":
				tr[i] = neurocell.Transfer{SrcMPE: i % (mpes - 1), DstMPE: mpes - 1}
			}
		}
		n, err := neurocell.NewSwitchNet(dim)
		if err != nil {
			return nil, err
		}
		st, err := n.SimulateEvent(tr, neurocell.EventOptions{})
		if err != nil {
			return nil, err
		}
		ideal := n.IdealCycles(packets)
		entries = append(entries, perf.BenchEntry{
			Name:        fmt.Sprintf("event/noc/%s", pattern),
			Iterations:  packets,
			ModelCycles: int64(st.Cycles),
			WaitCycles:  int64(st.WaitCycles),
		}, perf.BenchEntry{
			Name:        fmt.Sprintf("event/noc/%s/ideal", pattern),
			Iterations:  packets,
			ModelCycles: int64(ideal),
		})
		t.Add("noc/"+pattern+" (cycles)",
			fmt.Sprintf("%d", ideal), fmt.Sprintf("%d", st.Cycles),
			fmt.Sprintf("%.2fx", float64(st.Cycles)/float64(ideal)),
			fmt.Sprintf("%d", st.WaitCycles), "")
	}
	return entries, nil
}
