package experiments

import (
	"fmt"

	"resparc/internal/bench"
	"resparc/internal/energy"
	"resparc/internal/report"
)

// Sensitivity analysis: the per-event constants in internal/energy are
// calibration stand-ins for the paper's RTL extraction (DESIGN.md §5). The
// reproduction is only meaningful if its conclusions do not hinge on any
// single fitted constant, so this driver perturbs each energy parameter by
// a factor in both directions and re-measures the Fig 11 family averages.

// SensitivityRow is the effect of perturbing one parameter.
type SensitivityRow struct {
	Param            string
	Factor           float64
	MLPGain, CNNGain float64
}

// perturbations lists the individually perturbable RESPARC/CMOS energy
// constants.
var perturbations = []struct {
	name  string
	apply func(*energy.Params, float64)
}{
	{"XbarCellActive", func(p *energy.Params, f float64) { p.XbarCellActive *= f }},
	{"NeuronIntegrate", func(p *energy.Params, f float64) { p.NeuronIntegrate *= f }},
	{"NeuronSpike", func(p *energy.Params, f float64) { p.NeuronSpike *= f }},
	{"SpikeHandling", func(p *energy.Params, f float64) { p.SpikeHandling *= f }},
	{"BufferAccess", func(p *energy.Params, f float64) { p.BufferAccess *= f }},
	{"SwitchHop", func(p *energy.Params, f float64) { p.SwitchHop *= f }},
	{"BusWord", func(p *energy.Params, f float64) { p.BusWord *= f }},
	{"MPEControl", func(p *energy.Params, f float64) { p.MPEControl *= f }},
	{"CoreOp", func(p *energy.Params, f float64) { p.CoreOp *= f }},
	{"NeuronUnitUpdate", func(p *energy.Params, f float64) { p.NeuronUnitUpdate *= f }},
}

// Sensitivity measures the Fig 11 energy-gain averages on one MLP and one
// CNN benchmark while perturbing each constant by 1/factor and factor.
func Sensitivity(cfg Config, factor float64) ([]SensitivityRow, *report.Table, error) {
	if factor <= 1 {
		return nil, nil, fmt.Errorf("experiments: sensitivity factor %v must exceed 1", factor)
	}
	mlpB, err := bench.ByName("mnist-mlp")
	if err != nil {
		return nil, nil, fmtErr("sensitivity", err)
	}
	cnnB, err := bench.ByName("mnist-cnn")
	if err != nil {
		return nil, nil, fmtErr("sensitivity", err)
	}
	measure := func(c Config) (float64, float64, error) {
		pm, err := RunPair(mlpB, c.MCASize, c)
		if err != nil {
			return 0, 0, err
		}
		pc, err := RunPair(cnnB, c.MCASize, c)
		if err != nil {
			return 0, 0, err
		}
		return pm.Compared.EnergyGain, pc.Compared.EnergyGain, nil
	}
	var rows []SensitivityRow
	base := cfg
	mlp0, cnn0, err := measure(base)
	if err != nil {
		return nil, nil, fmtErr("sensitivity", err)
	}
	rows = append(rows, SensitivityRow{Param: "(baseline)", Factor: 1, MLPGain: mlp0, CNNGain: cnn0})
	for _, p := range perturbations {
		for _, f := range []float64{1 / factor, factor} {
			c := cfg
			c.Params = cfg.Params
			p.apply(&c.Params, f)
			mlp, cnn, err := measure(c)
			if err != nil {
				return nil, nil, fmtErr("sensitivity", err)
			}
			rows = append(rows, SensitivityRow{Param: p.name, Factor: f, MLPGain: mlp, CNNGain: cnn})
		}
	}
	t := report.NewTable(fmt.Sprintf("Calibration sensitivity (each constant x%.2g and /%.2g)", factor, factor),
		"Parameter", "Factor", "MLP gain", "CNN gain")
	for _, r := range rows {
		t.Add(r.Param, report.F(r.Factor), report.Gain(r.MLPGain), report.Gain(r.CNNGain))
	}
	return rows, t, nil
}

// RobustConclusions checks the paper's structural conclusions over
// sensitivity rows: RESPARC always wins both families, and MLP gains dwarf
// CNN gains, under every perturbation.
func RobustConclusions(rows []SensitivityRow) error {
	for _, r := range rows {
		if r.MLPGain <= 1 || r.CNNGain <= 1 {
			return fmt.Errorf("experiments: %s x%.2g: RESPARC no longer wins (%v / %v)",
				r.Param, r.Factor, r.MLPGain, r.CNNGain)
		}
		if r.MLPGain < 5*r.CNNGain {
			return fmt.Errorf("experiments: %s x%.2g: MLP gain (%v) no longer dwarfs CNN gain (%v)",
				r.Param, r.Factor, r.MLPGain, r.CNNGain)
		}
	}
	return nil
}
