package experiments

import (
	"testing"

	"resparc/internal/energy"
)

// Consistency anchor: the average power a simulated classification draws
// per NeuroCell must stay below Fig 8's published 53.2 mW (that figure is
// the synthesized peak; event-driven operation idles most of the fabric)
// and above a sanity floor.
func TestPowerPerNeuroCellWithinAnchor(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation; skipped with -short")
	}
	cfg := testConfig()
	peakW := energy.NeuroCellMetrics().PowerMW / 1e3
	for _, name := range []string{"mnist-mlp", "mnist-cnn"} {
		p, err := RunPair(mustBench(t, name), cfg.MCASize, cfg)
		if err != nil {
			t.Fatal(err)
		}
		ncs := p.Mapping.NCs
		avgPower := p.RESPARC.Energy / p.RESPARC.Latency / float64(ncs)
		if avgPower > peakW {
			t.Errorf("%s: %.1f mW per NC exceeds the published %.1f mW peak",
				name, avgPower*1e3, peakW*1e3)
		}
		if avgPower < 1e-5 {
			t.Errorf("%s: %.3g W per NC implausibly low", name, avgPower)
		}
	}
	// The CMOS baseline's average power must similarly respect its 35.1 mW
	// synthesis anchor... loosely: leakage-dominated MLP runs can exceed the
	// core's dynamic anchor because the weight SRAM is modeled separately,
	// so only check the core component.
	p, err := RunPair(mustBench(t, "mnist-mlp"), cfg.MCASize, cfg)
	if err != nil {
		t.Fatal(err)
	}
	corePower := p.CRep.Energy.Core / p.CMOS.Latency
	basePeak := energy.BaselineMetrics().PowerMW / 1e3
	if corePower > basePeak {
		t.Errorf("baseline core power %.1f mW exceeds the published %.1f mW",
			corePower*1e3, basePeak*1e3)
	}
}
