package experiments

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"resparc/internal/bench"
	"resparc/internal/fault"
	"resparc/internal/mapping"
	"resparc/internal/quant"
	"resparc/internal/report"
	"resparc/internal/snn"
	"resparc/internal/tensor"
)

// This file is the accuracy-under-fault sweep closing the robustness loop:
// a seeded fault.Campaign (stuck devices at the technology defect rate and
// above, lognormal conductance drift growing with elapsed inferences, and a
// small set of dead mPEs modelling yield loss) is applied to every Fig 10
// benchmark, with the fault-aware remapping pass on and off. The metric is
// prediction agreement against the clean quantized reference on the same
// inputs and encoders, so the numbers isolate fault damage from
// quantization and encoding effects.
//
// Fidelity note: dense layers get exact per-tap fault application — every
// cross-point reads back through fault.EffectiveWeight with its own stuck
// state and drift draw. Conv kernels are weight-shared across thousands of
// physical cells, so a per-cell fault has no single logical weight to land
// on; conv layers take quantization plus one representative drift draw per
// kernel tap, while their stuck/dead damage is captured by the survey and
// remap reporting (Faulty, ResidualBadTaps, EstAccuracyLoss) rather than
// the functional agreement. The MLP benchmarks therefore carry the full
// functional signal.

// FaultsConfig parameterizes the sweep.
type FaultsConfig struct {
	Config
	// StuckFractions is the stuck-device axis. 0 must be included to anchor
	// the fault-free row; the technology default (AgSi: 0.002) is the
	// acceptance operating point.
	StuckFractions []float64
	// DriftAges is the elapsed-inference axis for conductance drift.
	DriftAges []float64
	// DriftSigma scales the lognormal drift (see fault.Campaign).
	DriftSigma float64
	// DeadMPEFrac kills this fraction of mapped mPEs (at least one when
	// positive) — the whole-array yield loss remapping exists to absorb.
	DeadMPEFrac float64
	// SpareMPEs is the spare pool per mapping; <= 0 derives one large
	// enough for the dead mPEs plus screening burn.
	SpareMPEs int
	// MaxBadTaps is the remap tolerance: allocations with at most this many
	// damaging stuck taps stay in place, and spare slots must beat it to
	// pass the screen.
	MaxBadTaps int
	// Benches overrides the benchmark set (nil: all six Fig 10 networks).
	Benches []bench.Benchmark
}

// DefaultFaultsConfig is the full sweep: all six benchmarks, the Ag-Si
// defect rate bracketed by a clean and a pessimistic point, fresh and aged
// drift.
func DefaultFaultsConfig() FaultsConfig {
	c := FaultsConfig{
		Config:         DefaultConfig(),
		StuckFractions: []float64{0, 0.002, 0.01},
		DriftAges:      []float64{0, 1e5},
		DriftSigma:     0.1,
		DeadMPEFrac:    0.02,
		MaxBadTaps:     24,
	}
	c.Samples = 40
	return c
}

// QuickFaultsConfig reduces fidelity for tests and smoke runs. Unlike
// QuickConfig it keeps the full 48 timesteps: the benchmarks' output layers
// need ~20 steps before the first output spike, and with no output spikes
// every prediction ties at class 0 and the agreement metric is blind.
func QuickFaultsConfig() FaultsConfig {
	c := DefaultFaultsConfig()
	c.Samples = 12
	c.StuckFractions = []float64{0, 0.002}
	c.DriftAges = []float64{0}
	return c
}

// FaultPoint is one (benchmark, campaign, remap) measurement.
type FaultPoint struct {
	Bench         string  `json:"bench"`
	StuckFraction float64 `json:"stuck_fraction"`
	DriftAge      float64 `json:"drift_age"`
	DriftSigma    float64 `json:"drift_sigma"` // effective sigma at DriftAge
	DeadMPEs      int     `json:"dead_mpes"`
	Remap         bool    `json:"remap"`

	// Agreement is the fraction of samples whose prediction matches the
	// clean quantized reference network.
	Agreement float64 `json:"agreement"`

	// Survey / remap outcome (Moves..EstAccuracyLoss are zero when Remap
	// is off).
	Faulty          int     `json:"faulty"`
	Moves           int     `json:"moves"`
	SparesUsed      int     `json:"spares_used"`
	Degraded        int     `json:"degraded"`
	ResidualBadTaps int     `json:"residual_bad_taps"`
	EstAccuracyLoss float64 `json:"est_accuracy_loss"`
}

// FaultsResult is the machine-readable sweep output (-fig faults JSON). It
// contains no timestamps or host state: the same seed produces a
// byte-identical file.
type FaultsResult struct {
	Seed       int64        `json:"seed"`
	MCASize    int          `json:"mca_size"`
	Steps      int          `json:"steps"`
	Samples    int          `json:"samples"`
	DriftSigma float64      `json:"drift_sigma"`
	MaxBadTaps int          `json:"max_bad_taps"`
	Points     []FaultPoint `json:"points"`
}

// Recovered returns the accuracy lost without remapping and the fraction of
// it the remapping pass recovers, at one (benchmark, stuck, age) operating
// point. ok is false when the sweep has no such pair of points or nothing
// was lost.
func (r *FaultsResult) Recovered(benchName string, stuck, age float64) (lost, frac float64, ok bool) {
	var off, on *FaultPoint
	for i := range r.Points {
		p := &r.Points[i]
		if p.Bench != benchName || p.StuckFraction != stuck || p.DriftAge != age {
			continue
		}
		if p.Remap {
			on = p
		} else {
			off = p
		}
	}
	if off == nil || on == nil {
		return 0, 0, false
	}
	lost = 1 - off.Agreement
	if lost <= 0 {
		return 0, 0, false
	}
	return lost, (on.Agreement - off.Agreement) / lost, true
}

// FigFaults runs the sweep.
func FigFaults(cfg FaultsConfig) (*FaultsResult, *report.Table, error) {
	benches := cfg.Benches
	if benches == nil {
		benches = bench.All()
	}
	res := &FaultsResult{
		Seed:       cfg.Seed,
		MCASize:    cfg.MCASize,
		Steps:      cfg.Steps,
		Samples:    cfg.Samples,
		DriftSigma: cfg.DriftSigma,
		MaxBadTaps: cfg.MaxBadTaps,
	}
	for _, b := range benches {
		if err := runFaultBench(b, cfg, res); err != nil {
			return nil, nil, fmtErr("faults", err)
		}
	}
	t := report.NewTable("Accuracy under faults (agreement vs clean quantized reference)",
		"Benchmark", "Stuck", "Drift age", "Remap", "Agreement", "Faulty", "Moves", "Degraded", "Est loss")
	for _, p := range res.Points {
		remap := "off"
		if p.Remap {
			remap = "on"
		}
		t.Add(p.Bench, fmt.Sprintf("%g", p.StuckFraction), fmt.Sprintf("%g", p.DriftAge), remap,
			fmt.Sprintf("%.3f", p.Agreement), fmt.Sprintf("%d", p.Faulty),
			fmt.Sprintf("%d", p.Moves), fmt.Sprintf("%d", p.Degraded),
			fmt.Sprintf("%.4f", p.EstAccuracyLoss))
	}
	return res, t, nil
}

func runFaultBench(b bench.Benchmark, cfg FaultsConfig, res *FaultsResult) error {
	net, err := b.Build(cfg.Seed)
	if err != nil {
		return err
	}
	m, err := mapping.Map(net, cfg.mapConfig(cfg.MCASize))
	if err != nil {
		return err
	}
	inputs, err := inputsFor(b, net, cfg.Config)
	if err != nil {
		return err
	}
	enc := cfg.encoders()
	cleanNet, err := faultedNetworkOn(net, m, fault.Campaign{}, 0)
	if err != nil {
		return err
	}
	ref, err := snn.RunBatch(cleanNet, inputs, enc, cfg.Steps, snn.Options{Workers: cfg.Workers})
	if err != nil {
		return err
	}
	dead := deadMPEPick(cfg.Seed, m.MPEs, cfg.DeadMPEFrac)
	for _, stuck := range cfg.StuckFractions {
		for _, age := range cfg.DriftAges {
			camp := fault.NewCampaign(cfg.Seed, cfg.Tech)
			camp.StuckFraction = stuck
			camp.DriftSigma = cfg.DriftSigma
			camp.DeadMPEs = dead
			for _, remap := range []bool{false, true} {
				p, err := runFaultPoint(b, net, camp, age, remap, cfg, inputs, enc, ref)
				if err != nil {
					return err
				}
				res.Points = append(res.Points, p)
			}
		}
	}
	return nil
}

func runFaultPoint(b bench.Benchmark, net *snn.Network, camp fault.Campaign, age float64,
	remap bool, cfg FaultsConfig, inputs []tensor.Vec, enc snn.EncoderFactory, ref []snn.RunResult) (FaultPoint, error) {
	// Each point gets a fresh mapping: RemapFaulty mutates placements.
	m, err := mapping.Map(net, cfg.mapConfig(cfg.MCASize))
	if err != nil {
		return FaultPoint{}, err
	}
	p := FaultPoint{
		Bench:         b.Name,
		StuckFraction: camp.StuckFraction,
		DriftAge:      age,
		DriftSigma:    camp.DriftSigmaAt(age),
		DeadMPEs:      len(camp.DeadMPEs),
		Remap:         remap,
	}
	health := m.SurveyCampaign(camp)
	p.Faulty = len(health)
	if remap {
		spares := cfg.SpareMPEs
		if spares <= 0 {
			// Room for every dead mPE's allocations plus screening burn.
			spares = 2*len(camp.DeadMPEs) + 4
		}
		rep, err := m.RemapFaulty(health, mapping.RemapConfig{
			SpareMPEs:  spares,
			MaxBadTaps: cfg.MaxBadTaps,
			Screen:     m.CampaignScreen(camp, cfg.MaxBadTaps),
		})
		if err != nil {
			return FaultPoint{}, err
		}
		p.Moves = len(rep.Moves)
		p.SparesUsed = rep.SparesUsed
		p.Degraded = len(rep.Degraded)
		p.ResidualBadTaps = rep.ResidualBadTaps
		p.EstAccuracyLoss = rep.EstAccuracyLoss
	}
	fnet, err := faultedNetworkOn(net, m, camp, age)
	if err != nil {
		return FaultPoint{}, err
	}
	got, err := snn.RunBatch(fnet, inputs, enc, cfg.Steps, snn.Options{Workers: cfg.Workers})
	if err != nil {
		return FaultPoint{}, err
	}
	agree := 0
	for i := range got {
		if got[i].Prediction == ref[i].Prediction {
			agree++
		}
	}
	p.Agreement = float64(agree) / float64(len(got))
	return p, nil
}

// deadMPEPick selects the killed mPEs deterministically from the seed: a
// fixed permutation of the mapped mPE indices, sorted for stable reporting.
func deadMPEPick(seed int64, mpes int, frac float64) []int {
	if frac <= 0 || mpes <= 0 {
		return nil
	}
	k := int(math.Round(frac * float64(mpes)))
	if k < 1 {
		k = 1
	}
	if k > mpes {
		k = mpes
	}
	rng := rand.New(rand.NewSource(seed ^ 0x5eed))
	dead := append([]int(nil), rng.Perm(mpes)[:k]...)
	sort.Ints(dead)
	return dead
}

// faultedNetworkOn builds the functional network a faulted chip computes:
// every dense tap reads back through its physical crossbar cell's
// quantization, stuck state and drift; taps on dead slots vanish. The zero
// campaign at age 0 yields the clean quantized reference.
func faultedNetworkOn(net *snn.Network, m *mapping.Mapping, camp fault.Campaign, age float64) (*snn.Network, error) {
	sigma := camp.DriftSigmaAt(age)
	layers := make([]*snn.Layer, 0, len(net.Layers))
	for li, l := range net.Layers {
		size := m.LayerSize(li)
		switch l.Kind {
		case snn.DenseLayer:
			mapper, err := quant.NewMapper(m.Cfg.Tech, l.W.MaxAbs())
			if err != nil {
				return nil, err
			}
			w := l.W.Clone()
			for ai := range m.Layers[li].MCAs {
				a := &m.Layers[li].MCAs[ai]
				id := fault.SlotID{MPE: a.MPE, Slot: a.Slot}
				dead := camp.SlotDead(id)
				cm := camp.CellMap(id, size, size)
				rng := camp.DriftRng(id)
				for r, in := range a.Inputs {
					for c, out := range a.Outputs {
						dp := fault.DriftFactor(rng, sigma)
						dn := fault.DriftFactor(rng, sigma)
						if dead {
							w.Set(int(out), int(in), 0)
							continue
						}
						eff := fault.EffectiveWeight(mapper, l.W.At(int(out), int(in)),
							cm.At(r, c, fault.Pos), cm.At(r, c, fault.Neg), dp, dn)
						w.Set(int(out), int(in), eff)
					}
				}
			}
			nl, err := snn.NewDense(l.Name, l.InSize(), l.OutSize(), w, l.Threshold)
			if err != nil {
				return nil, err
			}
			nl.In, nl.Out = l.In, l.Out
			nl.Leak, nl.HardReset = l.Leak, l.HardReset
			layers = append(layers, nl)
		case snn.ConvLayer:
			mapper, err := quant.NewMapper(m.Cfg.Tech, l.W.MaxAbs())
			if err != nil {
				return nil, err
			}
			// Shared kernels: quantization plus one representative drift
			// draw per logical tap (pseudo-slot keyed by layer, disjoint
			// from physical slot ids). Stuck/dead damage is reported by the
			// survey, not applied functionally — see the file comment.
			rng := camp.DriftRng(fault.SlotID{MPE: -1 - li, Slot: 0})
			w := l.W.Clone()
			for i, x := range w.Data {
				dp := fault.DriftFactor(rng, sigma)
				dn := fault.DriftFactor(rng, sigma)
				w.Data[i] = fault.EffectiveWeight(mapper, x, fault.DeviceOK, fault.DeviceOK, dp, dn)
			}
			nl, err := snn.NewConv(l.Name, l.Geom, w, l.Threshold)
			if err != nil {
				return nil, err
			}
			nl.Leak, nl.HardReset = l.Leak, l.HardReset
			layers = append(layers, nl)
		case snn.PoolLayer:
			nl, err := snn.NewPool(l.Name, l.In, l.Geom.K, l.Threshold)
			if err != nil {
				return nil, err
			}
			nl.Leak, nl.HardReset = l.Leak, l.HardReset
			layers = append(layers, nl)
		default:
			return nil, fmt.Errorf("faults: unknown layer kind %v", l.Kind)
		}
	}
	return snn.NewNetwork(net.Name+"-faulted", net.Input, layers...)
}
