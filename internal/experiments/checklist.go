package experiments

import (
	"fmt"

	"resparc/internal/report"
)

// Verdict is one reproduction check outcome.
type Verdict struct {
	Artifact string
	Claim    string
	Measured string
	Pass     bool
}

// Checklist runs the core reproduction checks at the given configuration
// and returns live verdicts — the runtime form of EXPERIMENTS.md's
// checklist. It covers the quantitative claims; the tabular artifacts
// (Figs 8-10) are asserted exactly by their own drivers.
func Checklist(cfg Config) ([]Verdict, *report.Table, error) {
	var out []Verdict
	add := func(artifact, claim, measured string, pass bool) {
		out = append(out, Verdict{Artifact: artifact, Claim: claim, Measured: measured, Pass: pass})
	}

	// Fig 10.
	rows, _, err := Fig10(cfg)
	if err != nil {
		return nil, nil, err
	}
	worst := 0.0
	for _, r := range rows {
		if r.NeuronErr > worst {
			worst = r.NeuronErr
		}
		if r.SynErr > worst {
			worst = r.SynErr
		}
	}
	add("Fig 10", "benchmark totals match within 0.1%",
		fmt.Sprintf("worst deviation %.3f%%", 100*worst), worst <= 0.001)

	// Fig 11.
	f11, err := Fig11(cfg)
	if err != nil {
		return nil, nil, err
	}
	add("Fig 11", "MLP energy gain ~513x (paper range 331-659x)",
		fmt.Sprintf("%.0fx avg", f11.MLPAvgGain), f11.MLPAvgGain >= 250 && f11.MLPAvgGain <= 900)
	add("Fig 11", "CNN energy gain ~12x (paper range 10-15x)",
		fmt.Sprintf("%.0fx avg", f11.CNNAvgGain), f11.CNNAvgGain >= 5 && f11.CNNAvgGain <= 25)
	add("Fig 11", "MLP speedup ~382x (paper range 360-415x)",
		fmt.Sprintf("%.0fx avg", f11.MLPAvgSpeedup), f11.MLPAvgSpeedup >= 250 && f11.MLPAvgSpeedup <= 600)
	add("Fig 11", "CNN speedup ~60x (paper range 33-95x)",
		fmt.Sprintf("%.0fx avg", f11.CNNAvgSpeedup), f11.CNNAvgSpeedup >= 25 && f11.CNNAvgSpeedup <= 110)

	// Fig 12.
	f12, err := Fig12(cfg)
	if err != nil {
		return nil, nil, err
	}
	mlpMonotone := true
	for _, b := range []string{"mnist-mlp", "svhn-mlp", "cifar-mlp"} {
		e32, _ := f12.EnergyOf(f12.RESPARCMLP, b, 32)
		e64, _ := f12.EnergyOf(f12.RESPARCMLP, b, 64)
		e128, _ := f12.EnergyOf(f12.RESPARCMLP, b, 128)
		if !(e32.Energy.Total() > e64.Energy.Total() && e64.Energy.Total() > e128.Energy.Total()) {
			mlpMonotone = false
		}
	}
	add("Fig 12a", "MLP energy falls monotonically with MCA size", verdictWord(mlpMonotone), mlpMonotone)
	cnnOpt := true
	for _, b := range []string{"mnist-cnn", "svhn-cnn", "cifar-cnn"} {
		e32, _ := f12.EnergyOf(f12.RESPARCCNN, b, 32)
		e64, _ := f12.EnergyOf(f12.RESPARCCNN, b, 64)
		e128, _ := f12.EnergyOf(f12.RESPARCCNN, b, 128)
		if !(e64.Energy.Total() < e32.Energy.Total() && e64.Energy.Total() < e128.Energy.Total()) {
			cnnOpt = false
		}
	}
	add("Fig 12c", "RESPARC-64 is the CNN optimum", verdictWord(cnnOpt), cnnOpt)
	memDominated := true
	for _, e := range f12.CMOSMLP {
		if e.MemoryAccess+e.MemoryLeakage <= e.Core {
			memDominated = false
		}
	}
	add("Fig 12b", "CMOS MLP energy is memory-dominated", verdictWord(memDominated), memDominated)
	coreLed := true
	for _, e := range f12.CMOSCNN {
		if !(e.Core > e.MemoryAccess && e.Core > e.MemoryLeakage) {
			coreLed = false
		}
	}
	add("Fig 12d", "CMOS CNN core is the largest component", verdictWord(coreLed), coreLed)

	// Fig 13.
	f13, err := Fig13(cfg)
	if err != nil {
		return nil, nil, err
	}
	_, _, mlp32 := Savings(f13.MLP, 32)
	_, _, mlp128 := Savings(f13.MLP, 128)
	_, _, cnn32 := Savings(f13.CNN, 32)
	eventOK := mlp32 > 1 && cnn32 > 1 && mlp32 > mlp128
	add("Fig 13", "event-drivenness saves energy, most on the smallest MCA",
		fmt.Sprintf("MLP %.2fx@32 %.2fx@128, CNN %.2fx@32", mlp32, mlp128, cnn32), eventOK)

	// Fig 14b.
	f14b, _, err := Fig14b(cfg)
	if err != nil {
		return nil, nil, err
	}
	growth := f14b[len(f14b)-1].CMOS / f14b[0].CMOS
	flat := f14b[len(f14b)-1].RESPARC == f14b[0].RESPARC
	add("Fig 14b", "CMOS energy grows ~2x from 1 to 8 bits; RESPARC flat",
		fmt.Sprintf("CMOS %.2fx, RESPARC flat=%v", growth, flat),
		growth > 1.5 && growth < 5 && flat)

	t := report.NewTable("Reproduction checklist", "Artifact", "Claim", "Measured", "Verdict")
	for _, v := range out {
		t.Add(v.Artifact, v.Claim, v.Measured, verdictWord(v.Pass))
	}
	return out, t, nil
}

func verdictWord(ok bool) string {
	if ok {
		return "PASS"
	}
	return "FAIL"
}
