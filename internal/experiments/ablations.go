package experiments

import (
	"fmt"
	"math/rand"

	"resparc/internal/ann"
	"resparc/internal/bench"
	"resparc/internal/core"
	"resparc/internal/dataset"
	"resparc/internal/mapping"
	"resparc/internal/mpe"
	"resparc/internal/neurocell"
	"resparc/internal/report"
	"resparc/internal/sim"
	"resparc/internal/snn"
	"resparc/internal/tensor"
	"resparc/internal/xbar"
)

// Ablation experiments: design-space studies beyond the paper's main
// figures, each probing one design decision DESIGN.md calls out.

// PacketWidths is the spike-packet (zero-run-length) sweep of the
// run-length discussion in §5.3.
var PacketWidths = []int{8, 16, 32, 64}

// PacketWidthRow is one packet-width configuration.
type PacketWidthRow struct {
	Width      int
	Energy     float64
	Suppressed float64 // fraction of packets suppressed
}

// AblationPacketWidth sweeps the spike-packet width on the MNIST MLP:
// narrower packets find short zero runs more often (§5.3: "the probability
// of finding zeros with smaller run-lengths is significantly higher") at
// the cost of more packets overall.
func AblationPacketWidth(cfg Config) ([]PacketWidthRow, *report.Table, error) {
	b, err := bench.ByName("mnist-mlp")
	if err != nil {
		return nil, nil, fmtErr("ablation-packet-width", err)
	}
	t := report.NewTable("Ablation: spike-packet width (zero run-length), MNIST MLP",
		"Width (bits)", "Energy (J)", "Suppressed")
	var rows []PacketWidthRow
	for _, w := range PacketWidths {
		_, rep, _, err := RunRESPARC(b, cfg.MCASize, cfg, true, w)
		if err != nil {
			return nil, nil, fmtErr("ablation-packet-width", err)
		}
		total := rep.Counts.PacketsDelivered + rep.Counts.PacketsSuppressed
		frac := 0.0
		if total > 0 {
			frac = float64(rep.Counts.PacketsSuppressed) / float64(total)
		}
		rows = append(rows, PacketWidthRow{Width: w, Energy: rep.Energy.Total(), Suppressed: frac})
		t.Add(fmt.Sprintf("%d", w), report.Sci(rep.Energy.Total()), report.Pct(frac))
	}
	return rows, t, nil
}

// InputSharingRow compares the §3.1.1 input-sharing mapper against the
// naive one-unit-per-MCA mapping at one crossbar size.
type InputSharingRow struct {
	Size                      int
	SharedMCAs, NaiveMCAs     int
	SharedUtil, NaiveUtil     float64
	SharedEnergy, NaiveEnergy float64
}

// AblationInputSharing quantifies the mapper's input sharing on a CNN
// benchmark: §3.1.1 claims enumerating the connectivity matrix across
// smaller MCAs with input sharing improves utilization and reduces the
// number of mPEs (and thereby peripheral energy).
func AblationInputSharing(cfg Config) ([]InputSharingRow, *report.Table, error) {
	b, err := bench.ByName("mnist-cnn")
	if err != nil {
		return nil, nil, fmtErr("ablation-input-sharing", err)
	}
	net, err := b.Build(cfg.Seed)
	if err != nil {
		return nil, nil, fmtErr("ablation-input-sharing", err)
	}
	inputs, err := inputsFor(b, net, cfg)
	if err != nil {
		return nil, nil, fmtErr("ablation-input-sharing", err)
	}
	run := func(size int, disable bool) (int, float64, float64, error) {
		mc := cfg.mapConfig(size)
		mc.DisableInputSharing = disable
		m, err := mapping.Map(net, mc)
		if err != nil {
			return 0, 0, 0, err
		}
		copt := core.DefaultOptions()
		copt.Params = cfg.Params
		copt.Steps = cfg.Steps
		chip, err := core.New(net, m, copt)
		if err != nil {
			return 0, 0, 0, err
		}
		res, _, err := chip.ClassifyBatch(inputs, cfg.encoders(), cfg.simOptions())
		if err != nil {
			return 0, 0, 0, err
		}
		return m.MCAs, m.TotalUtilization(), res.Energy, nil
	}
	t := report.NewTable("Ablation: input-sharing mapper vs naive mapping, MNIST CNN",
		"MCA", "Shared MCAs", "Naive MCAs", "Shared util", "Naive util", "Shared E (J)", "Naive E (J)")
	var rows []InputSharingRow
	for _, size := range []int{32, 64} {
		sm, su, se, err := run(size, false)
		if err != nil {
			return nil, nil, fmtErr("ablation-input-sharing", err)
		}
		nm, nu, ne, err := run(size, true)
		if err != nil {
			return nil, nil, fmtErr("ablation-input-sharing", err)
		}
		rows = append(rows, InputSharingRow{
			Size: size, SharedMCAs: sm, NaiveMCAs: nm,
			SharedUtil: su, NaiveUtil: nu, SharedEnergy: se, NaiveEnergy: ne,
		})
		t.Add(fmt.Sprintf("%d", size), fmt.Sprintf("%d", sm), fmt.Sprintf("%d", nm),
			report.Pct(su), report.Pct(nu), report.Sci(se), report.Sci(ne))
	}
	return rows, t, nil
}

// ContentionRow compares the ideal parallel-switch bound against the
// packet-level switch-fabric simulation for one traffic pattern.
type ContentionRow struct {
	Pattern     string
	Packets     int
	IdealCycles int
	RealCycles  int
}

// AblationSwitchContention stresses the §3.1.2 "high throughput parallel
// transfer" assumption with the Fig 6 switch fabric at packet granularity:
// uniform neighbor traffic tracks the ideal bound; hotspot traffic
// serializes at the destination switch.
func AblationSwitchContention(seed int64) ([]ContentionRow, *report.Table, error) {
	sw, err := neurocell.NewSwitchNet(4)
	if err != nil {
		return nil, nil, fmtErr("ablation-contention", err)
	}
	rng := rand.New(rand.NewSource(seed))
	patterns := []struct {
		name string
		gen  func(n int) []neurocell.Transfer
	}{
		{"neighbor", func(n int) []neurocell.Transfer {
			out := make([]neurocell.Transfer, n)
			for i := range out {
				src := i % 16
				out[i] = neurocell.Transfer{SrcMPE: src, DstMPE: (src + 1) % 16}
			}
			return out
		}},
		{"uniform-random", func(n int) []neurocell.Transfer {
			out := make([]neurocell.Transfer, n)
			for i := range out {
				out[i] = neurocell.Transfer{SrcMPE: rng.Intn(16), DstMPE: rng.Intn(16)}
			}
			return out
		}},
		{"hotspot", func(n int) []neurocell.Transfer {
			out := make([]neurocell.Transfer, n)
			for i := range out {
				out[i] = neurocell.Transfer{SrcMPE: i % 15, DstMPE: 15}
			}
			return out
		}},
	}
	t := report.NewTable("Ablation: switch-fabric contention (4x4 NeuroCell, 9 switches)",
		"Pattern", "Packets", "Ideal cycles", "Simulated cycles", "Slowdown")
	var rows []ContentionRow
	const packets = 72
	for _, p := range patterns {
		st, err := sw.Simulate(p.gen(packets))
		if err != nil {
			return nil, nil, fmtErr("ablation-contention", err)
		}
		ideal := sw.IdealCycles(packets)
		rows = append(rows, ContentionRow{Pattern: p.name, Packets: packets, IdealCycles: ideal, RealCycles: st.Cycles})
		t.Add(p.name, fmt.Sprintf("%d", packets), fmt.Sprintf("%d", ideal),
			fmt.Sprintf("%d", st.Cycles), report.F(float64(st.Cycles)/float64(ideal)))
	}
	return rows, t, nil
}

// GatingRow compares the shipped crossbar (idle cross-points on driven rows
// conduct) against a counterfactual design with power-gated idle columns,
// at one MCA size.
type GatingRow struct {
	Size            int
	Normal, Gated   float64 // joules
	NormalU, GatedU float64 // utilization (identical; shown for context)
}

// AblationColumnGating quantifies how much of the Fig 12(c) CNN penalty is
// the idle-cell conduction: with gating, larger arrays stop paying for
// their unused cross-points and the 64-size optimum moves.
func AblationColumnGating(cfg Config) ([]GatingRow, *report.Table, error) {
	b, err := bench.ByName("mnist-cnn")
	if err != nil {
		return nil, nil, fmtErr("ablation-gating", err)
	}
	t := report.NewTable("Ablation: idle-column power gating, MNIST CNN",
		"MCA", "Normal E (J)", "Gated E (J)", "Saved")
	var rows []GatingRow
	for _, size := range []int{32, 64, 128} {
		normCfg := cfg
		_, repN, m, err := RunRESPARC(b, size, normCfg, true, 0)
		if err != nil {
			return nil, nil, fmtErr("ablation-gating", err)
		}
		gateCfg := cfg
		gateCfg.Params.GateIdleColumns = true
		_, repG, _, err := RunRESPARC(b, size, gateCfg, true, 0)
		if err != nil {
			return nil, nil, fmtErr("ablation-gating", err)
		}
		rows = append(rows, GatingRow{
			Size:   size,
			Normal: repN.Energy.Total(), Gated: repG.Energy.Total(),
			NormalU: m.TotalUtilization(), GatedU: m.TotalUtilization(),
		})
		t.Add(fmt.Sprintf("%d", size), report.Sci(repN.Energy.Total()), report.Sci(repG.Energy.Total()),
			report.Pct(1-repG.Energy.Total()/repN.Energy.Total()))
	}
	return rows, t, nil
}

// EarlyExitRow compares full-budget rate decoding against
// time-to-first-spike early exit on one benchmark.
type EarlyExitRow struct {
	Bench                  string
	FullEnergy, EEEnergy   float64
	FullLatency, EELatency float64
	MeanSteps              float64 // steps actually simulated under early exit
}

// AblationEarlyExit measures the event-driven early-exit opportunity:
// latency (TTFS) decoding lets a classification stop at the first output
// spike instead of running the full timestep budget.
func AblationEarlyExit(cfg Config) ([]EarlyExitRow, *report.Table, error) {
	t := report.NewTable("Extension: time-to-first-spike early exit",
		"Benchmark", "Full E (J)", "Early E (J)", "Full lat (s)", "Early lat (s)", "Mean steps")
	var rows []EarlyExitRow
	for _, name := range []string{"mnist-mlp", "mnist-cnn"} {
		b, err := bench.ByName(name)
		if err != nil {
			return nil, nil, fmtErr("ablation-earlyexit", err)
		}
		net, err := b.Build(cfg.Seed)
		if err != nil {
			return nil, nil, fmtErr("ablation-earlyexit", err)
		}
		m, err := mapping.Map(net, cfg.mapConfig(cfg.MCASize))
		if err != nil {
			return nil, nil, fmtErr("ablation-earlyexit", err)
		}
		copt := core.DefaultOptions()
		copt.Params = cfg.Params
		copt.Steps = cfg.Steps
		chip, err := core.New(net, m, copt)
		if err != nil {
			return nil, nil, fmtErr("ablation-earlyexit", err)
		}
		inputs, err := inputsFor(b, net, cfg)
		if err != nil {
			return nil, nil, fmtErr("ablation-earlyexit", err)
		}
		var row EarlyExitRow
		row.Bench = name
		for i, in := range inputs {
			fRes, _ := chip.Classify(in, snn.NewPoissonEncoder(cfg.MaxProb, cfg.Seed+7+int64(i)))
			eRess, eReps, err := chip.ClassifyEach([]tensor.Vec{in},
				func(int) snn.Encoder { return snn.NewPoissonEncoder(cfg.MaxProb, cfg.Seed+7+int64(i)) },
				sim.Options{Workers: 1, EarlyExit: true})
			if err != nil {
				return nil, nil, fmtErr("ablation-earlyexit", err)
			}
			row.FullEnergy += fRes.Energy
			row.EEEnergy += eRess[0].Energy
			row.FullLatency += fRes.Latency
			row.EELatency += eRess[0].Latency
			row.MeanSteps += float64(eReps[0].Steps)
		}
		n := float64(len(inputs))
		row.FullEnergy /= n
		row.EEEnergy /= n
		row.FullLatency /= n
		row.EELatency /= n
		row.MeanSteps /= n
		rows = append(rows, row)
		t.Add(name, report.Sci(row.FullEnergy), report.Sci(row.EEEnergy),
			report.Sci(row.FullLatency), report.Sci(row.EELatency), report.F(row.MeanSteps))
	}
	return rows, t, nil
}

// NonIdealityRow is the classification accuracy of a trained network run
// through physical crossbars of one size with non-idealities enabled.
type NonIdealityRow struct {
	Size     int
	Ideal    float64 // accuracy with ideal weights
	Physical float64 // accuracy through perturbed crossbars
}

// AblationNonIdealityAccuracy trains a small digit MLP, maps it at several
// crossbar sizes, and classifies through the electrical crossbar model with
// IR drop and device variation — the end-to-end version of §1's argument
// that large crossbars compute erroneously and reliable sizes are small.
func AblationNonIdealityAccuracy(trainSamples, testSamples, steps int, seed int64) ([]NonIdealityRow, *report.Table, error) {
	train := dataset.Generate(dataset.Digits, trainSamples, seed)
	test := dataset.Generate(dataset.Digits, testSamples, seed+1)
	rng := rand.New(rand.NewSource(seed + 2))
	mlp := ann.NewMLP(train.Shape.Size(), []int{24}, 10, rng)
	tc := ann.DefaultTrainConfig()
	tc.Epochs = 6
	tc.LR = 0.01
	mlp.Train(train, tc)
	calib, _ := train.Split(minInt(80, trainSamples))
	net, err := snn.FromANN("nonideal-mlp", mlp, calib)
	if err != nil {
		return nil, nil, fmtErr("ablation-nonideality", err)
	}
	// Heavy wire resistance exaggerates the trend at simulation-friendly
	// sizes.
	xcfg := xbar.Config{IRDrop: true, WireResistance: 30, Variation: true}
	t := report.NewTable("Ablation: crossbar non-idealities vs classification accuracy (digits MLP)",
		"MCA size", "Ideal accuracy", "Physical accuracy")
	var rows []NonIdealityRow
	for _, size := range []int{16, 64} {
		mc := mapping.DefaultConfig()
		mc.MCASize = size
		m, err := mapping.Map(net, mc)
		if err != nil {
			return nil, nil, fmtErr("ablation-nonideality", err)
		}
		evalSim := func(mode mpe.Mode, cfg xbar.Config) (float64, error) {
			sim, err := neurocell.New(net, m, mode, cfg)
			if err != nil {
				return 0, err
			}
			if mode == mpe.Physical {
				sim.Perturb(cfg, rand.New(rand.NewSource(seed+9)))
			}
			correct := 0
			enc := snn.NewPoissonEncoder(0.9, seed+5)
			for _, s := range test.Samples {
				if sim.Run(s.Input, enc, steps) == s.Label {
					correct++
				}
			}
			return float64(correct) / float64(len(test.Samples)), nil
		}
		ideal, err := evalSim(mpe.Ideal, xbar.Config{})
		if err != nil {
			return nil, nil, fmtErr("ablation-nonideality", err)
		}
		phys, err := evalSim(mpe.Physical, xcfg)
		if err != nil {
			return nil, nil, fmtErr("ablation-nonideality", err)
		}
		rows = append(rows, NonIdealityRow{Size: size, Ideal: ideal, Physical: phys})
		t.Add(fmt.Sprintf("%d", size), report.Pct(ideal), report.Pct(phys))
	}
	return rows, t, nil
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
