package experiments

import (
	"fmt"
	"strings"
	"testing"

	"resparc/internal/bench"
	"resparc/internal/core"
	"resparc/internal/mapping"
	"resparc/internal/parallel"
	"resparc/internal/perf"
	"resparc/internal/report"
	"resparc/internal/sim"
	"resparc/internal/snn"
	"resparc/internal/tensor"
)

// PerfSuite measures the evaluation pipeline's hot paths with
// testing.Benchmark and returns machine-readable entries (the content of
// BENCH_RESULTS.json) plus a rendered table. It covers the functional SNN
// evaluator and the full RESPARC chip simulation, each at one worker
// (the serial reference) and at the configured pool size, so the JSON
// records both the single-thread cost and the parallel scaling of
// regenerating the paper's figures.
func PerfSuite(cfg Config) ([]perf.BenchEntry, *report.Table, error) {
	var entries []perf.BenchEntry

	addEval := func(name string, net *snn.Network, inputs []tensor.Vec, workers int, label string, opt snn.Options) error {
		enc := cfg.encoders()
		opt.Workers = workers
		var runErr error
		res := testing.Benchmark(func(tb *testing.B) {
			tb.ReportAllocs()
			for i := 0; i < tb.N; i++ {
				if _, err := snn.RunBatch(net, inputs, enc, cfg.Steps, opt); err != nil {
					runErr = err
					tb.FailNow()
				}
			}
		})
		if runErr != nil {
			return runErr
		}
		entries = append(entries, benchEntry(fmt.Sprintf("eval/%s/%s", name, label), res, len(inputs), workers))
		return nil
	}

	for _, name := range []string{"mnist-mlp", "mnist-cnn", "cifar-cnn"} {
		b, err := bench.ByName(name)
		if err != nil {
			return nil, nil, fmtErr("perfsuite", err)
		}
		net, err := b.Build(cfg.Seed)
		if err != nil {
			return nil, nil, fmtErr("perfsuite", err)
		}
		inputs, err := inputsFor(b, net, cfg)
		if err != nil {
			return nil, nil, fmtErr("perfsuite", err)
		}
		if err := addEval(name, net, inputs, 1, "serial", snn.Options{}); err != nil {
			return nil, nil, fmtErr("perfsuite", err)
		}
		if name != "cifar-cnn" {
			pool := parallel.Clamp(cfg.Workers, len(inputs))
			if err := addEval(name, net, inputs, pool, "parallel", snn.Options{}); err != nil {
				return nil, nil, fmtErr("perfsuite", err)
			}
		}
		// The CNN benchmarks additionally measure the batch-major (SoA)
		// runner — the mode serving and bulk evaluation use — at one worker,
		// so the JSON records its cost next to the per-image serial path
		// (bit-identical results; see snn.BatchState).
		if strings.HasSuffix(name, "-cnn") {
			if err := addEval(name, net, inputs, 1, "batched", snn.Options{Batch: 8}); err != nil {
				return nil, nil, fmtErr("perfsuite", err)
			}
		}
	}

	// Blocked vs stepped functional runner on the largest dense benchmark
	// (cifar-mlp), single worker: the pair isolates the layer-major
	// temporal-blocking speedup of snn.RunBlocked from pool scaling.
	{
		b, err := bench.ByName("cifar-mlp")
		if err != nil {
			return nil, nil, fmtErr("perfsuite", err)
		}
		net, err := b.Build(cfg.Seed)
		if err != nil {
			return nil, nil, fmtErr("perfsuite", err)
		}
		inputs, err := inputsFor(b, net, cfg)
		if err != nil {
			return nil, nil, fmtErr("perfsuite", err)
		}
		if err := addEval("cifar-mlp", net, inputs, 1, "blocked", snn.Options{}); err != nil {
			return nil, nil, fmtErr("perfsuite", err)
		}
		if err := addEval("cifar-mlp", net, inputs, 1, "stepped", snn.Options{Stepped: true}); err != nil {
			return nil, nil, fmtErr("perfsuite", err)
		}
	}

	// Full chip simulation (functional sim + event/energy accounting) on the
	// MLP benchmark — the unit of work behind every Fig 11–13 data point.
	b, err := bench.ByName("mnist-mlp")
	if err != nil {
		return nil, nil, fmtErr("perfsuite", err)
	}
	net, err := b.Build(cfg.Seed)
	if err != nil {
		return nil, nil, fmtErr("perfsuite", err)
	}
	m, err := mapping.Map(net, cfg.mapConfig(cfg.MCASize))
	if err != nil {
		return nil, nil, fmtErr("perfsuite", err)
	}
	copt := core.DefaultOptions()
	copt.Params = cfg.Params
	copt.Steps = cfg.Steps
	copt.Stepped = cfg.Stepped
	copt.BlockSize = cfg.BlockSize
	chip, err := core.New(net, m, copt)
	if err != nil {
		return nil, nil, fmtErr("perfsuite", err)
	}
	inputs, err := inputsFor(b, net, cfg)
	if err != nil {
		return nil, nil, fmtErr("perfsuite", err)
	}
	pool := parallel.Clamp(cfg.Workers, len(inputs))
	for _, w := range []struct {
		workers int
		label   string
	}{{1, "serial"}, {pool, "parallel"}} {
		var runErr error
		res := testing.Benchmark(func(tb *testing.B) {
			tb.ReportAllocs()
			for i := 0; i < tb.N; i++ {
				if _, _, err := chip.ClassifyBatch(inputs, cfg.encoders(), sim.Options{Workers: w.workers}); err != nil {
					runErr = err
					tb.FailNow()
				}
			}
		})
		if runErr != nil {
			return nil, nil, fmtErr("perfsuite", runErr)
		}
		entries = append(entries, benchEntry("chip/mnist-mlp/"+w.label, res, len(inputs), w.workers))
	}

	t := report.NewTable("Evaluation pipeline benchmarks",
		"Benchmark", "Workers", "ns/op", "images/sec", "allocs/op", "B/op")
	for _, e := range entries {
		t.Add(e.Name, fmt.Sprintf("%d", e.Workers), fmt.Sprintf("%.0f", e.NsPerOp),
			fmt.Sprintf("%.1f", e.ImagesPerSec), fmt.Sprintf("%d", e.AllocsPerOp),
			fmt.Sprintf("%d", e.BytesPerOp))
	}
	return entries, t, nil
}

// benchEntry converts a testing.BenchmarkResult (one op = one full batch of
// images) into the JSON form.
func benchEntry(name string, r testing.BenchmarkResult, images, workers int) perf.BenchEntry {
	ns := float64(r.NsPerOp())
	ips := 0.0
	if ns > 0 {
		ips = float64(images) / (ns * 1e-9)
	}
	return perf.BenchEntry{
		Name:         name,
		NsPerOp:      ns,
		ImagesPerSec: ips,
		AllocsPerOp:  r.AllocsPerOp(),
		BytesPerOp:   r.AllocedBytesPerOp(),
		Iterations:   r.N,
		Workers:      workers,
	}
}
