package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"resparc/internal/perf"
)

// FAULT_RESULTS.json carrier. Version 1 was the bare FaultsResult the fault
// sweep used to write (no schema_version, no header); version 2 wraps the
// document in a self-describing report — schema version, Go version,
// timestamp and git revision, like BENCH_RESULTS.json — with one section
// per campaign kind, so the one-shot fault sweep and the lifetime campaigns
// share a single results file.
const FaultSchemaVersion = 2

// FaultReport is the top-level FAULT_RESULTS.json document.
type FaultReport struct {
	SchemaVersion int    `json:"schema_version"`
	GoVersion     string `json:"go_version"`
	Timestamp     string `json:"timestamp"`
	GitRevision   string `json:"git_revision,omitempty"`
	// Faults is the one-shot fabrication sweep (-fig faults); Lifetime is
	// the aging campaign (-fig lifetime). Either may be absent.
	Faults   *FaultsResult   `json:"faults,omitempty"`
	Lifetime *LifetimeResult `json:"lifetime,omitempty"`
}

// NewFaultReport stamps an empty report with the schema version and the
// runtime environment.
func NewFaultReport() FaultReport {
	return FaultReport{
		SchemaVersion: FaultSchemaVersion,
		GoVersion:     runtime.Version(),
		Timestamp:     time.Now().UTC().Format(time.RFC3339),
		GitRevision:   perf.GitRevision(),
	}
}

// WriteFaultJSON writes the report as indented JSON.
func WriteFaultJSON(w io.Writer, r FaultReport) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(r); err != nil {
		return fmt.Errorf("experiments: writing fault JSON: %w", err)
	}
	return nil
}

// ReadFaultJSON decodes a report. Version-1 documents — the bare
// FaultsResult with no schema_version field — are accepted and normalized
// into a version-1 report carrying the sweep as its Faults section.
// Versions newer than FaultSchemaVersion are rejected.
func ReadFaultJSON(r io.Reader) (FaultReport, error) {
	blob, err := io.ReadAll(r)
	if err != nil {
		return FaultReport{}, fmt.Errorf("experiments: reading fault JSON: %w", err)
	}
	var rep FaultReport
	if err := json.Unmarshal(blob, &rep); err != nil {
		return FaultReport{}, fmt.Errorf("experiments: reading fault JSON: %w", err)
	}
	if rep.SchemaVersion == 0 {
		var legacy FaultsResult
		if err := json.Unmarshal(blob, &legacy); err != nil || len(legacy.Points) == 0 {
			return FaultReport{}, fmt.Errorf("experiments: fault JSON is neither a v%d report nor a legacy sweep", FaultSchemaVersion)
		}
		return FaultReport{SchemaVersion: 1, Faults: &legacy}, nil
	}
	if rep.SchemaVersion > FaultSchemaVersion {
		return FaultReport{}, fmt.Errorf("experiments: fault JSON schema %d newer than supported %d", rep.SchemaVersion, FaultSchemaVersion)
	}
	return rep, nil
}

// ReadFaultFile loads FAULT_RESULTS.json from disk. A missing file is not an
// error: it returns an empty current-schema report, so callers can merge
// fresh campaigns into whatever history exists.
func ReadFaultFile(path string) (FaultReport, error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return FaultReport{SchemaVersion: FaultSchemaVersion}, nil
	}
	if err != nil {
		return FaultReport{}, fmt.Errorf("experiments: opening %s: %w", path, err)
	}
	defer f.Close()
	return ReadFaultJSON(f)
}

// MergeFaultReports overlays a fresh report onto the existing one,
// header-preservingly: sections the fresh run produced replace or row-merge
// into their predecessors, sections it did not touch survive, and when the
// previous report already carries environment stamps those are kept — so
// re-running a campaign with the same seed over a committed file reproduces
// it byte-identically.
func MergeFaultReports(prev, fresh FaultReport) FaultReport {
	out := fresh
	out.SchemaVersion = FaultSchemaVersion
	out.Faults = mergeFaultsResults(prev.Faults, fresh.Faults)
	out.Lifetime = mergeLifetimeResults(prev.Lifetime, fresh.Lifetime)
	if prev.Timestamp != "" {
		out.Timestamp = prev.Timestamp
		out.GitRevision = prev.GitRevision
		out.GoVersion = prev.GoVersion
	}
	return out
}

// mergeFaultsResults row-merges a fresh sweep into the previous one: points
// with a matching (bench, stuck, age, remap) key are replaced in place, new
// keys append in order, and the sweep parameters come from the fresh run.
func mergeFaultsResults(prev, fresh *FaultsResult) *FaultsResult {
	if fresh == nil {
		return prev
	}
	if prev == nil {
		return fresh
	}
	out := *fresh
	type key struct {
		bench      string
		stuck, age float64
		remap      bool
	}
	keyOf := func(p FaultPoint) key { return key{p.Bench, p.StuckFraction, p.DriftAge, p.Remap} }
	out.Points = append([]FaultPoint(nil), prev.Points...)
	index := make(map[key]int, len(out.Points))
	for i, p := range out.Points {
		index[keyOf(p)] = i
	}
	for _, p := range fresh.Points {
		if i, ok := index[keyOf(p)]; ok {
			out.Points[i] = p
		} else {
			index[keyOf(p)] = len(out.Points)
			out.Points = append(out.Points, p)
		}
	}
	return &out
}

// mergeLifetimeResults row-merges a fresh lifetime campaign into the
// previous one on the (bench, policy, age) key.
func mergeLifetimeResults(prev, fresh *LifetimeResult) *LifetimeResult {
	if fresh == nil {
		return prev
	}
	if prev == nil {
		return fresh
	}
	out := *fresh
	type key struct {
		bench, policy string
		age           float64
	}
	keyOf := func(p LifetimePoint) key { return key{p.Bench, p.Policy, p.Age} }
	out.Points = append([]LifetimePoint(nil), prev.Points...)
	index := make(map[key]int, len(out.Points))
	for i, p := range out.Points {
		index[keyOf(p)] = i
	}
	for _, p := range fresh.Points {
		if i, ok := index[keyOf(p)]; ok {
			out.Points[i] = p
		} else {
			index[keyOf(p)] = len(out.Points)
			out.Points = append(out.Points, p)
		}
	}
	return &out
}
