package experiments

import (
	"fmt"
	"io"

	"resparc/internal/bench"
	"resparc/internal/core"
	"resparc/internal/report"
)

// SweepRow is one (benchmark, MCA size) measurement in long format —
// analysis-friendly raw data behind the Fig 12 panels.
type SweepRow struct {
	Bench       string
	Size        int
	EnergyJ     float64
	LatencyS    float64
	Neuron      float64
	Crossbar    float64
	Peripherals float64
	Utilization float64
	MCAs, NCs   int
}

// SweepSizes simulates every named benchmark at every MCA size and returns
// long-format rows plus a table.
func SweepSizes(cfg Config, names []string, sizes []int) ([]SweepRow, *report.Table, error) {
	t := report.NewTable("MCA size sweep (long format)",
		"Benchmark", "MCA", "Energy (J)", "Latency (s)", "Neuron (J)", "Crossbar (J)", "Peripherals (J)", "Util", "MCAs", "NCs")
	var rows []SweepRow
	for _, name := range names {
		b, err := bench.ByName(name)
		if err != nil {
			return nil, nil, fmtErr("sweep", err)
		}
		for _, size := range sizes {
			res, rep, m, err := RunRESPARC(b, size, cfg, true, 0)
			if err != nil {
				return nil, nil, fmtErr("sweep", err)
			}
			row := SweepRow{
				Bench: name, Size: size,
				EnergyJ: res.Energy, LatencyS: res.Latency,
				Neuron: rep.Energy.Neuron, Crossbar: rep.Energy.Crossbar, Peripherals: rep.Energy.Peripherals,
				Utilization: m.TotalUtilization(), MCAs: m.MCAs, NCs: m.NCs,
			}
			rows = append(rows, row)
			t.Add(name, fmt.Sprintf("%d", size), report.Sci(row.EnergyJ), report.Sci(row.LatencyS),
				report.Sci(row.Neuron), report.Sci(row.Crossbar), report.Sci(row.Peripherals),
				report.Pct(row.Utilization), fmt.Sprintf("%d", row.MCAs), fmt.Sprintf("%d", row.NCs))
		}
	}
	return rows, t, nil
}

// BottleneckRow is one benchmark's latency phase profile.
type BottleneckRow struct {
	Bench      string
	Breakdown  core.CycleBreakdown
	Bottleneck string
}

// Bottlenecks profiles where each benchmark's cycles go — the latency
// roofline across the six Fig 10 networks.
func Bottlenecks(cfg Config, names []string) ([]BottleneckRow, *report.Table, error) {
	t := report.NewTable("Latency bottleneck analysis (cycles by phase)",
		"Benchmark", "Sync", "Bus", "Delivery", "Integrate", "Drain", "Bottleneck")
	var rows []BottleneckRow
	for _, name := range names {
		b, err := bench.ByName(name)
		if err != nil {
			return nil, nil, fmtErr("bottlenecks", err)
		}
		_, rep, _, err := RunRESPARC(b, cfg.MCASize, cfg, true, 0)
		if err != nil {
			return nil, nil, fmtErr("bottlenecks", err)
		}
		row := BottleneckRow{Bench: name, Breakdown: rep.Breakdown, Bottleneck: rep.Breakdown.Bottleneck()}
		rows = append(rows, row)
		bd := rep.Breakdown
		t.Add(name, fmt.Sprintf("%d", bd.Sync), fmt.Sprintf("%d", bd.Bus),
			fmt.Sprintf("%d", bd.Delivery), fmt.Sprintf("%d", bd.Integrate),
			fmt.Sprintf("%d", bd.Drain), row.Bottleneck)
	}
	return rows, t, nil
}

// WriteSweepCSV runs SweepSizes and writes the result as CSV.
func WriteSweepCSV(w io.Writer, cfg Config, names []string, sizes []int) error {
	_, t, err := SweepSizes(cfg, names, sizes)
	if err != nil {
		return err
	}
	return t.RenderCSV(w)
}
