package experiments

import (
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"resparc/internal/bench"
	"resparc/internal/fault"
	"resparc/internal/mapping"
	"resparc/internal/repair"
)

func quickLifetime(t *testing.T, benchNames ...string) LifetimeConfig {
	t.Helper()
	cfg := QuickLifetimeConfig()
	cfg.Workers = 4
	cfg.Benches = nil
	for _, name := range benchNames {
		b, err := bench.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		cfg.Benches = append(cfg.Benches, b)
	}
	return cfg
}

// The campaign is a pure function of the seed: two runs produce byte-identical
// JSON, the no-repair trajectory decays monotonically, and the full policy
// recovers at least as much agreement as refresh alone.
func TestFigLifetimeDeterministicAndRecovers(t *testing.T) {
	if testing.Short() {
		t.Skip("lifetime campaign in -short")
	}
	cfg := quickLifetime(t, "svhn-mlp", "cifar-mlp")
	r1, _, err := FigLifetime(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r2, _, err := FigLifetime(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b1, _ := json.Marshal(r1)
	b2, _ := json.Marshal(r2)
	if !bytes.Equal(b1, b2) {
		t.Fatal("same seed produced different lifetime campaigns")
	}
	measured := 0
	for _, b := range cfg.Benches {
		if !r1.NoRepairMonotone(b.Name) {
			t.Errorf("%s: no-repair agreement not monotone: %+v", b.Name, r1.Points)
		}
		lost, fullFrac, ok := r1.RecoveredAt(b.Name, repair.PolicyFull.String())
		if !ok {
			// A benchmark robust enough to lose nothing by EOL has nothing
			// to recover — fine, as long as some benchmark shows signal.
			t.Logf("%s: no agreement lost by EOL at quick fidelity", b.Name)
			continue
		}
		measured++
		_, refreshFrac, _ := r1.RecoveredAt(b.Name, repair.PolicyRefresh.String())
		t.Logf("%s: lost %.3f, refresh recovers %.0f%%, full recovers %.0f%%",
			b.Name, lost, 100*refreshFrac, 100*fullFrac)
		if fullFrac < refreshFrac {
			t.Errorf("%s: full policy (%.2f) recovers less than refresh alone (%.2f)", b.Name, fullFrac, refreshFrac)
		}
		if fullFrac < 0.8 {
			t.Errorf("%s: full policy recovers only %.0f%% of the lost agreement", b.Name, 100*fullFrac)
		}
	}
	if measured == 0 {
		t.Error("no benchmark lost agreement by EOL — campaign too gentle to measure repair")
	}
}

// With wear disabled and repair off, a deployment aged to the sweep's drift
// age computes bit-identical weights to the one-shot faulted network — the
// lifetime machinery is a strict superset of today's behavior.
func TestNoRepairMatchesOneShotSweep(t *testing.T) {
	b, err := bench.ByName("mnist-mlp")
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultFaultsConfig()
	camp := fault.NewCampaign(cfg.Seed, cfg.Tech)
	camp.DriftSigma = cfg.DriftSigma
	const age = 1e5

	net, err := b.Build(cfg.Seed)
	if err != nil {
		t.Fatal(err)
	}
	m, err := mapping.Map(net, cfg.mapConfig(cfg.MCASize))
	if err != nil {
		t.Fatal(err)
	}
	d, err := repair.NewDeployment(net, m, fault.Lifetime{Camp: camp, EOL: 1e6})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.AdvanceTo(age); err != nil {
		t.Fatal(err)
	}

	net2, err := b.Build(cfg.Seed)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := mapping.Map(net2, cfg.mapConfig(cfg.MCASize))
	if err != nil {
		t.Fatal(err)
	}
	want, err := faultedNetworkOn(net2, m2, camp, age)
	if err != nil {
		t.Fatal(err)
	}
	for li, l := range d.Net.Layers {
		if l.W == nil {
			continue
		}
		for i := range l.W.Data {
			if l.W.Data[i] != want.Layers[li].W.Data[i] {
				t.Fatalf("layer %d weight %d: deployment %v, one-shot sweep %v",
					li, i, l.W.Data[i], want.Layers[li].W.Data[i])
			}
		}
	}
}

// FAULT_RESULTS.json round-trip: v2 reports survive read/write, legacy bare
// sweeps are accepted as version 1, and the merge preserves the previous
// header while row-merging both sections.
func TestFaultReportReadMerge(t *testing.T) {
	legacy := `{"seed":42,"mca_size":64,"steps":48,"samples":40,"drift_sigma":0.1,"max_bad_taps":24,
		"points":[{"bench":"mnist-mlp","stuck_fraction":0,"drift_age":0,"drift_sigma":0,"dead_mpes":0,
		"remap":false,"agreement":1,"faulty":0,"moves":0,"spares_used":0,"degraded":0,
		"residual_bad_taps":0,"est_accuracy_loss":0}]}`
	rep, err := ReadFaultJSON(strings.NewReader(legacy))
	if err != nil {
		t.Fatal(err)
	}
	if rep.SchemaVersion != 1 || rep.Faults == nil || rep.Faults.Seed != 42 || len(rep.Faults.Points) != 1 {
		t.Fatalf("legacy sweep misread: %+v", rep)
	}

	prev := NewFaultReport()
	prev.Timestamp = "2026-01-01T00:00:00Z"
	prev.GitRevision = "abc1234"
	prev.Faults = rep.Faults
	prev.Lifetime = &LifetimeResult{Seed: 42, Points: []LifetimePoint{
		{Bench: "mnist-mlp", Policy: "none", Age: 0, Agreement: 1},
		{Bench: "mnist-mlp", Policy: "none", Age: 1e6, Agreement: 0.8},
	}}

	fresh := NewFaultReport()
	fresh.Lifetime = &LifetimeResult{Seed: 42, Points: []LifetimePoint{
		{Bench: "mnist-mlp", Policy: "none", Age: 1e6, Agreement: 0.75}, // re-measured
		{Bench: "mnist-mlp", Policy: "full", Age: 1e6, Agreement: 0.95}, // new row
	}}
	merged := MergeFaultReports(prev, fresh)
	if merged.Timestamp != prev.Timestamp || merged.GitRevision != prev.GitRevision {
		t.Fatalf("merge lost the previous header: %+v", merged)
	}
	if merged.SchemaVersion != FaultSchemaVersion {
		t.Fatalf("merge kept stale schema version %d", merged.SchemaVersion)
	}
	if !reflect.DeepEqual(merged.Faults, prev.Faults) {
		t.Fatal("untouched faults section changed in merge")
	}
	lp := merged.Lifetime.Points
	if len(lp) != 3 || lp[1].Agreement != 0.75 || lp[2].Policy != "full" {
		t.Fatalf("lifetime rows merged wrong: %+v", lp)
	}

	var buf bytes.Buffer
	if err := WriteFaultJSON(&buf, merged); err != nil {
		t.Fatal(err)
	}
	back, err := ReadFaultJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, merged) {
		t.Fatalf("round trip changed the report:\n%+v\n%+v", back, merged)
	}

	if _, err := ReadFaultJSON(strings.NewReader(`{"schema_version":99}`)); err == nil {
		t.Fatal("future schema accepted")
	}
	if _, err := ReadFaultJSON(strings.NewReader(`{"hello":"world"}`)); err == nil {
		t.Fatal("junk accepted")
	}
}
