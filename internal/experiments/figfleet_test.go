package experiments

import (
	"reflect"
	"strings"
	"testing"
)

// The committed fleet scenario must be reproducible bit-for-bit (that is
// what keeps BENCH_RESULTS.json byte-identical across same-seed reruns) and
// must demonstrate the two fleet policies: interactive SLO attainment at or
// above batch under the burst, and shed-to-CMOS during the fleet-wide
// RESPARC outage.
func TestFigFleetDeterministicAndTiered(t *testing.T) {
	cfg := QuickConfig()
	entries, _, err := FigFleet(cfg)
	if err != nil {
		t.Fatal(err)
	}
	again, _, err := FigFleet(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(entries, again) {
		t.Fatal("same seed produced different fleet entries")
	}
	if len(entries) == 0 {
		t.Fatal("no fleet entries")
	}

	attainment := map[string]map[string]float64{} // model -> tier -> attainment
	for _, e := range entries {
		if !e.IsFleet() {
			t.Fatalf("entry %s has no SLO target", e.Name)
		}
		parts := strings.Split(e.Name, "/")
		if len(parts) != 3 || parts[0] != "fleet" {
			t.Fatalf("entry name %q, want fleet/<model>/<tier>", e.Name)
		}
		if e.Shed == 0 {
			t.Errorf("entry %s shed nothing; the RESPARC outage window should force CMOS traffic", e.Name)
		}
		if attainment[parts[1]] == nil {
			attainment[parts[1]] = map[string]float64{}
		}
		attainment[parts[1]][parts[2]] = e.SLOAttainment
	}
	for model, tiers := range attainment {
		inter, okI := tiers["interactive"]
		batch, okB := tiers["batch"]
		if !okI || !okB {
			t.Fatalf("model %s missing a tier: %v", model, tiers)
		}
		if inter < batch {
			t.Errorf("model %s: interactive attainment %.3f below batch %.3f; the tiered admission should protect interactive", model, inter, batch)
		}
		if inter < 0.9 {
			t.Errorf("model %s: interactive attainment %.3f, want >= 0.9 in the committed scenario", model, inter)
		}
	}
}
