package experiments

import (
	"reflect"
	"testing"

	"resparc/internal/bench"
	"resparc/internal/core"
	"resparc/internal/mapping"
	"resparc/internal/sim"
)

// A greedy placement artifact must realize the exact mapping the legacy
// direct path builds: identical predictions AND identical energy accounting
// on every benchmark. This is the contract that lets resparc-serve and the
// shard pipeline consume artifacts without re-deriving layouts.
func TestGreedyArtifactMatchesDirectPath(t *testing.T) {
	cfg := testConfig()
	cfg.Steps = 8
	for _, b := range bench.All() {
		net, err := b.Build(cfg.Seed)
		if err != nil {
			t.Fatal(err)
		}
		cons := mapping.DefaultConstraints(cfg.mapConfig(cfg.MCASize))
		cons.Steps = 4
		p, err := (mapping.Greedy{}).Plan(net, cons)
		if err != nil {
			t.Fatalf("%s: %v", b.Name, err)
		}
		viaArtifact, err := p.Apply(net)
		if err != nil {
			t.Fatalf("%s: %v", b.Name, err)
		}
		direct, err := mapping.Map(net, cfg.mapConfig(cfg.MCASize))
		if err != nil {
			t.Fatalf("%s: %v", b.Name, err)
		}
		if !reflect.DeepEqual(viaArtifact.Layers, direct.Layers) {
			t.Fatalf("%s: artifact realizes a different layout than the direct path", b.Name)
		}

		inputs, err := inputsFor(b, net, cfg)
		if err != nil {
			t.Fatal(err)
		}
		run := func(m *mapping.Mapping) ([]int, []float64) {
			copt := core.DefaultOptions()
			copt.Params = cfg.Params
			copt.Steps = cfg.Steps
			chip, err := core.New(net, m, copt)
			if err != nil {
				t.Fatalf("%s: %v", b.Name, err)
			}
			ress, reps, err := chip.ClassifyEach(inputs, cfg.encoders(), sim.Options{Workers: 1})
			if err != nil {
				t.Fatalf("%s: %v", b.Name, err)
			}
			preds := make([]int, len(reps))
			energies := make([]float64, len(ress))
			for i := range reps {
				preds[i] = reps[i].Predicted
				energies[i] = ress[i].Energy
			}
			return preds, energies
		}
		gotP, gotE := run(viaArtifact)
		wantP, wantE := run(direct)
		if !reflect.DeepEqual(gotP, wantP) {
			t.Fatalf("%s: predictions via artifact %v != direct %v", b.Name, gotP, wantP)
		}
		if !reflect.DeepEqual(gotE, wantE) {
			t.Fatalf("%s: energies via artifact %v != direct %v", b.Name, gotE, wantE)
		}
	}
}

// FigMapper's rows come in greedy/annealed pairs for every benchmark, carry
// the v5 quality fields, and are deterministic for a fixed seed.
func TestFigMapperShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("anneals six benchmarks")
	}
	cfg := testConfig()
	cfg.Steps = 8
	entries, tab, err := FigMapper(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if tab == nil {
		t.Fatal("no table")
	}
	if want := 2 * len(bench.All()); len(entries) != want {
		t.Fatalf("%d entries, want %d", len(entries), want)
	}
	for _, e := range entries {
		if e.EnergyJ <= 0 || e.Objective <= 0 || e.NsPerOp <= 0 {
			t.Fatalf("degenerate row %+v", e)
		}
	}
}
