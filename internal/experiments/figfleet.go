package experiments

import (
	"fmt"
	"time"

	"resparc/internal/lb"
	"resparc/internal/loadgen"
	"resparc/internal/perf"
	"resparc/internal/report"
)

// FleetScenario is the modeled fleet the `-fig fleet` rows come from: three
// replicas, a bursty diurnal trace, a mid-trace replica outage, and a
// window during which every replica's RESPARC circuits are open (a
// fleet-wide fault campaign) so the shed-to-CMOS policy is exercised. The
// numbers are a pure function of the seed.
type FleetScenario struct {
	Trace loadgen.TraceConfig
	Fleet loadgen.FleetConfig
}

// DefaultFleetScenario builds the committed scenario for the given seed.
//
// Service times are modeled on the committed serve-path measurements
// (eval/mnist-mlp ~5 ms, eval/mnist-cnn ~23 ms per image on the RESPARC
// simulator) with the CMOS baseline ~3x slower, the paper's
// energy/latency ordering between the fabrics. The burst multiplies the
// arrival rate 4x for a tenth of the trace; the batch tier's small
// admission wait budget is what keeps the interactive tier's SLO
// attainment ahead of batch's through it.
func DefaultFleetScenario(seed int64) FleetScenario {
	minute := time.Minute
	return FleetScenario{
		Trace: loadgen.TraceConfig{
			Seed:             seed,
			Duration:         10 * minute,
			BaseRPS:          150,
			DiurnalAmplitude: 0.4,
			DiurnalPeriod:    10 * minute,
			Bursts: []loadgen.Burst{
				{From: 3 * minute, To: 4 * minute, Multiplier: 4},
			},
			Models: []loadgen.ModelMix{
				{Model: "mnist-mlp", Weight: 3},
				{Model: "mnist-cnn", Weight: 1},
			},
			Tenants:       4,
			BatchFraction: 0.4,
		},
		Fleet: loadgen.FleetConfig{
			Replicas: []loadgen.SimReplica{
				// replica-b crashes for a minute; during minute 6-7 a
				// fleet-wide fault campaign opens every RESPARC circuit, so
				// the only way to answer is the CMOS baseline.
				{Name: "replica-a", Slots: 6, OpenFrom: 6 * minute, OpenTo: 7 * minute},
				{Name: "replica-b", Slots: 6, DownFrom: 8 * minute, DownTo: 9 * minute, OpenFrom: 6 * minute, OpenTo: 7 * minute},
				{Name: "replica-c", Slots: 6, OpenFrom: 6 * minute, OpenTo: 7 * minute},
			},
			ServiceMs: map[string]float64{
				"mnist-mlp/resparc": 5,
				"mnist-mlp/cmos":    16,
				"mnist-cnn/resparc": 23,
				"mnist-cnn/cmos":    70,
			},
			JitterFrac: 0.2,
			SLOTargetMs: map[lb.Tier]float64{
				lb.TierInteractive: 150,
				lb.TierBatch:       500,
			},
			MaxWaitMs: map[lb.Tier]float64{
				lb.TierInteractive: 1000,
				lb.TierBatch:       60,
			},
			Seed: seed,
		},
	}
}

// FigFleet runs the fleet scenario and returns one BenchEntry per
// (model, tier) — latency quantiles and SLO attainment under the bursty
// trace with a replica outage and a fleet-wide RESPARC outage. Entries are
// modeled in virtual time (like FigShard's), so the same seed reproduces
// them bit-identically; the live HTTP path is covered by the lb package's
// race-enabled end-to-end tests.
func FigFleet(cfg Config) ([]perf.BenchEntry, *report.Table, error) {
	sc := DefaultFleetScenario(cfg.Seed)
	events, err := loadgen.Generate(sc.Trace)
	if err != nil {
		return nil, nil, fmtErr("fleet", err)
	}
	result, err := loadgen.Simulate(sc.Fleet, events)
	if err != nil {
		return nil, nil, fmtErr("fleet", err)
	}
	t := report.NewTable("Fleet serving under bursty load (modeled)",
		"Model", "Tier", "Offered", "OK", "Shed", "Rejected", "p50 ms", "p99 ms", "p999 ms", "SLO ms", "Attainment")
	var entries []perf.BenchEntry
	for _, s := range result.Summaries {
		entries = append(entries, perf.BenchEntry{
			Name:          fmt.Sprintf("fleet/%s/%s", s.Model, s.Tier),
			NsPerOp:       s.MeanMs * 1e6,
			ImagesPerSec:  rate(s.OK, result.Duration),
			Iterations:    s.Count,
			Workers:       len(sc.Fleet.Replicas),
			P50Ms:         s.P50Ms,
			P99Ms:         s.P99Ms,
			P999Ms:        s.P999Ms,
			SLOTargetMs:   s.SLOTargetMs,
			SLOAttainment: s.Attainment,
			Shed:          int64(s.Shed),
			Errors:        int64(s.Rejected + s.Failed),
		})
		t.Add(s.Model, string(s.Tier),
			fmt.Sprintf("%d", s.Count), fmt.Sprintf("%d", s.OK),
			fmt.Sprintf("%d", s.Shed), fmt.Sprintf("%d", s.Rejected),
			fmt.Sprintf("%.1f", s.P50Ms), fmt.Sprintf("%.1f", s.P99Ms),
			fmt.Sprintf("%.1f", s.P999Ms), fmt.Sprintf("%.0f", s.SLOTargetMs),
			fmt.Sprintf("%.3f", s.Attainment))
	}
	return entries, t, nil
}

// rate converts a served count over a virtual duration to per-second.
func rate(n int, d time.Duration) float64 {
	if d <= 0 {
		return 0
	}
	return float64(n) / d.Seconds()
}
