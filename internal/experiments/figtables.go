package experiments

import (
	"fmt"

	"resparc/internal/bench"
	"resparc/internal/energy"
	"resparc/internal/report"
)

// Fig8 reproduces the RESPARC parameter/metric tables.
func Fig8() (*report.Table, *report.Table) {
	p := energy.DefaultNeuroCellParams()
	m := energy.NeuroCellMetrics()
	t1 := report.NewTable("Fig 8 (left): RESPARC micro-architectural parameters", "Parameter", "Value")
	t1.Add("Architecture", fmt.Sprintf("%d bit", p.ArchitectureBits))
	t1.Add("NC Dimension", fmt.Sprintf("%dx%d", p.NCDim, p.NCDim))
	t1.Add("No. of mPE (Switches)", fmt.Sprintf("%d (%d)", p.MPEs, p.Switches))
	t1.Add("No. of MCAs per mPE", fmt.Sprintf("%d", p.MCAsPerMPE))
	t2 := report.NewTable("Fig 8 (right): RESPARC implementation metrics (one NeuroCell)", "Metric", "Value")
	t2.Add("Feature Size", fmt.Sprintf("%dnm", m.FeatureNM))
	t2.Add("Area", fmt.Sprintf("%.2f mm2", m.AreaMM2))
	t2.Add("Power", fmt.Sprintf("%.1f mW", m.PowerMW))
	t2.Add("Gate Count", fmt.Sprintf("%d", m.GateCount))
	t2.Add("Frequency", fmt.Sprintf("%d MHz", m.FreqMHz))
	return t1, t2
}

// Fig9 reproduces the CMOS baseline parameter/metric tables.
func Fig9() (*report.Table, *report.Table) {
	p := energy.DefaultBaselineParams()
	m := energy.BaselineMetrics()
	t1 := report.NewTable("Fig 9 (left): CMOS baseline micro-architectural parameters", "Parameter", "Value")
	t1.Add("NU count", fmt.Sprintf("%d", p.NeuronUnits))
	t1.Add("FIFO(s): Input (Weight)", fmt.Sprintf("%d (%d)", p.InputFIFOs, p.WeightFIFOs))
	t1.Add("FIFO depth", fmt.Sprintf("%d", p.FIFODepth))
	t1.Add("Width: FIFO (NU)", fmt.Sprintf("%d (%d)", p.FIFOWidth, p.NUWidth))
	t2 := report.NewTable("Fig 9 (right): CMOS baseline implementation metrics", "Metric", "Value")
	t2.Add("Feature Size", fmt.Sprintf("%dnm", m.FeatureNM))
	t2.Add("Area", fmt.Sprintf("%.2f mm2", m.AreaMM2))
	t2.Add("Power", fmt.Sprintf("%.1f mW", m.PowerMW))
	t2.Add("Gate Count", fmt.Sprintf("%d", m.GateCount))
	t2.Add("Frequency", fmt.Sprintf("%d MHz", m.FreqMHz))
	return t1, t2
}

// Fig10Row is one benchmark row with published and reconstructed totals.
type Fig10Row struct {
	Bench             bench.Benchmark
	Layers            int
	Neurons, Synapses int
	NeuronErr, SynErr float64 // relative deviation from the published totals
}

// Fig10 builds every benchmark and tabulates its totals against Fig 10.
func Fig10(cfg Config) ([]Fig10Row, *report.Table, error) {
	t := report.NewTable("Fig 10: SNN benchmarks",
		"Application", "Dataset", "Connectivity", "Layers", "Neurons", "Synapses", "dN", "dS")
	var rows []Fig10Row
	for _, b := range bench.All() {
		net, err := b.Build(cfg.Seed)
		if err != nil {
			return nil, nil, fmtErr("fig10", err)
		}
		r := Fig10Row{
			Bench:    b,
			Layers:   len(net.Layers),
			Neurons:  net.HiddenNeurons(),
			Synapses: net.Synapses(),
		}
		r.NeuronErr = relErr(r.Neurons, b.PubNeurons)
		r.SynErr = relErr(r.Synapses, b.PubSynapses)
		rows = append(rows, r)
		t.Add(b.App, b.Dataset.String(), b.Connectivity,
			fmt.Sprintf("%d", r.Layers), fmt.Sprintf("%d", r.Neurons), fmt.Sprintf("%d", r.Synapses),
			report.Pct(r.NeuronErr), report.Pct(r.SynErr))
	}
	return rows, t, nil
}

func relErr(got, want int) float64 {
	d := float64(got - want)
	if d < 0 {
		d = -d
	}
	return d / float64(want)
}
