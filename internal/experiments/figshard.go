package experiments

import (
	"fmt"

	"resparc/internal/bench"
	"resparc/internal/core"
	"resparc/internal/mapping"
	"resparc/internal/perf"
	"resparc/internal/report"
	"resparc/internal/shard"
	"resparc/internal/sim"
)

// shardBenchmarks are the networks the multi-chip sweep covers: one dense
// benchmark plus both convolutional ones (the deep stacks where pipelining
// across chips actually pays).
var shardBenchmarks = []string{"mnist-mlp", "mnist-cnn", "cifar-cnn"}

// shardCounts are the chip counts compared per benchmark; x1 is the
// single-chip reference the pipeline is measured against.
var shardCounts = []int{1, 4}

// FigShard models multi-chip pipeline throughput: each benchmark is
// partitioned onto 1 and 4 chips and classified over the configured samples,
// recording the modeled initiation interval (the slowest shard stage or
// busiest inter-chip hop). The entries are modeled, not wall-clock — the
// same seed reproduces them bit-identically — so they merge into
// BENCH_RESULTS.json as a stable record of the sharding speedup.
func FigShard(cfg Config) ([]perf.BenchEntry, *report.Table, error) {
	var entries []perf.BenchEntry
	t := report.NewTable("Multi-chip pipeline throughput (modeled)",
		"Benchmark", "Chips", "Interval us", "images/sec", "Link flits", "Speedup")

	for _, name := range shardBenchmarks {
		b, err := bench.ByName(name)
		if err != nil {
			return nil, nil, fmtErr("shard", err)
		}
		net, err := b.Build(cfg.Seed)
		if err != nil {
			return nil, nil, fmtErr("shard", err)
		}
		m, err := mapping.Map(net, cfg.mapConfig(cfg.MCASize))
		if err != nil {
			return nil, nil, fmtErr("shard", err)
		}
		copt := core.DefaultOptions()
		copt.Params = cfg.Params
		copt.Steps = cfg.Steps
		copt.Stepped = cfg.Stepped
		copt.BlockSize = cfg.BlockSize
		chip, err := core.New(net, m, copt)
		if err != nil {
			return nil, nil, fmtErr("shard", err)
		}
		inputs, err := inputsFor(b, net, cfg)
		if err != nil {
			return nil, nil, fmtErr("shard", err)
		}

		base := 0.0
		for _, n := range shardCounts {
			multi, err := shard.New(chip, shard.Config{Shards: n})
			if err != nil {
				return nil, nil, fmtErr("shard", err)
			}
			_, srep, err := multi.ClassifyBatch(inputs, cfg.encoders(), sim.Options{})
			if err != nil {
				return nil, nil, fmtErr("shard", err)
			}
			rep := srep.Detail.(shard.Report)
			ips := rep.ImagesPerSec()
			entries = append(entries, perf.BenchEntry{
				Name:         fmt.Sprintf("shard/%s/x%d", name, len(rep.Ranges)),
				NsPerOp:      rep.Interval * 1e9,
				ImagesPerSec: ips,
				Iterations:   len(inputs),
				Workers:      len(rep.Ranges),
			})
			speedup := "1.00x"
			if n == shardCounts[0] {
				base = ips
			} else if base > 0 {
				speedup = fmt.Sprintf("%.2fx", ips/base)
			}
			t.Add(name, fmt.Sprintf("%d", len(rep.Ranges)),
				fmt.Sprintf("%.2f", rep.Interval*1e6), fmt.Sprintf("%.0f", ips),
				fmt.Sprintf("%d", rep.Link.FlitsSent), speedup)
		}
	}
	return entries, t, nil
}
