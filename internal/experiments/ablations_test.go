package experiments

import "testing"

// §5.3: narrower packets find zero runs more often.
func TestAblationPacketWidth(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep; skipped with -short")
	}
	rows, table, err := AblationPacketWidth(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(PacketWidths) || table == nil {
		t.Fatalf("%d rows", len(rows))
	}
	// Suppression fraction decreases monotonically with width.
	for i := 1; i < len(rows); i++ {
		if rows[i].Suppressed >= rows[i-1].Suppressed {
			t.Errorf("suppression should fall with width: %+v", rows)
		}
	}
	for _, r := range rows {
		if r.Energy <= 0 {
			t.Fatalf("bad energy: %+v", r)
		}
	}
}

// §3.1.1: input sharing improves utilization and cuts arrays and energy.
func TestAblationInputSharing(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep; skipped with -short")
	}
	cfg := testConfig()
	cfg.Steps = 8
	rows, table, err := AblationInputSharing(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 || table == nil {
		t.Fatal("no rows")
	}
	for _, r := range rows {
		if r.SharedMCAs > r.NaiveMCAs {
			t.Errorf("size %d: sharing used more arrays (%d vs %d)", r.Size, r.SharedMCAs, r.NaiveMCAs)
		}
		if r.SharedUtil < r.NaiveUtil {
			t.Errorf("size %d: sharing reduced utilization (%.3f vs %.3f)", r.Size, r.SharedUtil, r.NaiveUtil)
		}
		if r.SharedEnergy >= r.NaiveEnergy {
			t.Errorf("size %d: sharing did not save energy (%.3g vs %.3g)", r.Size, r.SharedEnergy, r.NaiveEnergy)
		}
	}
}

// The switch fabric stays near the ideal bound for spread traffic and
// degrades gracefully on hotspots.
func TestAblationSwitchContention(t *testing.T) {
	rows, table, err := AblationSwitchContention(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 || table == nil {
		t.Fatalf("%d rows", len(rows))
	}
	var neighbor, hotspot ContentionRow
	for _, r := range rows {
		if r.RealCycles < r.IdealCycles {
			t.Errorf("%s: simulated %d beats the ideal bound %d", r.Pattern, r.RealCycles, r.IdealCycles)
		}
		switch r.Pattern {
		case "neighbor":
			neighbor = r
		case "hotspot":
			hotspot = r
		}
	}
	if hotspot.RealCycles <= neighbor.RealCycles {
		t.Errorf("hotspot (%d) should be slower than neighbor traffic (%d)",
			hotspot.RealCycles, neighbor.RealCycles)
	}
	// Spread traffic should be within a small factor of ideal.
	if float64(neighbor.RealCycles) > 4*float64(neighbor.IdealCycles) {
		t.Errorf("neighbor traffic %dx ideal — fabric model broken", neighbor.RealCycles/neighbor.IdealCycles)
	}
}

// Idle-column gating must always save energy, save more at larger sizes
// (lower utilization => more idle cells), and leave the gated crossbar cost
// monotone-decreasing with size.
func TestAblationColumnGating(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep; skipped with -short")
	}
	rows, table, err := AblationColumnGating(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 || table == nil {
		t.Fatalf("%d rows", len(rows))
	}
	prevSaving := -1.0
	for _, r := range rows {
		if r.Gated >= r.Normal {
			t.Errorf("size %d: gating did not save (%.3g vs %.3g)", r.Size, r.Gated, r.Normal)
		}
		saving := 1 - r.Gated/r.Normal
		if saving < prevSaving {
			t.Errorf("savings should grow with size: %v then %v", prevSaving, saving)
		}
		prevSaving = saving
	}
}

// §1's reliability argument end to end: accuracy through perturbed physical
// crossbars degrades. (The deterministic size trend of the raw dot-product
// error is asserted in internal/xbar's TestIRDropGrowsWithSize; the
// end-to-end accuracy ordering between two sizes is too noisy at small test
// sets to assert.)
func TestAblationNonIdealityAccuracy(t *testing.T) {
	if testing.Short() {
		t.Skip("training + physical sim; skipped with -short")
	}
	rows, table, err := AblationNonIdealityAccuracy(300, 40, 60, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || table == nil {
		t.Fatalf("%d rows", len(rows))
	}
	var idealSum, physSum float64
	for _, r := range rows {
		if r.Ideal < 0.5 {
			t.Fatalf("size %d: ideal accuracy %.2f too low to be meaningful", r.Size, r.Ideal)
		}
		if r.Physical > r.Ideal+0.05 {
			t.Errorf("size %d: non-idealities should not help (%.2f vs %.2f)", r.Size, r.Physical, r.Ideal)
		}
		idealSum += r.Ideal
		physSum += r.Physical
	}
	if physSum >= idealSum {
		t.Errorf("non-idealities caused no degradation at all: ideal %v physical %v", idealSum, physSum)
	}
}

// Early exit always costs at most the full run; on live inputs it exits
// well before the budget.
func TestAblationEarlyExit(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep; skipped with -short")
	}
	rows, table, err := AblationEarlyExit(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || table == nil {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if r.EEEnergy > r.FullEnergy || r.EELatency > r.FullLatency {
			t.Errorf("%s: early exit cost more (%.3g/%.3g vs %.3g/%.3g)",
				r.Bench, r.EEEnergy, r.EELatency, r.FullEnergy, r.FullLatency)
		}
		if r.MeanSteps <= 0 {
			t.Errorf("%s: bad mean steps %v", r.Bench, r.MeanSteps)
		}
	}
}
