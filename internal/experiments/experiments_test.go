package experiments

import (
	"strings"
	"testing"

	"resparc/internal/bench"
	"resparc/internal/dataset"
)

// testConfig trades fidelity for speed; the shape assertions below hold at
// this fidelity and at the full DefaultConfig (verified by the benchmark
// harness).
func testConfig() Config {
	c := QuickConfig()
	c.Steps = 16
	return c
}

func TestFig8Tables(t *testing.T) {
	params, metrics := Fig8()
	ps := params.String()
	for _, want := range []string{"64 bit", "4x4", "16 (9)"} {
		if !strings.Contains(ps, want) {
			t.Errorf("Fig8 params missing %q:\n%s", want, ps)
		}
	}
	ms := metrics.String()
	for _, want := range []string{"45nm", "0.29 mm2", "53.2 mW", "67643", "200 MHz"} {
		if !strings.Contains(ms, want) {
			t.Errorf("Fig8 metrics missing %q:\n%s", want, ms)
		}
	}
}

func TestFig9Tables(t *testing.T) {
	params, metrics := Fig9()
	ps := params.String()
	for _, want := range []string{"16 (1)", "32", "4 (4)"} {
		if !strings.Contains(ps, want) {
			t.Errorf("Fig9 params missing %q:\n%s", want, ps)
		}
	}
	ms := metrics.String()
	for _, want := range []string{"0.19 mm2", "35.1 mW", "44798", "1000 MHz"} {
		if !strings.Contains(ms, want) {
			t.Errorf("Fig9 metrics missing %q:\n%s", want, ms)
		}
	}
}

func TestFig10MatchesPublishedTotals(t *testing.T) {
	rows, table, err := Fig10(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if r.Layers != r.Bench.PubLayers {
			t.Errorf("%s: %d layers, published %d", r.Bench.Name, r.Layers, r.Bench.PubLayers)
		}
		if r.NeuronErr > 0.001 {
			t.Errorf("%s: neuron deviation %.4f", r.Bench.Name, r.NeuronErr)
		}
		if r.SynErr > 0.001 {
			t.Errorf("%s: synapse deviation %.4f", r.Bench.Name, r.SynErr)
		}
	}
	if table == nil || len(table.Rows) != 6 {
		t.Fatal("table malformed")
	}
}

// The headline reproduction: Fig 11's energy gains and speedups must land
// in the paper's bands — MLPs around 513x energy / 382x speedup, CNNs
// around 12x / 60x — and the family ordering must hold.
func TestFig11Bands(t *testing.T) {
	if testing.Short() {
		t.Skip("full benchmark sweep; skipped with -short")
	}
	r, err := Fig11(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if r.MLPAvgGain < 250 || r.MLPAvgGain > 900 {
		t.Errorf("MLP avg energy gain %.0fx outside [250,900] (paper: 513x)", r.MLPAvgGain)
	}
	if r.CNNAvgGain < 5 || r.CNNAvgGain > 25 {
		t.Errorf("CNN avg energy gain %.0fx outside [5,25] (paper: 12x)", r.CNNAvgGain)
	}
	if r.MLPAvgSpeedup < 250 || r.MLPAvgSpeedup > 600 {
		t.Errorf("MLP avg speedup %.0fx outside [250,600] (paper: 382x)", r.MLPAvgSpeedup)
	}
	if r.CNNAvgSpeedup < 25 || r.CNNAvgSpeedup > 110 {
		t.Errorf("CNN avg speedup %.0fx outside [25,110] (paper: 60x)", r.CNNAvgSpeedup)
	}
	// RESPARC must win everywhere, and MLPs must benefit far more than CNNs.
	for _, p := range append(append([]Pair{}, r.CNN...), r.MLP...) {
		if p.Compared.EnergyGain <= 1 || p.Compared.Speedup <= 1 {
			t.Errorf("%s: RESPARC does not win: %+v", p.Bench.Name, p.Compared)
		}
	}
	if r.MLPAvgGain < 10*r.CNNAvgGain {
		t.Errorf("MLP gain (%.0fx) should dwarf CNN gain (%.0fx)", r.MLPAvgGain, r.CNNAvgGain)
	}
	if len(r.MLPEnergyCMOS) != 3 || len(r.CNNSpeedup) != 3 {
		t.Fatal("normalized series malformed")
	}
	if len(r.Tables()) != 2 {
		t.Fatal("tables malformed")
	}
	nt := r.NormalizedTables()
	if len(nt) != 4 {
		t.Fatal("normalized tables malformed")
	}
	// The MNIST-on-RESPARC reference normalizes to exactly 1.
	if nt[0].Rows[0][2] != "1.000" || nt[1].Rows[0][2] != "1.000" {
		t.Fatalf("reference not normalized to 1: %v / %v", nt[0].Rows[0], nt[1].Rows[0])
	}
}

// Fig 12's two size trends: MLP energy decreases monotonically with MCA
// size; CNN energy is minimized at 64 (the utilization crossover); and the
// CMOS breakdowns are memory-dominated for MLPs, core-led for CNNs.
func TestFig12Shapes(t *testing.T) {
	if testing.Short() {
		t.Skip("full breakdown sweep; skipped with -short")
	}
	r, err := Fig12(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range []string{"mnist-mlp", "svhn-mlp", "cifar-mlp"} {
		e32, ok1 := r.EnergyOf(r.RESPARCMLP, b, 32)
		e64, ok2 := r.EnergyOf(r.RESPARCMLP, b, 64)
		e128, ok3 := r.EnergyOf(r.RESPARCMLP, b, 128)
		if !ok1 || !ok2 || !ok3 {
			t.Fatalf("%s: missing entries", b)
		}
		if !(e32.Energy.Total() > e64.Energy.Total() && e64.Energy.Total() > e128.Energy.Total()) {
			t.Errorf("%s: MLP energy not decreasing with size: %.3g %.3g %.3g",
				b, e32.Energy.Total(), e64.Energy.Total(), e128.Energy.Total())
		}
	}
	for _, b := range []string{"mnist-cnn", "svhn-cnn", "cifar-cnn"} {
		e32, _ := r.EnergyOf(r.RESPARCCNN, b, 32)
		e64, _ := r.EnergyOf(r.RESPARCCNN, b, 64)
		e128, _ := r.EnergyOf(r.RESPARCCNN, b, 128)
		if !(e64.Energy.Total() < e32.Energy.Total() && e64.Energy.Total() < e128.Energy.Total()) {
			t.Errorf("%s: RESPARC-64 not the CNN optimum: %.3g %.3g %.3g",
				b, e32.Energy.Total(), e64.Energy.Total(), e128.Energy.Total())
		}
		// Utilization falls with size; crossbar energy rises with size.
		if !(e32.Utilization > e64.Utilization && e64.Utilization > e128.Utilization) {
			t.Errorf("%s: utilization not falling: %.3f %.3f %.3f", b, e32.Utilization, e64.Utilization, e128.Utilization)
		}
		if !(e128.Energy.Crossbar > e64.Energy.Crossbar && e64.Energy.Crossbar > e32.Energy.Crossbar) {
			t.Errorf("%s: crossbar energy not rising with size", b)
		}
	}
	// CMOS breakdown shapes.
	for name, e := range r.CMOSMLP {
		mem := e.MemoryAccess + e.MemoryLeakage
		if mem <= e.Core {
			t.Errorf("%s: CMOS MLP not memory-dominated: mem %.3g core %.3g", name, mem, e.Core)
		}
	}
	for name, e := range r.CMOSCNN {
		if !(e.Core > e.MemoryAccess && e.Core > e.MemoryLeakage) {
			t.Errorf("%s: CMOS CNN core not the largest component: %+v", name, e)
		}
	}
	if len(r.Tables()) != 4 {
		t.Fatal("tables malformed")
	}
	if nt := r.NormalizedTables(); len(nt) != 2 || nt[0].Rows[0][5] != "1.000" {
		t.Fatal("normalized tables malformed")
	}
}

// Fig 13: event-drivenness always saves energy and the savings are largest
// on the smallest MCA — the paper's headline conclusion for this figure
// ("RESPARC with its event-drivenness enables using MCAs of smaller
// sizes"). The paper's MLP-vs-CNN savings ordering is NOT asserted: it
// hinges on trained-network activity statistics (trained MNIST MLPs run
// much sparser than our rate-balanced synthetic weights); see
// EXPERIMENTS.md.
func TestFig13Shapes(t *testing.T) {
	if testing.Short() {
		t.Skip("event-driven sweep; skipped with -short")
	}
	r, err := Fig13(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	var mlpRatios, cnnRatios []float64
	for _, size := range Fig12Sizes {
		w, wo, ratio := Savings(r.MLP, size)
		if !(wo > w && w > 0) {
			t.Errorf("MLP %d: without (%.3g) must exceed with (%.3g)", size, wo, w)
		}
		mlpRatios = append(mlpRatios, ratio)
		w, wo, ratio = Savings(r.CNN, size)
		if !(wo > w && w > 0) {
			t.Errorf("CNN %d: without (%.3g) must exceed with (%.3g)", size, wo, w)
		}
		cnnRatios = append(cnnRatios, ratio)
	}
	if !(mlpRatios[0] > mlpRatios[2]) {
		t.Errorf("MLP savings should be largest on the smallest MCA: %v", mlpRatios)
	}
	if !(cnnRatios[0] > cnnRatios[2]) {
		t.Errorf("CNN savings should be largest on the smallest MCA: %v", cnnRatios)
	}
	if len(r.Tables()) != 2 {
		t.Fatal("tables malformed")
	}
}

// Fig 14a: accuracy rises with precision, 4-bit is close to 8-bit (the
// paper's justification for 4-bit crossbars), and the easiest dataset stays
// the most accurate.
func TestFig14aShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("training sweep; skipped with -short")
	}
	cfg := DefaultFig14a()
	cfg.TrainSamples, cfg.TestSamples, cfg.Epochs, cfg.Steps = 350, 60, 7, 60
	rows, table, err := Fig14a(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 || table == nil {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if r.Accuracy[8] < 0.25 {
			t.Errorf("%v: 8-bit accuracy %.2f too low to be meaningful", r.Dataset, r.Accuracy[8])
		}
		if r.Norm[4] < 0.8 {
			t.Errorf("%v: 4-bit accuracy (%.2f of 8-bit) should be comparable to 8-bit", r.Dataset, r.Norm[4])
		}
		if r.Accuracy[1] >= r.Accuracy[8]+0.05 {
			t.Errorf("%v: 1-bit (%v) should not beat 8-bit (%v)", r.Dataset, r.Accuracy[1], r.Accuracy[8])
		}
	}
	// Digits is the easiest task.
	var digits, objects float64
	for _, r := range rows {
		switch r.Dataset {
		case dataset.Digits:
			digits = r.Accuracy[8]
		case dataset.Objects:
			objects = r.Accuracy[8]
		}
	}
	if digits < objects-0.05 {
		t.Errorf("digits (%.2f) should be at least as accurate as objects (%.2f)", digits, objects)
	}
}

// Fig 14b: CMOS energy rises with precision; RESPARC energy is flat.
func TestFig14bShapes(t *testing.T) {
	rows, table, err := Fig14b(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 || table == nil {
		t.Fatalf("%d rows", len(rows))
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].CMOS <= rows[i-1].CMOS {
			t.Errorf("CMOS energy not rising: %v", rows)
		}
		if rows[i].RESPARC != rows[0].RESPARC {
			t.Errorf("RESPARC energy must be precision-independent: %v", rows)
		}
	}
	growth := rows[len(rows)-1].CMOS / rows[0].CMOS
	if growth < 1.5 || growth > 5 {
		t.Errorf("CMOS 1->8 bit growth %.2fx outside the paper's ~2x band", growth)
	}
}

func TestRunPairConsistency(t *testing.T) {
	cfg := testConfig()
	b, err := RunPair(mustBench(t, "mnist-mlp"), cfg.MCASize, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if b.RESPARC.Arch != "resparc" || b.CMOS.Arch != "cmos" {
		t.Fatal("arch labels wrong")
	}
	if b.Compared.EnergyGain != b.CMOS.Energy/b.RESPARC.Energy {
		t.Fatal("comparison inconsistent")
	}
	if b.Mapping == nil || b.Mapping.MCAs == 0 {
		t.Fatal("mapping missing")
	}
}

func mustBench(t *testing.T, name string) bench.Benchmark {
	t.Helper()
	b, err := bench.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// The runtime checklist must produce all-PASS verdicts at test fidelity.
func TestChecklistAllPass(t *testing.T) {
	if testing.Short() {
		t.Skip("full reproduction sweep; skipped with -short")
	}
	verdicts, table, err := Checklist(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(verdicts) < 9 || table == nil {
		t.Fatalf("%d verdicts", len(verdicts))
	}
	for _, v := range verdicts {
		if !v.Pass {
			t.Errorf("%s: %s — measured %s", v.Artifact, v.Claim, v.Measured)
		}
	}
}

// The paper's structural conclusions must survive +-50% perturbation of
// every individual calibration constant.
func TestSensitivityRobust(t *testing.T) {
	if testing.Short() {
		t.Skip("perturbation sweep; skipped with -short")
	}
	cfg := testConfig()
	rows, table, err := Sensitivity(cfg, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 21 || table == nil { // baseline + 10 params x 2 directions
		t.Fatalf("%d rows", len(rows))
	}
	if err := RobustConclusions(rows); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Sensitivity(cfg, 1); err == nil {
		t.Fatal("factor 1 accepted")
	}
}

// The sweep driver must cover the grid and its CSV form must parse back to
// the same row count.
func TestSweepSizes(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep; skipped with -short")
	}
	cfg := testConfig()
	cfg.Steps = 8
	names := []string{"mnist-mlp"}
	sizes := []int{32, 64}
	rows, table, err := SweepSizes(cfg, names, sizes)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || table == nil {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if r.EnergyJ <= 0 || r.LatencyS <= 0 || r.MCAs <= 0 {
			t.Fatalf("bad row %+v", r)
		}
		if total := r.Neuron + r.Crossbar + r.Peripherals; total != r.EnergyJ {
			t.Fatalf("components %.3g don't sum to total %.3g", total, r.EnergyJ)
		}
	}
	var sb strings.Builder
	if err := WriteSweepCSV(&sb, cfg, names, sizes); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 3 { // header + 2 rows
		t.Fatalf("CSV lines: %d\n%s", len(lines), sb.String())
	}
	if _, _, err := SweepSizes(cfg, []string{"nope"}, sizes); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
}

// Each benchmark's cycle phases must sum to its total and identify a
// meaningful bottleneck.
func TestBottlenecks(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep; skipped with -short")
	}
	cfg := testConfig()
	cfg.Steps = 8
	rows, table, err := Bottlenecks(cfg, []string{"mnist-mlp", "mnist-cnn"})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || table == nil {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if r.Breakdown.Total() <= 0 {
			t.Fatalf("%s: empty breakdown", r.Bench)
		}
		if r.Bottleneck == "" {
			t.Fatalf("%s: no bottleneck", r.Bench)
		}
	}
	if _, _, err := Bottlenecks(cfg, []string{"nope"}); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
}
