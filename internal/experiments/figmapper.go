package experiments

import (
	"fmt"

	"resparc/internal/bench"
	"resparc/internal/core"
	"resparc/internal/mapping"
	"resparc/internal/perf"
	"resparc/internal/report"
	"resparc/internal/sim"
)

// FigMapper measures placement quality: every benchmark is planned by both
// the greedy and the annealed mapper, each placement is realized into a real
// chip, and the event-engine evaluation reports measured energy, latency and
// their product (EDP — the figure of merit the annealer's weighted objective
// is a proxy for). Predictions are asserted bit-identical across mappers:
// placement moves energy and time, never functional results. All rows are
// pure functions of the seed.
func FigMapper(cfg Config) ([]perf.BenchEntry, *report.Table, error) {
	var entries []perf.BenchEntry
	t := report.NewTable("Mapping quality (greedy vs annealed)",
		"Benchmark", "Greedy EDP", "Annealed EDP", "Delta", "Energy", "Latency", "Sizes")

	// The annealing budget follows the experiment fidelity: the quick
	// (unit-test) configuration gets short chains, the full run the default.
	iters, chains := 0, 0 // mapper defaults
	if cfg.Steps < DefaultConfig().Steps {
		iters, chains = 80, 2
	}

	for _, b := range bench.All() {
		net, err := b.Build(cfg.Seed)
		if err != nil {
			return nil, nil, fmtErr("mapper", err)
		}
		cons := mapping.DefaultConstraints(cfg.mapConfig(cfg.MCASize))
		cons.Seed = cfg.Seed
		if cfg.Steps < cons.Steps {
			cons.Steps = cfg.Steps
		}
		plans := make(map[string]*mapping.Placement, 2)
		if plans["greedy"], err = (mapping.Greedy{}).Plan(net, cons); err != nil {
			return nil, nil, fmtErr("mapper", err)
		}
		ann := mapping.Annealed{Seed: cfg.Seed, Iters: iters, Chains: chains}
		if plans["annealed"], err = ann.Plan(net, cons); err != nil {
			return nil, nil, fmtErr("mapper", err)
		}

		inputs, err := inputsFor(b, net, cfg)
		if err != nil {
			return nil, nil, fmtErr("mapper", err)
		}
		type outcome struct {
			energy, latency, edp float64
			preds                []int
		}
		run := func(p *mapping.Placement) (outcome, error) {
			m, err := p.Apply(net)
			if err != nil {
				return outcome{}, err
			}
			copt := core.DefaultOptions()
			copt.Params = cfg.Params
			copt.Steps = cfg.Steps
			copt.Stepped = cfg.Stepped
			copt.BlockSize = cfg.BlockSize
			chip, err := core.New(net, m, copt)
			if err != nil {
				return outcome{}, err
			}
			ress, reps, err := chip.ClassifyEach(inputs, cfg.encoders(), sim.Options{Workers: cfg.Workers, EventEngine: true})
			if err != nil {
				return outcome{}, err
			}
			var o outcome
			o.preds = make([]int, len(reps))
			for i, r := range ress {
				o.energy += r.Energy
				o.latency += r.Latency
				o.preds[i] = reps[i].Predicted
			}
			o.energy /= float64(len(ress))
			o.latency /= float64(len(ress))
			o.edp = o.energy * o.latency
			return o, nil
		}

		var got [2]outcome
		for i, name := range []string{"greedy", "annealed"} {
			p := plans[name]
			o, err := run(p)
			if err != nil {
				return nil, nil, fmtErr("mapper", err)
			}
			got[i] = o
			entries = append(entries, perf.BenchEntry{
				Name:       fmt.Sprintf("mapper/%s/%s", b.Name, name),
				NsPerOp:    o.latency * 1e9,
				Iterations: len(inputs),
				EnergyJ:    o.energy,
				Objective:  o.edp,
			})
		}
		for i := range got[0].preds {
			if got[0].preds[i] != got[1].preds[i] {
				return nil, nil, fmtErr("mapper", fmt.Errorf(
					"%s: prediction %d differs across mappers (greedy %d, annealed %d) — placement must not change functional results",
					b.Name, i, got[0].preds[i], got[1].preds[i]))
			}
		}
		t.Add(b.Name,
			report.Sci(got[0].edp), report.Sci(got[1].edp),
			fmt.Sprintf("%+.1f%%", 100*(got[1].edp-got[0].edp)/got[0].edp),
			fmt.Sprintf("%+.1f%%", 100*(got[1].energy-got[0].energy)/got[0].energy),
			fmt.Sprintf("%+.1f%%", 100*(got[1].latency-got[0].latency)/got[0].latency),
			fmt.Sprintf("%v", plans["annealed"].Sizes()))
	}
	return entries, t, nil
}
