package experiments

import (
	"resparc/internal/bench"
	"resparc/internal/perf"
	"resparc/internal/report"
)

// Fig11Result holds the four panels of Fig 11: per-benchmark normalized
// energies and speedups for the CNN and MLP families, plus the raw
// comparisons whose annotations ("15x", "415x", ...) the paper prints above
// the bars.
type Fig11Result struct {
	CNN []Pair // mnist, svhn, cifar
	MLP []Pair

	// Normalized series (paper conventions: energies normalized to
	// MNIST-on-RESPARC within the family; speedups normalized to
	// CIFAR-10-on-CMOS).
	CNNEnergyCMOS, CNNEnergyRESPARC []float64
	MLPEnergyCMOS, MLPEnergyRESPARC []float64
	CNNSpeedup, MLPSpeedup          []float64

	// Family averages quoted in §5.1 / the abstract.
	CNNAvgGain, MLPAvgGain       float64
	CNNAvgSpeedup, MLPAvgSpeedup float64
}

// Fig11 runs the six benchmarks on both architectures at the default MCA
// size (64).
func Fig11(cfg Config) (*Fig11Result, error) {
	res := &Fig11Result{}
	for _, b := range bench.CNNs() {
		p, err := RunPair(b, cfg.MCASize, cfg)
		if err != nil {
			return nil, fmtErr("fig11", err)
		}
		res.CNN = append(res.CNN, p)
	}
	for _, b := range bench.MLPs() {
		p, err := RunPair(b, cfg.MCASize, cfg)
		if err != nil {
			return nil, fmtErr("fig11", err)
		}
		res.MLP = append(res.MLP, p)
	}
	norm := func(pairs []Pair) (eC, eR, sp []float64) {
		ref := pairs[0].RESPARC.Energy // MNIST on RESPARC
		spRef := pairs[len(pairs)-1].CMOS.Latency
		for _, p := range pairs {
			eC = append(eC, p.CMOS.Energy/ref)
			eR = append(eR, p.RESPARC.Energy/ref)
			sp = append(sp, spRef/p.RESPARC.Latency)
		}
		return
	}
	res.CNNEnergyCMOS, res.CNNEnergyRESPARC, res.CNNSpeedup = norm(res.CNN)
	res.MLPEnergyCMOS, res.MLPEnergyRESPARC, res.MLPSpeedup = norm(res.MLP)

	var err error
	if res.CNNAvgGain, err = perf.GeoMean(gains(res.CNN)); err != nil {
		return nil, fmtErr("fig11", err)
	}
	if res.MLPAvgGain, err = perf.GeoMean(gains(res.MLP)); err != nil {
		return nil, fmtErr("fig11", err)
	}
	if res.CNNAvgSpeedup, err = perf.GeoMean(speedups(res.CNN)); err != nil {
		return nil, fmtErr("fig11", err)
	}
	if res.MLPAvgSpeedup, err = perf.GeoMean(speedups(res.MLP)); err != nil {
		return nil, fmtErr("fig11", err)
	}
	return res, nil
}

func gains(pairs []Pair) []float64 {
	out := make([]float64, len(pairs))
	for i, p := range pairs {
		out[i] = p.Compared.EnergyGain
	}
	return out
}

func speedups(pairs []Pair) []float64 {
	out := make([]float64, len(pairs))
	for i, p := range pairs {
		out[i] = p.Compared.Speedup
	}
	return out
}

// NormalizedTables renders the series exactly as the paper's axes plot
// them: panel (a)/(b) energies normalized to MNIST-on-RESPARC within the
// family (the paper draws them on log scales), panels (c)/(d) speedups
// normalized to CIFAR-10-on-CMOS.
func (r *Fig11Result) NormalizedTables() []*report.Table {
	names := func(pairs []Pair) []string {
		out := make([]string, len(pairs))
		for i, p := range pairs {
			out[i] = p.Bench.Name
		}
		return out
	}
	mkE := func(title string, names []string, cmos, resparc []float64) *report.Table {
		t := report.NewTable(title, "Benchmark", "CMOS (norm)", "RESPARC (norm)", "Gain")
		for i := range names {
			t.Add(names[i], report.F(cmos[i]), report.F(resparc[i]), report.Gain(cmos[i]/resparc[i]))
		}
		return t
	}
	mkS := func(title string, names []string, sp []float64) *report.Table {
		t := report.NewTable(title, "Benchmark", "RESPARC speedup (norm to CIFAR-10 CMOS)")
		for i := range names {
			t.Add(names[i], report.F(sp[i]))
		}
		return t
	}
	return []*report.Table{
		mkE("Fig 11(a) normalized: CNN energy (ref = MNIST on RESPARC)", names(r.CNN), r.CNNEnergyCMOS, r.CNNEnergyRESPARC),
		mkE("Fig 11(b) normalized: MLP energy (ref = MNIST on RESPARC)", names(r.MLP), r.MLPEnergyCMOS, r.MLPEnergyRESPARC),
		mkS("Fig 11(c) normalized: CNN speedup", names(r.CNN), r.CNNSpeedup),
		mkS("Fig 11(d) normalized: MLP speedup", names(r.MLP), r.MLPSpeedup),
	}
}

// Tables renders the four panels.
func (r *Fig11Result) Tables() []*report.Table {
	mk := func(title string, pairs []Pair) *report.Table {
		t := report.NewTable(title, "Benchmark", "CMOS E (J)", "RESPARC E (J)", "Energy gain", "Speedup")
		for _, p := range pairs {
			t.Add(p.Bench.Name, report.Sci(p.CMOS.Energy), report.Sci(p.RESPARC.Energy),
				report.Gain(p.Compared.EnergyGain), report.Gain(p.Compared.Speedup))
		}
		return t
	}
	return []*report.Table{
		mk("Fig 11(a,c): CNN benchmarks, energy and speedup (MCA 64)", r.CNN),
		mk("Fig 11(b,d): MLP benchmarks, energy and speedup (MCA 64)", r.MLP),
	}
}
