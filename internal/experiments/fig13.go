package experiments

import (
	"resparc/internal/bench"
	"resparc/internal/perf"
	"resparc/internal/report"
)

// Fig13Entry is one (topology, MCA size, event-drivenness) configuration of
// the MNIST study.
type Fig13Entry struct {
	Bench       bench.Benchmark
	Size        int
	EventDriven bool
	Energy      perf.RESPARCEnergy
	Suppressed  float64 // fraction of packets suppressed by zero-check
}

// Fig13Result holds the MLP panel (a) and the CNN panel (b).
type Fig13Result struct {
	MLP []Fig13Entry
	CNN []Fig13Entry
}

// Fig13 studies event-drivenness on the MNIST benchmarks across MCA sizes
// (the paper reports MNIST and notes similar improvements on the others).
func Fig13(cfg Config) (*Fig13Result, error) {
	res := &Fig13Result{}
	for _, name := range []string{"mnist-mlp", "mnist-cnn"} {
		b, err := bench.ByName(name)
		if err != nil {
			return nil, fmtErr("fig13", err)
		}
		for _, size := range Fig12Sizes {
			for _, ed := range []bool{false, true} {
				_, rep, _, err := RunRESPARC(b, size, cfg, ed, 0)
				if err != nil {
					return nil, fmtErr("fig13", err)
				}
				total := rep.Counts.PacketsDelivered + rep.Counts.PacketsSuppressed
				frac := 0.0
				if total > 0 {
					frac = float64(rep.Counts.PacketsSuppressed) / float64(total)
				}
				e := Fig13Entry{Bench: b, Size: size, EventDriven: ed, Energy: rep.Energy, Suppressed: frac}
				if b.Connectivity == "MLP" {
					res.MLP = append(res.MLP, e)
				} else {
					res.CNN = append(res.CNN, e)
				}
			}
		}
	}
	return res, nil
}

// Savings returns with/without energy for a size, and the ratio.
func Savings(entries []Fig13Entry, size int) (with, without, ratio float64) {
	for _, e := range entries {
		if e.Size != size {
			continue
		}
		if e.EventDriven {
			with = e.Energy.Total()
		} else {
			without = e.Energy.Total()
		}
	}
	if with > 0 {
		ratio = without / with
	}
	return
}

// Tables renders both panels.
func (r *Fig13Result) Tables() []*report.Table {
	mk := func(title string, entries []Fig13Entry) *report.Table {
		t := report.NewTable(title, "MCA", "Mode", "Neuron (J)", "Crossbar (J)", "Peripherals (J)", "Total (J)", "Suppressed")
		for _, e := range entries {
			mode := "w/o"
			if e.EventDriven {
				mode = "w/"
			}
			t.Add(report.F(float64(e.Size)), mode,
				report.Sci(e.Energy.Neuron), report.Sci(e.Energy.Crossbar), report.Sci(e.Energy.Peripherals),
				report.Sci(e.Energy.Total()), report.Pct(e.Suppressed))
		}
		return t
	}
	return []*report.Table{
		mk("Fig 13(a): event-drivenness, MNIST MLP", r.MLP),
		mk("Fig 13(b): event-drivenness, MNIST CNN", r.CNN),
	}
}
