package experiments

import (
	"fmt"

	"resparc/internal/bench"
	"resparc/internal/fault"
	"resparc/internal/mapping"
	"resparc/internal/repair"
	"resparc/internal/report"
)

// Accuracy-over-lifetime campaign (-fig lifetime): every benchmark ages from
// fabrication to end of life under a seeded fault.Lifetime — conductance
// drift growing with the inference count, wear-out stuck-at failures
// accumulating on top of the fabrication defects — and the self-healing
// policies compete on the canary-agreement trajectory. PolicyNone is the
// baseline decay (bit-identical to the one-shot fault sweep's network at
// every age), PolicyRefresh is scheduled program-verify maintenance, and
// PolicyFull climbs the whole repair ladder. Everything is a pure function
// of the seed: same seed, byte-identical rows.

// LifetimeConfig parameterizes the campaign.
type LifetimeConfig struct {
	Config
	// Policies competed at every checkpoint (default: none, refresh, full).
	Policies []repair.Policy
	// Checkpoints are the measurement ages as fractions of EOL, ascending,
	// starting at 0 (the fabrication anchor).
	Checkpoints []float64
	// EOL is the end-of-life inference count; WearFraction the per-device
	// wear-out failure probability by EOL.
	EOL          float64
	WearFraction float64
	// DriftSigma scales the lognormal conductance drift; DriftTau is the
	// inference count where it starts accumulating (fault.Campaign.DriftTau).
	// The committed campaign pushes tau well past the first checkpoint so
	// the checkpoints sample the decay, not the saturated end state.
	DriftSigma float64
	DriftTau   float64
	// SpareMPEs and MaxBadTaps parameterize the repair ladder's remap
	// escalation tier.
	SpareMPEs  int
	MaxBadTaps int
	// Benches overrides the benchmark set (nil: all six Fig 10 networks).
	Benches []bench.Benchmark
}

// DefaultLifetimeConfig is the committed campaign: all six benchmarks aged
// to a million inferences with a 0.2% end-of-life wear-out rate and a drift
// onset (tau) at 30% of EOL, so sigma keeps growing across every checkpoint
// and the no-repair agreement decays monotonically instead of bouncing
// around a saturated broken state.
func DefaultLifetimeConfig() LifetimeConfig {
	c := LifetimeConfig{
		Config:       DefaultConfig(),
		Policies:     []repair.Policy{repair.PolicyNone, repair.PolicyRefresh, repair.PolicyFull},
		Checkpoints:  []float64{0, 0.25, 0.5, 1},
		EOL:          1e6,
		WearFraction: 0.002,
		DriftSigma:   0.12,
		DriftTau:     3e5,
		SpareMPEs:    8,
		MaxBadTaps:   24,
	}
	c.Samples = 40
	return c
}

// QuickLifetimeConfig reduces fidelity for tests and smoke runs (full
// timestep count for the same reason as QuickFaultsConfig).
func QuickLifetimeConfig() LifetimeConfig {
	c := DefaultLifetimeConfig()
	c.Samples = 12
	c.Checkpoints = []float64{0, 1}
	c.Benches = bench.MLPs()
	return c
}

// LifetimePoint is one (benchmark, policy, age) measurement, taken after
// the policy's repair pass at that checkpoint.
type LifetimePoint struct {
	Bench  string  `json:"bench"`
	Policy string  `json:"policy"`
	Age    float64 `json:"age"`
	// Agreement is the canary agreement against the clean quantized
	// reference's predictions.
	Agreement float64 `json:"agreement"`
	// Detection snapshot after the repair pass.
	Scanned    int    `json:"scanned"`
	OutOfTol   int    `json:"out_of_tol"`
	BadTaps    int    `json:"bad_taps"`
	DeadAllocs int    `json:"dead_allocs,omitempty"`
	Severity   string `json:"severity"`
	// Repair activity at this checkpoint.
	Refreshed   int  `json:"refreshed,omitempty"`
	DeltaAllocs int  `json:"delta_allocs,omitempty"`
	Moves       int  `json:"moves,omitempty"`
	Escalated   bool `json:"escalated,omitempty"`
}

// LifetimeResult is the machine-readable campaign output.
type LifetimeResult struct {
	Seed         int64           `json:"seed"`
	MCASize      int             `json:"mca_size"`
	Steps        int             `json:"steps"`
	Samples      int             `json:"samples"`
	EOL          float64         `json:"eol"`
	WearFraction float64         `json:"wear_fraction"`
	DriftSigma   float64         `json:"drift_sigma"`
	DriftTau     float64         `json:"drift_tau,omitempty"`
	MaxBadTaps   int             `json:"max_bad_taps"`
	Points       []LifetimePoint `json:"points"`
}

// point finds one row.
func (r *LifetimeResult) point(benchName, policy string, age float64) *LifetimePoint {
	for i := range r.Points {
		p := &r.Points[i]
		if p.Bench == benchName && p.Policy == policy && p.Age == age {
			return p
		}
	}
	return nil
}

// maxAge returns the campaign's last checkpoint age for a benchmark.
func (r *LifetimeResult) maxAge(benchName string) (float64, bool) {
	found := false
	age := 0.0
	for _, p := range r.Points {
		if p.Bench == benchName && p.Age >= age {
			age, found = p.Age, true
		}
	}
	return age, found
}

// RecoveredAt returns, for one benchmark, the agreement the no-repair
// baseline loses by end of life and the fraction of that loss the given
// policy recovers at the same age. ok is false when the campaign has no
// such rows or nothing was lost.
func (r *LifetimeResult) RecoveredAt(benchName, policy string) (lost, frac float64, ok bool) {
	eol, found := r.maxAge(benchName)
	if !found {
		return 0, 0, false
	}
	base := r.point(benchName, repair.PolicyNone.String(), 0)
	worn := r.point(benchName, repair.PolicyNone.String(), eol)
	healed := r.point(benchName, policy, eol)
	if base == nil || worn == nil || healed == nil {
		return 0, 0, false
	}
	lost = base.Agreement - worn.Agreement
	if lost <= 0 {
		return 0, 0, false
	}
	return lost, (healed.Agreement - worn.Agreement) / lost, true
}

// NoRepairMonotone reports whether the benchmark's no-repair agreement
// trajectory is non-increasing — the decay the monotone wear model and
// stable per-epoch drift directions guarantee in weight space should show
// up in accuracy too.
func (r *LifetimeResult) NoRepairMonotone(benchName string) bool {
	prev := -1.0
	first := true
	for _, p := range r.Points { // rows are appended in checkpoint order
		if p.Bench != benchName || p.Policy != repair.PolicyNone.String() {
			continue
		}
		if !first && p.Agreement > prev {
			return false
		}
		prev, first = p.Agreement, false
	}
	return !first
}

// FigLifetime runs the campaign.
func FigLifetime(cfg LifetimeConfig) (*LifetimeResult, *report.Table, error) {
	benches := cfg.Benches
	if benches == nil {
		benches = bench.All()
	}
	if len(cfg.Checkpoints) == 0 || cfg.Checkpoints[0] != 0 {
		return nil, nil, fmtErr("lifetime", fmt.Errorf("checkpoints must start at 0"))
	}
	res := &LifetimeResult{
		Seed:         cfg.Seed,
		MCASize:      cfg.MCASize,
		Steps:        cfg.Steps,
		Samples:      cfg.Samples,
		EOL:          cfg.EOL,
		WearFraction: cfg.WearFraction,
		DriftSigma:   cfg.DriftSigma,
		DriftTau:     cfg.DriftTau,
		MaxBadTaps:   cfg.MaxBadTaps,
	}
	for _, b := range benches {
		if err := runLifetimeBench(b, cfg, res); err != nil {
			return nil, nil, fmtErr("lifetime", err)
		}
	}
	t := report.NewTable("Accuracy over lifetime (agreement vs clean quantized reference)",
		"Benchmark", "Policy", "Age", "Agreement", "Severity", "Bad taps", "Refreshed", "Delta", "Moves")
	for _, p := range res.Points {
		t.Add(p.Bench, p.Policy, fmt.Sprintf("%g", p.Age),
			fmt.Sprintf("%.3f", p.Agreement), p.Severity, fmt.Sprintf("%d", p.BadTaps),
			fmt.Sprintf("%d", p.Refreshed), fmt.Sprintf("%d", p.DeltaAllocs), fmt.Sprintf("%d", p.Moves))
	}
	return res, t, nil
}

func runLifetimeBench(b bench.Benchmark, cfg LifetimeConfig, res *LifetimeResult) error {
	rcfg := repair.DefaultConfig()
	rcfg.Detect.Workers = cfg.Workers
	rcfg.SpareMPEs = cfg.SpareMPEs
	rcfg.MaxBadTaps = cfg.MaxBadTaps
	for _, pol := range cfg.Policies {
		// Fresh network, mapping and deployment per policy: repair mutates
		// weights and placements in place.
		net, err := b.Build(cfg.Seed)
		if err != nil {
			return err
		}
		m, err := mapping.Map(net, cfg.mapConfig(cfg.MCASize))
		if err != nil {
			return err
		}
		camp := fault.NewCampaign(cfg.Seed, cfg.Tech)
		camp.DriftSigma = cfg.DriftSigma
		camp.DriftTau = cfg.DriftTau
		lt := fault.Lifetime{Camp: camp, EOL: cfg.EOL, WearFraction: cfg.WearFraction}
		d, err := repair.NewDeployment(net, m, lt)
		if err != nil {
			return err
		}
		inputs, err := inputsFor(b, net, cfg.Config)
		if err != nil {
			return err
		}
		dt, err := repair.NewDetector(d, rcfg.Detect, inputs, cfg.encoders(), cfg.Steps)
		if err != nil {
			return err
		}
		for _, f := range cfg.Checkpoints {
			age := f * cfg.EOL
			if err := d.AdvanceTo(age); err != nil {
				return err
			}
			out, err := repair.RunOnce(d, dt, pol, rcfg)
			if err != nil {
				return err
			}
			res.Points = append(res.Points, LifetimePoint{
				Bench:       b.Name,
				Policy:      pol.String(),
				Age:         age,
				Agreement:   out.After.Agreement,
				Scanned:     out.After.Scanned,
				OutOfTol:    out.After.OutOfTol,
				BadTaps:     out.After.BadTaps,
				DeadAllocs:  out.After.DeadAllocs,
				Severity:    out.After.Severity.String(),
				Refreshed:   out.Refreshed,
				DeltaAllocs: out.DeltaAllocs,
				Moves:       out.Moves,
				Escalated:   out.Escalated,
			})
		}
	}
	return nil
}
