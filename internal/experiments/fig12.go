package experiments

import (
	"resparc/internal/bench"
	"resparc/internal/perf"
	"resparc/internal/report"
)

// Fig12Sizes are the MCA sizes swept by Fig 12 (RESPARC-32/64/128).
var Fig12Sizes = []int{32, 64, 128}

// Fig12Entry is one benchmark at one MCA size.
type Fig12Entry struct {
	Bench       bench.Benchmark
	Size        int
	Energy      perf.RESPARCEnergy
	Utilization float64
	MCAs        int
}

// Fig12Result holds the four panels: the RESPARC breakdowns across MCA
// sizes for MLPs (a) and CNNs (c), and the CMOS breakdowns for MLPs (b) and
// CNNs (d).
type Fig12Result struct {
	RESPARCMLP []Fig12Entry // index = benchmark*len(sizes)+size
	RESPARCCNN []Fig12Entry
	CMOSMLP    map[string]perf.CMOSEnergy
	CMOSCNN    map[string]perf.CMOSEnergy
}

// Fig12 runs the breakdown sweep.
func Fig12(cfg Config) (*Fig12Result, error) {
	res := &Fig12Result{CMOSMLP: map[string]perf.CMOSEnergy{}, CMOSCNN: map[string]perf.CMOSEnergy{}}
	run := func(fams []bench.Benchmark, out *[]Fig12Entry, cmos map[string]perf.CMOSEnergy) error {
		for _, b := range fams {
			for _, size := range Fig12Sizes {
				r, rep, m, err := RunRESPARC(b, size, cfg, true, 0)
				if err != nil {
					return err
				}
				_ = r
				*out = append(*out, Fig12Entry{
					Bench: b, Size: size, Energy: rep.Energy,
					Utilization: m.TotalUtilization(), MCAs: m.MCAs,
				})
			}
			// CMOS breakdown once per benchmark (no MCA dependence).
			p, err := RunPair(b, cfg.MCASize, cfg)
			if err != nil {
				return err
			}
			cmos[b.Name] = p.CRep.Energy
		}
		return nil
	}
	if err := run(bench.MLPs(), &res.RESPARCMLP, res.CMOSMLP); err != nil {
		return nil, fmtErr("fig12", err)
	}
	if err := run(bench.CNNs(), &res.RESPARCCNN, res.CMOSCNN); err != nil {
		return nil, fmtErr("fig12", err)
	}
	return res, nil
}

// EnergyOf returns the RESPARC total for a benchmark/size pair.
func (r *Fig12Result) EnergyOf(entries []Fig12Entry, name string, size int) (Fig12Entry, bool) {
	for _, e := range entries {
		if e.Bench.Name == name && e.Size == size {
			return e, true
		}
	}
	return Fig12Entry{}, false
}

// NormalizedTables renders the RESPARC panels the way the paper's y-axes
// plot them: every entry normalized to the family's first configuration
// (MNIST at MCA 32).
func (r *Fig12Result) NormalizedTables() []*report.Table {
	mk := func(title string, entries []Fig12Entry) *report.Table {
		t := report.NewTable(title, "Benchmark", "MCA", "Neuron", "Crossbar", "Peripherals", "Total")
		if len(entries) == 0 {
			return t
		}
		ref := entries[0].Energy.Total()
		for _, e := range entries {
			t.Add(e.Bench.Name, report.F(float64(e.Size)),
				report.F(e.Energy.Neuron/ref), report.F(e.Energy.Crossbar/ref),
				report.F(e.Energy.Peripherals/ref), report.F(e.Energy.Total()/ref))
		}
		return t
	}
	return []*report.Table{
		mk("Fig 12(a) normalized: RESPARC MLP energy (ref = first row)", r.RESPARCMLP),
		mk("Fig 12(c) normalized: RESPARC CNN energy (ref = first row)", r.RESPARCCNN),
	}
}

// Tables renders the four panels.
func (r *Fig12Result) Tables() []*report.Table {
	mkR := func(title string, entries []Fig12Entry) *report.Table {
		t := report.NewTable(title, "Benchmark", "MCA", "Neuron (J)", "Crossbar (J)", "Peripherals (J)", "Total (J)", "Util", "MCAs")
		for _, e := range entries {
			t.Add(e.Bench.Name, report.F(float64(e.Size)),
				report.Sci(e.Energy.Neuron), report.Sci(e.Energy.Crossbar), report.Sci(e.Energy.Peripherals),
				report.Sci(e.Energy.Total()), report.Pct(e.Utilization), report.F(float64(e.MCAs)))
		}
		return t
	}
	mkC := func(title string, fams []bench.Benchmark, m map[string]perf.CMOSEnergy) *report.Table {
		t := report.NewTable(title, "Benchmark", "Core (J)", "Mem Access (J)", "Mem Leakage (J)", "Total (J)")
		for _, b := range fams {
			e := m[b.Name]
			t.Add(b.Name, report.Sci(e.Core), report.Sci(e.MemoryAccess), report.Sci(e.MemoryLeakage), report.Sci(e.Total()))
		}
		return t
	}
	return []*report.Table{
		mkR("Fig 12(a): RESPARC energy breakdown, MLPs", r.RESPARCMLP),
		mkC("Fig 12(b): CMOS energy breakdown, MLPs", bench.MLPs(), r.CMOSMLP),
		mkR("Fig 12(c): RESPARC energy breakdown, CNNs", r.RESPARCCNN),
		mkC("Fig 12(d): CMOS energy breakdown, CNNs", bench.CNNs(), r.CMOSCNN),
	}
}
