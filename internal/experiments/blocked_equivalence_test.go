package experiments

import (
	"reflect"
	"testing"

	"resparc/internal/bench"
)

// The blocked layer-major runner must be a pure performance change: on every
// Fig 10 benchmark, both architecture simulators must produce the same
// predictions, the same energy/latency results and bit-identical event
// counters whether the functional simulation runs step-major or blocked.
func TestBlockedMatchesSteppedOnFig10Benchmarks(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every Fig 10 benchmark twice")
	}
	cfg := testConfig()
	stepped := cfg
	stepped.Stepped = true
	for _, b := range bench.All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			bp, err := RunPair(b, cfg.MCASize, cfg)
			if err != nil {
				t.Fatal(err)
			}
			sp, err := RunPair(b, cfg.MCASize, stepped)
			if err != nil {
				t.Fatal(err)
			}
			if bp.RRep.Predicted != sp.RRep.Predicted {
				t.Errorf("RESPARC prediction %d (blocked) vs %d (stepped)",
					bp.RRep.Predicted, sp.RRep.Predicted)
			}
			if bp.CRep.Predicted != sp.CRep.Predicted {
				t.Errorf("CMOS prediction %d (blocked) vs %d (stepped)",
					bp.CRep.Predicted, sp.CRep.Predicted)
			}
			if !reflect.DeepEqual(bp.RRep.Counts, sp.RRep.Counts) {
				t.Errorf("RESPARC counters diverge:\nblocked %+v\nstepped %+v",
					bp.RRep.Counts, sp.RRep.Counts)
			}
			if !reflect.DeepEqual(bp.CRep.Counts, sp.CRep.Counts) {
				t.Errorf("CMOS counters diverge:\nblocked %+v\nstepped %+v",
					bp.CRep.Counts, sp.CRep.Counts)
			}
			if bp.RESPARC.Energy != sp.RESPARC.Energy || bp.RESPARC.Latency != sp.RESPARC.Latency {
				t.Errorf("RESPARC result diverges: %+v vs %+v", bp.RESPARC, sp.RESPARC)
			}
			if bp.CMOS.Energy != sp.CMOS.Energy || bp.CMOS.Latency != sp.CMOS.Latency {
				t.Errorf("CMOS result diverges: %+v vs %+v", bp.CMOS, sp.CMOS)
			}
		})
	}
}
