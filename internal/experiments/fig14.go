package experiments

import (
	"math/rand"

	"resparc/internal/ann"
	"resparc/internal/bench"
	"resparc/internal/cmosbase"
	"resparc/internal/core"
	"resparc/internal/dataset"
	"resparc/internal/energy"
	"resparc/internal/mapping"
	"resparc/internal/quant"
	"resparc/internal/report"
	"resparc/internal/snn"
)

// Fig14Bits is the precision sweep of Fig 14 (1, 2, 4, 8 bits).
var Fig14Bits = []int{1, 2, 4, 8}

// Fig14aConfig controls the accuracy experiment's training workload.
type Fig14aConfig struct {
	TrainSamples int
	TestSamples  int
	Hidden       []int
	Epochs       int
	LR           float64
	Steps        int // SNN evaluation timesteps
	Seed         int64
}

// DefaultFig14a returns a configuration that trains in seconds per dataset.
func DefaultFig14a() Fig14aConfig {
	return Fig14aConfig{TrainSamples: 500, TestSamples: 100, Hidden: []int{64}, Epochs: 10, LR: 0.01, Steps: 100, Seed: 1}
}

// Fig14aRow is one dataset's accuracy across precisions, normalized to the
// 8-bit accuracy (the paper plots normalized accuracy).
type Fig14aRow struct {
	Dataset  dataset.Kind
	Accuracy map[int]float64 // bits -> raw SNN accuracy
	Norm     map[int]float64 // bits -> accuracy / accuracy(8)
}

// Fig14a trains one network per dataset family, converts it to an SNN, and
// measures classification accuracy at each weight precision.
func Fig14a(cfg Fig14aConfig) ([]Fig14aRow, *report.Table, error) {
	var rows []Fig14aRow
	t := report.NewTable("Fig 14(a): normalized accuracy vs weight bit-discretization",
		"Dataset", "1-bit", "2-bit", "4-bit", "8-bit", "raw 8-bit acc")
	for _, kind := range []dataset.Kind{dataset.Digits, dataset.StreetDigits, dataset.Objects} {
		train := dataset.Generate(kind, cfg.TrainSamples, cfg.Seed+int64(kind)*13)
		test := dataset.Generate(kind, cfg.TestSamples, cfg.Seed+int64(kind)*13+1)
		rng := rand.New(rand.NewSource(cfg.Seed + int64(kind)))
		mlp := ann.NewMLP(train.Shape.Size(), cfg.Hidden, train.Classes, rng)
		tc := ann.DefaultTrainConfig()
		tc.Epochs = cfg.Epochs
		if cfg.LR > 0 {
			tc.LR = cfg.LR
		}
		tc.Seed = cfg.Seed
		mlp.Train(train, tc)
		calib, _ := train.Split(min(80, cfg.TrainSamples))
		net, err := snn.FromANN(kind.String(), mlp, calib)
		if err != nil {
			return nil, nil, fmtErr("fig14a", err)
		}
		row := Fig14aRow{Dataset: kind, Accuracy: map[int]float64{}, Norm: map[int]float64{}}
		for _, bits := range Fig14Bits {
			qnet, err := quant.QuantizeNetwork(net, bits)
			if err != nil {
				return nil, nil, fmtErr("fig14a", err)
			}
			row.Accuracy[bits] = snn.Evaluate(qnet, test, snn.NewPoissonEncoder(0.9, cfg.Seed+5), cfg.Steps)
		}
		ref := row.Accuracy[8]
		if ref == 0 {
			ref = 1e-9
		}
		for _, bits := range Fig14Bits {
			row.Norm[bits] = row.Accuracy[bits] / ref
		}
		rows = append(rows, row)
		t.Add(kind.String(),
			report.F(row.Norm[1]), report.F(row.Norm[2]), report.F(row.Norm[4]), report.F(row.Norm[8]),
			report.Pct(row.Accuracy[8]))
	}
	return rows, t, nil
}

// Fig14bRow is the normalized energy of both architectures at one
// precision, plus RESPARC's area overhead (§5.4: the precision cost shows
// up in area, not energy).
type Fig14bRow struct {
	Bits          int
	CMOS, RESPARC float64 // joules
	NormC, NormR  float64 // normalized to the 1-bit CMOS energy
	AreaOverhead  float64 // RESPARC chip area relative to 4-bit
}

// Fig14b sweeps weight precision on the MNIST MLP benchmark: the CMOS
// baseline's memory and core grow with precision while RESPARC's crossbars
// store multi-bit weights in the same cells (§5.4).
func Fig14b(cfg Config) ([]Fig14bRow, *report.Table, error) {
	b, err := bench.ByName("mnist-mlp")
	if err != nil {
		return nil, nil, fmtErr("fig14b", err)
	}
	net, err := b.Build(cfg.Seed)
	if err != nil {
		return nil, nil, fmtErr("fig14b", err)
	}
	inputs, err := inputsFor(b, net, cfg)
	if err != nil {
		return nil, nil, fmtErr("fig14b", err)
	}
	// RESPARC energy does not depend on stored precision (same cells, same
	// events); simulate once.
	mc := cfg.mapConfig(cfg.MCASize)
	m, err := mapping.Map(net, mc)
	if err != nil {
		return nil, nil, fmtErr("fig14b", err)
	}
	copt := core.DefaultOptions()
	copt.Params = cfg.Params
	copt.Steps = cfg.Steps
	chip, err := core.New(net, m, copt)
	if err != nil {
		return nil, nil, fmtErr("fig14b", err)
	}
	rRes, _, err := chip.ClassifyBatch(inputs, cfg.encoders(), cfg.simOptions())
	if err != nil {
		return nil, nil, fmtErr("fig14b", err)
	}

	var rows []Fig14bRow
	for _, bits := range Fig14Bits {
		bopt := cmosbase.DefaultOptions()
		bopt.Params = cfg.Params
		bopt.Steps = cfg.Steps
		bopt.Bits = bits
		base, err := cmosbase.New(net, bopt)
		if err != nil {
			return nil, nil, fmtErr("fig14b", err)
		}
		cRes, _, err := base.ClassifyBatch(inputs, cfg.encoders(), cfg.simOptions())
		if err != nil {
			return nil, nil, fmtErr("fig14b", err)
		}
		area := energy.DefaultAreaParams()
		rows = append(rows, Fig14bRow{
			Bits: bits, CMOS: cRes.Energy, RESPARC: rRes.Energy,
			AreaOverhead: area.AreaOverheadVsBits(m.NCs, m.MCAs, cfg.MCASize, bits),
		})
	}
	ref := rows[0].CMOS
	t := report.NewTable("Fig 14(b): normalized energy vs weight bit-discretization (MNIST MLP)",
		"Bits", "CMOS (norm)", "RESPARC (norm)", "RESPARC area (vs 4-bit)")
	for i := range rows {
		rows[i].NormC = rows[i].CMOS / ref
		rows[i].NormR = rows[i].RESPARC / ref
		t.Add(report.F(float64(rows[i].Bits)), report.F(rows[i].NormC), report.F(rows[i].NormR),
			report.F(rows[i].AreaOverhead))
	}
	return rows, t, nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
