package experiments

import (
	"bytes"
	"encoding/json"
	"testing"

	"resparc/internal/bench"
)

// The acceptance property of the robustness PR: at the Ag-Si default stuck
// fraction, the fault-aware remapping pass recovers at least half of the
// accuracy lost to the campaign on at least one benchmark. svhn-mlp is the
// benchmark where the campaign's dead mPEs land on decision-critical
// allocations, so the recovery is large and stable under the pinned seed.
func TestFigFaultsRemapRecovery(t *testing.T) {
	cfg := QuickFaultsConfig()
	cfg.Benches = []bench.Benchmark{bench.MLPs()[1]} // svhn-mlp
	r, _, err := FigFaults(cfg)
	if err != nil {
		t.Fatal(err)
	}
	lost, frac, ok := r.Recovered("svhn-mlp", 0.002, 0)
	if !ok {
		t.Fatal("no (remap off, remap on) pair at the acceptance operating point")
	}
	if lost <= 0 {
		t.Fatalf("campaign cost no accuracy (lost %.3f): the sweep is blind", lost)
	}
	if frac < 0.5 {
		t.Fatalf("remapping recovered %.3f of the %.3f lost accuracy, want >= 0.5", frac, lost)
	}
	// The remap actually moved the dead allocations somewhere.
	for _, p := range r.Points {
		if p.Remap && p.StuckFraction == 0.002 && p.DriftAge == 0 {
			if p.Moves == 0 {
				t.Fatal("remap-on point performed no moves")
			}
			if p.DeadMPEs == 0 {
				t.Fatal("campaign killed no mPEs")
			}
		}
	}
}

// Same seed, byte-identical JSON — the reproducibility half of the
// acceptance criterion, at the unit level (the CLI writes exactly this
// marshalling).
func TestFigFaultsDeterministicJSON(t *testing.T) {
	cfg := QuickFaultsConfig()
	cfg.Seed = 42
	cfg.Samples = 6
	cfg.Benches = []bench.Benchmark{bench.MLPs()[0]}
	run := func() []byte {
		r, _, err := FigFaults(cfg)
		if err != nil {
			t.Fatal(err)
		}
		blob, err := json.MarshalIndent(r, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		return blob
	}
	a, b := run(), run()
	if !bytes.Equal(a, b) {
		t.Fatal("same seed produced different JSON")
	}
	// A different seed must actually change the campaign.
	cfg.Seed = 43
	if bytes.Equal(a, run()) {
		t.Fatal("different seed produced identical JSON")
	}
}
