// Package experiments regenerates every table and figure of the paper's
// evaluation (§4-§5): the implementation-parameter tables (Figs 8-9), the
// benchmark table (Fig 10), the energy/speedup comparison (Fig 11), the
// energy breakdowns across MCA sizes (Fig 12), the event-drivenness study
// (Fig 13) and the bit-discretization study (Fig 14).
//
// Every driver takes a Config so tests can run reduced workloads and the
// resparc-bench CLI can run the full configuration.
package experiments

import (
	"fmt"

	"resparc/internal/bench"
	"resparc/internal/cmosbase"
	"resparc/internal/core"
	"resparc/internal/dataset"
	"resparc/internal/device"
	"resparc/internal/energy"
	"resparc/internal/mapping"
	"resparc/internal/perf"
	"resparc/internal/sim"
	"resparc/internal/snn"
	"resparc/internal/tensor"
)

// Config controls workload size and simulation fidelity.
type Config struct {
	// Seed drives every PRNG in the experiment.
	Seed int64
	// Steps is the number of SNN timesteps per classification.
	Steps int
	// Samples is the number of dataset images averaged per measurement.
	Samples int
	// MaxProb is the Poisson encoder's peak spike probability.
	MaxProb float64
	// MCASize is the default crossbar dimension (Fig 11 uses 64).
	MCASize int
	// Workers is the evaluation worker-pool size; <= 0 selects one worker
	// per CPU. Results are bit-identical for any value (see
	// internal/parallel).
	Workers int
	// Params is the energy/timing calibration.
	Params energy.Params
	// Stepped forces the step-major functional runner in every simulator
	// instead of the default blocked layer-major one. Results are
	// bit-identical either way (see snn.RunBlocked); the toggle exists for
	// performance comparison and as an escape hatch.
	Stepped bool
	// BlockSize overrides the blocked runner's temporal block length
	// (<= 0 selects snn.DefaultBlockSize). Ignored when Stepped is set.
	BlockSize int
	// Batch is the batch-major group size: each driver's image batch is cut
	// into contiguous groups of up to Batch images integrated together by
	// one network instance (<= 1: per-image evaluation). Results are
	// bit-identical either way (see snn.BatchState); the knob trades state
	// footprint for weight-traffic amortization. Ignored when Stepped is
	// set.
	Batch int
	// Tech is the memristive technology (must allow the largest swept MCA).
	Tech device.Technology
}

// DefaultConfig is the paper's evaluation configuration.
func DefaultConfig() Config {
	return Config{
		Seed:    1,
		Steps:   48,
		Samples: 3,
		MaxProb: 0.8,
		MCASize: 64,
		Params:  energy.Default45nm(),
		Tech:    device.AgSi,
	}
}

// quick reduces fidelity for the unit-test path without changing shape
// outcomes; exported via QuickConfig for tests and smoke runs.
func QuickConfig() Config {
	c := DefaultConfig()
	c.Steps = 12
	c.Samples = 1
	return c
}

// inputsFor draws Samples images of the benchmark's dataset adapted to the
// network input shape.
func inputsFor(b bench.Benchmark, net *snn.Network, cfg Config) ([]tensor.Vec, error) {
	set := dataset.Generate(b.Dataset, cfg.Samples, cfg.Seed+100)
	out := make([]tensor.Vec, len(set.Samples))
	for i, s := range set.Samples {
		in, err := bench.PrepareInput(s.Input, set.Shape, net.Input)
		if err != nil {
			return nil, err
		}
		out[i] = bench.NormalizeIntensity(in)
	}
	return out, nil
}

// encoders returns the per-sample encoder factory shared by every driver:
// sample i's spike stream is the base Poisson encoder forked by image
// index, so batch results are reproducible and independent of the worker
// count.
func (c Config) encoders() func(sample int) snn.Encoder {
	base := snn.NewPoissonEncoder(c.MaxProb, c.Seed+7)
	return func(i int) snn.Encoder { return base.ForkSeed(i) }
}

// simOptions translates the experiment configuration to the shared batch
// options of the sim.Backend entry points. Stepped/BlockSize are baked into
// each backend at construction; the worker count and batch-major group size
// are per-call.
func (c Config) simOptions() sim.Options {
	return sim.Options{Workers: c.Workers, Batch: c.Batch}
}

// Pair is one benchmark evaluated on both architectures.
type Pair struct {
	Bench    bench.Benchmark
	RESPARC  perf.Result
	RRep     core.Report
	CMOS     perf.Result
	CRep     cmosbase.Report
	Mapping  *mapping.Mapping
	Compared perf.Comparison
}

// mapConfig builds the mapping configuration for a crossbar size.
func (c Config) mapConfig(size int) mapping.Config {
	mc := mapping.DefaultConfig()
	mc.MCASize = size
	mc.Tech = c.Tech
	return mc
}

// RunPair simulates one benchmark on RESPARC (at the given MCA size) and on
// the CMOS baseline, averaging over the configured samples.
func RunPair(b bench.Benchmark, size int, cfg Config) (Pair, error) {
	net, err := b.Build(cfg.Seed)
	if err != nil {
		return Pair{}, err
	}
	return runPairOn(net, b, size, cfg)
}

func runPairOn(net *snn.Network, b bench.Benchmark, size int, cfg Config) (Pair, error) {
	m, err := mapping.Map(net, cfg.mapConfig(size))
	if err != nil {
		return Pair{}, err
	}
	copt := core.DefaultOptions()
	copt.Params = cfg.Params
	copt.Steps = cfg.Steps
	copt.Stepped = cfg.Stepped
	copt.BlockSize = cfg.BlockSize
	chip, err := core.New(net, m, copt)
	if err != nil {
		return Pair{}, err
	}
	inputs, err := inputsFor(b, net, cfg)
	if err != nil {
		return Pair{}, err
	}
	rRes, rSRep, err := chip.ClassifyBatch(inputs, cfg.encoders(), cfg.simOptions())
	if err != nil {
		return Pair{}, err
	}
	rRep := rSRep.Detail.(core.Report)

	bopt := cmosbase.DefaultOptions()
	bopt.Params = cfg.Params
	bopt.Steps = cfg.Steps
	bopt.Stepped = cfg.Stepped
	bopt.BlockSize = cfg.BlockSize
	base, err := cmosbase.New(net, bopt)
	if err != nil {
		return Pair{}, err
	}
	cRes, cSRep, err := base.ClassifyBatch(inputs, cfg.encoders(), cfg.simOptions())
	if err != nil {
		return Pair{}, err
	}
	cRep := cSRep.Detail.(cmosbase.Report)
	cmp, err := perf.Compare(rRes, cRes)
	if err != nil {
		return Pair{}, err
	}
	return Pair{Bench: b, RESPARC: rRes, RRep: rRep, CMOS: cRes, CRep: cRep, Mapping: m, Compared: cmp}, nil
}

// RunRESPARC simulates only the RESPARC side (used by the sweeps that do
// not need the baseline re-run per configuration).
func RunRESPARC(b bench.Benchmark, size int, cfg Config, eventDriven bool, packetWidth int) (perf.Result, core.Report, *mapping.Mapping, error) {
	net, err := b.Build(cfg.Seed)
	if err != nil {
		return perf.Result{}, core.Report{}, nil, err
	}
	m, err := mapping.Map(net, cfg.mapConfig(size))
	if err != nil {
		return perf.Result{}, core.Report{}, nil, err
	}
	copt := core.DefaultOptions()
	copt.Params = cfg.Params
	copt.Steps = cfg.Steps
	copt.Stepped = cfg.Stepped
	copt.BlockSize = cfg.BlockSize
	copt.EventDriven = eventDriven
	if packetWidth > 0 {
		copt.PacketWidth = packetWidth
	}
	chip, err := core.New(net, m, copt)
	if err != nil {
		return perf.Result{}, core.Report{}, nil, err
	}
	inputs, err := inputsFor(b, net, cfg)
	if err != nil {
		return perf.Result{}, core.Report{}, nil, err
	}
	res, srep, err := chip.ClassifyBatch(inputs, cfg.encoders(), cfg.simOptions())
	if err != nil {
		return perf.Result{}, core.Report{}, nil, err
	}
	return res, srep.Detail.(core.Report), m, nil
}

func fmtErr(fig string, err error) error { return fmt.Errorf("experiments: %s: %w", fig, err) }
