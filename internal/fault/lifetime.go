package fault

import (
	"fmt"
	"math"
	"math/rand"
)

// Lifetime extends a fabrication Campaign with in-service aging: wear-out
// stuck-at failures that accumulate over the deployment's inference count,
// on top of the campaign's fabrication defects and its drift model
// (DriftSigmaAt already grows with elapsed inferences).
//
// Determinism contract: like the Campaign it wraps, every wear failure is a
// pure function of (campaign seed, physical slot) — each failing device's
// identity, rail and birth age come from a dedicated per-slot sub-seed
// stream, so the same seed reproduces the same aging history everywhere.
// The failure set is monotone in age: a device stuck at age a is stuck at
// every age ≥ a, which is what makes a no-repair accuracy trajectory decay
// monotonically instead of re-rolling its faults at every checkpoint.
type Lifetime struct {
	// Camp supplies fabrication defects, the drift model and the seed.
	Camp Campaign
	// EOL is the end-of-life inference count: wear-out failures are spread
	// uniformly over (0, EOL].
	EOL float64
	// WearFraction is the per-device probability of a wear-out stuck-at
	// failure by EOL.
	WearFraction float64
}

// streamWear keys the wear-out failure draws; streamEpoch mixes a refresh
// epoch into the drift stream so a program-verify refresh restarts drift
// with fresh (but still seeded) per-device directions.
const (
	streamWear  uint64 = 0xd6e8feb86659fd93
	streamEpoch uint64 = 0xa5a3568c1fb3a27d
)

// Validate rejects physically meaningless lifetime parameters.
func (lt Lifetime) Validate() error {
	if lt.WearFraction < 0 || lt.WearFraction >= 1 {
		return fmt.Errorf("fault: wear fraction %v outside [0, 1)", lt.WearFraction)
	}
	if lt.WearFraction > 0 && lt.EOL <= 0 {
		return fmt.Errorf("fault: wear fraction %v needs a positive EOL", lt.WearFraction)
	}
	return nil
}

// WearCell is one wear-out failure: the device, the rail it fails to, and
// the inference count at which it fails.
type WearCell struct {
	StuckCell
	Birth float64
}

// WearSchedule returns the slot's complete wear-out failure schedule — every
// device that fails by EOL, in the same canonical order as
// Campaign.StuckCells (positive plane row-major, then negative), each with
// its birth age. Like StuckCells it walks the device sequence with geometric
// skips, so cost is proportional to the failure count, not the array size.
func (lt Lifetime) WearSchedule(id SlotID, rows, cols int) []WearCell {
	p := lt.WearFraction
	if p <= 0 || lt.EOL <= 0 || rows <= 0 || cols <= 0 {
		return nil
	}
	n := 2 * rows * cols
	rng := lt.Camp.slotRng(streamWear, id)
	var out []WearCell
	logq := math.Log1p(-p)
	for i := -1; ; {
		gap := int(math.Log1p(-rng.Float64()) / logq)
		if gap < 0 { // overflow guard for U ~ 1
			break
		}
		i += 1 + gap
		if i >= n {
			break
		}
		// Fixed draw order per failing device: rail first, then birth age.
		cell := lt.Camp.stuckAt(i, rows, cols, rng)
		out = append(out, WearCell{StuckCell: cell, Birth: rng.Float64() * lt.EOL})
	}
	return out
}

// WearCells returns the wear-out failures already born at the given age, in
// canonical order. Monotone: the result at age a is a prefix-filtered subset
// of the result at any age ≥ a.
func (lt Lifetime) WearCells(id SlotID, rows, cols int, age float64) []StuckCell {
	sched := lt.WearSchedule(id, rows, cols)
	var out []StuckCell
	for _, w := range sched {
		if w.Birth <= age {
			out = append(out, w.StuckCell)
		}
	}
	return out
}

// CellMapAt materializes the slot's full per-device fault map at the given
// age: wear-out failures born by then, overlaid by fabrication defects
// (which take precedence on the rare device carrying both).
func (lt Lifetime) CellMapAt(id SlotID, rows, cols int, age float64) *CellMap {
	m := NewCellMap(rows, cols)
	for _, s := range lt.WearCells(id, rows, cols, age) {
		m.Set(s.R, s.C, s.Plane, s.State)
	}
	for _, s := range lt.Camp.StuckCells(id, rows, cols) {
		m.Set(s.R, s.C, s.Plane, s.State)
	}
	return m
}

// DriftRngEpoch returns the slot's drift stream for the given refresh
// epoch. Epoch 0 is identical to DriftRng — existing one-shot campaigns are
// unchanged — and each program-verify refresh of a slot advances its epoch,
// giving the re-programmed devices a fresh deterministic drift direction.
func (c Campaign) DriftRngEpoch(id SlotID, epoch int) *rand.Rand {
	stream := streamDrift
	if epoch != 0 {
		stream ^= splitmix64(streamEpoch ^ uint64(epoch))
	}
	return c.slotRng(stream, id)
}
