package fault

import (
	"testing"
)

func testLifetime(seed int64) Lifetime {
	return Lifetime{
		Camp:         Campaign{Seed: seed, StuckFraction: 0.002, StuckHighShare: 0.5, DriftSigma: 0.1},
		EOL:          1e6,
		WearFraction: 0.01,
	}
}

// Same seed must reproduce the exact same wear schedule; a different seed
// must produce a different one.
func TestWearScheduleDeterministic(t *testing.T) {
	lt := testLifetime(7)
	id := SlotID{MPE: 3, Slot: 1}
	a := lt.WearSchedule(id, 64, 64)
	b := lt.WearSchedule(id, 64, 64)
	if len(a) == 0 {
		t.Fatal("expected wear failures at 1% of 8192 devices")
	}
	if len(a) != len(b) {
		t.Fatalf("schedule lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("schedule entry %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
	other := testLifetime(8).WearSchedule(id, 64, 64)
	same := len(other) == len(a)
	if same {
		for i := range a {
			if a[i] != other[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical wear schedules")
	}
}

// The failure set must be monotone in age: every cell stuck at age a is
// stuck at every age >= a, and the count grows toward the full schedule.
func TestWearCellsMonotone(t *testing.T) {
	lt := testLifetime(42)
	id := SlotID{MPE: 0, Slot: 2}
	ages := []float64{0, 1e4, 1e5, 5e5, 1e6}
	var prev map[StuckCell]bool
	prevCount := -1
	for _, age := range ages {
		cells := lt.WearCells(id, 64, 64, age)
		if len(cells) < prevCount {
			t.Fatalf("failure count shrank at age %g: %d -> %d", age, prevCount, len(cells))
		}
		cur := make(map[StuckCell]bool, len(cells))
		for _, s := range cells {
			cur[s] = true
		}
		for s := range prev {
			if !cur[s] {
				t.Fatalf("cell %+v healed between ages (at %g)", s, age)
			}
		}
		prev, prevCount = cur, len(cells)
	}
	full := lt.WearSchedule(id, 64, 64)
	if prevCount != len(full) {
		t.Fatalf("at EOL %d cells stuck, schedule has %d", prevCount, len(full))
	}
	if lt.WearCells(id, 64, 64, 0) != nil {
		t.Fatal("cells stuck at age 0: births must be positive")
	}
}

// CellMapAt must overlay wear on fabrication with fabrication precedence,
// and equal the fabrication-only CellMap at age 0.
func TestCellMapAt(t *testing.T) {
	lt := testLifetime(11)
	id := SlotID{MPE: 1, Slot: 0}
	fab := lt.Camp.CellMap(id, 64, 64)
	at0 := lt.CellMapAt(id, 64, 64, 0)
	if !fab.Equal(at0) {
		t.Fatal("age-0 cell map differs from fabrication map")
	}
	eol := lt.CellMapAt(id, 64, 64, lt.EOL)
	if eol.StuckCount() < fab.StuckCount() {
		t.Fatal("EOL map has fewer stuck devices than fabrication")
	}
	// Every fabrication defect keeps its state at EOL (precedence).
	for _, s := range lt.Camp.StuckCells(id, 64, 64) {
		if got := eol.At(s.R, s.C, s.Plane); got != s.State {
			t.Fatalf("fabrication defect %+v overridden to %v at EOL", s, got)
		}
	}
}

// Epoch 0 must be bit-compatible with the original drift stream (existing
// campaigns are unchanged); later epochs must differ from it and from each
// other, while remaining deterministic.
func TestDriftRngEpoch(t *testing.T) {
	c := Campaign{Seed: 5, DriftSigma: 0.1}
	id := SlotID{MPE: 2, Slot: 3}
	draw := func(rng interface{ NormFloat64() float64 }) [4]float64 {
		var out [4]float64
		for i := range out {
			out[i] = rng.NormFloat64()
		}
		return out
	}
	if draw(c.DriftRngEpoch(id, 0)) != draw(c.DriftRng(id)) {
		t.Fatal("epoch 0 drift stream differs from DriftRng")
	}
	e1, e1b := draw(c.DriftRngEpoch(id, 1)), draw(c.DriftRngEpoch(id, 1))
	if e1 != e1b {
		t.Fatal("epoch 1 drift stream not deterministic")
	}
	if e1 == draw(c.DriftRng(id)) || e1 == draw(c.DriftRngEpoch(id, 2)) {
		t.Fatal("refresh epochs must decorrelate the drift stream")
	}
}

func TestLifetimeValidate(t *testing.T) {
	if err := (Lifetime{WearFraction: -0.1}).Validate(); err == nil {
		t.Fatal("negative wear fraction accepted")
	}
	if err := (Lifetime{WearFraction: 0.5}).Validate(); err == nil {
		t.Fatal("wear without EOL accepted")
	}
	if err := testLifetime(1).Validate(); err != nil {
		t.Fatal(err)
	}
}
