package fault

import (
	"math"
	"testing"

	"resparc/internal/device"
	"resparc/internal/quant"
)

// Same campaign seed must reproduce the exact same fault population: the
// determinism contract mirrors snn.PoissonEncoder.ForkSeed (same seed =>
// identical fault map => identical inference results).
func TestStuckCellsDeterministic(t *testing.T) {
	a := NewCampaign(42, device.AgSi)
	b := NewCampaign(42, device.AgSi)
	id := SlotID{MPE: 7, Slot: 2}
	ca, cb := a.StuckCells(id, 64, 64), b.StuckCells(id, 64, 64)
	if len(ca) == 0 {
		t.Fatalf("expected faults at stuck fraction %g on a 64x64 array", a.StuckFraction)
	}
	if len(ca) != len(cb) {
		t.Fatalf("fault counts differ: %d vs %d", len(ca), len(cb))
	}
	for i := range ca {
		if ca[i] != cb[i] {
			t.Fatalf("cell %d differs: %+v vs %+v", i, ca[i], cb[i])
		}
	}
	// A different seed or a different slot must (overwhelmingly) give a
	// different population.
	if same(ca, NewCampaign(43, device.AgSi).StuckCells(id, 64, 64)) {
		t.Fatal("different seeds produced identical fault maps")
	}
	if same(ca, a.StuckCells(SlotID{MPE: 7, Slot: 3}, 64, 64)) {
		t.Fatal("different slots produced identical fault maps")
	}
}

func same(a, b []StuckCell) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// The dense materialization must agree cell-for-cell with the sparse walk.
func TestCellMapMatchesStuckCells(t *testing.T) {
	c := NewCampaign(9, device.PCM)
	id := SlotID{MPE: 1, Slot: 0}
	m := c.CellMap(id, 32, 48)
	cells := c.StuckCells(id, 32, 48)
	if m.StuckCount() != len(cells) {
		t.Fatalf("StuckCount %d != len(StuckCells) %d", m.StuckCount(), len(cells))
	}
	for _, s := range cells {
		if got := m.At(s.R, s.C, s.Plane); got != s.State {
			t.Fatalf("cell (%d,%d,%v): map says %v, walk says %v", s.R, s.C, s.Plane, got, s.State)
		}
	}
}

// The geometric-skip sampler must hit the configured defect rate: average
// over many slots and check the empirical fraction.
func TestStuckFractionCalibrated(t *testing.T) {
	c := Campaign{Seed: 5, StuckFraction: 0.01, StuckHighShare: 0.5}
	total, devices := 0, 0
	for mpe := 0; mpe < 50; mpe++ {
		total += len(c.StuckCells(SlotID{MPE: mpe}, 64, 64))
		devices += 2 * 64 * 64
	}
	got := float64(total) / float64(devices)
	if math.Abs(got-0.01) > 0.002 {
		t.Fatalf("empirical stuck fraction %.4f, want ~0.01", got)
	}
}

func TestStuckCellsEdgeCases(t *testing.T) {
	if got := (Campaign{Seed: 1}).StuckCells(SlotID{}, 64, 64); got != nil {
		t.Fatalf("zero stuck fraction produced %d faults", len(got))
	}
	all := Campaign{Seed: 1, StuckFraction: 1}.StuckCells(SlotID{}, 4, 4)
	if len(all) != 2*4*4 {
		t.Fatalf("stuck fraction 1 produced %d faults, want %d", len(all), 2*4*4)
	}
}

func TestKillSwitches(t *testing.T) {
	c := Campaign{
		DeadMPEs:  []int{3},
		DeadSlots: []SlotID{{MPE: 5, Slot: 1}},
		DeadLinks: []int{8},
	}
	if !c.MPEDead(3) || c.MPEDead(4) {
		t.Fatal("MPEDead wrong")
	}
	if !c.SlotDead(SlotID{MPE: 3, Slot: 0}) {
		t.Fatal("slots of a dead mPE must be dead")
	}
	if !c.SlotDead(SlotID{MPE: 5, Slot: 1}) || c.SlotDead(SlotID{MPE: 5, Slot: 0}) {
		t.Fatal("SlotDead wrong")
	}
	if !c.LinkDead(8) || c.LinkDead(7) {
		t.Fatal("LinkDead wrong")
	}
}

func TestDriftSigmaGrowsWithAge(t *testing.T) {
	c := Campaign{DriftSigma: 0.1, DriftTau: 1e3}
	if got := c.DriftSigmaAt(0); got != 0 {
		t.Fatalf("sigma at age 0 = %g, want 0", got)
	}
	early, late := c.DriftSigmaAt(1e3), c.DriftSigmaAt(1e6)
	if !(early > 0 && late > early) {
		t.Fatalf("drift sigma must grow with age: %g then %g", early, late)
	}
	// One decade past tau adds one DriftSigma (log10 growth).
	if diff := c.DriftSigmaAt(1e5) - c.DriftSigmaAt(1e4); math.Abs(diff-0.1) > 0.02 {
		t.Fatalf("per-decade growth %g, want ~DriftSigma", diff)
	}
}

func TestEffectiveWeight(t *testing.T) {
	m, err := quant.NewMapper(device.AgSi, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	// Healthy, no drift: readback equals the quantized target.
	if got, want := EffectiveWeight(m, 0.5, DeviceOK, DeviceOK, 1, 1), m.Weight(m.Map(0.5)); got != want {
		t.Fatalf("healthy readback %g, want quantized %g", got, want)
	}
	// Stuck-high positive device on a zero weight reads strongly positive.
	if got := EffectiveWeight(m, 0, StuckHigh, DeviceOK, 1, 1); got < 0.9 {
		t.Fatalf("stuck-high G+ on zero weight reads %g, want ~WMax", got)
	}
	// Stuck-low positive device kills a positive weight.
	if got := EffectiveWeight(m, 0.8, StuckLow, DeviceOK, 1, 1); math.Abs(got) > 0.05 {
		t.Fatalf("stuck-low G+ on w=0.8 reads %g, want ~0", got)
	}
	// Drift factors move the readback but clamping keeps it in range.
	if got := EffectiveWeight(m, 1.0, DeviceOK, DeviceOK, 100, 1); got > 1.0+1e-9 {
		t.Fatalf("drifted readback %g escaped the conductance range", got)
	}
}

func TestDriftStreamsIndependentAndDeterministic(t *testing.T) {
	c := Campaign{Seed: 11, DriftSigma: 0.05}
	id := SlotID{MPE: 2, Slot: 1}
	a, b := c.DriftRng(id), c.DriftRng(id)
	for i := 0; i < 16; i++ {
		fa, fb := DriftFactor(a, 0.05), DriftFactor(b, 0.05)
		if fa != fb {
			t.Fatalf("drift stream not reproducible at draw %d: %g vs %g", i, fa, fb)
		}
		if fa <= 0 {
			t.Fatalf("drift factor must be positive, got %g", fa)
		}
	}
	// Drift and write streams for the same slot must differ.
	if c.DriftRng(id).Float64() == c.WriteRng(id).Float64() {
		t.Fatal("drift and write streams coincide")
	}
}
