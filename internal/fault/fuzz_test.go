package fault

import (
	"bytes"
	"testing"

	"resparc/internal/device"
)

// FuzzFaultMap exercises the serialized fault-map decoder with arbitrary
// bytes: it must never panic, and any input it accepts must re-marshal to a
// map equal to itself (canonical round trip).
func FuzzFaultMap(f *testing.F) {
	c := NewCampaign(1, device.AgSi)
	for _, m := range []*CellMap{
		NewCellMap(0, 0),
		NewCellMap(4, 4),
		c.CellMap(SlotID{MPE: 0, Slot: 0}, 64, 64),
		c.CellMap(SlotID{MPE: 3, Slot: 2}, 128, 16),
	} {
		data, err := m.MarshalBinary()
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
	}
	f.Add([]byte("FMAP"))
	f.Add([]byte("FMAP\x01\x02\x02\x04\x00"))
	f.Fuzz(func(t *testing.T, data []byte) {
		var m CellMap
		if err := m.UnmarshalBinary(data); err != nil {
			return
		}
		out, err := m.MarshalBinary()
		if err != nil {
			t.Fatalf("re-marshal of accepted input failed: %v", err)
		}
		var m2 CellMap
		if err := m2.UnmarshalBinary(out); err != nil {
			t.Fatalf("canonical form did not decode: %v", err)
		}
		if !m2.Equal(&m) {
			t.Fatal("round trip changed the map")
		}
		// Accepted inputs must already be canonical (maximal runs), so the
		// decoder/encoder pair is a bijection on the accepted set.
		if !bytes.Equal(out, data) {
			// Non-canonical but valid encodings (split runs) are fine to
			// accept; just require idempotence from here on.
			out2, _ := m2.MarshalBinary()
			if !bytes.Equal(out, out2) {
				t.Fatal("marshal not idempotent")
			}
		}
	})
}
