// Package fault defines deterministic, seeded fault campaigns for the
// memristive substrate: per-device stuck-at maps, lognormal conductance
// drift as a function of elapsed inferences, failed programming pulses, and
// whole-crossbar / whole-mPE / NoC-link kill switches.
//
// Real MCAs fail silently — fabrication defects pin devices to a rail,
// conductances drift between refresh cycles, and write pulses miss their
// target level (§2 of the paper cites these as the non-idealities that cap
// reliable crossbar size). A Campaign makes those failures reproducible:
// every fault is a pure function of (campaign seed, physical slot), never of
// evaluation order, so the same seed produces the same fault map and the
// same inference results — the same determinism contract as
// snn.PoissonEncoder.ForkSeed. Simulators consume campaigns through explicit
// hooks (xbar.Crossbar.SetFaults, mpe.MCASlot.SetDead, core.Chip.SetFaults,
// neurocell.SwitchNet.KillSwitch) rather than ad-hoc rng calls.
package fault

import (
	"fmt"
	"math"
	"math/rand"

	"resparc/internal/device"
	"resparc/internal/quant"
)

// DeviceState is the health of one memristive device.
type DeviceState uint8

const (
	// DeviceOK devices program normally.
	DeviceOK DeviceState = iota
	// StuckLow devices are pinned at GMin (open defects, failed forming).
	StuckLow
	// StuckHigh devices are pinned at GMax (shorted cross-points).
	StuckHigh
)

func (s DeviceState) String() string {
	switch s {
	case DeviceOK:
		return "ok"
	case StuckLow:
		return "stuck-low"
	case StuckHigh:
		return "stuck-high"
	default:
		return fmt.Sprintf("DeviceState(%d)", uint8(s))
	}
}

// Plane selects a device column of the differential pair.
type Plane uint8

const (
	// Pos is the positive device plane (G+).
	Pos Plane = iota
	// Neg is the negative device plane (G-).
	Neg
)

// SlotID names one physical crossbar slot on the chip: the mPE index and
// the MCA slot within it. Faults attach to physical slots, not to logical
// MCA allocations — remapping moves an allocation to a different slot,
// which is exactly how it escapes a fault.
type SlotID struct {
	MPE  int
	Slot int
}

func (s SlotID) String() string { return fmt.Sprintf("mpe%d.slot%d", s.MPE, s.Slot) }

// StuckCell is one faulty device of a slot's crossbar.
type StuckCell struct {
	R, C  int
	Plane Plane
	State DeviceState // StuckLow or StuckHigh
}

// Campaign is one deterministic fault scenario. The zero value is the
// fault-free campaign; NewCampaign fills the technology defaults.
type Campaign struct {
	// Seed keys every fault draw. Same seed, same faults — everywhere.
	Seed int64
	// StuckFraction is the per-device probability of a stuck-at defect.
	StuckFraction float64
	// StuckHighShare is the fraction of stuck devices pinned at GMax
	// (the remainder sit at GMin). NewCampaign sets 0.5.
	StuckHighShare float64
	// FailedWriteProb is the probability that one programming pulse fails
	// to move its device (consumed by the xbar program-verify loop).
	FailedWriteProb float64
	// DriftSigma scales the lognormal conductance drift; the effective
	// sigma grows with elapsed inferences, see DriftSigmaAt.
	DriftSigma float64
	// DriftTau is the inference count over which drift accumulates one
	// DriftSigma decade (<= 0 selects 1e3).
	DriftTau float64
	// DeadMPEs lists whole-mPE kill switches (power gating failure, local
	// control unit dead): every slot of the mPE is unusable.
	DeadMPEs []int
	// DeadSlots lists whole-crossbar kill switches.
	DeadSlots []SlotID
	// DeadLinks lists killed NoC switch ids (neurocell.SwitchNet
	// coordinates): packets routed through them are lost.
	DeadLinks []int
}

// NewCampaign returns a campaign with the technology's fabrication defect
// rate, an even stuck-high/stuck-low split and a small failed-write rate.
func NewCampaign(seed int64, tech device.Technology) Campaign {
	return Campaign{
		Seed:            seed,
		StuckFraction:   tech.StuckFraction,
		StuckHighShare:  0.5,
		FailedWriteProb: 0.02,
	}
}

// MPEDead reports whether the whole mPE is killed.
func (c Campaign) MPEDead(mpe int) bool {
	for _, d := range c.DeadMPEs {
		if d == mpe {
			return true
		}
	}
	return false
}

// SlotDead reports whether the slot is killed, directly or via its mPE.
func (c Campaign) SlotDead(id SlotID) bool {
	if c.MPEDead(id.MPE) {
		return true
	}
	for _, d := range c.DeadSlots {
		if d == id {
			return true
		}
	}
	return false
}

// LinkDead reports whether the NoC switch is killed.
func (c Campaign) LinkDead(sw int) bool {
	for _, d := range c.DeadLinks {
		if d == sw {
			return true
		}
	}
	return false
}

// Independent sub-seed streams: each (purpose, slot) pair owns its own rng,
// so drawing from one never perturbs another — the property that makes the
// sparse StuckCells walk and the dense CellMap materialization agree.
const (
	streamStuck uint64 = 0x9e3779b97f4a7c15
	streamDrift uint64 = 0xbf58476d1ce4e5b9
	streamWrite uint64 = 0x94d049bb133111eb
)

// splitmix64 is the SplitMix64 finalizer — a cheap, well-mixed hash used to
// derive independent per-slot seeds from the campaign seed.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

func (c Campaign) slotSeed(stream uint64, id SlotID) int64 {
	h := splitmix64(uint64(c.Seed) ^ stream)
	h = splitmix64(h ^ uint64(id.MPE)<<20 ^ uint64(id.Slot))
	return int64(h)
}

func (c Campaign) slotRng(stream uint64, id SlotID) *rand.Rand {
	return rand.New(rand.NewSource(c.slotSeed(stream, id)))
}

// DriftRng returns the slot's deterministic drift stream.
func (c Campaign) DriftRng(id SlotID) *rand.Rand { return c.slotRng(streamDrift, id) }

// WriteRng returns the slot's deterministic pulse-failure stream for the
// program-verify loop.
func (c Campaign) WriteRng(id SlotID) *rand.Rand { return c.slotRng(streamWrite, id) }

// StuckCells returns the slot's stuck devices in a fixed canonical order
// (positive plane row-major, then negative plane row-major). It walks the
// device sequence with geometric skips, so the cost is proportional to the
// number of faults, not the array size — the property that lets a campaign
// cover the tens of thousands of crossbars of the largest Fig 10 mapping.
// Deterministic: depends only on (Seed, id, rows, cols, StuckFraction,
// StuckHighShare).
func (c Campaign) StuckCells(id SlotID, rows, cols int) []StuckCell {
	p := c.StuckFraction
	if p <= 0 || rows <= 0 || cols <= 0 {
		return nil
	}
	n := 2 * rows * cols // both device planes
	rng := c.slotRng(streamStuck, id)
	if p >= 1 {
		out := make([]StuckCell, 0, n)
		for i := 0; i < n; i++ {
			out = append(out, c.stuckAt(i, rows, cols, rng))
		}
		return out
	}
	var out []StuckCell
	logq := math.Log1p(-p)
	for i := -1; ; {
		// Geometric gap: number of healthy devices skipped before the next
		// stuck one.
		gap := int(math.Log1p(-rng.Float64()) / logq)
		if gap < 0 { // overflow guard for U ~ 1
			break
		}
		i += 1 + gap
		if i >= n {
			break
		}
		out = append(out, c.stuckAt(i, rows, cols, rng))
	}
	return out
}

// stuckAt converts a flat device index into a StuckCell, drawing its rail.
func (c Campaign) stuckAt(i, rows, cols int, rng *rand.Rand) StuckCell {
	plane := Pos
	if i >= rows*cols {
		plane = Neg
		i -= rows * cols
	}
	state := StuckLow
	if rng.Float64() < c.StuckHighShare {
		state = StuckHigh
	}
	return StuckCell{R: i / cols, C: i % cols, Plane: plane, State: state}
}

// CellMap materializes the slot's full per-device fault map. Identical to
// scattering StuckCells into a fresh map; prefer StuckCells when only the
// faulty cells matter.
func (c Campaign) CellMap(id SlotID, rows, cols int) *CellMap {
	m := NewCellMap(rows, cols)
	for _, s := range c.StuckCells(id, rows, cols) {
		m.Set(s.R, s.C, s.Plane, s.State)
	}
	return m
}

// DriftSigmaAt returns the effective lognormal sigma after the given number
// of elapsed inferences: DriftSigma * log10(1 + inferences/DriftTau).
// Memristive conductance relaxes roughly linearly in log time, so the noise
// grows by one DriftSigma per decade of inferences past DriftTau.
func (c Campaign) DriftSigmaAt(inferences float64) float64 {
	if c.DriftSigma <= 0 || inferences <= 0 {
		return 0
	}
	tau := c.DriftTau
	if tau <= 0 {
		tau = 1e3
	}
	return c.DriftSigma * math.Log10(1+inferences/tau)
}

// EffectiveWeight returns the logical weight a programmed cell reads back
// as, after quantization to the technology's level grid, post-verify device
// states (stuck devices pin their plane to a rail; the verify loop repairs
// transient write failures, so OK devices land on target), and per-device
// drift multipliers (1 means no drift). This is the device physics shared
// by the electrical crossbar model and the functional accuracy-under-fault
// sweep.
func EffectiveWeight(m *quant.Mapper, w float64, pos, neg DeviceState, driftPos, driftNeg float64) float64 {
	pair := m.Map(w)
	gmin, gmax := m.Tech.GMin(), m.Tech.GMax()
	pair.GPos = driftClamp(stuckValue(pair.GPos, pos, gmin, gmax)*driftPos, gmin, gmax)
	pair.GNeg = driftClamp(stuckValue(pair.GNeg, neg, gmin, gmax)*driftNeg, gmin, gmax)
	return m.Weight(pair)
}

func stuckValue(g float64, s DeviceState, gmin, gmax float64) float64 {
	switch s {
	case StuckLow:
		return gmin
	case StuckHigh:
		return gmax
	default:
		return g
	}
}

func driftClamp(g, gmin, gmax float64) float64 {
	if g < gmin {
		return gmin
	}
	if g > gmax {
		return gmax
	}
	return g
}

// DriftFactor draws one device's multiplicative drift from the stream:
// exp(sigma * N(0,1)). Callers draw in canonical cell order from DriftRng
// so the factors are reproducible.
func DriftFactor(rng *rand.Rand, sigma float64) float64 {
	if sigma <= 0 {
		return 1
	}
	return math.Exp(rng.NormFloat64() * sigma)
}
