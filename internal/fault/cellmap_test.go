package fault

import (
	"testing"

	"resparc/internal/device"
)

func TestCellMapRoundTrip(t *testing.T) {
	c := NewCampaign(3, device.AgSi)
	m := c.CellMap(SlotID{MPE: 0, Slot: 1}, 128, 128)
	data, err := m.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	// RLE should compress a mostly-healthy 128x128 map far below the dense
	// 32 KiB representation.
	if len(data) > 2048 {
		t.Fatalf("serialized map is %d bytes, expected RLE to compress it", len(data))
	}
	var got CellMap
	if err := got.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	if !got.Equal(m) {
		t.Fatal("round trip changed the map")
	}
}

func TestCellMapRoundTripEmpty(t *testing.T) {
	m := NewCellMap(0, 0)
	data, err := m.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var got CellMap
	if err := got.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	if !got.Equal(m) {
		t.Fatal("empty round trip changed the map")
	}
}

func TestCellMapUnmarshalRejectsGarbage(t *testing.T) {
	good, _ := NewCellMap(2, 2).MarshalBinary()
	cases := map[string][]byte{
		"empty":         {},
		"bad magic":     []byte("NOPE\x01\x02\x02"),
		"bad version":   []byte("FMAP\x09\x02\x02"),
		"truncated":     good[:len(good)-1],
		"trailing":      append(append([]byte{}, good...), 0xff),
		"huge geometry": append([]byte("FMAP\x01"), 0xff, 0xff, 0xff, 0xff, 0x07, 0xff, 0xff, 0xff, 0xff, 0x07),
	}
	for name, data := range cases {
		var m CellMap
		if err := m.UnmarshalBinary(data); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestCellMapAccessorsBounds(t *testing.T) {
	m := NewCellMap(4, 4)
	m.Set(-1, 0, Pos, StuckHigh) // ignored
	m.Set(0, 99, Neg, StuckHigh) // ignored
	if m.StuckCount() != 0 {
		t.Fatal("out-of-range Set mutated the map")
	}
	if m.At(99, 0, Pos) != DeviceOK || m.At(0, -1, Neg) != DeviceOK {
		t.Fatal("out-of-range At must read DeviceOK")
	}
	m.Set(2, 3, Neg, StuckLow)
	if m.At(2, 3, Neg) != StuckLow || m.At(2, 3, Pos) != DeviceOK {
		t.Fatal("planes not independent")
	}
}
