package fault

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// CellMap is the full per-device fault map of one crossbar slot: one
// DeviceState per differential-pair device, both planes. It is the
// interchange format between the fault campaign, the crossbar's programming
// hook, and the verify report — and it serializes, so screened fault maps
// can be persisted alongside a deployed mapping.
type CellMap struct {
	Rows, Cols int
	// Pos and Neg hold the device states row-major, one plane each.
	Pos, Neg []DeviceState
}

// NewCellMap returns an all-healthy map of the given geometry.
func NewCellMap(rows, cols int) *CellMap {
	if rows < 0 {
		rows = 0
	}
	if cols < 0 {
		cols = 0
	}
	return &CellMap{
		Rows: rows,
		Cols: cols,
		Pos:  make([]DeviceState, rows*cols),
		Neg:  make([]DeviceState, rows*cols),
	}
}

// At returns the state of the device at (r, c) on the given plane.
// Out-of-range coordinates read as DeviceOK.
func (m *CellMap) At(r, c int, plane Plane) DeviceState {
	if m == nil || r < 0 || r >= m.Rows || c < 0 || c >= m.Cols {
		return DeviceOK
	}
	if plane == Neg {
		return m.Neg[r*m.Cols+c]
	}
	return m.Pos[r*m.Cols+c]
}

// Set sets the state of the device at (r, c) on the given plane;
// out-of-range coordinates are ignored.
func (m *CellMap) Set(r, c int, plane Plane, s DeviceState) {
	if m == nil || r < 0 || r >= m.Rows || c < 0 || c >= m.Cols {
		return
	}
	if plane == Neg {
		m.Neg[r*m.Cols+c] = s
	} else {
		m.Pos[r*m.Cols+c] = s
	}
}

// StuckCount returns the number of faulty devices across both planes.
func (m *CellMap) StuckCount() int {
	if m == nil {
		return 0
	}
	n := 0
	for _, s := range m.Pos {
		if s != DeviceOK {
			n++
		}
	}
	for _, s := range m.Neg {
		if s != DeviceOK {
			n++
		}
	}
	return n
}

// Equal reports whether two maps have the same geometry and states.
func (m *CellMap) Equal(o *CellMap) bool {
	if m == nil || o == nil {
		return m == o
	}
	if m.Rows != o.Rows || m.Cols != o.Cols {
		return false
	}
	for i := range m.Pos {
		if m.Pos[i] != o.Pos[i] {
			return false
		}
	}
	for i := range m.Neg {
		if m.Neg[i] != o.Neg[i] {
			return false
		}
	}
	return true
}

// Binary format (version 1):
//
//	"FMAP" magic | version byte | uvarint rows | uvarint cols |
//	RLE runs over Pos then Neg, each run: uvarint length | state byte
//
// Run-length encoding because real maps are overwhelmingly healthy — a
// 128x128 map at the Ag-Si defect rate marshals to tens of bytes instead
// of 32 KiB.
const (
	cellMapMagic   = "FMAP"
	cellMapVersion = 1
	// maxCells bounds the decoded geometry so corrupt input can't force a
	// huge allocation. Largest real crossbar is 256x256.
	maxCells = 1 << 20
)

// MarshalBinary implements encoding.BinaryMarshaler.
func (m *CellMap) MarshalBinary() ([]byte, error) {
	buf := make([]byte, 0, 32)
	buf = append(buf, cellMapMagic...)
	buf = append(buf, cellMapVersion)
	buf = binary.AppendUvarint(buf, uint64(m.Rows))
	buf = binary.AppendUvarint(buf, uint64(m.Cols))
	buf = appendRuns(buf, m.Pos)
	buf = appendRuns(buf, m.Neg)
	return buf, nil
}

func appendRuns(buf []byte, states []DeviceState) []byte {
	for i := 0; i < len(states); {
		j := i
		for j < len(states) && states[j] == states[i] {
			j++
		}
		buf = binary.AppendUvarint(buf, uint64(j-i))
		buf = append(buf, byte(states[i]))
		i = j
	}
	return buf
}

// ErrBadCellMap reports a malformed serialized fault map.
var ErrBadCellMap = errors.New("fault: malformed cell map")

// UnmarshalBinary implements encoding.BinaryUnmarshaler. It rejects (rather
// than panics on) arbitrary input: bad magic, unknown versions, oversized
// geometry, invalid states, and truncated or overlong run lists all return
// ErrBadCellMap-wrapped errors.
func (m *CellMap) UnmarshalBinary(data []byte) error {
	if len(data) < len(cellMapMagic)+1 || string(data[:len(cellMapMagic)]) != cellMapMagic {
		return fmt.Errorf("%w: bad magic", ErrBadCellMap)
	}
	data = data[len(cellMapMagic):]
	if data[0] != cellMapVersion {
		return fmt.Errorf("%w: unsupported version %d", ErrBadCellMap, data[0])
	}
	data = data[1:]
	rows, n := binary.Uvarint(data)
	if n <= 0 {
		return fmt.Errorf("%w: truncated rows", ErrBadCellMap)
	}
	data = data[n:]
	cols, n := binary.Uvarint(data)
	if n <= 0 {
		return fmt.Errorf("%w: truncated cols", ErrBadCellMap)
	}
	data = data[n:]
	if rows*cols > maxCells || rows > maxCells || cols > maxCells {
		return fmt.Errorf("%w: geometry %dx%d too large", ErrBadCellMap, rows, cols)
	}
	cells := int(rows * cols)
	pos, data, err := readRuns(data, cells)
	if err != nil {
		return err
	}
	neg, data, err := readRuns(data, cells)
	if err != nil {
		return err
	}
	if len(data) != 0 {
		return fmt.Errorf("%w: %d trailing bytes", ErrBadCellMap, len(data))
	}
	m.Rows, m.Cols, m.Pos, m.Neg = int(rows), int(cols), pos, neg
	return nil
}

func readRuns(data []byte, cells int) ([]DeviceState, []byte, error) {
	out := make([]DeviceState, 0, cells)
	for len(out) < cells {
		length, n := binary.Uvarint(data)
		if n <= 0 || len(data) <= n {
			return nil, nil, fmt.Errorf("%w: truncated run", ErrBadCellMap)
		}
		state := DeviceState(data[n])
		data = data[n+1:]
		if state > StuckHigh {
			return nil, nil, fmt.Errorf("%w: invalid state %d", ErrBadCellMap, state)
		}
		if length == 0 || length > uint64(cells-len(out)) {
			return nil, nil, fmt.Errorf("%w: run length %d overflows plane", ErrBadCellMap, length)
		}
		for i := uint64(0); i < length; i++ {
			out = append(out, state)
		}
	}
	return out, data, nil
}
