// Package xbar models a Memristive Crossbar Array (MCA) — the analog
// inner-product engine at the heart of RESPARC (§2.2). Voltages applied to
// rows produce, by Kirchhoff's law, column currents equal to the weighted
// sum of the row inputs and the cross-point conductances.
//
// The model supports the ideal dot-product mode used by the architecture
// simulators plus the non-idealities that cap reliable crossbar size (§1):
// programmed-conductance variation, stuck-at devices and parasitic IR drop
// along the wires. Energy per activation follows the electrical model
// E = V² · ΣG · t_pulse over the driven rows.
package xbar

import (
	"fmt"
	"math"
	"math/rand"

	"resparc/internal/bitvec"
	"resparc/internal/device"
	"resparc/internal/fault"
	"resparc/internal/quant"
	"resparc/internal/tensor"
)

// Crossbar is one MCA with differential-pair weight encoding: each logical
// column is realized by a positive and a negative device column.
type Crossbar struct {
	Rows, Cols int
	Tech       device.Technology
	// VRead is the read voltage applied to spiking rows; the paper operates
	// the MCA at Vdd/2 (§4.2), 0.5 V at the 45 nm node.
	VRead float64
	// PulseWidth is the read-pulse duration in seconds (one integration
	// step at the 200 MHz NeuroCell clock uses a sub-cycle pulse).
	PulseWidth float64

	mapper *quant.Mapper
	gpos   *tensor.Mat // Rows x Cols
	gneg   *tensor.Mat // Rows x Cols
	// faults is the per-device fault map installed by SetFaults; stuck
	// devices are pinned to their rail on every Program call.
	faults *fault.CellMap
}

// Config bundles the optional non-ideality switches applied by Perturb.
type Config struct {
	Variation bool // lognormal conductance variation (Tech.VariationSigma)
	StuckAt   bool // devices stuck at GMin/GMax (Tech.StuckFraction)
	IRDrop    bool // parasitic wire-resistance voltage drops
	// WireResistance is the parasitic series resistance of one cell-to-cell
	// wire segment in ohms (used when IRDrop is set). Typical 45 nm value
	// is ~1-2.5 Ω per segment.
	WireResistance float64
}

// New returns a rows x cols crossbar for the technology. wmax is the weight
// magnitude that maps to full-scale conductance. The size must respect the
// technology's reliable maximum.
func New(rows, cols int, tech device.Technology, wmax float64) (*Crossbar, error) {
	if err := tech.Validate(); err != nil {
		return nil, err
	}
	if rows <= 0 || cols <= 0 {
		return nil, fmt.Errorf("xbar: size %dx%d invalid", rows, cols)
	}
	if rows > tech.MaxSize || cols > tech.MaxSize {
		return nil, fmt.Errorf("xbar: %dx%d exceeds %s reliable maximum %d",
			rows, cols, tech.Name, tech.MaxSize)
	}
	m, err := quant.NewMapper(tech, wmax)
	if err != nil {
		return nil, err
	}
	x := &Crossbar{
		Rows: rows, Cols: cols, Tech: tech,
		VRead: 0.5, PulseWidth: 1e-9,
		mapper: m,
		gpos:   tensor.NewMat(rows, cols),
		gneg:   tensor.NewMat(rows, cols),
	}
	// Unprogrammed cross-points rest at minimum conductance.
	gmin := tech.GMin()
	x.gpos.Data.Fill(gmin)
	x.gneg.Data.Fill(gmin)
	return x, nil
}

// SetFaults installs a per-device fault map (typically from a
// fault.Campaign). Subsequent Program calls pin stuck devices to their
// rail regardless of the requested weight; already-programmed conductances
// are re-pinned immediately. Passing nil clears the map.
func (x *Crossbar) SetFaults(m *fault.CellMap) {
	x.faults = m
	if m == nil {
		return
	}
	gmin, gmax := x.Tech.GMin(), x.Tech.GMax()
	for r := 0; r < x.Rows; r++ {
		for c := 0; c < x.Cols; c++ {
			if g, ok := pinned(m.At(r, c, fault.Pos), gmin, gmax); ok {
				x.gpos.Set(r, c, g)
			}
			if g, ok := pinned(m.At(r, c, fault.Neg), gmin, gmax); ok {
				x.gneg.Set(r, c, g)
			}
		}
	}
}

// Faults returns the installed fault map (nil when fault-free).
func (x *Crossbar) Faults() *fault.CellMap { return x.faults }

func pinned(s fault.DeviceState, gmin, gmax float64) (float64, bool) {
	switch s {
	case fault.StuckLow:
		return gmin, true
	case fault.StuckHigh:
		return gmax, true
	default:
		return 0, false
	}
}

// Program writes weight w at cross-point (r, c) through the conductance
// mapper (quantizing to the technology's level grid). Devices pinned by an
// installed fault map ignore the write and stay on their rail.
func (x *Crossbar) Program(r, c int, w float64) {
	p := x.mapper.Map(w)
	if x.faults != nil {
		gmin, gmax := x.Tech.GMin(), x.Tech.GMax()
		if g, ok := pinned(x.faults.At(r, c, fault.Pos), gmin, gmax); ok {
			p.GPos = g
		}
		if g, ok := pinned(x.faults.At(r, c, fault.Neg), gmin, gmax); ok {
			p.GNeg = g
		}
	}
	x.gpos.Set(r, c, p.GPos)
	x.gneg.Set(r, c, p.GNeg)
}

// Weight returns the logical weight currently stored at (r, c), including
// any perturbation applied by Perturb.
func (x *Crossbar) Weight(r, c int) float64 {
	return x.mapper.Weight(quant.ConductancePair{GPos: x.gpos.At(r, c), GNeg: x.gneg.At(r, c)})
}

// ProgramMatrix writes w (at most Rows x Cols) into the top-left corner.
func (x *Crossbar) ProgramMatrix(w *tensor.Mat) error {
	if w.Rows > x.Rows || w.Cols > x.Cols {
		return fmt.Errorf("xbar: matrix %dx%d exceeds crossbar %dx%d", w.Rows, w.Cols, x.Rows, x.Cols)
	}
	for r := 0; r < w.Rows; r++ {
		for c := 0; c < w.Cols; c++ {
			x.Program(r, c, w.At(r, c))
		}
	}
	return nil
}

// Perturb injects device non-idealities into the programmed conductances
// using the technology's parameters.
//
// Seed/determinism contract (mirrors snn.PoissonEncoder.ForkSeed): the
// perturbation is a pure function of the rng's seed and the programmed
// state — it draws from rng in a fixed order (variation first, row-major
// across both planes; then stuck-at, row-major, interleaving the planes)
// and never consults any other source of randomness. Two crossbars
// programmed with the same weights and perturbed with equal-seeded rngs are
// identical device-for-device, so every downstream inference result is
// reproducible from the seed alone. Campaign-driven injection via SetFaults
// keys the same guarantee off (campaign seed, physical slot) instead.
func (x *Crossbar) Perturb(cfg Config, rng *rand.Rand) {
	if cfg.Variation {
		sigma := x.Tech.VariationSigma
		for i := range x.gpos.Data {
			x.gpos.Data[i] *= math.Exp(rng.NormFloat64() * sigma)
			x.gneg.Data[i] *= math.Exp(rng.NormFloat64() * sigma)
		}
	}
	if cfg.StuckAt {
		frac := x.Tech.StuckFraction
		gmin, gmax := x.Tech.GMin(), x.Tech.GMax()
		for i := range x.gpos.Data {
			if rng.Float64() < frac {
				if rng.Intn(2) == 0 {
					x.gpos.Data[i] = gmin
				} else {
					x.gpos.Data[i] = gmax
				}
			}
			if rng.Float64() < frac {
				if rng.Intn(2) == 0 {
					x.gneg.Data[i] = gmin
				} else {
					x.gneg.Data[i] = gmax
				}
			}
		}
	}
}

// Currents computes the differential column currents for the given spiking
// rows: I_c = Σ_{r spiking} V_eff(r,c) · (G+ - G-). With cfg.IRDrop the read
// voltage at each cross-point is derated by the first-order series
// resistance of the row wire up to the column and the column wire down to
// the sense amplifier — the model that makes large arrays progressively
// inaccurate. out must have length Cols (or be nil).
func (x *Crossbar) Currents(active *bitvec.Bits, cfg Config, out tensor.Vec) tensor.Vec {
	if active.Len() != x.Rows {
		panic(fmt.Sprintf("xbar: %d active-row bits for %d rows", active.Len(), x.Rows))
	}
	if out == nil {
		out = tensor.NewVec(x.Cols)
	}
	out.Fill(0)
	active.ForEachSet(func(r int) {
		prow := x.gpos.Row(r)
		nrow := x.gneg.Row(r)
		for c := 0; c < x.Cols; c++ {
			g := prow[c] - nrow[c]
			v := x.VRead
			if cfg.IRDrop && cfg.WireResistance > 0 {
				// Series wire segments: (c+1) along the row to reach the
				// column, (Rows-r) down the column to the sense amp.
				rs := cfg.WireResistance * float64(c+1+x.Rows-r)
				gm := prow[c] + nrow[c]
				v = x.VRead / (1 + rs*gm)
			}
			out[c] += v * g
		}
	})
	return out
}

// Compute returns the inner products in weight units: the column currents
// divided by (VRead · fullScaleConductanceSpan / WMax), i.e. the quantity a
// digital implementation of the same weights would produce. This is what
// the functional-equivalence tests compare against.
func (x *Crossbar) Compute(active *bitvec.Bits, cfg Config, out tensor.Vec) tensor.Vec {
	out = x.Currents(active, cfg, out)
	span := x.Tech.GMax() - x.Tech.GMin()
	scale := x.mapper.WMax / (x.VRead * span)
	out.Scale(scale)
	return out
}

// ActivationEnergy returns the electrical energy of one read with the given
// spiking rows: every cross-point on a driven row conducts (used or not),
// which is exactly why poorly utilized large crossbars waste energy
// (§5.2, Fig 12c).
func (x *Crossbar) ActivationEnergy(active *bitvec.Bits) float64 {
	var gsum float64
	active.ForEachSet(func(r int) {
		gsum += x.gpos.Row(r).Sum() + x.gneg.Row(r).Sum()
	})
	return x.VRead * x.VRead * gsum * x.PulseWidth
}

// MaxError programs w, computes outputs for the given activity under cfg,
// and returns the maximum absolute deviation from the ideal (no
// non-ideality) result — a reliability probe used by the technology
// explorer to justify per-technology size limits.
func MaxError(rows, cols int, tech device.Technology, w *tensor.Mat, active *bitvec.Bits, cfg Config, seed int64) (float64, error) {
	wmax := w.MaxAbs()
	if wmax == 0 {
		wmax = 1
	}
	ideal, err := New(rows, cols, tech, wmax)
	if err != nil {
		return 0, err
	}
	if err := ideal.ProgramMatrix(w); err != nil {
		return 0, err
	}
	noisy, err := New(rows, cols, tech, wmax)
	if err != nil {
		return 0, err
	}
	if err := noisy.ProgramMatrix(w); err != nil {
		return 0, err
	}
	noisy.Perturb(cfg, rand.New(rand.NewSource(seed)))
	ref := ideal.Compute(active, Config{}, nil)
	got := noisy.Compute(active, cfg, nil)
	var maxErr float64
	for i := range ref {
		if e := math.Abs(got[i] - ref[i]); e > maxErr {
			maxErr = e
		}
	}
	return maxErr, nil
}
