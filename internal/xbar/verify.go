package xbar

import (
	"fmt"
	"math"
	"math/rand"

	"resparc/internal/fault"
	"resparc/internal/tensor"
)

// VerifyConfig tunes the program-verify loop. Real crossbar controllers
// never trust a single write pulse: they write, read the cell back, and
// re-pulse until the conductance lands within tolerance or the retry budget
// runs out (SpikeSim models the same loop; it is also what makes
// failed-write faults *transient* while stuck-at faults are permanent).
type VerifyConfig struct {
	// MaxPulses is the per-device write budget (>= 1). <= 0 selects 5.
	MaxPulses int
	// Tolerance is the acceptable |readback - target| in weight units;
	// <= 0 selects half a quantization step.
	Tolerance float64
	// FailedWriteProb is the per-pulse probability that the device does not
	// move (e.g. fault.Campaign.FailedWriteProb).
	FailedWriteProb float64
	// Rng drives the pulse-failure draws; nil disables write failures.
	// Use fault.Campaign.WriteRng(slot) for the deterministic per-slot
	// stream.
	Rng *rand.Rand
}

// BadCell is one cross-point the verify loop could not bring within
// tolerance — with a healthy device model that only happens on stuck
// devices, so these are the unrepairable cells remapping must route around.
type BadCell struct {
	R, C     int
	Target   float64 // quantized target weight
	Readback float64 // best weight achieved
}

// VerifyReport summarizes one program-verify pass over a weight matrix.
type VerifyReport struct {
	Cells        int // cross-points written
	Pulses       int // total write pulses issued
	Retries      int // pulses beyond the first, per cell, summed
	Unrepairable []BadCell
}

// Failed reports whether any cell ended out of tolerance.
func (r VerifyReport) Failed() bool { return len(r.Unrepairable) > 0 }

func (r VerifyReport) String() string {
	return fmt.Sprintf("verify: %d cells, %d pulses (%d retries), %d unrepairable",
		r.Cells, r.Pulses, r.Retries, len(r.Unrepairable))
}

// ProgramVerify writes w (at most Rows x Cols) into the top-left corner
// with a write/readback/retry loop: each cell is pulsed until its readback
// weight is within tolerance of the quantized target or MaxPulses is
// exhausted. Transient pulse failures (cfg.FailedWriteProb) are repaired by
// the retries; devices pinned by an installed fault map never converge and
// are reported unrepairable. Cells are visited row-major so the pulse
// stream — and therefore the report — is deterministic for a given rng
// seed.
func (x *Crossbar) ProgramVerify(w *tensor.Mat, cfg VerifyConfig) (VerifyReport, error) {
	if w.Rows > x.Rows || w.Cols > x.Cols {
		return VerifyReport{}, fmt.Errorf("xbar: matrix %dx%d exceeds crossbar %dx%d", w.Rows, w.Cols, x.Rows, x.Cols)
	}
	maxPulses := cfg.MaxPulses
	if maxPulses <= 0 {
		maxPulses = 5
	}
	tol := cfg.Tolerance
	if tol <= 0 {
		// Half a level step: the tightest tolerance the level grid can hold.
		tol = 0.5 * x.mapper.WMax / float64(x.Tech.Levels-1)
	}
	var rep VerifyReport
	for r := 0; r < w.Rows; r++ {
		for c := 0; c < w.Cols; c++ {
			target := x.mapper.Weight(x.mapper.Map(w.At(r, c)))
			rep.Cells++
			ok := false
			for pulse := 0; pulse < maxPulses; pulse++ {
				rep.Pulses++
				if pulse > 0 {
					rep.Retries++
				}
				if cfg.Rng == nil || cfg.FailedWriteProb <= 0 || cfg.Rng.Float64() >= cfg.FailedWriteProb {
					x.Program(r, c, w.At(r, c))
				}
				if math.Abs(x.Weight(r, c)-target) <= tol {
					ok = true
					break
				}
			}
			if !ok {
				rep.Unrepairable = append(rep.Unrepairable, BadCell{
					R: r, C: c, Target: target, Readback: x.Weight(r, c),
				})
			}
		}
	}
	return rep, nil
}

// ScanReport summarizes one read-only verify scan: how far the stored
// weights have wandered from their programmed targets. It is the detection
// half of program-verify — the lifetime repair loop scans sampled crossbars
// to decide whether a refresh is due, without disturbing the devices.
type ScanReport struct {
	Cells      int     // cross-points compared
	OutOfTol   int     // cells whose |readback - target| exceeds tolerance
	MaxErr     float64 // worst absolute weight error seen
	MeanAbsErr float64 // mean absolute weight error over all cells
}

// Degraded reports whether any scanned cell was out of tolerance.
func (r ScanReport) Degraded() bool { return r.OutOfTol > 0 }

func (r ScanReport) String() string {
	return fmt.Sprintf("scan: %d cells, %d out of tolerance, max err %.4g, mean err %.4g",
		r.Cells, r.OutOfTol, r.MaxErr, r.MeanAbsErr)
}

// ScanVerify reads the crossbar back against the target weights w (at most
// Rows x Cols, compared in the top-left corner) without issuing any write
// pulses. Targets are quantized to the level grid exactly as ProgramVerify
// programs them, so a freshly verified, undrifted array scans clean; drift
// and stuck-at damage show up as out-of-tolerance cells. tol <= 0 selects
// half a quantization step, the same default as VerifyConfig.
func (x *Crossbar) ScanVerify(w *tensor.Mat, tol float64) (ScanReport, error) {
	if w.Rows > x.Rows || w.Cols > x.Cols {
		return ScanReport{}, fmt.Errorf("xbar: matrix %dx%d exceeds crossbar %dx%d", w.Rows, w.Cols, x.Rows, x.Cols)
	}
	if tol <= 0 {
		tol = 0.5 * x.mapper.WMax / float64(x.Tech.Levels-1)
	}
	var rep ScanReport
	var sum float64
	for r := 0; r < w.Rows; r++ {
		for c := 0; c < w.Cols; c++ {
			target := x.mapper.Weight(x.mapper.Map(w.At(r, c)))
			err := math.Abs(x.Weight(r, c) - target)
			rep.Cells++
			sum += err
			if err > tol {
				rep.OutOfTol++
			}
			if err > rep.MaxErr {
				rep.MaxErr = err
			}
		}
	}
	if rep.Cells > 0 {
		rep.MeanAbsErr = sum / float64(rep.Cells)
	}
	return rep, nil
}

// BenignStuck reports whether a stuck device at (r, c, plane) is harmless
// for target weight w: a stuck-low device on the plane that would rest at
// GMin anyway reads back exactly on target. Used by the mapping layer to
// avoid remapping around faults that cannot affect the computation.
func (x *Crossbar) BenignStuck(r, c int, plane fault.Plane, state fault.DeviceState, w float64) bool {
	if state != fault.StuckLow {
		return false
	}
	p := x.mapper.Map(w)
	gmin := x.Tech.GMin()
	if plane == fault.Pos {
		return p.GPos == gmin
	}
	return p.GNeg == gmin
}
