package xbar_test

import (
	"fmt"

	"resparc/internal/bitvec"
	"resparc/internal/device"
	"resparc/internal/tensor"
	"resparc/internal/xbar"
)

// A crossbar computes inner products by Kirchhoff's law: program a weight
// matrix, drive the spiking rows, read column currents in weight units.
func ExampleCrossbar_Compute() {
	x, err := xbar.New(4, 2, device.AgSi, 1.0)
	if err != nil {
		fmt.Println(err)
		return
	}
	w := tensor.NewMat(4, 2)
	copy(w.Data, tensor.Vec{
		1.0, 0.0,
		0.0, 1.0,
		0.5, 0.5,
		0.0, 0.0,
	})
	if err := x.ProgramMatrix(w); err != nil {
		fmt.Println(err)
		return
	}
	active := bitvec.New(4)
	active.Set(0)
	active.Set(2)
	out := x.Compute(active, xbar.Config{}, nil)
	fmt.Printf("column sums: [%.1f %.1f]\n", out[0], out[1])
	// Output:
	// column sums: [1.5 0.5]
}
