package xbar

import (
	"math/rand"
	"testing"

	"resparc/internal/bitvec"
	"resparc/internal/device"
	"resparc/internal/tensor"
)

func benchXbar(b *testing.B, n int) (*Crossbar, *bitvec.Bits) {
	b.Helper()
	rng := rand.New(rand.NewSource(1))
	w := tensor.NewMat(n, n)
	for i := range w.Data {
		w.Data[i] = rng.NormFloat64()
	}
	x, err := New(n, n, device.PCM, w.MaxAbs())
	if err != nil {
		b.Fatal(err)
	}
	if err := x.ProgramMatrix(w); err != nil {
		b.Fatal(err)
	}
	active := bitvec.New(n)
	for i := 0; i < n; i++ {
		if rng.Float64() < 0.15 {
			active.Set(i)
		}
	}
	return x, active
}

// BenchmarkCurrents64 measures one ideal 64x64 analog read.
func BenchmarkCurrents64(b *testing.B) {
	x, active := benchXbar(b, 64)
	out := tensor.NewVec(64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x.Currents(active, Config{}, out)
	}
}

// BenchmarkCurrentsIRDrop64 measures the same read with the first-order
// IR-drop model enabled.
func BenchmarkCurrentsIRDrop64(b *testing.B) {
	x, active := benchXbar(b, 64)
	out := tensor.NewVec(64)
	cfg := Config{IRDrop: true, WireResistance: 2.5}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x.Currents(active, cfg, out)
	}
}

// BenchmarkActivationEnergy64 measures the electrical energy accounting.
func BenchmarkActivationEnergy64(b *testing.B) {
	x, active := benchXbar(b, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x.ActivationEnergy(active)
	}
}
