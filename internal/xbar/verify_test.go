package xbar

import (
	"math"
	"math/rand"
	"testing"

	"resparc/internal/device"
	"resparc/internal/fault"
	"resparc/internal/tensor"
)

func randomWeights(n int, seed int64) *tensor.Mat {
	rng := rand.New(rand.NewSource(seed))
	w := tensor.NewMat(n, n)
	for i := range w.Data {
		w.Data[i] = rng.NormFloat64()
	}
	return w
}

// Seed/determinism contract for Perturb (mirrors PoissonEncoder.ForkSeed):
// same seed => identical fault map => identical inference results.
func TestPerturbSeedDeterminism(t *testing.T) {
	tech := device.AgSi
	tech.StuckFraction = 0.05
	w := randomWeights(32, 1)
	build := func(seed int64) *Crossbar {
		x, err := New(32, 32, tech, w.MaxAbs())
		if err != nil {
			t.Fatal(err)
		}
		if err := x.ProgramMatrix(w); err != nil {
			t.Fatal(err)
		}
		x.Perturb(Config{Variation: true, StuckAt: true}, rand.New(rand.NewSource(seed)))
		return x
	}
	a, b, other := build(7), build(7), build(8)
	sameMap, sameOut := true, true
	for r := 0; r < 32; r++ {
		for c := 0; c < 32; c++ {
			if a.Weight(r, c) != b.Weight(r, c) {
				sameMap = false
			}
		}
	}
	if !sameMap {
		t.Fatal("same seed produced different device states")
	}
	ia := a.Compute(allRows(32), Config{}, nil)
	ib := b.Compute(allRows(32), Config{}, nil)
	io := other.Compute(allRows(32), Config{}, nil)
	diffOther := false
	for c := range ia {
		if ia[c] != ib[c] {
			sameOut = false
		}
		if ia[c] != io[c] {
			diffOther = true
		}
	}
	if !sameOut {
		t.Fatal("same seed produced different inference results")
	}
	if !diffOther {
		t.Fatal("different seeds produced identical outputs — rng unused?")
	}
}

// SetFaults must pin stuck devices against subsequent programming, and the
// campaign-driven map must be reproducible.
func TestSetFaultsPinsDevices(t *testing.T) {
	x, err := New(16, 16, device.AgSi, 1)
	if err != nil {
		t.Fatal(err)
	}
	m := fault.NewCellMap(16, 16)
	m.Set(2, 3, fault.Pos, fault.StuckLow)
	m.Set(4, 5, fault.Pos, fault.StuckHigh)
	x.SetFaults(m)
	x.Program(2, 3, 0.9) // G+ pinned low: positive weight lost
	if got := x.Weight(2, 3); math.Abs(got) > 1e-12 {
		t.Fatalf("stuck-low cell reads %v, want 0", got)
	}
	x.Program(4, 5, 0) // G+ pinned high: zero weight reads full scale
	if got := x.Weight(4, 5); got < 0.9 {
		t.Fatalf("stuck-high cell reads %v, want ~1", got)
	}
	// Healthy cells program normally.
	x.Program(0, 0, 0.5)
	if got := x.Weight(0, 0); math.Abs(got-0.5) > 0.1 {
		t.Fatalf("healthy cell reads %v, want ~0.5", got)
	}
	// Clearing the map releases the pins on the next write.
	x.SetFaults(nil)
	x.Program(2, 3, 0.9)
	if got := x.Weight(2, 3); math.Abs(got-0.9) > 0.1 {
		t.Fatalf("cleared cell reads %v, want ~0.9", got)
	}
}

// The verify loop must repair transient write failures and report only the
// genuinely unrepairable (stuck) cells.
func TestProgramVerifyRepairsTransientsFlagsStuck(t *testing.T) {
	w := randomWeights(16, 2)
	x, err := New(16, 16, device.AgSi, w.MaxAbs())
	if err != nil {
		t.Fatal(err)
	}
	m := fault.NewCellMap(16, 16)
	m.Set(1, 1, fault.Pos, fault.StuckHigh)
	x.SetFaults(m)
	camp := fault.Campaign{Seed: 3, FailedWriteProb: 0.3}
	rep, err := x.ProgramVerify(w, VerifyConfig{
		MaxPulses:       8,
		FailedWriteProb: camp.FailedWriteProb,
		Rng:             camp.WriteRng(fault.SlotID{MPE: 0, Slot: 0}),
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Retries == 0 {
		t.Fatal("30% pulse failures produced no retries")
	}
	if len(rep.Unrepairable) != 1 || rep.Unrepairable[0].R != 1 || rep.Unrepairable[0].C != 1 {
		t.Fatalf("unrepairable = %+v, want exactly cell (1,1)", rep.Unrepairable)
	}
	if !rep.Failed() {
		t.Fatal("report with unrepairable cells must fail")
	}
	// All other cells must be on target despite the transient failures.
	for r := 0; r < 16; r++ {
		for c := 0; c < 16; c++ {
			if r == 1 && c == 1 {
				continue
			}
			target := x.mapper.Weight(x.mapper.Map(w.At(r, c)))
			if math.Abs(x.Weight(r, c)-target) > 1e-9 {
				t.Fatalf("cell (%d,%d) off target after verify: %v vs %v", r, c, x.Weight(r, c), target)
			}
		}
	}
}

func TestProgramVerifyCleanPath(t *testing.T) {
	w := randomWeights(8, 4)
	x, err := New(8, 8, device.PCM, w.MaxAbs())
	if err != nil {
		t.Fatal(err)
	}
	rep, err := x.ProgramVerify(w, VerifyConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed() || rep.Retries != 0 || rep.Pulses != 64 || rep.Cells != 64 {
		t.Fatalf("clean verify report unexpected: %+v", rep)
	}
	if _, err := x.ProgramVerify(tensor.NewMat(9, 8), VerifyConfig{}); err == nil {
		t.Fatal("oversized matrix accepted")
	}
}

// A stuck-low device on the inactive plane of a weight is benign: the
// readback is on target, so verify does not flag it and mapping need not
// remap around it.
func TestBenignStuckCells(t *testing.T) {
	x, err := New(4, 4, device.AgSi, 1)
	if err != nil {
		t.Fatal(err)
	}
	m := fault.NewCellMap(4, 4)
	m.Set(0, 0, fault.Neg, fault.StuckLow) // negative plane of a positive weight
	x.SetFaults(m)
	w := tensor.NewMat(4, 4)
	w.Set(0, 0, 0.75)
	rep, err := x.ProgramVerify(w, VerifyConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed() {
		t.Fatalf("benign stuck cell flagged unrepairable: %+v", rep.Unrepairable)
	}
	if !x.BenignStuck(0, 0, fault.Neg, fault.StuckLow, 0.75) {
		t.Fatal("BenignStuck must accept a stuck-low inactive device")
	}
	if x.BenignStuck(0, 0, fault.Pos, fault.StuckLow, 0.75) {
		t.Fatal("BenignStuck must reject a stuck-low active device")
	}
	if x.BenignStuck(0, 0, fault.Neg, fault.StuckHigh, 0.75) {
		t.Fatal("BenignStuck must reject stuck-high")
	}
}

// Campaign-driven injection end to end: same campaign => identical compute.
func TestCampaignInjectionDeterministic(t *testing.T) {
	tech := device.AgSi
	w := randomWeights(32, 5)
	run := func(seed int64) tensor.Vec {
		camp := fault.NewCampaign(seed, tech)
		x, err := New(32, 32, tech, w.MaxAbs())
		if err != nil {
			t.Fatal(err)
		}
		x.SetFaults(camp.CellMap(fault.SlotID{MPE: 1, Slot: 2}, 32, 32))
		if err := x.ProgramMatrix(w); err != nil {
			t.Fatal(err)
		}
		return x.Compute(allRows(32), Config{}, nil)
	}
	a, b := run(42), run(42)
	for c := range a {
		if a[c] != b[c] {
			t.Fatalf("col %d differs across identically-seeded campaigns", c)
		}
	}
}
