package xbar

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"resparc/internal/bitvec"
	"resparc/internal/device"
	"resparc/internal/tensor"
)

func allRows(n int) *bitvec.Bits {
	b := bitvec.New(n)
	for i := 0; i < n; i++ {
		b.Set(i)
	}
	return b
}

func TestNewValidation(t *testing.T) {
	if _, err := New(64, 64, device.AgSi, 1); err != nil {
		t.Fatalf("valid crossbar rejected: %v", err)
	}
	if _, err := New(0, 64, device.AgSi, 1); err == nil {
		t.Fatal("zero rows accepted")
	}
	if _, err := New(256, 256, device.AgSi, 1); err == nil {
		t.Fatal("size beyond Ag-Si reliable maximum accepted")
	}
	if _, err := New(256, 256, device.PCM, 1); err != nil {
		t.Fatal("PCM supports 256")
	}
	if _, err := New(64, 64, device.AgSi, 0); err == nil {
		t.Fatal("wmax 0 accepted")
	}
}

// Ideal crossbar inner product must match the digital reference within
// quantization error.
func TestComputeMatchesDigital(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	const n = 16
	w := tensor.NewMat(n, n)
	for i := range w.Data {
		w.Data[i] = rng.NormFloat64()
	}
	x, err := New(n, n, device.PCM, w.MaxAbs())
	if err != nil {
		t.Fatal(err)
	}
	if err := x.ProgramMatrix(w); err != nil {
		t.Fatal(err)
	}
	active := bitvec.New(n)
	for i := 0; i < n; i += 2 {
		active.Set(i)
	}
	got := x.Compute(active, Config{}, nil)
	// Digital reference: column c value = sum over active rows of w[r][c].
	want := tensor.NewVec(n)
	active.ForEachSet(func(r int) {
		for c := 0; c < n; c++ {
			want[c] += w.At(r, c)
		}
	})
	// Tolerance: one quantization level per active row.
	tol := w.MaxAbs() / float64(device.PCM.Levels-1) * float64(active.Count())
	for c := range want {
		if math.Abs(got[c]-want[c]) > tol {
			t.Fatalf("col %d: crossbar %v digital %v (tol %v)", c, got[c], want[c], tol)
		}
	}
}

func TestWeightReadback(t *testing.T) {
	x, _ := New(8, 8, device.PCM, 1)
	x.Program(3, 4, 0.5)
	got := x.Weight(3, 4)
	if math.Abs(got-0.5) > 1.0/15 {
		t.Fatalf("Weight readback %v", got)
	}
	// Unprogrammed cell reads ~0 (both devices at GMin).
	if x.Weight(0, 0) != 0 {
		t.Fatalf("fresh cell weight %v", x.Weight(0, 0))
	}
}

func TestProgramMatrixTooBig(t *testing.T) {
	x, _ := New(4, 4, device.PCM, 1)
	if err := x.ProgramMatrix(tensor.NewMat(5, 4)); err == nil {
		t.Fatal("oversized matrix accepted")
	}
}

func TestNoActivityNoCurrentNoEnergy(t *testing.T) {
	x, _ := New(8, 8, device.PCM, 1)
	x.Program(0, 0, 1)
	out := x.Currents(bitvec.New(8), Config{}, nil)
	for _, v := range out {
		if v != 0 {
			t.Fatal("current without input spikes")
		}
	}
	if x.ActivationEnergy(bitvec.New(8)) != 0 {
		t.Fatal("energy without input spikes")
	}
}

func TestActivationEnergyScalesWithActivity(t *testing.T) {
	x, _ := New(32, 32, device.PCM, 1)
	for r := 0; r < 32; r++ {
		for c := 0; c < 32; c++ {
			x.Program(r, c, 0.5)
		}
	}
	one := bitvec.New(32)
	one.Set(0)
	e1 := x.ActivationEnergy(one)
	eAll := x.ActivationEnergy(allRows(32))
	if e1 <= 0 {
		t.Fatal("single-row energy must be positive")
	}
	if math.Abs(eAll-32*e1) > 1e-18 {
		t.Fatalf("energy not additive: %v vs %v", eAll, 32*e1)
	}
}

// Unused cross-points on a driven row still burn energy (they sit at GMin) —
// the root cause of the CNN utilization penalty (Fig 12c).
func TestIdleCellsStillConduct(t *testing.T) {
	x, _ := New(16, 16, device.PCM, 1)
	// Program only one column; the other 15 columns stay at GMin pairs.
	for r := 0; r < 16; r++ {
		x.Program(r, 0, 1)
	}
	e := x.ActivationEnergy(allRows(16))
	// Lower bound: the idle-cell contribution alone.
	idle := 0.5 * 0.5 * (2 * device.PCM.GMin() * 15 * 16) * x.PulseWidth
	if e <= idle {
		t.Fatalf("energy %v must exceed idle-cell floor %v", e, idle)
	}
}

func TestVariationPerturbsOutputs(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	w := tensor.NewMat(32, 32)
	for i := range w.Data {
		w.Data[i] = rng.NormFloat64()
	}
	active := allRows(32)
	errVar, err := MaxError(32, 32, device.AgSi, w, active, Config{Variation: true}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if errVar <= 0 {
		t.Fatal("variation produced no error")
	}
}

// IR drop must grow with crossbar size — the physical reason reliable MCAs
// are small (§1) and the motivation for reconfigurability.
func TestIRDropGrowsWithSize(t *testing.T) {
	cfg := Config{IRDrop: true, WireResistance: 2.5}
	errs := make([]float64, 0, 3)
	for _, n := range []int{16, 64, 256} {
		rng := rand.New(rand.NewSource(4))
		w := tensor.NewMat(n, n)
		for i := range w.Data {
			w.Data[i] = rng.NormFloat64()
		}
		e, err := MaxError(n, n, device.PCM, w, allRows(n), cfg, 5)
		if err != nil {
			t.Fatal(err)
		}
		errs = append(errs, e)
	}
	if !(errs[0] < errs[1] && errs[1] < errs[2]) {
		t.Fatalf("IR-drop error not increasing with size: %v", errs)
	}
}

func TestStuckAtInjectsDefects(t *testing.T) {
	tech := device.AgSi
	tech.StuckFraction = 0.2 // exaggerate for the test
	x, _ := New(32, 32, tech, 1)
	for r := 0; r < 32; r++ {
		for c := 0; c < 32; c++ {
			x.Program(r, c, 0.5)
		}
	}
	before := make([]float64, 0, 1024)
	for r := 0; r < 32; r++ {
		for c := 0; c < 32; c++ {
			before = append(before, x.Weight(r, c))
		}
	}
	x.Perturb(Config{StuckAt: true}, rand.New(rand.NewSource(6)))
	changed := 0
	i := 0
	for r := 0; r < 32; r++ {
		for c := 0; c < 32; c++ {
			if x.Weight(r, c) != before[i] {
				changed++
			}
			i++
		}
	}
	if changed == 0 {
		t.Fatal("stuck-at injection changed nothing")
	}
}

func TestCurrentsPanicsOnSizeMismatch(t *testing.T) {
	x, _ := New(8, 8, device.PCM, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	x.Currents(bitvec.New(4), Config{}, nil)
}

// Property: crossbar linearity — currents of (A ∪ B) equal currents of A
// plus currents of B for disjoint active sets (Kirchhoff superposition).
func TestSuperpositionProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const n = 12
		w := tensor.NewMat(n, n)
		for i := range w.Data {
			w.Data[i] = rng.NormFloat64()
		}
		x, err := New(n, n, device.PCM, w.MaxAbs()+1e-9)
		if err != nil {
			return false
		}
		if err := x.ProgramMatrix(w); err != nil {
			return false
		}
		a, b, both := bitvec.New(n), bitvec.New(n), bitvec.New(n)
		for i := 0; i < n; i++ {
			switch rng.Intn(3) {
			case 0:
				a.Set(i)
				both.Set(i)
			case 1:
				b.Set(i)
				both.Set(i)
			}
		}
		ia := x.Currents(a, Config{}, nil)
		ib := x.Currents(b, Config{}, nil)
		iboth := x.Currents(both, Config{}, nil)
		for c := 0; c < n; c++ {
			if math.Abs(iboth[c]-(ia[c]+ib[c])) > 1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
