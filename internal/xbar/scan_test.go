package xbar

import (
	"math/rand"
	"testing"

	"resparc/internal/device"
	"resparc/internal/tensor"
)

// A freshly programmed, undrifted crossbar must scan clean; perturbing the
// conductances must surface out-of-tolerance cells without changing the
// device state (the scan is read-only).
func TestScanVerify(t *testing.T) {
	tech := device.AgSi
	w := randomWeights(24, 3)
	x, err := New(24, 24, tech, w.MaxAbs())
	if err != nil {
		t.Fatal(err)
	}
	if err := x.ProgramMatrix(w); err != nil {
		t.Fatal(err)
	}
	clean, err := x.ScanVerify(w, 0)
	if err != nil {
		t.Fatal(err)
	}
	if clean.Cells != 24*24 {
		t.Fatalf("scanned %d cells, want %d", clean.Cells, 24*24)
	}
	if clean.Degraded() || clean.MaxErr != 0 {
		t.Fatalf("clean crossbar scans degraded: %v", clean)
	}

	x.Perturb(Config{Variation: true}, rand.New(rand.NewSource(9)))
	before := make([]float64, 0, 24*24)
	for r := 0; r < 24; r++ {
		for c := 0; c < 24; c++ {
			before = append(before, x.Weight(r, c))
		}
	}
	drifted, err := x.ScanVerify(w, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !drifted.Degraded() {
		t.Fatalf("perturbed crossbar scans clean: %v", drifted)
	}
	if drifted.MeanAbsErr <= 0 || drifted.MaxErr < drifted.MeanAbsErr {
		t.Fatalf("implausible error stats: %v", drifted)
	}
	i := 0
	for r := 0; r < 24; r++ {
		for c := 0; c < 24; c++ {
			if x.Weight(r, c) != before[i] {
				t.Fatal("scan mutated device state")
			}
			i++
		}
	}
}

func TestScanVerifySizeMismatch(t *testing.T) {
	x, err := New(8, 8, device.AgSi, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := x.ScanVerify(tensor.NewMat(9, 9), 0); err == nil {
		t.Fatal("oversized target accepted")
	}
}
