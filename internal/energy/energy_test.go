package energy

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDefaultParamsPositive(t *testing.T) {
	p := Default45nm()
	vals := map[string]float64{
		"NCClockHz": p.NCClockHz, "XbarCellActive": p.XbarCellActive,
		"XbarIdleFrac": p.XbarIdleFrac, "NeuronIntegrate": p.NeuronIntegrate,
		"NeuronSpike": p.NeuronSpike, "BufferAccess": p.BufferAccess,
		"SwitchHop": p.SwitchHop, "BusWord": p.BusWord,
		"MPEControl": p.MPEControl, "ZeroCheck": p.ZeroCheck,
		"CMOSClockHz": p.CMOSClockHz, "CoreOp": p.CoreOp,
		"FIFOAccess": p.FIFOAccess, "NeuronUnitUpdate": p.NeuronUnitUpdate,
		"CoreBitExp": p.CoreBitExp,
	}
	for name, v := range vals {
		if v <= 0 {
			t.Errorf("%s = %v, want positive", name, v)
		}
	}
	if p.XbarIdleFrac >= 1 {
		t.Error("idle cells must cost less than programmed cells")
	}
}

func TestClockAnchors(t *testing.T) {
	p := Default45nm()
	// Fig 8: 200 MHz NeuroCell; Fig 9: 1 GHz baseline.
	if p.NCClockHz != 200e6 || p.CMOSClockHz != 1e9 {
		t.Fatalf("clocks %v %v", p.NCClockHz, p.CMOSClockHz)
	}
	if p.NCCycle() != 5e-9 || p.CMOSCycle() != 1e-9 {
		t.Fatalf("cycles %v %v", p.NCCycle(), p.CMOSCycle())
	}
}

func TestCoreOpAtScaling(t *testing.T) {
	p := Default45nm()
	if p.CoreOpAt(4) != p.CoreOp {
		t.Fatal("4-bit must be the reference")
	}
	if !(p.CoreOpAt(8) > p.CoreOp && p.CoreOpAt(1) < p.CoreOp) {
		t.Fatal("core op energy must grow with precision")
	}
	// Superlinear growth (Fig 14b: CMOS energy rises with bits).
	if p.CoreOpAt(8) < 2*p.CoreOp {
		t.Fatalf("8-bit op %v should be at least 2x the 4-bit op %v", p.CoreOpAt(8), p.CoreOp)
	}
}

func TestSRAMScaling(t *testing.T) {
	small := NewSRAM(32 * 1024)
	big := NewSRAM(1024 * 1024)
	if big.AccessEnergy() <= small.AccessEnergy() {
		t.Fatal("bigger SRAM must cost more per access")
	}
	if big.LeakagePower() <= small.LeakagePower() {
		t.Fatal("bigger SRAM must leak more")
	}
	if big.AccessLatency() <= small.AccessLatency() {
		t.Fatal("bigger SRAM must be slower")
	}
	// Leakage is near-linear; access is strongly sublinear.
	ratio := float64(big.Bytes) / float64(small.Bytes)
	leakRatio := big.LeakagePower() / small.LeakagePower()
	accRatio := big.AccessEnergy() / small.AccessEnergy()
	if leakRatio < 0.8*ratio*math.Pow(ratio, -0.1) {
		t.Fatalf("leakage ratio %v too sublinear", leakRatio)
	}
	if accRatio > math.Sqrt(ratio)*1.5 {
		t.Fatalf("access ratio %v too linear", accRatio)
	}
}

func TestSRAMValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for zero size")
		}
	}()
	NewSRAM(0)
}

func TestWordsFor(t *testing.T) {
	s := NewSRAM(1024)
	if s.WordsFor(16, 4) != 1 {
		t.Fatalf("16 4-bit items = %d words", s.WordsFor(16, 4))
	}
	if s.WordsFor(17, 4) != 2 {
		t.Fatalf("17 4-bit items = %d words", s.WordsFor(17, 4))
	}
	if s.WordsFor(3, 64) != 3 {
		t.Fatalf("3 64-bit items = %d words", s.WordsFor(3, 64))
	}
	if s.WordsFor(0, 8) != 0 {
		t.Fatal("0 items need 0 words")
	}
}

func TestWordsForValidation(t *testing.T) {
	s := NewSRAM(1024)
	for _, bits := range []int{0, 65} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("bits=%d accepted", bits)
				}
			}()
			s.WordsFor(1, bits)
		}()
	}
}

// Property: WordsFor never splits items across words and is monotone.
func TestWordsForProperty(t *testing.T) {
	f := func(items uint16, bits uint8) bool {
		b := int(bits%64) + 1
		n := int(items % 10000)
		s := NewSRAM(1024)
		w := s.WordsFor(n, b)
		perWord := 64 / b
		return w == (n+perWord-1)/perWord
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPublishedMetrics(t *testing.T) {
	// Fig 8.
	nc := NeuroCellMetrics()
	if nc.AreaMM2 != 0.29 || nc.PowerMW != 53.2 || nc.GateCount != 67643 || nc.FreqMHz != 200 || nc.FeatureNM != 45 {
		t.Fatalf("NeuroCell metrics %+v", nc)
	}
	// Fig 9.
	bl := BaselineMetrics()
	if bl.AreaMM2 != 0.19 || bl.PowerMW != 35.1 || bl.GateCount != 44798 || bl.FreqMHz != 1000 {
		t.Fatalf("baseline metrics %+v", bl)
	}
}

func TestPublishedParams(t *testing.T) {
	ncp := DefaultNeuroCellParams()
	if ncp.ArchitectureBits != 64 || ncp.NCDim != 4 || ncp.MPEs != 16 || ncp.Switches != 9 || ncp.MCAsPerMPE != 4 {
		t.Fatalf("NC params %+v", ncp)
	}
	if ncp.NCDim*ncp.NCDim != ncp.MPEs {
		t.Fatal("NC dimension inconsistent with mPE count")
	}
	blp := DefaultBaselineParams()
	if blp.NeuronUnits != 16 || blp.InputFIFOs != 16 || blp.WeightFIFOs != 1 || blp.FIFODepth != 32 || blp.FIFOWidth != 4 {
		t.Fatalf("baseline params %+v", blp)
	}
}
