// Package energy is the calibrated component library behind both
// architecture simulators: per-event energies and timing for RESPARC's
// crossbar datapath and for the optimized CMOS digital baseline, plus a
// CACTI-style analytic SRAM model.
//
// The paper obtains these constants from RTL synthesis (Synopsys Design
// Compiler / Power Compiler, IBM 45 nm) and CACTI 6.0; this package plays
// the same role with analytic constants anchored to the published
// implementation metrics (Fig 8: 0.29 mm², 53.2 mW, 200 MHz per NeuroCell;
// Fig 9: 0.19 mm², 35.1 mW, 1 GHz for the baseline). Absolute joules are
// stand-ins; all reported results are normalized ratios, as in the paper.
package energy

import (
	"fmt"
	"math"
)

// Params bundles every per-event energy (joules) and clock used by the
// simulators. One Params value is threaded through a whole experiment so
// ablations can perturb individual components.
type Params struct {
	// ---- RESPARC (NeuroCell, Fig 8) ----

	// NCClockHz is the NeuroCell clock (200 MHz).
	NCClockHz float64
	// XbarCellActive is the read energy of one driven cross-point at the
	// mean programmed conductance (V² G t with V = Vdd/2).
	XbarCellActive float64
	// XbarIdleFrac is the energy of an un-utilized cross-point on a driven
	// row (both devices at GMin) as a fraction of XbarCellActive. Idle
	// cells still conduct — the CNN utilization penalty of Fig 12(c).
	XbarIdleFrac float64
	// GateIdleColumns is a counterfactual design knob: a crossbar whose
	// unused columns can be power-gated pays nothing for idle cross-points,
	// removing the Fig 12(c) utilization penalty. Off in the paper's design
	// (and by default); the ablation experiment quantifies what the feature
	// would buy.
	GateIdleColumns bool
	// NeuronIntegrate is the energy of integrating one MCA column current
	// into a neuron's membrane capacitance (one time-multiplexing step).
	NeuronIntegrate float64
	// NeuronSpike is the energy of generating and latching one output spike.
	NeuronSpike float64
	// SpikeHandling is the peripheral cost per emitted spike: oBUFF write,
	// tBUFF target lookup and packet assembly in the local control unit.
	SpikeHandling float64
	// BufferAccess is one iBUFF/oBUFF/tBUFF 64-bit push or pop.
	BufferAccess float64
	// SwitchHop is one spike packet traversing a programmable switch
	// (decoder + arbitration + output drive).
	SwitchHop float64
	// BusWord is one 64-bit word broadcast on the global IO bus.
	BusWord float64
	// MPEControl is the local-control energy per MCA activation.
	MPEControl float64
	// ZeroCheck is the cost of zero-checking one packet (paid even when the
	// transfer is suppressed).
	ZeroCheck float64
	// IntegrateCycles is the NeuroCell cycles one time-multiplexed MCA
	// current integration takes (analog settle + transfer + sample).
	IntegrateCycles int
	// SyncCyclesPerNC is the global-control-unit cost of synchronizing one
	// NeuroCell's event flag at a layer boundary (§3.1.3): every timestep,
	// each layer pays SyncCyclesPerNC times the number of NeuroCells it
	// spans.
	SyncCyclesPerNC int
	// BusWordsPerCycle is the global IO bus width in 64-bit words (a wide
	// bus broadcasts several spike words per NeuroCell cycle; §3.1.3 notes
	// single-cycle broadcast to a variable number of NeuroCells).
	BusWordsPerCycle int

	// ---- CMOS baseline (Fig 9) ----

	// CMOSClockHz is the baseline clock (1 GHz).
	CMOSClockHz float64
	// CoreOp is one synaptic accumulation in a neuron unit at 4-bit weights
	// (datapath + pipeline control).
	CoreOp float64
	// FIFOAccess is one input/weight FIFO push or pop.
	FIFOAccess float64
	// NeuronUnitUpdate is one membrane-potential read-modify-write.
	NeuronUnitUpdate float64
	// BitRefWidth is the weight precision the Core/FIFO constants are
	// calibrated at (4 bits, the paper's default).
	BitRefWidth int
	// CoreBitExp scales core energy with precision: E(b) =
	// CoreOp*(b/4)^CoreBitExp. Wider adders/buffers grow superlinearly.
	CoreBitExp float64
}

// Default45nm returns the calibration used for all paper-reproduction
// experiments.
func Default45nm() Params {
	return Params{
		NCClockHz:        200e6,
		XbarCellActive:   40e-15,  // read pulse at mean level incl. drivers
		XbarIdleFrac:     0.35,    // GMin pair + sneak paths on driven rows
		NeuronIntegrate:  120e-15, // analog integration onto Cmem + sample
		NeuronSpike:      2.2e-12, // comparator fire + reset
		SpikeHandling:    2.5e-12, // oBUFF write + tBUFF lookup + packetize
		BufferAccess:     4.5e-12, // 64-bit buffer access incl. control
		SwitchHop:        8.5e-12, // decode + arbitrate + drive
		BusWord:          24e-12,  // long-wire broadcast, 64 bits
		MPEControl:       6e-12,   // LCU + CCU sequencing per activation
		ZeroCheck:        40e-15,  // 64-input OR-tree
		IntegrateCycles:  3,       // analog settle + transfer + sample
		SyncCyclesPerNC:  2,       // poll + arm per 8-flag group
		BusWordsPerCycle: 8,       // 512-bit global bus

		CMOSClockHz:      1e9,
		CoreOp:           1.2e-12, // 4-bit accumulate + pipeline overhead
		FIFOAccess:       0.5e-12,
		NeuronUnitUpdate: 6e-12, // 16-bit Vmem SRAM read-modify-write
		BitRefWidth:      4,
		CoreBitExp:       1.25,
	}
}

// CoreOpAt returns the baseline per-op core energy at the given weight
// precision.
func (p Params) CoreOpAt(bits int) float64 {
	return p.CoreOp * math.Pow(float64(bits)/float64(p.BitRefWidth), p.CoreBitExp)
}

// NCCycle returns the NeuroCell cycle time in seconds.
func (p Params) NCCycle() float64 { return 1 / p.NCClockHz }

// CMOSCycle returns the baseline cycle time in seconds.
func (p Params) CMOSCycle() float64 { return 1 / p.CMOSClockHz }

// SRAM is the CACTI-style analytic memory model: access energy and leakage
// power scale with capacity by the usual sub-linear/near-linear exponents.
// Reference point: a 32 KiB, 64-bit-word array at 45 nm.
type SRAM struct {
	Bytes    int
	WordBits int
}

// Reference constants for the 32 KiB anchor array.
const (
	sramRefBytes   = 32 * 1024
	sramRefAccess  = 15e-12  // J per 64-bit access
	sramRefLeakage = 0.58e-3 // W
	sramAccessExp  = 0.55    // access energy vs capacity
	sramLeakExp    = 0.97    // leakage vs capacity
	sramRefLatency = 1.2e-9  // s
	sramLatencyExp = 0.35
)

// NewSRAM returns a memory model of the given capacity with 64-bit words.
func NewSRAM(bytes int) SRAM {
	if bytes <= 0 {
		panic(fmt.Sprintf("energy: SRAM size %d", bytes))
	}
	return SRAM{Bytes: bytes, WordBits: 64}
}

func (s SRAM) ratio() float64 { return float64(s.Bytes) / sramRefBytes }

// AccessEnergy returns the energy of one word read or write.
func (s SRAM) AccessEnergy() float64 {
	return sramRefAccess * math.Pow(s.ratio(), sramAccessExp)
}

// LeakagePower returns the standby leakage power in watts.
func (s SRAM) LeakagePower() float64 {
	return sramRefLeakage * math.Pow(s.ratio(), sramLeakExp)
}

// AccessLatency returns the read latency in seconds.
func (s SRAM) AccessLatency() float64 {
	return sramRefLatency * math.Pow(s.ratio(), sramLatencyExp)
}

// WordsFor returns how many memory words hold n items of the given bit
// width (items are packed, never split across words).
func (s SRAM) WordsFor(items, bits int) int {
	if bits <= 0 || bits > s.WordBits {
		panic(fmt.Sprintf("energy: item width %d", bits))
	}
	perWord := s.WordBits / bits
	return (items + perWord - 1) / perWord
}

// Metrics are the published implementation numbers used as calibration
// anchors (paper Figs 8 and 9).
type Metrics struct {
	FeatureNM int
	AreaMM2   float64
	PowerMW   float64
	GateCount int
	FreqMHz   int
}

// NeuroCellMetrics reproduces Fig 8's metrics table for one NeuroCell.
func NeuroCellMetrics() Metrics {
	return Metrics{FeatureNM: 45, AreaMM2: 0.29, PowerMW: 53.2, GateCount: 67643, FreqMHz: 200}
}

// BaselineMetrics reproduces Fig 9's metrics table for the CMOS baseline.
func BaselineMetrics() Metrics {
	return Metrics{FeatureNM: 45, AreaMM2: 0.19, PowerMW: 35.1, GateCount: 44798, FreqMHz: 1000}
}

// NeuroCellParams reproduces Fig 8's micro-architectural parameter table.
type NeuroCellParams struct {
	ArchitectureBits int
	NCDim            int // NC is NCDim x NCDim mPEs
	MPEs             int
	Switches         int
	MCAsPerMPE       int
}

// DefaultNeuroCellParams returns Fig 8's values: 64-bit architecture, 4x4
// NC, 16 mPEs, 9 switches, 4 MCAs per mPE.
func DefaultNeuroCellParams() NeuroCellParams {
	return NeuroCellParams{ArchitectureBits: 64, NCDim: 4, MPEs: 16, Switches: 9, MCAsPerMPE: 4}
}

// BaselineParams reproduces Fig 9's micro-architectural parameter table.
type BaselineParams struct {
	NeuronUnits int
	InputFIFOs  int
	WeightFIFOs int
	FIFODepth   int
	FIFOWidth   int // bits
	NUWidth     int // bits
}

// DefaultBaselineParams returns Fig 9's values: 16 NUs, 16 input FIFOs, one
// weight FIFO, depth 32, width 4.
func DefaultBaselineParams() BaselineParams {
	return BaselineParams{NeuronUnits: 16, InputFIFOs: 16, WeightFIFOs: 1, FIFODepth: 32, FIFOWidth: 4, NUWidth: 4}
}
