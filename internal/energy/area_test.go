package energy

import (
	"math"
	"testing"
)

func TestCellAreaGrowsWithBits(t *testing.T) {
	a := DefaultAreaParams()
	c4 := a.CellArea(4)
	c8 := a.CellArea(8)
	if c8 <= c4 {
		t.Fatal("multi-level cells must be larger")
	}
	// Below the reference precision the pitch does not shrink.
	if a.CellArea(1) != c4 || a.CellArea(2) != c4 {
		t.Fatal("sub-reference precision should keep the 4F² pitch")
	}
	// 4F² + pair at 45nm: 8 * (45nm)^2 = 1.62e-14 m².
	want := 8 * 45e-9 * 45e-9
	if math.Abs(c4-want) > 1e-20 {
		t.Fatalf("base cell %g, want %g", c4, want)
	}
}

func TestMCAAndChipArea(t *testing.T) {
	a := DefaultAreaParams()
	mca := a.MCAArea(64, 4)
	if mca != 64*64*a.CellArea(4) {
		t.Fatal("MCA area wrong")
	}
	// One NeuroCell with 64 crossbars: peripherals dominate (the paper's
	// 0.29 mm² is CMOS only; crossbars are tiny in comparison).
	chip := a.ChipArea(1, 64, 64, 4)
	if chip <= a.NCPeripheralM2 {
		t.Fatal("chip must include peripherals")
	}
	if mca*64 > 0.2*a.NCPeripheralM2 {
		t.Fatalf("crossbars (%g) should be small next to peripherals (%g)", mca*64, a.NCPeripheralM2)
	}
	if MM2(a.NCPeripheralM2) != 0.29 {
		t.Fatalf("anchor %v mm², want 0.29", MM2(a.NCPeripheralM2))
	}
}

func TestAreaOverheadVsBits(t *testing.T) {
	a := DefaultAreaParams()
	// §5.4: higher precision costs area, not energy.
	r4 := a.AreaOverheadVsBits(8, 500, 64, 4)
	r8 := a.AreaOverheadVsBits(8, 500, 64, 8)
	if math.Abs(r4-1) > 1e-12 {
		t.Fatalf("4-bit overhead %v, want 1", r4)
	}
	if r8 <= 1 {
		t.Fatalf("8-bit overhead %v, want > 1", r8)
	}
	// Overhead stays modest because peripherals dominate.
	if r8 > 1.5 {
		t.Fatalf("8-bit overhead %v implausibly large", r8)
	}
}

func TestAreaValidation(t *testing.T) {
	a := DefaultAreaParams()
	for _, f := range []func(){
		func() { a.CellArea(0) },
		func() { a.MCAArea(0, 4) },
		func() { a.ChipArea(-1, 0, 64, 4) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}
