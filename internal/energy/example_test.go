package energy_test

import (
	"fmt"

	"resparc/internal/energy"
)

// The CACTI-style SRAM model: access energy grows sublinearly with
// capacity, leakage nearly linearly — the scaling behind the CMOS
// baseline's memory domination on MLPs (Fig 12b).
func ExampleSRAM() {
	small := energy.NewSRAM(32 * 1024)
	big := energy.NewSRAM(1024 * 1024)
	fmt.Printf("access: %.1fx  leakage: %.1fx for 32x the capacity\n",
		big.AccessEnergy()/small.AccessEnergy(),
		big.LeakagePower()/small.LeakagePower())
	// Output:
	// access: 6.7x  leakage: 28.8x for 32x the capacity
}

// Fig 8's published implementation metrics anchor the calibration.
func ExampleNeuroCellMetrics() {
	m := energy.NeuroCellMetrics()
	fmt.Printf("%d nm, %.2f mm2, %.1f mW @ %d MHz\n", m.FeatureNM, m.AreaMM2, m.PowerMW, m.FreqMHz)
	// Output:
	// 45 nm, 0.29 mm2, 53.2 mW @ 200 MHz
}
