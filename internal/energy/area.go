package energy

import (
	"fmt"
	"math"
)

// Area model. The paper notes (§5.4) that while RESPARC's energy is
// independent of weight precision, "the area of the memristive device will
// increase with increasing precision that will increase the MCA area
// resulting in an area overhead". This first-order model quantifies that
// trade-off, anchored to Fig 8's published NeuroCell area (0.29 mm² of
// 45 nm CMOS peripherals).

// AreaParams holds the silicon-area constants.
type AreaParams struct {
	// FeatureM is the feature size F in meters (45 nm).
	FeatureM float64
	// CellF2 is the cross-point cell footprint in F² units; a 1T1R
	// memristor cell is ~4F², and the differential pair doubles it.
	CellF2 float64
	// BitRef is the precision the base cell is specified at (4 bits).
	BitRef int
	// CellBitGrowth is the fractional cell-area growth per additional
	// weight bit beyond BitRef (multi-level cells need larger devices and
	// tighter write/verify margins, [16]).
	CellBitGrowth float64
	// NCPeripheralM2 is the CMOS area of one NeuroCell's peripherals
	// (buffers, switches, control) — Fig 8's 0.29 mm².
	NCPeripheralM2 float64
}

// DefaultAreaParams returns the 45 nm anchor values.
func DefaultAreaParams() AreaParams {
	return AreaParams{
		FeatureM:       45e-9,
		CellF2:         8, // 4F² device + differential pair
		BitRef:         4,
		CellBitGrowth:  0.35,
		NCPeripheralM2: 0.29e-6, // 0.29 mm² in m²
	}
}

// CellArea returns one logical cross-point's area in m² at the given weight
// precision.
func (a AreaParams) CellArea(bits int) float64 {
	if bits < 1 {
		panic(fmt.Sprintf("energy: bits %d", bits))
	}
	base := a.CellF2 * a.FeatureM * a.FeatureM
	extra := float64(bits - a.BitRef)
	if extra < 0 {
		extra = 0 // smaller devices don't shrink the pitch below 4F²
	}
	return base * (1 + a.CellBitGrowth*extra)
}

// MCAArea returns the area of one n x n crossbar at the given precision.
func (a AreaParams) MCAArea(n, bits int) float64 {
	if n < 1 {
		panic(fmt.Sprintf("energy: MCA size %d", n))
	}
	return float64(n) * float64(n) * a.CellArea(bits)
}

// ChipArea returns the total silicon area of a RESPARC configuration:
// NeuroCell peripherals plus all crossbars.
func (a AreaParams) ChipArea(ncs, mcas, mcaSize, bits int) float64 {
	if ncs < 0 || mcas < 0 {
		panic("energy: negative chip dimensions")
	}
	return float64(ncs)*a.NCPeripheralM2 + float64(mcas)*a.MCAArea(mcaSize, bits)
}

// MM2 converts m² to mm² for reporting.
func MM2(m2 float64) float64 { return m2 * 1e6 }

// AreaOverheadVsBits returns the chip-area ratio at the given precision
// relative to the 4-bit reference configuration — the §5.4 trade-off in one
// number.
func (a AreaParams) AreaOverheadVsBits(ncs, mcas, mcaSize, bits int) float64 {
	ref := a.ChipArea(ncs, mcas, mcaSize, a.BitRef)
	if ref == 0 {
		return math.NaN()
	}
	return a.ChipArea(ncs, mcas, mcaSize, bits) / ref
}
