package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestVecDot(t *testing.T) {
	v := Vec{1, 2, 3}
	w := Vec{4, 5, 6}
	if got := v.Dot(w); got != 32 {
		t.Fatalf("Dot = %v, want 32", got)
	}
}

func TestVecDotMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on length mismatch")
		}
	}()
	Vec{1}.Dot(Vec{1, 2})
}

func TestVecAddScaled(t *testing.T) {
	v := Vec{1, 2}
	v.AddScaled(2, Vec{10, 20})
	if v[0] != 21 || v[1] != 42 {
		t.Fatalf("AddScaled = %v", v)
	}
}

func TestVecScaleFillSum(t *testing.T) {
	v := NewVec(3)
	v.Fill(2)
	v.Scale(3)
	if v.Sum() != 18 {
		t.Fatalf("Sum = %v, want 18", v.Sum())
	}
}

func TestVecMaxArgMax(t *testing.T) {
	v := Vec{-1, 5, 3, 5}
	if v.Max() != 5 {
		t.Fatalf("Max = %v", v.Max())
	}
	if v.ArgMax() != 1 {
		t.Fatalf("ArgMax = %v, want 1 (first max)", v.ArgMax())
	}
	var empty Vec
	if empty.ArgMax() != -1 {
		t.Fatalf("empty ArgMax = %v, want -1", empty.ArgMax())
	}
	if !math.IsInf(empty.Max(), -1) {
		t.Fatalf("empty Max = %v, want -Inf", empty.Max())
	}
}

func TestVecCountNonZero(t *testing.T) {
	v := Vec{0, 1e-12, -3, 0.5}
	if got := v.CountNonZero(1e-9); got != 2 {
		t.Fatalf("CountNonZero = %d, want 2", got)
	}
}

func TestVecClone(t *testing.T) {
	v := Vec{1, 2}
	w := v.Clone()
	w[0] = 99
	if v[0] != 1 {
		t.Fatal("Clone aliases original")
	}
}

func TestMatAtSetRow(t *testing.T) {
	m := NewMat(2, 3)
	m.Set(1, 2, 7)
	if m.At(1, 2) != 7 {
		t.Fatalf("At = %v", m.At(1, 2))
	}
	row := m.Row(1)
	if row[2] != 7 {
		t.Fatalf("Row aliasing broken: %v", row)
	}
	row[0] = 5
	if m.At(1, 0) != 5 {
		t.Fatal("Row must alias the matrix storage")
	}
}

func TestMatMulVec(t *testing.T) {
	m := NewMat(2, 3)
	copy(m.Data, Vec{1, 2, 3, 4, 5, 6})
	out := m.MulVec(Vec{1, 1, 1}, nil)
	if out[0] != 6 || out[1] != 15 {
		t.Fatalf("MulVec = %v", out)
	}
}

func TestMatMulVecT(t *testing.T) {
	m := NewMat(2, 3)
	copy(m.Data, Vec{1, 2, 3, 4, 5, 6})
	out := m.MulVecT(Vec{1, 2}, nil)
	want := Vec{9, 12, 15}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("MulVecT = %v, want %v", out, want)
		}
	}
}

// Property: for random matrices, x^T (A y) == (A^T x)^T y — MulVec and
// MulVecT are adjoint.
func TestMulVecAdjointProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rows, cols := 1+rng.Intn(8), 1+rng.Intn(8)
		m := NewMat(rows, cols)
		for i := range m.Data {
			m.Data[i] = rng.NormFloat64()
		}
		x, y := NewVec(rows), NewVec(cols)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		for i := range y {
			y[i] = rng.NormFloat64()
		}
		lhs := x.Dot(m.MulVec(y, nil))
		rhs := m.MulVecT(x, nil).Dot(y)
		return almostEqual(lhs, rhs, 1e-9*(1+math.Abs(lhs)))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMatMaxAbs(t *testing.T) {
	m := NewMat(1, 3)
	copy(m.Data, Vec{-4, 2, 3})
	if m.MaxAbs() != 4 {
		t.Fatalf("MaxAbs = %v", m.MaxAbs())
	}
}

func TestMatClone(t *testing.T) {
	m := NewMat(1, 2)
	m.Set(0, 0, 1)
	c := m.Clone()
	c.Set(0, 0, 9)
	if m.At(0, 0) != 1 {
		t.Fatal("Clone aliases original")
	}
}

func TestShape3(t *testing.T) {
	s := Shape3{H: 4, W: 5, C: 3}
	if s.Size() != 60 {
		t.Fatalf("Size = %d", s.Size())
	}
	if s.Index(1, 2, 1) != (1*5+2)*3+1 {
		t.Fatalf("Index = %d", s.Index(1, 2, 1))
	}
	if !s.Valid() || (Shape3{}).Valid() {
		t.Fatal("Valid wrong")
	}
	if s.String() != "4x5x3" {
		t.Fatalf("String = %q", s.String())
	}
}

func TestConvGeomOutShape(t *testing.T) {
	g := ConvGeom{In: Shape3{H: 28, W: 28, C: 1}, K: 5, Stride: 1, Pad: 0, OutC: 12}
	out, err := g.OutShape()
	if err != nil {
		t.Fatal(err)
	}
	if out.H != 24 || out.W != 24 || out.C != 12 {
		t.Fatalf("OutShape = %v", out)
	}
	if g.FanIn() != 25 {
		t.Fatalf("FanIn = %d", g.FanIn())
	}
	conns, err := g.Connections()
	if err != nil {
		t.Fatal(err)
	}
	if conns != 24*24*12*25 {
		t.Fatalf("Connections = %d", conns)
	}
}

func TestConvGeomPadding(t *testing.T) {
	g := ConvGeom{In: Shape3{H: 8, W: 8, C: 2}, K: 3, Stride: 1, Pad: 1, OutC: 4}
	out, err := g.OutShape()
	if err != nil {
		t.Fatal(err)
	}
	if out.H != 8 || out.W != 8 {
		t.Fatalf("same-padding OutShape = %v", out)
	}
}

func TestConvGeomBad(t *testing.T) {
	bad := []ConvGeom{
		{In: Shape3{H: 2, W: 2, C: 1}, K: 5, Stride: 1, OutC: 1}, // kernel larger than input
		{In: Shape3{H: 8, W: 8, C: 1}, K: 0, Stride: 1, OutC: 1},
		{In: Shape3{H: 8, W: 8, C: 1}, K: 3, Stride: 0, OutC: 1},
		{In: Shape3{H: 8, W: 8, C: 1}, K: 3, Stride: 1, OutC: 0},
		{In: Shape3{}, K: 3, Stride: 1, OutC: 1},
	}
	for i, g := range bad {
		if _, err := g.OutShape(); err == nil {
			t.Fatalf("case %d: expected error for %+v", i, g)
		}
		if _, err := g.Connections(); err == nil {
			t.Fatalf("case %d: Connections expected error", i)
		}
		if err := g.ForEachTap(func(_, _, _ int) {}); err == nil {
			t.Fatalf("case %d: ForEachTap expected error", i)
		}
	}
}

// Property: ForEachTap visits exactly Connections() taps, each output neuron
// gets exactly FanIn() taps, and every in-bounds inIdx is valid.
func TestForEachTapProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := ConvGeom{
			In:     Shape3{H: 3 + rng.Intn(6), W: 3 + rng.Intn(6), C: 1 + rng.Intn(3)},
			K:      1 + rng.Intn(3),
			Stride: 1 + rng.Intn(2),
			Pad:    rng.Intn(2),
			OutC:   1 + rng.Intn(4),
		}
		out, err := g.OutShape()
		if err != nil {
			return true // skip inconsistent random geometry
		}
		conns, _ := g.Connections()
		perOut := make(map[int]int)
		total := 0
		okIdx := true
		err = g.ForEachTap(func(outIdx, inIdx, kIdx int) {
			total++
			perOut[outIdx]++
			if outIdx < 0 || outIdx >= out.Size() {
				okIdx = false
			}
			if inIdx >= g.In.Size() {
				okIdx = false
			}
			if kIdx < 0 || kIdx >= g.K*g.K*g.In.C {
				okIdx = false
			}
		})
		if err != nil || !okIdx || total != conns {
			return false
		}
		for _, n := range perOut {
			if n != g.FanIn() {
				return false
			}
		}
		return len(perOut) == out.Size()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestMulVecReuseBuffer(t *testing.T) {
	m := NewMat(2, 2)
	copy(m.Data, Vec{1, 0, 0, 1})
	buf := NewVec(2)
	out := m.MulVec(Vec{3, 4}, buf)
	if &out[0] != &buf[0] {
		t.Fatal("MulVec must reuse the provided buffer")
	}
	if out[0] != 3 || out[1] != 4 {
		t.Fatalf("identity MulVec = %v", out)
	}
}

func TestMulVecBadOutput(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for wrong output length")
		}
	}()
	m := NewMat(2, 2)
	m.MulVec(NewVec(2), NewVec(3))
}

func TestVecAdd(t *testing.T) {
	// Length 7 exercises both the unrolled body and the tail.
	v := Vec{1, 2, 3, 4, 5, 6, 7}
	w := Vec{10, 20, 30, 40, 50, 60, 70}
	v.Add(w)
	want := Vec{11, 22, 33, 44, 55, 66, 77}
	for i := range want {
		if v[i] != want[i] {
			t.Fatalf("Add[%d] = %v, want %v", i, v[i], want[i])
		}
	}
}

func TestVecAddMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for length mismatch")
		}
	}()
	NewVec(3).Add(NewVec(4))
}

func TestMatTranspose(t *testing.T) {
	m := NewMat(2, 3)
	copy(m.Data, Vec{1, 2, 3, 4, 5, 6})
	tr := m.Transpose()
	if tr.Rows != 3 || tr.Cols != 2 {
		t.Fatalf("transpose shape %dx%d", tr.Rows, tr.Cols)
	}
	for r := 0; r < m.Rows; r++ {
		for c := 0; c < m.Cols; c++ {
			if m.At(r, c) != tr.At(c, r) {
				t.Fatalf("transpose[%d][%d] = %v, want %v", c, r, tr.At(c, r), m.At(r, c))
			}
		}
	}
	// The transpose owns fresh storage.
	tr.Set(0, 0, 99)
	if m.At(0, 0) == 99 {
		t.Fatal("Transpose must not alias the source")
	}
}

func TestMatAddRowMatchesColumnWalk(t *testing.T) {
	m := NewMat(3, 5)
	for i := range m.Data {
		m.Data[i] = float64(i) * 0.5
	}
	tr := m.Transpose()
	// Accumulating row i of M^T must equal adding column i of M.
	for i := 0; i < m.Cols; i++ {
		got := NewVec(m.Rows)
		tr.AddRow(i, got)
		for r := 0; r < m.Rows; r++ {
			if got[r] != m.At(r, i) {
				t.Fatalf("AddRow(%d)[%d] = %v, want %v", i, r, got[r], m.At(r, i))
			}
		}
	}
}

// GatherCol/ScatterCol round-trip one column window of a matrix and leave
// every other element untouched.
func TestMatGatherScatterCol(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := NewMat(9, 4)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	orig := m.Clone()
	buf := make([]float64, 5)
	m.GatherCol(2, 3, buf)
	for i, x := range buf {
		if x != m.At(3+i, 2) {
			t.Fatalf("GatherCol[%d] = %v, want %v", i, x, m.At(3+i, 2))
		}
	}
	for i := range buf {
		buf[i] += 1.5
	}
	m.ScatterCol(2, 3, buf)
	for r := 0; r < m.Rows; r++ {
		for c := 0; c < m.Cols; c++ {
			want := orig.At(r, c)
			if c == 2 && r >= 3 && r < 8 {
				want += 1.5
			}
			if m.At(r, c) != want {
				t.Fatalf("after ScatterCol, (%d,%d) = %v, want %v", r, c, m.At(r, c), want)
			}
		}
	}
}
