// Package tensor provides the minimal dense linear-algebra substrate used by
// the ANN trainer, the SNN functional model and the RESPARC mapper: vectors,
// row-major matrices and the convolution index arithmetic shared by the
// convolutional layers and the sparse crossbar mapper.
//
// The package is deliberately small and allocation-conscious; it is not a
// general numeric library. All matrices are dense float64 in row-major
// order.
package tensor

import (
	"errors"
	"fmt"
	"math"
)

// Vec is a dense float64 vector.
type Vec []float64

// NewVec returns a zero vector of length n.
func NewVec(n int) Vec { return make(Vec, n) }

// Clone returns a copy of v.
func (v Vec) Clone() Vec {
	out := make(Vec, len(v))
	copy(out, v)
	return out
}

// Fill sets every element of v to x.
func (v Vec) Fill(x float64) {
	for i := range v {
		v[i] = x
	}
}

// Dot returns the inner product of v and w. It panics if lengths differ,
// since a length mismatch is always a programming error in this codebase.
func (v Vec) Dot(w Vec) float64 {
	if len(v) != len(w) {
		panic(fmt.Sprintf("tensor: Dot length mismatch %d vs %d", len(v), len(w)))
	}
	var s float64
	for i, x := range v {
		s += x * w[i]
	}
	return s
}

// AddScaled adds alpha*w to v in place.
func (v Vec) AddScaled(alpha float64, w Vec) {
	if len(v) != len(w) {
		panic(fmt.Sprintf("tensor: AddScaled length mismatch %d vs %d", len(v), len(w)))
	}
	for i := range v {
		v[i] += alpha * w[i]
	}
}

// Add accumulates w into v in place (v += w). This is the fused kernel on
// the event-driven hot path: one call per input spike accumulates a
// contiguous weight row into the membrane-potential vector, so the loop is
// unrolled to keep the accumulation stream dense.
func (v Vec) Add(w Vec) {
	if len(v) != len(w) {
		panic(fmt.Sprintf("tensor: Add length mismatch %d vs %d", len(v), len(w)))
	}
	n := len(v) &^ 3
	for i := 0; i < n; i += 4 {
		v[i] += w[i]
		v[i+1] += w[i+1]
		v[i+2] += w[i+2]
		v[i+3] += w[i+3]
	}
	for i := n; i < len(v); i++ {
		v[i] += w[i]
	}
}

// Scale multiplies every element of v by alpha in place.
func (v Vec) Scale(alpha float64) {
	for i := range v {
		v[i] *= alpha
	}
}

// Sum returns the sum of the elements of v.
func (v Vec) Sum() float64 {
	var s float64
	for _, x := range v {
		s += x
	}
	return s
}

// Max returns the maximum element of v, or -Inf for an empty vector.
func (v Vec) Max() float64 {
	m := math.Inf(-1)
	for _, x := range v {
		if x > m {
			m = x
		}
	}
	return m
}

// ArgMax returns the index of the first maximum element, or -1 if v is empty.
func (v Vec) ArgMax() int {
	idx, m := -1, math.Inf(-1)
	for i, x := range v {
		if x > m {
			m, idx = x, i
		}
	}
	return idx
}

// CountNonZero returns the number of elements with |x| > eps.
func (v Vec) CountNonZero(eps float64) int {
	n := 0
	for _, x := range v {
		if math.Abs(x) > eps {
			n++
		}
	}
	return n
}

// Mat is a dense row-major matrix with Rows x Cols elements.
type Mat struct {
	Rows, Cols int
	Data       Vec // len == Rows*Cols, row-major
}

// NewMat returns a zeroed Rows x Cols matrix.
func NewMat(rows, cols int) *Mat {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("tensor: NewMat negative dims %dx%d", rows, cols))
	}
	return &Mat{Rows: rows, Cols: cols, Data: NewVec(rows * cols)}
}

// At returns the element at row r, column c.
func (m *Mat) At(r, c int) float64 { return m.Data[r*m.Cols+c] }

// Set stores x at row r, column c.
func (m *Mat) Set(r, c int, x float64) { m.Data[r*m.Cols+c] = x }

// Row returns the r-th row as a slice aliasing the matrix storage.
func (m *Mat) Row(r int) Vec { return m.Data[r*m.Cols : (r+1)*m.Cols] }

// Clone returns a deep copy of m.
func (m *Mat) Clone() *Mat {
	return &Mat{Rows: m.Rows, Cols: m.Cols, Data: m.Data.Clone()}
}

// AddRow accumulates row r into v in place (v += m[r][:]). Because rows are
// contiguous in the row-major layout, this is a single streaming pass — the
// cache-friendly primitive behind the SNN simulator's transposed-weight
// integration.
func (m *Mat) AddRow(r int, v Vec) {
	v.Add(m.Row(r))
}

// Transpose returns a new Cols x Rows matrix with m's elements flipped
// across the diagonal. The SNN simulator caches W^T per dense layer so each
// input spike accumulates one contiguous row instead of striding down a
// column.
func (m *Mat) Transpose() *Mat {
	t := NewMat(m.Cols, m.Rows)
	for r := 0; r < m.Rows; r++ {
		row := m.Row(r)
		for c, x := range row {
			t.Data[c*m.Rows+r] = x
		}
	}
	return t
}

// MulVec computes out = m * x where x has length Cols and out has length
// Rows. out may be nil, in which case a new vector is allocated.
func (m *Mat) MulVec(x, out Vec) Vec {
	if len(x) != m.Cols {
		panic(fmt.Sprintf("tensor: MulVec input length %d != cols %d", len(x), m.Cols))
	}
	if out == nil {
		out = NewVec(m.Rows)
	}
	if len(out) != m.Rows {
		panic(fmt.Sprintf("tensor: MulVec output length %d != rows %d", len(out), m.Rows))
	}
	for r := 0; r < m.Rows; r++ {
		out[r] = m.Row(r).Dot(x)
	}
	return out
}

// MulVecT computes out = m^T * x where x has length Rows and out has length
// Cols; used for backpropagation. out may be nil.
func (m *Mat) MulVecT(x, out Vec) Vec {
	if len(x) != m.Rows {
		panic(fmt.Sprintf("tensor: MulVecT input length %d != rows %d", len(x), m.Rows))
	}
	if out == nil {
		out = NewVec(m.Cols)
	}
	if len(out) != m.Cols {
		panic(fmt.Sprintf("tensor: MulVecT output length %d != cols %d", len(out), m.Cols))
	}
	out.Fill(0)
	for r := 0; r < m.Rows; r++ {
		row := m.Row(r)
		xr := x[r]
		if xr == 0 {
			continue
		}
		for c, w := range row {
			out[c] += w * xr
		}
	}
	return out
}

// GatherCol copies rows [r0, r0+len(dst)) of column c into dst. The
// batch-major SNN runner keeps membrane potentials as a neurons x B matrix
// (one column per image); this is the strided load that pulls one image's
// lane-group potentials into a register-resident accumulator before a block
// of timesteps.
func (m *Mat) GatherCol(c, r0 int, dst []float64) {
	for i := range dst {
		dst[i] = m.Data[(r0+i)*m.Cols+c]
	}
}

// ScatterCol stores src into rows [r0, r0+len(src)) of column c — the
// write-back counterpart of GatherCol.
func (m *Mat) ScatterCol(c, r0 int, src []float64) {
	for i, x := range src {
		m.Data[(r0+i)*m.Cols+c] = x
	}
}

// MaxAbs returns the maximum absolute value in m.
func (m *Mat) MaxAbs() float64 {
	var mx float64
	for _, x := range m.Data {
		if a := math.Abs(x); a > mx {
			mx = a
		}
	}
	return mx
}

// ErrShape reports incompatible shapes in the few APIs that return errors
// rather than panicking (those reachable from user-supplied descriptions).
var ErrShape = errors.New("tensor: incompatible shape")

// Shape3 describes a height x width x channels volume, the unit of data
// between CNN layers. Channel-minor layout: index = (y*W + x)*C + c.
type Shape3 struct {
	H, W, C int
}

// Size returns the number of elements in the volume.
func (s Shape3) Size() int { return s.H * s.W * s.C }

// Index returns the linear index for (y, x, c).
func (s Shape3) Index(y, x, c int) int { return (y*s.W+x)*s.C + c }

// Valid reports whether every dimension is positive.
func (s Shape3) Valid() bool { return s.H > 0 && s.W > 0 && s.C > 0 }

func (s Shape3) String() string { return fmt.Sprintf("%dx%dx%d", s.H, s.W, s.C) }

// ConvGeom captures the geometry of one convolution (or pooling) layer:
// input volume, square kernel K, stride S, symmetric padding P and output
// channel count OutC.
type ConvGeom struct {
	In             Shape3
	K, Stride, Pad int
	OutC           int
}

// OutShape returns the output volume, or an error if the geometry is
// inconsistent (non-positive output size).
func (g ConvGeom) OutShape() (Shape3, error) {
	if !g.In.Valid() || g.K <= 0 || g.Stride <= 0 || g.Pad < 0 || g.OutC <= 0 {
		return Shape3{}, fmt.Errorf("%w: %+v", ErrShape, g)
	}
	oh := (g.In.H+2*g.Pad-g.K)/g.Stride + 1
	ow := (g.In.W+2*g.Pad-g.K)/g.Stride + 1
	if oh <= 0 || ow <= 0 {
		return Shape3{}, fmt.Errorf("%w: %+v produces %dx%d output", ErrShape, g, oh, ow)
	}
	return Shape3{H: oh, W: ow, C: g.OutC}, nil
}

// FanIn returns the number of inputs feeding one output neuron: K*K*InC.
func (g ConvGeom) FanIn() int { return g.K * g.K * g.In.C }

// Connections returns the total number of synaptic connections in the layer:
// every output location times its receptive field. Matches the synapse
// counting convention of the paper's Fig 10.
func (g ConvGeom) Connections() (int, error) {
	out, err := g.OutShape()
	if err != nil {
		return 0, err
	}
	return out.H * out.W * out.C * g.FanIn(), nil
}

// ForEachTap calls fn(outIdx, inIdx, kIdx) for every (output neuron, input
// neuron) connection of the convolution. Taps that fall in the zero padding
// are reported with inIdx == -1 so callers can skip them. kIdx is the index
// into the kernel weights of the output channel: (ky*K + kx)*InC + ic.
//
// This single walker is shared by the conv forward/backward passes, the SNN
// functional model and the sparse crossbar mapper, guaranteeing they all see
// the identical connectivity matrix.
func (g ConvGeom) ForEachTap(fn func(outIdx, inIdx, kIdx int)) error {
	out, err := g.OutShape()
	if err != nil {
		return err
	}
	for oy := 0; oy < out.H; oy++ {
		for ox := 0; ox < out.W; ox++ {
			for oc := 0; oc < out.C; oc++ {
				outIdx := out.Index(oy, ox, oc)
				for ky := 0; ky < g.K; ky++ {
					iy := oy*g.Stride + ky - g.Pad
					for kx := 0; kx < g.K; kx++ {
						ix := ox*g.Stride + kx - g.Pad
						for ic := 0; ic < g.In.C; ic++ {
							kIdx := (ky*g.K+kx)*g.In.C + ic
							if iy < 0 || iy >= g.In.H || ix < 0 || ix >= g.In.W {
								fn(outIdx, -1, kIdx)
								continue
							}
							fn(outIdx, g.In.Index(iy, ix, ic), kIdx)
						}
					}
				}
			}
		}
	}
	return nil
}
