package neurocell

import (
	"errors"
	"math/rand"
	"reflect"
	"testing"
)

func evTransfers(t *testing.T, dim int, pattern string, n int, seed int64) []Transfer {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	mpes := dim * dim
	out := make([]Transfer, n)
	for i := range out {
		switch pattern {
		case "neighbor":
			src := rng.Intn(mpes)
			out[i] = Transfer{SrcMPE: src, DstMPE: (src + 1) % mpes}
		case "random":
			out[i] = Transfer{SrcMPE: rng.Intn(mpes), DstMPE: rng.Intn(mpes)}
		case "hotspot":
			out[i] = Transfer{SrcMPE: rng.Intn(mpes), DstMPE: 0}
		default:
			t.Fatalf("unknown pattern %q", pattern)
		}
	}
	return out
}

// TestEventSteppedDeliveredEquivalence is the satellite equivalence check:
// on a live topology both engines deliver every injected packet, for every
// traffic pattern.
func TestEventSteppedDeliveredEquivalence(t *testing.T) {
	for _, pattern := range []string{"neighbor", "random", "hotspot"} {
		for _, count := range []int{1, 9, 72, 200} {
			tr := evTransfers(t, 4, pattern, count, 7)
			stepNet, err := NewSwitchNet(4)
			if err != nil {
				t.Fatal(err)
			}
			st, err := stepNet.Simulate(tr)
			if err != nil {
				t.Fatalf("%s/%d stepped: %v", pattern, count, err)
			}
			evNet, err := NewSwitchNet(4)
			if err != nil {
				t.Fatal(err)
			}
			ev, err := evNet.SimulateEvent(tr, EventOptions{})
			if err != nil {
				t.Fatalf("%s/%d event: %v", pattern, count, err)
			}
			if ev.Delivered != st.Delivered || ev.Delivered != count {
				t.Errorf("%s/%d: delivered event=%d stepped=%d want %d",
					pattern, count, ev.Delivered, st.Delivered, count)
			}
			if ev.Dropped != 0 || st.Dropped != 0 {
				t.Errorf("%s/%d: dropped event=%d stepped=%d on live topology",
					pattern, count, ev.Dropped, st.Dropped)
			}
			if ev.Cycles < evNet.IdealCycles(count) {
				t.Errorf("%s/%d: event cycles %d below ideal bound %d",
					pattern, count, ev.Cycles, evNet.IdealCycles(count))
			}
		}
	}
}

// TestEventDeterministic: the event fabric's full statistics are a pure
// function of the transfer list.
func TestEventDeterministic(t *testing.T) {
	tr := evTransfers(t, 4, "random", 150, 3)
	var ref SwitchStats
	for i := 0; i < 3; i++ {
		n, err := NewSwitchNet(4)
		if err != nil {
			t.Fatal(err)
		}
		st, err := n.SimulateEvent(tr, EventOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			ref = st
			continue
		}
		if !reflect.DeepEqual(st, ref) {
			t.Fatalf("run %d stats %+v differ from first run %+v", i, st, ref)
		}
	}
}

// TestEventHotspotCongestion: all-to-one traffic must show a real gap over
// the contention-free bound, with measurable backpressure (the acceptance
// criterion behind the -fig event NoC rows).
func TestEventHotspotCongestion(t *testing.T) {
	tr := evTransfers(t, 4, "hotspot", 72, 11)
	n, err := NewSwitchNet(4)
	if err != nil {
		t.Fatal(err)
	}
	st, err := n.SimulateEvent(tr, EventOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ideal := n.IdealCycles(72)
	if st.Cycles <= 2*ideal {
		t.Fatalf("hotspot cycles %d not meaningfully above ideal %d", st.Cycles, ideal)
	}
	if st.WaitCycles == 0 {
		t.Fatal("hotspot produced zero WaitCycles — backpressure not engaging")
	}
	// Uniform neighbor traffic at the same load should flow far better.
	nb, err := NewSwitchNet(4)
	if err != nil {
		t.Fatal(err)
	}
	stNB, err := nb.SimulateEvent(evTransfers(t, 4, "neighbor", 72, 11), EventOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if stNB.Cycles >= st.Cycles {
		t.Fatalf("neighbor cycles %d >= hotspot cycles %d: congestion not pattern-sensitive",
			stNB.Cycles, st.Cycles)
	}
}

// TestEventDeadSwitchDeadlock is the satellite dead-switch test for the
// event engine: traffic routed toward a dead switch backs up behind it and
// the run reports a typed deadlock instead of silently dropping.
func TestEventDeadSwitchDeadlock(t *testing.T) {
	n, err := NewSwitchNet(4)
	if err != nil {
		t.Fatal(err)
	}
	// mPE 15 attaches to switch 8 (bottom-right corner); kill it and send
	// traffic there from the opposite corner.
	n.KillSwitch(8)
	tr := []Transfer{
		{SrcMPE: 0, DstMPE: 15},
		{SrcMPE: 1, DstMPE: 15},
		{SrcMPE: 0, DstMPE: 5}, // deliverable traffic still completes
	}
	st, err := n.SimulateEvent(tr, EventOptions{})
	var dl *DeadlockError
	if !errors.As(err, &dl) {
		t.Fatalf("err = %v, want *DeadlockError", err)
	}
	if dl.Pending != 2 {
		t.Errorf("deadlock pending = %d, want 2", dl.Pending)
	}
	if len(dl.Stuck) == 0 {
		t.Error("deadlock reports no stuck switches")
	}
	for _, s := range dl.Stuck {
		if s == 8 {
			t.Error("flits queued inside the dead switch; they must stall upstream")
		}
	}
	if st.Delivered != 1 {
		t.Errorf("delivered = %d, want 1 (the live transfer)", st.Delivered)
	}
}

// TestEventDeadInjectionDrops: a dead injection switch drops at the port in
// both engines — the packet never enters the fabric, so no deadlock.
func TestEventDeadInjectionDrops(t *testing.T) {
	tr := []Transfer{
		{SrcMPE: 0, DstMPE: 5},  // injects at switch 0 (dead) — dropped
		{SrcMPE: 15, DstMPE: 5}, // injects at switch 8 — delivered
	}
	for _, engine := range []string{"stepped", "event"} {
		n, err := NewSwitchNet(4)
		if err != nil {
			t.Fatal(err)
		}
		n.KillSwitch(0)
		var st SwitchStats
		switch engine {
		case "stepped":
			st, err = n.Simulate(tr)
		case "event":
			st, err = n.SimulateEvent(tr, EventOptions{})
		}
		if err != nil {
			t.Fatalf("%s: %v", engine, err)
		}
		if st.Dropped != 1 || st.Delivered != 1 {
			t.Errorf("%s: dropped=%d delivered=%d, want 1/1", engine, st.Dropped, st.Delivered)
		}
	}
}

// TestSteppedDrainDeadlock covers the reworked watchdog path white-box: a
// flit parked in a dead switch's queue can never progress, and drain now
// reports a typed *DeadlockError naming the stuck switch instead of
// spinning to the watchdog bound and bailing silently.
func TestSteppedDrainDeadlock(t *testing.T) {
	n, err := NewSwitchNet(4)
	if err != nil {
		t.Fatal(err)
	}
	n.KillSwitch(4)
	n.stats = SwitchStats{Forwards: make([]int, n.Switches())}
	n.queues[4] = append(n.queues[4], flit{dst: 0})
	_, err = n.drain(1, 64)
	var dl *DeadlockError
	if !errors.As(err, &dl) {
		t.Fatalf("err = %v, want *DeadlockError", err)
	}
	if len(dl.Stuck) != 1 || dl.Stuck[0] != 4 {
		t.Errorf("stuck = %v, want [4]", dl.Stuck)
	}
	if dl.Pending != 1 {
		t.Errorf("pending = %d, want 1", dl.Pending)
	}
}

// TestSteppedWatchdogLivelock exercises the watchdog bound itself: with an
// impossibly small budget even deliverable traffic trips it, and the error
// carries the in-flight state.
func TestSteppedWatchdogLivelock(t *testing.T) {
	n, err := NewSwitchNet(4)
	if err != nil {
		t.Fatal(err)
	}
	n.stats = SwitchStats{Forwards: make([]int, n.Switches())}
	// 3 flits at one switch need 3 cycles; a watchdog of 1 must trip.
	for i := 0; i < 3; i++ {
		n.queues[0] = append(n.queues[0], flit{dst: 0})
	}
	_, err = n.drain(3, 1)
	var dl *DeadlockError
	if !errors.As(err, &dl) {
		t.Fatalf("err = %v, want *DeadlockError", err)
	}
}
