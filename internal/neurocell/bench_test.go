package neurocell

import (
	"math/rand"
	"testing"

	"resparc/internal/bitvec"
	"resparc/internal/device"
	"resparc/internal/mapping"
	"resparc/internal/mpe"
	"resparc/internal/snn"
	"resparc/internal/tensor"
	"resparc/internal/xbar"
)

func smallMLPBench(b *testing.B) *snn.Network {
	b.Helper()
	rng := rand.New(rand.NewSource(9))
	w1 := tensor.NewMat(24, 40)
	w2 := tensor.NewMat(10, 24)
	for i := range w1.Data {
		w1.Data[i] = rng.NormFloat64() * 0.3
	}
	for i := range w2.Data {
		w2.Data[i] = rng.NormFloat64() * 0.3
	}
	l1, err := snn.NewDense("h", 40, 24, w1, 1)
	if err != nil {
		b.Fatal(err)
	}
	l2, err := snn.NewDense("o", 24, 10, w2, 1)
	if err != nil {
		b.Fatal(err)
	}
	net, err := snn.NewNetwork("bench", tensor.Shape3{H: 1, W: 1, C: 40}, l1, l2)
	if err != nil {
		b.Fatal(err)
	}
	return net
}

// BenchmarkCycleStep measures one cycle-level NeuroCell timestep of a small
// MLP in Ideal mode.
func BenchmarkCycleStep(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	net := smallMLPBench(b)
	cfg := mapping.DefaultConfig()
	cfg.MCASize = 16
	cfg.Tech = device.PCM
	m, err := mapping.Map(net, cfg)
	if err != nil {
		b.Fatal(err)
	}
	sim, err := New(net, m, mpe.Ideal, xbar.Config{})
	if err != nil {
		b.Fatal(err)
	}
	in := bitvec.New(net.Input.Size())
	for i := 0; i < in.Len(); i++ {
		if rng.Float64() < 0.3 {
			in.Set(i)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim.Step(in)
	}
}

// BenchmarkSwitchNetUniform measures the packet-level fabric on uniform
// random traffic.
func BenchmarkSwitchNetUniform(b *testing.B) {
	n, err := NewSwitchNet(4)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	transfers := make([]Transfer, 128)
	for i := range transfers {
		transfers[i] = Transfer{SrcMPE: rng.Intn(16), DstMPE: rng.Intn(16)}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := n.Simulate(transfers); err != nil {
			b.Fatal(err)
		}
	}
}
