package neurocell

import (
	"fmt"

	"resparc/internal/packet"
)

// SwitchNet models the programmable-switch fabric of one NeuroCell at
// packet granularity (Fig 6): a (d-1)x(d-1) switch grid serving the d x d
// mPE array. Each switch connects to its four neighboring mPEs, and
// dedicated links join every pair of switches sharing a row or a column, so
// any two switches are at most two hops apart (one row hop plus one column
// hop) and mPEs attached to the same switch are one hop apart.
//
// Each switch forwards one packet per cycle through its decoder/arbitration
// logic; input-line buffers queue the rest (Fig 6's iData/iAddress
// buffers). The main simulators use the ideal bound ceil(packets/switches)
// per §3.1.2's "high throughput parallel transfer"; SwitchNet measures how
// close real traffic gets to that bound and is exposed through the
// contention ablation experiment.
type SwitchNet struct {
	dim   int // mPE grid dimension (4 for the Fig 8 NeuroCell)
	swDim int // switch grid dimension (dim-1)

	queues [][]flit // one FIFO per switch
	stats  SwitchStats
	// dead marks killed switches (NoC-link faults): flits entering a dead
	// switch are lost and counted in SwitchStats.Dropped.
	dead []bool
}

type flit struct {
	dst    int // destination switch
	dstMPE int
	hops   int
}

// SwitchStats summarizes one traffic simulation.
type SwitchStats struct {
	Cycles     int   // cycles until every packet was delivered
	Delivered  int   // packets delivered
	Dropped    int   // packets lost to dead switches
	Hops       int   // total switch-to-switch + switch-to-mPE hops
	MaxQueue   int   // deepest input queue observed
	WaitCycles int   // cycles heads spent blocked on full downstream FIFOs (event engine only)
	Forwards   []int // per-switch forward counts (load balance)
}

// Transfer is one spike-packet movement between two mPEs of the NeuroCell
// (local ids in [0, dim*dim)).
type Transfer struct {
	SrcMPE, DstMPE int
}

// NewSwitchNet builds the fabric for a d x d mPE NeuroCell (d >= 2).
func NewSwitchNet(dim int) (*SwitchNet, error) {
	if dim < 2 {
		return nil, fmt.Errorf("neurocell: switch net needs dim >= 2, got %d", dim)
	}
	n := &SwitchNet{dim: dim, swDim: dim - 1}
	n.queues = make([][]flit, n.swDim*n.swDim)
	return n, nil
}

// Switches returns the number of switches in the fabric. For the Fig 8
// NeuroCell (4x4 mPEs) this is 9, matching the published parameter table.
func (n *SwitchNet) Switches() int { return n.swDim * n.swDim }

// KillSwitch marks a switch dead (NoC-link fault): every flit injected at,
// routed through, or destined to it is dropped and counted in
// SwitchStats.Dropped. Out-of-range ids are ignored. ReviveAll clears the
// kills.
func (n *SwitchNet) KillSwitch(sw int) {
	if sw < 0 || sw >= n.Switches() {
		return
	}
	if n.dead == nil {
		n.dead = make([]bool, n.Switches())
	}
	n.dead[sw] = true
}

// ReviveAll restores every killed switch.
func (n *SwitchNet) ReviveAll() { n.dead = nil }

func (n *SwitchNet) switchDead(sw int) bool {
	return n.dead != nil && sw >= 0 && sw < len(n.dead) && n.dead[sw]
}

// switchOf returns the primary switch an mPE attaches to: the grid corner
// switch closest to the array origin (mPE (x,y) -> switch (min(x,d-2),
// min(y,d-2))), so every switch serves its four neighboring mPEs.
func (n *SwitchNet) switchOf(mpe int) int {
	x, y := mpe%n.dim, mpe/n.dim
	sx, sy := x, y
	if sx > n.swDim-1 {
		sx = n.swDim - 1
	}
	if sy > n.swDim-1 {
		sy = n.swDim - 1
	}
	return sy*n.swDim + sx
}

// route returns the next switch on the path from s to dst: first align the
// row over the dedicated column link, then the column over the row link —
// at most two hops thanks to the full row/column connectivity.
func (n *SwitchNet) route(s, dst int) int {
	sx, sy := s%n.swDim, s/n.swDim
	dx, dy := dst%n.swDim, dst/n.swDim
	if sy != dy {
		return dy*n.swDim + sx // dedicated column link: any row in one hop
	}
	if sx != dx {
		return sy*n.swDim + dx // dedicated row link: any column in one hop
	}
	return s
}

// Simulate runs the traffic to completion and returns the statistics. All
// packets are injected at cycle zero (the worst case within one timestep's
// distribution phase). The address format of Fig 6 (SW_ID | mPE_ID |
// MCA_ID) determines routing; MCA fan-out inside the destination mPE is
// local and free.
func (n *SwitchNet) Simulate(transfers []Transfer) (SwitchStats, error) {
	for i := range n.queues {
		n.queues[i] = n.queues[i][:0]
	}
	n.stats = SwitchStats{Forwards: make([]int, n.Switches())}
	for _, t := range transfers {
		if t.SrcMPE < 0 || t.SrcMPE >= n.dim*n.dim || t.DstMPE < 0 || t.DstMPE >= n.dim*n.dim {
			return SwitchStats{}, fmt.Errorf("neurocell: transfer %+v out of the %dx%d array", t, n.dim, n.dim)
		}
		src := n.switchOf(t.SrcMPE)
		// Encode the destination in the Fig 6 address format; the wire
		// format round-trips through the packet package to keep the two
		// views consistent.
		addr := packet.Address{SW: uint8(n.switchOf(t.DstMPE)), MPE: uint8(t.DstMPE)}
		dec := packet.DecodeAddress(addr.Encode())
		if n.switchDead(src) {
			// Injection port is dead: the packet never enters the fabric.
			n.stats.Dropped++
			continue
		}
		n.queues[src] = append(n.queues[src], flit{dst: int(dec.SW), dstMPE: int(dec.MPE)})
	}
	pending := len(transfers) - n.stats.Dropped
	return n.drain(pending, 64*len(transfers)+64)
}

// drain runs the snapshot-heads loop over the pre-filled queues until the
// pending flits are delivered or dropped. It detects stalls two ways: a
// cycle in which no switch forwarded anything while flits remain pending
// (a hard deadlock — e.g. work queued behind a dead switch, whose decoder
// never forwards), and a watchdog bound on total cycles (a livelock
// backstop). Both return a *DeadlockError naming the stuck switches, with
// the partial stats accumulated so far.
func (n *SwitchNet) drain(pending, watchdog int) (SwitchStats, error) {
	for cycle := 0; pending > 0; cycle++ {
		if cycle > watchdog {
			return n.stats, &DeadlockError{
				Cycle: int64(cycle), Pending: pending, Stuck: n.stuckSwitches(),
			}
		}
		n.stats.Cycles = cycle + 1
		// Snapshot heads; each switch forwards one flit per cycle.
		type move struct {
			to   int
			f    flit
			done bool
		}
		var moves []move
		progressed := false
		for s := range n.queues {
			if n.switchDead(s) {
				// A dead switch's decoder forwards nothing; flits queued
				// there (only reachable by direct queue manipulation — the
				// injection and routing paths drop before enqueueing) stay
				// put until the stall detector below fires.
				continue
			}
			if len(n.queues[s]) > n.stats.MaxQueue {
				n.stats.MaxQueue = len(n.queues[s])
			}
			if len(n.queues[s]) == 0 {
				continue
			}
			f := n.queues[s][0]
			n.queues[s] = n.queues[s][1:]
			n.stats.Forwards[s]++
			n.stats.Hops++
			progressed = true
			if f.dst == s {
				// Egress to the destination mPE.
				moves = append(moves, move{done: true})
				continue
			}
			next := n.route(s, f.dst)
			f.hops++
			if n.switchDead(next) {
				// Next hop is dead: the flit is lost in the fabric.
				n.stats.Dropped++
				pending--
				continue
			}
			moves = append(moves, move{to: next, f: f})
		}
		if !progressed {
			return n.stats, &DeadlockError{
				Cycle: int64(cycle), Pending: pending, Stuck: n.stuckSwitches(),
			}
		}
		for _, m := range moves {
			if m.done {
				n.stats.Delivered++
				pending--
				continue
			}
			n.queues[m.to] = append(n.queues[m.to], m.f)
		}
	}
	return n.stats, nil
}

// stuckSwitches lists the switches still holding flits.
func (n *SwitchNet) stuckSwitches() []int {
	var stuck []int
	for s := range n.queues {
		if len(n.queues[s]) > 0 {
			stuck = append(stuck, s)
		}
	}
	return stuck
}

// IdealCycles is the contention-free bound the architecture model uses:
// every switch forwards one packet per cycle in parallel.
func (n *SwitchNet) IdealCycles(packets int) int {
	if packets == 0 {
		return 0
	}
	return (packets + n.Switches() - 1) / n.Switches()
}
