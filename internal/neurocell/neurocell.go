// Package neurocell implements the middle reconfigurable tier (§3.1.2): a
// pool of mPEs joined by programmable switches, simulated at cycle
// granularity. Spike packets move through the switch network (each switch
// forwards one packet per cycle; dedicated row/column links make every
// transfer one hop), MCAs whose packets arrived evaluate their column
// currents, and each output group time-multiplexes its member MCAs onto its
// neurons, one per cycle (Fig 5b). Analog currents crossing mPE boundaries
// are CCU transfers over the gated inter-mPE wires (dashed lines in Fig 3).
//
// The simulator is the golden architectural model for small networks: its
// spike output is bit-identical to the functional SNN model (internal/snn)
// in Ideal weight mode, and its event counters are the reference for the
// scalable transaction-level model in internal/core.
package neurocell

import (
	"fmt"
	"math/rand"

	"resparc/internal/bitvec"
	"resparc/internal/energy"
	"resparc/internal/mapping"
	"resparc/internal/mpe"
	"resparc/internal/snn"
	"resparc/internal/tensor"
	"resparc/internal/xbar"
)

// Stats are the raw event counts of a simulation run.
type Stats struct {
	Cycles             int // NeuroCell clock cycles
	BusWords           int // 64-bit words serialized on the global IO bus
	BusWordsSuppressed int // bus words suppressed by the SRAM zero-check
	PacketsDelivered   int // non-zero packets through the switch network
	PacketsSuppressed  int // packets suppressed by switch zero-check
	MCAActivations     int // MCA evaluations
	RowsDriven         int // total active rows over all activations
	Integrations       int // column-current integrations into neurons
	Spikes             int // output spikes generated
	ExtTransfers       int // CCU analog current transfers between mPEs
}

// Sim is a cycle-level simulation of a mapped network.
type Sim struct {
	Net  *snn.Network
	Map  *mapping.Mapping
	Mode mpe.Mode
	XCfg xbar.Config
	// IntegrateCycles is the cost of one time-multiplexed MCA integration
	// (defaults to the calibrated energy.Params value).
	IntegrateCycles int
	// SyncCyclesPerNC is the global-control event-flag cost per spanned
	// NeuroCell per layer per timestep.
	SyncCyclesPerNC int
	// BusWordsPerCycle is the global bus width in 64-bit words.
	BusWordsPerCycle int
	// Contention, when true, routes same-NeuroCell packet deliveries
	// through the packet-level switch fabric (SwitchNet) instead of the
	// ideal ceil(packets/switches) bound, charging real arbitration
	// conflicts. Deliveries whose producer lives in another NeuroCell keep
	// the ideal bound. Off by default (the transaction-level model in
	// internal/core uses the ideal bound, and the counter-equality tests
	// compare against that).
	Contention bool

	MPEs    []*mpe.MPE
	layers  []simLayer
	fabrics map[int]*SwitchNet // per-NC fabric, built on demand
	Stats   Stats
}

type group struct {
	slots    []*mpe.MCASlot
	neurons  []int32 // global postsynaptic indices (columns of the group)
	vmem     tensor.Vec
	ownerMPE int
}

type simLayer struct {
	layer  *snn.Layer
	lm     *mapping.LayerMapping
	slots  []*mpe.MCASlot
	groups []*group
	// mpeSlots groups the layer's slots by their mPE: source words are
	// delivered once per mPE and fanned out to the resident MCAs.
	mpeSlots [][]*mpe.MCASlot
	// ownerOfOut maps each of this layer's output neurons to the mPE whose
	// neuron bank computes it (the group owner) — the packet source for
	// the next layer's deliveries.
	ownerOfOut []int32
	outBuf     *bitvec.Bits
}

// New builds the simulator for a network and its mapping. In Physical mode
// each MCA is realized by a crossbar of the mapping's technology.
func New(net *snn.Network, m *mapping.Mapping, mode mpe.Mode, xcfg xbar.Config) (*Sim, error) {
	if m.Net != net {
		return nil, fmt.Errorf("neurocell: mapping belongs to a different network")
	}
	def := energy.Default45nm()
	s := &Sim{Net: net, Map: m, Mode: mode, XCfg: xcfg,
		IntegrateCycles: def.IntegrateCycles, SyncCyclesPerNC: def.SyncCyclesPerNC,
		BusWordsPerCycle: def.BusWordsPerCycle}
	s.MPEs = make([]*mpe.MPE, m.MPEs)
	for i := range s.MPEs {
		s.MPEs[i] = &mpe.MPE{ID: i}
	}
	for li := range m.Layers {
		lm := &m.Layers[li]
		size := m.LayerSize(li)
		sl := simLayer{layer: lm.Layer, lm: lm, outBuf: bitvec.New(lm.Layer.OutSize())}
		// wmax for physical programming: full-scale weight of the layer.
		wmax := 1.0
		if lm.Layer.W != nil {
			if ma := lm.Layer.W.MaxAbs(); ma > 0 {
				wmax = ma
			}
		}
		groupsByID := map[int]*group{}
		for ai := range lm.MCAs {
			alloc := &lm.MCAs[ai]
			var xb *xbar.Crossbar
			if mode == mpe.Physical {
				var err error
				xb, err = xbar.New(size, size, m.Cfg.Tech, wmax)
				if err != nil {
					return nil, err
				}
			}
			slot, err := mpe.NewSlot(lm.Layer, alloc, size, mode, xb)
			if err != nil {
				return nil, err
			}
			s.MPEs[alloc.MPE].Slots = append(s.MPEs[alloc.MPE].Slots, slot)
			sl.slots = append(sl.slots, slot)
			g, ok := groupsByID[alloc.Group]
			if !ok {
				g = &group{neurons: alloc.Outputs, ownerMPE: alloc.MPE}
				g.vmem = tensor.NewVec(len(alloc.Outputs))
				groupsByID[alloc.Group] = g
				sl.groups = append(sl.groups, g)
			}
			g.slots = append(g.slots, slot)
		}
		// Group the layer's slots by mPE for per-mPE packet delivery.
		byMPE := map[int][]*mpe.MCASlot{}
		order := []int{}
		for ai := range lm.MCAs {
			id := lm.MCAs[ai].MPE
			if _, ok := byMPE[id]; !ok {
				order = append(order, id)
			}
			byMPE[id] = append(byMPE[id], sl.slots[ai])
		}
		for _, id := range order {
			sl.mpeSlots = append(sl.mpeSlots, byMPE[id])
		}
		// Record each output neuron's owning mPE.
		sl.ownerOfOut = make([]int32, lm.Layer.OutSize())
		for _, g := range sl.groups {
			for _, n := range g.neurons {
				sl.ownerOfOut[n] = int32(g.ownerMPE)
			}
		}
		// Validate: all slots of a group expose identical output lists.
		for _, g := range sl.groups {
			for _, slot := range g.slots {
				if len(slot.Alloc.Outputs) != len(g.neurons) {
					return nil, fmt.Errorf("neurocell: group output mismatch in layer %d", li)
				}
				for i, o := range slot.Alloc.Outputs {
					if o != g.neurons[i] {
						return nil, fmt.Errorf("neurocell: group output mismatch in layer %d", li)
					}
				}
			}
		}
		s.layers = append(s.layers, sl)
	}
	return s, nil
}

// Perturb injects device non-idealities into every physical crossbar (used
// by the non-ideality ablation; no-op in Ideal mode).
func (s *Sim) Perturb(cfg xbar.Config, rng *rand.Rand) {
	for i := range s.layers {
		for _, slot := range s.layers[i].slots {
			slot.Perturb(cfg, rng)
		}
	}
}

// Reset clears membrane potentials and counters (between classifications).
func (s *Sim) Reset() {
	for i := range s.layers {
		for _, g := range s.layers[i].groups {
			g.vmem.Fill(0)
		}
	}
	s.Stats = Stats{}
}

// switchesFor returns the number of switches available to a layer's packet
// traffic (see mapping.LayerMapping.Switches).
func (s *Sim) switchesFor(lm *mapping.LayerMapping) int {
	return lm.Switches(s.Map.Cfg)
}

// Step advances one SNN timestep: inputs propagate layer by layer exactly
// as in Fig 7, accumulating cycle and event counts. It returns the final
// layer's spikes (valid until the next Step).
func (s *Sim) Step(input *bitvec.Bits) *bitvec.Bits {
	if input.Len() != s.Net.Input.Size() {
		panic(fmt.Sprintf("neurocell: input %d bits, want %d", input.Len(), s.Net.Input.Size()))
	}
	cur := input
	for li := range s.layers {
		sl := &s.layers[li]
		// --- Global control: event-flag synchronization (flags are read
		// eight NeuroCells per access) ---
		s.Stats.Cycles += s.SyncCyclesPerNC * ((sl.lm.NCLast - sl.lm.NCFirst + 1 + 7) / 8)
		// --- Data distribution phase ---
		if s.Map.CrossNC(li) {
			// Global bus: the producer's spike words are staged in SRAM and
			// broadcast; the SRAM zero-check suppresses all-zero words
			// (§3.2). Every word is checked; non-zero words serialize on
			// the bus.
			zero, total := cur.ZeroPackets(64)
			sent := total - zero
			s.Stats.BusWords += sent
			s.Stats.BusWordsSuppressed += zero
			s.Stats.Cycles += (sent + s.BusWordsPerCycle - 1) / s.BusWordsPerCycle
		}
		// Switch network: spike packets are the 64-bit source words of the
		// producer's spike vector, zero-checked at the sending switch and
		// delivered once per target mPE (the mPE's buffers fan a word out
		// to its resident MCAs). Switches work in parallel, one packet per
		// cycle each.
		for _, slot := range sl.slots {
			slot.ResetTimestep()
			slot.MarkActive(cur)
		}
		delivered := 0
		contended := s.Contention && li > 0 && !s.Map.CrossNC(li)
		var transfersByNC map[int][]Transfer
		remote := 0
		if contended {
			transfersByNC = map[int][]Transfer{}
		}
		prevOwner := []int32(nil)
		if li > 0 {
			prevOwner = s.layers[li-1].ownerOfOut
		}
		for _, slots := range sl.mpeSlots {
			dst := slots[0].Alloc.MPE
			for _, w := range unionWords(slots, 64) {
				if !wordNonZero(cur, w, 64) {
					s.Stats.PacketsSuppressed++
					continue
				}
				delivered++
				if !contended {
					continue
				}
				src := int(prevOwner[firstCovered(w, 64, len(prevOwner))])
				per := s.Map.Cfg.MPEsPerNC
				if src/per == dst/per {
					nc := dst / per
					transfersByNC[nc] = append(transfersByNC[nc], Transfer{
						SrcMPE: src % per, DstMPE: dst % per,
					})
				} else {
					remote++
				}
			}
		}
		s.Stats.PacketsDelivered += delivered
		sw := s.switchesFor(sl.lm)
		if contended {
			// NC fabrics arbitrate in parallel; remote deliveries keep the
			// ideal bound.
			maxCycles := 0
			for nc, transfers := range transfersByNC {
				fab, err := s.fabric(nc)
				if err != nil {
					panic("neurocell: " + err.Error())
				}
				st, err := fab.Simulate(transfers)
				if err != nil {
					panic("neurocell: " + err.Error())
				}
				if st.Cycles > maxCycles {
					maxCycles = st.Cycles
				}
			}
			s.Stats.Cycles += maxCycles + (remote+sw-1)/sw
		} else {
			s.Stats.Cycles += (delivered + sw - 1) / sw
		}

		// --- Compute phase ---
		maxMux := 0
		for _, g := range sl.groups {
			if sl.layer.Leak > 0 {
				g.vmem.Scale(1 - sl.layer.Leak)
			}
			mux := 0
			for _, slot := range g.slots {
				if !slot.Active() {
					continue
				}
				col := slot.Currents(s.XCfg)
				g.vmem.AddScaled(1, col)
				mux++
				s.Stats.MCAActivations++
				s.Stats.RowsDriven += slot.ActiveRows()
				s.Stats.Integrations += len(g.neurons)
				if slot.Alloc.MPE != g.ownerMPE {
					slot.ExtTransfers++
					s.Stats.ExtTransfers++
				}
			}
			if mux > maxMux {
				maxMux = mux
			}
		}
		// Groups integrate in parallel; within a group, MCA currents
		// integrate one after another (time multiplexing, Fig 5b), each
		// taking IntegrateCycles.
		s.Stats.Cycles += maxMux * s.IntegrateCycles

		// --- Fire phase ---
		sl.outBuf.Reset()
		th := sl.layer.Threshold
		for _, g := range sl.groups {
			for i, n := range g.neurons {
				if g.vmem[i] >= th {
					if sl.layer.HardReset {
						g.vmem[i] = 0
					} else {
						g.vmem[i] -= th
					}
					sl.outBuf.Set(int(n))
					s.Stats.Spikes++
				}
			}
		}
		if spikes := sl.outBuf.Count(); spikes > 0 || maxMux > 0 {
			// Spikes drain through the mPEs' output ports in parallel, one
			// per mPE per cycle (threshold check costs a cycle even when
			// silent).
			mpes := sl.lm.MPELast - sl.lm.MPEFirst + 1
			s.Stats.Cycles += (spikes + mpes - 1) / mpes
			if spikes == 0 {
				s.Stats.Cycles++
			}
		}
		cur = sl.outBuf
	}
	return cur
}

// fabric returns (building on demand) the switch fabric of one NeuroCell.
func (s *Sim) fabric(nc int) (*SwitchNet, error) {
	if s.fabrics == nil {
		s.fabrics = map[int]*SwitchNet{}
	}
	if f, ok := s.fabrics[nc]; ok {
		return f, nil
	}
	dim := 1
	for dim*dim < s.Map.Cfg.MPEsPerNC {
		dim++
	}
	f, err := NewSwitchNet(dim)
	if err != nil {
		return nil, err
	}
	s.fabrics[nc] = f
	return f, nil
}

// firstCovered returns the first index within [w*width, (w+1)*width) that
// exists in a vector of length n.
func firstCovered(w, width, n int) int {
	i := w * width
	if i >= n {
		i = n - 1
	}
	return i
}

// unionWords returns the ascending union of the slots' source-word indices.
func unionWords(slots []*mpe.MCASlot, width int) []int {
	seen := map[int]bool{}
	var out []int
	for _, s := range slots {
		for _, w := range s.InputWords(width) {
			if !seen[w] {
				seen[w] = true
				out = append(out, w)
			}
		}
	}
	return out
}

// wordNonZero reports whether source word w of the spike vector holds a
// spike.
func wordNonZero(v *bitvec.Bits, word, width int) bool {
	start := word * width
	end := start + width
	if end > v.Len() {
		end = v.Len()
	}
	for i := start; i < end; i++ {
		if v.Get(i) {
			return true
		}
	}
	return false
}

// Run classifies one input over the given timesteps, mirroring
// snn.State.Run, and returns the predicted class.
func (s *Sim) Run(intensity tensor.Vec, enc snn.Encoder, steps int) int {
	s.Reset()
	counts := make([]int, s.Net.OutSize())
	in := bitvec.New(s.Net.Input.Size())
	for t := 0; t < steps; t++ {
		enc.Encode(intensity, in)
		out := s.Step(in)
		out.ForEachSet(func(i int) { counts[i]++ })
	}
	best, bestN := 0, -1
	for i, c := range counts {
		if c > bestN {
			best, bestN = i, c
		}
	}
	return best
}
