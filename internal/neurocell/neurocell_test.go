package neurocell

import (
	"math/rand"
	"testing"

	"resparc/internal/bitvec"
	"resparc/internal/device"
	"resparc/internal/mapping"
	"resparc/internal/mpe"
	"resparc/internal/quant"
	"resparc/internal/snn"
	"resparc/internal/tensor"
	"resparc/internal/xbar"
)

func randDense(t *testing.T, rng *rand.Rand, in, out int, th float64) *snn.Layer {
	t.Helper()
	w := tensor.NewMat(out, in)
	for i := range w.Data {
		w.Data[i] = rng.NormFloat64() * 0.3
	}
	l, err := snn.NewDense("d", in, out, w, th)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func smallMLP(t *testing.T, seed int64) *snn.Network {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	l1 := randDense(t, rng, 40, 24, 1)
	l2 := randDense(t, rng, 24, 10, 1)
	net, err := snn.NewNetwork("mlp", tensor.Shape3{H: 1, W: 1, C: 40}, l1, l2)
	if err != nil {
		t.Fatal(err)
	}
	return net
}

func smallCNN(t *testing.T, seed int64) *snn.Network {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	geom := tensor.ConvGeom{In: tensor.Shape3{H: 8, W: 8, C: 1}, K: 3, Stride: 1, Pad: 0, OutC: 4}
	w := tensor.NewMat(4, 9)
	for i := range w.Data {
		w.Data[i] = rng.NormFloat64() * 0.4
	}
	conv, err := snn.NewConv("c", geom, w, 1)
	if err != nil {
		t.Fatal(err)
	}
	pool, err := snn.NewPool("p", tensor.Shape3{H: 6, W: 6, C: 4}, 2, 0.499)
	if err != nil {
		t.Fatal(err)
	}
	fc := randDense(t, rng, 36, 5, 1)
	net, err := snn.NewNetwork("cnn", geom.In, conv, pool, fc)
	if err != nil {
		t.Fatal(err)
	}
	return net
}

func mapped(t *testing.T, net *snn.Network, size int) *mapping.Mapping {
	t.Helper()
	cfg := mapping.DefaultConfig()
	cfg.MCASize = size
	cfg.Tech = device.PCM
	m, err := mapping.Map(net, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// The cycle-level architecture must produce bit-identical spikes to the
// functional SNN model, for MLPs and CNNs, across MCA sizes (including
// sizes forcing time-multiplexed integration across MCAs and mPEs).
func TestSpikeEquivalenceWithFunctionalModel(t *testing.T) {
	nets := map[string]*snn.Network{
		"mlp": smallMLP(t, 1),
		"cnn": smallCNN(t, 2),
	}
	for name, net := range nets {
		for _, size := range []int{8, 16, 64} {
			m := mapped(t, net, size)
			sim, err := New(net, m, mpe.Ideal, xbar.Config{})
			if err != nil {
				t.Fatalf("%s/%d: %v", name, size, err)
			}
			ref := snn.NewState(net)
			rng := rand.New(rand.NewSource(3))
			in := bitvec.New(net.Input.Size())
			for step := 0; step < 30; step++ {
				in.Reset()
				for i := 0; i < in.Len(); i++ {
					if rng.Float64() < 0.3 {
						in.Set(i)
					}
				}
				got := sim.Step(in)
				want := ref.Step(in)
				for i := 0; i < want.Len(); i++ {
					if got.Get(i) != want.Get(i) {
						t.Fatalf("%s size %d step %d: spike mismatch at %d", name, size, step, i)
					}
				}
			}
		}
	}
}

// Physical mode routes through real crossbars: spikes must match a
// functional reference built from the crossbars' read-back (quantized)
// weights.
func TestPhysicalModeMatchesReadback(t *testing.T) {
	net := smallMLP(t, 4)
	m := mapped(t, net, 16)
	sim, err := New(net, m, mpe.Physical, xbar.Config{})
	if err != nil {
		t.Fatal(err)
	}
	// Build the read-back reference network.
	refLayers := make([]*snn.Layer, len(net.Layers))
	for li, l := range net.Layers {
		w := tensor.NewMat(l.OutSize(), l.InSize())
		for _, slot := range sim.layers[li].slots {
			for _, out := range slot.Alloc.Outputs {
				for _, in := range slot.Alloc.Inputs {
					if v, ok := slot.ReadbackWeight(out, in); ok {
						w.Set(int(out), int(in), v)
					}
				}
			}
		}
		rl, err := snn.NewDense(l.Name, l.InSize(), l.OutSize(), w, l.Threshold)
		if err != nil {
			t.Fatal(err)
		}
		refLayers[li] = rl
	}
	refNet, err := snn.NewNetwork("ref", net.Input, refLayers...)
	if err != nil {
		t.Fatal(err)
	}
	ref := snn.NewState(refNet)
	rng := rand.New(rand.NewSource(5))
	in := bitvec.New(net.Input.Size())
	for step := 0; step < 20; step++ {
		in.Reset()
		for i := 0; i < in.Len(); i++ {
			if rng.Float64() < 0.25 {
				in.Set(i)
			}
		}
		got := sim.Step(in)
		want := ref.Step(in)
		for i := 0; i < want.Len(); i++ {
			if got.Get(i) != want.Get(i) {
				t.Fatalf("step %d: physical/readback mismatch at %d", step, i)
			}
		}
	}
}

func TestZeroInputCostsNothing(t *testing.T) {
	net := smallMLP(t, 6)
	m := mapped(t, net, 16)
	sim, err := New(net, m, mpe.Ideal, xbar.Config{})
	if err != nil {
		t.Fatal(err)
	}
	out := sim.Step(bitvec.New(net.Input.Size()))
	if out.Any() {
		t.Fatal("spikes from silence")
	}
	if sim.Stats.MCAActivations != 0 || sim.Stats.PacketsDelivered != 0 || sim.Stats.BusWords != 0 {
		t.Fatalf("events from silence: %+v", sim.Stats)
	}
	if sim.Stats.PacketsSuppressed == 0 || sim.Stats.BusWordsSuppressed == 0 {
		t.Fatalf("zero-check should have suppressed everything: %+v", sim.Stats)
	}
}

func TestCycleCountingMonotonic(t *testing.T) {
	net := smallMLP(t, 7)
	m := mapped(t, net, 16)
	sim, err := New(net, m, mpe.Ideal, xbar.Config{})
	if err != nil {
		t.Fatal(err)
	}
	in := bitvec.New(net.Input.Size())
	for i := 0; i < in.Len(); i++ {
		in.Set(i)
	}
	sim.Step(in)
	c1 := sim.Stats.Cycles
	if c1 == 0 {
		t.Fatal("no cycles counted")
	}
	sim.Step(in)
	if sim.Stats.Cycles <= c1 {
		t.Fatal("cycles must accumulate")
	}
}

// Smaller MCAs split the same fan-in across more arrays: multiplexing and
// activations must increase as size shrinks.
func TestSmallerMCAsMeanMoreActivations(t *testing.T) {
	net := smallMLP(t, 8)
	in := bitvec.New(net.Input.Size())
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < in.Len(); i++ {
		if rng.Float64() < 0.5 {
			in.Set(i)
		}
	}
	var acts []int
	for _, size := range []int{8, 16, 64} {
		m := mapped(t, net, size)
		sim, err := New(net, m, mpe.Ideal, xbar.Config{})
		if err != nil {
			t.Fatal(err)
		}
		sim.Step(in)
		acts = append(acts, sim.Stats.MCAActivations)
	}
	if !(acts[0] > acts[1] && acts[1] > acts[2]) {
		t.Fatalf("activations should fall with MCA size: %v", acts)
	}
}

// CCU transfers happen only when a group spans multiple mPEs.
func TestExtTransfers(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	// 40 inputs on 8x8 MCAs: mux degree 5, 5 MCAs per group > 4 per mPE ->
	// group spans 2 mPEs -> CCU traffic.
	l := randDense(t, rng, 40, 8, 0.5)
	net, err := snn.NewNetwork("n", tensor.Shape3{H: 1, W: 1, C: 40}, l)
	if err != nil {
		t.Fatal(err)
	}
	m := mapped(t, net, 8)
	sim, err := New(net, m, mpe.Ideal, xbar.Config{})
	if err != nil {
		t.Fatal(err)
	}
	in := bitvec.New(40)
	for i := 0; i < 40; i++ {
		in.Set(i)
	}
	sim.Step(in)
	if sim.Stats.ExtTransfers == 0 {
		t.Fatal("expected CCU transfers for a group spanning mPEs")
	}
}

// Quantized network equivalence: running a 4-bit-quantized net through the
// cycle sim in Ideal mode matches the functional model on the same
// quantized net (sanity for the Fig 14 pipeline).
func TestQuantizedEquivalence(t *testing.T) {
	net := smallMLP(t, 11)
	qnet, err := quant.QuantizeNetwork(net, 4)
	if err != nil {
		t.Fatal(err)
	}
	m := mapped(t, qnet, 16)
	sim, err := New(qnet, m, mpe.Ideal, xbar.Config{})
	if err != nil {
		t.Fatal(err)
	}
	ref := snn.NewState(qnet)
	rng := rand.New(rand.NewSource(12))
	in := bitvec.New(qnet.Input.Size())
	for step := 0; step < 15; step++ {
		in.Reset()
		for i := 0; i < in.Len(); i++ {
			if rng.Float64() < 0.4 {
				in.Set(i)
			}
		}
		got := sim.Step(in)
		want := ref.Step(in)
		for i := 0; i < want.Len(); i++ {
			if got.Get(i) != want.Get(i) {
				t.Fatalf("step %d: mismatch at %d", step, i)
			}
		}
	}
}

func TestRunPredicts(t *testing.T) {
	net := smallMLP(t, 13)
	m := mapped(t, net, 16)
	sim, err := New(net, m, mpe.Ideal, xbar.Config{})
	if err != nil {
		t.Fatal(err)
	}
	intensity := tensor.NewVec(net.Input.Size())
	for i := range intensity {
		intensity[i] = 0.8
	}
	p := sim.Run(intensity, snn.NewPoissonEncoder(0.9, 14), 40)
	// Must agree with the functional model under the same encoder seed.
	st := snn.NewState(net)
	want := st.Run(intensity, snn.NewPoissonEncoder(0.9, 14), 40).Prediction
	if p != want {
		t.Fatalf("prediction %d, functional model %d", p, want)
	}
}

func TestNewRejectsForeignMapping(t *testing.T) {
	a := smallMLP(t, 15)
	b := smallMLP(t, 16)
	m := mapped(t, a, 16)
	if _, err := New(b, m, mpe.Ideal, xbar.Config{}); err == nil {
		t.Fatal("foreign mapping accepted")
	}
}

func TestStepPanicsOnWrongInput(t *testing.T) {
	net := smallMLP(t, 17)
	m := mapped(t, net, 16)
	sim, _ := New(net, m, mpe.Ideal, xbar.Config{})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	sim.Step(bitvec.New(3))
}
