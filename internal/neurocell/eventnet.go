package neurocell

import (
	"fmt"

	"resparc/internal/event"
	"resparc/internal/packet"
)

// DefaultQueueCap is the default per-switch input-FIFO depth (per buffer
// class) for the event-driven fabric: four flits, matching the Fig 6
// iData/iAddress buffer sizing (one slot per attached mPE port).
const DefaultQueueCap = 4

// EventOptions configure SimulateEvent.
type EventOptions struct {
	// QueueCap bounds each switch's transit FIFOs (one per hop class). Zero
	// selects DefaultQueueCap. A flit whose next hop's FIFO is full stalls
	// at the head of its current queue (credit-based backpressure) instead
	// of dropping — congestion and queuing delay emerge from the flow
	// control.
	QueueCap int
}

// DeadlockError reports that the fabric stalled with flits still in flight:
// no switch can make progress (event engine: every remaining flit waits on a
// slot that will never free, e.g. behind a dead switch; stepped engine: a
// cycle passed with pending flits and zero forwards, or the livelock
// watchdog tripped).
type DeadlockError struct {
	Cycle   int64 // virtual tick (or cycle) the stall was detected at
	Pending int   // flits still undelivered
	Stuck   []int // switches holding undeliverable flits
}

func (e *DeadlockError) Error() string {
	return fmt.Sprintf("neurocell: switch fabric deadlock at cycle %d: %d flits stuck at switches %v",
		e.Cycle, e.Pending, e.Stuck)
}

// SimulateEvent runs the same traffic as Simulate on the discrete-event
// engine: each switch's decoder serves one flit per cycle out of bounded
// input FIFOs, forwarded flits arrive at the next hop one tick later, and a
// full downstream FIFO blocks the sender (head-of-line) until a slot frees —
// backpressure propagates instead of the stepped model's unbounded queues.
//
// Buffers are split by hop class, the standard escape from protocol
// deadlock under bounded buffering: freshly injected flits wait in q0 for
// their column hop, flits that completed it wait in q1 for their row hop,
// and flits arriving at their destination switch land in a
// consumption-guaranteed ejection queue (the mPE-side sink; its depth is
// not credit-limited, only its 1/cycle drain is). Since routing is
// column-then-row, the dependency chain q0 -> q1 -> ejection is acyclic, so
// a live topology always drains. The decoder arbitrates ejection first,
// then q1, then q0 — strictly, one flit per cycle.
//
// Event ordering is deterministic: within a tick, arrivals commit first,
// then injections and decoders in ascending switch id (the event package's
// (tick, priority, seq) contract), so the same transfer list always yields
// the same statistics.
//
// Fault semantics differ deliberately from Simulate: a dead *injection*
// switch still drops at the port (the packet never enters the fabric), but
// a dead switch en route never accepts flits, so traffic routed toward it
// backs up and the run returns a *DeadlockError — the flow-controlled
// analog of the stepped model's silent in-fabric drop.
func (n *SwitchNet) SimulateEvent(transfers []Transfer, opt EventOptions) (SwitchStats, error) {
	qcap := opt.QueueCap
	if qcap <= 0 {
		qcap = DefaultQueueCap
	}
	S := n.Switches()
	stats := SwitchStats{Forwards: make([]int, S)}

	inject := make([][]flit, S) // unbounded mPE-side output buffers
	q0 := make([][]flit, S)     // bounded: injected flits awaiting the column hop
	q1 := make([][]flit, S)     // bounded: transit flits awaiting the row hop
	ej := make([]int, S)        // ejection queue depth (flits at their dst switch)
	occ1 := make([]int, S)      // q1 occupancy incl. reserved in-flight slots

	injected := 0
	for _, t := range transfers {
		if t.SrcMPE < 0 || t.SrcMPE >= n.dim*n.dim || t.DstMPE < 0 || t.DstMPE >= n.dim*n.dim {
			return SwitchStats{}, fmt.Errorf("neurocell: transfer %+v out of the %dx%d array", t, n.dim, n.dim)
		}
		src := n.switchOf(t.SrcMPE)
		addr := packet.Address{SW: uint8(n.switchOf(t.DstMPE)), MPE: uint8(t.DstMPE)}
		dec := packet.DecodeAddress(addr.Encode())
		if n.switchDead(src) {
			// Injection port is dead: the packet never enters the fabric.
			stats.Dropped++
			continue
		}
		inject[src] = append(inject[src], flit{dst: int(dec.SW), dstMPE: int(dec.MPE)})
		injected++
	}

	var eng event.Engine
	// Within-tick priority bands: arrivals commit below everything else so a
	// flit forwarded at T is serviceable at T+1 (one cycle per hop, like the
	// stepped model); injections precede arbitration so a freshly injected
	// flit is forwardable the same cycle (all-at-cycle-zero injection parity).
	const prioArrive = int32(0)
	prioInject := func(s int) int32 { return int32(1<<10 + s) }
	prioArbit := func(s int) int32 { return int32(2<<10 + s) }

	armed := make([]bool, S)       // decoder event scheduled
	injArmed := make([]bool, S)    // injector event scheduled
	waiting := make([]bool, S)     // decoder registered as a q1 credit waiter
	injWaiting := make([]bool, S)  // injector registered as a q0 credit waiter
	blockStart := make([]int64, S) // tick the q0 head credit-stalled (-1 = flowing)
	injBlockStart := make([]int64, S)
	for s := 0; s < S; s++ {
		blockStart[s], injBlockStart[s] = -1, -1
	}
	// q1Waiters[s] lists upstream switches whose q0 head stalled on a slot
	// in s's q1; q0Waiters[s] is s's own injector (at most one).
	q1Waiters := make([][]int, S)

	pending := injected
	lastDeliver := int64(-1)

	maxq := func(depth int) {
		if depth > stats.MaxQueue {
			stats.MaxQueue = depth
		}
	}

	var armArbiter func(s int, tick int64)
	var armInjector func(s int, tick int64)
	var arbiter func(s int)
	var injector func(s int)

	armArbiter = func(s int, tick int64) {
		if armed[s] {
			return
		}
		armed[s] = true
		eng.Schedule(tick, prioArbit(s), func() { arbiter(s) })
	}
	armInjector = func(s int, tick int64) {
		if injArmed[s] {
			return
		}
		injArmed[s] = true
		eng.Schedule(tick, prioInject(s), func() { injector(s) })
	}
	// arrive lands a forwarded flit at its next switch one tick later:
	// flits at their destination switch join the ejection queue, others the
	// row-hop transit FIFO.
	arrive := func(dst int, f flit, at int64) {
		eng.Schedule(at, prioArrive, func() {
			if f.dst == dst {
				ej[dst]++
				maxq(ej[dst])
			} else {
				q1[dst] = append(q1[dst], f)
				maxq(len(q1[dst]))
			}
			armArbiter(dst, eng.Now())
		})
	}
	// wakeQ1 re-arms decoders stalled on a slot in s's q1; they retry next
	// cycle in ascending switch id and re-block if another waiter claimed
	// the slot first.
	wakeQ1 := func(s int, at int64) {
		ws := q1Waiters[s]
		if len(ws) == 0 {
			return
		}
		q1Waiters[s] = nil
		for _, w := range ws {
			waiting[w] = false
			armArbiter(w, at+1)
		}
	}

	arbiter = func(s int) {
		armed[s] = false
		now := eng.Now()
		served := true
		switch {
		case ej[s] > 0:
			// Egress to the destination mPE.
			ej[s]--
			stats.Forwards[s]++
			stats.Hops++
			stats.Delivered++
			pending--
			lastDeliver = now
		case len(q1[s]) > 0:
			f := q1[s][0]
			next := n.route(s, f.dst)
			if n.switchDead(next) {
				// The row hop leads into a dead switch: this head is wedged
				// forever; nothing re-arms us but new arrivals, and the
				// caller reports deadlock once the engine drains.
				served = false
				break
			}
			q1[s] = q1[s][1:]
			occ1[s]--
			stats.Forwards[s]++
			stats.Hops++
			f.hops++
			arrive(next, f, now+1) // dst == next: lands in the ejection queue
			wakeQ1(s, now)
		case len(q0[s]) > 0:
			f := q0[s][0]
			if f.dst == s {
				// Source and destination share the switch: direct egress.
				q0[s] = q0[s][1:]
				stats.Forwards[s]++
				stats.Hops++
				stats.Delivered++
				pending--
				lastDeliver = now
				if injWaiting[s] {
					injWaiting[s] = false
					armInjector(s, now+1)
				}
				break
			}
			next := n.route(s, f.dst)
			if n.switchDead(next) {
				served = false
				break
			}
			if f.dst != next && occ1[next] >= qcap {
				// Column hop blocked on a full transit FIFO: wait for a
				// credit. (A hop straight to the destination switch joins
				// its ejection queue and is never credit-limited.)
				if blockStart[s] < 0 {
					blockStart[s] = now
				}
				if !waiting[s] {
					waiting[s] = true
					q1Waiters[next] = append(q1Waiters[next], s)
				}
				served = false
				break
			}
			if f.dst != next {
				occ1[next]++ // reserve the slot for the in-flight flit
			}
			q0[s] = q0[s][1:]
			if blockStart[s] >= 0 {
				stats.WaitCycles += int(now - blockStart[s])
				blockStart[s] = -1
			}
			stats.Forwards[s]++
			stats.Hops++
			f.hops++
			arrive(next, f, now+1)
			if injWaiting[s] {
				injWaiting[s] = false
				armInjector(s, now+1)
			}
		default:
			served = false
		}
		if served && (ej[s] > 0 || len(q1[s]) > 0 || len(q0[s]) > 0) {
			armArbiter(s, now+1)
		}
	}

	injector = func(s int) {
		injArmed[s] = false
		if len(inject[s]) == 0 {
			return
		}
		now := eng.Now()
		if len(q0[s]) >= qcap {
			if injBlockStart[s] < 0 {
				injBlockStart[s] = now
			}
			injWaiting[s] = true
			return
		}
		f := inject[s][0]
		inject[s] = inject[s][1:]
		if injBlockStart[s] >= 0 {
			stats.WaitCycles += int(now - injBlockStart[s])
			injBlockStart[s] = -1
		}
		q0[s] = append(q0[s], f)
		maxq(len(q0[s]))
		armArbiter(s, now) // injection precedes arbitration within the tick
		if len(inject[s]) > 0 {
			armInjector(s, now+1)
		}
	}

	for s := 0; s < S; s++ {
		if len(inject[s]) > 0 {
			armInjector(s, 0)
		}
	}
	eng.Run()

	if pending > 0 {
		var stuck []int
		for s := 0; s < S; s++ {
			if len(q0[s]) > 0 || len(q1[s]) > 0 || ej[s] > 0 || len(inject[s]) > 0 {
				stuck = append(stuck, s)
			}
		}
		stats.Cycles = int(eng.Now()) + 1
		return stats, &DeadlockError{Cycle: eng.Now(), Pending: pending, Stuck: stuck}
	}
	if lastDeliver >= 0 {
		stats.Cycles = int(lastDeliver) + 1
	}
	return stats, nil
}
