package neurocell

import "testing"

// A killed switch drops traffic injected at it, routed through it, or
// destined to it — and the simulation still converges with every packet
// accounted for as delivered or dropped.
func TestSwitchNetKillSwitch(t *testing.T) {
	n, _ := NewSwitchNet(4)
	// mPE 0 attaches to switch (0,0) = 0; mPE 15 to switch (2,2) = 8.
	transfers := []Transfer{
		{SrcMPE: 0, DstMPE: 15}, // injects at switch 0
		{SrcMPE: 15, DstMPE: 0}, // destined to switch 0
		{SrcMPE: 5, DstMPE: 6},  // both on switch 1x1 region: unaffected
	}
	n.KillSwitch(0)
	st, err := n.Simulate(transfers)
	if err != nil {
		t.Fatal(err)
	}
	if st.Dropped != 2 {
		t.Fatalf("dropped %d, want 2", st.Dropped)
	}
	if st.Delivered != 1 {
		t.Fatalf("delivered %d, want 1", st.Delivered)
	}
	if st.Delivered+st.Dropped != len(transfers) {
		t.Fatalf("packet conservation broken: %+v", st)
	}
	// Revival restores full delivery on fresh traffic.
	n.ReviveAll()
	st, err = n.Simulate(transfers)
	if err != nil {
		t.Fatal(err)
	}
	if st.Delivered != len(transfers) || st.Dropped != 0 {
		t.Fatalf("after revive: %+v", st)
	}
	// Out-of-range kills are ignored.
	n.KillSwitch(-1)
	n.KillSwitch(100)
	st, _ = n.Simulate(transfers)
	if st.Dropped != 0 {
		t.Fatalf("out-of-range kill dropped packets: %+v", st)
	}
}

// A flit routed *through* a dead intermediate switch is lost mid-fabric.
func TestSwitchNetDeadIntermediateHop(t *testing.T) {
	n, _ := NewSwitchNet(4)
	// Route from switch (0,0) to (2,2): column hop first => intermediate is
	// (0,2) = switch 6.
	n.KillSwitch(6)
	st, err := n.Simulate([]Transfer{{SrcMPE: 0, DstMPE: 15}})
	if err != nil {
		t.Fatal(err)
	}
	if st.Dropped != 1 || st.Delivered != 0 {
		t.Fatalf("intermediate-hop kill: %+v", st)
	}
}
