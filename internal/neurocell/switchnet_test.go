package neurocell

import (
	"math/rand"
	"testing"
	"testing/quick"

	"resparc/internal/bitvec"
	"resparc/internal/mpe"
	"resparc/internal/xbar"
)

func TestSwitchNetGeometry(t *testing.T) {
	n, err := NewSwitchNet(4)
	if err != nil {
		t.Fatal(err)
	}
	// Fig 8: the 4x4 NeuroCell has 9 switches.
	if n.Switches() != 9 {
		t.Fatalf("switches = %d, want 9", n.Switches())
	}
	if _, err := NewSwitchNet(1); err == nil {
		t.Fatal("dim 1 accepted")
	}
	// Every mPE attaches to a valid switch.
	for m := 0; m < 16; m++ {
		s := n.switchOf(m)
		if s < 0 || s >= 9 {
			t.Fatalf("mPE %d -> switch %d", m, s)
		}
	}
}

// Row/column dedicated links: any switch pair is at most 2 route steps
// apart.
func TestSwitchNetRouteLength(t *testing.T) {
	n, _ := NewSwitchNet(4)
	for a := 0; a < n.Switches(); a++ {
		for b := 0; b < n.Switches(); b++ {
			s, hops := a, 0
			for s != b {
				s = n.route(s, b)
				hops++
				if hops > 2 {
					t.Fatalf("route %d->%d took more than 2 hops", a, b)
				}
			}
		}
	}
}

func TestSwitchNetSingleTransfer(t *testing.T) {
	n, _ := NewSwitchNet(4)
	st, err := n.Simulate([]Transfer{{SrcMPE: 0, DstMPE: 15}})
	if err != nil {
		t.Fatal(err)
	}
	if st.Delivered != 1 {
		t.Fatalf("delivered %d", st.Delivered)
	}
	// 0 attaches to switch (0,0); 15 to switch (2,2): two fabric hops plus
	// the egress forward = at most 3 cycles, uncontended.
	if st.Cycles > 3 {
		t.Fatalf("uncontended transfer took %d cycles", st.Cycles)
	}
}

func TestSwitchNetLocalTransferIsOneHop(t *testing.T) {
	n, _ := NewSwitchNet(4)
	// mPEs 2 and 3 attach to the same switch (x clamps to the grid edge):
	// a single egress forward.
	st, err := n.Simulate([]Transfer{{SrcMPE: 2, DstMPE: 3}})
	if err != nil {
		t.Fatal(err)
	}
	if st.Cycles != 1 || st.Hops != 1 {
		t.Fatalf("local transfer: %+v", st)
	}
}

// Hotspot traffic must serialize at the destination switch; uniform traffic
// must stay near the ideal parallel bound.
func TestSwitchNetContention(t *testing.T) {
	n, _ := NewSwitchNet(4)
	// 32 packets from all mPEs to mPE 15 (switch 8).
	var hot []Transfer
	for i := 0; i < 32; i++ {
		hot = append(hot, Transfer{SrcMPE: i % 15, DstMPE: 15})
	}
	hotStats, err := n.Simulate(hot)
	if err != nil {
		t.Fatal(err)
	}
	if hotStats.Delivered != 32 {
		t.Fatalf("delivered %d", hotStats.Delivered)
	}
	// All egress forwards funnel through switch 8: at least 32 cycles.
	if hotStats.Cycles < 32 {
		t.Fatalf("hotspot finished in %d cycles — impossible", hotStats.Cycles)
	}

	// Uniform neighbor traffic: mPE i -> i (self-free local) spread across
	// switches.
	var uniform []Transfer
	for i := 0; i < 32; i++ {
		uniform = append(uniform, Transfer{SrcMPE: i % 16, DstMPE: (i + 1) % 16})
	}
	uniStats, err := n.Simulate(uniform)
	if err != nil {
		t.Fatal(err)
	}
	if uniStats.Cycles >= hotStats.Cycles {
		t.Fatalf("uniform (%d) should beat hotspot (%d)", uniStats.Cycles, hotStats.Cycles)
	}
	if uniStats.Cycles < n.IdealCycles(32) {
		t.Fatalf("uniform %d cycles beat the ideal bound %d", uniStats.Cycles, n.IdealCycles(32))
	}
}

func TestSwitchNetValidation(t *testing.T) {
	n, _ := NewSwitchNet(4)
	if _, err := n.Simulate([]Transfer{{SrcMPE: -1, DstMPE: 0}}); err == nil {
		t.Fatal("negative mPE accepted")
	}
	if _, err := n.Simulate([]Transfer{{SrcMPE: 0, DstMPE: 16}}); err == nil {
		t.Fatal("out-of-array mPE accepted")
	}
}

func TestSwitchNetIdealCycles(t *testing.T) {
	n, _ := NewSwitchNet(4)
	if n.IdealCycles(0) != 0 || n.IdealCycles(9) != 1 || n.IdealCycles(10) != 2 {
		t.Fatal("ideal bound wrong")
	}
}

// Property: every packet is always delivered, hop counts are bounded, and
// the cycle count is at least the per-switch serialization bound of the
// busiest egress.
func TestSwitchNetConservation(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n, _ := NewSwitchNet(4)
		count := 1 + rng.Intn(60)
		transfers := make([]Transfer, count)
		egress := map[int]int{}
		for i := range transfers {
			transfers[i] = Transfer{SrcMPE: rng.Intn(16), DstMPE: rng.Intn(16)}
			egress[n.switchOf(transfers[i].DstMPE)]++
		}
		st, err := n.Simulate(transfers)
		if err != nil || st.Delivered != count {
			return false
		}
		busiest := 0
		for _, c := range egress {
			if c > busiest {
				busiest = c
			}
		}
		if st.Cycles < busiest {
			return false
		}
		// Each packet takes 1..3 forwards; total hops bounded accordingly.
		return st.Hops >= count && st.Hops <= 3*count
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Reusing a SwitchNet for several simulations must not leak state.
func TestSwitchNetReuse(t *testing.T) {
	n, _ := NewSwitchNet(4)
	a, err := n.Simulate([]Transfer{{SrcMPE: 0, DstMPE: 5}})
	if err != nil {
		t.Fatal(err)
	}
	b, err := n.Simulate([]Transfer{{SrcMPE: 0, DstMPE: 5}})
	if err != nil {
		t.Fatal(err)
	}
	if a.Cycles != b.Cycles || a.Hops != b.Hops || a.Delivered != b.Delivered {
		t.Fatalf("state leaked between runs: %+v vs %+v", a, b)
	}
}

// Contention-aware simulation must produce the same spikes as the ideal
// mode, never run faster, and still terminate.
func TestContentionMode(t *testing.T) {
	net := smallMLP(t, 99)
	m := mapped(t, net, 16)
	ideal, err := New(net, m, mpe.Ideal, xbar.Config{})
	if err != nil {
		t.Fatal(err)
	}
	cont, err := New(net, m, mpe.Ideal, xbar.Config{})
	if err != nil {
		t.Fatal(err)
	}
	cont.Contention = true
	rng := rand.New(rand.NewSource(100))
	in := bitvec.New(net.Input.Size())
	for step := 0; step < 20; step++ {
		in.Reset()
		for i := 0; i < in.Len(); i++ {
			if rng.Float64() < 0.4 {
				in.Set(i)
			}
		}
		a := ideal.Step(in)
		b := cont.Step(in)
		for i := 0; i < a.Len(); i++ {
			if a.Get(i) != b.Get(i) {
				t.Fatalf("contention mode changed spikes at step %d", step)
			}
		}
	}
	if cont.Stats.Cycles < ideal.Stats.Cycles {
		t.Fatalf("contended cycles %d below ideal %d", cont.Stats.Cycles, ideal.Stats.Cycles)
	}
	if cont.Stats.PacketsDelivered != ideal.Stats.PacketsDelivered {
		t.Fatal("packet counts must not change")
	}
}
