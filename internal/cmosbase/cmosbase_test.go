package cmosbase

import (
	"math/rand"
	"testing"

	"resparc/internal/sim"
	"resparc/internal/snn"
	"resparc/internal/tensor"
)

func randDense(t *testing.T, rng *rand.Rand, in, out int, th float64) *snn.Layer {
	t.Helper()
	w := tensor.NewMat(out, in)
	for i := range w.Data {
		w.Data[i] = rng.NormFloat64() * 0.3
	}
	l, err := snn.NewDense("d", in, out, w, th)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func mlp(t *testing.T, seed int64) *snn.Network {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	net, err := snn.NewNetwork("mlp", tensor.Shape3{H: 1, W: 1, C: 40},
		randDense(t, rng, 40, 30, 1), randDense(t, rng, 30, 10, 1))
	if err != nil {
		t.Fatal(err)
	}
	return net
}

func cnn(t *testing.T, seed int64) *snn.Network {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	geom := tensor.ConvGeom{In: tensor.Shape3{H: 10, W: 10, C: 1}, K: 3, Stride: 1, Pad: 0, OutC: 6}
	w := tensor.NewMat(6, 9)
	for i := range w.Data {
		w.Data[i] = rng.NormFloat64() * 0.4
	}
	conv, err := snn.NewConv("c", geom, w, 1)
	if err != nil {
		t.Fatal(err)
	}
	pool, err := snn.NewPool("p", tensor.Shape3{H: 8, W: 8, C: 6}, 2, 0.499)
	if err != nil {
		t.Fatal(err)
	}
	fc := randDense(t, rng, 96, 10, 1)
	net, err := snn.NewNetwork("cnn", geom.In, conv, pool, fc)
	if err != nil {
		t.Fatal(err)
	}
	return net
}

func denseIntensity(n int, seed int64) tensor.Vec {
	rng := rand.New(rand.NewSource(seed))
	v := tensor.NewVec(n)
	for i := range v {
		v[i] = rng.Float64()
	}
	return v
}

func TestNewValidation(t *testing.T) {
	net := mlp(t, 1)
	bad := DefaultOptions()
	bad.Bits = 0
	if _, err := New(net, bad); err == nil {
		t.Fatal("bits 0 accepted")
	}
	bad = DefaultOptions()
	bad.Steps = 0
	if _, err := New(net, bad); err == nil {
		t.Fatal("steps 0 accepted")
	}
	empty, _ := snn.NewNetwork("e", tensor.Shape3{H: 1, W: 1, C: 4})
	if _, err := New(empty, DefaultOptions()); err == nil {
		t.Fatal("empty network accepted")
	}
}

func TestWeightMemorySizing(t *testing.T) {
	// The weight memory is provisioned at the maximum precision (8 bits)
	// regardless of the configured precision, so leakage does not shrink at
	// low precision (Fig 14b's modest slope).
	net := mlp(t, 2)
	b4, err := New(net, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	opt8 := DefaultOptions()
	opt8.Bits = 8
	b8, err := New(net, opt8)
	if err != nil {
		t.Fatal(err)
	}
	if b8.WeightMemoryBytes() != b4.WeightMemoryBytes() {
		t.Fatal("weight memory must be provisioned independent of precision")
	}
	// A larger network still needs more memory.
	big := cnn(t, 3)
	bb, err := New(big, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if bb.WeightMemoryBytes() == b4.WeightMemoryBytes() {
		t.Fatal("memory must scale with network size")
	}
}

func TestSilenceIsNearlyFree(t *testing.T) {
	net := mlp(t, 3)
	b, err := New(net, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	_, rep := b.ClassifyDetailed(tensor.NewVec(net.Input.Size()), snn.NewPoissonEncoder(0.9, 1))
	if rep.Counts.SynOps != 0 || rep.Counts.WeightWords != 0 {
		t.Fatalf("ops from silence: %+v", rep.Counts)
	}
	if rep.Energy.Core != 0 || rep.Energy.MemoryAccess != 0 {
		t.Fatalf("dynamic energy from silence: %+v", rep.Energy)
	}
}

func TestEventDrivenReducesOps(t *testing.T) {
	net := mlp(t, 4)
	intensity := denseIntensity(net.Input.Size(), 5)
	on, err := New(net, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	offOpt := DefaultOptions()
	offOpt.EventDriven = false
	off, err := New(net, offOpt)
	if err != nil {
		t.Fatal(err)
	}
	_, repOn := on.ClassifyDetailed(intensity, snn.NewPoissonEncoder(0.6, 6))
	_, repOff := off.ClassifyDetailed(intensity, snn.NewPoissonEncoder(0.6, 6))
	if repOn.Counts.SynOps >= repOff.Counts.SynOps {
		t.Fatalf("event-driven ops %d !< %d", repOn.Counts.SynOps, repOff.Counts.SynOps)
	}
	if repOn.Energy.Total() >= repOff.Energy.Total() {
		t.Fatal("event-driven energy not lower")
	}
}

// The defining Fig 12 contrast: MLPs are memory-dominated, CNNs are
// core-dominated.
func TestEnergyBreakdownShape(t *testing.T) {
	mlpNet := mlp(t, 7)
	bm, err := New(mlpNet, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	_, mlpRep := bm.ClassifyDetailed(denseIntensity(mlpNet.Input.Size(), 8), snn.NewPoissonEncoder(0.7, 9))
	mlpMemFrac := (mlpRep.Energy.MemoryAccess + mlpRep.Energy.MemoryLeakage) / mlpRep.Energy.Total()

	cnnNet := cnn(t, 10)
	bc, err := New(cnnNet, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	_, cnnRep := bc.ClassifyDetailed(denseIntensity(cnnNet.Input.Size(), 11), snn.NewPoissonEncoder(0.7, 12))
	cnnMemFrac := (cnnRep.Energy.MemoryAccess + cnnRep.Energy.MemoryLeakage) / cnnRep.Energy.Total()

	if mlpMemFrac <= cnnMemFrac {
		t.Fatalf("MLP memory fraction %v should exceed CNN's %v (weight reuse)", mlpMemFrac, cnnMemFrac)
	}
}

// Fig 14b: baseline energy must grow with weight precision.
func TestEnergyGrowsWithBits(t *testing.T) {
	net := mlp(t, 13)
	intensity := denseIntensity(net.Input.Size(), 14)
	var prev float64
	for i, bits := range []int{1, 2, 4, 8} {
		opt := DefaultOptions()
		opt.Bits = bits
		b, err := New(net, opt)
		if err != nil {
			t.Fatal(err)
		}
		res, _ := b.Classify(intensity, snn.NewPoissonEncoder(0.7, 15))
		if i > 0 && res.Energy <= prev {
			t.Fatalf("energy at %d bits (%v) not above previous (%v)", bits, res.Energy, prev)
		}
		prev = res.Energy
	}
}

// Dense layers are weight-FIFO bound: cycles scale with ops; conv layers
// run on 16 parallel NUs.
func TestThroughputModel(t *testing.T) {
	cnnNet := cnn(t, 16)
	b, err := New(cnnNet, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	_, rep := b.ClassifyDetailed(denseIntensity(cnnNet.Input.Size(), 17), snn.NewPoissonEncoder(0.8, 18))
	if rep.Counts.Cycles <= 0 {
		t.Fatal("no cycles")
	}
	// Cycles must be well below 1 cycle/op for a conv-dominated net.
	if float64(rep.Counts.Cycles) > 0.6*float64(rep.Counts.SynOps) {
		t.Fatalf("conv net not exploiting NU parallelism: %d cycles for %d ops",
			rep.Counts.Cycles, rep.Counts.SynOps)
	}

	mlpNet := mlp(t, 19)
	bm, err := New(mlpNet, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	_, mrep := bm.ClassifyDetailed(denseIntensity(mlpNet.Input.Size(), 20), snn.NewPoissonEncoder(0.8, 21))
	// Dense: one weight per cycle at 4 bits.
	if mrep.Counts.Cycles != mrep.Counts.SynOps {
		t.Fatalf("dense cycles %d != ops %d", mrep.Counts.Cycles, mrep.Counts.SynOps)
	}
}

func TestClassifyBatch(t *testing.T) {
	net := mlp(t, 22)
	b, err := New(net, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := b.ClassifyBatch(nil, func(int) snn.Encoder { return snn.NewPoissonEncoder(0.5, 1) }, sim.Options{}); err == nil {
		t.Fatal("empty batch accepted")
	}
	inputs := []tensor.Vec{
		denseIntensity(net.Input.Size(), 23),
		denseIntensity(net.Input.Size(), 24),
	}
	res, srep, err := b.ClassifyBatch(inputs, func(i int) snn.Encoder { return snn.NewPoissonEncoder(0.8, 25+int64(i)) }, sim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	rep := srep.Detail.(Report)
	if res.Energy <= 0 || rep.Latency <= 0 {
		t.Fatalf("batch result %+v", res)
	}
}

func TestPredictionMatchesFunctionalModel(t *testing.T) {
	net := mlp(t, 26)
	b, err := New(net, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	intensity := denseIntensity(net.Input.Size(), 27)
	_, rep := b.ClassifyDetailed(intensity, snn.NewPoissonEncoder(0.8, 28))
	st := snn.NewState(net)
	want := st.Run(intensity, snn.NewPoissonEncoder(0.8, 28), b.Opt.Steps).Prediction
	if rep.Predicted != want {
		t.Fatalf("baseline predicted %d, functional %d", rep.Predicted, want)
	}
}

// Per-layer cycle profiles sum to the total and reveal the dense-layer
// bottleneck of MLPs.
func TestLayerCycles(t *testing.T) {
	net := mlp(t, 70)
	b, err := New(net, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	_, rep := b.ClassifyDetailed(denseIntensity(net.Input.Size(), 71), snn.NewPoissonEncoder(0.8, 72))
	if len(rep.LayerCycles) != len(net.Layers) {
		t.Fatalf("LayerCycles %d", len(rep.LayerCycles))
	}
	sum := 0
	for _, c := range rep.LayerCycles {
		sum += c
	}
	if sum != rep.Counts.Cycles {
		t.Fatalf("layer cycles %d don't sum to %d", sum, rep.Counts.Cycles)
	}
	// The wide first dense layer dominates runtime.
	if rep.LayerCycles[0] <= rep.LayerCycles[1] {
		t.Fatalf("first (wide) dense layer should dominate: %v", rep.LayerCycles)
	}
}
