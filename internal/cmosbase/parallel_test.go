package cmosbase

import (
	"reflect"
	"testing"

	"resparc/internal/sim"
	"resparc/internal/snn"
	"resparc/internal/tensor"
)

// Parallel batches reduce deterministically to the single-worker result.
func TestClassifyBatchParallelDeterministic(t *testing.T) {
	net := mlp(t, 61)
	b, err := New(net, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	inputs := []tensor.Vec{
		denseIntensity(net.Input.Size(), 62),
		denseIntensity(net.Input.Size(), 63),
		denseIntensity(net.Input.Size(), 64),
	}
	factory := func(i int) snn.Encoder { return snn.NewPoissonEncoder(0.8, 200+int64(i)) }
	serial, sSRep, err := b.ClassifyBatch(inputs, factory, sim.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	par, pSRep, err := b.ClassifyBatch(inputs, factory, sim.Options{Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	sRep := sSRep.Detail.(Report)
	pRep := pSRep.Detail.(Report)
	if serial.Energy != par.Energy || serial.Latency != par.Latency || sRep.Counts != pRep.Counts {
		t.Fatalf("parallel diverged: %+v vs %+v", sRep.Counts, pRep.Counts)
	}
	if _, _, err := b.ClassifyBatch(nil, factory, sim.Options{Workers: 2}); err == nil {
		t.Fatal("empty batch accepted")
	}
}

// ClassifyEach is the per-image primitive: results must be bit-identical for
// any worker count and its per-image predictions must match the serial
// single-image reference.
func TestClassifyEachMatchesSerialReference(t *testing.T) {
	net := mlp(t, 65)
	b, err := New(net, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	inputs := []tensor.Vec{
		denseIntensity(net.Input.Size(), 66),
		denseIntensity(net.Input.Size(), 67),
		denseIntensity(net.Input.Size(), 68),
		denseIntensity(net.Input.Size(), 69),
	}
	factory := func(i int) snn.Encoder { return snn.NewPoissonEncoder(0.8, 500+int64(i)) }
	one, oneReps, err := b.ClassifyEach(inputs, factory, sim.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	many, manyReps, err := b.ClassifyEach(inputs, factory, sim.Options{Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	for i := range inputs {
		if !reflect.DeepEqual(one[i], many[i]) || oneReps[i].Predicted != manyReps[i].Predicted {
			t.Fatalf("image %d diverged across worker counts", i)
		}
		refRes, refRep := b.Classify(inputs[i], factory(i))
		if !reflect.DeepEqual(one[i], refRes) || oneReps[i].Predicted != refRep.Predicted {
			t.Fatalf("image %d diverged from Classify: %+v vs %+v", i, one[i], refRes)
		}
	}
	if _, _, err := b.ClassifyEach(nil, factory, sim.Options{Workers: 2}); err == nil {
		t.Fatal("empty batch accepted")
	}
}

// Serial and parallel batch paths return the same aggregated shape:
// averaged counters, populated per-layer cycles, Predicted == -1.
func TestClassifyBatchAggregateShapeUnified(t *testing.T) {
	net := mlp(t, 75)
	b, err := New(net, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	inputs := []tensor.Vec{
		denseIntensity(net.Input.Size(), 76),
		denseIntensity(net.Input.Size(), 77),
	}
	factory := func(i int) snn.Encoder { return snn.NewPoissonEncoder(0.8, 600+int64(i)) }
	_, sSRep, err := b.ClassifyBatch(inputs, factory, sim.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	_, pSRep, err := b.ClassifyBatch(inputs, factory, sim.Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, srep := range []sim.Report{sSRep, pSRep} {
		rep := srep.Detail.(Report)
		if rep.Predicted != -1 {
			t.Fatalf("aggregate Predicted = %d, want -1", rep.Predicted)
		}
		if len(rep.LayerCycles) != len(net.Layers) {
			t.Fatalf("aggregate LayerCycles %d, want %d", len(rep.LayerCycles), len(net.Layers))
		}
	}
}

// Options.Batch routes ClassifyEach through the batch-major runner; every
// (batch, workers) combination must stay bit-identical to the per-image
// serial reference — results, counters, per-layer cycles — on both the MLP
// and the conv+pool CNN fixture.
func TestClassifyEachBatchMajorEquivalence(t *testing.T) {
	for _, tc := range []struct {
		name string
		net  *snn.Network
	}{
		{"mlp", mlp(t, 91)},
		{"cnn", cnn(t, 92)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			opt := DefaultOptions()
			opt.Steps = 20
			b, err := New(tc.net, opt)
			if err != nil {
				t.Fatal(err)
			}
			inputs := make([]tensor.Vec, 7)
			for i := range inputs {
				inputs[i] = denseIntensity(tc.net.Input.Size(), 700+int64(i))
			}
			factory := func(i int) snn.Encoder { return snn.NewPoissonEncoder(0.8, 800+int64(i)) }
			ref, refReps, err := b.ClassifyEach(inputs, factory, sim.Options{Workers: 1})
			if err != nil {
				t.Fatal(err)
			}
			for _, batch := range []int{2, 3, 8} {
				for _, workers := range []int{1, 3} {
					got, gotReps, err := b.ClassifyEach(inputs, factory, sim.Options{Workers: workers, Batch: batch})
					if err != nil {
						t.Fatal(err)
					}
					for i := range inputs {
						if !reflect.DeepEqual(got[i], ref[i]) {
							t.Fatalf("batch=%d workers=%d image %d: result %+v, want %+v",
								batch, workers, i, got[i], ref[i])
						}
						gd := gotReps[i].Detail.(Report)
						rd := refReps[i].Detail.(Report)
						if gotReps[i].Predicted != refReps[i].Predicted || gd.Counts != rd.Counts ||
							gd.Energy != rd.Energy || gd.Latency != rd.Latency {
							t.Fatalf("batch=%d workers=%d image %d: report diverged", batch, workers, i)
						}
						for li := range rd.LayerCycles {
							if gd.LayerCycles[li] != rd.LayerCycles[li] {
								t.Fatalf("batch=%d workers=%d image %d layer %d: cycles diverged",
									batch, workers, i, li)
							}
						}
					}
				}
			}
		})
	}
}
