package cmosbase

import (
	"testing"

	"resparc/internal/snn"
	"resparc/internal/tensor"
)

// Parallel batches reduce deterministically to the single-worker result.
func TestClassifyBatchParallelDeterministic(t *testing.T) {
	net := mlp(t, 61)
	b, err := New(net, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	inputs := []tensor.Vec{
		denseIntensity(net.Input.Size(), 62),
		denseIntensity(net.Input.Size(), 63),
		denseIntensity(net.Input.Size(), 64),
	}
	factory := func(i int) snn.Encoder { return snn.NewPoissonEncoder(0.8, 200+int64(i)) }
	serial, sRep, err := b.ClassifyBatchParallel(inputs, factory, 1)
	if err != nil {
		t.Fatal(err)
	}
	par, pRep, err := b.ClassifyBatchParallel(inputs, factory, 3)
	if err != nil {
		t.Fatal(err)
	}
	if serial.Energy != par.Energy || serial.Latency != par.Latency || sRep.Counts != pRep.Counts {
		t.Fatalf("parallel diverged: %+v vs %+v", sRep.Counts, pRep.Counts)
	}
	if _, _, err := b.ClassifyBatchParallel(nil, factory, 2); err == nil {
		t.Fatal("empty batch accepted")
	}
}
