// Package cmosbase implements the paper's optimized digital CMOS baseline
// (§4.1, Fig 9): a 45 nm, 1 GHz accelerator with 16 neuron units fed by 16
// input FIFOs and a single 4-bit weight FIFO, following the FALCON dataflow
// ([15]) and aggressively optimized for SNNs with event-driven skipping of
// zero spikes and buffered temporal/spatial weight reuse.
//
// The model captures the two properties that shape Fig 12(b,d):
//
//   - MLP layers have no weight reuse: every active synapse streams its
//     weight from the (large) weight SRAM, so energy is memory-dominated
//     and throughput is bound by the single weight FIFO (one weight per
//     cycle at the 4-bit reference width).
//   - Conv layers reuse kernels across output positions: the small kernel
//     working set is fetched once per timestep and served from buffers, so
//     energy is core-dominated and the 16 NUs parallelize the accumulate
//     operations.
package cmosbase

import (
	"fmt"

	"resparc/internal/bitvec"
	"resparc/internal/energy"
	"resparc/internal/perf"
	"resparc/internal/sim"
	"resparc/internal/snn"
	"resparc/internal/tensor"
)

// Options configure the baseline simulation.
type Options struct {
	Params energy.Params
	// Bits is the weight precision (4 in the main evaluation; Fig 14b
	// sweeps 1..8).
	Bits int
	// EventDriven applies the zero-spike skipping optimizations of §4.1
	// (the paper's baseline always has them; the toggle exists for
	// ablation).
	EventDriven bool
	// Steps is the number of SNN timesteps per classification.
	Steps int
	// Stepped forces the step-major functional runner instead of the
	// default blocked layer-major one (see snn.RunBlocked); both produce
	// bit-identical rasters and counters.
	Stepped bool
	// BlockSize overrides the blocked runner's temporal block length
	// (<= 0 selects snn.DefaultBlockSize). Ignored when Stepped is set.
	BlockSize int
}

// DefaultOptions returns the paper's baseline configuration.
func DefaultOptions() Options {
	return Options{Params: energy.Default45nm(), Bits: 4, EventDriven: true, Steps: 64}
}

// Counters are the raw event counts of one classification.
type Counters struct {
	Cycles        int
	SynOps        int // synaptic accumulations executed
	WeightWords   int // weight-memory words fetched
	ActWords      int // activation/spike words read+written
	NeuronUpdates int // membrane-potential read-modify-writes
}

// Report is the outcome of one classification on the baseline.
type Report struct {
	Energy    perf.CMOSEnergy
	Latency   float64
	Counts    Counters
	Predicted int
	// LayerCycles accumulates execution cycles per layer over the run —
	// the per-stage profile that shows dense layers dominating MLP time
	// (weight-FIFO bound) and conv layers dominating CNN time.
	LayerCycles []int
}

// Baseline is a network prepared for baseline simulation.
type Baseline struct {
	Net *snn.Network
	Opt Options

	weightMem energy.SRAM
	actMem    energy.SRAM
	// uniqueWeights per layer (kernel parameters for conv, full matrix for
	// dense, none for pool).
	uniqueWeights []int
}

// New prepares the baseline for a network: the weight memory is sized for
// every unique weight at the configured precision, the activation memory
// for membrane potentials (16-bit) and spike bits.
func New(net *snn.Network, opt Options) (*Baseline, error) {
	if opt.Bits < 1 || opt.Bits > 64 {
		return nil, fmt.Errorf("cmosbase: bits %d out of [1,64]", opt.Bits)
	}
	if opt.Steps < 1 {
		return nil, fmt.Errorf("cmosbase: steps %d", opt.Steps)
	}
	if len(net.Layers) == 0 {
		return nil, fmt.Errorf("cmosbase: network %q has no layers", net.Name)
	}
	b := &Baseline{Net: net, Opt: opt}
	// The weight memory is provisioned for the maximum supported precision
	// (8 bits); lower precisions pack more weights per word but the macro
	// (and its leakage) stays the same — which is why the baseline's Fig 14b
	// energy rises only through access/core/latency terms at low precision.
	const maxWeightBits = 8
	totalWeights := 0
	for _, l := range net.Layers {
		var u int
		switch l.Kind {
		case snn.DenseLayer:
			u = l.InSize() * l.OutSize()
		case snn.ConvLayer:
			u = l.W.Rows * l.W.Cols
		case snn.PoolLayer:
			u = 0 // fixed 1/K² weight needs no storage
		}
		b.uniqueWeights = append(b.uniqueWeights, u)
		totalWeights += u
	}
	wBytes := totalWeights * maxWeightBits / 8
	if wBytes < 1024 {
		wBytes = 1024
	}
	b.weightMem = energy.NewSRAM(wBytes)
	aBytes := net.HiddenNeurons() * 3 // 16-bit Vmem + spike bits + slack
	if aBytes < 1024 {
		aBytes = 1024
	}
	b.actMem = energy.NewSRAM(aBytes)
	return b, nil
}

// WeightMemoryBytes exposes the weight SRAM capacity (for reports).
func (b *Baseline) WeightMemoryBytes() int { return b.weightMem.Bytes }

// observer charges events per timestep.
type observer struct {
	b           *Baseline
	cnt         Counters
	layerCycles []int
}

// ObserveStep implements snn.Observer.
func (o *observer) ObserveStep(_ int, input *bitvec.Bits, layers []*bitvec.Bits) {
	b := o.b
	p := b.Opt.Params
	bits := b.Opt.Bits
	if o.layerCycles == nil {
		o.layerCycles = make([]int, len(b.Net.Layers))
	}
	cur := input
	for li, l := range b.Net.Layers {
		prevCycles := o.cnt.Cycles
		// Synaptic work: event-driven skips silent inputs entirely. The
		// adjacency lookup inside ActiveSynOps is hoisted out of the
		// per-spike loop (FanOut re-fetched it per spike).
		ops := 0
		if b.Opt.EventDriven {
			ops = l.ActiveSynOps(cur)
		} else {
			ops = l.Synapses()
		}
		o.cnt.SynOps += ops

		// Weight traffic.
		var weightWords int
		switch l.Kind {
		case snn.DenseLayer:
			// No reuse: each op streams its weight from memory.
			weightWords = b.weightMem.WordsFor(ops, bits)
		case snn.ConvLayer:
			// Kernel working set fetched once per timestep, then served
			// from the weight buffer.
			if ops > 0 {
				weightWords = b.weightMem.WordsFor(b.uniqueWeights[li], bits)
			}
		case snn.PoolLayer:
			weightWords = 0
		}
		o.cnt.WeightWords += weightWords

		// Activation traffic: spike vectors in and out, zero words skipped
		// by the event-driven read path.
		zeroIn, totalIn := cur.ZeroPackets(64)
		out := layers[li]
		zeroOut, totalOut := out.ZeroPackets(64)
		actWords := 0
		if b.Opt.EventDriven {
			actWords = (totalIn - zeroIn) + (totalOut - zeroOut)
		} else {
			actWords = totalIn + totalOut
		}
		o.cnt.ActWords += actWords

		// Membrane updates: every neuron that received at least one op this
		// step performs a read-modify-write; bound by the layer size.
		updates := 0
		if ops > 0 {
			updates = l.OutSize()
		}
		o.cnt.NeuronUpdates += updates

		// Cycles: dense layers are bound by the single weight FIFO (one
		// 4-bit weight per cycle; wider weights take proportionally
		// longer); conv/pool layers reuse weights so the 16 NUs bound
		// throughput (with a floor at the fetch bandwidth).
		switch l.Kind {
		case snn.DenseLayer:
			// One weight per FIFO pop minimum; wider weights take
			// proportionally more pops.
			o.cnt.Cycles += ops * ((bits + p.BitRefWidth - 1) / p.BitRefWidth)
		default:
			nuCycles := (ops + 15) / 16
			if weightWords > nuCycles {
				nuCycles = weightWords
			}
			o.cnt.Cycles += nuCycles
		}
		o.layerCycles[li] += o.cnt.Cycles - prevCycles
		cur = out
	}
}

var _ sim.Backend = (*Baseline)(nil)

// Name implements sim.Backend.
func (b *Baseline) Name() string { return "cmos" }

// Network implements sim.Backend.
func (b *Baseline) Network() *snn.Network { return b.Net }

// Healthy implements sim.Backend; the digital baseline has no fault
// campaigns, so it is always servable.
func (b *Baseline) Healthy() error { return nil }

// Classify implements sim.Backend: one classification with the baseline's
// configured runner and step budget.
func (b *Baseline) Classify(intensity tensor.Vec, enc snn.Encoder) (perf.Result, sim.Report) {
	res, rep, steps := b.classifyOne(snn.NewState(b.Net), intensity, enc, sim.Options{})
	return res, sim.Report{Predicted: rep.Predicted, Steps: steps, Detail: rep}
}

// ClassifyDetailed is Classify returning the baseline's own Report (event
// counters, per-layer cycles) instead of the backend-neutral sim.Report.
func (b *Baseline) ClassifyDetailed(intensity tensor.Vec, enc snn.Encoder) (perf.Result, Report) {
	res, rep, _ := b.classifyOne(snn.NewState(b.Net), intensity, enc, sim.Options{})
	return res, rep
}

// classifyOne runs one classification on a caller-owned state (reused
// across a worker's batch share) under the given per-call options.
func (b *Baseline) classifyOne(st *snn.State, intensity tensor.Vec, enc snn.Encoder, opt sim.Options) (perf.Result, Report, int) {
	obs := &observer{b: b}
	if opt.EarlyExit {
		steps, predicted := sim.EarlyExitRun(st, intensity, enc, b.Opt.Steps, obs)
		res, rep := b.finish(obs.cnt, predicted)
		rep.LayerCycles = obs.layerCycles
		res.Steps = steps
		return res, rep, steps
	}
	var run snn.RunResult
	if b.Opt.Stepped || opt.Stepped {
		run = st.RunObserved(intensity, enc, b.Opt.Steps, obs)
	} else {
		bs := b.Opt.BlockSize
		if opt.BlockSize > 0 {
			bs = opt.BlockSize
		}
		run = st.RunBlockedK(intensity, enc, b.Opt.Steps, bs, obs)
	}
	res, rep := b.finish(obs.cnt, run.Prediction)
	rep.LayerCycles = obs.layerCycles
	return res, rep, b.Opt.Steps
}

func (b *Baseline) finish(cnt Counters, predicted int) (perf.Result, Report) {
	p := b.Opt.Params
	lat := float64(cnt.Cycles) * p.CMOSCycle()
	var e perf.CMOSEnergy
	e.Core = float64(cnt.SynOps)*(p.CoreOpAt(b.Opt.Bits)+2*p.FIFOAccess) +
		float64(cnt.NeuronUpdates)*p.NeuronUnitUpdate
	e.MemoryAccess = float64(cnt.WeightWords)*b.weightMem.AccessEnergy() +
		float64(cnt.ActWords)*b.actMem.AccessEnergy()
	e.MemoryLeakage = (b.weightMem.LeakagePower() + b.actMem.LeakagePower()) * lat
	rep := Report{Energy: e, Latency: lat, Counts: cnt, Predicted: predicted}
	res := perf.Result{
		Arch:    "cmos",
		Network: b.Net.Name,
		Energy:  e.Total(),
		Latency: lat,
		Steps:   b.Opt.Steps,
	}
	return res, rep
}

// classifyGroup runs one contiguous group of images batch-major on a
// caller-owned batch state, one observer per image. The batch runner hands
// each observer exactly the per-step rasters the per-image runner produces,
// so counters, energies and predictions match classifyOne bit for bit.
func (b *Baseline) classifyGroup(bst *snn.BatchState, inputs []tensor.Vec, encs []snn.Encoder, opt sim.Options) ([]perf.Result, []sim.Report) {
	nb := len(inputs)
	obs := make([]snn.Observer, nb)
	cobs := make([]*observer, nb)
	for i := range obs {
		o := &observer{b: b}
		cobs[i] = o
		obs[i] = o
	}
	bs := b.Opt.BlockSize
	if opt.BlockSize > 0 {
		bs = opt.BlockSize
	}
	runs := bst.RunBlocked(inputs, encs, b.Opt.Steps, bs, obs)
	ress := make([]perf.Result, nb)
	reps := make([]sim.Report, nb)
	for i := range runs {
		res, rep := b.finish(cobs[i].cnt, runs[i].Prediction)
		rep.LayerCycles = cobs[i].layerCycles
		ress[i] = res
		reps[i] = sim.Report{Predicted: rep.Predicted, Steps: b.Opt.Steps, Detail: rep}
	}
	return ress, reps
}

// ClassifyEach implements sim.Backend: per-image classification across the
// shared worker pool via the one fan-out in sim.Each. Each worker owns one
// simulation state, each sample gets its own encoder, and image i's outcome
// depends only on (input[i], enc(i)), so results are bit-identical for any
// worker count. Options.Batch > 1 routes contiguous groups through the
// batch-major runner (sim.EachGrouped) instead; grouping never changes
// results.
func (b *Baseline) ClassifyEach(inputs []tensor.Vec, enc sim.EncoderFactory, opt sim.Options) ([]perf.Result, []sim.Report, error) {
	if opt.Batch > 1 && !opt.Stepped && !b.Opt.Stepped && !opt.EarlyExit {
		return sim.EachGrouped(inputs, enc, opt, func(batch int) sim.GroupSession {
			bst := snn.NewBatchState(b.Net, batch)
			return func(ins []tensor.Vec, encs []snn.Encoder, _ int) ([]perf.Result, []sim.Report) {
				return b.classifyGroup(bst, ins, encs, opt)
			}
		})
	}
	return sim.Each(inputs, enc, opt, func() sim.Session {
		st := snn.NewState(b.Net)
		return func(in tensor.Vec, e snn.Encoder) (perf.Result, sim.Report) {
			res, rep, steps := b.classifyOne(st, in, e, opt)
			return res, sim.Report{Predicted: rep.Predicted, Steps: steps, Detail: rep}
		}
	})
}

// reduceReports aggregates per-image reports into the baseline's batch
// shape: counters and per-layer cycles averaged per classification (the
// paper reports per-classification averages), energy recomputed from the
// averaged counters, and Predicted == -1 (an aggregate has no single
// prediction). The reduction differs from the chip's (which averages
// energies directly) — which is exactly why aggregation lives with the
// backend rather than in sim.
func (b *Baseline) reduceReports(reps []Report) (perf.Result, Report) {
	var cnt Counters
	layer := make([]int, len(b.Net.Layers))
	for _, r := range reps {
		cnt.Cycles += r.Counts.Cycles
		cnt.SynOps += r.Counts.SynOps
		cnt.WeightWords += r.Counts.WeightWords
		cnt.ActWords += r.Counts.ActWords
		cnt.NeuronUpdates += r.Counts.NeuronUpdates
		for li, c := range r.LayerCycles {
			layer[li] += c
		}
	}
	n := len(reps)
	cnt.Cycles /= n
	cnt.SynOps /= n
	cnt.WeightWords /= n
	cnt.ActWords /= n
	cnt.NeuronUpdates /= n
	for li := range layer {
		layer[li] /= n
	}
	res, rep := b.finish(cnt, -1)
	rep.LayerCycles = layer
	return res, rep
}

// ClassifyBatch implements sim.Backend: it classifies every input and
// reduces the per-image reports with the baseline's aggregation. The
// outcome is bit-identical for any worker count.
func (b *Baseline) ClassifyBatch(inputs []tensor.Vec, enc sim.EncoderFactory, opt sim.Options) (perf.Result, sim.Report, error) {
	_, sreps, err := b.ClassifyEach(inputs, enc, opt)
	if err != nil {
		return perf.Result{}, sim.Report{}, err
	}
	reps := make([]Report, len(sreps))
	for i, r := range sreps {
		reps[i] = r.Detail.(Report)
	}
	res, rep := b.reduceReports(reps)
	return res, sim.Report{Predicted: -1, Steps: b.Opt.Steps, Detail: rep}, nil
}
