// Package packet defines the spike-packet and address formats moved through
// RESPARC's programmable switch network and global IO bus (paper Fig 6), and
// the zero-check logic of §3.2 that suppresses transfers of insignificant
// (all-zero) spike packets — the architectural hook for SNN event-drivenness.
//
// Address formats (Fig 6):
//
//	input address (iAddress):  SW_ID | mPE_ID | MCA_ID
//	output address (oAddress): mPE_ID | MCA_ID   (switch -> mPE)
//	                           MCA_ID            (switch -> switch)
package packet

import "fmt"

// Field widths of the packed 24-bit address (8 bits per level is ample for
// the 4x4 NeuroCell with 9 switches and 4 MCAs per mPE).
const (
	swBits  = 8
	mpeBits = 8
	mcaBits = 8
)

// Address identifies a destination MCA input port within a NeuroCell.
type Address struct {
	SW  uint8 // programmable switch id
	MPE uint8 // mPE id within the NeuroCell
	MCA uint8 // MCA id within the mPE
}

// Encode packs the address into its Fig 6 wire format.
func (a Address) Encode() uint32 {
	return uint32(a.SW)<<(mpeBits+mcaBits) | uint32(a.MPE)<<mcaBits | uint32(a.MCA)
}

// DecodeAddress unpacks a wire-format address.
func DecodeAddress(v uint32) Address {
	return Address{
		SW:  uint8(v >> (mpeBits + mcaBits)),
		MPE: uint8(v >> mcaBits),
		MCA: uint8(v),
	}
}

func (a Address) String() string {
	return fmt.Sprintf("sw%d.mpe%d.mca%d", a.SW, a.MPE, a.MCA)
}

// Width is the spike-packet payload width in bits. The architecture is
// 64-bit (Fig 8); event-driven studies also sweep narrower packets (Fig 13's
// run-length discussion).
const Width = 64

// Packet is one spike packet in flight: a payload of Width spike bits plus
// the target address and the index of the first neuron the payload covers.
type Packet struct {
	Dst    Address
	Offset int    // index of bit 0 within the target MCA's input rows
	Bits   uint64 // spike payload, LSB = Offset
	Valid  int    // number of meaningful bits (1..Width)
}

// NewPacket builds a packet, validating the payload width.
func NewPacket(dst Address, offset int, bits uint64, valid int) Packet {
	if valid < 1 || valid > Width {
		panic(fmt.Sprintf("packet: valid bits %d out of [1,%d]", valid, Width))
	}
	if offset < 0 {
		panic(fmt.Sprintf("packet: negative offset %d", offset))
	}
	if valid < Width {
		bits &= (1 << uint(valid)) - 1
	}
	return Packet{Dst: dst, Offset: offset, Bits: bits, Valid: valid}
}

// IsZero implements the zero-check logic: a packet whose valid bits are all
// zero carries no spikes and its transfer can be suppressed.
func (p Packet) IsZero() bool { return p.Bits == 0 }

// Spikes returns the indices (Offset-relative to the MCA rows) of the set
// bits.
func (p Packet) Spikes() []int {
	var out []int
	b := p.Bits
	for i := 0; i < p.Valid; i++ {
		if b&1 != 0 {
			out = append(out, p.Offset+i)
		}
		b >>= 1
	}
	return out
}

func (p Packet) String() string {
	return fmt.Sprintf("pkt{%v +%d %0*b}", p.Dst, p.Offset, p.Valid, p.Bits)
}

// LinkFilter drops packets addressed through dead switches — the explicit
// NoC-link kill-switch hook of a fault campaign (fault.Campaign.DeadLinks).
// The zero value drops nothing.
type LinkFilter struct {
	dead map[uint8]bool
}

// NewLinkFilter builds a filter for the given dead switch ids; out-of-range
// ids are ignored (switch ids are 8-bit on the wire).
func NewLinkFilter(deadSwitches []int) *LinkFilter {
	f := &LinkFilter{}
	for _, sw := range deadSwitches {
		if sw < 0 || sw > 0xff {
			continue
		}
		if f.dead == nil {
			f.dead = make(map[uint8]bool)
		}
		f.dead[uint8(sw)] = true
	}
	return f
}

// Drops reports whether the packet's destination switch is dead, i.e. the
// packet would be lost in the fabric.
func (f *LinkFilter) Drops(p Packet) bool {
	return f != nil && f.dead[p.Dst.SW]
}

// DeadCount returns the number of killed switches.
func (f *LinkFilter) DeadCount() int {
	if f == nil {
		return 0
	}
	return len(f.dead)
}
