package packet_test

import (
	"fmt"

	"resparc/internal/packet"
)

// Fig 6 address format round trip, and the zero-check that suppresses
// insignificant spike packets (§3.2).
func ExampleNewPacket() {
	dst := packet.Address{SW: 3, MPE: 7, MCA: 1}
	p := packet.NewPacket(dst, 64, 0b1010, 8)
	fmt.Println(p.Dst, "zero:", p.IsZero(), "spikes:", p.Spikes())

	silent := packet.NewPacket(dst, 0, 0, 8)
	fmt.Println("silent packet suppressed:", silent.IsZero())
	// Output:
	// sw3.mpe7.mca1 zero: false spikes: [65 67]
	// silent packet suppressed: true
}
