package packet

import (
	"testing"
	"testing/quick"
)

func TestAddressRoundTrip(t *testing.T) {
	f := func(sw, mpe, mca uint8) bool {
		a := Address{SW: sw, MPE: mpe, MCA: mca}
		return DecodeAddress(a.Encode()) == a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAddressString(t *testing.T) {
	a := Address{SW: 1, MPE: 2, MCA: 3}
	if a.String() != "sw1.mpe2.mca3" {
		t.Fatalf("String = %q", a.String())
	}
}

func TestNewPacketMasksInvalidBits(t *testing.T) {
	p := NewPacket(Address{}, 0, ^uint64(0), 8)
	if p.Bits != 0xFF {
		t.Fatalf("Bits = %x, want ff", p.Bits)
	}
}

func TestNewPacketFullWidth(t *testing.T) {
	p := NewPacket(Address{}, 0, ^uint64(0), 64)
	if p.Bits != ^uint64(0) {
		t.Fatal("full-width payload must be preserved")
	}
}

func TestNewPacketValidation(t *testing.T) {
	cases := []struct {
		offset, valid int
	}{{0, 0}, {0, 65}, {-1, 8}}
	for _, c := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("offset=%d valid=%d accepted", c.offset, c.valid)
				}
			}()
			NewPacket(Address{}, c.offset, 1, c.valid)
		}()
	}
}

func TestIsZero(t *testing.T) {
	if !NewPacket(Address{}, 0, 0, 64).IsZero() {
		t.Fatal("zero payload not detected")
	}
	if NewPacket(Address{}, 0, 1<<63, 64).IsZero() {
		t.Fatal("non-zero payload reported zero")
	}
	// High garbage bits beyond Valid are masked, so this IS a zero packet.
	if !NewPacket(Address{}, 0, 0xF0, 4).IsZero() {
		t.Fatal("masked packet should be zero")
	}
}

func TestSpikes(t *testing.T) {
	p := NewPacket(Address{}, 128, 0b1011, 8)
	got := p.Spikes()
	want := []int{128, 129, 131}
	if len(got) != len(want) {
		t.Fatalf("Spikes = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Spikes = %v, want %v", got, want)
		}
	}
	if NewPacket(Address{}, 0, 0, 8).Spikes() != nil {
		t.Fatal("zero packet should yield no spikes")
	}
}

// Property: spike count equals popcount of the masked payload.
func TestSpikesCountProperty(t *testing.T) {
	f := func(bits uint64, valid uint8) bool {
		v := int(valid%64) + 1
		p := NewPacket(Address{}, 0, bits, v)
		n := 0
		for _, idx := range p.Spikes() {
			if idx < 0 || idx >= v {
				return false
			}
			n++
		}
		cnt := 0
		for i := 0; i < v; i++ {
			if bits&(1<<uint(i)) != 0 {
				cnt++
			}
		}
		return n == cnt
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
