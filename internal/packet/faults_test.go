package packet

import "testing"

func TestLinkFilter(t *testing.T) {
	f := NewLinkFilter([]int{3, 7, -1, 999})
	if f.DeadCount() != 2 {
		t.Fatalf("DeadCount = %d, want 2 (out-of-range ids ignored)", f.DeadCount())
	}
	dead := NewPacket(Address{SW: 3, MPE: 1, MCA: 0}, 0, 0b101, 8)
	live := NewPacket(Address{SW: 4, MPE: 1, MCA: 0}, 0, 0b101, 8)
	if !f.Drops(dead) {
		t.Fatal("packet to dead switch not dropped")
	}
	if f.Drops(live) {
		t.Fatal("packet to live switch dropped")
	}
	// Zero value and nil drop nothing.
	var zero LinkFilter
	if zero.Drops(dead) || (*LinkFilter)(nil).Drops(dead) {
		t.Fatal("empty filter dropped a packet")
	}
	if (*LinkFilter)(nil).DeadCount() != 0 {
		t.Fatal("nil filter has dead switches")
	}
}
