package shard

import (
	"resparc/internal/core"
	"resparc/internal/event"
)

// This file is the event-engine composition of the multi-chip pipeline
// (sim.Options.EventEngine / core.Options.EventEngine): instead of summing
// per-shard cycles and closed-form link occupancy, the per-(timestep, layer)
// stage durations recorded by each shard's accountant and the per-timestep
// link transfers are composed by one global discrete-event simulation —
// stages overlap across timesteps inside each chip, each chip serializes on
// its own global bus, and every boundary hop is a serialized channel with a
// bounded receive buffer, so inter-chip backpressure (a slow downstream
// shard stalling the sender's pad) emerges from flow control instead of
// being ignored. Energies, counters and predictions are untouched; only
// Cycles/Latency (and the new wait statistics) come from the event clock.

// eventMakespan runs the global pipeline DES over the shards' stage grids.
// Stage (shard s, timestep t, layer j) starts once (s, t-1, j) and
// (s, t, j-1) are done; a shard's first layer additionally waits for the
// upstream hop to deliver raster t. Hop s carries raster t for
// hopSteps[s][t] cycles, transfers strictly in timestep order (the channel
// is one serialized link), and holds at most recvBuf undelivered rasters at
// the receiver — a credit frees when the receiving shard finishes consuming
// a raster (its first-layer stage for that timestep completes).
//
// It returns the pipeline makespan in cycles, each hop's total wait (cycles
// rasters sat at the sender pad after being ready — channel serialization
// plus credit backpressure), and the summed per-chip bus queuing.
func eventMakespan(parts []core.Report, hopSteps [][]int64, recvBuf int) (makespan int64, linkWait []int64, busWait int64) {
	S := len(parts)
	linkWait = make([]int64, S-1)
	if S == 0 || len(parts[0].Stages) == 0 {
		return 0, linkWait, 0
	}
	T := len(parts[0].Stages)
	if recvBuf < 1 {
		recvBuf = 1
	}

	var eng event.Engine
	buses := make([]event.Resource, S) // one global bus per chip
	// need[s][t][j]: outstanding dependencies before stage (s,t,j) may start.
	need := make([][][]int8, S)
	for s := 0; s < S; s++ {
		L := len(parts[s].Stages[0])
		need[s] = make([][]int8, T)
		for t := 0; t < T; t++ {
			need[s][t] = make([]int8, L)
			for j := 0; j < L; j++ {
				if t > 0 {
					need[s][t][j]++
				}
				if j > 0 || s > 0 {
					need[s][t][j]++ // j==0 on s>0 waits for the link delivery
				}
			}
		}
	}

	// Per-hop link state: readyAt[t] is the tick the sender produced raster t
	// (-1 = not yet), next is the lowest unsent timestep, busy marks a
	// transfer in flight, credits the free receive-buffer slots.
	readyAt := make([][]int64, S-1)
	next := make([]int, S-1)
	busy := make([]bool, S-1)
	credits := make([]int, S-1)
	for h := range readyAt {
		readyAt[h] = make([]int64, T)
		for t := range readyAt[h] {
			readyAt[h][t] = -1
		}
		credits[h] = recvBuf
	}

	var launch func(s, t, j int)
	signal := func(s, t, j int) {
		if t >= T || j >= len(need[s][t]) {
			return
		}
		need[s][t][j]--
		if need[s][t][j] <= 0 {
			launch(s, t, j)
		}
	}
	var trySend func(h int)
	trySend = func(h int) {
		t := next[h]
		if t >= T || busy[h] || readyAt[h][t] < 0 || credits[h] == 0 {
			return
		}
		now := eng.Now()
		linkWait[h] += now - readyAt[h][t]
		busy[h] = true
		credits[h]--
		eng.Schedule(now+hopSteps[h][t], int32(1<<20+h), func() {
			busy[h] = false
			next[h]++
			signal(h+1, t, 0) // raster delivered: receiver's first layer may start
			trySend(h)
		})
	}
	launch = func(s, t, j int) {
		d := parts[s].Stages[t][j]
		busAt := eng.Now() + int64(d.Sync)
		end := busAt + int64(d.Local)
		if d.Bus > 0 {
			start := buses[s].Acquire(busAt, int64(d.Bus))
			end = start + int64(d.Bus) + int64(d.Local)
		}
		last := j == len(need[s][t])-1
		eng.Schedule(end, int32(s<<10+j), func() {
			if last && s < S-1 {
				// Raster t is on the sender pad.
				readyAt[s][t] = eng.Now()
				trySend(s)
			}
			if j == 0 && s > 0 {
				// Raster consumed: free a receive-buffer slot upstream.
				credits[s-1]++
				trySend(s - 1)
			}
			signal(s, t, j+1)
			signal(s, t+1, j)
		})
	}
	eng.Schedule(0, 0, func() { launch(0, 0, 0) })
	makespan = eng.Run()
	for s := range buses {
		busWait += buses[s].Wait()
	}
	return makespan, linkWait, busWait
}
