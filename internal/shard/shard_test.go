package shard

import (
	"reflect"
	"strings"
	"testing"

	"resparc/internal/bench"
	"resparc/internal/core"
	"resparc/internal/dataset"
	"resparc/internal/mapping"
	"resparc/internal/sim"
	"resparc/internal/snn"
	"resparc/internal/tensor"
)

const testSteps = 16

func chipFor(t *testing.T, b bench.Benchmark) *core.Chip {
	t.Helper()
	net, err := b.Build(1)
	if err != nil {
		t.Fatal(err)
	}
	m, err := mapping.Map(net, mapping.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	opt := core.DefaultOptions()
	opt.Steps = testSteps
	chip, err := core.New(net, m, opt)
	if err != nil {
		t.Fatal(err)
	}
	return chip
}

func benchInputs(t *testing.T, b bench.Benchmark, net *snn.Network, n int) []tensor.Vec {
	t.Helper()
	set := dataset.Generate(b.Dataset, n, 101)
	out := make([]tensor.Vec, len(set.Samples))
	for i, s := range set.Samples {
		in, err := bench.PrepareInput(s.Input, set.Shape, net.Input)
		if err != nil {
			t.Fatal(err)
		}
		out[i] = bench.NormalizeIntensity(in)
	}
	return out
}

func factoryFor(seed int64) sim.EncoderFactory {
	base := snn.NewPoissonEncoder(0.8, seed)
	return func(i int) snn.Encoder { return base.ForkSeed(i) }
}

// The sharded pipeline's defining contract: for every Fig 10 benchmark and
// every shard count, predictions, merged event counters, and the summed
// chip energy are bit-identical to the single-chip simulation. Run with
// -race: the pipeline stages exchange boundary rasters over channels.
func TestShardedMatchesSingleChip(t *testing.T) {
	for _, b := range bench.All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			chip := chipFor(t, b)
			inputs := benchInputs(t, b, chip.Net, 3)

			refRess, refReps, err := chip.ClassifyEach(inputs, factoryFor(7), sim.Options{Workers: 1})
			if err != nil {
				t.Fatal(err)
			}

			for _, n := range []int{1, 2, 4} {
				multi, err := New(chip, Config{Shards: n})
				if err != nil {
					t.Fatal(err)
				}
				ress, reps, err := multi.ClassifyEach(inputs, factoryFor(7), sim.Options{})
				if err != nil {
					t.Fatal(err)
				}
				for i := range inputs {
					ref := refReps[i].Detail.(core.Report)
					got := reps[i].Detail.(Report)
					if reps[i].Predicted != refReps[i].Predicted {
						t.Fatalf("x%d image %d: predicted %d, single-chip %d",
							n, i, reps[i].Predicted, refReps[i].Predicted)
					}
					if got.Chip.Counts != ref.Counts {
						t.Fatalf("x%d image %d: counters diverged\nsharded: %+v\nsingle:  %+v",
							n, i, got.Chip.Counts, ref.Counts)
					}
					if got.Chip.Energy != ref.Energy {
						t.Fatalf("x%d image %d: chip energy diverged\nsharded: %+v\nsingle:  %+v",
							n, i, got.Chip.Energy, ref.Energy)
					}
					if got.Chip.Energy.Total() != refRess[i].Energy {
						t.Fatalf("x%d image %d: summed energy %v != single-chip %v",
							n, i, got.Chip.Energy.Total(), refRess[i].Energy)
					}
					// The sharded total adds the inter-chip link on top of the
					// chip energy; a single shard has no link at all.
					wantLink := got.Link.EnergyJ
					if n == 1 && (wantLink != 0 || got.Link.Cycles != 0) {
						t.Fatalf("x1 link traffic: %+v", got.Link)
					}
					if ress[i].Energy != got.Chip.Energy.Total()+wantLink {
						t.Fatalf("x%d image %d: result energy %v != chip %v + link %v",
							n, i, ress[i].Energy, got.Chip.Energy.Total(), wantLink)
					}
				}
			}
		})
	}
}

// The sequential Classify and the pipelined ClassifyEach must agree exactly,
// and ClassifyEach must be order-deterministic: the pipeline hands images
// through the stages in input order.
func TestPipelineMatchesSequential(t *testing.T) {
	b, err := bench.ByName("mnist-mlp")
	if err != nil {
		t.Fatal(err)
	}
	chip := chipFor(t, b)
	inputs := benchInputs(t, b, chip.Net, 4)
	multi, err := New(chip, Config{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	ress, reps, err := multi.ClassifyEach(inputs, factoryFor(9), sim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := range inputs {
		seqRes, seqSRep := multi.Classify(inputs[i], factoryFor(9)(i))
		if !reflect.DeepEqual(ress[i], seqRes) {
			t.Fatalf("image %d: pipeline %+v, sequential %+v", i, ress[i], seqRes)
		}
		seqRep := seqSRep.Detail.(Report)
		rep := reps[i].Detail.(Report)
		if rep.Chip.Counts != seqRep.Chip.Counts || rep.Link != seqRep.Link {
			t.Fatalf("image %d: pipeline report diverged from sequential", i)
		}
	}
}

// The interval (modeled initiation interval) must make a multi-shard
// pipeline at least as fast as the single-chip latency on a conv benchmark:
// images/sec is bounded by the slowest stage, not the whole network.
func TestPipelineIntervalBeatsSingleChip(t *testing.T) {
	b, err := bench.ByName("mnist-cnn")
	if err != nil {
		t.Fatal(err)
	}
	chip := chipFor(t, b)
	inputs := benchInputs(t, b, chip.Net, 1)
	one, err := New(chip, Config{Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	four, err := New(chip, Config{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	_, rep1 := one.Classify(inputs[0], factoryFor(11)(0))
	_, rep4 := four.Classify(inputs[0], factoryFor(11)(0))
	i1 := rep1.Detail.(Report).ImagesPerSec()
	i4 := rep4.Detail.(Report).ImagesPerSec()
	if i1 <= 0 || i4 <= 0 {
		t.Fatalf("throughputs %v, %v", i1, i4)
	}
	if i4 <= i1 {
		t.Fatalf("4-shard pipeline %v images/sec not above single chip %v", i4, i1)
	}
}

func TestPartitionerShapes(t *testing.T) {
	b, err := bench.ByName("cifar-cnn")
	if err != nil {
		t.Fatal(err)
	}
	chip := chipFor(t, b)
	L := len(chip.Net.Layers)

	// Shard counts above the layer count clamp; ranges tile [0, L).
	multi, err := New(chip, Config{Shards: L + 3})
	if err != nil {
		t.Fatal(err)
	}
	ranges := multi.Ranges()
	if len(ranges) != L {
		t.Fatalf("%d ranges for %d layers", len(ranges), L)
	}
	lo := 0
	for _, r := range ranges {
		if r.Lo != lo || r.Hi <= r.Lo {
			t.Fatalf("ranges don't tile: %+v", ranges)
		}
		lo = r.Hi
	}
	if lo != L {
		t.Fatalf("ranges end at %d, want %d", lo, L)
	}
	if !strings.HasSuffix(multi.Name(), "-x"+itoa(L)) {
		t.Fatalf("name %q", multi.Name())
	}

	// A capacity too small for the widest layer must be rejected.
	if _, err := New(chip, Config{Shards: 2, MaxMPEsPerChip: 1}); err == nil {
		t.Fatal("impossible capacity accepted")
	}

	// Invalid shard counts.
	if _, err := New(chip, Config{Shards: 0}); err == nil {
		t.Fatal("0 shards accepted")
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b []byte
	for n > 0 {
		b = append([]byte{byte('0' + n%10)}, b...)
		n /= 10
	}
	return string(b)
}

// EarlyExit has no meaning on a pipeline (the decision is made on the last
// chip only after boundary spikes have crossed every link); it must be
// rejected, as must tracing.
func TestPipelineRejectsUnsupportedOptions(t *testing.T) {
	b, err := bench.ByName("mnist-mlp")
	if err != nil {
		t.Fatal(err)
	}
	chip := chipFor(t, b)
	inputs := benchInputs(t, b, chip.Net, 1)
	multi, err := New(chip, Config{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := multi.ClassifyEach(inputs, factoryFor(3), sim.Options{EarlyExit: true}); err == nil {
		t.Fatal("early exit accepted")
	}
	if _, _, err := multi.ClassifyEach(nil, factoryFor(3), sim.Options{}); err == nil {
		t.Fatal("empty batch accepted")
	}
	if _, _, err := multi.ClassifyEach(inputs, nil, sim.Options{}); err == nil {
		t.Fatal("nil factory accepted")
	}
}

// ClassifyBatch aggregates like the single-chip batch path: averaged
// energy/latency, summed counters, Predicted == -1.
func TestClassifyBatchAggregate(t *testing.T) {
	b, err := bench.ByName("svhn-mlp")
	if err != nil {
		t.Fatal(err)
	}
	chip := chipFor(t, b)
	inputs := benchInputs(t, b, chip.Net, 3)
	multi, err := New(chip, Config{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	res, srep, err := multi.ClassifyBatch(inputs, factoryFor(5), sim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if srep.Predicted != -1 {
		t.Fatalf("aggregate Predicted %d", srep.Predicted)
	}
	rep := srep.Detail.(Report)
	if res.Energy <= 0 || res.Latency <= 0 || rep.Chip.Energy.Total() <= 0 {
		t.Fatalf("aggregate %+v", res)
	}
	ress, reps, err := multi.ClassifyEach(inputs, factoryFor(5), sim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var wantEnergy float64
	for _, r := range ress {
		wantEnergy += r.Energy
	}
	wantEnergy /= float64(len(ress))
	if res.Energy != wantEnergy {
		t.Fatalf("aggregate energy %v, want mean %v", res.Energy, wantEnergy)
	}
	var wantCounts core.Counters
	for _, r := range reps {
		wantCounts = addCounters(wantCounts, r.Detail.(Report).Chip.Counts)
	}
	if rep.Chip.Counts != wantCounts {
		t.Fatalf("aggregate counters %+v, want %+v", rep.Chip.Counts, wantCounts)
	}
}

// Options.Batch moves groups of images down the pipeline batch-major; every
// group size (including ones that don't divide the input count, and ones
// larger than it) must stay bit-identical to the per-image pipeline on a
// conv benchmark — results, chip counters, link traffic, per-shard parts.
func TestPipelineBatchMajorMatchesPerImage(t *testing.T) {
	b, err := bench.ByName("mnist-cnn")
	if err != nil {
		t.Fatal(err)
	}
	chip := chipFor(t, b)
	inputs := benchInputs(t, b, chip.Net, 5)
	multi, err := New(chip, Config{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	ress, reps, err := multi.ClassifyEach(inputs, factoryFor(11), sim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, batch := range []int{2, 3, 8} {
		got, gotReps, err := multi.ClassifyEach(inputs, factoryFor(11), sim.Options{Batch: batch})
		if err != nil {
			t.Fatal(err)
		}
		for i := range inputs {
			if !reflect.DeepEqual(got[i], ress[i]) {
				t.Fatalf("batch=%d image %d: result %+v, want %+v", batch, i, got[i], ress[i])
			}
			gd := gotReps[i].Detail.(Report)
			rd := reps[i].Detail.(Report)
			if gotReps[i].Predicted != reps[i].Predicted || gd.Chip.Counts != rd.Chip.Counts ||
				gd.Chip.Energy != rd.Chip.Energy || gd.Link != rd.Link || gd.Interval != rd.Interval {
				t.Fatalf("batch=%d image %d: report diverged from per-image pipeline", batch, i)
			}
			for s := range rd.Shards {
				if gd.Shards[s].Counts != rd.Shards[s].Counts || gd.Shards[s].Latency != rd.Shards[s].Latency {
					t.Fatalf("batch=%d image %d shard %d: accounting diverged", batch, i, s)
				}
			}
		}
	}
}
