package shard

import (
	"reflect"
	"testing"

	"resparc/internal/bench"
	"resparc/internal/energy"
	"resparc/internal/mapping"
)

// The mapper's link model (mapping.DefaultLinkCost) must stay in lockstep
// with the executor's (DefaultLinkParams): the cost model prices the very
// hops this package executes.
func TestDefaultLinkCostMatchesLinkParams(t *testing.T) {
	p := energy.Default45nm()
	lp := DefaultLinkParams(p)
	lc := mapping.DefaultLinkCost(p)
	got := LinkParams{
		FlitWidth:     lc.FlitWidth,
		FlitEnergy:    lc.FlitEnergy,
		ZeroCheck:     lc.ZeroCheck,
		FlitsPerCycle: lc.FlitsPerCycle,
		SyncCycles:    lc.SyncCycles,
		RecvBuf:       lc.RecvBuf,
	}
	if got != lp {
		t.Fatalf("mapping.DefaultLinkCost %+v != shard.DefaultLinkParams %+v", lc, lp)
	}
}

// Explicit Cuts from a greedy Placement must reproduce the partition the
// balanced DP derives on its own — the consistency that makes a
// placement-driven serve deployment bit-identical to the legacy path.
func TestCutsOverrideMatchesPartition(t *testing.T) {
	b, err := bench.ByName("mnist-cnn")
	if err != nil {
		t.Fatal(err)
	}
	chip := chipFor(t, b)

	derived, err := New(chip, Config{Shards: 3})
	if err != nil {
		t.Fatal(err)
	}
	cons := mapping.DefaultConstraints(mapping.DefaultConfig())
	cons.Steps = 4
	cons.Shards = 3
	p, err := (mapping.Greedy{}).Plan(chip.Net, cons)
	if err != nil {
		t.Fatal(err)
	}
	fromCuts, err := New(chip, Config{Cuts: p.ShardCuts})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(derived.Ranges(), fromCuts.Ranges()) {
		t.Fatalf("placement cuts %v realize ranges %v, partitioner derives %v",
			p.ShardCuts, fromCuts.Ranges(), derived.Ranges())
	}
}

func TestCutsValidation(t *testing.T) {
	b, err := bench.ByName("mnist-mlp")
	if err != nil {
		t.Fatal(err)
	}
	chip := chipFor(t, b)
	for _, cuts := range [][]int{{0}, {1, 1}, {2, 1}, {99}} {
		if _, err := New(chip, Config{Cuts: cuts}); err == nil {
			t.Fatalf("cuts %v accepted", cuts)
		}
	}
	m, err := New(chip, Config{Cuts: []int{1}})
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Ranges(); len(got) != 2 || got[0] != (Range{0, 1}) {
		t.Fatalf("ranges %v", got)
	}
}
