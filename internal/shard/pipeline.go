package shard

import (
	"fmt"
	"sync"

	"resparc/internal/bitvec"
	"resparc/internal/core"
	"resparc/internal/perf"
	"resparc/internal/sim"
	"resparc/internal/snn"
	"resparc/internal/tensor"
)

// token is one in-flight image moving down the shard pipeline.
type token struct {
	idx      int
	raster   []*bitvec.Bits // boundary spikes feeding the next stage
	parts    []core.Report  // per-shard accounting, filled stage by stage
	hops     []LinkStats    // per-boundary link accounting
	hopSteps [][]int64      // per-boundary per-timestep cycles (event engine)
}

// ClassifyEach implements sim.Backend with pipeline parallelism: one
// goroutine per shard, connected by channels, so while shard 1 integrates
// image i, shard 0 is already encoding image i+1 — every chip stays busy on
// a stream of inputs, which is where the partition's throughput comes from.
//
// Determinism is unchanged from the single-chip backends: stage 0 draws
// enc(i) in input order, each boundary raster is captured per image, and
// image i's outcome depends only on (inputs[i], enc(i)). Results are
// bit-identical to sequential Classify calls.
//
// Options.Workers is ignored — the parallelism degree is the shard count
// fixed at New. Options.Batch > 1 moves groups of images down the pipeline
// batch-major (one BatchState integration per stage visit) without changing
// results. Options.EarlyExit is rejected: time-to-first-spike decoding needs
// the output layer's verdict before upstream shards stop, which a pipeline
// cannot know retroactively.
func (m *Multi) ClassifyEach(inputs []tensor.Vec, enc sim.EncoderFactory, opt sim.Options) ([]perf.Result, []sim.Report, error) {
	if len(inputs) == 0 {
		return nil, nil, fmt.Errorf("shard: empty batch")
	}
	if enc == nil {
		return nil, nil, fmt.Errorf("shard: nil encoder factory")
	}
	if opt.EarlyExit {
		return nil, nil, fmt.Errorf("shard: early exit is not supported on the multi-chip pipeline")
	}
	if m.chip.Opt.Trace != nil {
		return nil, nil, fmt.Errorf("shard: tracing is not supported with pipelined classification")
	}
	if err := m.Healthy(); err != nil {
		return nil, nil, err
	}
	if opt.Batch > 1 && !opt.Stepped && !m.chip.Opt.Stepped {
		return m.classifyEachGrouped(inputs, enc, opt)
	}
	S := len(m.ranges)
	evt := m.chip.Opt.EventEngine || opt.EventEngine
	ress := make([]perf.Result, len(inputs))
	reps := make([]sim.Report, len(inputs))
	// chans[s] connects stage s to stage s+1; small buffers decouple stage
	// jitter without holding many rasters in flight.
	chans := make([]chan *token, S-1)
	for s := range chans {
		chans[s] = make(chan *token, 2)
	}
	var wg sync.WaitGroup
	for s := 0; s < S; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			st := snn.NewState(m.subnets[s])
			acct, err := m.chip.NewAccountantOpt(m.ranges[s].Lo, m.ranges[s].Hi, evt)
			if err != nil {
				panic("shard: " + err.Error()) // ranges are validated at New
			}
			process := func(tok *token) {
				var out []*bitvec.Bits
				if s < S-1 {
					out = m.newRaster(s)
				}
				var intensity tensor.Vec
				var e snn.Encoder
				if s == 0 {
					intensity = inputs[tok.idx]
					e = enc(tok.idx)
				}
				rep, run := m.runStage(s, st, acct, intensity, e, tok.raster, out, opt)
				tok.parts[s] = rep
				if s < S-1 {
					tok.hops[s], tok.hopSteps[s] = m.linkCost(out, evt)
					tok.raster = out
					chans[s] <- tok
				} else {
					tok.raster = nil
					ress[tok.idx], reps[tok.idx] = m.finish(tok.parts, tok.hops, tok.hopSteps, run.Prediction)
				}
			}
			if s == 0 {
				for idx := range inputs {
					process(&token{idx: idx, parts: make([]core.Report, S),
						hops: make([]LinkStats, S-1), hopSteps: make([][]int64, S-1)})
				}
			} else {
				for tok := range chans[s-1] {
					process(tok)
				}
			}
			if s < S-1 {
				close(chans[s])
			}
		}(s)
	}
	wg.Wait()
	return ress, reps, nil
}

// groupToken is one in-flight group of images moving down the batch-major
// shard pipeline.
type groupToken struct {
	lo, n    int
	rasters  [][]*bitvec.Bits // per image: boundary spikes feeding the next stage
	parts    [][]core.Report  // per image, per shard
	hops     [][]LinkStats    // per image, per boundary link
	hopSteps [][][]int64      // per image, per boundary per-timestep cycles
}

// classifyEachGrouped is the batch-major pipeline: tokens carry contiguous
// groups of up to opt.Batch images, and each stage integrates its whole group
// with one snn.BatchState per layer visit — the shard's weights stream once
// per group instead of once per image. Per image the batch runner replays the
// exact operation sequence of the per-image blocked runner, each image keeps
// its own accountant, capture raster and replay encoder, so results and
// accounting are bit-identical to the per-image pipeline for any group size.
func (m *Multi) classifyEachGrouped(inputs []tensor.Vec, enc sim.EncoderFactory, opt sim.Options) ([]perf.Result, []sim.Report, error) {
	S := len(m.ranges)
	evt := m.chip.Opt.EventEngine || opt.EventEngine
	gb := opt.Batch
	if gb > len(inputs) {
		gb = len(inputs)
	}
	ress := make([]perf.Result, len(inputs))
	reps := make([]sim.Report, len(inputs))
	chans := make([]chan *groupToken, S-1)
	for s := range chans {
		chans[s] = make(chan *groupToken, 2)
	}
	var wg sync.WaitGroup
	for s := 0; s < S; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			bst := snn.NewBatchState(m.subnets[s], gb)
			accts := make([]*core.Accountant, gb)
			for i := range accts {
				a, err := m.chip.NewAccountantOpt(m.ranges[s].Lo, m.ranges[s].Hi, evt)
				if err != nil {
					panic("shard: " + err.Error()) // ranges are validated at New
				}
				accts[i] = a
			}
			steps := m.chip.Opt.Steps
			bs := m.chip.Opt.BlockSize
			if opt.BlockSize > 0 {
				bs = opt.BlockSize
			}
			process := func(tok *groupToken) {
				n := tok.n
				ins := make([]tensor.Vec, n)
				encs := make([]snn.Encoder, n)
				obs := make([]snn.Observer, n)
				var outs [][]*bitvec.Bits
				if s < S-1 {
					outs = make([][]*bitvec.Bits, n)
				}
				for i := 0; i < n; i++ {
					accts[i].Reset()
					if s == 0 {
						ins[i] = inputs[tok.lo+i]
						encs[i] = enc(tok.lo + i)
					} else {
						encs[i] = &replayEncoder{raster: tok.rasters[i]}
					}
					if s < S-1 {
						outs[i] = m.newRaster(s)
						obs[i] = &captureObserver{inner: accts[i], out: outs[i]}
					} else {
						obs[i] = accts[i]
					}
				}
				runs := bst.RunBlocked(ins, encs, steps, bs, obs)
				for i := 0; i < n; i++ {
					_, rep := accts[i].Report(runs[i].Prediction, steps)
					tok.parts[i][s] = rep
					if s < S-1 {
						tok.hops[i][s], tok.hopSteps[i][s] = m.linkCost(outs[i], evt)
					} else {
						ress[tok.lo+i], reps[tok.lo+i] = m.finish(tok.parts[i], tok.hops[i], tok.hopSteps[i], runs[i].Prediction)
					}
				}
				if s < S-1 {
					tok.rasters = outs
					chans[s] <- tok
				}
			}
			if s == 0 {
				for lo := 0; lo < len(inputs); lo += gb {
					n := gb
					if len(inputs)-lo < n {
						n = len(inputs) - lo
					}
					tok := &groupToken{lo: lo, n: n, parts: make([][]core.Report, n),
						hops: make([][]LinkStats, n), hopSteps: make([][][]int64, n)}
					for i := 0; i < n; i++ {
						tok.parts[i] = make([]core.Report, S)
						tok.hops[i] = make([]LinkStats, S-1)
						tok.hopSteps[i] = make([][]int64, S-1)
					}
					process(tok)
				}
			} else {
				for tok := range chans[s-1] {
					process(tok)
				}
			}
			if s < S-1 {
				close(chans[s])
			}
		}(s)
	}
	wg.Wait()
	return ress, reps, nil
}

// ClassifyBatch implements sim.Backend: it classifies every input through
// the pipeline and reduces to the batch aggregate — chip energies and
// latency averaged per classification, event counters summed (the same
// shape as core.Chip.ClassifyBatch), link traffic summed over the batch and
// the pipeline interval averaged.
func (m *Multi) ClassifyBatch(inputs []tensor.Vec, enc sim.EncoderFactory, opt sim.Options) (perf.Result, sim.Report, error) {
	ress, sreps, err := m.ClassifyEach(inputs, enc, opt)
	if err != nil {
		return perf.Result{}, sim.Report{}, err
	}
	n := float64(len(sreps))
	var total core.Report
	var link LinkStats
	var hops []LinkStats
	var interval, energy, latency float64
	for i, sr := range sreps {
		d := sr.Detail.(Report)
		if hops == nil {
			hops = make([]LinkStats, len(d.Hops))
		}
		for h, hs := range d.Hops {
			hops[h] = addLink(hops[h], hs)
		}
		total.Latency += d.Chip.Latency
		total.Counts = addCounters(total.Counts, d.Chip.Counts)
		total.BusCycles += d.Chip.BusCycles
		total.Breakdown = addBreakdown(total.Breakdown, d.Chip.Breakdown)
		total.BusWait += d.Chip.BusWait
		if total.LayerCycles == nil {
			total.LayerCycles = make([]int, len(d.Chip.LayerCycles))
			total.LayerEnergies = make([]perf.RESPARCEnergy, len(d.Chip.LayerEnergies))
			total.LayerSpikes = make([]int, len(d.Chip.LayerSpikes))
		}
		for li, cyc := range d.Chip.LayerCycles {
			total.LayerCycles[li] += cyc
		}
		for li, sp := range d.Chip.LayerSpikes {
			total.LayerSpikes[li] += sp
		}
		for li, le := range d.Chip.LayerEnergies {
			total.LayerEnergies[li].Neuron += le.Neuron
			total.LayerEnergies[li].Crossbar += le.Crossbar
			total.LayerEnergies[li].Peripherals += le.Peripherals
		}
		link = addLink(link, d.Link)
		interval += d.Interval
		energy += ress[i].Energy
		latency += ress[i].Latency
	}
	for li := range total.LayerEnergies {
		total.LayerEnergies[li].Neuron /= n
		total.LayerEnergies[li].Crossbar /= n
		total.LayerEnergies[li].Peripherals /= n
	}
	avgChip := core.Report{
		Energy:        perf.SumRESPARC(total.LayerEnergies),
		Latency:       total.Latency / n,
		Counts:        total.Counts,
		BusCycles:     total.BusCycles,
		Breakdown:     total.Breakdown,
		BusWait:       total.BusWait,
		LayerCycles:   total.LayerCycles,
		LayerEnergies: total.LayerEnergies,
		LayerSpikes:   total.LayerSpikes,
		Predicted:     -1,
	}
	rep := Report{
		Ranges: m.Ranges(), Chip: avgChip, Link: link, Hops: hops,
		Interval: interval / n, Predicted: -1,
	}
	res := perf.Result{
		Arch:    m.name,
		Network: m.chip.Net.Name,
		Energy:  energy / n,
		Latency: latency / n,
		Steps:   m.chip.Opt.Steps,
	}
	res.SpikesPerStep, res.LayerOccupancy = m.sparsity(total.LayerSpikes, len(sreps), m.chip.Opt.Steps)
	return res, sim.Report{Predicted: -1, Steps: m.chip.Opt.Steps, Detail: rep}, nil
}
