// Package shard executes one mapped network across N RESPARC chips as a
// layer pipeline — the paper's scaling story (§3.1.3 tiles mPEs into cores
// and chips over a hierarchical interconnect) in the style of ISAAC's
// inter-tile pipelining and PUMA's device-agnostic graph partitioning.
//
// The partitioner cuts the layer stack into N contiguous ranges balanced by
// per-chip mPE load (taken from the existing internal/mapping placement), an
// inter-chip link model carries each boundary layer's spike raster as
// zero-checked packet flits with per-hop energy/latency accounting, and a
// pipeline-parallel executor keeps every shard busy on a stream of inputs.
//
// Equivalence is exact, not approximate: the shards do not re-map the
// network. Every shard charges the one shared core.Chip's accounting for its
// own layer range (core.Accountant), boundary spikes are replayed
// bit-identically into the downstream shard, and the merged report
// concatenates the per-layer accounting in global layer order — so
// predictions, event counters and summed chip energy are bit-identical to
// single-chip execution, with the link cost reported separately on top.
package shard

import (
	"fmt"

	"resparc/internal/bitvec"
	"resparc/internal/core"
	"resparc/internal/energy"
	"resparc/internal/packet"
	"resparc/internal/perf"
	"resparc/internal/sim"
	"resparc/internal/snn"
	"resparc/internal/tensor"
)

// LinkParams model one chip-to-chip hop. A hop carries the boundary layer's
// spike raster once per timestep, sliced into FlitWidth-bit flits that are
// zero-checked at the sending pad exactly like on-chip packets (§3.2): an
// all-zero flit pays only the check, a surviving flit pays the serializer,
// the off-chip traversal and the deserializer.
type LinkParams struct {
	// FlitWidth is the flit payload in spike bits (defaults to packet.Width).
	FlitWidth int
	// FlitEnergy is the joules to move one surviving flit across the hop.
	FlitEnergy float64
	// ZeroCheck is the joules to zero-check one flit (paid for every flit).
	ZeroCheck float64
	// FlitsPerCycle is the hop's width in flits per NeuroCell cycle.
	FlitsPerCycle int
	// SyncCycles is the per-timestep handshake overhead of the hop.
	SyncCycles int
	// RecvBuf bounds the receiving pad's raster buffer (in timesteps) under
	// the event engine: the hop holds at most RecvBuf delivered-but-unconsumed
	// rasters, so a slow downstream shard backpressures the sender (<= 0
	// selects one slot). Ignored by the stepped closed-form accounting.
	RecvBuf int
}

// DefaultLinkParams derives a hop model from the chip's energy parameters:
// an off-chip flit costs several on-chip bus-word transfers (pad drivers and
// serdes dominate), the zero-check reuses the on-chip packet logic, and the
// hop moves four flits per cycle — a 128-bit parallel chip-to-chip
// interface, a quarter of the 512-bit on-chip global bus — with a two-cycle
// handshake per timestep.
func DefaultLinkParams(p energy.Params) LinkParams {
	return LinkParams{
		FlitWidth:     packet.Width,
		FlitEnergy:    6 * p.BusWord,
		ZeroCheck:     p.ZeroCheck,
		FlitsPerCycle: 4,
		SyncCycles:    2,
		RecvBuf:       2,
	}
}

// LinkStats accumulate inter-chip traffic for one classification (or, from
// ClassifyBatch, summed over a batch).
type LinkStats struct {
	FlitsSent       int
	FlitsSuppressed int
	Cycles          int
	EnergyJ         float64
	// WaitCycles is the time rasters sat at the sender pad after being ready
	// — channel serialization plus receive-buffer backpressure. Only the
	// event engine models flow control; it is zero under stepped accounting.
	WaitCycles int
}

func addLink(a, b LinkStats) LinkStats {
	a.FlitsSent += b.FlitsSent
	a.FlitsSuppressed += b.FlitsSuppressed
	a.Cycles += b.Cycles
	a.EnergyJ += b.EnergyJ
	a.WaitCycles += b.WaitCycles
	return a
}

// Config selects the shard topology.
type Config struct {
	// Shards is the chip count (clamped to the layer count).
	Shards int
	// Cuts, when non-empty, overrides the balanced partitioner with explicit
	// cut points (ascending layer indices where a new chip begins, exclusive
	// of 0) — typically the ShardCuts of an optimized mapping.Placement.
	// Shards is ignored; the chip count is len(Cuts)+1.
	Cuts []int
	// MaxMPEsPerChip, when positive, is the per-chip capacity: the
	// partitioner fails if the balanced cut would place more mPEs than this
	// on any one chip.
	MaxMPEsPerChip int
	// Link models each chip-to-chip hop (zero value selects
	// DefaultLinkParams of the chip's energy parameters).
	Link LinkParams
}

// Range is a contiguous global layer range [Lo, Hi) placed on one chip.
type Range struct {
	Lo, Hi int
}

// Multi runs one mapped network across N chips. It implements sim.Backend
// under the name "<chip>-xN" (e.g. "resparc-x4").
type Multi struct {
	chip    *core.Chip
	cfg     Config
	name    string
	ranges  []Range
	subnets []*snn.Network
}

var _ sim.Backend = (*Multi)(nil)

// New partitions the chip's layer stack into cfg.Shards balanced ranges.
// The partitioner minimizes the maximum per-chip mPE count (the placement
// span each layer already occupies in the chip's mapping) over all
// contiguous cuts — the capacity heuristic: mPEs are the unit of crossbar
// real estate, so the widest chip bounds both silicon and the pipeline's
// slowest stage.
func New(chip *core.Chip, cfg Config) (*Multi, error) {
	if chip == nil {
		return nil, fmt.Errorf("shard: nil chip")
	}
	if cfg.Shards < 1 && len(cfg.Cuts) == 0 {
		return nil, fmt.Errorf("shard: %d shards", cfg.Shards)
	}
	layers := chip.Net.Layers
	n := cfg.Shards
	if n > len(layers) {
		n = len(layers)
	}
	if (cfg.Link == LinkParams{}) {
		cfg.Link = DefaultLinkParams(chip.Opt.Params)
	}
	if cfg.Link.FlitWidth < 1 {
		return nil, fmt.Errorf("shard: flit width %d", cfg.Link.FlitWidth)
	}
	costs := make([]int, len(layers))
	for li := range layers {
		lm := &chip.Map.Layers[li]
		costs[li] = lm.MPELast - lm.MPEFirst + 1
	}
	var ranges []Range
	if len(cfg.Cuts) > 0 {
		prev := 0
		for _, c := range cfg.Cuts {
			if c <= prev || c >= len(layers) {
				return nil, fmt.Errorf("shard: cuts %v not strictly ascending in (0,%d)", cfg.Cuts, len(layers))
			}
			ranges = append(ranges, Range{Lo: prev, Hi: c})
			prev = c
		}
		ranges = append(ranges, Range{Lo: prev, Hi: len(layers)})
	} else {
		ranges = partition(costs, n)
	}
	if cfg.MaxMPEsPerChip > 0 {
		for _, r := range ranges {
			mpes := 0
			for li := r.Lo; li < r.Hi; li++ {
				mpes += costs[li]
			}
			if mpes > cfg.MaxMPEsPerChip {
				return nil, fmt.Errorf("shard: layers [%d,%d) need %d mPEs, chip capacity %d",
					r.Lo, r.Hi, mpes, cfg.MaxMPEsPerChip)
			}
		}
	}
	subnets := make([]*snn.Network, len(ranges))
	for i, r := range ranges {
		in := chip.Net.Input
		if r.Lo > 0 {
			in = layers[r.Lo].In
		}
		sub, err := snn.NewNetwork(fmt.Sprintf("%s/shard%d", chip.Net.Name, i), in, layers[r.Lo:r.Hi]...)
		if err != nil {
			return nil, fmt.Errorf("shard: sub-network %d: %w", i, err)
		}
		subnets[i] = sub
	}
	m := &Multi{
		chip: chip, cfg: cfg, ranges: ranges, subnets: subnets,
		name: fmt.Sprintf("%s-x%d", chip.Name(), len(ranges)),
	}
	return m, nil
}

// partition cuts costs into n contiguous parts minimizing the maximum part
// sum (classic minimax partition DP; layer counts are small, so the
// quadratic scan is fine).
func partition(costs []int, n int) []Range {
	L := len(costs)
	prefix := make([]int, L+1)
	for i, c := range costs {
		prefix[i+1] = prefix[i] + c
	}
	sum := func(lo, hi int) int { return prefix[hi] - prefix[lo] }
	// dp[k][i]: minimal achievable max-part-sum splitting the first i layers
	// into k parts; cut[k][i] records the start of the k-th part.
	const inf = int(^uint(0) >> 1)
	dp := make([][]int, n+1)
	cut := make([][]int, n+1)
	for k := range dp {
		dp[k] = make([]int, L+1)
		cut[k] = make([]int, L+1)
		for i := range dp[k] {
			dp[k][i] = inf
		}
	}
	dp[0][0] = 0
	for k := 1; k <= n; k++ {
		for i := k; i <= L; i++ {
			for j := k - 1; j < i; j++ {
				if dp[k-1][j] == inf {
					continue
				}
				v := dp[k-1][j]
				if s := sum(j, i); s > v {
					v = s
				}
				if v < dp[k][i] {
					dp[k][i] = v
					cut[k][i] = j
				}
			}
		}
	}
	ranges := make([]Range, n)
	hi := L
	for k := n; k >= 1; k-- {
		lo := cut[k][hi]
		ranges[k-1] = Range{Lo: lo, Hi: hi}
		hi = lo
	}
	return ranges
}

// Name implements sim.Backend ("resparc-x4" for a 4-shard pipeline).
func (m *Multi) Name() string { return m.name }

// Network implements sim.Backend.
func (m *Multi) Network() *snn.Network { return m.chip.Net }

// Healthy implements sim.Backend, delegating to the underlying chip (every
// shard charges the same chip, so its fault state gates them all).
func (m *Multi) Healthy() error { return m.chip.Healthy() }

// Chip returns the underlying single-chip simulator whose accounting the
// shards slice.
func (m *Multi) Chip() *core.Chip { return m.chip }

// Ranges returns the partition (one contiguous global layer range per
// shard).
func (m *Multi) Ranges() []Range {
	out := make([]Range, len(m.ranges))
	copy(out, m.ranges)
	return out
}

// Report is the multi-chip outcome of one classification.
type Report struct {
	// Ranges is the layer partition, one entry per shard.
	Ranges []Range
	// Shards holds each shard's slice of the chip accounting (LayerCycles /
	// LayerEnergies cover that shard's range only).
	Shards []core.Report
	// Chip is the merged accounting across shards — bit-identical to the
	// single-chip report of the same classification (link cost excluded).
	Chip core.Report
	// Link is the inter-chip traffic summed over every hop (reported
	// separately so the chip accounting stays comparable to single-chip
	// runs).
	Link LinkStats
	// Hops is the per-boundary accounting: Hops[s] carries shard s's
	// boundary spikes to shard s+1.
	Hops []LinkStats
	// Interval is the modeled pipeline initiation interval in seconds per
	// image: the slowest of the shard stages and the busiest single hop
	// (each hop is its own point-to-point channel), which bounds the
	// steady-state throughput of the pipeline-parallel executor.
	Interval float64
	// Predicted is the decoded class from the final shard.
	Predicted int
}

// ImagesPerSec is the modeled steady-state throughput of the pipeline.
func (r Report) ImagesPerSec() float64 {
	if r.Interval == 0 {
		return 0
	}
	return 1 / r.Interval
}

// linkCost charges one boundary's raster (all timesteps) to the hop model.
// When perStep is true (event engine) it additionally returns each
// timestep's transfer occupancy in cycles — the hop durations the global
// pipeline DES serializes.
func (m *Multi) linkCost(raster []*bitvec.Bits, perStep bool) (LinkStats, []int64) {
	lp := m.cfg.Link
	fpc := lp.FlitsPerCycle
	if fpc < 1 {
		fpc = 1
	}
	var st LinkStats
	var steps []int64
	if perStep {
		steps = make([]int64, 0, len(raster))
	}
	for _, bits := range raster {
		zero, total := bits.ZeroPackets(lp.FlitWidth)
		sent := total - zero
		st.FlitsSent += sent
		st.FlitsSuppressed += zero
		st.EnergyJ += float64(total)*lp.ZeroCheck + float64(sent)*lp.FlitEnergy
		cyc := lp.SyncCycles + (sent+fpc-1)/fpc
		st.Cycles += cyc
		if perStep {
			steps = append(steps, int64(cyc))
		}
	}
	return st, steps
}

// newRaster allocates the boundary raster between shard s and s+1: one spike
// vector per timestep, sized to the downstream shard's input.
func (m *Multi) newRaster(s int) []*bitvec.Bits {
	size := m.subnets[s+1].Input.Size()
	r := make([]*bitvec.Bits, m.chip.Opt.Steps)
	for t := range r {
		r[t] = bitvec.New(size)
	}
	return r
}

// captureObserver forwards every step to the shard's accountant and copies
// the shard's final layer raster out as the boundary spike stream.
type captureObserver struct {
	inner snn.Observer
	out   []*bitvec.Bits
}

func (c *captureObserver) ObserveStep(t int, input *bitvec.Bits, layers []*bitvec.Bits) {
	c.inner.ObserveStep(t, input, layers)
	c.out[t].CopyFrom(layers[len(layers)-1])
}

// replayEncoder feeds a captured boundary raster into a downstream shard,
// one timestep per Encode call — the bit-identical spike stream the layer
// saw on the single chip. The intensity argument is ignored.
type replayEncoder struct {
	raster []*bitvec.Bits
	t      int
}

func (r *replayEncoder) Encode(_ tensor.Vec, dst *bitvec.Bits) {
	dst.CopyFrom(r.raster[r.t])
	r.t++
}

// runStage runs shard s over one image on caller-owned state, charging the
// shard's accountant (reset first). For s > 0 the image's input is the
// upstream boundary raster in; for s < last the shard's boundary output is
// captured into out.
func (m *Multi) runStage(s int, st *snn.State, acct *core.Accountant, intensity tensor.Vec, enc snn.Encoder,
	in, out []*bitvec.Bits, opt sim.Options) (core.Report, snn.RunResult) {
	acct.Reset()
	var obs snn.Observer = acct
	if out != nil {
		obs = &captureObserver{inner: acct, out: out}
	}
	if s > 0 {
		enc = &replayEncoder{raster: in}
		intensity = nil
	}
	steps := m.chip.Opt.Steps
	var run snn.RunResult
	if m.chip.Opt.Stepped || opt.Stepped {
		run = st.RunObserved(intensity, enc, steps, obs)
	} else {
		bs := m.chip.Opt.BlockSize
		if opt.BlockSize > 0 {
			bs = opt.BlockSize
		}
		run = st.RunBlockedK(intensity, enc, steps, bs, obs)
	}
	_, rep := acct.Report(run.Prediction, steps)
	return rep, run
}

// finish merges the per-shard reports of one image into the multi-chip
// result. The chip accounting concatenates in global layer order and reduces
// through the same perf.SumRESPARC as the single-chip observer, so Chip is
// bit-identical to a single-chip run; the link cost rides on top of the
// returned perf.Result.
//
// Under the event engine (the parts carry stage grids) the merged Cycles and
// Latency come from one global pipeline DES over every shard's stages plus
// the serialized, credit-limited inter-chip hops — link time overlaps
// computation instead of being added on top, and each hop's WaitCycles
// records the backpressure it suffered.
func (m *Multi) finish(parts []core.Report, hops []LinkStats, hopSteps [][]int64, predicted int) (perf.Result, sim.Report) {
	chip := m.mergeChip(parts)
	chip.Predicted = predicted
	ncc := m.chip.Opt.Params.NCCycle()
	steps := m.chip.Opt.Steps
	linkSeconds := 0.0
	if len(parts) > 0 && parts[len(parts)-1].Stages != nil {
		makespan, lw, busWait := eventMakespan(parts, hopSteps, m.cfg.Link.RecvBuf)
		for h := range lw {
			hops[h].WaitCycles = int(lw[h])
		}
		chip.Counts.Cycles = int(makespan)
		chip.BusWait = busWait
		chip.Latency = float64(makespan) * ncc
	} else {
		var cyc int
		for _, h := range hops {
			cyc += h.Cycles
		}
		linkSeconds = float64(cyc) * ncc
	}
	var link LinkStats
	interval := 0.0
	for _, h := range hops {
		link = addLink(link, h)
		// Hops are independent point-to-point channels: only the busiest
		// one bounds the initiation interval.
		if s := float64(h.Cycles) * ncc; s > interval {
			interval = s
		}
	}
	for _, p := range parts {
		if p.Latency > interval {
			interval = p.Latency
		}
	}
	rep := Report{
		Ranges: m.Ranges(), Shards: parts, Chip: chip, Link: link, Hops: hops,
		Interval: interval, Predicted: predicted,
	}
	res := perf.Result{
		Arch:    m.name,
		Network: m.chip.Net.Name,
		Energy:  chip.Energy.Total() + link.EnergyJ,
		Latency: chip.Latency + linkSeconds,
		Steps:   steps,
	}
	res.SpikesPerStep, res.LayerOccupancy = m.sparsity(chip.LayerSpikes, 1, steps)
	return res, sim.Report{Predicted: predicted, Steps: steps, Detail: rep}
}

// sparsity mirrors the single-chip observer's spike-sparsity reduction over
// the merged per-layer spike counts (images > 1 averages a batch).
func (m *Multi) sparsity(layerSpikes []int, images, steps int) (float64, []float64) {
	if images <= 0 || steps <= 0 || len(layerSpikes) == 0 {
		return 0, nil
	}
	total := 0
	occ := make([]float64, len(layerSpikes))
	for li, sp := range layerSpikes {
		total += sp
		if n := m.chip.Net.Layers[li].OutSize(); n > 0 {
			occ[li] = float64(sp) / (float64(images) * float64(steps) * float64(n))
		}
	}
	return float64(total) / (float64(images) * float64(steps)), occ
}

// mergeChip concatenates the shards' accounting slices in global layer
// order and reduces them exactly as the single-chip observer does.
func (m *Multi) mergeChip(parts []core.Report) core.Report {
	var out core.Report
	for _, p := range parts {
		out.Counts = addCounters(out.Counts, p.Counts)
		out.BusCycles += p.BusCycles
		out.Breakdown = addBreakdown(out.Breakdown, p.Breakdown)
		out.LayerCycles = append(out.LayerCycles, p.LayerCycles...)
		out.LayerEnergies = append(out.LayerEnergies, p.LayerEnergies...)
		out.LayerSpikes = append(out.LayerSpikes, p.LayerSpikes...)
		if p.TraceError != nil && out.TraceError == nil {
			out.TraceError = p.TraceError
		}
	}
	out.Energy = perf.SumRESPARC(out.LayerEnergies)
	out.Latency = float64(out.Counts.Cycles) * m.chip.Opt.Params.NCCycle()
	return out
}

func addCounters(a, b core.Counters) core.Counters {
	a.Cycles += b.Cycles
	a.BusWords += b.BusWords
	a.BusWordsSuppressed += b.BusWordsSuppressed
	a.PacketsDelivered += b.PacketsDelivered
	a.PacketsSuppressed += b.PacketsSuppressed
	a.MCAActivations += b.MCAActivations
	a.RowsDriven += b.RowsDriven
	a.Integrations += b.Integrations
	a.Spikes += b.Spikes
	a.ExtTransfers += b.ExtTransfers
	return a
}

func addBreakdown(a, b core.CycleBreakdown) core.CycleBreakdown {
	a.Sync += b.Sync
	a.Bus += b.Bus
	a.Delivery += b.Delivery
	a.Integrate += b.Integrate
	a.Drain += b.Drain
	return a
}

// Classify implements sim.Backend: one image through all shards in
// sequence (the pipeline only pays off on a stream — see ClassifyEach).
func (m *Multi) Classify(intensity tensor.Vec, enc snn.Encoder) (perf.Result, sim.Report) {
	S := len(m.ranges)
	evt := m.chip.Opt.EventEngine
	parts := make([]core.Report, S)
	hops := make([]LinkStats, S-1)
	hopSteps := make([][]int64, S-1)
	var run snn.RunResult
	var in []*bitvec.Bits
	for s := 0; s < S; s++ {
		st := snn.NewState(m.subnets[s])
		acct, err := m.chip.NewAccountant(m.ranges[s].Lo, m.ranges[s].Hi)
		if err != nil {
			panic("shard: " + err.Error()) // ranges are validated at New
		}
		var out []*bitvec.Bits
		if s < S-1 {
			out = m.newRaster(s)
		}
		parts[s], run = m.runStage(s, st, acct, intensity, enc, in, out, sim.Options{})
		if s < S-1 {
			hops[s], hopSteps[s] = m.linkCost(out, evt)
		}
		in = out
	}
	return m.finish(parts, hops, hopSteps, run.Prediction)
}
