package shard

import (
	"reflect"
	"testing"

	"resparc/internal/bench"
	"resparc/internal/core"
	"resparc/internal/sim"
)

// TestShardEventSteppedEquivalence is the satellite acceptance check for the
// multi-chip event engine: for every benchmark and N in {1, 2, 4},
// predictions, merged event counters (except Cycles) and chip energies under
// sim.Options.EventEngine are bit-identical to stepped sharded accounting,
// and the global makespan respects its structural bounds. Run with -race:
// the pipeline stages exchange stage grids over channels.
func TestShardEventSteppedEquivalence(t *testing.T) {
	for _, b := range bench.All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			chip := chipFor(t, b)
			inputs := benchInputs(t, b, chip.Net, 2)
			for _, n := range []int{1, 2, 4} {
				multi, err := New(chip, Config{Shards: n})
				if err != nil {
					t.Fatal(err)
				}
				sRess, sReps, err := multi.ClassifyEach(inputs, factoryFor(7), sim.Options{})
				if err != nil {
					t.Fatal(err)
				}
				eRess, eReps, err := multi.ClassifyEach(inputs, factoryFor(7), sim.Options{EventEngine: true})
				if err != nil {
					t.Fatal(err)
				}
				for i := range inputs {
					sd := sReps[i].Detail.(Report)
					ed := eReps[i].Detail.(Report)
					if sReps[i].Predicted != eReps[i].Predicted {
						t.Fatalf("x%d image %d: predicted %d (stepped) vs %d (event)",
							n, i, sReps[i].Predicted, eReps[i].Predicted)
					}
					if sd.Chip.Energy != ed.Chip.Energy || sRess[i].Energy != eRess[i].Energy {
						t.Fatalf("x%d image %d: energies diverged: %+v vs %+v",
							n, i, sd.Chip.Energy, ed.Chip.Energy)
					}
					if !reflect.DeepEqual(sd.Chip.LayerEnergies, ed.Chip.LayerEnergies) {
						t.Fatalf("x%d image %d: per-layer energies diverged", n, i)
					}
					sc, ec := sd.Chip.Counts, ed.Chip.Counts
					sc.Cycles, ec.Cycles = 0, 0
					if sc != ec {
						t.Fatalf("x%d image %d: counters diverged (beyond Cycles):\nstepped: %+v\nevent:   %+v",
							n, i, sc, ec)
					}
					// Link traffic (flits, energy) is flow-control independent.
					sl, el := sd.Link, ed.Link
					sl.WaitCycles, el.WaitCycles = 0, 0
					if sl != el {
						t.Fatalf("x%d image %d: link accounting diverged: %+v vs %+v", n, i, sl, el)
					}
					// The global pipelined makespan must beat the serial sum and
					// cover every shard's own lower bound.
					if ed.Chip.Counts.Cycles >= sd.Chip.Counts.Cycles+sd.Link.Cycles {
						t.Fatalf("x%d image %d: event makespan %d not below serial %d+%d",
							n, i, ed.Chip.Counts.Cycles, sd.Chip.Counts.Cycles, sd.Link.Cycles)
					}
					for s, part := range ed.Shards {
						if ed.Chip.Counts.Cycles < part.Counts.Cycles {
							t.Fatalf("x%d image %d: makespan %d below shard %d's own makespan %d",
								n, i, ed.Chip.Counts.Cycles, s, part.Counts.Cycles)
						}
					}
					if n == 1 && ed.Link.WaitCycles != 0 {
						t.Fatalf("x1 reports link wait %d with no links", ed.Link.WaitCycles)
					}
				}
			}
		})
	}
}

// TestShardEventMatchesSingleChipEvent: with one shard the global DES reduces
// to the single-chip pipeline simulation — Cycles, BusWait and stage grids
// must match core's event path exactly.
func TestShardEventMatchesSingleChipEvent(t *testing.T) {
	b := bench.All()[0]
	chip := chipFor(t, b)
	inputs := benchInputs(t, b, chip.Net, 2)
	refRess, refReps, err := chip.ClassifyEach(inputs, factoryFor(7), sim.Options{Workers: 1, EventEngine: true})
	if err != nil {
		t.Fatal(err)
	}
	multi, err := New(chip, Config{Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	ress, reps, err := multi.ClassifyEach(inputs, factoryFor(7), sim.Options{EventEngine: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := range inputs {
		ref := refReps[i].Detail.(core.Report)
		got := reps[i].Detail.(Report)
		if got.Chip.Counts != ref.Counts {
			t.Fatalf("image %d: counters diverged\nsharded x1: %+v\nsingle:     %+v", i, got.Chip.Counts, ref.Counts)
		}
		if got.Chip.BusWait != ref.BusWait {
			t.Fatalf("image %d: bus wait %d vs single-chip %d", i, got.Chip.BusWait, ref.BusWait)
		}
		if ress[i].Latency != refRess[i].Latency || ress[i].Energy != refRess[i].Energy {
			t.Fatalf("image %d: result diverged: %+v vs %+v", i, ress[i], refRess[i])
		}
		if !reflect.DeepEqual(got.Shards[0].Stages, ref.Stages) {
			t.Fatalf("image %d: stage grids diverged", i)
		}
	}
}

// TestShardEventDeterministic: event-mode sharded results are a pure function
// of the inputs — identical across repeated runs and batch-major grouping.
func TestShardEventDeterministic(t *testing.T) {
	b := bench.All()[0]
	chip := chipFor(t, b)
	inputs := benchInputs(t, b, chip.Net, 4)
	multi, err := New(chip, Config{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	a, aReps, err := multi.ClassifyEach(inputs, factoryFor(7), sim.Options{EventEngine: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, opt := range []sim.Options{
		{EventEngine: true},
		{EventEngine: true, Batch: 2},
	} {
		g, gReps, err := multi.ClassifyEach(inputs, factoryFor(7), opt)
		if err != nil {
			t.Fatal(err)
		}
		for i := range inputs {
			if !reflect.DeepEqual(a[i], g[i]) || aReps[i].Predicted != gReps[i].Predicted {
				t.Fatalf("opt %+v image %d: results vary across runs", opt, i)
			}
			ad := aReps[i].Detail.(Report)
			gd := gReps[i].Detail.(Report)
			if ad.Chip.Counts != gd.Chip.Counts || !reflect.DeepEqual(ad.Hops, gd.Hops) {
				t.Fatalf("opt %+v image %d: accounting varies across runs", opt, i)
			}
		}
	}
}

// TestShardEventBackpressure: squeezing the receive buffer to one raster and
// the channel to one flit per cycle must surface link wait on a real
// boundary — the flow control is live, not decorative.
func TestShardEventBackpressure(t *testing.T) {
	b := bench.All()[0]
	chip := chipFor(t, b)
	inputs := benchInputs(t, b, chip.Net, 1)
	link := DefaultLinkParams(chip.Opt.Params)
	link.FlitsPerCycle = 1
	link.RecvBuf = 1
	multi, err := New(chip, Config{Shards: 2, Link: link})
	if err != nil {
		t.Fatal(err)
	}
	_, reps, err := multi.ClassifyEach(inputs, factoryFor(7), sim.Options{EventEngine: true})
	if err != nil {
		t.Fatal(err)
	}
	d := reps[0].Detail.(Report)
	if d.Link.WaitCycles == 0 {
		t.Fatal("narrow link with a one-raster receive buffer shows zero wait")
	}
	// A wide, deeply buffered link must wait strictly less.
	wide := DefaultLinkParams(chip.Opt.Params)
	wide.FlitsPerCycle = 64
	wide.RecvBuf = 64
	multiW, err := New(chip, Config{Shards: 2, Link: wide})
	if err != nil {
		t.Fatal(err)
	}
	_, repsW, err := multiW.ClassifyEach(inputs, factoryFor(7), sim.Options{EventEngine: true})
	if err != nil {
		t.Fatal(err)
	}
	dw := repsW[0].Detail.(Report)
	if dw.Link.WaitCycles >= d.Link.WaitCycles {
		t.Fatalf("wide link waits %d >= narrow link %d", dw.Link.WaitCycles, d.Link.WaitCycles)
	}
}
