package repair

import (
	"fmt"

	"resparc/internal/bitvec"
	"resparc/internal/mapping"
	"resparc/internal/snn"
	"resparc/internal/tensor"
)

// Crossbar-local delta-rule repair. When refresh cannot recover a crossbar
// (stuck devices pin cells away from their targets), the controller retunes
// the allocation's *programmable* weights so the column drives match the
// clean reference on a small calibration set — the healthy devices absorb
// the error the broken ones introduce. Updates follow the normalized
// least-mean-squares rule on rate-coded drives:
//
//	w[out,in] += lr * (targetDrive - actualDrive) * rate[in] / ||rate||²
//
// restricted to the damaged allocation's window, clamped to the technology's
// programmable range. Each epoch re-applies the deployment state, so the
// update sees quantization, stuck pins and drift exactly as the hardware
// would — stuck cells simply refuse to move and their neighbors compensate.
// Plain arithmetic over already-recorded rates: deterministic, stdlib-only.

// DeltaConfig tunes the fine-tuner.
type DeltaConfig struct {
	// LR is the NLMS step size in (0, 1].
	LR float64
	// Epochs is how many passes over the calibration set each allocation
	// gets; the deployment state is re-applied between passes.
	Epochs int
	// Eps floors the rate-energy normalizer.
	Eps float64
}

// DefaultDeltaConfig returns the step settings the campaigns use.
func DefaultDeltaConfig() DeltaConfig { return DeltaConfig{LR: 0.5, Epochs: 3, Eps: 1e-9} }

// rateObserver accumulates per-layer firing rates during a reference run —
// the rate-coded drives the delta rule calibrates against.
type rateObserver struct {
	input  tensor.Vec
	layers []tensor.Vec
	steps  int
}

func newRateObserver(net *snn.Network) *rateObserver {
	o := &rateObserver{input: make(tensor.Vec, net.Input.Size())}
	o.layers = make([]tensor.Vec, len(net.Layers))
	for li, l := range net.Layers {
		o.layers[li] = make(tensor.Vec, l.OutSize())
	}
	return o
}

func (o *rateObserver) ObserveStep(_ int, input *bitvec.Bits, layers []*bitvec.Bits) {
	o.steps++
	input.ForEachSet(func(i int) { o.input[i]++ })
	for li, l := range layers {
		rates := o.layers[li]
		l.ForEachSet(func(i int) { rates[i]++ })
	}
}

// rates returns the layer-li input rates (spikes per step): the network
// input for the first layer, the previous layer's output otherwise.
func (o *rateObserver) rates(li int) tensor.Vec {
	v := o.input
	if li > 0 {
		v = o.layers[li-1]
	}
	out := make(tensor.Vec, len(v))
	for i, x := range v {
		out[i] = x / float64(o.steps)
	}
	return out
}

// calibration holds, per calibration sample, the reference input rates of
// every layer.
type calibration struct {
	perLayer [][]tensor.Vec // [layer][sample] input rates
}

// calibrate replays the calibration inputs through the clean reference and
// records every layer's input rates. The reference never drifts, so a
// calibration stays valid for the deployment's whole life.
func (d *Deployment) calibrate(inputs []tensor.Vec, enc snn.EncoderFactory, steps int) (*calibration, error) {
	if len(inputs) == 0 {
		return nil, fmt.Errorf("repair: delta rule needs calibration inputs")
	}
	cal := &calibration{perLayer: make([][]tensor.Vec, len(d.ref.Layers))}
	for li := range d.ref.Layers {
		cal.perLayer[li] = make([]tensor.Vec, len(inputs))
	}
	st := snn.NewState(d.ref)
	for si, in := range inputs {
		o := newRateObserver(d.ref)
		st.RunObserved(in, enc(si), steps, o)
		for li := range d.ref.Layers {
			cal.perLayer[li][si] = o.rates(li)
		}
	}
	return cal, nil
}

// DeltaRepair fine-tunes the damaged dense allocations in place: for each
// listed allocation, the programmed targets inside its window move to close
// the gap between the deployed column drives and the clean reference's, and
// the deployment state is re-applied so the next pass (and the caller) sees
// the post-quantization, post-fault effect. Dead allocations are skipped —
// no current flows, nothing to tune; that is what escalation is for.
// Returns the number of allocations tuned.
func (d *Deployment) DeltaRepair(damaged []mapping.MCAHealth, cal *calibration, cfg DeltaConfig) int {
	d.mu.Lock()
	defer d.mu.Unlock()
	if cfg.LR <= 0 || cfg.Epochs <= 0 {
		return 0
	}
	tuned := 0
	for ep := 0; ep < cfg.Epochs; ep++ {
		n := 0
		for _, h := range damaged {
			if h.Dead || d.Net.Layers[h.Layer].Kind != snn.DenseLayer {
				continue
			}
			n++
			d.deltaAlloc(h.Layer, h.Index, cal, cfg)
		}
		if n == 0 {
			return 0
		}
		tuned = n
		d.apply()
	}
	d.Stats.DeltaAllocs += tuned
	return tuned
}

// deltaAlloc runs one calibration pass over one allocation. Callers hold
// d.mu and re-apply afterwards.
func (d *Deployment) deltaAlloc(li, ai int, cal *calibration, cfg DeltaConfig) {
	l := d.Net.Layers[li]
	ref := d.ref.Layers[li]
	tgt := d.targets[li]
	a := &d.Map.Layers[li].MCAs[ai]
	wmax := d.mappers[li].WMax
	samples := float64(len(cal.perLayer[li]))
	for _, rin := range cal.perLayer[li] {
		// Normalize by the FULL row's rate energy, not just this window's:
		// a wide dense row spans many MCAs and each applies its own
		// correction to the shared drive error, so per-window normalization
		// would overshoot by the tiling factor and diverge. Averaging over
		// the calibration samples bounds the per-epoch step the same way —
		// the drive error is recomputed only when the epoch re-applies the
		// deployment state.
		norm := cfg.Eps
		for _, r := range rin {
			norm += r * r
		}
		for _, out := range a.Outputs {
			o := int(out)
			// Drive mismatch over the full row: the column integrates every
			// input, so errors from outside the window still steer the
			// correction — but only this window's weights may move.
			var pred, want float64
			for in, r := range rin {
				pred += l.W.At(o, in) * r
				want += ref.W.At(o, in) * r
			}
			g := cfg.LR * (want - pred) / (norm * samples)
			if g == 0 {
				continue
			}
			for _, in := range a.Inputs {
				r := rin[int(in)]
				if r == 0 {
					continue
				}
				w := tgt.At(o, int(in)) + g*r
				if w > wmax {
					w = wmax
				} else if w < -wmax {
					w = -wmax
				}
				tgt.Set(o, int(in), w)
				d.Stats.DeltaUpdates++
			}
		}
	}
}
