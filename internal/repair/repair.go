package repair

import "fmt"

// Policy selects how much of the repair ladder a deployment may climb.
type Policy int

const (
	// PolicyNone never repairs — the deployment just ages. The baseline
	// lifetime campaigns and today's repair-disabled behavior.
	PolicyNone Policy = iota
	// PolicyRefresh stops after program-verify refresh: drifted cells are
	// rewritten, broken hardware is left to degrade the network.
	PolicyRefresh
	// PolicyFull climbs the whole ladder: refresh, then delta-rule
	// fine-tuning around stuck devices, then spare remapping when a
	// crossbar is beyond tuning.
	PolicyFull
)

func (p Policy) String() string {
	switch p {
	case PolicyNone:
		return "none"
	case PolicyRefresh:
		return "refresh"
	case PolicyFull:
		return "full"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// ParsePolicy reads a policy name as written by String.
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "none":
		return PolicyNone, nil
	case "refresh":
		return PolicyRefresh, nil
	case "full":
		return PolicyFull, nil
	}
	return 0, fmt.Errorf("repair: unknown policy %q (none, refresh, full)", s)
}

// Config bundles the knobs of a full repair pass.
type Config struct {
	Detect DetectConfig
	Delta  DeltaConfig
	// SpareMPEs and MaxBadTaps parameterize remap escalation.
	SpareMPEs  int
	MaxBadTaps int
}

// DefaultConfig returns the repair settings the campaigns use.
func DefaultConfig() Config {
	return Config{
		Detect:     DefaultDetectConfig(),
		Delta:      DefaultDeltaConfig(),
		SpareMPEs:  4,
		MaxBadTaps: 8,
	}
}

// Outcome reports one repair pass: the detection that triggered it, the
// detection after the last tier that ran, and what each tier did.
type Outcome struct {
	Before, After Detection
	// Refreshed counts slots rewritten by the refresh tier.
	Refreshed int
	// DeltaAllocs counts allocations the delta tier tuned.
	DeltaAllocs int
	// Escalated is set when the remap tier ran; Moves counts its
	// relocations to spares.
	Escalated bool
	Moves     int
}

// Repaired reports whether the pass did any physical work.
func (o Outcome) Repaired() bool { return o.Refreshed > 0 || o.DeltaAllocs > 0 || o.Moves > 0 }

// RunOnce probes the deployment and climbs the repair ladder as far as the
// policy allows, re-probing between tiers and stopping as soon as a probe
// comes back below Damaged. The detector's canaries double as the delta
// rule's calibration set. Mutates the deployment; callers own quiescence.
func RunOnce(d *Deployment, dt *Detector, pol Policy, cfg Config) (Outcome, error) {
	before, err := dt.Probe()
	if err != nil {
		return Outcome{}, err
	}
	out := Outcome{Before: before, After: before}
	if pol == PolicyNone || !before.Degraded() {
		return out, nil
	}

	// Tier 1: program-verify refresh. Rewrites every drifted cell back to
	// its target and restarts the drift clocks.
	out.Refreshed = d.RefreshAll()
	cur, err := dt.Probe()
	if err != nil {
		return out, err
	}
	out.After = cur
	if pol == PolicyRefresh || cur.Severity < Damaged {
		return out, nil
	}

	// Tier 2: delta-rule fine-tuning of the damaged crossbars on the
	// calibration set, compensating around stuck devices.
	cal, err := d.calibrate(dt.Canaries(), dt.enc, dt.steps)
	if err != nil {
		return out, err
	}
	out.DeltaAllocs = d.DeltaRepair(d.Survey(), cal, cfg.Delta)
	cur, err = dt.Probe()
	if err != nil {
		return out, err
	}
	out.After = cur
	if cur.Severity < Damaged {
		return out, nil
	}

	// Tier 3: escalate to spare remapping, then re-tune what remains —
	// relocated allocations are freshly programmed, the survivors may still
	// carry compensable damage.
	rep, err := d.Escalate(cfg.SpareMPEs, cfg.MaxBadTaps)
	if err != nil {
		return out, err
	}
	out.Escalated = true
	out.Moves = len(rep.Moves)
	if cal2, err := d.calibrate(dt.Canaries(), dt.enc, dt.steps); err == nil {
		out.DeltaAllocs += d.DeltaRepair(d.Survey(), cal2, cfg.Delta)
	}
	cur, err = dt.Probe()
	if err != nil {
		return out, err
	}
	out.After = cur
	return out, nil
}
