package repair

import (
	"math/rand"
	"testing"

	"resparc/internal/fault"
	"resparc/internal/mapping"
	"resparc/internal/snn"
	"resparc/internal/tensor"
)

// Small two-layer dense network mapped onto 16x16 crossbars — big enough to
// tile several MCAs per layer, small enough to age and repair quickly.
func fixtureNet(t *testing.T) *snn.Network {
	t.Helper()
	rng := rand.New(rand.NewSource(11))
	randMat := func(rows, cols int) *tensor.Mat {
		m := tensor.NewMat(rows, cols)
		for i := range m.Data {
			m.Data[i] = rng.Float64() - 0.5
		}
		return m
	}
	l1, err := snn.NewDense("h", 48, 24, randMat(24, 48), 1.0)
	if err != nil {
		t.Fatal(err)
	}
	l2, err := snn.NewDense("out", 24, 10, randMat(10, 24), 0.7)
	if err != nil {
		t.Fatal(err)
	}
	net, err := snn.NewNetwork("fixture", tensor.Shape3{H: 1, W: 1, C: 48}, l1, l2)
	if err != nil {
		t.Fatal(err)
	}
	return net
}

func fixtureDeployment(t *testing.T, lt fault.Lifetime) *Deployment {
	t.Helper()
	net := fixtureNet(t)
	cfg := mapping.DefaultConfig()
	cfg.MCASize = 16
	m, err := mapping.Map(net, cfg)
	if err != nil {
		t.Fatal(err)
	}
	d, err := NewDeployment(net, m, lt)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func canaries(n, size int) []tensor.Vec {
	rng := rand.New(rand.NewSource(77))
	out := make([]tensor.Vec, n)
	for i := range out {
		v := make(tensor.Vec, size)
		for j := range v {
			v[j] = rng.Float64()
		}
		out[i] = v
	}
	return out
}

func canaryEnc(i int) snn.Encoder { return snn.NewPoissonEncoder(0.9, 99).ForkSeed(i) }

const canarySteps = 24

func fixtureDetector(t *testing.T, d *Deployment, cfg DetectConfig) *Detector {
	t.Helper()
	dt, err := NewDetector(d, cfg, canaries(24, 48), canaryEnc, canarySteps)
	if err != nil {
		t.Fatal(err)
	}
	return dt
}

func netWeights(net *snn.Network) []float64 {
	var out []float64
	for _, l := range net.Layers {
		if l.W != nil {
			out = append(out, l.W.Data...)
		}
	}
	return out
}

// driftLife is a drift-only lifetime: no fabrication defects, no wear.
func driftLife(sigma float64) fault.Lifetime {
	return fault.Lifetime{Camp: fault.Campaign{Seed: 5, DriftSigma: sigma}, EOL: 1e6}
}

// wearLife adds wear-out stuck-at failures on top of mild drift.
func wearLife(wear float64) fault.Lifetime {
	return fault.Lifetime{
		Camp:         fault.Campaign{Seed: 5, DriftSigma: 0.15, StuckHighShare: 0.5},
		EOL:          1e6,
		WearFraction: wear,
	}
}

// Two deployments with the same seed must age bit-identically, checkpoint by
// checkpoint — the property that makes lifetime campaigns reproducible.
func TestDeploymentDeterministic(t *testing.T) {
	a := fixtureDeployment(t, wearLife(0.02))
	b := fixtureDeployment(t, wearLife(0.02))
	for _, age := range []float64{0, 1e4, 3e5, 1e6} {
		if err := a.AdvanceTo(age); err != nil {
			t.Fatal(err)
		}
		if err := b.AdvanceTo(age); err != nil {
			t.Fatal(err)
		}
		wa, wb := netWeights(a.Net), netWeights(b.Net)
		for i := range wa {
			if wa[i] != wb[i] {
				t.Fatalf("age %g: weight %d differs: %v vs %v", age, i, wa[i], wb[i])
			}
		}
	}
	if err := a.AdvanceTo(1e3); err == nil {
		t.Fatal("rejuvenation accepted")
	}
}

// A fresh deployment matches the clean reference exactly (quantization is
// shared); aging drifts weights out of program-verify tolerance with the
// out-of-tolerance count growing monotonically; a refresh rewrites every
// drifted cell so the deployment scans clean again.
func TestAgingDriftAndRefresh(t *testing.T) {
	d := fixtureDeployment(t, driftLife(0.3))
	dt := fixtureDetector(t, d, DefaultDetectConfig())

	det, err := dt.Probe()
	if err != nil {
		t.Fatal(err)
	}
	if det.Severity != Healthy || det.OutOfTol != 0 || det.Agreement != 1 {
		t.Fatalf("fresh deployment not healthy: %+v", det)
	}

	prev := 0
	for _, age := range []float64{1e4, 1e5, 1e6} {
		if err := d.AdvanceTo(age); err != nil {
			t.Fatal(err)
		}
		det, err = dt.Probe()
		if err != nil {
			t.Fatal(err)
		}
		if det.OutOfTol < prev {
			t.Fatalf("age %g: out-of-tol shrank %d -> %d without repair", age, prev, det.OutOfTol)
		}
		prev = det.OutOfTol
	}
	if prev == 0 {
		t.Fatal("EOL drift never left program-verify tolerance")
	}
	if det.Severity == Healthy {
		t.Fatalf("EOL deployment graded healthy: %+v", det)
	}

	if n := d.RefreshAll(); n == 0 {
		t.Fatal("refresh touched no slots")
	}
	det, err = dt.Probe()
	if err != nil {
		t.Fatal(err)
	}
	if det.OutOfTol != 0 || det.Severity != Healthy || det.Agreement != 1 {
		t.Fatalf("refreshed deployment still degraded: %+v", det)
	}

	// Drift resumes after the refresh — on a fresh epoch, from the refresh
	// age — so the deployment is not frozen, just repaired.
	if err := d.AdvanceTo(2e6); err != nil {
		t.Fatal(err)
	}
	det, err = dt.Probe()
	if err != nil {
		t.Fatal(err)
	}
	if det.OutOfTol == 0 {
		t.Fatal("post-refresh aging produced no drift")
	}
}

// Refresh cannot fix broken hardware: wear-out stuck devices survive the
// rewrite and keep the deployment's bad-tap count.
func TestRefreshKeepsStuckDamage(t *testing.T) {
	d := fixtureDeployment(t, wearLife(0.05))
	dt := fixtureDetector(t, d, DefaultDetectConfig())
	if err := d.AdvanceTo(1e6); err != nil {
		t.Fatal(err)
	}
	before, err := dt.Probe()
	if err != nil {
		t.Fatal(err)
	}
	if before.BadTaps == 0 {
		t.Fatal("EOL wear produced no damaging taps")
	}
	d.RefreshAll()
	after, err := dt.Probe()
	if err != nil {
		t.Fatal(err)
	}
	// The exact count can shift a little — benign-stuck classification is
	// judged against deployed weight signs, which the refresh cleans up —
	// but the broken devices themselves persist.
	if after.BadTaps == 0 {
		t.Fatalf("refresh cleared bad taps %d -> 0", before.BadTaps)
	}
	if after.OutOfTol >= before.OutOfTol {
		t.Fatalf("refresh did not reduce out-of-tol cells: %d -> %d", before.OutOfTol, after.OutOfTol)
	}
}

// The full ladder recovers at least as much canary agreement as refresh
// alone on a worn-out deployment, and its delta tier actually runs. The
// parallel canary classification runs under -race in CI.
func TestFullPolicyBeatsRefreshOnly(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Detect.AgreementFloor = 2 // force the ladder to climb every tier
	cfg.Detect.CriticalFloor = 0
	cfg.Detect.Workers = 4

	agreements := make(map[Policy]float64)
	outcomes := make(map[Policy]Outcome)
	for _, pol := range []Policy{PolicyNone, PolicyRefresh, PolicyFull} {
		d := fixtureDeployment(t, wearLife(0.08))
		dt := fixtureDetector(t, d, cfg.Detect)
		if err := d.AdvanceTo(1e6); err != nil {
			t.Fatal(err)
		}
		out, err := RunOnce(d, dt, pol, cfg)
		if err != nil {
			t.Fatal(err)
		}
		outcomes[pol] = out
		agree, err := d.Agreement(canaries(24, 48), canaryEnc, canarySteps, 4)
		if err != nil {
			t.Fatal(err)
		}
		agreements[pol] = agree
	}
	if outcomes[PolicyNone].Repaired() {
		t.Fatalf("no-repair policy did work: %+v", outcomes[PolicyNone])
	}
	if outcomes[PolicyRefresh].Refreshed == 0 || outcomes[PolicyRefresh].DeltaAllocs != 0 {
		t.Fatalf("refresh policy ran wrong tiers: %+v", outcomes[PolicyRefresh])
	}
	if outcomes[PolicyFull].DeltaAllocs == 0 {
		t.Fatalf("full policy never delta-tuned: %+v", outcomes[PolicyFull])
	}
	if agreements[PolicyRefresh] < agreements[PolicyNone] {
		t.Fatalf("refresh hurt agreement: %v < %v", agreements[PolicyRefresh], agreements[PolicyNone])
	}
	if agreements[PolicyFull] < agreements[PolicyRefresh] {
		t.Fatalf("full ladder under refresh-only: %v < %v", agreements[PolicyFull], agreements[PolicyRefresh])
	}
}

// Dead slots grade critical and only escalation clears them: the remap tier
// moves their allocations to screened spares and the deployment recovers.
func TestEscalateClearsDeadSlots(t *testing.T) {
	lt := driftLife(0.1)
	lt.Camp.DeadMPEs = []int{0}
	d := fixtureDeployment(t, lt)
	dt := fixtureDetector(t, d, DefaultDetectConfig())

	before, err := dt.Probe()
	if err != nil {
		t.Fatal(err)
	}
	if before.Severity != Critical || before.DeadAllocs == 0 {
		t.Fatalf("dead mPE not graded critical: %+v", before)
	}

	out, err := RunOnce(d, dt, PolicyFull, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !out.Escalated || out.Moves == 0 {
		t.Fatalf("ladder never escalated: %+v", out)
	}
	if out.After.DeadAllocs != 0 {
		t.Fatalf("dead allocations survive escalation: %+v", out.After)
	}
	if out.After.Severity == Critical {
		t.Fatalf("still critical after escalation: %+v", out.After)
	}
}
