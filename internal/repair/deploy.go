// Package repair closes RESPARC's reliability loop: it turns the one-shot
// fault machinery (seeded campaigns, program-verify, spare remapping) into a
// continuous lifetime process. A Deployment binds a mapped network to a
// fault.Lifetime model and ages it in place — conductance drift grows with
// the inference count and wear-out stuck-at failures accumulate — while a
// Detector watches the deployed network with canary probes and sampled
// verify scans, and a tiered repair ladder (program-verify refresh →
// crossbar-local delta-rule fine-tuning → escalation to spare remapping)
// recovers agreement with the clean reference.
//
// Determinism: everything downstream of the lifetime seed is reproducible —
// aging draws are pure functions of (seed, physical slot, refresh epoch),
// detection uses seeded encoders, and the delta rule is plain arithmetic —
// so a seeded lifetime campaign writes byte-identical result rows on every
// run, the same contract the fault sweep and the perf suite already honor.
package repair

import (
	"fmt"
	"sync"

	"resparc/internal/fault"
	"resparc/internal/mapping"
	"resparc/internal/quant"
	"resparc/internal/snn"
	"resparc/internal/tensor"
)

// Deployment is one mapped network aging in service. Net is the live
// network — the same *snn.Network the serving backends evaluate — and its
// weight matrices are rewritten in place as the deployment ages or repairs,
// with the weight-derived caches invalidated coherently on every rewrite.
//
// Callers own quiescence: AdvanceTo and the repair operations mutate Net,
// so no evaluation may be in flight while they run (the serve integration
// holds the model's repair write-lock during the repair window; the bench
// campaigns are single-threaded over the deployment between batch runs).
type Deployment struct {
	Net  *snn.Network
	Map  *mapping.Mapping
	Life fault.Lifetime

	// ref is the clean quantized reference — the network a fault-free,
	// undrifted chip computes. Golden canary predictions and the delta
	// rule's teacher drives come from it.
	ref *snn.Network
	// targets holds the logical weights the controller programs, per layer
	// (nil for pool layers). Delta-rule repair retunes these; aging and
	// refresh re-derive Net's effective weights from them.
	targets []*tensor.Mat
	mappers []*quant.Mapper
	age     float64
	// epoch and refreshAge track per-slot program-verify refreshes: a
	// refresh restarts the slot's drift clock (sigma counts from the
	// refresh age) on a fresh deterministic drift stream (the epoch).
	epoch      map[fault.SlotID]int
	refreshAge map[fault.SlotID]float64

	// Stats accumulates lifetime repair activity for metrics export.
	Stats Stats

	mu sync.Mutex
}

// Stats counts cumulative repair activity over the deployment's life.
type Stats struct {
	Probes         int // detector probes run
	Refreshes      int // slots refreshed (program-verify rewrite)
	CellsRewritten int // cross-points rewritten by refreshes
	DeltaAllocs    int // allocations delta-rule tuned
	DeltaUpdates   int // individual weight updates applied
	Moves          int // allocations remapped to spares
	Escalations    int // remap escalations triggered
}

// convSlot is the pseudo-slot keying a conv layer's representative drift
// stream — disjoint from physical slot ids (negative mPE), matching the
// fault sweep's convention so shared kernels age deterministically too.
func convSlot(li int) fault.SlotID { return fault.SlotID{MPE: -1 - li, Slot: 0} }

// NewDeployment binds a network to its mapping and lifetime model, builds
// the clean quantized reference, and applies the age-0 state (fabrication
// defects and conductance quantization) to Net in place.
func NewDeployment(net *snn.Network, m *mapping.Mapping, lt fault.Lifetime) (*Deployment, error) {
	if err := lt.Validate(); err != nil {
		return nil, err
	}
	d := &Deployment{
		Net: net, Map: m, Life: lt,
		targets:    make([]*tensor.Mat, len(net.Layers)),
		mappers:    make([]*quant.Mapper, len(net.Layers)),
		epoch:      make(map[fault.SlotID]int),
		refreshAge: make(map[fault.SlotID]float64),
	}
	refLayers := make([]*snn.Layer, 0, len(net.Layers))
	for li, l := range net.Layers {
		if l.Kind == snn.PoolLayer {
			nl, err := snn.NewPool(l.Name, l.In, l.Geom.K, l.Threshold)
			if err != nil {
				return nil, err
			}
			nl.Leak, nl.HardReset = l.Leak, l.HardReset
			refLayers = append(refLayers, nl)
			continue
		}
		mapper, err := quant.NewMapper(m.Cfg.Tech, l.W.MaxAbs())
		if err != nil {
			return nil, err
		}
		d.mappers[li] = mapper
		d.targets[li] = l.W.Clone()
		// Clean reference: quantization only — no stuck devices, no drift.
		rw := l.W.Clone()
		for i, x := range rw.Data {
			rw.Data[i] = fault.EffectiveWeight(mapper, x, fault.DeviceOK, fault.DeviceOK, 1, 1)
		}
		var nl *snn.Layer
		switch l.Kind {
		case snn.DenseLayer:
			nl, err = snn.NewDense(l.Name, l.InSize(), l.OutSize(), rw, l.Threshold)
			if err == nil {
				nl.In, nl.Out = l.In, l.Out
			}
		case snn.ConvLayer:
			nl, err = snn.NewConv(l.Name, l.Geom, rw, l.Threshold)
		default:
			err = fmt.Errorf("repair: unknown layer kind %v", l.Kind)
		}
		if err != nil {
			return nil, err
		}
		nl.Leak, nl.HardReset = l.Leak, l.HardReset
		refLayers = append(refLayers, nl)
	}
	ref, err := snn.NewNetwork(net.Name+"-ref", net.Input, refLayers...)
	if err != nil {
		return nil, err
	}
	d.ref = ref
	d.apply()
	return d, nil
}

// Ref returns the clean quantized reference network (never mutated).
func (d *Deployment) Ref() *snn.Network { return d.ref }

// Age returns the deployment's current age in inferences.
func (d *Deployment) Age() float64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.age
}

// AdvanceTo ages the deployment to the given inference count and rewrites
// Net's weights in place: drift magnitudes grow (per-cell directions are
// stable within a refresh epoch, so degradation is monotone), and wear-out
// failures born by the new age take effect. Age can only move forward.
func (d *Deployment) AdvanceTo(age float64) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if age < d.age {
		return fmt.Errorf("repair: cannot rejuvenate from %g to %g inferences", d.age, age)
	}
	d.age = age
	d.apply()
	return nil
}

// RefreshAll runs a program-verify refresh of every mapped slot (and the
// conv pseudo-slots): drifted cells are rewritten back to their targets, so
// each slot's drift clock restarts at the current age on a fresh epoch.
// Stuck devices are broken hardware — a rewrite cannot move them, and their
// damage persists. Returns the number of slots refreshed.
func (d *Deployment) RefreshAll() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	n := 0
	for li, l := range d.Net.Layers {
		switch l.Kind {
		case snn.DenseLayer:
			lm := &d.Map.Layers[li]
			for ai := range lm.MCAs {
				a := &lm.MCAs[ai]
				d.refreshSlot(fault.SlotID{MPE: a.MPE, Slot: a.Slot}, len(a.Inputs)*len(a.Outputs))
				n++
			}
		case snn.ConvLayer:
			d.refreshSlot(convSlot(li), len(l.W.Data))
			n++
		}
	}
	d.apply()
	return n
}

func (d *Deployment) refreshSlot(id fault.SlotID, cells int) {
	d.epoch[id]++
	d.refreshAge[id] = d.age
	d.Stats.Refreshes++
	d.Stats.CellsRewritten += cells
}

// Survey reports the allocations damaged at the current age — fabrication
// defects plus wear-out failures — in placement order, ready for remap
// escalation.
func (d *Deployment) Survey() []mapping.MCAHealth {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.Map.SurveyCells(d.Life.Camp.SlotDead, d.stuckCellsAt)
}

// stuckCellsAt enumerates the slot's stuck devices (fabrication + wear) at
// the current age in canonical order.
func (d *Deployment) stuckCellsAt(id fault.SlotID, rows, cols int) []fault.StuckCell {
	cm := d.Life.CellMapAt(id, rows, cols, d.age)
	var out []fault.StuckCell
	for _, plane := range []fault.Plane{fault.Pos, fault.Neg} {
		for r := 0; r < rows; r++ {
			for c := 0; c < cols; c++ {
				if s := cm.At(r, c, plane); s != fault.DeviceOK {
					out = append(out, fault.StuckCell{R: r, C: c, Plane: plane, State: s})
				}
			}
		}
	}
	return out
}

// Escalate runs PR 4's fault-aware remapping against the current-age damage:
// allocations over the tolerance move to screened spare slots, which start
// their drift clock at the current age (they are programmed now). Returns
// the remap report.
func (d *Deployment) Escalate(spareMPEs, maxBadTaps int) (*mapping.RemapReport, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	health := d.Map.SurveyCells(d.Life.Camp.SlotDead, d.stuckCellsAt)
	rep, err := d.Map.RemapFaulty(health, mapping.RemapConfig{
		SpareMPEs:  spareMPEs,
		MaxBadTaps: maxBadTaps,
		Screen:     d.Map.ScreenCells(d.Life.Camp.SlotDead, d.stuckCellsAt, maxBadTaps),
	})
	if err != nil {
		return nil, err
	}
	for _, mv := range rep.Moves {
		d.refreshAge[mv.To] = d.age
	}
	d.Stats.Escalations++
	d.Stats.Moves += len(rep.Moves)
	d.apply()
	return rep, nil
}

// apply rewrites Net's weights in place to the deployment's current state:
// every dense tap reads back through its physical cell's quantization,
// stuck state (fabrication + wear born by the current age) and drift (sigma
// counted from the slot's last refresh, directions from its epoch stream);
// taps on dead slots vanish; conv kernels take quantization plus the
// representative per-tap drift of their pseudo-slot. Same draw order as the
// one-shot fault sweep, so a never-refreshed deployment at age A computes
// exactly what the sweep's faulted network computes at drift age A.
// Callers hold d.mu.
func (d *Deployment) apply() {
	for li, l := range d.Net.Layers {
		size := d.Map.LayerSize(li)
		switch l.Kind {
		case snn.DenseLayer:
			tgt := d.targets[li]
			copy(l.W.Data, tgt.Data)
			lm := &d.Map.Layers[li]
			for ai := range lm.MCAs {
				a := &lm.MCAs[ai]
				id := fault.SlotID{MPE: a.MPE, Slot: a.Slot}
				dead := d.Life.Camp.SlotDead(id)
				sigma := d.Life.Camp.DriftSigmaAt(d.age - d.refreshAge[id])
				cm := d.Life.CellMapAt(id, size, size, d.age)
				rng := d.Life.Camp.DriftRngEpoch(id, d.epoch[id])
				for r, in := range a.Inputs {
					for c, out := range a.Outputs {
						dp := fault.DriftFactor(rng, sigma)
						dn := fault.DriftFactor(rng, sigma)
						if dead {
							l.W.Set(int(out), int(in), 0)
							continue
						}
						eff := fault.EffectiveWeight(d.mappers[li], tgt.At(int(out), int(in)),
							cm.At(r, c, fault.Pos), cm.At(r, c, fault.Neg), dp, dn)
						l.W.Set(int(out), int(in), eff)
					}
				}
			}
		case snn.ConvLayer:
			tgt := d.targets[li]
			id := convSlot(li)
			sigma := d.Life.Camp.DriftSigmaAt(d.age - d.refreshAge[id])
			rng := d.Life.Camp.DriftRngEpoch(id, d.epoch[id])
			for i, x := range tgt.Data {
				dp := fault.DriftFactor(rng, sigma)
				dn := fault.DriftFactor(rng, sigma)
				l.W.Data[i] = fault.EffectiveWeight(d.mappers[li], x, fault.DeviceOK, fault.DeviceOK, dp, dn)
			}
		}
	}
	d.Net.InvalidateWeightCaches()
}

// Agreement classifies inputs on the deployed network and on the clean
// reference and returns the prediction agreement fraction.
func (d *Deployment) Agreement(inputs []tensor.Vec, enc snn.EncoderFactory, steps, workers int) (float64, error) {
	got, err := snn.RunBatch(d.Net, inputs, enc, steps, snn.Options{Workers: workers})
	if err != nil {
		return 0, err
	}
	ref, err := snn.RunBatch(d.ref, inputs, enc, steps, snn.Options{Workers: workers})
	if err != nil {
		return 0, err
	}
	agree := 0
	for i := range got {
		if got[i].Prediction == ref[i].Prediction {
			agree++
		}
	}
	return float64(agree) / float64(len(got)), nil
}
