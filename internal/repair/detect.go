package repair

import (
	"fmt"
	"math"

	"resparc/internal/snn"
	"resparc/internal/tensor"
)

// Severity grades a detection, worst first. The repair ladder keys off it:
// Drifted is fixed by a program-verify refresh, Damaged needs delta-rule
// tuning around broken devices, Critical needs spare remapping.
type Severity int

const (
	Healthy  Severity = iota
	Drifted           // weights out of program-verify tolerance, no broken hardware implicated
	Damaged           // damaging stuck devices present and canary agreement below floor
	Critical          // dead slots in service, or agreement collapsed
)

func (s Severity) String() string {
	switch s {
	case Healthy:
		return "healthy"
	case Drifted:
		return "drifted"
	case Damaged:
		return "damaged"
	case Critical:
		return "critical"
	default:
		return fmt.Sprintf("Severity(%d)", int(s))
	}
}

// DetectConfig tunes the online monitor.
type DetectConfig struct {
	// AgreementFloor is the canary agreement below which the deployment
	// counts as damaged (with broken devices) or drifted (without).
	AgreementFloor float64
	// CriticalFloor is the agreement below which the deployment is critical
	// regardless of what the scans show.
	CriticalFloor float64
	// DriftFraction is the tolerated fraction of scanned cells out of
	// program-verify tolerance before the deployment counts as drifted.
	DriftFraction float64
	// ScanUnits caps how many scan units (dense allocations plus one unit
	// per conv layer) each probe verifies, rotating through the mapping so
	// successive probes cover everything; 0 scans all units every probe.
	ScanUnits int
	// Workers parallelizes the canary classification.
	Workers int
}

// DefaultDetectConfig returns the monitor settings the campaigns use.
func DefaultDetectConfig() DetectConfig {
	return DetectConfig{AgreementFloor: 0.9, CriticalFloor: 0.6, DriftFraction: 0.01, Workers: 1}
}

// Detection is one probe's typed degradation report.
type Detection struct {
	// Agreement is the canary-prediction agreement against the golden
	// predictions recorded from the clean reference at deployment time.
	Agreement float64 `json:"agreement"`
	// Scanned and OutOfTol summarize the sampled program-verify scan:
	// cross-points compared and cross-points deviating from their target by
	// more than half a conductance-level step.
	Scanned  int `json:"scanned"`
	OutOfTol int `json:"out_of_tol"`
	// MaxErr is the largest weight deviation the scan saw.
	MaxErr float64 `json:"max_err"`
	// BadTaps counts damaging stuck devices over the whole mapping at the
	// current age; DeadAllocs counts allocations sitting on dead slots.
	BadTaps    int `json:"bad_taps"`
	DeadAllocs int `json:"dead_allocs"`
	// Severity grades the report.
	Severity Severity `json:"severity"`
}

// DriftFrac returns the out-of-tolerance fraction of the scan.
func (d Detection) DriftFrac() float64 {
	if d.Scanned == 0 {
		return 0
	}
	return float64(d.OutOfTol) / float64(d.Scanned)
}

// Degraded reports whether the detection calls for any repair.
func (d Detection) Degraded() bool { return d.Severity > Healthy }

// scanUnit is one verifiable region: a dense allocation's used window, or a
// conv layer's shared kernel bank (keyed by alloc == -1).
type scanUnit struct {
	layer, alloc int
}

// Detector watches a deployment: known-answer canary probes against golden
// predictions from the clean reference, plus rotating sampled program-verify
// scans over the mapped crossbars. Probes never mutate the deployment
// beyond its stats counters.
type Detector struct {
	dep    *Deployment
	cfg    DetectConfig
	inputs []tensor.Vec
	enc    snn.EncoderFactory
	steps  int
	golden []int
	units  []scanUnit
	cursor int
}

// NewDetector records golden predictions for the canary inputs on the clean
// reference and prepares the scan rotation.
func NewDetector(dep *Deployment, cfg DetectConfig, inputs []tensor.Vec, enc snn.EncoderFactory, steps int) (*Detector, error) {
	if len(inputs) == 0 {
		return nil, fmt.Errorf("repair: detector needs canary inputs")
	}
	ref, err := snn.RunBatch(dep.Ref(), inputs, enc, steps, snn.Options{Workers: cfg.Workers})
	if err != nil {
		return nil, err
	}
	dt := &Detector{dep: dep, cfg: cfg, inputs: inputs, enc: enc, steps: steps}
	dt.golden = make([]int, len(ref))
	for i, r := range ref {
		dt.golden[i] = r.Prediction
	}
	for li, l := range dep.Net.Layers {
		switch l.Kind {
		case snn.DenseLayer:
			for ai := range dep.Map.Layers[li].MCAs {
				dt.units = append(dt.units, scanUnit{layer: li, alloc: ai})
			}
		case snn.ConvLayer:
			dt.units = append(dt.units, scanUnit{layer: li, alloc: -1})
		}
	}
	return dt, nil
}

// Canaries returns the detector's probe inputs — the repair ladder reuses
// them as the delta rule's calibration set.
func (dt *Detector) Canaries() []tensor.Vec { return dt.inputs }

// Probe runs one detection round: canary classification against the golden
// predictions, a sampled scan, and a damage survey. The scan cursor
// advances so consecutive probes verify different crossbars.
func (dt *Detector) Probe() (Detection, error) {
	got, err := snn.RunBatch(dt.dep.Net, dt.inputs, dt.enc, dt.steps, snn.Options{Workers: dt.cfg.Workers})
	if err != nil {
		return Detection{}, err
	}
	agree := 0
	for i := range got {
		if got[i].Prediction == dt.golden[i] {
			agree++
		}
	}
	det := Detection{Agreement: float64(agree) / float64(len(got))}

	n := dt.cfg.ScanUnits
	if n <= 0 || n > len(dt.units) {
		n = len(dt.units)
	}
	for i := 0; i < n; i++ {
		u := dt.units[(dt.cursor+i)%len(dt.units)]
		dt.scan(u, &det)
	}
	dt.cursor = (dt.cursor + n) % len(dt.units)

	for _, h := range dt.dep.Survey() {
		if h.Dead {
			det.DeadAllocs++
		}
		det.BadTaps += h.BadTaps
	}
	det.Severity = dt.grade(det)
	dt.dep.Stats.Probes++
	return det, nil
}

// scan compares the deployed weights of one unit against the clean
// reference with the program-verify tolerance (half a level step), the same
// criterion xbar.ScanVerify applies on a physical crossbar.
func (dt *Detector) scan(u scanUnit, det *Detection) {
	l := dt.dep.Net.Layers[u.layer]
	ref := dt.dep.Ref().Layers[u.layer]
	mapper := dt.dep.mappers[u.layer]
	tol := 0.5 * mapper.WMax / float64(mapper.Tech.Levels-1)
	check := func(got, want float64) {
		det.Scanned++
		if e := math.Abs(got - want); e > tol {
			det.OutOfTol++
			if e > det.MaxErr {
				det.MaxErr = e
			}
		}
	}
	if u.alloc < 0 {
		for i := range l.W.Data {
			check(l.W.Data[i], ref.W.Data[i])
		}
		return
	}
	a := &dt.dep.Map.Layers[u.layer].MCAs[u.alloc]
	for _, in := range a.Inputs {
		for _, out := range a.Outputs {
			check(l.W.At(int(out), int(in)), ref.W.At(int(out), int(in)))
		}
	}
}

// grade applies the severity ladder.
func (dt *Detector) grade(d Detection) Severity {
	switch {
	case d.DeadAllocs > 0 || d.Agreement < dt.cfg.CriticalFloor:
		return Critical
	case d.BadTaps > 0 && d.Agreement < dt.cfg.AgreementFloor:
		return Damaged
	case d.DriftFrac() > dt.cfg.DriftFraction || d.Agreement < dt.cfg.AgreementFloor:
		return Drifted
	default:
		return Healthy
	}
}
