package ann

import (
	"math"
	"math/rand"
	"testing"

	"resparc/internal/dataset"
	"resparc/internal/tensor"
)

// With momentum, a constant gradient accumulates velocity: the second step
// moves farther than the first.
func TestMomentumAccumulates(t *testing.T) {
	d := &Dense{W: tensor.NewMat(1, 1), Momentum: 0.9}
	d.W.Set(0, 0, 0)
	in := tensor.Vec{1}
	// dLoss/dOut = 1 constantly.
	d.Forward(in)
	d.Backward(tensor.Vec{1}, 0.1)
	w1 := d.W.At(0, 0)
	step1 := math.Abs(w1) // lr*grad = 0.1
	d.Forward(in)
	d.Backward(tensor.Vec{1}, 0.1)
	step2 := math.Abs(d.W.At(0, 0) - w1) // 0.9*0.1 + 0.1 = 0.19
	if math.Abs(step1-0.1) > 1e-12 {
		t.Fatalf("first step %v, want 0.1", step1)
	}
	if math.Abs(step2-0.19) > 1e-12 {
		t.Fatalf("second step %v, want 0.19 (velocity accumulation)", step2)
	}
}

// Momentum 0 must be bit-identical to the plain SGD path.
func TestZeroMomentumMatchesPlainSGD(t *testing.T) {
	mk := func(momentum float64) *Dense {
		rng := rand.New(rand.NewSource(1))
		d := NewDense(4, 3, true, rng)
		d.Momentum = momentum
		return d
	}
	a, b := mk(0), mk(0)
	b.SetMomentum(0)
	in := tensor.Vec{0.5, -0.2, 0.8, 0.1}
	for i := 0; i < 5; i++ {
		ga := a.Forward(in)
		gb := b.Forward(in)
		a.Backward(ga, 0.05)
		b.Backward(gb, 0.05)
	}
	for i := range a.W.Data {
		if a.W.Data[i] != b.W.Data[i] {
			t.Fatal("paths diverged")
		}
	}
}

// Conv momentum mechanics: velocity accumulates on shared kernels too.
func TestConvMomentum(t *testing.T) {
	geom := tensor.ConvGeom{In: tensor.Shape3{H: 2, W: 2, C: 1}, K: 2, Stride: 1, Pad: 0, OutC: 1}
	rng := rand.New(rand.NewSource(2))
	c := NewConv(geom, false, rng)
	c.SetMomentum(0.9)
	in := tensor.Vec{1, 1, 1, 1}
	c.Forward(in)
	before := c.W.Data.Clone()
	c.Backward(tensor.Vec{1}, 0.01)
	d1 := math.Abs(c.W.Data[0] - before[0])
	mid := c.W.Data.Clone()
	c.Forward(in)
	c.Backward(tensor.Vec{1}, 0.01)
	d2 := math.Abs(c.W.Data[0] - mid[0])
	if d2 <= d1 {
		t.Fatalf("conv momentum did not accumulate: %v then %v", d1, d2)
	}
}

// Training with momentum must still learn (end-to-end sanity).
func TestTrainWithMomentum(t *testing.T) {
	train := dataset.Generate(dataset.Digits, 200, 50)
	test := dataset.Generate(dataset.Digits, 60, 51)
	rng := rand.New(rand.NewSource(52))
	n := NewMLP(train.Shape.Size(), []int{32}, 10, rng)
	cfg := DefaultTrainConfig()
	cfg.Epochs = 4
	cfg.LR = 0.005
	cfg.Momentum = 0.9
	n.Train(train, cfg)
	if acc := n.Evaluate(test); acc < 0.6 {
		t.Fatalf("momentum training accuracy %.2f", acc)
	}
}
