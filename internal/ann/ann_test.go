package ann

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"resparc/internal/dataset"
	"resparc/internal/tensor"
)

func TestDenseForward(t *testing.T) {
	d := &Dense{W: tensor.NewMat(2, 3), ReLU: false}
	copy(d.W.Data, []float64{1, 0, 0, 0, 1, 0})
	out := d.Forward(tensor.Vec{3, -4, 5})
	if out[0] != 3 || out[1] != -4 {
		t.Fatalf("Forward = %v", out)
	}
	d.ReLU = true
	out = d.Forward(tensor.Vec{3, -4, 5})
	if out[0] != 3 || out[1] != 0 {
		t.Fatalf("ReLU Forward = %v", out)
	}
}

func TestDenseSizes(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	d := NewDense(5, 3, true, rng)
	if d.InSize() != 5 || d.OutSize() != 3 {
		t.Fatalf("sizes %d %d", d.InSize(), d.OutSize())
	}
}

// Numeric-gradient check for Dense backward.
func TestDenseGradCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	d := NewDense(4, 3, true, rng)
	in := tensor.Vec{0.5, -0.3, 0.8, 0.1}
	loss := func() float64 {
		out := d.Forward(in)
		var s float64
		for _, v := range out {
			s += v * v
		}
		return 0.5 * s
	}
	base := d.W.Clone()
	// Analytic input gradient with lr=0 (no update).
	out := d.Forward(in)
	gradIn := d.Backward(out, 0)
	copy(d.W.Data, base.Data)
	const eps = 1e-6
	for i := range in {
		in[i] += eps
		lp := loss()
		in[i] -= 2 * eps
		lm := loss()
		in[i] += eps
		num := (lp - lm) / (2 * eps)
		if math.Abs(num-gradIn[i]) > 1e-5*(1+math.Abs(num)) {
			t.Fatalf("input grad %d: analytic %v numeric %v", i, gradIn[i], num)
		}
	}
}

// Dense weight update must move the loss downhill.
func TestDenseUpdateReducesLoss(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	d := NewDense(6, 4, false, rng)
	in := tensor.NewVec(6)
	for i := range in {
		in[i] = rng.Float64()
	}
	lossOf := func() float64 {
		out := d.Forward(in)
		var s float64
		for _, v := range out {
			s += v * v
		}
		return 0.5 * s
	}
	before := lossOf()
	out := d.Forward(in)
	d.Backward(out, 0.05)
	after := lossOf()
	if after >= before {
		t.Fatalf("loss did not decrease: %v -> %v", before, after)
	}
}

func TestConvForwardKnown(t *testing.T) {
	// 3x3 single-channel input, 2x2 kernel of all ones, stride 1:
	// output[oy][ox] = sum of the 2x2 window.
	geom := tensor.ConvGeom{In: tensor.Shape3{H: 3, W: 3, C: 1}, K: 2, Stride: 1, Pad: 0, OutC: 1}
	rng := rand.New(rand.NewSource(1))
	c := NewConv(geom, false, rng)
	c.W.Data.Fill(1)
	in := tensor.Vec{1, 2, 3, 4, 5, 6, 7, 8, 9}
	out := c.Forward(in)
	want := tensor.Vec{12, 16, 24, 28}
	for i := range want {
		if math.Abs(out[i]-want[i]) > 1e-12 {
			t.Fatalf("out = %v, want %v", out, want)
		}
	}
}

func TestConvGradCheck(t *testing.T) {
	geom := tensor.ConvGeom{In: tensor.Shape3{H: 4, W: 4, C: 2}, K: 3, Stride: 1, Pad: 1, OutC: 2}
	rng := rand.New(rand.NewSource(4))
	c := NewConv(geom, true, rng)
	in := tensor.NewVec(c.InSize())
	for i := range in {
		in[i] = rng.NormFloat64() * 0.5
	}
	loss := func() float64 {
		out := c.Forward(in)
		var s float64
		for _, v := range out {
			s += v * v
		}
		return 0.5 * s
	}
	out := c.Forward(in)
	gradIn := c.Backward(out, 0)
	const eps = 1e-6
	for _, i := range []int{0, 5, 13, 31} {
		in[i] += eps
		lp := loss()
		in[i] -= 2 * eps
		lm := loss()
		in[i] += eps
		num := (lp - lm) / (2 * eps)
		if math.Abs(num-gradIn[i]) > 1e-4*(1+math.Abs(num)) {
			t.Fatalf("conv input grad %d: analytic %v numeric %v", i, gradIn[i], num)
		}
	}
}

func TestAvgPool(t *testing.T) {
	p := NewAvgPool(tensor.Shape3{H: 4, W: 4, C: 1}, 2)
	in := tensor.Vec{
		1, 2, 3, 4,
		5, 6, 7, 8,
		9, 10, 11, 12,
		13, 14, 15, 16,
	}
	out := p.Forward(in)
	want := tensor.Vec{3.5, 5.5, 11.5, 13.5}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("pool out = %v, want %v", out, want)
		}
	}
	if p.OutSize() != 4 || p.InSize() != 16 {
		t.Fatalf("sizes %d %d", p.InSize(), p.OutSize())
	}
	// Backward spreads gradient equally: each input gets grad/4.
	grad := tensor.Vec{4, 8, 12, 16}
	gin := p.Backward(grad, 0)
	if gin[0] != 1 || gin[3] != 2 || gin[15] != 4 {
		t.Fatalf("pool grad = %v", gin)
	}
}

func TestAvgPoolMultiChannel(t *testing.T) {
	p := NewAvgPool(tensor.Shape3{H: 2, W: 2, C: 2}, 2)
	in := tensor.Vec{1, 10, 2, 20, 3, 30, 4, 40}
	out := p.Forward(in)
	if out[0] != 2.5 || out[1] != 25 {
		t.Fatalf("multichannel pool = %v", out)
	}
}

func TestNewNetworkValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	_, err := NewNetwork(tensor.Shape3{H: 1, W: 1, C: 4},
		NewDense(4, 3, true, rng), NewDense(5, 2, false, rng))
	if err == nil {
		t.Fatal("expected size-mismatch error")
	}
	n, err := NewNetwork(tensor.Shape3{H: 1, W: 1, C: 4},
		NewDense(4, 3, true, rng), NewDense(3, 2, false, rng))
	if err != nil || len(n.Layers) != 2 {
		t.Fatalf("valid network rejected: %v", err)
	}
}

func TestSoftmax(t *testing.T) {
	p := Softmax(tensor.Vec{1, 1, 1})
	for _, v := range p {
		if math.Abs(v-1.0/3) > 1e-12 {
			t.Fatalf("uniform softmax = %v", p)
		}
	}
	// Stability with huge logits.
	p = Softmax(tensor.Vec{1000, 0})
	if math.IsNaN(p[0]) || p[0] < 0.999 {
		t.Fatalf("softmax unstable: %v", p)
	}
}

// Property: softmax output is a probability distribution.
func TestSoftmaxProperty(t *testing.T) {
	f := func(a, b, c float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) || math.IsNaN(c) ||
			math.Abs(a) > 1e6 || math.Abs(b) > 1e6 || math.Abs(c) > 1e6 {
			return true
		}
		p := Softmax(tensor.Vec{a, b, c})
		var sum float64
		for _, v := range p {
			if v < 0 || v > 1 || math.IsNaN(v) {
				return false
			}
			sum += v
		}
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTrainSampleReducesLoss(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	n := NewMLP(8, []int{16}, 3, rng)
	in := tensor.NewVec(8)
	for i := range in {
		in[i] = rng.Float64()
	}
	first := n.TrainSample(in, 1, 0.1)
	var last float64
	for i := 0; i < 20; i++ {
		last = n.TrainSample(in, 1, 0.1)
	}
	if last >= first {
		t.Fatalf("loss did not decrease: %v -> %v", first, last)
	}
}

// End-to-end: a small MLP must learn the digit dataset well above chance.
func TestMLPLearnsDigits(t *testing.T) {
	train := dataset.Generate(dataset.Digits, 300, 10)
	test := dataset.Generate(dataset.Digits, 100, 11)
	rng := rand.New(rand.NewSource(6))
	n := NewMLP(train.Shape.Size(), []int{48}, 10, rng)
	cfg := DefaultTrainConfig()
	cfg.Epochs = 6
	n.Train(train, cfg)
	acc := n.Evaluate(test)
	if acc < 0.7 {
		t.Fatalf("MLP accuracy %.2f < 0.7", acc)
	}
}

// End-to-end: a small CNN must learn digits above chance.
func TestCNNLearnsDigits(t *testing.T) {
	if testing.Short() {
		t.Skip("CNN training is slow; skipped with -short")
	}
	train := dataset.Generate(dataset.Digits, 200, 12)
	test := dataset.Generate(dataset.Digits, 60, 13)
	rng := rand.New(rand.NewSource(7))
	shape := train.Shape
	conv := NewConv(tensor.ConvGeom{In: shape, K: 5, Stride: 2, Pad: 0, OutC: 6}, true, rng)
	pool := NewAvgPool(conv.OutShape(), 2)
	fc := NewDense(pool.OutSize(), 10, false, rng)
	n, err := NewNetwork(shape, conv, pool, fc)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultTrainConfig()
	cfg.Epochs = 4
	cfg.LR = 0.01
	n.Train(train, cfg)
	acc := n.Evaluate(test)
	if acc < 0.5 {
		t.Fatalf("CNN accuracy %.2f < 0.5", acc)
	}
}

func TestEvaluateEmpty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	n := NewMLP(4, nil, 2, rng)
	if got := n.Evaluate(&dataset.Set{}); got != 0 {
		t.Fatalf("Evaluate on empty set = %v", got)
	}
}

func TestPredictRange(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	n := NewMLP(4, []int{5}, 3, rng)
	p := n.Predict(tensor.Vec{0.1, 0.2, 0.3, 0.4})
	if p < 0 || p > 2 {
		t.Fatalf("Predict = %d", p)
	}
}
