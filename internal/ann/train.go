package ann

import (
	"fmt"
	"math/rand"

	"resparc/internal/dataset"
	"resparc/internal/tensor"
)

// TrainConfig controls the SGD trainer.
type TrainConfig struct {
	Epochs   int
	LR       float64 // initial learning rate
	LRDecay  float64 // multiplicative decay per epoch (1 = none)
	Momentum float64 // velocity coefficient in [0,1); 0 = plain SGD
	Seed     int64   // sample-shuffle seed
	Verbose  bool
}

// momentumSetter is implemented by trainable layers.
type momentumSetter interface{ SetMomentum(float64) }

// DefaultTrainConfig is a reasonable starting point for the synthetic
// datasets.
func DefaultTrainConfig() TrainConfig {
	return TrainConfig{Epochs: 5, LR: 0.02, LRDecay: 0.8, Seed: 1}
}

// Train runs epoch-wise SGD over the set and returns the mean loss of the
// final epoch.
func (n *Network) Train(set *dataset.Set, cfg TrainConfig) float64 {
	rng := rand.New(rand.NewSource(cfg.Seed))
	lr := cfg.LR
	if cfg.Momentum > 0 {
		for _, l := range n.Layers {
			if ms, ok := l.(momentumSetter); ok {
				ms.SetMomentum(cfg.Momentum)
			}
		}
	}
	order := make([]int, len(set.Samples))
	for i := range order {
		order[i] = i
	}
	var meanLoss float64
	for e := 0; e < cfg.Epochs; e++ {
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		var total float64
		for _, idx := range order {
			s := set.Samples[idx]
			total += n.TrainSample(s.Input, s.Label, lr)
		}
		meanLoss = total / float64(len(order))
		if cfg.Verbose {
			fmt.Printf("epoch %d: loss=%.4f lr=%.4f\n", e, meanLoss, lr)
		}
		lr *= cfg.LRDecay
	}
	return meanLoss
}

// Evaluate returns classification accuracy of the network on the set.
func (n *Network) Evaluate(set *dataset.Set) float64 {
	if len(set.Samples) == 0 {
		return 0
	}
	correct := 0
	for _, s := range set.Samples {
		if n.Predict(s.Input) == s.Label {
			correct++
		}
	}
	return float64(correct) / float64(len(set.Samples))
}

// NewMLP builds a ReLU MLP with the given hidden sizes and a linear output
// layer of size classes, suitable for SNN conversion.
func NewMLP(input int, hidden []int, classes int, rng *rand.Rand) *Network {
	layers := make([]Layer, 0, len(hidden)+1)
	prev := input
	for _, h := range hidden {
		layers = append(layers, NewDense(prev, h, true, rng))
		prev = h
	}
	layers = append(layers, NewDense(prev, classes, false, rng))
	n, err := NewNetwork(tensor.Shape3{H: 1, W: 1, C: input}, layers...)
	if err != nil {
		panic("ann: " + err.Error()) // sizes are constructed consistently above
	}
	return n
}
