// Package ann implements the offline supervised-training substrate the
// paper relies on ("RESPARC has been trained offline using supervised
// training algorithms [4]"). It provides plain-Go stochastic-gradient
// backpropagation for the two network families RESPARC accelerates:
// multi-layer perceptrons (Dense layers) and convolutional networks
// (Conv + AvgPool layers).
//
// Networks trained here are converted to spiking networks by
// internal/snn using the weight/threshold-balancing method of Diehl et
// al. (the paper's reference [4]); to keep that conversion faithful the
// trainable layers use ReLU activations and no biases.
package ann

import (
	"fmt"
	"math"
	"math/rand"

	"resparc/internal/tensor"
)

// Layer is one differentiable network stage. Forward caches whatever state
// Backward needs; Backward consumes the gradient w.r.t. the layer output,
// applies an SGD update with the given learning rate, and returns the
// gradient w.r.t. the layer input.
type Layer interface {
	// InSize and OutSize are the flattened input/output lengths.
	InSize() int
	OutSize() int
	Forward(in tensor.Vec) tensor.Vec
	Backward(grad tensor.Vec, lr float64) tensor.Vec
}

// Dense is a fully connected layer with optional ReLU activation.
// Weights are stored as an Out x In matrix (row = output neuron), the same
// connectivity-matrix orientation that is mapped onto crossbar columns.
type Dense struct {
	W    *tensor.Mat // Out x In
	ReLU bool
	// Momentum in [0, 1) accumulates a velocity term per weight; 0 is
	// plain SGD.
	Momentum float64

	vel     *tensor.Mat
	lastIn  tensor.Vec
	lastPre tensor.Vec
	gradIn  tensor.Vec
}

// NewDense returns a Dense layer with He-initialized weights drawn from rng.
func NewDense(in, out int, relu bool, rng *rand.Rand) *Dense {
	d := &Dense{W: tensor.NewMat(out, in), ReLU: relu}
	std := math.Sqrt(2.0 / float64(in))
	for i := range d.W.Data {
		d.W.Data[i] = rng.NormFloat64() * std
	}
	return d
}

// InSize returns the input length.
func (d *Dense) InSize() int { return d.W.Cols }

// OutSize returns the number of output neurons.
func (d *Dense) OutSize() int { return d.W.Rows }

// Forward computes ReLU(W*in) (or W*in when ReLU is disabled).
func (d *Dense) Forward(in tensor.Vec) tensor.Vec {
	d.lastIn = in
	d.lastPre = d.W.MulVec(in, d.lastPre)
	out := d.lastPre.Clone()
	if d.ReLU {
		for i, v := range out {
			if v < 0 {
				out[i] = 0
			}
		}
	}
	return out
}

// Backward applies the SGD update and returns dLoss/dIn.
func (d *Dense) Backward(grad tensor.Vec, lr float64) tensor.Vec {
	if len(grad) != d.OutSize() {
		panic(fmt.Sprintf("ann: Dense.Backward grad len %d != %d", len(grad), d.OutSize()))
	}
	local := grad
	if d.ReLU {
		local = grad.Clone()
		for i := range local {
			if d.lastPre[i] <= 0 {
				local[i] = 0
			}
		}
	}
	if d.gradIn == nil {
		d.gradIn = tensor.NewVec(d.InSize())
	}
	d.gradIn.Fill(0)
	if d.Momentum > 0 && d.vel == nil {
		d.vel = tensor.NewMat(d.W.Rows, d.W.Cols)
	}
	for r := 0; r < d.W.Rows; r++ {
		g := local[r]
		if g == 0 && d.Momentum == 0 {
			continue
		}
		row := d.W.Row(r)
		if d.Momentum > 0 {
			vrow := d.vel.Row(r)
			for c, w := range row {
				d.gradIn[c] += w * g
				vrow[c] = d.Momentum*vrow[c] - lr*g*d.lastIn[c]
				row[c] = w + vrow[c]
			}
			continue
		}
		for c, w := range row {
			d.gradIn[c] += w * g
			row[c] = w - lr*g*d.lastIn[c]
		}
	}
	return d.gradIn
}

// SetMomentum configures the momentum coefficient.
func (d *Dense) SetMomentum(m float64) { d.Momentum = m }

// Conv is a 2-D convolution layer with shared kernels and optional ReLU.
// Weights are stored as an OutC x (K*K*InC) matrix: one kernel per row,
// indexed exactly as tensor.ConvGeom's kIdx.
type Conv struct {
	Geom tensor.ConvGeom
	W    *tensor.Mat // OutC x K*K*InC
	ReLU bool
	// Momentum in [0, 1); 0 is plain SGD.
	Momentum float64

	vel     *tensor.Mat
	out     tensor.Shape3
	lastIn  tensor.Vec
	lastPre tensor.Vec
	gradIn  tensor.Vec
}

// NewConv returns a Conv layer for the geometry with He-initialized kernels.
// It panics on inconsistent geometry (construction-time programming error).
func NewConv(geom tensor.ConvGeom, relu bool, rng *rand.Rand) *Conv {
	out, err := geom.OutShape()
	if err != nil {
		panic("ann: " + err.Error())
	}
	c := &Conv{Geom: geom, W: tensor.NewMat(geom.OutC, geom.FanIn()), ReLU: relu, out: out}
	std := math.Sqrt(2.0 / float64(geom.FanIn()))
	for i := range c.W.Data {
		c.W.Data[i] = rng.NormFloat64() * std
	}
	return c
}

// InSize returns the flattened input volume size.
func (c *Conv) InSize() int { return c.Geom.In.Size() }

// OutSize returns the flattened output volume size.
func (c *Conv) OutSize() int { return c.out.Size() }

// OutShape returns the output volume.
func (c *Conv) OutShape() tensor.Shape3 { return c.out }

// Forward computes the convolution (channel-minor layout).
func (c *Conv) Forward(in tensor.Vec) tensor.Vec {
	if len(in) != c.InSize() {
		panic(fmt.Sprintf("ann: Conv.Forward input len %d != %d", len(in), c.InSize()))
	}
	c.lastIn = in
	if c.lastPre == nil {
		c.lastPre = tensor.NewVec(c.OutSize())
	}
	c.lastPre.Fill(0)
	outC := c.out.C
	// Walk taps once; outIdx encodes the output channel as outIdx % outC.
	_ = c.Geom.ForEachTap(func(outIdx, inIdx, kIdx int) {
		if inIdx < 0 {
			return
		}
		oc := outIdx % outC
		c.lastPre[outIdx] += c.W.At(oc, kIdx) * in[inIdx]
	})
	out := c.lastPre.Clone()
	if c.ReLU {
		for i, v := range out {
			if v < 0 {
				out[i] = 0
			}
		}
	}
	return out
}

// Backward applies the SGD update to the shared kernels and returns
// dLoss/dIn.
func (c *Conv) Backward(grad tensor.Vec, lr float64) tensor.Vec {
	if len(grad) != c.OutSize() {
		panic(fmt.Sprintf("ann: Conv.Backward grad len %d != %d", len(grad), c.OutSize()))
	}
	local := grad
	if c.ReLU {
		local = grad.Clone()
		for i := range local {
			if c.lastPre[i] <= 0 {
				local[i] = 0
			}
		}
	}
	if c.gradIn == nil {
		c.gradIn = tensor.NewVec(c.InSize())
	}
	c.gradIn.Fill(0)
	outC := c.out.C
	gradW := tensor.NewMat(c.W.Rows, c.W.Cols)
	_ = c.Geom.ForEachTap(func(outIdx, inIdx, kIdx int) {
		if inIdx < 0 {
			return
		}
		g := local[outIdx]
		if g == 0 {
			return
		}
		oc := outIdx % outC
		c.gradIn[inIdx] += c.W.At(oc, kIdx) * g
		gradW.Set(oc, kIdx, gradW.At(oc, kIdx)+g*c.lastIn[inIdx])
	})
	if c.Momentum > 0 {
		if c.vel == nil {
			c.vel = tensor.NewMat(c.W.Rows, c.W.Cols)
		}
		for i := range c.W.Data {
			c.vel.Data[i] = c.Momentum*c.vel.Data[i] - lr*gradW.Data[i]
			c.W.Data[i] += c.vel.Data[i]
		}
		return c.gradIn
	}
	for i := range c.W.Data {
		c.W.Data[i] -= lr * gradW.Data[i]
	}
	return c.gradIn
}

// SetMomentum configures the momentum coefficient.
func (c *Conv) SetMomentum(m float64) { c.Momentum = m }

// AvgPool is a K x K average-pooling (sub-sampling) layer with stride K.
// Average pooling is the SNN-friendly sub-sampling used by converted deep
// SNNs: it is a fixed linear layer with weight 1/K² and therefore maps onto
// crossbars like any other connectivity matrix.
type AvgPool struct {
	Geom tensor.ConvGeom // OutC == In.C, K == Stride, Pad == 0
	out  tensor.Shape3

	gradIn tensor.Vec
}

// NewAvgPool returns a K x K, stride-K average pooling layer over the input
// volume.
func NewAvgPool(in tensor.Shape3, k int) *AvgPool {
	geom := tensor.ConvGeom{In: in, K: k, Stride: k, Pad: 0, OutC: in.C}
	out, err := geom.OutShape()
	if err != nil {
		panic("ann: " + err.Error())
	}
	return &AvgPool{Geom: geom, out: out}
}

// InSize returns the flattened input volume size.
func (p *AvgPool) InSize() int { return p.Geom.In.Size() }

// OutSize returns the flattened output volume size.
func (p *AvgPool) OutSize() int { return p.out.Size() }

// OutShape returns the output volume.
func (p *AvgPool) OutShape() tensor.Shape3 { return p.out }

// Forward averages each K x K window per channel.
func (p *AvgPool) Forward(in tensor.Vec) tensor.Vec {
	if len(in) != p.InSize() {
		panic(fmt.Sprintf("ann: AvgPool.Forward input len %d != %d", len(in), p.InSize()))
	}
	out := tensor.NewVec(p.OutSize())
	inv := 1.0 / float64(p.Geom.K*p.Geom.K)
	k, s := p.Geom.K, p.Geom.Stride
	for oy := 0; oy < p.out.H; oy++ {
		for ox := 0; ox < p.out.W; ox++ {
			for c := 0; c < p.out.C; c++ {
				var sum float64
				for ky := 0; ky < k; ky++ {
					for kx := 0; kx < k; kx++ {
						sum += in[p.Geom.In.Index(oy*s+ky, ox*s+kx, c)]
					}
				}
				out[p.out.Index(oy, ox, c)] = sum * inv
			}
		}
	}
	return out
}

// Backward distributes gradients uniformly over each pooling window.
func (p *AvgPool) Backward(grad tensor.Vec, _ float64) tensor.Vec {
	if p.gradIn == nil {
		p.gradIn = tensor.NewVec(p.InSize())
	}
	p.gradIn.Fill(0)
	inv := 1.0 / float64(p.Geom.K*p.Geom.K)
	k, s := p.Geom.K, p.Geom.Stride
	for oy := 0; oy < p.out.H; oy++ {
		for ox := 0; ox < p.out.W; ox++ {
			for c := 0; c < p.out.C; c++ {
				g := grad[p.out.Index(oy, ox, c)] * inv
				for ky := 0; ky < k; ky++ {
					for kx := 0; kx < k; kx++ {
						p.gradIn[p.Geom.In.Index(oy*s+ky, ox*s+kx, c)] += g
					}
				}
			}
		}
	}
	return p.gradIn
}

// Network is an ordered stack of layers trained with softmax cross-entropy
// on the final layer's output.
type Network struct {
	Input  tensor.Shape3
	Layers []Layer
}

// NewNetwork validates that consecutive layer sizes agree and returns the
// network.
func NewNetwork(input tensor.Shape3, layers ...Layer) (*Network, error) {
	size := input.Size()
	for i, l := range layers {
		if l.InSize() != size {
			return nil, fmt.Errorf("ann: layer %d expects input %d, previous produces %d", i, l.InSize(), size)
		}
		size = l.OutSize()
	}
	return &Network{Input: input, Layers: layers}, nil
}

// Forward runs the full stack and returns the final (pre-softmax) output.
func (n *Network) Forward(in tensor.Vec) tensor.Vec {
	x := in
	for _, l := range n.Layers {
		x = l.Forward(x)
	}
	return x
}

// Predict returns the argmax class for the input.
func (n *Network) Predict(in tensor.Vec) int { return n.Forward(in).ArgMax() }

// Softmax returns the softmax of logits (numerically stabilized).
func Softmax(logits tensor.Vec) tensor.Vec {
	out := tensor.NewVec(len(logits))
	m := logits.Max()
	var sum float64
	for i, v := range logits {
		out[i] = math.Exp(v - m)
		sum += out[i]
	}
	for i := range out {
		out[i] /= sum
	}
	return out
}

// TrainSample runs one SGD step on (in, label) and returns the
// cross-entropy loss before the update.
func (n *Network) TrainSample(in tensor.Vec, label int, lr float64) float64 {
	logits := n.Forward(in)
	probs := Softmax(logits)
	loss := -math.Log(math.Max(probs[label], 1e-12))
	grad := probs.Clone()
	grad[label] -= 1
	for i := len(n.Layers) - 1; i >= 0; i-- {
		grad = n.Layers[i].Backward(grad, lr)
	}
	return loss
}
