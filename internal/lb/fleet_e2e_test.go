package lb_test

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"resparc/internal/lb"
	"resparc/internal/loadgen"
	"resparc/internal/serve"
	"resparc/internal/snn"
	"resparc/internal/tensor"
)

// e2eNetwork builds a tiny dense SNN so the replicas are real serve.Servers
// without the full benchmark build cost (mirrors the serve package's own
// test fixture).
func e2eNetwork(t *testing.T, name string, seed int64) *snn.Network {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	mk := func(in, out int) *snn.Layer {
		w := tensor.NewMat(out, in)
		for i := range w.Data {
			w.Data[i] = rng.NormFloat64() * 0.3
		}
		l, err := snn.NewDense(fmt.Sprintf("d%dx%d", in, out), in, out, w, 1)
		if err != nil {
			t.Fatal(err)
		}
		return l
	}
	net, err := snn.NewNetwork(name, tensor.Shape3{H: 1, W: 1, C: 24}, mk(24, 16), mk(16, 6))
	if err != nil {
		t.Fatal(err)
	}
	return net
}

func e2eReplica(t *testing.T) *serve.Server {
	t.Helper()
	rcfg := serve.DefaultRegistryConfig()
	rcfg.Steps = 10
	rcfg.MCASize = 16
	reg, err := serve.NewRegistry(rcfg)
	if err != nil {
		t.Fatal(err)
	}
	// Same seeds on every replica: the fleet serves identical models.
	if _, err := reg.AddNetwork(e2eNetwork(t, "tiny-alpha", 11)); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.AddNetwork(e2eNetwork(t, "tiny-beta", 23)); err != nil {
		t.Fatal(err)
	}
	cfg := serve.DefaultConfig(reg)
	cfg.MaxBatch = 8
	cfg.MaxWait = time.Millisecond
	cfg.QueueSize = 512
	cfg.Workers = 2
	srv, err := serve.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	return srv
}

// chaosHandler fronts a replica and, once killed, aborts every connection
// mid-flight — the closest an httptest server gets to a crashed process.
type chaosHandler struct {
	inner http.Handler
	dead  atomic.Bool
}

func (c *chaosHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if c.dead.Load() {
		panic(http.ErrAbortHandler)
	}
	c.inner.ServeHTTP(w, r)
}

// The fleet acceptance test: three live replicas behind the balancer, a
// bursty two-model trace replayed open-loop, one replica crashing mid-run —
// and not a single interactive request may be dropped.
func TestFleetSurvivesReplicaCrashWithoutDroppingInteractive(t *testing.T) {
	if testing.Short() {
		t.Skip("e2e fleet test is not short")
	}
	const replicas = 3
	chaos := make([]*chaosHandler, replicas)
	members := make([]lb.Replica, replicas)
	for i := 0; i < replicas; i++ {
		chaos[i] = &chaosHandler{inner: e2eReplica(t).Handler()}
		ts := httptest.NewServer(chaos[i])
		t.Cleanup(ts.Close)
		members[i] = lb.Replica{Name: fmt.Sprintf("replica-%d", i), URL: ts.URL}
	}
	cfg := lb.DefaultConfig(members)
	cfg.PollInterval = 50 * time.Millisecond
	cfg.MaxInFlight = 1024
	cfg.MaxRetries = 3
	cfg.Client = &http.Client{Timeout: 10 * time.Second}
	balancer, err := lb.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer balancer.Close()
	front := httptest.NewServer(balancer.Handler())
	defer front.Close()

	events, err := loadgen.Generate(loadgen.TraceConfig{
		Seed:             42,
		Duration:         2 * time.Second,
		BaseRPS:          120,
		DiurnalAmplitude: 0.3,
		DiurnalPeriod:    2 * time.Second,
		Bursts:           []loadgen.Burst{{From: 500 * time.Millisecond, To: time.Second, Multiplier: 2}},
		Models: []loadgen.ModelMix{
			{Model: "tiny-alpha", Weight: 2},
			{Model: "tiny-beta", Weight: 1},
		},
		Tenants:       3,
		BatchFraction: 0.25,
	})
	if err != nil {
		t.Fatal(err)
	}
	input := func(string) []float64 {
		v := make([]float64, 24)
		for i := range v {
			v[i] = float64(i) / 24
		}
		return v
	}

	// Crash one replica mid-trace.
	killer := time.AfterFunc(800*time.Millisecond, func() { chaos[2].dead.Store(true) })
	defer killer.Stop()
	outcomes, err := loadgen.Drive(context.Background(), loadgen.DriveConfig{
		TargetURL: front.URL,
		Client:    &http.Client{Timeout: 15 * time.Second},
		Input:     input,
	}, events)
	if err != nil {
		t.Fatal(err)
	}

	var interactive, batch, batchOK int
	for _, o := range outcomes {
		if o.Event.Tier == lb.TierInteractive {
			interactive++
			if o.Err != nil {
				t.Errorf("interactive request dropped: %v (model %s at %v)", o.Err, o.Event.Model, o.Event.At)
			} else if o.Status != http.StatusOK {
				t.Errorf("interactive request answered %d (model %s at %v)", o.Status, o.Event.Model, o.Event.At)
			}
		} else {
			batch++
			// Batch may be rejected under pressure (429/503) but must never
			// fail at the transport or with a 5xx other than 503/504.
			if o.Err != nil {
				t.Errorf("batch request dropped: %v", o.Err)
			}
			switch o.Status {
			case http.StatusOK:
				batchOK++
			case http.StatusTooManyRequests, http.StatusServiceUnavailable, http.StatusGatewayTimeout:
			default:
				t.Errorf("batch request answered %d", o.Status)
			}
		}
	}
	if interactive == 0 || batch == 0 {
		t.Fatalf("trace produced %d interactive / %d batch events, want both tiers", interactive, batch)
	}
	if batchOK == 0 {
		t.Fatal("no batch request succeeded at all")
	}

	// The survivors must have absorbed the dead replica's share (visible as
	// failover routing decisions), and the balancer's health view must have
	// caught the crash.
	snap := balancer.Metrics().Snapshot()
	if snap.Routing[lb.RouteFailover] == 0 {
		t.Errorf("no failover decisions after the crash: %+v", snap.Routing)
	}
	// With two models both may hash to the same owner, so only demand that
	// the survivors as a group absorbed traffic.
	if snap.ReplicaRequests["replica-0"]+snap.ReplicaRequests["replica-1"] == 0 {
		t.Errorf("survivors took no traffic: %+v", snap.ReplicaRequests)
	}
	balancer.PollNow()
	var view struct {
		Replicas []struct {
			Name   string `json:"name"`
			Health struct {
				Reachable bool `json:"reachable"`
			} `json:"health"`
		} `json:"replicas"`
	}
	resp, err := http.Get(front.URL + "/v1/replicas")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
		t.Fatal(err)
	}
	for _, r := range view.Replicas {
		wantUp := r.Name != "replica-2"
		if r.Health.Reachable != wantUp {
			t.Errorf("replica %s reachable=%v after the crash, want %v", r.Name, r.Health.Reachable, wantUp)
		}
	}
	if snap.Codes[http.StatusOK] == 0 {
		t.Fatalf("no 200s recorded at the front tier: %+v", snap.Codes)
	}
	t.Logf("outcomes: %d interactive, %d batch (%d ok); per-replica %v; errors %v; routing %v",
		interactive, batch, batchOK, snap.ReplicaRequests, snap.ReplicaErrors, snap.Routing)
}
