package lb_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"resparc/internal/lb"
	"resparc/internal/serve"
)

// stubReplica is a scripted replica: a fixed readiness body plus a
// programmable classify answer, recording everything it is asked.
type stubReplica struct {
	mu     sync.Mutex
	ready  serve.HealthResponse
	code   int // readyz status
	hits   []serve.ClassifyRequest
	answer func(req serve.ClassifyRequest) (int, any)
}

func (s *stubReplica) setReady(code int, resp serve.HealthResponse) {
	s.mu.Lock()
	s.code, s.ready = code, resp
	s.mu.Unlock()
}

func (s *stubReplica) requests() []serve.ClassifyRequest {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]serve.ClassifyRequest(nil), s.hits...)
}

func (s *stubReplica) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, _ *http.Request) {
		s.mu.Lock()
		code, body := s.code, s.ready
		s.mu.Unlock()
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(code)
		_ = json.NewEncoder(w).Encode(body)
	})
	mux.HandleFunc("/v1/classify", func(w http.ResponseWriter, r *http.Request) {
		var req serve.ClassifyRequest
		_ = json.NewDecoder(r.Body).Decode(&req)
		s.mu.Lock()
		s.hits = append(s.hits, req)
		answer := s.answer
		s.mu.Unlock()
		code, body := http.StatusOK, any(serve.ClassifyResponse{Model: req.Model, Backend: req.Backend})
		if answer != nil {
			code, body = answer(req)
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(code)
		_ = json.NewEncoder(w).Encode(body)
	})
	return mux
}

func readyBody(states map[string]string) serve.HealthResponse {
	resp := serve.HealthResponse{Status: "ready"}
	for pair, state := range states {
		model, backend, _ := strings.Cut(pair, "/")
		resp.Backends = append(resp.Backends, serve.BackendHealth{Model: model, Backend: backend, State: state})
	}
	return resp
}

// newStubFleet starts n scripted replicas and a balancer over them.
func newStubFleet(t *testing.T, n int, cfg func(*lb.Config)) (*lb.LB, []*stubReplica) {
	t.Helper()
	stubs := make([]*stubReplica, n)
	replicas := make([]lb.Replica, n)
	for i := range stubs {
		stubs[i] = &stubReplica{code: http.StatusOK, ready: readyBody(nil)}
		ts := httptest.NewServer(stubs[i].handler())
		t.Cleanup(ts.Close)
		replicas[i] = lb.Replica{Name: fmt.Sprintf("replica-%d", i), URL: ts.URL}
	}
	c := lb.DefaultConfig(replicas)
	c.PollInterval = time.Hour // tests poll explicitly via PollNow
	if cfg != nil {
		cfg(&c)
	}
	balancer, err := lb.New(c)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(balancer.Close)
	return balancer, stubs
}

func classifyVia(t *testing.T, url, model, backend, tenant, tier string) (*http.Response, string) {
	t.Helper()
	body, err := json.Marshal(serve.ClassifyRequest{Model: model, Backend: backend, Input: []float64{0.5}})
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, url+"/v1/classify", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if tenant != "" {
		req.Header.Set(lb.HeaderTenant, tenant)
	}
	if tier != "" {
		req.Header.Set(lb.HeaderPriority, tier)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, string(raw)
}

func errCode(t *testing.T, body string) string {
	t.Helper()
	var env struct {
		Error struct {
			Code    string `json:"code"`
			Message string `json:"message"`
		} `json:"error"`
	}
	if err := json.Unmarshal([]byte(body), &env); err != nil {
		t.Fatalf("error body %q is not the JSON envelope: %v", body, err)
	}
	return env.Error.Code
}

// A replica reporting not-ready must receive no traffic, and must start
// receiving traffic again after it recovers and a poll observes it.
func TestRoutingSkipsNotReadyReplicas(t *testing.T) {
	balancer, stubs := newStubFleet(t, 2, nil)
	ts := httptest.NewServer(balancer.Handler())
	defer ts.Close()

	stubs[0].setReady(http.StatusServiceUnavailable, serve.HealthResponse{Status: "draining"})
	balancer.PollNow()
	for i := 0; i < 20; i++ {
		resp, body := classifyVia(t, ts.URL, fmt.Sprintf("model-%d", i), "", "", "")
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d: status %d (%s)", i, resp.StatusCode, body)
		}
	}
	if n := len(stubs[0].requests()); n != 0 {
		t.Fatalf("draining replica received %d requests, want 0", n)
	}
	if n := len(stubs[1].requests()); n != 20 {
		t.Fatalf("healthy replica received %d requests, want all 20", n)
	}

	// Flap back to ready: after the next poll the replica serves its share.
	stubs[0].setReady(http.StatusOK, readyBody(nil))
	balancer.PollNow()
	for i := 0; i < 20; i++ {
		resp, body := classifyVia(t, ts.URL, fmt.Sprintf("model-%d", i), "", "", "")
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("post-recovery request %d: status %d (%s)", i, resp.StatusCode, body)
		}
	}
	if n := len(stubs[0].requests()); n == 0 {
		t.Fatal("recovered replica still receives no traffic")
	}
}

// Quota exhaustion must answer 429 with the uniform JSON error envelope and
// a Retry-After hint, without touching other tenants.
func TestQuotaExhaustionAnswers429(t *testing.T) {
	balancer, _ := newStubFleet(t, 1, func(c *lb.Config) {
		c.TenantQuota = lb.Quota{Rate: 0.001, Burst: 2}
	})
	ts := httptest.NewServer(balancer.Handler())
	defer ts.Close()

	for i := 0; i < 2; i++ {
		resp, body := classifyVia(t, ts.URL, "m", "", "acme", "")
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("within-burst request %d: status %d (%s)", i, resp.StatusCode, body)
		}
	}
	resp, body := classifyVia(t, ts.URL, "m", "", "acme", "")
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-quota status %d (%s), want 429", resp.StatusCode, body)
	}
	if code := errCode(t, body); code != lb.ErrCodeQuotaExhausted {
		t.Fatalf("error code %q, want %q", code, lb.ErrCodeQuotaExhausted)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 carries no Retry-After")
	}
	if resp, body := classifyVia(t, ts.URL, "m", "", "globex", ""); resp.StatusCode != http.StatusOK {
		t.Fatalf("other tenant status %d (%s), want 200", resp.StatusCode, body)
	}
	snap := balancer.Metrics().Snapshot()
	if snap.Rejected[lb.RejectQuota] == 0 {
		t.Fatal("quota rejection not counted in metrics")
	}
}

// When every replica's RESPARC circuits are open, unpinned requests must be
// shed to the CMOS backend instead of failing; pinned requests must not be
// rewritten.
func TestShedsToCMOSWhenRESPARCOut(t *testing.T) {
	balancer, stubs := newStubFleet(t, 3, nil)
	for _, s := range stubs {
		s.setReady(http.StatusServiceUnavailable, readyBody(map[string]string{
			"tiny/resparc": "open",
			"tiny/cmos":    "closed",
		}))
	}
	balancer.PollNow()
	ts := httptest.NewServer(balancer.Handler())
	defer ts.Close()

	resp, body := classifyVia(t, ts.URL, "tiny", "", "", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("shed request status %d (%s), want 200", resp.StatusCode, body)
	}
	if got := resp.Header.Get(lb.HeaderBackend); got != "cmos" {
		t.Fatalf("%s header %q, want cmos", lb.HeaderBackend, got)
	}
	served := false
	for _, s := range stubs {
		for _, req := range s.requests() {
			if req.Model == "tiny" && req.Backend == "cmos" {
				served = true
			}
			if req.Backend == "resparc" {
				t.Fatal("a replica with an open RESPARC circuit was asked for resparc")
			}
		}
	}
	if !served {
		t.Fatal("no replica saw the shed cmos request")
	}
	snap := balancer.Metrics().Snapshot()
	if snap.Shed[lb.TierInteractive] == 0 || snap.Routing[lb.RouteShed] == 0 {
		t.Fatalf("shed not counted: %+v", snap)
	}

	// A client that pinned resparc explicitly keeps its choice and gets the
	// honest failure.
	resp, body = classifyVia(t, ts.URL, "tiny", "resparc", "", "")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("pinned-resparc status %d (%s), want 503", resp.StatusCode, body)
	}
	if code := errCode(t, body); code != lb.ErrCodeNoReplicas {
		t.Fatalf("pinned-resparc error code %q, want %q", code, lb.ErrCodeNoReplicas)
	}
}

// An upstream circuit_open answer the poller has not seen yet must trigger
// passive failover: the balancer retries the same request on the CMOS
// backend rather than relaying the 503.
func TestPassiveCircuitOpenFallsBack(t *testing.T) {
	balancer, stubs := newStubFleet(t, 1, nil)
	stubs[0].answer = func(req serve.ClassifyRequest) (int, any) {
		if req.Backend == "resparc" {
			return http.StatusServiceUnavailable, map[string]any{
				"error": map[string]string{"code": serve.ErrCodeCircuitOpen, "message": "open"},
			}
		}
		return http.StatusOK, serve.ClassifyResponse{Model: req.Model, Backend: req.Backend}
	}
	ts := httptest.NewServer(balancer.Handler())
	defer ts.Close()

	resp, body := classifyVia(t, ts.URL, "tiny", "", "", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d (%s), want 200 via cmos fallback", resp.StatusCode, body)
	}
	hits := stubs[0].requests()
	if len(hits) != 2 || hits[0].Backend != "resparc" || hits[1].Backend != "cmos" {
		t.Fatalf("replica saw %+v, want resparc then cmos", hits)
	}
}

// The balancer's /metrics must expose the documented metric families.
func TestMetricsEndpoint(t *testing.T) {
	balancer, _ := newStubFleet(t, 1, nil)
	ts := httptest.NewServer(balancer.Handler())
	defer ts.Close()
	if resp, _ := classifyVia(t, ts.URL, "m", "", "", ""); resp.StatusCode != http.StatusOK {
		t.Fatal("warm-up request failed")
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	text := string(raw)
	for _, name := range []string{
		"resparc_lb_requests_total",
		"resparc_lb_responses_total",
		"resparc_lb_replica_requests_total",
		"resparc_lb_replica_errors_total",
		"resparc_lb_routing_total",
		"resparc_lb_shed_total",
		"resparc_lb_admission_rejected_total",
		"resparc_lb_retries_total",
		"resparc_lb_queue_depth",
		"resparc_lb_request_latency_seconds",
		"resparc_lb_uptime_seconds",
	} {
		if !strings.Contains(text, name) {
			t.Errorf("/metrics lacks %s", name)
		}
	}
}

// A replica mid-repair (readyz 503 "repairing") must receive no traffic —
// its model write lock would queue every request — and must resume its
// share once a poll sees the repair window close.
func TestRoutingSkipsRepairingReplicas(t *testing.T) {
	balancer, stubs := newStubFleet(t, 2, nil)
	ts := httptest.NewServer(balancer.Handler())
	defer ts.Close()

	stubs[0].setReady(http.StatusServiceUnavailable, serve.HealthResponse{Status: "repairing"})
	balancer.PollNow()
	for i := 0; i < 20; i++ {
		resp, body := classifyVia(t, ts.URL, fmt.Sprintf("model-%d", i), "", "", "")
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d: status %d (%s)", i, resp.StatusCode, body)
		}
	}
	if n := len(stubs[0].requests()); n != 0 {
		t.Fatalf("repairing replica received %d requests, want 0", n)
	}
	if n := len(stubs[1].requests()); n != 20 {
		t.Fatalf("healthy replica received %d requests, want all 20", n)
	}

	// Repair window closes: the next poll restores the replica's share.
	stubs[0].setReady(http.StatusOK, readyBody(nil))
	balancer.PollNow()
	for i := 0; i < 20; i++ {
		resp, body := classifyVia(t, ts.URL, fmt.Sprintf("model-%d", i), "", "", "")
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("post-repair request %d: status %d (%s)", i, resp.StatusCode, body)
		}
	}
	if n := len(stubs[0].requests()); n == 0 {
		t.Fatal("repaired replica still receives no traffic")
	}
}
