package lb

import (
	"testing"
	"time"
)

type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func TestTenantQuotaBucket(t *testing.T) {
	clock := &fakeClock{t: time.Unix(1000, 0)}
	a := NewAdmission(0, 0, Quota{Rate: 1, Burst: 2}, clock.now)

	for i := 0; i < 2; i++ {
		if d, _ := a.Admit("acme", TierInteractive); d != AdmitOK {
			t.Fatalf("request %d within burst rejected with %v", i, d)
		}
	}
	d, retry := a.Admit("acme", TierInteractive)
	if d != AdmitQuota {
		t.Fatalf("over-burst request admitted with %v, want AdmitQuota", d)
	}
	if retry <= 0 || retry > time.Second {
		t.Fatalf("retry-after %v, want within (0, 1s]", retry)
	}
	// Another tenant has its own bucket.
	if d, _ := a.Admit("globex", TierInteractive); d != AdmitOK {
		t.Fatalf("fresh tenant rejected with %v", d)
	}
	// Refill at 1 token/sec: after 1.5 s one request fits again.
	clock.advance(1500 * time.Millisecond)
	if d, _ := a.Admit("acme", TierInteractive); d != AdmitOK {
		t.Fatalf("post-refill request rejected with %v", d)
	}
	if d, _ := a.Admit("acme", TierInteractive); d != AdmitQuota {
		t.Fatal("second post-refill request admitted, bucket should hold < 1 token")
	}
}

func TestTieredConcurrencyBudget(t *testing.T) {
	a := NewAdmission(4, 0.5, Quota{}, nil)

	// Batch is capped at half the budget.
	for i := 0; i < 2; i++ {
		if d, _ := a.Admit("t", TierBatch); d != AdmitOK {
			t.Fatalf("batch %d rejected with %v", i, d)
		}
	}
	if d, _ := a.Admit("t", TierBatch); d != AdmitOverload {
		t.Fatal("third batch admitted past the batch share")
	}
	// Interactive may use the rest of the budget.
	for i := 0; i < 2; i++ {
		if d, _ := a.Admit("t", TierInteractive); d != AdmitOK {
			t.Fatalf("interactive %d rejected with %v", i, d)
		}
	}
	if d, _ := a.Admit("t", TierInteractive); d != AdmitOverload {
		t.Fatal("interactive admitted past the total budget")
	}
	if got := a.InFlight(TierBatch); got != 2 {
		t.Fatalf("batch in-flight %d, want 2", got)
	}
	a.Release(TierBatch)
	if d, _ := a.Admit("t", TierBatch); d != AdmitOK {
		t.Fatal("batch rejected after a release freed its slot")
	}
}

func TestParseTier(t *testing.T) {
	if tier, err := ParseTier(""); err != nil || tier != TierInteractive {
		t.Fatalf("empty tier = (%v, %v), want interactive", tier, err)
	}
	if tier, err := ParseTier("batch"); err != nil || tier != TierBatch {
		t.Fatalf("batch tier = (%v, %v)", tier, err)
	}
	if _, err := ParseTier("bulk"); err == nil {
		t.Fatal("unknown tier accepted")
	}
}
