package lb

import (
	"hash/fnv"
	"sort"
	"strconv"
	"sync"
)

// DefaultVNodes is the number of virtual points each replica occupies on the
// hash ring. More points smooth the load split at the cost of a larger
// lookup table; 64 keeps the per-replica share within a few percent of even
// for fleets of up to a few hundred replicas.
const DefaultVNodes = 64

// Ring is a consistent-hash ring over replica names. Requests hash by model
// (every request for a model lands on the same replica while the membership
// holds, keeping that replica's caches and batcher queues warm for it), and
// membership changes move only the keys that mapped to the affected
// replica — the property that lets the fleet add or drain replicas without
// reshuffling every model's traffic.
type Ring struct {
	vnodes int

	mu      sync.RWMutex
	points  []ringPoint // sorted by hash
	members map[string]bool
}

type ringPoint struct {
	hash    uint64
	replica string
}

// NewRing returns an empty ring with the given virtual-node count per
// replica (<= 0 selects DefaultVNodes).
func NewRing(vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	return &Ring{vnodes: vnodes, members: make(map[string]bool)}
}

// hash64 is FNV-1a with a murmur-style avalanche finalizer. Raw FNV-1a
// hashes of near-identical strings ("replica-0#17" vs "replica-0#18")
// differ only in their low bytes and cluster on the ring, defeating the
// virtual-node spread; the finalizer diffuses every input bit across the
// whole word.
func hash64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	x := h.Sum64()
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// Add inserts a replica's virtual points. Adding an existing member is a
// no-op.
func (r *Ring) Add(replica string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.members[replica] {
		return
	}
	r.members[replica] = true
	for i := 0; i < r.vnodes; i++ {
		r.points = append(r.points, ringPoint{hash: hash64(replica + "#" + strconv.Itoa(i)), replica: replica})
	}
	sort.Slice(r.points, func(i, j int) bool { return r.points[i].hash < r.points[j].hash })
}

// Remove deletes a replica's virtual points. Removing a non-member is a
// no-op.
func (r *Ring) Remove(replica string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.members[replica] {
		return
	}
	delete(r.members, replica)
	kept := r.points[:0]
	for _, p := range r.points {
		if p.replica != replica {
			kept = append(kept, p)
		}
	}
	r.points = kept
}

// Members returns the replica names currently on the ring, sorted.
func (r *Ring) Members() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.members))
	for name := range r.members {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Lookup returns the replica owning the key, or "" on an empty ring.
func (r *Ring) Lookup(key string) string {
	seq := r.Sequence(key)
	if len(seq) == 0 {
		return ""
	}
	return seq[0]
}

// Sequence returns every distinct replica in ring order starting from the
// key's point: the first entry is the key's owner, the rest are the
// fallback order a health-aware router walks when the owner is not usable.
// The order is a pure function of (key, membership) — two balancers with
// the same view route identically.
func (r *Ring) Sequence(key string) []string {
	h := hash64(key)
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.points) == 0 {
		return nil
	}
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	seen := make(map[string]bool, len(r.members))
	out := make([]string, 0, len(r.members))
	for i := 0; i < len(r.points) && len(out) < len(r.members); i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.replica] {
			seen[p.replica] = true
			out = append(out, p.replica)
		}
	}
	return out
}
