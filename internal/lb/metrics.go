package lb

import (
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"
)

// latencyWindow is how many recent request latencies the quantiles are
// computed over. 4096 gives the p999 estimate ~4 tail samples to stand on.
const latencyWindow = 4096

// Routing decisions counted under resparc_lb_routing_total.
const (
	// RouteHash: the request went to its consistent-hash owner.
	RouteHash = "hash"
	// RouteFailover: the owner was not usable; a later replica in the ring
	// sequence took the request.
	RouteFailover = "failover"
	// RouteShed: no replica had the RESPARC backend available; the request
	// was shed to the CMOS baseline backend.
	RouteShed = "shed-cmos"
	// RouteRetry: a 429/503/504 answer triggered a backoff-and-retry.
	RouteRetry = "retry"
)

// Rejection reasons counted under resparc_lb_admission_rejected_total.
const (
	RejectQuota    = "quota"
	RejectOverload = "overload"
)

// Metrics collects the balancer's counters, exposed at /metrics in
// Prometheus text form: totals by status code, per-replica request/error
// counts, routing decisions, shed and rejection counts, per-tier in-flight
// gauges and p50/p99/p999 latency over a sliding window.
type Metrics struct {
	start time.Time

	mu         sync.Mutex
	requests   int64
	codes      map[int]int64
	replicaReq map[string]int64
	replicaErr map[string]int64
	routing    map[string]int64
	shed       map[Tier]int64
	rejected   map[string]int64
	retries    int64
	latencies  []float64 // ring buffer, seconds
	latNext    int
	latCount   int

	depth func(Tier) int // in-flight gauge, set by the LB
}

// NewMetrics returns an empty collector.
func NewMetrics() *Metrics {
	return &Metrics{
		start:      time.Now(),
		codes:      make(map[int]int64),
		replicaReq: make(map[string]int64),
		replicaErr: make(map[string]int64),
		routing:    make(map[string]int64),
		shed:       make(map[Tier]int64),
		rejected:   make(map[string]int64),
	}
}

// Request counts one accepted front-tier request.
func (m *Metrics) Request() {
	m.mu.Lock()
	m.requests++
	m.mu.Unlock()
}

// Response counts one front-tier response by status code and records its
// end-to-end latency.
func (m *Metrics) Response(code int, latency time.Duration) {
	m.mu.Lock()
	m.codes[code]++
	if m.latencies == nil {
		m.latencies = make([]float64, latencyWindow)
	}
	m.latencies[m.latNext] = latency.Seconds()
	m.latNext = (m.latNext + 1) % latencyWindow
	if m.latCount < latencyWindow {
		m.latCount++
	}
	m.mu.Unlock()
}

// Proxied counts one request forwarded to a replica, and whether it failed
// (transport error or 5xx answer).
func (m *Metrics) Proxied(replica string, failed bool) {
	m.mu.Lock()
	m.replicaReq[replica]++
	if failed {
		m.replicaErr[replica]++
	}
	m.mu.Unlock()
}

// Routing counts one routing decision (RouteHash, RouteFailover, ...).
func (m *Metrics) Routing(decision string) {
	m.mu.Lock()
	m.routing[decision]++
	m.mu.Unlock()
}

// Shed counts one request shed to the CMOS baseline backend.
func (m *Metrics) Shed(tier Tier) {
	m.mu.Lock()
	m.shed[tier]++
	m.mu.Unlock()
}

// Rejected counts one admission rejection (RejectQuota, RejectOverload).
func (m *Metrics) Rejected(reason string) {
	m.mu.Lock()
	m.rejected[reason]++
	m.mu.Unlock()
}

// Retry counts one backoff-and-retry of an upstream 429/503/504.
func (m *Metrics) Retry() {
	m.mu.Lock()
	m.retries++
	m.routing[RouteRetry]++
	m.mu.Unlock()
}

// Snapshot is a consistent copy of the counters for tests and reports.
type Snapshot struct {
	Requests        int64
	Codes           map[int]int64
	ReplicaRequests map[string]int64
	ReplicaErrors   map[string]int64
	Routing         map[string]int64
	Shed            map[Tier]int64
	Rejected        map[string]int64
	Retries         int64
	P50, P99, P999  float64
}

// Snapshot returns the current counters.
func (m *Metrics) Snapshot() Snapshot {
	m.mu.Lock()
	defer m.mu.Unlock()
	s := Snapshot{
		Requests:        m.requests,
		Codes:           copyMap(m.codes),
		ReplicaRequests: copyMap(m.replicaReq),
		ReplicaErrors:   copyMap(m.replicaErr),
		Routing:         copyMap(m.routing),
		Shed:            copyMap(m.shed),
		Rejected:        copyMap(m.rejected),
		Retries:         m.retries,
	}
	s.P50, s.P99, s.P999 = m.quantilesLocked()
	return s
}

func copyMap[K comparable, V any](in map[K]V) map[K]V {
	out := make(map[K]V, len(in))
	for k, v := range in {
		out[k] = v
	}
	return out
}

// quantilesLocked computes p50/p99/p999 over the latency window
// (nearest-rank).
func (m *Metrics) quantilesLocked() (p50, p99, p999 float64) {
	if m.latCount == 0 {
		return 0, 0, 0
	}
	window := append([]float64(nil), m.latencies[:m.latCount]...)
	sort.Float64s(window)
	rank := func(q float64) float64 {
		i := int(q*float64(len(window))+0.5) - 1
		if i < 0 {
			i = 0
		}
		if i >= len(window) {
			i = len(window) - 1
		}
		return window[i]
	}
	return rank(0.50), rank(0.99), rank(0.999)
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// ServeHTTP renders the Prometheus text exposition.
func (m *Metrics) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	s := m.Snapshot()
	m.mu.Lock()
	depth := m.depth
	uptime := time.Since(m.start).Seconds()
	m.mu.Unlock()

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	fmt.Fprintf(w, "# HELP resparc_lb_requests_total Front-tier classification requests accepted for routing.\n")
	fmt.Fprintf(w, "# TYPE resparc_lb_requests_total counter\n")
	fmt.Fprintf(w, "resparc_lb_requests_total %d\n", s.Requests)
	fmt.Fprintf(w, "# HELP resparc_lb_responses_total Front-tier responses by HTTP status code.\n")
	fmt.Fprintf(w, "# TYPE resparc_lb_responses_total counter\n")
	codes := make([]int, 0, len(s.Codes))
	for c := range s.Codes {
		codes = append(codes, c)
	}
	sort.Ints(codes)
	for _, c := range codes {
		fmt.Fprintf(w, "resparc_lb_responses_total{code=%q} %d\n", strconv.Itoa(c), s.Codes[c])
	}
	fmt.Fprintf(w, "# HELP resparc_lb_replica_requests_total Requests proxied to each replica.\n")
	fmt.Fprintf(w, "# TYPE resparc_lb_replica_requests_total counter\n")
	for _, name := range sortedKeys(s.ReplicaRequests) {
		fmt.Fprintf(w, "resparc_lb_replica_requests_total{replica=%q} %d\n", name, s.ReplicaRequests[name])
	}
	fmt.Fprintf(w, "# HELP resparc_lb_replica_errors_total Proxied requests that failed per replica (transport error or 5xx).\n")
	fmt.Fprintf(w, "# TYPE resparc_lb_replica_errors_total counter\n")
	for _, name := range sortedKeys(s.ReplicaErrors) {
		fmt.Fprintf(w, "resparc_lb_replica_errors_total{replica=%q} %d\n", name, s.ReplicaErrors[name])
	}
	fmt.Fprintf(w, "# HELP resparc_lb_routing_total Routing decisions (hash owner, failover, shed-cmos, retry).\n")
	fmt.Fprintf(w, "# TYPE resparc_lb_routing_total counter\n")
	for _, d := range sortedKeys(s.Routing) {
		fmt.Fprintf(w, "resparc_lb_routing_total{decision=%q} %d\n", d, s.Routing[d])
	}
	fmt.Fprintf(w, "# HELP resparc_lb_shed_total Requests shed to the CMOS baseline backend, by tier.\n")
	fmt.Fprintf(w, "# TYPE resparc_lb_shed_total counter\n")
	shedTiers := make([]string, 0, len(s.Shed))
	for tier := range s.Shed {
		shedTiers = append(shedTiers, string(tier))
	}
	sort.Strings(shedTiers)
	for _, tier := range shedTiers {
		fmt.Fprintf(w, "resparc_lb_shed_total{tier=%q} %d\n", tier, s.Shed[Tier(tier)])
	}
	fmt.Fprintf(w, "# HELP resparc_lb_admission_rejected_total Requests rejected at admission (quota, overload).\n")
	fmt.Fprintf(w, "# TYPE resparc_lb_admission_rejected_total counter\n")
	for _, reason := range sortedKeys(s.Rejected) {
		fmt.Fprintf(w, "resparc_lb_admission_rejected_total{reason=%q} %d\n", reason, s.Rejected[reason])
	}
	fmt.Fprintf(w, "# HELP resparc_lb_retries_total Upstream 429/503/504 answers retried with backoff.\n")
	fmt.Fprintf(w, "# TYPE resparc_lb_retries_total counter\n")
	fmt.Fprintf(w, "resparc_lb_retries_total %d\n", s.Retries)
	fmt.Fprintf(w, "# HELP resparc_lb_queue_depth In-flight (admitted, unanswered) requests per tier.\n")
	fmt.Fprintf(w, "# TYPE resparc_lb_queue_depth gauge\n")
	for _, tier := range []Tier{TierInteractive, TierBatch} {
		d := 0
		if depth != nil {
			d = depth(tier)
		}
		fmt.Fprintf(w, "resparc_lb_queue_depth{tier=%q} %d\n", string(tier), d)
	}
	fmt.Fprintf(w, "# HELP resparc_lb_request_latency_seconds End-to-end latency quantiles over the last %d requests.\n", latencyWindow)
	fmt.Fprintf(w, "# TYPE resparc_lb_request_latency_seconds gauge\n")
	fmt.Fprintf(w, "resparc_lb_request_latency_seconds{quantile=\"0.5\"} %g\n", s.P50)
	fmt.Fprintf(w, "resparc_lb_request_latency_seconds{quantile=\"0.99\"} %g\n", s.P99)
	fmt.Fprintf(w, "resparc_lb_request_latency_seconds{quantile=\"0.999\"} %g\n", s.P999)
	fmt.Fprintf(w, "# HELP resparc_lb_uptime_seconds Seconds since the balancer started.\n")
	fmt.Fprintf(w, "# TYPE resparc_lb_uptime_seconds gauge\n")
	fmt.Fprintf(w, "resparc_lb_uptime_seconds %g\n", uptime)
}
