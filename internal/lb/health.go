package lb

import (
	"encoding/json"
	"io"
	"net/http"
	"sync"
	"time"

	"resparc/internal/serve"
)

// ReplicaHealth is the balancer's view of one replica, fed by polling its
// /readyz endpoint and by passive observation of proxy failures.
type ReplicaHealth struct {
	// Reachable is false after a failed poll or a transport error on a
	// proxied request, until the next successful poll.
	Reachable bool `json:"reachable"`
	// Draining mirrors the replica's readiness status: it still answers
	// in-flight work but wants no new requests.
	Draining bool `json:"draining"`
	// Repairing mirrors a "repairing" readiness status: the replica is
	// running a self-healing pass over its crossbars (new requests would
	// queue behind the repair write lock), so route to siblings until the
	// next poll sees the window close.
	Repairing bool `json:"repairing,omitempty"`
	// Breakers maps "model/backend" to the replica's circuit state
	// ("closed", "open", "half-open") from the readiness body. A replica
	// with one open circuit is still routable for its other pairs.
	Breakers map[string]string `json:"breakers,omitempty"`
	// CheckedAt is when the view was last refreshed.
	CheckedAt time.Time `json:"checked_at"`
}

// Usable reports whether the replica can take a request for the given
// (model, backend) pair: it must be reachable, not draining, and the pair's
// circuit must not be open. Half-open circuits stay usable — the replica
// needs probe traffic to close them. Pairs the replica never reported are
// usable too (the replica answers 404/400 itself if it truly cannot serve
// them).
func (h ReplicaHealth) Usable(model, backend string) bool {
	if !h.Reachable || h.Draining || h.Repairing {
		return false
	}
	return h.Breakers[model+"/"+backend] != "open"
}

// healthTracker holds the fleet health view and refreshes it by polling
// each replica's /readyz.
type healthTracker struct {
	client  *http.Client
	now     func() time.Time
	mu      sync.RWMutex
	replica map[string]ReplicaHealth
}

func newHealthTracker(client *http.Client, now func() time.Time) *healthTracker {
	return &healthTracker{client: client, now: now, replica: make(map[string]ReplicaHealth)}
}

// get returns the current view of a replica; an unknown replica is
// unreachable (it has not been polled yet).
func (t *healthTracker) get(name string) ReplicaHealth {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.replica[name]
}

// set replaces a replica's view (tests and the poller).
func (t *healthTracker) set(name string, h ReplicaHealth) {
	t.mu.Lock()
	t.replica[name] = h
	t.mu.Unlock()
}

// forget drops a removed replica's view.
func (t *healthTracker) forget(name string) {
	t.mu.Lock()
	delete(t.replica, name)
	t.mu.Unlock()
}

// markDown records a passive failure: a proxied request could not reach the
// replica, so stop routing there immediately instead of waiting out the
// poll interval.
func (t *healthTracker) markDown(name string) {
	t.mu.Lock()
	h := t.replica[name]
	h.Reachable = false
	h.CheckedAt = t.now()
	t.replica[name] = h
	t.mu.Unlock()
}

// markBreakerOpen records a passive circuit_open answer for (model,
// backend): the replica said no before the poller could, so remember it.
func (t *healthTracker) markBreakerOpen(name, model, backend string) {
	t.mu.Lock()
	h := t.replica[name]
	if h.Breakers == nil {
		h.Breakers = make(map[string]string, 1)
	}
	h.Breakers[model+"/"+backend] = "open"
	h.CheckedAt = t.now()
	t.replica[name] = h
	t.mu.Unlock()
}

// markDraining records a passive draining answer: the replica is shutting
// down, stop routing new work there.
func (t *healthTracker) markDraining(name string) {
	t.mu.Lock()
	h := t.replica[name]
	h.Draining = true
	h.CheckedAt = t.now()
	t.replica[name] = h
	t.mu.Unlock()
}

// snapshot copies the whole view for /v1/replicas and tests.
func (t *healthTracker) snapshot() map[string]ReplicaHealth {
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make(map[string]ReplicaHealth, len(t.replica))
	for k, v := range t.replica {
		out[k] = v
	}
	return out
}

// poll refreshes one replica's view from its /readyz. Any HTTP status is a
// successful poll (the body says what is wrong); only a transport failure
// marks the replica unreachable.
func (t *healthTracker) poll(r Replica) {
	h := ReplicaHealth{CheckedAt: t.now()}
	resp, err := t.client.Get(r.URL + "/readyz")
	if err != nil {
		t.set(r.Name, h)
		return
	}
	defer resp.Body.Close()
	var body serve.HealthResponse
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&body); err != nil {
		// Reachable but unparseable: treat like a down replica rather than
		// routing blind.
		t.set(r.Name, h)
		return
	}
	h.Reachable = true
	h.Draining = body.Status == "draining"
	h.Repairing = body.Status == "repairing"
	h.Breakers = make(map[string]string, len(body.Backends))
	for _, b := range body.Backends {
		h.Breakers[b.Model+"/"+b.Backend] = b.State
	}
	t.set(r.Name, h)
}
