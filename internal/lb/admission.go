package lb

import (
	"fmt"
	"sync"
	"time"
)

// Tier is a request's priority class. Interactive traffic is user-facing
// and protected first; batch traffic absorbs the degradation when the fleet
// saturates.
type Tier string

const (
	// TierInteractive is the user-facing tier (the default).
	TierInteractive Tier = "interactive"
	// TierBatch is the best-effort tier: it is capped to a share of the
	// fleet's concurrency and rejected first under overload.
	TierBatch Tier = "batch"
)

// ParseTier validates a wire-form tier name; empty selects interactive.
func ParseTier(s string) (Tier, error) {
	switch Tier(s) {
	case "":
		return TierInteractive, nil
	case TierInteractive:
		return TierInteractive, nil
	case TierBatch:
		return TierBatch, nil
	}
	return "", fmt.Errorf("lb: unknown priority tier %q (want %q or %q)", s, TierInteractive, TierBatch)
}

// Quota is a per-tenant token bucket: Rate tokens per second refill up to
// Burst. A zero Rate disables quota enforcement.
type Quota struct {
	Rate  float64
	Burst float64
}

// Decision is the admission verdict for one request.
type Decision int

const (
	// AdmitOK: the request took an in-flight slot; Release it when done.
	AdmitOK Decision = iota
	// AdmitQuota: the tenant's token bucket is empty (HTTP 429).
	AdmitQuota
	// AdmitOverload: the tier's concurrency budget is exhausted (HTTP 503).
	AdmitOverload
)

// Admission is the front tier's gate: a per-tenant token bucket on top of a
// two-tier concurrency budget. Interactive requests may use the whole
// budget; batch requests only a configured share of it, so a batch flood
// can never starve interactive traffic, and under overload batch is the
// tier that degrades.
type Admission struct {
	maxInFlight int
	batchMax    int
	quota       Quota
	now         func() time.Time

	mu       sync.Mutex
	tenants  map[string]*bucket
	inflight map[Tier]int
}

type bucket struct {
	tokens float64
	last   time.Time
}

// NewAdmission builds the gate. maxInFlight <= 0 disables the concurrency
// budget; batchShare in (0, 1] caps the batch tier to that fraction of it
// (defaults to 0.5 when out of range). quota.Rate <= 0 disables quotas.
func NewAdmission(maxInFlight int, batchShare float64, quota Quota, now func() time.Time) *Admission {
	if batchShare <= 0 || batchShare > 1 {
		batchShare = 0.5
	}
	if now == nil {
		now = time.Now
	}
	batchMax := 0
	if maxInFlight > 0 {
		batchMax = int(batchShare * float64(maxInFlight))
		if batchMax < 1 {
			batchMax = 1
		}
	}
	return &Admission{
		maxInFlight: maxInFlight,
		batchMax:    batchMax,
		quota:       quota,
		now:         now,
		tenants:     make(map[string]*bucket),
		inflight:    make(map[Tier]int),
	}
}

// Admit charges the tenant's bucket and claims an in-flight slot for the
// tier. On AdmitQuota, retryAfter is how long until the bucket refills one
// token. The caller must Release exactly once per AdmitOK.
func (a *Admission) Admit(tenant string, tier Tier) (d Decision, retryAfter time.Duration) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.quota.Rate > 0 {
		b, ok := a.tenants[tenant]
		t := a.now()
		if !ok {
			b = &bucket{tokens: a.quota.Burst, last: t}
			a.tenants[tenant] = b
		}
		b.tokens += t.Sub(b.last).Seconds() * a.quota.Rate
		if b.tokens > a.quota.Burst {
			b.tokens = a.quota.Burst
		}
		b.last = t
		if b.tokens < 1 {
			return AdmitQuota, time.Duration((1 - b.tokens) / a.quota.Rate * float64(time.Second))
		}
		b.tokens--
	}
	if a.maxInFlight > 0 {
		total := a.inflight[TierInteractive] + a.inflight[TierBatch]
		if total >= a.maxInFlight {
			return AdmitOverload, 0
		}
		if tier == TierBatch && a.inflight[TierBatch] >= a.batchMax {
			return AdmitOverload, 0
		}
	}
	a.inflight[tier]++
	return AdmitOK, 0
}

// Release frees the tier's in-flight slot claimed by an AdmitOK.
func (a *Admission) Release(tier Tier) {
	a.mu.Lock()
	if a.inflight[tier] > 0 {
		a.inflight[tier]--
	}
	a.mu.Unlock()
}

// InFlight reports the tier's current in-flight count (the /metrics queue
// depth gauge).
func (a *Admission) InFlight(tier Tier) int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.inflight[tier]
}
