package lb

import (
	"fmt"
	"reflect"
	"testing"
)

func ringKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("model-%d", i)
	}
	return keys
}

// Adding a replica must move only the keys the new replica takes over, and
// removing it must restore the exact previous assignment — the property
// that makes fleet membership changes cheap.
func TestRingStabilityUnderAddRemove(t *testing.T) {
	r := NewRing(0)
	for i := 0; i < 5; i++ {
		r.Add(fmt.Sprintf("replica-%d", i))
	}
	keys := ringKeys(1000)
	before := make(map[string]string, len(keys))
	for _, k := range keys {
		before[k] = r.Lookup(k)
	}

	r.Add("replica-new")
	moved := 0
	for _, k := range keys {
		owner := r.Lookup(k)
		if owner != before[k] {
			if owner != "replica-new" {
				t.Fatalf("key %q moved from %q to %q, not to the new replica", k, before[k], owner)
			}
			moved++
		}
	}
	// The new replica should take about 1/6 of the keys; allow generous
	// slack but catch a full reshuffle.
	if moved == 0 || moved > len(keys)/3 {
		t.Fatalf("adding a replica moved %d/%d keys, want about %d", moved, len(keys), len(keys)/6)
	}

	r.Remove("replica-new")
	for _, k := range keys {
		if owner := r.Lookup(k); owner != before[k] {
			t.Fatalf("after remove, key %q owned by %q, want %q restored", k, owner, before[k])
		}
	}

	// Removing an original member moves only the keys it owned.
	r.Remove("replica-2")
	for _, k := range keys {
		owner := r.Lookup(k)
		if before[k] == "replica-2" {
			if owner == "replica-2" {
				t.Fatalf("key %q still owned by the removed replica", k)
			}
		} else if owner != before[k] {
			t.Fatalf("key %q moved from %q to %q though its owner stayed", k, before[k], owner)
		}
	}
}

func TestRingSequenceDeterministicAndComplete(t *testing.T) {
	build := func() *Ring {
		r := NewRing(0)
		r.Add("a")
		r.Add("c")
		r.Add("b")
		return r
	}
	r1, r2 := build(), build()
	for _, k := range ringKeys(50) {
		s1, s2 := r1.Sequence(k), r2.Sequence(k)
		if !reflect.DeepEqual(s1, s2) {
			t.Fatalf("sequence for %q differs between identical rings: %v vs %v", k, s1, s2)
		}
		if len(s1) != 3 {
			t.Fatalf("sequence for %q covers %d replicas, want 3: %v", k, len(s1), s1)
		}
		seen := map[string]bool{}
		for _, name := range s1 {
			if seen[name] {
				t.Fatalf("sequence for %q repeats %q: %v", k, name, s1)
			}
			seen[name] = true
		}
		if s1[0] != r1.Lookup(k) {
			t.Fatalf("sequence head %q != owner %q", s1[0], r1.Lookup(k))
		}
	}
}

func TestRingEmptyAndDuplicates(t *testing.T) {
	r := NewRing(8)
	if got := r.Lookup("anything"); got != "" {
		t.Fatalf("empty ring owner = %q, want empty", got)
	}
	if got := r.Sequence("anything"); got != nil {
		t.Fatalf("empty ring sequence = %v, want nil", got)
	}
	r.Add("a")
	r.Add("a")
	if got := len(r.Members()); got != 1 {
		t.Fatalf("double add leaves %d members, want 1", got)
	}
	r.Remove("missing")
	if got := len(r.Members()); got != 1 {
		t.Fatalf("removing a non-member leaves %d members, want 1", got)
	}
}

// The load split across replicas should be within a small factor of even —
// that is what the virtual nodes buy.
func TestRingBalance(t *testing.T) {
	r := NewRing(0)
	replicas := 4
	for i := 0; i < replicas; i++ {
		r.Add(fmt.Sprintf("replica-%d", i))
	}
	counts := map[string]int{}
	keys := ringKeys(4000)
	for _, k := range keys {
		counts[r.Lookup(k)]++
	}
	want := len(keys) / replicas
	for name, got := range counts {
		if got < want/3 || got > want*3 {
			t.Fatalf("replica %s owns %d/%d keys, want within 3x of %d", name, got, len(keys), want)
		}
	}
}
