// Package lb implements resparc-lb: the fleet front tier that routes
// classification requests over multiple resparc-serve replicas.
//
// Routing is consistent hashing by model (Ring), so a model's traffic
// keeps landing on the same replica — warm batcher queues, stable
// micro-batch composition — and membership changes move only the keys of
// the affected replica. Replica selection is health-aware: the balancer
// polls each replica's /readyz and skips replicas that are down, draining,
// or whose (model, backend) circuit breaker is open. Admission control
// runs in front of routing: per-tenant token-bucket quotas and a two-tier
// concurrency budget in which interactive traffic outranks batch.
//
// The degradation policy is fleet-wide: when no replica can serve a model
// on the RESPARC backend (circuits open, replicas saturated), the request
// is shed to the CMOS baseline backend instead of failing — the paper's
// reconfigurable use of heterogeneous fabrics promoted to serving policy.
// Upstream 429/503/504 answers are retried with bounded backoff that
// respects Retry-After.
package lb

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"

	"resparc/internal/serve"
)

// maxRequestBody mirrors the replica-side bound on /v1/classify bodies.
const maxRequestBody = 8 << 20

// Replica is one resparc-serve process behind the balancer.
type Replica struct {
	// Name identifies the replica on the ring and in metrics.
	Name string `json:"name"`
	// URL is the replica's base URL (e.g. http://10.0.0.7:8080).
	URL string `json:"url"`
}

// Config configures a balancer.
type Config struct {
	// Replicas is the initial fleet membership; required (>= 1).
	Replicas []Replica
	// DefaultBackend answers requests that do not pin a backend
	// (default "resparc").
	DefaultBackend string
	// ShedBackend is where unpinned requests go when no replica has the
	// default backend available (default "cmos"; empty disables shedding).
	ShedBackend string
	// VNodes is the ring's virtual-node count per replica (<= 0:
	// DefaultVNodes).
	VNodes int
	// PollInterval is the /readyz polling cadence (<= 0: 1 s).
	PollInterval time.Duration
	// Client performs polls and proxied requests (nil: 30 s timeout).
	Client *http.Client
	// MaxRetries bounds retries of upstream 429/503/504 answers (< 0
	// disables; 0 selects the default 2).
	MaxRetries int
	// RetryBase is the exponential backoff base between retries
	// (<= 0: 25 ms).
	RetryBase time.Duration
	// MaxRetryWait caps how long one retry may wait; an upstream
	// Retry-After beyond the cap is relayed to the client instead of
	// served by stalling (<= 0: 2 s).
	MaxRetryWait time.Duration
	// MaxInFlight is the fleet-wide concurrency budget (<= 0: 256).
	MaxInFlight int
	// BatchShare caps the batch tier to this fraction of MaxInFlight
	// (out of (0, 1]: 0.5).
	BatchShare float64
	// TenantQuota is the per-tenant token bucket (zero Rate: unlimited).
	TenantQuota Quota
	// Now is the clock (tests); nil selects time.Now.
	Now func() time.Time
}

// DefaultConfig returns the balancer defaults over the given replicas.
func DefaultConfig(replicas []Replica) Config {
	return Config{
		Replicas:       replicas,
		DefaultBackend: string(serve.BackendRESPARC),
		ShedBackend:    string(serve.BackendCMOS),
		PollInterval:   time.Second,
		MaxRetries:     2,
		RetryBase:      25 * time.Millisecond,
		MaxRetryWait:   2 * time.Second,
		MaxInFlight:    256,
		BatchShare:     0.5,
	}
}

// LB is the balancer: ring + health view + admission gate + proxy.
type LB struct {
	cfg     Config
	ring    *Ring
	health  *healthTracker
	adm     *Admission
	metrics *Metrics
	client  *http.Client
	now     func() time.Time
	mux     *http.ServeMux

	mu       sync.Mutex
	replicas map[string]Replica
	closed   bool
	stop     chan struct{}
	done     chan struct{}
}

// New builds a balancer, polls every replica once synchronously (so the
// first request routes on real health, not optimism), and starts the
// background poll loop.
func New(cfg Config) (*LB, error) {
	if len(cfg.Replicas) == 0 {
		return nil, fmt.Errorf("lb: no replicas")
	}
	if cfg.DefaultBackend == "" {
		cfg.DefaultBackend = string(serve.BackendRESPARC)
	}
	if cfg.PollInterval <= 0 {
		cfg.PollInterval = time.Second
	}
	if cfg.Client == nil {
		cfg.Client = &http.Client{Timeout: 30 * time.Second}
	}
	if cfg.MaxRetries == 0 {
		cfg.MaxRetries = 2
	}
	if cfg.MaxRetries < 0 {
		cfg.MaxRetries = 0
	}
	if cfg.RetryBase <= 0 {
		cfg.RetryBase = 25 * time.Millisecond
	}
	if cfg.MaxRetryWait <= 0 {
		cfg.MaxRetryWait = 2 * time.Second
	}
	if cfg.MaxInFlight <= 0 {
		cfg.MaxInFlight = 256
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	l := &LB{
		cfg:      cfg,
		ring:     NewRing(cfg.VNodes),
		health:   newHealthTracker(cfg.Client, cfg.Now),
		adm:      NewAdmission(cfg.MaxInFlight, cfg.BatchShare, cfg.TenantQuota, cfg.Now),
		metrics:  NewMetrics(),
		client:   cfg.Client,
		now:      cfg.Now,
		mux:      http.NewServeMux(),
		replicas: make(map[string]Replica),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	l.metrics.depth = l.adm.InFlight
	for _, r := range cfg.Replicas {
		if r.Name == "" || r.URL == "" {
			return nil, fmt.Errorf("lb: replica needs a name and a URL: %+v", r)
		}
		if _, dup := l.replicas[r.Name]; dup {
			return nil, fmt.Errorf("lb: duplicate replica %q", r.Name)
		}
		l.replicas[r.Name] = r
		l.ring.Add(r.Name)
	}
	l.mux.HandleFunc("/v1/classify", l.handleClassify)
	l.mux.HandleFunc("/v1/replicas", l.handleReplicas)
	l.mux.Handle("/metrics", l.metrics)
	l.mux.HandleFunc("/healthz", l.handleHealthz)
	l.mux.HandleFunc("/readyz", l.handleReadyz)
	l.PollNow()
	go l.pollLoop()
	return l, nil
}

// Handler returns the HTTP handler tree (mountable under httptest too).
func (l *LB) Handler() http.Handler { return l.mux }

// Metrics exposes the balancer's counters for tests and drivers.
func (l *LB) Metrics() *Metrics { return l.metrics }

// Close stops the background poller. In-flight proxied requests complete.
func (l *LB) Close() {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return
	}
	l.closed = true
	close(l.stop)
	l.mu.Unlock()
	<-l.done
}

// AddReplica joins a replica to the fleet and polls it immediately.
func (l *LB) AddReplica(r Replica) error {
	l.mu.Lock()
	if _, dup := l.replicas[r.Name]; dup {
		l.mu.Unlock()
		return fmt.Errorf("lb: duplicate replica %q", r.Name)
	}
	l.replicas[r.Name] = r
	l.mu.Unlock()
	l.health.poll(r)
	l.ring.Add(r.Name)
	return nil
}

// RemoveReplica drains a replica out of the fleet: its keys move to their
// next ring owners, everything else stays put.
func (l *LB) RemoveReplica(name string) {
	l.ring.Remove(name)
	l.mu.Lock()
	delete(l.replicas, name)
	l.mu.Unlock()
	l.health.forget(name)
}

// PollNow refreshes every replica's health view synchronously.
func (l *LB) PollNow() {
	l.mu.Lock()
	replicas := make([]Replica, 0, len(l.replicas))
	for _, r := range l.replicas {
		replicas = append(replicas, r)
	}
	l.mu.Unlock()
	var wg sync.WaitGroup
	for _, r := range replicas {
		wg.Add(1)
		go func(r Replica) {
			defer wg.Done()
			l.health.poll(r)
		}(r)
	}
	wg.Wait()
}

func (l *LB) pollLoop() {
	defer close(l.done)
	ticker := time.NewTicker(l.cfg.PollInterval)
	defer ticker.Stop()
	for {
		select {
		case <-l.stop:
			return
		case <-ticker.C:
			l.PollNow()
		}
	}
}

// Error codes of the balancer's JSON error envelope — same
// {"error":{"code","message"}} shape the replicas use, so clients see one
// error surface for the whole fleet.
const (
	ErrCodeQuotaExhausted = "quota_exhausted"
	ErrCodeOverloaded     = "overloaded"
	ErrCodeNoReplicas     = "no_replicas"
)

type errorBody struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

type errorResponse struct {
	Error errorBody `json:"error"`
}

func (l *LB) replyError(w http.ResponseWriter, start time.Time, code int, errCode, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(errorResponse{Error: errorBody{Code: errCode, Message: fmt.Sprintf(format, args...)}})
	l.metrics.Response(code, time.Since(start))
}

// Request headers carrying the admission attributes. They ride as headers
// (not body fields) so the balancer can admit without trusting the body and
// the replica wire format stays untouched.
const (
	// HeaderTenant names the quota bucket the request charges
	// (empty: "default").
	HeaderTenant = "X-Resparc-Tenant"
	// HeaderPriority selects the tier: "interactive" (default) or "batch".
	HeaderPriority = "X-Resparc-Priority"
	// HeaderReplica is set on responses: which replica answered.
	HeaderReplica = "X-Resparc-Replica"
	// HeaderBackend is set on responses: the backend actually used (differs
	// from the request when the balancer shed to the CMOS baseline).
	HeaderBackend = "X-Resparc-Backend"
)

func (l *LB) handleClassify(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	l.metrics.Request()
	if r.Method != http.MethodPost {
		l.replyError(w, start, http.StatusMethodNotAllowed, serve.ErrCodeMethodNotAllowed, "POST required")
		return
	}
	var req serve.ClassifyRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		l.replyError(w, start, http.StatusBadRequest, serve.ErrCodeBadRequest, "decoding request: %v", err)
		return
	}
	if req.Model == "" {
		l.replyError(w, start, http.StatusBadRequest, serve.ErrCodeBadRequest, "request names no model")
		return
	}
	tier, err := ParseTier(r.Header.Get(HeaderPriority))
	if err != nil {
		l.replyError(w, start, http.StatusBadRequest, serve.ErrCodeBadRequest, "%v", err)
		return
	}
	tenant := r.Header.Get(HeaderTenant)
	if tenant == "" {
		tenant = "default"
	}
	switch d, retryAfter := l.adm.Admit(tenant, tier); d {
	case AdmitQuota:
		l.metrics.Rejected(RejectQuota)
		w.Header().Set("Retry-After", ceilSeconds(retryAfter))
		l.replyError(w, start, http.StatusTooManyRequests, ErrCodeQuotaExhausted,
			"tenant %q over quota, retry later", tenant)
		return
	case AdmitOverload:
		l.metrics.Rejected(RejectOverload)
		w.Header().Set("Retry-After", "1")
		l.replyError(w, start, http.StatusServiceUnavailable, ErrCodeOverloaded,
			"fleet at capacity for tier %q, retry later", tier)
		return
	}
	defer l.adm.Release(tier)
	l.route(w, r, start, &req, tier)
}

// upstream is one proxied answer.
type upstream struct {
	status     int
	header     http.Header
	body       []byte
	replica    string
	envelope   string // machine-readable error code, "" on success
	retryAfter time.Duration
}

// route picks replicas, proxies, and applies the fleet policy: failover on
// unreachable replicas, shed to the CMOS backend when the RESPARC tier is
// out, bounded backoff-retry on 429/503/504.
func (l *LB) route(w http.ResponseWriter, r *http.Request, start time.Time, req *serve.ClassifyRequest, tier Tier) {
	backend := req.Backend
	pinned := backend != ""
	if !pinned {
		backend = l.cfg.DefaultBackend
	}
	canShed := !pinned && l.cfg.ShedBackend != "" && backend != l.cfg.ShedBackend
	shed := false
	retries := 0
	excluded := map[string]bool{}
	var last *upstream
	// Hard bound: every iteration either excludes a replica (at most the
	// fleet size, twice — once per backend) or consumes a retry.
	for attempt := 0; attempt < 2*len(l.ring.Members())+l.cfg.MaxRetries+2; attempt++ {
		name, owner, ok := l.pick(req.Model, backend, excluded)
		if !ok && canShed && !shed {
			// The RESPARC tier is out fleet-wide (breakers open, replicas
			// down): degrade to the CMOS baseline instead of failing.
			shed = true
			backend = l.cfg.ShedBackend
			excluded = map[string]bool{}
			l.metrics.Shed(tier)
			l.metrics.Routing(RouteShed)
			continue
		}
		if !ok {
			if last != nil {
				l.relay(w, start, last, shed)
				return
			}
			l.replyError(w, start, http.StatusServiceUnavailable, ErrCodeNoReplicas,
				"no replica can serve %s/%s right now", req.Model, backend)
			return
		}
		if !shed {
			if owner {
				l.metrics.Routing(RouteHash)
			} else {
				l.metrics.Routing(RouteFailover)
			}
		}
		up, err := l.forward(r, name, req, backend)
		if err != nil {
			// Transport failure: stop routing there now, not at the next
			// poll, and fail over along the ring sequence.
			l.health.markDown(name)
			l.metrics.Proxied(name, true)
			excluded[name] = true
			continue
		}
		l.metrics.Proxied(name, up.status >= 500)
		last = up
		switch up.status {
		case http.StatusServiceUnavailable:
			switch up.envelope {
			case serve.ErrCodeCircuitOpen:
				// Remember the open circuit so requests stop hitting it
				// before the next poll, and fail over / shed.
				l.health.markBreakerOpen(name, req.Model, backend)
				excluded[name] = true
				continue
			case serve.ErrCodeDraining:
				l.health.markDraining(name)
				excluded[name] = true
				continue
			}
		case http.StatusTooManyRequests, http.StatusGatewayTimeout:
			// Replica-local congestion: backoff and retry below.
		default:
			l.relay(w, start, up, shed)
			return
		}
		if retries >= l.cfg.MaxRetries {
			l.relay(w, start, up, shed)
			return
		}
		wait := l.cfg.RetryBase << retries
		if up.retryAfter > wait {
			wait = up.retryAfter
		}
		if wait > l.cfg.MaxRetryWait {
			// The upstream asked for more patience than we will spend
			// holding the connection; relay its answer (Retry-After intact)
			// and let the client decide.
			l.relay(w, start, up, shed)
			return
		}
		retries++
		l.metrics.Retry()
		select {
		case <-r.Context().Done():
			l.relay(w, start, up, shed)
			return
		case <-time.After(wait):
		}
	}
	if last != nil {
		l.relay(w, start, last, shed)
		return
	}
	l.replyError(w, start, http.StatusServiceUnavailable, ErrCodeNoReplicas,
		"no replica answered for %s/%s", req.Model, backend)
}

// pick returns the first non-excluded replica in the model's ring sequence
// that is usable for (model, backend), and whether it is the hash owner.
func (l *LB) pick(model, backend string, excluded map[string]bool) (name string, owner bool, ok bool) {
	for i, candidate := range l.ring.Sequence(model) {
		if excluded[candidate] {
			continue
		}
		if l.health.get(candidate).Usable(model, backend) {
			return candidate, i == 0, true
		}
	}
	return "", false, false
}

// forward proxies the request to one replica with the effective backend.
func (l *LB) forward(r *http.Request, name string, req *serve.ClassifyRequest, backend string) (*upstream, error) {
	l.mu.Lock()
	replica, ok := l.replicas[name]
	l.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("lb: replica %q left the fleet", name)
	}
	out := *req
	out.Backend = backend
	body, err := json.Marshal(out)
	if err != nil {
		return nil, err
	}
	preq, err := http.NewRequestWithContext(r.Context(), http.MethodPost, replica.URL+"/v1/classify", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	preq.Header.Set("Content-Type", "application/json")
	resp, err := l.client.Do(preq)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, maxRequestBody))
	if err != nil {
		return nil, err
	}
	up := &upstream{status: resp.StatusCode, header: resp.Header, body: raw, replica: name}
	if resp.StatusCode != http.StatusOK {
		var env errorResponse
		if json.Unmarshal(raw, &env) == nil {
			up.envelope = env.Error.Code
		}
	}
	if secs, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && secs > 0 {
		up.retryAfter = time.Duration(secs) * time.Second
	}
	return up, nil
}

// relay copies an upstream answer to the client, stamping which replica and
// backend served it.
func (l *LB) relay(w http.ResponseWriter, start time.Time, up *upstream, shed bool) {
	if ct := up.header.Get("Content-Type"); ct != "" {
		w.Header().Set("Content-Type", ct)
	}
	if ra := up.header.Get("Retry-After"); ra != "" {
		w.Header().Set("Retry-After", ra)
	}
	w.Header().Set(HeaderReplica, up.replica)
	if shed {
		w.Header().Set(HeaderBackend, l.cfg.ShedBackend)
	}
	w.WriteHeader(up.status)
	_, _ = w.Write(up.body)
	l.metrics.Response(up.status, time.Since(start))
}

// handleReplicas lists the fleet membership and health view.
func (l *LB) handleReplicas(w http.ResponseWriter, _ *http.Request) {
	type entry struct {
		Replica
		Health ReplicaHealth `json:"health"`
	}
	l.mu.Lock()
	entries := make([]entry, 0, len(l.replicas))
	for _, r := range l.replicas {
		entries = append(entries, entry{Replica: r, Health: l.health.get(r.Name)})
	}
	l.mu.Unlock()
	sort.Slice(entries, func(i, j int) bool { return entries[i].Name < entries[j].Name })
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(struct {
		Replicas []entry `json:"replicas"`
	}{Replicas: entries})
}

// handleHealthz is the balancer's own liveness probe.
func (l *LB) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	_, _ = w.Write([]byte("{\"status\":\"ok\"}\n"))
}

// handleReadyz: the balancer is ready when at least one replica is
// reachable and not draining.
func (l *LB) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	ready := false
	for _, h := range l.health.snapshot() {
		if h.Reachable && !h.Draining {
			ready = true
			break
		}
	}
	w.Header().Set("Content-Type", "application/json")
	if !ready {
		w.WriteHeader(http.StatusServiceUnavailable)
		_, _ = w.Write([]byte("{\"status\":\"no_replicas\"}\n"))
		return
	}
	_, _ = w.Write([]byte("{\"status\":\"ready\"}\n"))
}

// ceilSeconds renders a wait as whole seconds, at least 1 (Retry-After).
func ceilSeconds(d time.Duration) string {
	secs := int((d + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return strconv.Itoa(secs)
}
