package dataset

import (
	"testing"
	"testing/quick"
)

func TestKindShapeAndClasses(t *testing.T) {
	if s := Digits.Shape(); s.H != 28 || s.W != 28 || s.C != 1 {
		t.Fatalf("Digits shape = %v", s)
	}
	if s := StreetDigits.Shape(); s.H != 32 || s.W != 32 || s.C != 3 {
		t.Fatalf("StreetDigits shape = %v", s)
	}
	if s := Objects.Shape(); s.H != 32 || s.W != 32 || s.C != 3 {
		t.Fatalf("Objects shape = %v", s)
	}
	for _, k := range []Kind{Digits, StreetDigits, Objects} {
		if k.Classes() != 10 {
			t.Fatalf("%v classes = %d", k, k.Classes())
		}
	}
}

func TestKindString(t *testing.T) {
	if Digits.String() != "digits" || StreetDigits.String() != "streetdigits" || Objects.String() != "objects" {
		t.Fatal("Kind.String wrong")
	}
	if Kind(42).String() != "Kind(42)" {
		t.Fatalf("unknown kind String = %q", Kind(42).String())
	}
}

func TestGenerateBasics(t *testing.T) {
	for _, k := range []Kind{Digits, StreetDigits, Objects} {
		set := Generate(k, 20, 1)
		if len(set.Samples) != 20 {
			t.Fatalf("%v: %d samples", k, len(set.Samples))
		}
		shape := k.Shape()
		counts := make(map[int]int)
		for i, s := range set.Samples {
			if len(s.Input) != shape.Size() {
				t.Fatalf("%v sample %d: len %d != %d", k, i, len(s.Input), shape.Size())
			}
			if s.Label < 0 || s.Label >= 10 {
				t.Fatalf("%v sample %d: label %d", k, i, s.Label)
			}
			counts[s.Label]++
			for j, v := range s.Input {
				if v < 0 || v > 1 {
					t.Fatalf("%v sample %d pixel %d out of range: %v", k, i, j, v)
				}
			}
		}
		// Labels cycle, so with 20 samples each class appears exactly twice.
		for c := 0; c < 10; c++ {
			if counts[c] != 2 {
				t.Fatalf("%v: class %d count %d, want 2", k, c, counts[c])
			}
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(Digits, 5, 7)
	b := Generate(Digits, 5, 7)
	for i := range a.Samples {
		for j := range a.Samples[i].Input {
			if a.Samples[i].Input[j] != b.Samples[i].Input[j] {
				t.Fatal("same seed must give identical samples")
			}
		}
	}
	c := Generate(Digits, 5, 8)
	same := true
	for i := range a.Samples {
		for j := range a.Samples[i].Input {
			if a.Samples[i].Input[j] != c.Samples[i].Input[j] {
				same = false
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical data")
	}
}

func TestSplit(t *testing.T) {
	set := Generate(Digits, 10, 1)
	train, test := set.Split(7)
	if len(train.Samples) != 7 || len(test.Samples) != 3 {
		t.Fatalf("split sizes %d/%d", len(train.Samples), len(test.Samples))
	}
	if train.Classes != 10 || test.Classes != 10 {
		t.Fatal("split must preserve Classes")
	}
}

func TestSplitPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Generate(Digits, 2, 1).Split(5)
}

// Digit images must be sparse (mostly black background) while street digits
// and objects are dense — this is the statistic behind Fig 13's event-driven
// savings (MLPs on digit data find long zero run-lengths).
func TestSparsityOrdering(t *testing.T) {
	digits := Generate(Digits, 50, 2).MeanActivity()
	street := Generate(StreetDigits, 50, 2).MeanActivity()
	if digits >= 0.35 {
		t.Fatalf("digit images too dense: mean activity %.3f", digits)
	}
	if street <= digits {
		t.Fatalf("street digits (%.3f) should be denser than digits (%.3f)", street, digits)
	}
}

// Property: every generated sample stays in [0,1] and has some foreground.
func TestSampleRangeProperty(t *testing.T) {
	f := func(seed int64) bool {
		set := Generate(Objects, 10, seed)
		for _, s := range set.Samples {
			nonzero := 0
			for _, v := range s.Input {
				if v < 0 || v > 1 {
					return false
				}
				if v > 0 {
					nonzero++
				}
			}
			if nonzero == 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

func TestMeanActivityEmpty(t *testing.T) {
	s := &Set{}
	if s.MeanActivity() != 0 {
		t.Fatal("empty set MeanActivity should be 0")
	}
}

// Classes must be visually distinct enough that nearest-mean classification
// on raw pixels beats chance — a sanity floor for trainability.
func TestClassesSeparable(t *testing.T) {
	train := Generate(Digits, 200, 3)
	test := Generate(Digits, 50, 4)
	shape := Digits.Shape()
	means := make([][]float64, 10)
	counts := make([]int, 10)
	for i := range means {
		means[i] = make([]float64, shape.Size())
	}
	for _, s := range train.Samples {
		counts[s.Label]++
		for j, v := range s.Input {
			means[s.Label][j] += v
		}
	}
	for c := range means {
		for j := range means[c] {
			means[c][j] /= float64(counts[c])
		}
	}
	correct := 0
	for _, s := range test.Samples {
		best, bestD := -1, 1e18
		for c := range means {
			var d float64
			for j, v := range s.Input {
				diff := v - means[c][j]
				d += diff * diff
			}
			if d < bestD {
				bestD, best = d, c
			}
		}
		if best == s.Label {
			correct++
		}
	}
	acc := float64(correct) / float64(len(test.Samples))
	if acc < 0.3 {
		t.Fatalf("nearest-mean accuracy %.2f — classes not separable", acc)
	}
}

func TestShuffleDeterministic(t *testing.T) {
	a := Generate(Digits, 30, 5)
	b := Generate(Digits, 30, 5)
	a.Shuffle(9)
	b.Shuffle(9)
	for i := range a.Samples {
		if a.Samples[i].Label != b.Samples[i].Label {
			t.Fatal("shuffles with the same seed diverged")
		}
	}
	c := Generate(Digits, 30, 5)
	c.Shuffle(10)
	same := true
	for i := range a.Samples {
		if a.Samples[i].Label != c.Samples[i].Label {
			same = false
		}
	}
	if same {
		t.Fatal("different shuffle seeds produced identical order")
	}
}

func TestFilterClasses(t *testing.T) {
	s := Generate(Digits, 30, 6)
	f := s.FilterClasses(0, 7)
	if len(f.Samples) != 6 { // 3 per class over 30 cycled samples
		t.Fatalf("%d filtered samples", len(f.Samples))
	}
	for _, smp := range f.Samples {
		if smp.Label != 0 && smp.Label != 7 {
			t.Fatalf("label %d leaked through filter", smp.Label)
		}
	}
	if f.Classes != s.Classes {
		t.Fatal("filter must keep the class space")
	}
}

func TestClassCounts(t *testing.T) {
	s := Generate(Digits, 25, 7)
	counts := s.ClassCounts()
	total := 0
	for c, n := range counts {
		if c < 5 && n != 3 {
			t.Fatalf("class %d count %d, want 3", c, n)
		}
		if c >= 5 && n != 2 {
			t.Fatalf("class %d count %d, want 2", c, n)
		}
		total += n
	}
	if total != 25 {
		t.Fatalf("total %d", total)
	}
}
