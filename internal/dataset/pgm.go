package dataset

import (
	"bufio"
	"fmt"
	"io"

	"resparc/internal/tensor"
)

// WritePGM writes a single-channel image as a binary PGM (P5), and
// WritePPM writes a three-channel image as a binary PPM (P6) — the
// plainest formats every image viewer opens, used to eyeball the synthetic
// datasets. Intensities in [0,1] map to [0,255].

// WritePGM encodes a grayscale image (shape.C == 1).
func WritePGM(w io.Writer, img tensor.Vec, shape tensor.Shape3) error {
	if shape.C != 1 {
		return fmt.Errorf("dataset: WritePGM wants 1 channel, got %d", shape.C)
	}
	if len(img) != shape.Size() {
		return fmt.Errorf("dataset: image length %d != %v", len(img), shape)
	}
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "P5\n%d %d\n255\n", shape.W, shape.H)
	for _, v := range img {
		if err := bw.WriteByte(quantByte(v)); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// WritePPM encodes an RGB image (shape.C == 3, channel-minor).
func WritePPM(w io.Writer, img tensor.Vec, shape tensor.Shape3) error {
	if shape.C != 3 {
		return fmt.Errorf("dataset: WritePPM wants 3 channels, got %d", shape.C)
	}
	if len(img) != shape.Size() {
		return fmt.Errorf("dataset: image length %d != %v", len(img), shape)
	}
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "P6\n%d %d\n255\n", shape.W, shape.H)
	for _, v := range img {
		if err := bw.WriteByte(quantByte(v)); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadPGM decodes a binary PGM back into an intensity vector (round-trip
// testing and external-image import).
func ReadPGM(r io.Reader) (tensor.Vec, tensor.Shape3, error) {
	br := bufio.NewReader(r)
	var magic string
	var w, h, maxv int
	if _, err := fmt.Fscan(br, &magic, &w, &h, &maxv); err != nil {
		return nil, tensor.Shape3{}, fmt.Errorf("dataset: bad PGM header: %w", err)
	}
	if magic != "P5" {
		return nil, tensor.Shape3{}, fmt.Errorf("dataset: unsupported magic %q", magic)
	}
	if w <= 0 || h <= 0 || maxv <= 0 || maxv > 255 {
		return nil, tensor.Shape3{}, fmt.Errorf("dataset: bad PGM dimensions %dx%d max %d", w, h, maxv)
	}
	// Single whitespace byte after the header.
	if _, err := br.ReadByte(); err != nil {
		return nil, tensor.Shape3{}, err
	}
	shape := tensor.Shape3{H: h, W: w, C: 1}
	img := tensor.NewVec(shape.Size())
	buf := make([]byte, shape.Size())
	if _, err := io.ReadFull(br, buf); err != nil {
		return nil, tensor.Shape3{}, fmt.Errorf("dataset: short PGM payload: %w", err)
	}
	for i, b := range buf {
		img[i] = float64(b) / float64(maxv)
	}
	return img, shape, nil
}

func quantByte(v float64) byte {
	if v <= 0 {
		return 0
	}
	if v >= 1 {
		return 255
	}
	return byte(v*255 + 0.5)
}
