// Package dataset provides procedural image datasets that stand in for the
// MNIST, SVHN and CIFAR-10 datasets used by the paper's benchmarks.
//
// The RESPARC evaluation depends on the datasets only through (a) a
// trainable classification task per application domain, and (b) the spike
// statistics of the encoded inputs — digit images are mostly black
// background with sparse foreground (long zero run-lengths, which drive the
// event-driven savings of Fig 13), while natural-image-like inputs are
// dense. The generators below reproduce both properties:
//
//   - Digits ("MNIST-like"): 28x28 grayscale glyphs with position jitter,
//     thickness variation and light pixel noise on a black background.
//   - StreetDigits ("SVHN-like"): 32x32 RGB digit glyphs over random
//     textured, colored backgrounds — a harder, denser task.
//   - Objects ("CIFAR-10-like"): 32x32 RGB procedural object classes
//     (textures, shapes, gradients) — the hardest task.
//
// The relative difficulty ordering (Digits easiest, Objects hardest) matches
// the real datasets, which is all Fig 14(a)'s accuracy-vs-precision trend
// requires.
package dataset

import (
	"fmt"
	"math"
	"math/rand"

	"resparc/internal/tensor"
)

// Sample is one labeled image, flattened channel-minor (see tensor.Shape3).
// Pixel values lie in [0, 1].
type Sample struct {
	Input tensor.Vec
	Label int
}

// Set is a labeled dataset.
type Set struct {
	Name    string
	Shape   tensor.Shape3
	Classes int
	Samples []Sample
}

// Kind selects one of the three procedural dataset families.
type Kind int

const (
	// Digits is the MNIST substitute: 28x28x1, 10 classes.
	Digits Kind = iota
	// StreetDigits is the SVHN substitute: 32x32x3, 10 classes.
	StreetDigits
	// Objects is the CIFAR-10 substitute: 32x32x3, 10 classes.
	Objects
)

func (k Kind) String() string {
	switch k {
	case Digits:
		return "digits"
	case StreetDigits:
		return "streetdigits"
	case Objects:
		return "objects"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Shape returns the image volume of the dataset family.
func (k Kind) Shape() tensor.Shape3 {
	switch k {
	case Digits:
		return tensor.Shape3{H: 28, W: 28, C: 1}
	case StreetDigits, Objects:
		return tensor.Shape3{H: 32, W: 32, C: 3}
	default:
		panic("dataset: unknown kind")
	}
}

// Classes returns the number of classes (always 10, like the real datasets).
func (k Kind) Classes() int { return 10 }

// Generate produces n labeled samples of the given family with a
// deterministic PRNG seed. Labels cycle through the classes so every class
// is equally represented.
func Generate(k Kind, n int, seed int64) *Set {
	rng := rand.New(rand.NewSource(seed))
	shape := k.Shape()
	set := &Set{Name: k.String(), Shape: shape, Classes: k.Classes(), Samples: make([]Sample, n)}
	for i := 0; i < n; i++ {
		label := i % set.Classes
		var img tensor.Vec
		switch k {
		case Digits:
			img = renderDigit(rng, shape, label, false)
		case StreetDigits:
			img = renderStreetDigit(rng, shape, label)
		case Objects:
			img = renderObject(rng, shape, label)
		}
		set.Samples[i] = Sample{Input: img, Label: label}
	}
	return set
}

// Split partitions the set into a training set of n samples and a test set of
// the remainder. It panics if n exceeds the number of samples.
func (s *Set) Split(n int) (train, test *Set) {
	if n > len(s.Samples) {
		panic(fmt.Sprintf("dataset: split %d > %d samples", n, len(s.Samples)))
	}
	train = &Set{Name: s.Name + "/train", Shape: s.Shape, Classes: s.Classes, Samples: s.Samples[:n]}
	test = &Set{Name: s.Name + "/test", Shape: s.Shape, Classes: s.Classes, Samples: s.Samples[n:]}
	return train, test
}

// Shuffle permutes the samples deterministically with the given seed.
func (s *Set) Shuffle(seed int64) {
	rng := rand.New(rand.NewSource(seed))
	rng.Shuffle(len(s.Samples), func(i, j int) {
		s.Samples[i], s.Samples[j] = s.Samples[j], s.Samples[i]
	})
}

// FilterClasses returns a new set containing only samples of the given
// classes (order preserved). The class count is unchanged so label indices
// stay valid.
func (s *Set) FilterClasses(classes ...int) *Set {
	keep := map[int]bool{}
	for _, c := range classes {
		keep[c] = true
	}
	out := &Set{Name: s.Name + "/filtered", Shape: s.Shape, Classes: s.Classes}
	for _, smp := range s.Samples {
		if keep[smp.Label] {
			out.Samples = append(out.Samples, smp)
		}
	}
	return out
}

// ClassCounts returns how many samples each class has.
func (s *Set) ClassCounts() []int {
	counts := make([]int, s.Classes)
	for _, smp := range s.Samples {
		if smp.Label >= 0 && smp.Label < s.Classes {
			counts[smp.Label]++
		}
	}
	return counts
}

// MeanActivity returns the mean pixel intensity over all samples — the
// first-order statistic that determines input spike rates under rate coding.
func (s *Set) MeanActivity() float64 {
	if len(s.Samples) == 0 {
		return 0
	}
	var sum float64
	var n int
	for _, smp := range s.Samples {
		sum += smp.Input.Sum()
		n += len(smp.Input)
	}
	return sum / float64(n)
}

// glyphs are 5x7 bitmap digits (classic segment-style font). Rows are
// top-to-bottom, each string is one row, '#' marks foreground.
var glyphs = [10][7]string{
	{"#####", "#...#", "#...#", "#...#", "#...#", "#...#", "#####"}, // 0
	{"..#..", ".##..", "..#..", "..#..", "..#..", "..#..", ".###."}, // 1
	{"#####", "....#", "....#", "#####", "#....", "#....", "#####"}, // 2
	{"#####", "....#", "....#", "#####", "....#", "....#", "#####"}, // 3
	{"#...#", "#...#", "#...#", "#####", "....#", "....#", "....#"}, // 4
	{"#####", "#....", "#....", "#####", "....#", "....#", "#####"}, // 5
	{"#####", "#....", "#....", "#####", "#...#", "#...#", "#####"}, // 6
	{"#####", "....#", "...#.", "..#..", ".#...", ".#...", ".#..."}, // 7
	{"#####", "#...#", "#...#", "#####", "#...#", "#...#", "#####"}, // 8
	{"#####", "#...#", "#...#", "#####", "....#", "....#", "#####"}, // 9
}

// renderDigit draws one digit glyph scaled to roughly 60% of the image with
// random sub-cell jitter, per-sample intensity, and additive noise. With
// color=false it writes channel 0 only (grayscale images have C==1).
func renderDigit(rng *rand.Rand, shape tensor.Shape3, label int, color bool) tensor.Vec {
	img := tensor.NewVec(shape.Size())
	g := glyphs[label]
	// Scale the 5x7 glyph into a box of ~0.6*H x ~0.5*W pixels.
	boxH := int(float64(shape.H) * 0.64)
	boxW := int(float64(shape.W) * 0.5)
	cellH := float64(boxH) / 7
	cellW := float64(boxW) / 5
	offY := centerJitter(rng, shape.H, boxH)
	offX := centerJitter(rng, shape.W, boxW)
	intensity := 0.75 + 0.25*rng.Float64()
	for gy := 0; gy < 7; gy++ {
		for gx := 0; gx < 5; gx++ {
			if g[gy][gx] != '#' {
				continue
			}
			y0 := offY + int(float64(gy)*cellH)
			x0 := offX + int(float64(gx)*cellW)
			y1 := offY + int(float64(gy+1)*cellH)
			x1 := offX + int(float64(gx+1)*cellW)
			for y := y0; y < y1 && y < shape.H; y++ {
				for x := x0; x < x1 && x < shape.W; x++ {
					v := intensity * (0.85 + 0.15*rng.Float64())
					img[shape.Index(y, x, 0)] = clamp01(v)
					if color {
						for c := 1; c < shape.C; c++ {
							img[shape.Index(y, x, c)] = clamp01(v * (0.8 + 0.2*rng.Float64()))
						}
					}
				}
			}
		}
	}
	// Sparse salt noise on the background, preserving long zero runs.
	for i := 0; i < shape.Size()/100; i++ {
		idx := rng.Intn(shape.Size())
		if img[idx] == 0 {
			img[idx] = 0.1 * rng.Float64()
		}
	}
	return img
}

// renderStreetDigit draws a digit over a textured colored background —
// dense images like SVHN's street-view crops.
func renderStreetDigit(rng *rand.Rand, shape tensor.Shape3, label int) tensor.Vec {
	img := tensor.NewVec(shape.Size())
	// Smooth background: per-channel base + low-frequency gradient + noise.
	base := [3]float64{0.2 + 0.3*rng.Float64(), 0.2 + 0.3*rng.Float64(), 0.2 + 0.3*rng.Float64()}
	gx := (rng.Float64() - 0.5) * 0.4 / float64(shape.W)
	gy := (rng.Float64() - 0.5) * 0.4 / float64(shape.H)
	for y := 0; y < shape.H; y++ {
		for x := 0; x < shape.W; x++ {
			for c := 0; c < shape.C; c++ {
				v := base[c] + gx*float64(x) + gy*float64(y) + 0.05*rng.NormFloat64()
				img[shape.Index(y, x, c)] = clamp01(v)
			}
		}
	}
	// Foreground digit in a brighter, contrasting color (street numbers are
	// rendered light-on-dark here; constant polarity keeps the task
	// learnable by raw-pixel models while the textured background still
	// makes it harder than plain digits).
	fg := [3]float64{0.7 + 0.3*rng.Float64(), 0.7 + 0.3*rng.Float64(), 0.7 + 0.3*rng.Float64()}
	g := glyphs[label]
	boxH := int(float64(shape.H) * 0.66)
	boxW := int(float64(shape.W) * 0.5)
	cellH := float64(boxH) / 7
	cellW := float64(boxW) / 5
	offY := centerJitter(rng, shape.H, boxH)
	offX := centerJitter(rng, shape.W, boxW)
	for gy := 0; gy < 7; gy++ {
		for gx2 := 0; gx2 < 5; gx2++ {
			if g[gy][gx2] != '#' {
				continue
			}
			y0 := offY + int(float64(gy)*cellH)
			x0 := offX + int(float64(gx2)*cellW)
			y1 := offY + int(float64(gy+1)*cellH)
			x1 := offX + int(float64(gx2+1)*cellW)
			for y := y0; y < y1 && y < shape.H; y++ {
				for x := x0; x < x1 && x < shape.W; x++ {
					for c := 0; c < shape.C; c++ {
						img[shape.Index(y, x, c)] = clamp01(fg[c] + 0.05*rng.NormFloat64())
					}
				}
			}
		}
	}
	return img
}

// renderObject draws one of 10 procedural object/texture classes: filled
// disc, ring, square, cross, diagonal stripes, horizontal stripes, vertical
// stripes, checkerboard, radial gradient, corner blob. Each class has random
// color, scale and position, and all images carry background noise.
func renderObject(rng *rand.Rand, shape tensor.Shape3, label int) tensor.Vec {
	img := tensor.NewVec(shape.Size())
	for i := range img { // noisy background
		img[i] = clamp01(0.25 + 0.12*rng.NormFloat64())
	}
	fg := [3]float64{0.55 + 0.45*rng.Float64(), 0.55 + 0.45*rng.Float64(), 0.55 + 0.45*rng.Float64()}
	cx := float64(shape.W)/2 + (rng.Float64()-0.5)*6
	cy := float64(shape.H)/2 + (rng.Float64()-0.5)*6
	r := float64(shape.W) * (0.22 + 0.12*rng.Float64())
	period := 3 + rng.Intn(3)
	phase := rng.Intn(period)
	set := func(y, x int, w float64) {
		for c := 0; c < shape.C; c++ {
			idx := shape.Index(y, x, c)
			img[idx] = clamp01(img[idx]*(1-w) + fg[c]*w)
		}
	}
	for y := 0; y < shape.H; y++ {
		for x := 0; x < shape.W; x++ {
			dx, dy := float64(x)-cx, float64(y)-cy
			d := math.Hypot(dx, dy)
			switch label {
			case 0: // filled disc
				if d < r {
					set(y, x, 1)
				}
			case 1: // ring
				if d < r && d > r*0.55 {
					set(y, x, 1)
				}
			case 2: // filled square
				if math.Abs(dx) < r*0.8 && math.Abs(dy) < r*0.8 {
					set(y, x, 1)
				}
			case 3: // cross
				if math.Abs(dx) < r*0.3 || math.Abs(dy) < r*0.3 {
					set(y, x, 1)
				}
			case 4: // diagonal stripes
				if (x+y+phase)%period == 0 {
					set(y, x, 1)
				}
			case 5: // horizontal stripes
				if (y+phase)%period == 0 {
					set(y, x, 1)
				}
			case 6: // vertical stripes
				if (x+phase)%period == 0 {
					set(y, x, 1)
				}
			case 7: // checkerboard
				if ((x/period)+(y/period))%2 == 0 {
					set(y, x, 1)
				}
			case 8: // radial gradient blob
				set(y, x, clamp01(1-d/(r*2)))
			case 9: // corner blob (position-coded class)
				dc := math.Hypot(float64(x), float64(y))
				if dc < r*1.4 {
					set(y, x, 1)
				}
			}
		}
	}
	return img
}

// centerJitter returns an offset that centers a box of size box within dim,
// displaced by at most ±2 pixels. Small jitter keeps the task learnable by
// modest networks while still exercising translation robustness.
func centerJitter(rng *rand.Rand, dim, box int) int {
	off := (dim-box)/2 + rng.Intn(5) - 2
	if off < 0 {
		off = 0
	}
	if off > dim-box {
		off = dim - box
	}
	return off
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}
