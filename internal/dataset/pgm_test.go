package dataset

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"resparc/internal/tensor"
)

func TestPGMRoundTrip(t *testing.T) {
	set := Generate(Digits, 3, 1)
	for _, s := range set.Samples {
		var buf bytes.Buffer
		if err := WritePGM(&buf, s.Input, set.Shape); err != nil {
			t.Fatal(err)
		}
		img, shape, err := ReadPGM(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if shape != set.Shape {
			t.Fatalf("shape %v != %v", shape, set.Shape)
		}
		for i := range img {
			if math.Abs(img[i]-s.Input[i]) > 1.0/255+1e-9 {
				t.Fatalf("pixel %d: %v vs %v", i, img[i], s.Input[i])
			}
		}
	}
}

func TestPGMHeader(t *testing.T) {
	var buf bytes.Buffer
	img := tensor.Vec{0, 0.5, 1, 0.25}
	if err := WritePGM(&buf, img, tensor.Shape3{H: 2, W: 2, C: 1}); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "P5\n2 2\n255\n") {
		t.Fatalf("header: %q", buf.String()[:12])
	}
	// Payload bytes quantized with rounding, extremes clamped.
	payload := buf.Bytes()[len("P5\n2 2\n255\n"):]
	if payload[0] != 0 || payload[2] != 255 {
		t.Fatalf("payload %v", payload)
	}
}

func TestPPM(t *testing.T) {
	set := Generate(Objects, 1, 2)
	var buf bytes.Buffer
	if err := WritePPM(&buf, set.Samples[0].Input, set.Shape); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "P6\n32 32\n255\n") {
		t.Fatalf("header: %q", buf.String()[:14])
	}
	want := len("P6\n32 32\n255\n") + 32*32*3
	if buf.Len() != want {
		t.Fatalf("size %d, want %d", buf.Len(), want)
	}
}

func TestPGMValidation(t *testing.T) {
	var buf bytes.Buffer
	if err := WritePGM(&buf, tensor.NewVec(12), tensor.Shape3{H: 2, W: 2, C: 3}); err == nil {
		t.Fatal("3-channel PGM accepted")
	}
	if err := WritePGM(&buf, tensor.NewVec(3), tensor.Shape3{H: 2, W: 2, C: 1}); err == nil {
		t.Fatal("wrong length accepted")
	}
	if err := WritePPM(&buf, tensor.NewVec(4), tensor.Shape3{H: 2, W: 2, C: 1}); err == nil {
		t.Fatal("1-channel PPM accepted")
	}
	if _, _, err := ReadPGM(strings.NewReader("P6\n2 2\n255\nxxxx")); err == nil {
		t.Fatal("PPM magic accepted by ReadPGM")
	}
	if _, _, err := ReadPGM(strings.NewReader("P5\n2 2\n255\nxx")); err == nil {
		t.Fatal("short payload accepted")
	}
	if _, _, err := ReadPGM(strings.NewReader("garbage")); err == nil {
		t.Fatal("garbage accepted")
	}
}
