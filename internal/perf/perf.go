// Package perf defines the result structures shared by the two architecture
// simulators: per-classification energy broken into the paper's reporting
// components (Fig 12) plus latency, and the derived comparison metrics
// (energy gain, speedup) of Fig 11.
package perf

import (
	"fmt"
	"math"
)

// RESPARCEnergy is the Fig 12(a,c) breakdown for one classification.
type RESPARCEnergy struct {
	Neuron      float64 // integration + spike generation
	Crossbar    float64 // MCA reads (used and idle cross-points)
	Peripherals float64 // buffers, control, switch/bus communication, SRAM
}

// Total returns the summed energy in joules.
func (e RESPARCEnergy) Total() float64 { return e.Neuron + e.Crossbar + e.Peripherals }

// SumRESPARC sums per-layer energy accumulators component-wise in slice
// order. Both the single-chip simulator and the multi-chip shard merger
// reduce per-layer energies through this one function, so a sharded run's
// summed energy is bit-identical to the single-chip total: float addition is
// not associative, and sharing the summation order is what makes the
// equality exact.
func SumRESPARC(layers []RESPARCEnergy) RESPARCEnergy {
	var e RESPARCEnergy
	for _, le := range layers {
		e.Neuron += le.Neuron
		e.Crossbar += le.Crossbar
		e.Peripherals += le.Peripherals
	}
	return e
}

// CMOSEnergy is the Fig 12(b,d) breakdown for one classification.
type CMOSEnergy struct {
	Core          float64 // buffers, compute, control
	MemoryAccess  float64 // weight/activation SRAM accesses
	MemoryLeakage float64 // leakage power x runtime
}

// Total returns the summed energy in joules.
func (e CMOSEnergy) Total() float64 { return e.Core + e.MemoryAccess + e.MemoryLeakage }

// Result is one simulated classification on one architecture. The JSON
// tags are the wire form served by resparc-serve's /v1/classify.
type Result struct {
	Arch    string  `json:"arch"`      // "resparc" or "cmos"
	Network string  `json:"network"`   // benchmark name
	Energy  float64 `json:"energy_j"`  // joules per classification
	Latency float64 `json:"latency_s"` // seconds per classification
	Steps   int     `json:"steps"`     // SNN timesteps simulated

	// Spike-sparsity stats (RESPARC simulations only; zero for backends
	// that don't record them). They document why event-driven simulation
	// and the §3.2 zero-check win: most neurons are silent most timesteps.
	SpikesPerStep float64 `json:"spikes_per_step,omitempty"` // avg output spikes per timestep, all layers
	// LayerOccupancy is each layer's average fraction of neurons spiking
	// per timestep, in layer order.
	LayerOccupancy []float64 `json:"layer_occupancy,omitempty"`
}

// Throughput returns classifications per second.
func (r Result) Throughput() float64 {
	if r.Latency == 0 {
		return 0
	}
	return 1 / r.Latency
}

// Comparison is one Fig 11 data point: RESPARC vs the CMOS baseline on one
// benchmark.
type Comparison struct {
	Network    string
	EnergyGain float64 // CMOS energy / RESPARC energy
	Speedup    float64 // CMOS latency / RESPARC latency
}

// Compare derives the Fig 11 metrics from a pair of results.
func Compare(resparc, cmos Result) (Comparison, error) {
	if resparc.Network != cmos.Network {
		return Comparison{}, fmt.Errorf("perf: comparing different networks %q vs %q", resparc.Network, cmos.Network)
	}
	if resparc.Energy <= 0 || resparc.Latency <= 0 {
		return Comparison{}, fmt.Errorf("perf: non-positive RESPARC result %+v", resparc)
	}
	return Comparison{
		Network:    resparc.Network,
		EnergyGain: cmos.Energy / resparc.Energy,
		Speedup:    cmos.Latency / resparc.Latency,
	}, nil
}

// Normalize returns xs scaled so that the reference value maps to 1 — the
// paper reports all energies normalized to MNIST-on-RESPARC and speedups to
// CIFAR-10-on-CMOS.
func Normalize(xs []float64, ref float64) ([]float64, error) {
	if ref == 0 {
		return nil, fmt.Errorf("perf: zero reference")
	}
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = x / ref
	}
	return out, nil
}

// GeoMean returns the geometric mean of positive values (used for the "on
// average" numbers quoted in §5.1).
func GeoMean(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, fmt.Errorf("perf: empty input")
	}
	var logSum float64
	for _, x := range xs {
		if x <= 0 {
			return 0, fmt.Errorf("perf: non-positive value %v", x)
		}
		logSum += math.Log(x)
	}
	return math.Exp(logSum / float64(len(xs))), nil
}
