package perf

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"time"
)

// BenchEntry is one benchmark measurement in machine-readable form — the
// unit of BENCH_RESULTS.json, which tracks the repo's performance
// trajectory across PRs.
type BenchEntry struct {
	Name         string  `json:"name"`
	NsPerOp      float64 `json:"ns_per_op"`
	ImagesPerSec float64 `json:"images_per_sec,omitempty"`
	AllocsPerOp  int64   `json:"allocs_per_op"`
	BytesPerOp   int64   `json:"bytes_per_op"`
	Iterations   int     `json:"iterations"`
	Workers      int     `json:"workers,omitempty"`
}

// BenchReport is the top-level BENCH_RESULTS.json document.
type BenchReport struct {
	GoVersion  string       `json:"go_version"`
	GOMAXPROCS int          `json:"gomaxprocs"`
	Timestamp  string       `json:"timestamp"`
	Entries    []BenchEntry `json:"benchmarks"`
}

// NewBenchReport stamps a report with the runtime environment.
func NewBenchReport(entries []BenchEntry) BenchReport {
	return BenchReport{
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Timestamp:  time.Now().UTC().Format(time.RFC3339),
		Entries:    entries,
	}
}

// WriteBenchJSON writes the report as indented JSON.
func WriteBenchJSON(w io.Writer, r BenchReport) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(r); err != nil {
		return fmt.Errorf("perf: writing bench JSON: %w", err)
	}
	return nil
}

// Speedup returns the throughput ratio between two entries (how many times
// faster b runs than a), or 0 if either is unmeasured.
func Speedup(a, b BenchEntry) float64 {
	if a.NsPerOp <= 0 || b.NsPerOp <= 0 {
		return 0
	}
	return a.NsPerOp / b.NsPerOp
}
