package perf

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"os/exec"
	"runtime"
	"strings"
	"time"
)

// BenchSchemaVersion is the current BENCH_RESULTS.json schema. Version 2
// added the schema_version and git_revision stamps; version 3 added the
// fleet serving fields (latency quantiles, SLO attainment, shed/error
// counts); version 4 added the event-engine fields (modeled cycles, queuing
// waits, spike sparsity); version 5 added the mapper-quality fields (modeled
// energy and placement objective, written by -fig mapper); version 1
// documents (no schema_version field) decode as version 1.
const BenchSchemaVersion = 5

// BenchEntry is one benchmark measurement in machine-readable form — the
// unit of BENCH_RESULTS.json, which tracks the repo's performance
// trajectory across PRs.
//
// The fleet serving rows (-fig fleet) additionally carry latency quantiles
// and SLO attainment; those fields stay zero (and are omitted from the
// JSON) on ordinary throughput rows.
type BenchEntry struct {
	Name         string  `json:"name"`
	NsPerOp      float64 `json:"ns_per_op"`
	ImagesPerSec float64 `json:"images_per_sec,omitempty"`
	AllocsPerOp  int64   `json:"allocs_per_op"`
	BytesPerOp   int64   `json:"bytes_per_op"`
	Iterations   int     `json:"iterations"`
	Workers      int     `json:"workers,omitempty"`

	// Fleet serving fields (schema v3). Latencies are virtual milliseconds
	// from the modeled fleet simulation, so the same seed reproduces them
	// byte-identically.
	P50Ms         float64 `json:"p50_ms,omitempty"`
	P99Ms         float64 `json:"p99_ms,omitempty"`
	P999Ms        float64 `json:"p999_ms,omitempty"`
	SLOTargetMs   float64 `json:"slo_target_ms,omitempty"`
	SLOAttainment float64 `json:"slo_attainment,omitempty"`
	Shed          int64   `json:"shed,omitempty"`
	Errors        int64   `json:"errors,omitempty"`

	// Event-engine fields (schema v4), written by -fig event. ModelCycles is
	// the modeled cycle count (pipeline makespan, or NoC delivery span for
	// event/noc rows), WaitCycles the queuing it contains (bus/link/fabric
	// backpressure), and SpikesPerStep the average output-spike count per
	// timestep — the sparsity that makes event-driven simulation pay. All are
	// modeled quantities: the same seed reproduces them bit-identically.
	ModelCycles   int64   `json:"model_cycles,omitempty"`
	WaitCycles    int64   `json:"wait_cycles,omitempty"`
	SpikesPerStep float64 `json:"spikes_per_step,omitempty"`

	// Mapper-quality fields (schema v5), written by -fig mapper. EnergyJ is
	// the measured energy per classification under the placement, Objective
	// the energy-delay product (J·s) the mapper minimized a weighted proxy
	// of. Deterministic for a fixed seed.
	EnergyJ   float64 `json:"energy_j,omitempty"`
	Objective float64 `json:"objective,omitempty"`
}

// IsFleet reports whether the entry is a fleet serving row (carries an SLO
// target), so tools can diff the SLO columns only where they exist.
func (e BenchEntry) IsFleet() bool { return e.SLOTargetMs > 0 }

// BenchReport is the top-level BENCH_RESULTS.json document. Every report is
// self-describing: schema version, measurement timestamp and the git
// revision it was taken at, so the perf trajectory across PRs can be
// reconstructed from the files alone.
type BenchReport struct {
	SchemaVersion int          `json:"schema_version"`
	GoVersion     string       `json:"go_version"`
	GOMAXPROCS    int          `json:"gomaxprocs"`
	Timestamp     string       `json:"timestamp"`
	GitRevision   string       `json:"git_revision,omitempty"`
	Entries       []BenchEntry `json:"benchmarks"`
}

// NewBenchReport stamps a report with the schema version and the runtime
// environment (Go version, GOMAXPROCS, UTC timestamp, git revision).
func NewBenchReport(entries []BenchEntry) BenchReport {
	return BenchReport{
		SchemaVersion: BenchSchemaVersion,
		GoVersion:     runtime.Version(),
		GOMAXPROCS:    runtime.GOMAXPROCS(0),
		Timestamp:     time.Now().UTC().Format(time.RFC3339),
		GitRevision:   GitRevision(),
		Entries:       entries,
	}
}

// GitRevision returns the short hash of the current HEAD, or "" when the
// working directory is not a git checkout (or git is unavailable) — reports
// written outside a checkout simply omit the stamp.
func GitRevision() string {
	out, err := exec.Command("git", "rev-parse", "--short", "HEAD").Output()
	if err != nil {
		return ""
	}
	return strings.TrimSpace(string(out))
}

// WriteBenchJSON writes the report as indented JSON.
func WriteBenchJSON(w io.Writer, r BenchReport) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(r); err != nil {
		return fmt.Errorf("perf: writing bench JSON: %w", err)
	}
	return nil
}

// ReadBenchJSON decodes a report written by WriteBenchJSON. Version-1
// documents (no schema_version field) are accepted and normalized to
// version 1; versions newer than BenchSchemaVersion are rejected.
func ReadBenchJSON(r io.Reader) (BenchReport, error) {
	var rep BenchReport
	if err := json.NewDecoder(r).Decode(&rep); err != nil {
		return BenchReport{}, fmt.Errorf("perf: reading bench JSON: %w", err)
	}
	if rep.SchemaVersion == 0 {
		rep.SchemaVersion = 1
	}
	if rep.SchemaVersion > BenchSchemaVersion {
		return BenchReport{}, fmt.Errorf("perf: bench JSON schema %d newer than supported %d", rep.SchemaVersion, BenchSchemaVersion)
	}
	return rep, nil
}

// ReadBenchFile loads BENCH_RESULTS.json from disk. A missing file is not
// an error: it returns an empty report, so callers can merge fresh entries
// into whatever history exists.
func ReadBenchFile(path string) (BenchReport, error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return BenchReport{SchemaVersion: BenchSchemaVersion}, nil
	}
	if err != nil {
		return BenchReport{}, fmt.Errorf("perf: opening %s: %w", path, err)
	}
	defer f.Close()
	return ReadBenchJSON(f)
}

// MergeEntries overlays fresh measurements onto existing ones: entries with
// a matching name are replaced in place (the measurement was redone), new
// names append in order. The existing slice is not mutated.
func MergeEntries(existing, fresh []BenchEntry) []BenchEntry {
	out := append([]BenchEntry(nil), existing...)
	index := make(map[string]int, len(out))
	for i, e := range out {
		index[e.Name] = i
	}
	for _, e := range fresh {
		if i, ok := index[e.Name]; ok {
			out[i] = e
		} else {
			index[e.Name] = len(out)
			out = append(out, e)
		}
	}
	return out
}

// FindEntry returns the entry with the given name, if present.
func FindEntry(entries []BenchEntry, name string) (BenchEntry, bool) {
	for _, e := range entries {
		if e.Name == name {
			return e, true
		}
	}
	return BenchEntry{}, false
}

// Speedup returns the throughput ratio between two entries (how many times
// faster b runs than a), or 0 if either is unmeasured.
func Speedup(a, b BenchEntry) float64 {
	if a.NsPerOp <= 0 || b.NsPerOp <= 0 {
		return 0
	}
	return a.NsPerOp / b.NsPerOp
}
