package perf

import (
	"bytes"
	"strings"
	"testing"
)

func TestBenchReportRoundTrip(t *testing.T) {
	entries := []BenchEntry{
		{Name: "eval/mnist-mlp/serial", NsPerOp: 1e6, ImagesPerSec: 3000, Iterations: 10, Workers: 1},
		{Name: "eval/mnist-mlp/parallel", NsPerOp: 2e5, ImagesPerSec: 15000, Iterations: 50, Workers: 8},
		{Name: "fleet/mnist-mlp/interactive", NsPerOp: 4.2e6, ImagesPerSec: 410, Iterations: 1200, Workers: 3,
			P50Ms: 3.1, P99Ms: 22.4, P999Ms: 48.9, SLOTargetMs: 50, SLOAttainment: 0.991, Shed: 17, Errors: 3},
	}
	rep := NewBenchReport(entries)
	if rep.SchemaVersion != BenchSchemaVersion {
		t.Fatalf("schema %d, want %d", rep.SchemaVersion, BenchSchemaVersion)
	}
	if rep.Timestamp == "" || rep.GoVersion == "" {
		t.Fatalf("unstamped report: %+v", rep)
	}
	var buf bytes.Buffer
	if err := WriteBenchJSON(&buf, rep); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBenchJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.SchemaVersion != rep.SchemaVersion || got.Timestamp != rep.Timestamp ||
		got.GitRevision != rep.GitRevision || len(got.Entries) != len(rep.Entries) {
		t.Fatalf("round trip changed report: %+v vs %+v", got, rep)
	}
	if got.Entries[0] != rep.Entries[0] || got.Entries[1] != rep.Entries[1] || got.Entries[2] != rep.Entries[2] {
		t.Fatalf("round trip changed entries: %+v", got.Entries)
	}
	if !got.Entries[2].IsFleet() || got.Entries[0].IsFleet() {
		t.Fatalf("IsFleet misclassified entries: %+v", got.Entries)
	}
}

// A version-2 document (pre fleet fields) still loads; the fleet fields
// simply decode to zero.
func TestReadBenchJSONVersion2(t *testing.T) {
	v2 := `{"schema_version":2,"go_version":"go1.24","gomaxprocs":8,"timestamp":"2026-01-01T00:00:00Z",` +
		`"benchmarks":[{"name":"x","ns_per_op":5,"allocs_per_op":0,"bytes_per_op":0,"iterations":1}]}`
	rep, err := ReadBenchJSON(strings.NewReader(v2))
	if err != nil {
		t.Fatal(err)
	}
	if rep.SchemaVersion != 2 || len(rep.Entries) != 1 || rep.Entries[0].IsFleet() {
		t.Fatalf("v2 document misread: %+v", rep)
	}
}

// A version-1 document (pre schema_version stamp) still loads, normalized
// to version 1; documents from the future are rejected.
func TestReadBenchJSONVersions(t *testing.T) {
	v1 := `{"go_version":"go1.22","gomaxprocs":8,"timestamp":"2026-01-01T00:00:00Z","benchmarks":[{"name":"x","ns_per_op":5,"allocs_per_op":0,"bytes_per_op":0,"iterations":1}]}`
	rep, err := ReadBenchJSON(strings.NewReader(v1))
	if err != nil {
		t.Fatal(err)
	}
	if rep.SchemaVersion != 1 || len(rep.Entries) != 1 {
		t.Fatalf("v1 document misread: %+v", rep)
	}
	future := `{"schema_version":99,"benchmarks":[]}`
	if _, err := ReadBenchJSON(strings.NewReader(future)); err == nil {
		t.Fatal("future schema accepted")
	}
	if _, err := ReadBenchJSON(strings.NewReader("garbage")); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestReadBenchFileMissing(t *testing.T) {
	rep, err := ReadBenchFile(t.TempDir() + "/nope.json")
	if err != nil {
		t.Fatal(err)
	}
	if rep.SchemaVersion != BenchSchemaVersion || len(rep.Entries) != 0 {
		t.Fatalf("missing file should yield empty current-schema report: %+v", rep)
	}
}

func TestMergeEntries(t *testing.T) {
	old := []BenchEntry{{Name: "a", NsPerOp: 1}, {Name: "b", NsPerOp: 2}}
	fresh := []BenchEntry{{Name: "b", NsPerOp: 20}, {Name: "c", NsPerOp: 3}}
	got := MergeEntries(old, fresh)
	if len(got) != 3 {
		t.Fatalf("merged %d entries, want 3", len(got))
	}
	if got[0].Name != "a" || got[1].Name != "b" || got[2].Name != "c" {
		t.Fatalf("merge order wrong: %+v", got)
	}
	if got[1].NsPerOp != 20 {
		t.Fatalf("b not replaced: %+v", got[1])
	}
	if old[1].NsPerOp != 2 {
		t.Fatal("existing slice mutated")
	}
	if _, ok := FindEntry(got, "c"); !ok {
		t.Fatal("FindEntry missed c")
	}
	if _, ok := FindEntry(got, "zzz"); ok {
		t.Fatal("FindEntry invented an entry")
	}
}
