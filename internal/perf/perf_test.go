package perf

import (
	"math"
	"testing"
	"testing/quick"
)

func TestEnergyTotals(t *testing.T) {
	r := RESPARCEnergy{Neuron: 1, Crossbar: 2, Peripherals: 3}
	if r.Total() != 6 {
		t.Fatalf("RESPARC total %v", r.Total())
	}
	c := CMOSEnergy{Core: 4, MemoryAccess: 5, MemoryLeakage: 6}
	if c.Total() != 15 {
		t.Fatalf("CMOS total %v", c.Total())
	}
}

func TestThroughput(t *testing.T) {
	r := Result{Latency: 0.5}
	if r.Throughput() != 2 {
		t.Fatalf("Throughput %v", r.Throughput())
	}
	if (Result{}).Throughput() != 0 {
		t.Fatal("zero latency should give zero throughput")
	}
}

func TestCompare(t *testing.T) {
	rp := Result{Network: "mnist", Energy: 2, Latency: 1}
	cm := Result{Network: "mnist", Energy: 1000, Latency: 380}
	c, err := Compare(rp, cm)
	if err != nil {
		t.Fatal(err)
	}
	if c.EnergyGain != 500 || c.Speedup != 380 {
		t.Fatalf("comparison %+v", c)
	}
	if _, err := Compare(Result{Network: "a", Energy: 1, Latency: 1}, Result{Network: "b"}); err == nil {
		t.Fatal("network mismatch accepted")
	}
	if _, err := Compare(Result{Network: "a"}, Result{Network: "a"}); err == nil {
		t.Fatal("zero RESPARC result accepted")
	}
}

func TestNormalize(t *testing.T) {
	out, err := Normalize([]float64{2, 4, 8}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != 1 || out[1] != 2 || out[2] != 4 {
		t.Fatalf("normalized %v", out)
	}
	if _, err := Normalize([]float64{1}, 0); err == nil {
		t.Fatal("zero reference accepted")
	}
}

func TestGeoMean(t *testing.T) {
	g, err := GeoMean([]float64{1, 100})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(g-10) > 1e-9 {
		t.Fatalf("GeoMean %v", g)
	}
	if _, err := GeoMean(nil); err == nil {
		t.Fatal("empty accepted")
	}
	if _, err := GeoMean([]float64{1, -1}); err == nil {
		t.Fatal("negative accepted")
	}
}

// Property: geometric mean lies between min and max.
func TestGeoMeanBounds(t *testing.T) {
	f := func(a, b, c float64) bool {
		clamp := func(x float64) float64 {
			x = math.Abs(x)
			if x > 1e100 || math.IsNaN(x) {
				x = math.Mod(x, 1e6)
				if math.IsNaN(x) {
					x = 1
				}
			}
			return x + 0.1
		}
		xs := []float64{clamp(a), clamp(b), clamp(c)}
		g, err := GeoMean(xs)
		if err != nil {
			return false
		}
		lo, hi := xs[0], xs[0]
		for _, x := range xs {
			if x < lo {
				lo = x
			}
			if x > hi {
				hi = x
			}
		}
		return g >= lo-1e-9 && g <= hi+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
