package bench

import (
	"testing"

	"resparc/internal/dataset"
	"resparc/internal/snn"
	"resparc/internal/tensor"
)

// findBenchmark returns the named Fig 10 benchmark.
func findBenchmark(tb testing.TB, name string) Benchmark {
	tb.Helper()
	for _, b := range All() {
		if b.Name == name {
			return b
		}
	}
	tb.Fatalf("benchmark %q not in Fig 10 suite", name)
	return Benchmark{}
}

// benchInputs draws the same synthetic dataset images, prepared and
// normalized the same way, as the experiments perfsuite behind
// BENCH_RESULTS.json (Config seed 1: dataset seed 101), so local benchmark
// numbers track the committed eval rows' workload including its sparsity.
func benchInputs(tb testing.TB, bm Benchmark, net *snn.Network, n int) []tensor.Vec {
	tb.Helper()
	set := dataset.Generate(bm.Dataset, n, 101)
	out := make([]tensor.Vec, len(set.Samples))
	for i, s := range set.Samples {
		in, err := PrepareInput(s.Input, set.Shape, net.Input)
		if err != nil {
			tb.Fatal(err)
		}
		out[i] = NormalizeIntensity(in)
	}
	return out
}

// benchEvalCNN measures the calibrated mnist-cnn Fig 10 network — the real
// workload behind BENCH_RESULTS.json's eval/mnist-cnn rows — through
// snn.RunBatch with the given options. One op classifies 3 images over 48
// timesteps on a single worker.
func benchEvalCNN(b *testing.B, opt snn.Options) {
	bm := findBenchmark(b, "mnist-cnn")
	net, err := bm.Build(1)
	if err != nil {
		b.Fatal(err)
	}
	inputs := benchInputs(b, bm, net, 3)
	base := snn.NewPoissonEncoder(EncoderPeak, 8)
	enc := func(i int) snn.Encoder { return base.ForkSeed(i) }
	opt.Workers = 1
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := snn.RunBatch(net, inputs, enc, 48, opt); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEvalMnistCNNSerial(b *testing.B) { benchEvalCNN(b, snn.Options{}) }

func BenchmarkEvalMnistCNNBatched(b *testing.B) { benchEvalCNN(b, snn.Options{Batch: 8}) }
