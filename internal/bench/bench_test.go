package bench

import (
	"math"
	"testing"

	"resparc/internal/bitvec"
	"resparc/internal/dataset"
	"resparc/internal/snn"
	"resparc/internal/tensor"
)

// The Fig 10 reproduction: every benchmark's neuron and synapse totals must
// match the published numbers within 0.1%.
func TestFig10Totals(t *testing.T) {
	for _, b := range All() {
		net, err := b.Build(1)
		if err != nil {
			t.Fatalf("%s: %v", b.Name, err)
		}
		if len(net.Layers) != b.PubLayers {
			t.Errorf("%s: %d layers, published %d", b.Name, len(net.Layers), b.PubLayers)
		}
		n := net.HiddenNeurons()
		s := net.Synapses()
		if rel(n, b.PubNeurons) > 0.001 {
			t.Errorf("%s: %d neurons, published %d (%.3f%%)", b.Name, n, b.PubNeurons, 100*rel(n, b.PubNeurons))
		}
		if rel(s, b.PubSynapses) > 0.001 {
			t.Errorf("%s: %d synapses, published %d (%.3f%%)", b.Name, s, b.PubSynapses, 100*rel(s, b.PubSynapses))
		}
	}
}

func rel(got, want int) float64 {
	return math.Abs(float64(got-want)) / float64(want)
}

func TestRosterShape(t *testing.T) {
	if len(All()) != 6 {
		t.Fatalf("%d benchmarks, want 6", len(All()))
	}
	if len(MLPs()) != 3 || len(CNNs()) != 3 {
		t.Fatal("family split broken")
	}
	for _, b := range MLPs() {
		if b.Connectivity != "MLP" {
			t.Fatalf("%s in MLP family", b.Name)
		}
	}
	for _, b := range CNNs() {
		if b.Connectivity != "CNN" {
			t.Fatalf("%s in CNN family", b.Name)
		}
	}
	seen := map[string]bool{}
	for _, b := range All() {
		if seen[b.Name] {
			t.Fatalf("duplicate %s", b.Name)
		}
		seen[b.Name] = true
	}
}

func TestByName(t *testing.T) {
	b, err := ByName("mnist-mlp")
	if err != nil || b.Name != "mnist-mlp" {
		t.Fatalf("ByName: %v %v", b, err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Fatal("unknown name accepted")
	}
}

func TestBuildDeterministic(t *testing.T) {
	b, _ := ByName("mnist-mlp")
	n1, err := b.Build(7)
	if err != nil {
		t.Fatal(err)
	}
	n2, err := b.Build(7)
	if err != nil {
		t.Fatal(err)
	}
	for li := range n1.Layers {
		for i := range n1.Layers[li].W.Data {
			if n1.Layers[li].W.Data[i] != n2.Layers[li].W.Data[i] {
				t.Fatal("same seed produced different weights")
			}
		}
	}
	n3, _ := b.Build(8)
	if n3.Layers[0].W.Data[0] == n1.Layers[0].W.Data[0] {
		t.Fatal("different seeds produced identical first weight")
	}
}

// Threshold balancing must produce live but not saturated hidden-layer
// spike rates on real synthetic inputs — the statistic the Figs 11-13
// simulations stand on.
func TestSpikeRatesHealthy(t *testing.T) {
	for _, b := range []string{"mnist-mlp", "mnist-cnn"} {
		bm, _ := ByName(b)
		net, err := bm.Build(2)
		if err != nil {
			t.Fatal(err)
		}
		set := dataset.Generate(bm.Dataset, 3, 3)
		st := snn.NewState(net)
		enc := snn.NewPoissonEncoder(0.6, 4)
		const steps = 40
		spikes := make([]int, len(net.Layers))
		for _, smp := range set.Samples {
			in, err := PrepareInput(smp.Input, set.Shape, net.Input)
			if err != nil {
				t.Fatal(err)
			}
			st.Reset()
			ibv := bitvec.New(len(in))
			for s := 0; s < steps; s++ {
				enc.Encode(in, ibv)
				st.Step(ibv)
				for li := range net.Layers {
					spikes[li] += st.LayerSpikes(li).Count()
				}
			}
		}
		for li, l := range net.Layers {
			rate := float64(spikes[li]) / float64(l.OutSize()*steps*len(set.Samples))
			if rate < 0.005 || rate > 0.6 {
				t.Errorf("%s layer %d (%s): spike rate %.4f out of healthy band", b, li, l.Name, rate)
			}
		}
	}
}

func TestPrepareInput(t *testing.T) {
	// RGB -> grayscale flat.
	from := tensor.Shape3{H: 2, W: 2, C: 3}
	img := tensor.Vec{
		0.3, 0.6, 0.9, // (0,0)
		1, 1, 1, // (0,1)
		0, 0, 0, // (1,0)
		0.5, 0.5, 0.5, // (1,1)
	}
	out, err := PrepareInput(img, from, tensor.Shape3{H: 1, W: 1, C: 4})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(out[0]-0.6) > 1e-12 || out[1] != 1 || out[2] != 0 || out[3] != 0.5 {
		t.Fatalf("grayscale flat = %v", out)
	}
	// RGB -> grayscale same spatial shape.
	out, err = PrepareInput(img, from, tensor.Shape3{H: 2, W: 2, C: 1})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(out[0]-0.6) > 1e-12 {
		t.Fatalf("grayscale = %v", out)
	}
	// Identity.
	same, err := PrepareInput(img, from, from)
	if err != nil || &same[0] != &img[0] {
		t.Fatal("identity must return the input")
	}
	// Incompatible.
	if _, err := PrepareInput(img, from, tensor.Shape3{H: 5, W: 5, C: 1}); err == nil {
		t.Fatal("incompatible shapes accepted")
	}
}
