// Package bench defines the six SNN benchmarks of the paper's Fig 10: one
// MLP and one CNN for each recognition application (digit recognition /
// MNIST, house-number recognition / SVHN, object classification /
// CIFAR-10).
//
// The paper publishes only the totals (layers / neurons / synapses). The
// layer shapes below were found by numerical search to match the published
// totals to within 0.02% under the counting convention used throughout this
// repository: neurons exclude the input layer; synapses count every
// (output, input-tap) connection, conv padding taps included. Package tests
// assert the match against the published numbers.
//
// Networks are materialized with synthetic weights whose sign mix and
// layer thresholds are balanced so spike rates stay in a realistic range —
// the architecture experiments (Figs 11-13) depend only on topology and
// spike statistics, not task accuracy. Accuracy experiments (Fig 14a) use
// separately trained networks (internal/ann + internal/snn).
package bench

import (
	"fmt"
	"math/rand"

	"resparc/internal/bitvec"
	"resparc/internal/dataset"
	"resparc/internal/snn"
	"resparc/internal/tensor"
)

// Benchmark is one Fig 10 row.
type Benchmark struct {
	// Name is the short identifier, e.g. "mnist-mlp".
	Name string
	// App is the application label of Fig 10.
	App string
	// Dataset selects the synthetic input family.
	Dataset dataset.Kind
	// Connectivity is "MLP" or "CNN".
	Connectivity string
	// Published Fig 10 totals.
	PubLayers, PubNeurons, PubSynapses int
	// HiddenRate is the target spike rate of hidden layers used for
	// threshold balancing (CNNs run hotter: their windows see foreground,
	// §5.3).
	HiddenRate float64

	build func(seed int64) (*snn.Network, error)
}

// Build materializes the network with deterministic synthetic weights.
func (b Benchmark) Build(seed int64) (*snn.Network, error) { return b.build(seed) }

// All returns the six benchmarks in Fig 10's order.
func All() []Benchmark {
	return []Benchmark{
		svhnMLP(), svhnCNN(),
		mnistMLP(), mnistCNN(),
		cifarMLP(), cifarCNN(),
	}
}

// MLPs returns the three MLP benchmarks (Fig 11 b/d panels order: MNIST,
// SVHN, CIFAR-10).
func MLPs() []Benchmark { return []Benchmark{mnistMLP(), svhnMLP(), cifarMLP()} }

// CNNs returns the three CNN benchmarks (Fig 11 a/c panels order).
func CNNs() []Benchmark { return []Benchmark{mnistCNN(), svhnCNN(), cifarCNN()} }

// ByName finds a benchmark.
func ByName(name string) (Benchmark, error) {
	for _, b := range All() {
		if b.Name == name {
			return b, nil
		}
	}
	return Benchmark{}, fmt.Errorf("bench: unknown benchmark %q", name)
}

func mnistMLP() Benchmark {
	return Benchmark{
		Name: "mnist-mlp", App: "Digit Recognition", Dataset: dataset.Digits,
		Connectivity: "MLP", PubLayers: 4, PubNeurons: 2378, PubSynapses: 1902400,
		HiddenRate: 0.08,
		build: func(seed int64) (*snn.Network, error) {
			return buildMLP("mnist-mlp", 784, []int{634, 1134, 600}, 0.08, inputRateOf(dataset.Digits), seed)
		},
	}
}

func svhnMLP() Benchmark {
	return Benchmark{
		Name: "svhn-mlp", App: "House Number Recognition", Dataset: dataset.StreetDigits,
		Connectivity: "MLP", PubLayers: 4, PubNeurons: 2778, PubSynapses: 2778000,
		HiddenRate: 0.08,
		build: func(seed int64) (*snn.Network, error) {
			return buildMLP("svhn-mlp", 1024, []int{850, 1264, 654}, 0.08, inputRateOf(dataset.StreetDigits), seed)
		},
	}
}

func cifarMLP() Benchmark {
	return Benchmark{
		Name: "cifar-mlp", App: "Object Classification", Dataset: dataset.Objects,
		Connectivity: "MLP", PubLayers: 5, PubNeurons: 3778, PubSynapses: 3778000,
		HiddenRate: 0.08,
		build: func(seed int64) (*snn.Network, error) {
			return buildMLP("cifar-mlp", 1024, []int{232, 1832, 1664, 40}, 0.08, inputRateOf(dataset.Objects), seed)
		},
	}
}

func mnistCNN() Benchmark {
	return Benchmark{
		Name: "mnist-cnn", App: "Digit Recognition", Dataset: dataset.Digits,
		Connectivity: "CNN", PubLayers: 6, PubNeurons: 66778, PubSynapses: 1484288,
		HiddenRate: 0.15,
		build: func(seed int64) (*snn.Network, error) {
			return buildCNN("mnist-cnn", tensor.Shape3{H: 28, W: 28, C: 1}, 3, 66, 8, 86, 0.15, inputRateOf(dataset.Digits), seed)
		},
	}
}

func svhnCNN() Benchmark {
	return Benchmark{
		Name: "svhn-cnn", App: "House Number Recognition", Dataset: dataset.StreetDigits,
		Connectivity: "CNN", PubLayers: 6, PubNeurons: 124570, PubSynapses: 2941952,
		HiddenRate: 0.15,
		build: func(seed int64) (*snn.Network, error) {
			return buildCNN("svhn-cnn", tensor.Shape3{H: 32, W: 32, C: 1}, 3, 95, 8, 414, 0.15, inputRateOf(dataset.StreetDigits), seed)
		},
	}
}

func cifarCNN() Benchmark {
	return Benchmark{
		Name: "cifar-cnn", App: "Object Classification", Dataset: dataset.Objects,
		Connectivity: "CNN", PubLayers: 6, PubNeurons: 231066, PubSynapses: 5524480,
		HiddenRate: 0.15,
		build: func(seed int64) (*snn.Network, error) {
			return buildCNN("cifar-cnn", tensor.Shape3{H: 32, W: 32, C: 1}, 3, 178, 8, 796, 0.15, inputRateOf(dataset.Objects), seed)
		},
	}
}

// EncoderPeak is the Poisson encoder peak probability assumed when
// estimating input spike rates for threshold balancing.
const EncoderPeak = 0.8

// TargetMeanIntensity is the per-image mean intensity the encoder gain is
// normalized to. Rate encoders in SNN pipelines are gain-calibrated per
// dataset so total input spike counts are comparable; normalization scales
// intensities (zeros stay zero, so the zero-run structure that drives the
// event-driven savings of Fig 13 is preserved).
const TargetMeanIntensity = 0.15

// inputRateOf is the balanced input spike rate every benchmark is
// calibrated against: the normalized mean intensity times the encoder peak.
func inputRateOf(dataset.Kind) float64 { return TargetMeanIntensity * EncoderPeak }

// NormalizeIntensity rescales an image so its mean intensity is
// TargetMeanIntensity, clipping at 1. All-black images are returned as-is.
func NormalizeIntensity(img tensor.Vec) tensor.Vec {
	var sum float64
	for _, v := range img {
		sum += v
	}
	mean := sum / float64(len(img))
	if mean <= 0 {
		return img
	}
	scale := TargetMeanIntensity / mean
	out := tensor.NewVec(len(img))
	for i, v := range img {
		x := v * scale
		if x > 1 {
			x = 1
		}
		out[i] = x
	}
	return out
}

// fillWeights draws synaptic weights with a positive-skewed sign mix (70%
// excitatory) and returns their mean — the basis of threshold balancing.
func fillWeights(w *tensor.Mat, rng *rand.Rand) float64 {
	var sum float64
	for i := range w.Data {
		var v float64
		if rng.Float64() < 0.7 {
			v = rng.Float64() * 0.1
		} else {
			v = -rng.Float64() * 0.05
		}
		w.Data[i] = v
		sum += v
	}
	return sum / float64(len(w.Data))
}

// analyticThreshold seeds the calibration: with reset-by-subtraction,
// rate_out ≈ fanIn * rate_in * E[w] / threshold.
func analyticThreshold(fanIn int, rateIn, meanW, rateOut float64) float64 {
	th := float64(fanIn) * rateIn * meanW / rateOut
	if th < 1e-3 {
		th = 1e-3
	}
	return th
}

// builder calibrates thresholds layer by layer: it carries a short spike
// train at the current network frontier and rescales each new layer's
// threshold until its measured output rate hits the target. The analytic
// seed alone drifts through depth (inhibitory weights make rates decay),
// so two multiplicative corrections are applied.
type builder struct {
	rng    *rand.Rand
	train  []*bitvec.Bits
	layers []*snn.Layer
}

const calibSteps = 24

func newBuilder(inputSize int, inputRate float64, rng *rand.Rand) *builder {
	b := &builder{rng: rng}
	for t := 0; t < calibSteps; t++ {
		bits := bitvec.New(inputSize)
		for i := 0; i < inputSize; i++ {
			if rng.Float64() < inputRate {
				bits.Set(i)
			}
		}
		b.train = append(b.train, bits)
	}
	return b
}

// measureRate runs the single layer over the frontier train with the given
// threshold and returns the mean output spike rate.
func (b *builder) measureRate(l *snn.Layer, th float64) (float64, error) {
	old := l.Threshold
	l.Threshold = th
	defer func() { l.Threshold = old }()
	net, err := snn.NewNetwork("calib", l.In, l)
	if err != nil {
		return 0, err
	}
	st := snn.NewState(net)
	spikes := 0
	for _, in := range b.train {
		spikes += st.Step(in).Count()
	}
	return float64(spikes) / float64(l.OutSize()*len(b.train)), nil
}

// add calibrates the layer's threshold toward targetRate (skipped for pool
// layers, whose 0.499 threshold is rate-preserving by construction), then
// advances the frontier train through it.
func (b *builder) add(l *snn.Layer, targetRate float64) error {
	if l.Kind != snn.PoolLayer && targetRate > 0 {
		th := l.Threshold
		for iter := 0; iter < 2; iter++ {
			r, err := b.measureRate(l, th)
			if err != nil {
				return err
			}
			if r <= 0 {
				th /= 4 // too cold to measure; thaw aggressively
				continue
			}
			th *= r / targetRate
			if th < 1e-3 {
				th = 1e-3
			}
		}
		l.Threshold = th
	}
	// Advance the frontier.
	net, err := snn.NewNetwork("calib", l.In, l)
	if err != nil {
		return err
	}
	st := snn.NewState(net)
	next := make([]*bitvec.Bits, len(b.train))
	for t, in := range b.train {
		next[t] = st.Step(in).Clone()
	}
	b.train = next
	b.layers = append(b.layers, l)
	return nil
}

func buildMLP(name string, input int, hidden []int, rate, inputRate float64, seed int64) (*snn.Network, error) {
	rng := rand.New(rand.NewSource(seed))
	b := newBuilder(input, inputRate, rng)
	sizes := append(append([]int{input}, hidden...), 10)
	rateIn := inputRate
	for i := 0; i+1 < len(sizes); i++ {
		in, out := sizes[i], sizes[i+1]
		w := tensor.NewMat(out, in)
		meanW := fillWeights(w, rng)
		l, err := snn.NewDense(fmt.Sprintf("%s/fc%d", name, i), in, out, w,
			analyticThreshold(in, rateIn, meanW, rate))
		if err != nil {
			return nil, err
		}
		if err := b.add(l, rate); err != nil {
			return nil, err
		}
		rateIn = rate
	}
	return snn.NewNetwork(name, tensor.Shape3{H: 1, W: 1, C: input}, b.layers...)
}

// buildCNN constructs the 6-layer family: conv kxk (same padding) x c1 ->
// pool2 -> conv 3x3 (same padding) x c2 -> pool2 -> fc f -> fc 10.
func buildCNN(name string, in tensor.Shape3, k, c1, c2, f int, rate, inputRate float64, seed int64) (*snn.Network, error) {
	rng := rand.New(rand.NewSource(seed))
	b := newBuilder(in.Size(), inputRate, rng)

	g1 := tensor.ConvGeom{In: in, K: k, Stride: 1, Pad: k / 2, OutC: c1}
	w1 := tensor.NewMat(c1, g1.FanIn())
	m1 := fillWeights(w1, rng)
	conv1, err := snn.NewConv(name+"/conv1", g1, w1, analyticThreshold(g1.FanIn(), inputRate, m1, rate))
	if err != nil {
		return nil, err
	}
	if err := b.add(conv1, rate); err != nil {
		return nil, err
	}

	pool1, err := snn.NewPool(name+"/pool1", conv1.Out, 2, 0.499)
	if err != nil {
		return nil, err
	}
	if err := b.add(pool1, 0); err != nil {
		return nil, err
	}

	g2 := tensor.ConvGeom{In: pool1.Out, K: 3, Stride: 1, Pad: 1, OutC: c2}
	w2 := tensor.NewMat(c2, g2.FanIn())
	m2 := fillWeights(w2, rng)
	conv2, err := snn.NewConv(name+"/conv2", g2, w2, analyticThreshold(g2.FanIn(), rate, m2, rate))
	if err != nil {
		return nil, err
	}
	if err := b.add(conv2, rate); err != nil {
		return nil, err
	}

	pool2, err := snn.NewPool(name+"/pool2", conv2.Out, 2, 0.499)
	if err != nil {
		return nil, err
	}
	if err := b.add(pool2, 0); err != nil {
		return nil, err
	}

	fcIn := pool2.OutSize()
	wf := tensor.NewMat(f, fcIn)
	mf := fillWeights(wf, rng)
	fc1, err := snn.NewDense(name+"/fc1", fcIn, f, wf, analyticThreshold(fcIn, rate, mf, rate))
	if err != nil {
		return nil, err
	}
	fc1.In = pool2.Out
	if err := b.add(fc1, rate); err != nil {
		return nil, err
	}

	wo := tensor.NewMat(10, f)
	mo := fillWeights(wo, rng)
	fc2, err := snn.NewDense(name+"/fc2", f, 10, wo, analyticThreshold(f, rate, mo, rate))
	if err != nil {
		return nil, err
	}
	if err := b.add(fc2, rate); err != nil {
		return nil, err
	}
	return snn.NewNetwork(name, in, b.layers...)
}

// PrepareInput adapts a dataset sample to the network's input shape: RGB
// images collapse to grayscale (channel mean) when the network expects one
// channel. It returns an error for any other mismatch.
func PrepareInput(img tensor.Vec, from tensor.Shape3, to tensor.Shape3) (tensor.Vec, error) {
	if from == to {
		return img, nil
	}
	if from.H == to.H && from.W == to.W && to.C == 1 && from.C > 1 {
		out := tensor.NewVec(to.Size())
		for y := 0; y < from.H; y++ {
			for x := 0; x < from.W; x++ {
				var sum float64
				for c := 0; c < from.C; c++ {
					sum += img[from.Index(y, x, c)]
				}
				out[to.Index(y, x, 0)] = sum / float64(from.C)
			}
		}
		return out, nil
	}
	// MLPs flatten: accept any same-size flat reshape.
	if from.Size() == to.Size() {
		return img, nil
	}
	// Grayscale collapse followed by flatten (e.g. 32x32x3 -> 1x1x1024).
	if to.Size() == from.H*from.W && from.C > 1 {
		out := tensor.NewVec(to.Size())
		for y := 0; y < from.H; y++ {
			for x := 0; x < from.W; x++ {
				var sum float64
				for c := 0; c < from.C; c++ {
					sum += img[from.Index(y, x, c)]
				}
				out[y*from.W+x] = sum / float64(from.C)
			}
		}
		return out, nil
	}
	return nil, fmt.Errorf("bench: cannot adapt input %v to %v", from, to)
}
