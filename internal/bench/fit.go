package bench

import (
	"fmt"
	"math"
)

// Topology fitting: the paper's Fig 10 publishes only per-network totals
// (layers / neurons / synapses). The functions here search layer shapes
// matching those totals under this repository's counting convention —
// they are the tool that produced the shapes hard-coded in this package
// (DESIGN.md §5), shipped so the reconstruction is reproducible and so
// users can fit their own paper-style benchmark specs.

// FitMLP finds hidden-layer widths (hidden layers count = layers-1, plus
// the 10-wide classifier) whose neuron total equals wantNeurons exactly and
// whose synapse count is as close as possible to wantSynapses. It returns
// the hidden widths and the achieved synapse count.
func FitMLP(input, layers, classes, wantNeurons, wantSynapses int) ([]int, int, error) {
	nHidden := layers - 1
	if nHidden < 1 || nHidden > 4 {
		return nil, 0, fmt.Errorf("bench: FitMLP supports 2-5 weight layers, got %d", layers)
	}
	hsum := wantNeurons - classes
	if hsum < nHidden {
		return nil, 0, fmt.Errorf("bench: %d neurons cannot fill %d hidden layers", wantNeurons, nHidden)
	}
	synapses := func(hs []int) int {
		s := 0
		prev := input
		for _, h := range hs {
			s += prev * h
			prev = h
		}
		return s + prev*classes
	}
	best := math.MaxInt
	var bestHS []int
	consider := func(hs []int) {
		s := synapses(hs)
		d := s - wantSynapses
		if d < 0 {
			d = -d
		}
		if d < best {
			best = d
			bestHS = append([]int(nil), hs...)
		}
	}
	const step = 2
	switch nHidden {
	case 1:
		consider([]int{hsum})
	case 2:
		for h1 := 1; h1 < hsum; h1 += step {
			consider([]int{h1, hsum - h1})
		}
	case 3:
		for h1 := step; h1 < hsum; h1 += step {
			for h2 := step; h1+h2 < hsum; h2 += step {
				consider([]int{h1, h2, hsum - h1 - h2})
			}
		}
	case 4:
		for h1 := step; h1 < hsum; h1 += 4 {
			for h2 := step; h1+h2 < hsum; h2 += 4 {
				for h3 := step; h1+h2+h3 < hsum; h3 += 4 {
					consider([]int{h1, h2, h3, hsum - h1 - h2 - h3})
				}
			}
		}
	}
	if bestHS == nil {
		return nil, 0, fmt.Errorf("bench: no MLP shape found")
	}
	return bestHS, synapses(bestHS), nil
}

// CNNFit is the result of FitCNN for the 6-layer family used by every CNN
// benchmark: conv3x3 (same pad) x C1 -> pool2 -> conv3x3 (same pad) x C2 ->
// pool2 -> fc F -> fc 10.
type CNNFit struct {
	C1, C2, F         int
	Neurons, Synapses int
}

// FitCNN searches channel counts and classifier width for a square HxW
// grayscale input. The classifier width F is solved exactly from the neuron
// total for each (C1, C2), so the search is O(C1max * C2max).
func FitCNN(hw, wantNeurons, wantSynapses int) (CNNFit, error) {
	if hw < 8 || hw%4 != 0 {
		return CNNFit{}, fmt.Errorf("bench: FitCNN wants an input size divisible by 4, got %d", hw)
	}
	h2 := hw / 2
	h4 := hw / 4
	bestErr := math.MaxFloat64
	var bestFit CNNFit
	for c1 := 4; c1 <= 256; c1++ {
		for c2 := 4; c2 <= 256; c2++ {
			fixed := hw*hw*c1 + h2*h2*c1 + h2*h2*c2 + h4*h4*c2 + 10
			fExact := wantNeurons - fixed
			if fExact < 10 {
				continue
			}
			// Sweep the classifier width around the neuron-exact value:
			// widening trades a small neuron error for synapse accuracy.
			lo := fExact - 256
			if lo < 10 {
				lo = 10
			}
			for f := lo; f <= fExact+256; f++ {
				s := hw*hw*c1*9 + h2*h2*c1*4 + h2*h2*c2*9*c1 + h4*h4*c2*4 + h4*h4*c2*f + 10*f
				n := fixed + f
				en := math.Abs(float64(n-wantNeurons)) / float64(wantNeurons)
				es := math.Abs(float64(s-wantSynapses)) / float64(wantSynapses)
				e := math.Max(en, es)
				if e < bestErr {
					bestErr = e
					bestFit = CNNFit{C1: c1, C2: c2, F: f, Neurons: n, Synapses: s}
				}
			}
		}
	}
	if bestErr == math.MaxFloat64 {
		return CNNFit{}, fmt.Errorf("bench: no CNN shape found")
	}
	return bestFit, nil
}
