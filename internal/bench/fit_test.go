package bench

import (
	"math"
	"testing"
)

// The solver must reproduce shapes matching every published MLP total.
func TestFitMLPReproducesFig10(t *testing.T) {
	cases := []struct {
		name              string
		input, layers     int
		neurons, synapses int
	}{
		{"mnist-mlp", 784, 4, 2378, 1902400},
		{"svhn-mlp", 1024, 4, 2778, 2778000},
		{"cifar-mlp", 1024, 5, 3778, 3778000},
	}
	for _, c := range cases {
		hs, syn, err := FitMLP(c.input, c.layers, 10, c.neurons, c.synapses)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if len(hs) != c.layers-1 {
			t.Fatalf("%s: %d hidden layers", c.name, len(hs))
		}
		total := 10
		for _, h := range hs {
			if h < 1 {
				t.Fatalf("%s: non-positive width in %v", c.name, hs)
			}
			total += h
		}
		if total != c.neurons {
			t.Fatalf("%s: neurons %d != %d", c.name, total, c.neurons)
		}
		if rel := math.Abs(float64(syn-c.synapses)) / float64(c.synapses); rel > 0.001 {
			t.Fatalf("%s: synapses %d deviate %.4f from %d", c.name, syn, rel, c.synapses)
		}
	}
}

// The solver must reproduce the CNN family fits within 0.1%.
func TestFitCNNReproducesFig10(t *testing.T) {
	cases := []struct {
		name              string
		hw                int
		neurons, synapses int
	}{
		{"mnist-cnn", 28, 66778, 1484288},
		{"svhn-cnn", 32, 124570, 2941952},
		{"cifar-cnn", 32, 231066, 5524480},
	}
	for _, c := range cases {
		fit, err := FitCNN(c.hw, c.neurons, c.synapses)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		en := math.Abs(float64(fit.Neurons-c.neurons)) / float64(c.neurons)
		es := math.Abs(float64(fit.Synapses-c.synapses)) / float64(c.synapses)
		if en > 0.001 || es > 0.001 {
			t.Fatalf("%s: fit %+v deviates %.4f/%.4f", c.name, fit, en, es)
		}
	}
}

// The shipped mnist-cnn shape must be (one of) the solver's answers: the
// fit achieves at least the shipped shape's accuracy.
func TestFitMatchesShippedShapes(t *testing.T) {
	fit, err := FitCNN(28, 66778, 1484288)
	if err != nil {
		t.Fatal(err)
	}
	if fit.C1 != 66 || fit.C2 != 8 || fit.F != 86 {
		// A different optimum is acceptable only if strictly better.
		shippedN, shippedS := 66736, 1484972
		en := math.Abs(float64(fit.Neurons - 66778))
		es := math.Abs(float64(fit.Synapses - 1484288))
		if en > math.Abs(float64(shippedN-66778)) || es > math.Abs(float64(shippedS-1484288)) {
			t.Fatalf("fit %+v worse than the shipped shape", fit)
		}
	}
}

func TestFitValidation(t *testing.T) {
	if _, _, err := FitMLP(784, 1, 10, 2378, 1902400); err == nil {
		t.Fatal("1 layer accepted")
	}
	if _, _, err := FitMLP(784, 4, 10, 5, 100); err == nil {
		t.Fatal("impossible neuron budget accepted")
	}
	if _, err := FitCNN(30, 1000, 1000); err == nil {
		t.Fatal("non-divisible input accepted")
	}
}
