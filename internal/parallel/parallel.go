// Package parallel provides the shared worker-pool evaluation harness used
// by every batch classifier in the repo: the functional SNN evaluator
// (internal/snn), the RESPARC chip simulator (internal/core) and the CMOS
// baseline (internal/cmosbase).
//
// The harness fans item indices across a fixed set of workers. Determinism
// is the callers' contract, and it is structural, not scheduling-dependent:
// each item i writes only results[i], each worker owns its own scratch
// state,
// and any randomness is keyed by item index (see snn.PoissonEncoder.ForkSeed)
// — so the reduced outcome is bit-identical for any worker count.
package parallel

import "runtime"

// DefaultWorkers returns the default worker count: one per logical CPU.
func DefaultWorkers() int { return runtime.NumCPU() }

// Clamp normalizes a requested worker count against n items: non-positive
// requests become DefaultWorkers(), and the pool never exceeds the item
// count.
func Clamp(workers, n int) int {
	if workers < 1 {
		workers = DefaultWorkers()
	}
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// ForEach runs fn(worker, i) for every i in [0, n) across the given number
// of workers (clamped via Clamp). The worker id in [0, workers) lets callers
// maintain per-worker scratch state (simulation State, membrane buffers)
// that is reused across the items the worker processes. Items are handed out
// dynamically, so callers must not depend on which worker processes which
// item — only on the item index.
//
// With workers == 1 the items run in order on the calling goroutine; this is
// the serial reference path the equivalence tests compare against.
func ForEach(n, workers int, fn func(worker, i int)) {
	if n <= 0 {
		return
	}
	workers = Clamp(workers, n)
	if workers == 1 {
		for i := 0; i < n; i++ {
			fn(0, i)
		}
		return
	}
	next := make(chan int)
	done := make(chan struct{})
	for w := 0; w < workers; w++ {
		go func(worker int) {
			defer func() { done <- struct{}{} }()
			for i := range next {
				fn(worker, i)
			}
		}(w)
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	for w := 0; w < workers; w++ {
		<-done
	}
}
