package parallel

import (
	"sync/atomic"
	"testing"
)

func TestForEachCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 7, 64} {
		const n = 100
		var hits [n]int32
		ForEach(n, workers, func(_, i int) {
			atomic.AddInt32(&hits[i], 1)
		})
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, h)
			}
		}
	}
}

func TestForEachWorkerIDsInRange(t *testing.T) {
	const n, workers = 50, 4
	var bad int32
	ForEach(n, workers, func(w, _ int) {
		if w < 0 || w >= workers {
			atomic.AddInt32(&bad, 1)
		}
	})
	if bad != 0 {
		t.Fatalf("%d out-of-range worker ids", bad)
	}
}

func TestForEachSerialIsOrdered(t *testing.T) {
	var order []int
	ForEach(5, 1, func(w, i int) {
		if w != 0 {
			t.Fatalf("serial worker id %d", w)
		}
		order = append(order, i) // no race: single worker runs on the caller
	})
	for i, v := range order {
		if v != i {
			t.Fatalf("serial order %v", order)
		}
	}
}

func TestForEachEmpty(t *testing.T) {
	called := false
	ForEach(0, 8, func(_, _ int) { called = true })
	if called {
		t.Fatal("fn called for empty range")
	}
}

func TestClamp(t *testing.T) {
	if got := Clamp(8, 3); got != 3 {
		t.Fatalf("Clamp(8,3) = %d", got)
	}
	if got := Clamp(2, 100); got != 2 {
		t.Fatalf("Clamp(2,100) = %d", got)
	}
	if got := Clamp(0, 100); got != DefaultWorkers() && got != 100 {
		t.Fatalf("Clamp(0,100) = %d, want default workers (capped)", got)
	}
	if got := Clamp(0, 0); got != 1 {
		t.Fatalf("Clamp(0,0) = %d", got)
	}
}

func TestDefaultWorkersPositive(t *testing.T) {
	if DefaultWorkers() < 1 {
		t.Fatalf("DefaultWorkers() = %d", DefaultWorkers())
	}
}
