package serve

import (
	"net/http"
	"net/http/httptest"
	"strconv"
	"testing"
	"time"

	"resparc/internal/fault"
)

// The liveness/readiness split: a replica whose RESPARC circuit opens keeps
// answering /healthz 200 (the process is fine) but reports /readyz 503 with
// the per-(model, backend) breaker states in the body, so a load balancer
// stops routing to it *before* requests fail — and can see that the CMOS
// backend is still usable.
func TestReadinessFollowsBreakerState(t *testing.T) {
	reg := testRegistry(t)
	model, _ := reg.Get("tiny-mlp")
	cfg := DefaultConfig(reg)
	cfg.MaxWait = time.Millisecond
	cfg.BreakerThreshold = 1
	cfg.BreakerCooldown = time.Minute // hold the circuit open for the whole test
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Close()

	status := func(path string) (int, HealthResponse) {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		var h HealthResponse
		getJSON(t, ts.URL+path, &h)
		return resp.StatusCode, h
	}

	// Healthy: both probes 200, readiness says "ready".
	if code, h := status("/healthz"); code != http.StatusOK || h.Status != "ok" {
		t.Fatalf("healthz %d %q, want 200 ok", code, h.Status)
	}
	if code, h := status("/readyz"); code != http.StatusOK || h.Status != "ready" {
		t.Fatalf("readyz %d %q, want 200 ready", code, h.Status)
	}

	// Open the RESPARC circuit with one failing request.
	model.Chip.SetFaults(fault.Campaign{DeadMPEs: []int{0}})
	defer model.Chip.ClearFaults()
	resp, _, _ := postClassify(t, ts.URL, ClassifyRequest{
		Model: "tiny-mlp", Backend: "resparc", Input: testInput(model.Net.Input.Size(), 1),
	})
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("failing request: status %d, want 500", resp.StatusCode)
	}

	// Liveness is unaffected; readiness goes 503 and the body pins the
	// blame on (tiny-mlp, resparc) while cmos stays closed.
	if code, h := status("/healthz"); code != http.StatusOK || h.Status != "degraded" {
		t.Fatalf("healthz %d %q after breaker open, want 200 degraded", code, h.Status)
	}
	code, h := status("/readyz")
	if code != http.StatusServiceUnavailable || h.Status != "degraded" {
		t.Fatalf("readyz %d %q after breaker open, want 503 degraded", code, h.Status)
	}
	states := map[string]string{}
	for _, b := range h.Backends {
		states[b.Model+"/"+b.Backend] = b.State
	}
	if states["tiny-mlp/resparc"] != "open" {
		t.Fatalf("readyz body: tiny-mlp/resparc %q, want open (%v)", states["tiny-mlp/resparc"], states)
	}
	if states["tiny-mlp/cmos"] != "closed" {
		t.Fatalf("readyz body: tiny-mlp/cmos %q, want closed (%v)", states["tiny-mlp/cmos"], states)
	}
}

// Retry-After values carry jitter: repeated renders of the same backoff
// spread over [base, 1.5*base] seconds instead of synchronizing every
// rejected client on the same retry instant.
func TestRetryAfterJitter(t *testing.T) {
	const base = 10 * time.Second
	seen := map[int]bool{}
	for i := 0; i < 200; i++ {
		s := retryAfterSeconds(base)
		secs, err := strconv.Atoi(s)
		if err != nil {
			t.Fatalf("retry-after %q is not an integer", s)
		}
		if secs < 10 || secs > 15 {
			t.Fatalf("retry-after %d outside [10, 15] for a 10s backoff", secs)
		}
		seen[secs] = true
	}
	if len(seen) < 2 {
		t.Fatalf("200 renders produced only %v — jitter missing", seen)
	}
	// Sub-second backoffs still render at least 1 second.
	if s := retryAfterSeconds(10 * time.Millisecond); s == "0" {
		t.Fatalf("retry-after %q, want >= 1", s)
	}
}
