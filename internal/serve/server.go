package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"sync"
	"time"

	"resparc/internal/perf"
	"resparc/internal/tensor"
)

// Backend selects which architecture simulator answers a request.
type Backend string

const (
	// BackendRESPARC is the memristive-crossbar chip simulator.
	BackendRESPARC Backend = "resparc"
	// BackendCMOS is the optimized digital baseline.
	BackendCMOS Backend = "cmos"
)

// ParseBackend validates a wire-form backend name; empty selects the
// fallback.
func ParseBackend(s string, fallback Backend) (Backend, error) {
	switch Backend(s) {
	case "":
		return fallback, nil
	case BackendRESPARC:
		return BackendRESPARC, nil
	case BackendCMOS:
		return BackendCMOS, nil
	}
	return "", fmt.Errorf("serve: unknown backend %q (want %q or %q)", s, BackendRESPARC, BackendCMOS)
}

// maxRequestBody bounds /v1/classify request bodies (the largest Fig 10
// input is 3072 intensities; 8 MiB leaves generous headroom).
const maxRequestBody = 8 << 20

// Config configures a Server.
type Config struct {
	// Registry holds the servable models; required.
	Registry *Registry
	// DefaultBackend answers requests that do not name a backend.
	DefaultBackend Backend
	// MaxBatch is the micro-batcher's flush size.
	MaxBatch int
	// MaxWait is how long a non-full batch waits for company.
	MaxWait time.Duration
	// QueueSize bounds each (model, backend) queue; a full queue is a 429.
	QueueSize int
	// Workers is the simulator worker-pool size per batch (<= 0: one per
	// CPU).
	Workers int
}

// DefaultConfig returns the serving defaults (batch 8, 2 ms wait, queue 64).
func DefaultConfig(reg *Registry) Config {
	return Config{
		Registry:       reg,
		DefaultBackend: BackendRESPARC,
		MaxBatch:       8,
		MaxWait:        2 * time.Millisecond,
		QueueSize:      64,
	}
}

// Server is the HTTP inference service: one micro-batcher per
// (model, backend) pair over the shared simulator pool.
type Server struct {
	cfg      Config
	metrics  *Metrics
	mux      *http.ServeMux
	batchers map[string]*batcher

	mu     sync.Mutex
	closed bool
}

// New builds a server over the registry's models. Batchers are created
// eagerly so queue-depth gauges exist from the first scrape.
func New(cfg Config) (*Server, error) {
	if cfg.Registry == nil {
		return nil, fmt.Errorf("serve: nil registry")
	}
	if len(cfg.Registry.Models()) == 0 {
		return nil, fmt.Errorf("serve: empty registry")
	}
	if cfg.DefaultBackend == "" {
		cfg.DefaultBackend = BackendRESPARC
	}
	if _, err := ParseBackend(string(cfg.DefaultBackend), ""); err != nil {
		return nil, err
	}
	if cfg.MaxBatch < 1 {
		cfg.MaxBatch = 8
	}
	if cfg.MaxWait <= 0 {
		cfg.MaxWait = 2 * time.Millisecond
	}
	if cfg.QueueSize < 1 {
		cfg.QueueSize = 64
	}
	s := &Server{
		cfg:      cfg,
		metrics:  NewMetrics(),
		mux:      http.NewServeMux(),
		batchers: make(map[string]*batcher),
	}
	for _, m := range cfg.Registry.Models() {
		for _, backend := range []Backend{BackendRESPARC, BackendCMOS} {
			model, backend := m, backend
			run := func(inputs []tensor.Vec, seeds []int64) ([]perf.Result, []int, error) {
				return model.ClassifyEach(backend, inputs, seeds, cfg.Workers)
			}
			b := newBatcher(cfg.QueueSize, cfg.MaxBatch, cfg.MaxWait, run, s.metrics.Batch)
			s.batchers[batcherKey(model.Name, backend)] = b
			s.metrics.RegisterQueue(model.Name, string(backend), b.depth)
		}
	}
	s.mux.HandleFunc("/v1/classify", s.handleClassify)
	s.mux.HandleFunc("/v1/models", s.handleModels)
	s.mux.Handle("/metrics", s.metrics)
	s.mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	return s, nil
}

func batcherKey(model string, backend Backend) string { return model + "\x00" + string(backend) }

// Handler returns the HTTP handler tree (mountable under httptest too).
func (s *Server) Handler() http.Handler { return s.mux }

// Metrics exposes the counters (for the load driver and tests).
func (s *Server) Metrics() *Metrics { return s.metrics }

// Close drains every batcher: admission stops (submissions return
// ErrClosed), in-flight and queued batches complete, and every admitted
// request receives its response before Close returns.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.mu.Unlock()
	for _, b := range s.batchers {
		b.close()
	}
}

// ClassifyRequest is the /v1/classify wire request.
type ClassifyRequest struct {
	// Model names a registry entry.
	Model string `json:"model"`
	// Backend is "resparc" or "cmos"; empty selects the server default.
	Backend string `json:"backend,omitempty"`
	// Input is the image as pixel intensities in [0, 1], length equal to
	// the model's input_size.
	Input []float64 `json:"input"`
	// Seed keys the request's Poisson spike stream. Equal (model, backend,
	// input, seed) tuples produce bit-identical responses at any
	// concurrency.
	Seed int64 `json:"seed,omitempty"`
}

// ClassifyResponse is the /v1/classify wire response.
type ClassifyResponse struct {
	Model      string      `json:"model"`
	Backend    string      `json:"backend"`
	Prediction int         `json:"prediction"`
	Perf       perf.Result `json:"perf"`
	// BatchSize is how many requests shared the micro-batch.
	BatchSize int `json:"batch_size"`
	// QueueMs is the time the request waited before its batch dispatched.
	QueueMs float64 `json:"queue_ms"`
}

type errorResponse struct {
	Error string `json:"error"`
}

func (s *Server) reply(w http.ResponseWriter, start time.Time, code int, body any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(body)
	s.metrics.Response(code, time.Since(start))
}

func (s *Server) replyError(w http.ResponseWriter, start time.Time, code int, format string, args ...any) {
	s.reply(w, start, code, errorResponse{Error: fmt.Sprintf(format, args...)})
}

func (s *Server) handleClassify(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	s.metrics.Request()
	if r.Method != http.MethodPost {
		s.replyError(w, start, http.StatusMethodNotAllowed, "POST required")
		return
	}
	var req ClassifyRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		s.replyError(w, start, http.StatusBadRequest, "decoding request: %v", err)
		return
	}
	model, ok := s.cfg.Registry.Get(req.Model)
	if !ok {
		s.replyError(w, start, http.StatusNotFound, "unknown model %q (see /v1/models)", req.Model)
		return
	}
	backend, err := ParseBackend(req.Backend, s.cfg.DefaultBackend)
	if err != nil {
		s.replyError(w, start, http.StatusBadRequest, "%v", err)
		return
	}
	if want := model.Net.Input.Size(); len(req.Input) != want {
		s.replyError(w, start, http.StatusBadRequest, "input length %d, model %q wants %d", len(req.Input), model.Name, want)
		return
	}
	input := make(tensor.Vec, len(req.Input))
	for i, x := range req.Input {
		if math.IsNaN(x) || x < 0 || x > 1 {
			s.replyError(w, start, http.StatusBadRequest, "input[%d] = %v outside [0, 1]", i, x)
			return
		}
		input[i] = x
	}
	job := &request{input: input, seed: req.Seed, done: make(chan response, 1)}
	if err := s.batchers[batcherKey(model.Name, backend)].submit(job); err != nil {
		switch {
		case errors.Is(err, ErrQueueFull):
			s.replyError(w, start, http.StatusTooManyRequests, "queue full for %s/%s, retry later", model.Name, backend)
		case errors.Is(err, ErrClosed):
			s.replyError(w, start, http.StatusServiceUnavailable, "server shutting down")
		default:
			s.replyError(w, start, http.StatusInternalServerError, "%v", err)
		}
		return
	}
	resp := <-job.done
	if resp.err != nil {
		s.replyError(w, start, http.StatusInternalServerError, "classification failed: %v", resp.err)
		return
	}
	s.reply(w, start, http.StatusOK, ClassifyResponse{
		Model:      model.Name,
		Backend:    string(backend),
		Prediction: resp.prediction,
		Perf:       resp.perf,
		BatchSize:  resp.batchSize,
		QueueMs:    float64(resp.queueWait) / float64(time.Millisecond),
	})
}

func (s *Server) handleModels(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET required", http.StatusMethodNotAllowed)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(struct {
		Models []ModelInfo `json:"models"`
	}{Models: s.cfg.Registry.Info()})
}
