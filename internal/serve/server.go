package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"net/http"
	"strconv"
	"sync"
	"time"

	"resparc/internal/perf"
	"resparc/internal/tensor"
)

// Backend selects which architecture simulator answers a request.
type Backend string

const (
	// BackendRESPARC is the memristive-crossbar chip simulator.
	BackendRESPARC Backend = "resparc"
	// BackendCMOS is the optimized digital baseline.
	BackendCMOS Backend = "cmos"
)

// ParseBackend validates a wire-form backend name against the always-present
// backends; empty selects the fallback. Per-model backends (e.g. the
// "resparc-x4" shard pipeline) are resolved against the model's own registry
// at request time, so this is only for static defaults like the CLI flag.
func ParseBackend(s string, fallback Backend) (Backend, error) {
	switch Backend(s) {
	case "":
		return fallback, nil
	case BackendRESPARC:
		return BackendRESPARC, nil
	case BackendCMOS:
		return BackendCMOS, nil
	}
	return "", fmt.Errorf("serve: unknown backend %q (want %q or %q)", s, BackendRESPARC, BackendCMOS)
}

// maxRequestBody bounds /v1/classify request bodies (the largest Fig 10
// input is 3072 intensities; 8 MiB leaves generous headroom).
const maxRequestBody = 8 << 20

// Config configures a Server.
type Config struct {
	// Registry holds the servable models; required.
	Registry *Registry
	// DefaultBackend answers requests that do not name a backend.
	DefaultBackend Backend
	// MaxBatch is the micro-batcher's flush size.
	MaxBatch int
	// MaxWait is how long a non-full batch waits for company.
	MaxWait time.Duration
	// QueueSize bounds each (model, backend) queue; a full queue is a 429.
	QueueSize int
	// Workers is the simulator worker-pool size per batch (<= 0: one per
	// CPU).
	Workers int
	// SimBatch is the simulator's batch-major group size: each flushed
	// micro-batch is cut into groups of up to SimBatch images integrated
	// together by one network instance (<= 1: per-image evaluation). Results
	// are bit-identical either way; this is a throughput knob.
	SimBatch int
	// RequestTimeout bounds a request end-to-end (enqueue through batch
	// completion); expiry answers 504 without waiting for the batch
	// (<= 0: 30 s).
	RequestTimeout time.Duration
	// BreakerThreshold is how many consecutive batch failures open a
	// (model, backend) circuit (<= 0: 3).
	BreakerThreshold int
	// BreakerCooldown is how long an open circuit rejects with 503 +
	// Retry-After before letting a probe through (<= 0: 2 s).
	BreakerCooldown time.Duration
}

// DefaultConfig returns the serving defaults (batch 8, 2 ms wait, queue 64,
// 30 s deadline, breaker opens after 3 failures with a 2 s cooldown).
func DefaultConfig(reg *Registry) Config {
	return Config{
		Registry:         reg,
		DefaultBackend:   BackendRESPARC,
		MaxBatch:         8,
		MaxWait:          2 * time.Millisecond,
		QueueSize:        64,
		RequestTimeout:   30 * time.Second,
		BreakerThreshold: 3,
		BreakerCooldown:  2 * time.Second,
	}
}

// Server is the HTTP inference service: one micro-batcher per
// (model, backend) pair over the shared simulator pool.
type Server struct {
	cfg      Config
	metrics  *Metrics
	mux      *http.ServeMux
	batchers map[string]*batcher
	breakers map[string]*breaker

	mu     sync.Mutex
	closed bool

	// Self-healing scheduler state (see StartRepair).
	repairers  []*Repairer
	repairStop chan struct{}
	repairWG   sync.WaitGroup
}

// New builds a server over the registry's models. Batchers are created
// eagerly so queue-depth gauges exist from the first scrape.
func New(cfg Config) (*Server, error) {
	if cfg.Registry == nil {
		return nil, fmt.Errorf("serve: nil registry")
	}
	if len(cfg.Registry.Models()) == 0 {
		return nil, fmt.Errorf("serve: empty registry")
	}
	if cfg.DefaultBackend == "" {
		cfg.DefaultBackend = BackendRESPARC
	}
	if _, err := ParseBackend(string(cfg.DefaultBackend), ""); err != nil {
		return nil, err
	}
	if cfg.MaxBatch < 1 {
		cfg.MaxBatch = 8
	}
	if cfg.MaxWait <= 0 {
		cfg.MaxWait = 2 * time.Millisecond
	}
	if cfg.QueueSize < 1 {
		cfg.QueueSize = 64
	}
	if cfg.RequestTimeout <= 0 {
		cfg.RequestTimeout = 30 * time.Second
	}
	s := &Server{
		cfg:      cfg,
		metrics:  NewMetrics(),
		mux:      http.NewServeMux(),
		batchers: make(map[string]*batcher),
		breakers: make(map[string]*breaker),
	}
	for _, m := range cfg.Registry.Models() {
		for _, name := range m.Backends() {
			model, backend := m, Backend(name)
			run := func(inputs []tensor.Vec, seeds []int64) ([]perf.Result, []int, error) {
				return model.ClassifyEach(backend, inputs, seeds, cfg.Workers, cfg.SimBatch)
			}
			br := newBreaker(cfg.BreakerThreshold, cfg.BreakerCooldown)
			onResult := func(err error) {
				if err != nil {
					br.onFailure()
					s.metrics.BatchFailure()
				} else {
					br.onSuccess()
				}
			}
			b := newBatcher(cfg.QueueSize, cfg.MaxBatch, cfg.MaxWait, run, s.metrics.Batch, onResult)
			key := batcherKey(model.Name, backend)
			s.batchers[key] = b
			s.breakers[key] = br
			s.metrics.RegisterQueue(model.Name, string(backend), b.depth)
			s.metrics.RegisterBreaker(model.Name, string(backend), br.State)
		}
	}
	s.mux.HandleFunc("/v1/classify", s.handleClassify)
	s.mux.HandleFunc("/v1/models", s.handleModels)
	s.mux.Handle("/metrics", s.metrics)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/readyz", s.handleReadyz)
	return s, nil
}

func batcherKey(model string, backend Backend) string { return model + "\x00" + string(backend) }

// Handler returns the HTTP handler tree (mountable under httptest too),
// wrapped in panic-recovery middleware: a handler panic becomes a 500 and a
// resparc_serve_panics_total increment instead of a dropped connection.
func (s *Server) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if p := recover(); p != nil {
				s.metrics.Panic()
				w.Header().Set("Content-Type", "application/json")
				w.WriteHeader(http.StatusInternalServerError)
				_ = json.NewEncoder(w).Encode(errorResponse{Error: errorBody{
					Code: ErrCodeInternal, Message: fmt.Sprintf("internal error: %v", p),
				}})
			}
		}()
		s.mux.ServeHTTP(w, r)
	})
}

// Metrics exposes the counters (for the load driver and tests).
func (s *Server) Metrics() *Metrics { return s.metrics }

// Close drains every batcher: admission stops (submissions return
// ErrClosed), in-flight and queued batches complete, and every admitted
// request receives its response before Close returns. The repair scheduler
// stops first so draining batches never contend with a repair pass.
func (s *Server) Close() {
	s.StopRepair()
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.mu.Unlock()
	for _, b := range s.batchers {
		b.close()
	}
}

// ClassifyRequest is the /v1/classify wire request.
type ClassifyRequest struct {
	// Model names a registry entry.
	Model string `json:"model"`
	// Backend is "resparc" or "cmos"; empty selects the server default.
	Backend string `json:"backend,omitempty"`
	// Input is the image as pixel intensities in [0, 1], length equal to
	// the model's input_size.
	Input []float64 `json:"input"`
	// Seed keys the request's Poisson spike stream. Equal (model, backend,
	// input, seed) tuples produce bit-identical responses at any
	// concurrency.
	Seed int64 `json:"seed,omitempty"`
}

// ClassifyResponse is the /v1/classify wire response.
type ClassifyResponse struct {
	Model      string      `json:"model"`
	Backend    string      `json:"backend"`
	Prediction int         `json:"prediction"`
	Perf       perf.Result `json:"perf"`
	// BatchSize is how many requests shared the micro-batch.
	BatchSize int `json:"batch_size"`
	// QueueMs is the time the request waited before its batch dispatched.
	QueueMs float64 `json:"queue_ms"`
}

// Error codes of the JSON error envelope: every non-2xx response is
// {"error":{"code","message"}} with a stable machine-readable code, so
// clients can branch without parsing message text.
const (
	ErrCodeMethodNotAllowed = "method_not_allowed"
	ErrCodeBadRequest       = "bad_request"
	ErrCodeModelNotFound    = "model_not_found"
	ErrCodeCircuitOpen      = "circuit_open"
	ErrCodeQueueFull        = "queue_full"
	ErrCodeDraining         = "draining"
	ErrCodeTimeout          = "timeout"
	ErrCodeInternal         = "internal"
)

// errorBody is the envelope's payload.
type errorBody struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

type errorResponse struct {
	Error errorBody `json:"error"`
}

func (s *Server) reply(w http.ResponseWriter, start time.Time, code int, body any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(body)
	s.metrics.Response(code, time.Since(start))
}

func (s *Server) replyError(w http.ResponseWriter, start time.Time, code int, errCode, format string, args ...any) {
	s.reply(w, start, code, errorResponse{Error: errorBody{Code: errCode, Message: fmt.Sprintf(format, args...)}})
}

func (s *Server) handleClassify(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	s.metrics.Request()
	if r.Method != http.MethodPost {
		s.replyError(w, start, http.StatusMethodNotAllowed, ErrCodeMethodNotAllowed, "POST required")
		return
	}
	var req ClassifyRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		s.replyError(w, start, http.StatusBadRequest, ErrCodeBadRequest, "decoding request: %v", err)
		return
	}
	model, ok := s.cfg.Registry.Get(req.Model)
	if !ok {
		s.replyError(w, start, http.StatusNotFound, ErrCodeModelNotFound, "unknown model %q (see /v1/models)", req.Model)
		return
	}
	backend := Backend(req.Backend)
	if backend == "" {
		backend = s.cfg.DefaultBackend
	}
	if _, ok := model.Backend(string(backend)); !ok {
		s.replyError(w, start, http.StatusBadRequest, ErrCodeBadRequest,
			"serve: unknown backend %q (model %q serves %v)", backend, model.Name, model.Backends())
		return
	}
	if want := model.Net.Input.Size(); len(req.Input) != want {
		s.replyError(w, start, http.StatusBadRequest, ErrCodeBadRequest, "input length %d, model %q wants %d", len(req.Input), model.Name, want)
		return
	}
	input := make(tensor.Vec, len(req.Input))
	for i, x := range req.Input {
		if math.IsNaN(x) || x < 0 || x > 1 {
			s.replyError(w, start, http.StatusBadRequest, ErrCodeBadRequest, "input[%d] = %v outside [0, 1]", i, x)
			return
		}
		input[i] = x
	}
	key := batcherKey(model.Name, backend)
	br := s.breakers[key]
	if ok, retry := br.allow(); !ok {
		w.Header().Set("Retry-After", retryAfterSeconds(retry))
		s.replyError(w, start, http.StatusServiceUnavailable, ErrCodeCircuitOpen,
			"backend %s/%s unhealthy (circuit open), retry later", model.Name, backend)
		return
	}
	job := &request{input: input, seed: req.Seed, done: make(chan response, 1)}
	if err := s.batchers[key].submit(job); err != nil {
		// The request never reached a batch, so no outcome will arrive; if
		// it was the half-open probe, free the slot for the next request.
		br.probeAborted()
		switch {
		case errors.Is(err, ErrQueueFull):
			s.replyError(w, start, http.StatusTooManyRequests, ErrCodeQueueFull, "queue full for %s/%s, retry later", model.Name, backend)
		case errors.Is(err, ErrClosed):
			s.replyError(w, start, http.StatusServiceUnavailable, ErrCodeDraining, "server shutting down")
		default:
			s.replyError(w, start, http.StatusInternalServerError, ErrCodeInternal, "%v", err)
		}
		return
	}
	// done is buffered(1): on deadline expiry the dispatcher's late send
	// still lands and is garbage-collected with the channel.
	timer := time.NewTimer(s.cfg.RequestTimeout)
	defer timer.Stop()
	var resp response
	select {
	case resp = <-job.done:
	case <-timer.C:
		s.metrics.Timeout()
		s.replyError(w, start, http.StatusGatewayTimeout, ErrCodeTimeout,
			"request exceeded the %s deadline for %s/%s", s.cfg.RequestTimeout, model.Name, backend)
		return
	}
	if resp.err != nil {
		s.replyError(w, start, http.StatusInternalServerError, ErrCodeInternal, "classification failed: %v", resp.err)
		return
	}
	s.reply(w, start, http.StatusOK, ClassifyResponse{
		Model:      model.Name,
		Backend:    string(backend),
		Prediction: resp.prediction,
		Perf:       resp.perf,
		BatchSize:  resp.batchSize,
		QueueMs:    float64(resp.queueWait) / float64(time.Millisecond),
	})
}

func (s *Server) handleModels(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		s.replyError(w, time.Now(), http.StatusMethodNotAllowed, ErrCodeMethodNotAllowed, "GET required")
		return
	}
	infos := s.cfg.Registry.Info()
	for i := range infos {
		health := make(map[string]string, len(infos[i].Backends))
		for _, backend := range infos[i].Backends {
			if br, ok := s.breakers[batcherKey(infos[i].Name, Backend(backend))]; ok {
				health[backend] = br.State().String()
			}
		}
		infos[i].Health = health
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(struct {
		Models []ModelInfo `json:"models"`
	}{Models: infos})
}

// BackendHealth is one circuit's state in the /healthz and /readyz reports.
type BackendHealth struct {
	Model   string `json:"model"`
	Backend string `json:"backend"`
	State   string `json:"state"`
}

// HealthResponse is the /healthz and /readyz wire form. Status is "ok"
// (or "ready") when every circuit is closed, "degraded" when any is open or
// half-open (the server still answers what it can), and "draining" during
// shutdown.
type HealthResponse struct {
	Status   string          `json:"status"`
	Backends []BackendHealth `json:"backends"`
}

// health assembles the shared liveness/readiness body: the per-(model,
// backend) circuit states plus whether any circuit is open, whether the
// server is draining, and whether a repair pass holds a model write lock.
func (s *Server) health() (resp HealthResponse, anyOpen, draining, repairing bool) {
	s.mu.Lock()
	draining = s.closed
	repairers := s.repairers
	s.mu.Unlock()
	for _, r := range repairers {
		if r.Repairing() {
			repairing = true
			break
		}
	}
	resp = HealthResponse{Status: "ok"}
	for _, m := range s.cfg.Registry.Models() {
		for _, backend := range m.Backends() {
			state := s.breakers[batcherKey(m.Name, Backend(backend))].State()
			if state != BreakerClosed {
				resp.Status = "degraded"
			}
			if state == BreakerOpen {
				anyOpen = true
			}
			resp.Backends = append(resp.Backends, BackendHealth{
				Model: m.Name, Backend: backend, State: state.String(),
			})
		}
	}
	return resp, anyOpen, draining, repairing
}

func writeHealth(w http.ResponseWriter, code int, resp HealthResponse) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(resp)
}

// handleHealthz is liveness: 200 as long as the process can answer at all,
// including through a drain (in-flight work is still completing, so killing
// the process now would lose it). Orchestrators restart on liveness
// failures; load balancers should watch /readyz instead.
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	resp, _, draining, _ := s.health()
	if draining {
		resp.Status = "draining"
	}
	writeHealth(w, http.StatusOK, resp)
}

// handleReadyz is readiness: 503 while draining, while a repair pass holds
// a model write lock ("repairing" — requests would queue behind the lock,
// so a balancer should route to siblings until the window closes), or while
// any (model, backend) circuit is open, so a load balancer stops routing
// here before requests start failing. The body carries the per-(model,
// backend) breaker states either way — a balancer that parses it can keep
// routing the pairs that are still healthy (e.g. the CMOS baseline while
// the RESPARC circuit recovers) instead of dropping the whole replica.
func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	resp, anyOpen, draining, repairing := s.health()
	code := http.StatusOK
	switch {
	case draining:
		resp.Status = "draining"
		code = http.StatusServiceUnavailable
	case repairing:
		resp.Status = "repairing"
		code = http.StatusServiceUnavailable
	case anyOpen:
		code = http.StatusServiceUnavailable
	default:
		resp.Status = "ready"
	}
	writeHealth(w, code, resp)
}

// retryAfterSeconds renders a backoff as a whole-second Retry-After value,
// at least 1, with up to 50% random jitter added on top. The jitter
// staggers the retries of clients (and load-balancer replicas) that were
// all rejected by the same opening circuit — without it they would all
// come back in the same second and re-stampede a barely recovered backend.
func retryAfterSeconds(d time.Duration) string {
	d += time.Duration(retryJitter.Int64N(int64(d)/2 + 1))
	secs := int(math.Ceil(d.Seconds()))
	if secs < 1 {
		secs = 1
	}
	return strconv.Itoa(secs)
}

// retryJitter is the shared jitter source for Retry-After values. The lock
// keeps it safe under concurrent 503s; the seed does not matter (jitter
// only needs to differ between concurrent clients, not reproduce).
var retryJitter = newLockedRand(time.Now().UnixNano())

type lockedRand struct {
	mu  sync.Mutex
	rng *rand.Rand
}

func newLockedRand(seed int64) *lockedRand {
	return &lockedRand{rng: rand.New(rand.NewSource(seed))}
}

func (l *lockedRand) Int64N(n int64) int64 {
	if n <= 0 {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.rng.Int63n(n)
}
