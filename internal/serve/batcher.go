package serve

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"resparc/internal/perf"
	"resparc/internal/tensor"
)

// Submission errors, mapped to HTTP status codes by the server (429 and 503
// respectively).
var (
	ErrQueueFull = errors.New("serve: queue full")
	ErrClosed    = errors.New("serve: shutting down")
)

// request is one queued classification.
type request struct {
	input    tensor.Vec
	seed     int64
	enqueued time.Time
	done     chan response // buffered(1); the dispatcher sends exactly once
}

// response is the batcher's answer to one request.
type response struct {
	perf       perf.Result
	prediction int
	batchSize  int           // images in the batch this request rode in
	queueWait  time.Duration // enqueue -> batch dispatch
	err        error
}

// batchRunner executes one flushed batch and returns per-request results
// and predictions in input order.
type batchRunner func(inputs []tensor.Vec, seeds []int64) ([]perf.Result, []int, error)

// batcher is the dynamic micro-batcher: requests land in a bounded queue
// and a single dispatcher goroutine flushes them in batches.
//
// The dispatcher's state machine:
//
//	idle       -- request arrives --> collecting (starts the max-wait clock)
//	collecting -- queue yields another request --> collecting
//	collecting -- batch reaches max-batch OR max-wait fires OR queue closes --> flush
//	flush      --> idle (or drain-remaining-then-exit after close)
//
// Backpressure is at enqueue: submit never blocks, a full queue is the
// caller's 429. Shutdown closes the queue; the dispatcher drains everything
// already admitted before exiting, so every admitted request gets exactly
// one response.
type batcher struct {
	maxBatch int
	maxWait  time.Duration
	run      batchRunner
	onFlush  func(batchSize int) // metrics hook; may be nil
	onResult func(err error)     // circuit-breaker hook, one call per flush; may be nil

	// mu serializes submissions against close: a sender always holds the
	// read lock, so closing the queue channel under the write lock cannot
	// race a send.
	mu      sync.RWMutex
	closed  bool
	queue   chan *request
	drained chan struct{} // closed when the dispatcher exits
}

func newBatcher(queueSize, maxBatch int, maxWait time.Duration, run batchRunner, onFlush func(int), onResult func(error)) *batcher {
	if queueSize < 1 {
		queueSize = 1
	}
	if maxBatch < 1 {
		maxBatch = 1
	}
	if maxWait <= 0 {
		maxWait = time.Millisecond
	}
	b := &batcher{
		maxBatch: maxBatch,
		maxWait:  maxWait,
		run:      run,
		onFlush:  onFlush,
		onResult: onResult,
		queue:    make(chan *request, queueSize),
		drained:  make(chan struct{}),
	}
	go b.loop()
	return b
}

// submit enqueues a request without blocking. ErrQueueFull signals
// backpressure; ErrClosed a shutdown in progress.
func (b *batcher) submit(req *request) error {
	b.mu.RLock()
	defer b.mu.RUnlock()
	if b.closed {
		return ErrClosed
	}
	req.enqueued = time.Now()
	select {
	case b.queue <- req:
		return nil
	default:
		return ErrQueueFull
	}
}

// depth reports the number of queued (not yet dispatched) requests.
func (b *batcher) depth() int { return len(b.queue) }

// close stops admission and waits for the dispatcher to drain every
// admitted request. Safe to call more than once.
func (b *batcher) close() {
	b.mu.Lock()
	if !b.closed {
		b.closed = true
		close(b.queue)
	}
	b.mu.Unlock()
	<-b.drained
}

func (b *batcher) loop() {
	defer close(b.drained)
	for {
		// Idle: wait for the first request of the next batch. A closed
		// queue keeps yielding admitted requests until empty.
		first, ok := <-b.queue
		if !ok {
			return
		}
		batch := append(make([]*request, 0, b.maxBatch), first)
		timer := time.NewTimer(b.maxWait)
	collect:
		for len(batch) < b.maxBatch {
			select {
			case req, open := <-b.queue:
				if !open {
					break collect
				}
				batch = append(batch, req)
			case <-timer.C:
				break collect
			}
		}
		timer.Stop()
		b.flush(batch)
	}
}

// safeRun executes the batch runner, converting a panicking backend into
// an ordinary batch error. The dispatcher goroutine owns an entire
// (model, backend) queue: letting a panic escape here would not just lose
// one batch, it would kill the process.
func (b *batcher) safeRun(inputs []tensor.Vec, seeds []int64) (ress []perf.Result, preds []int, err error) {
	defer func() {
		if p := recover(); p != nil {
			ress, preds, err = nil, nil, fmt.Errorf("serve: backend panicked: %v", p)
		}
	}()
	return b.run(inputs, seeds)
}

// flush runs one batch and fans the per-request results back out.
func (b *batcher) flush(batch []*request) {
	inputs := make([]tensor.Vec, len(batch))
	seeds := make([]int64, len(batch))
	for i, req := range batch {
		inputs[i] = req.input
		seeds[i] = req.seed
	}
	dispatched := time.Now()
	ress, preds, err := b.safeRun(inputs, seeds)
	if err == nil && (len(ress) != len(batch) || len(preds) != len(batch)) {
		err = fmt.Errorf("serve: backend returned %d results and %d predictions for a batch of %d",
			len(ress), len(preds), len(batch))
	}
	if b.onFlush != nil {
		b.onFlush(len(batch))
	}
	if b.onResult != nil {
		b.onResult(err)
	}
	for i, req := range batch {
		if err != nil {
			req.done <- response{err: err}
			continue
		}
		req.done <- response{
			perf:       ress[i],
			prediction: preds[i],
			batchSize:  len(batch),
			queueWait:  dispatched.Sub(req.enqueued),
		}
	}
}
