package serve

import (
	"errors"
	"sync"
	"testing"
	"time"

	"resparc/internal/perf"
	"resparc/internal/tensor"
)

// gatedRunner records flush sizes and blocks each flush until released,
// making queue-full and drain scenarios deterministic.
type gatedRunner struct {
	mu      sync.Mutex
	sizes   []int
	gate    chan struct{}
	started chan struct{} // one tick per flush entering run
}

func newGatedRunner() *gatedRunner {
	return &gatedRunner{gate: make(chan struct{}), started: make(chan struct{}, 64)}
}

func (g *gatedRunner) run(inputs []tensor.Vec, seeds []int64) ([]perf.Result, []int, error) {
	g.started <- struct{}{}
	<-g.gate
	g.mu.Lock()
	g.sizes = append(g.sizes, len(inputs))
	g.mu.Unlock()
	ress := make([]perf.Result, len(inputs))
	preds := make([]int, len(inputs))
	for i := range seeds {
		preds[i] = int(seeds[i]) // echo the seed so callers can match responses
	}
	return ress, preds, nil
}

func (g *gatedRunner) flushSizes() []int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return append([]int(nil), g.sizes...)
}

func submitN(t *testing.T, b *batcher, n, from int) []chan response {
	t.Helper()
	chans := make([]chan response, n)
	for i := 0; i < n; i++ {
		chans[i] = make(chan response, 1)
		if err := b.submit(&request{seed: int64(from + i), done: chans[i]}); err != nil {
			t.Fatalf("submit %d: %v", from+i, err)
		}
	}
	return chans
}

func await(t *testing.T, ch chan response) response {
	t.Helper()
	select {
	case r := <-ch:
		return r
	case <-time.After(5 * time.Second):
		t.Fatal("timed out waiting for response")
		return response{}
	}
}

// A full batch flushes immediately on max-batch, without waiting out the
// max-wait clock.
func TestBatcherFlushesOnMaxBatch(t *testing.T) {
	g := newGatedRunner()
	b := newBatcher(16, 4, time.Hour, g.run, nil, nil)
	defer close(g.gate)
	defer b.close()
	chans := submitN(t, b, 4, 0)
	<-g.started // dispatched despite the infinite max-wait
	g.gate <- struct{}{}
	for i, ch := range chans {
		r := await(t, ch)
		if r.err != nil || r.batchSize != 4 || r.prediction != i {
			t.Fatalf("response %d: %+v", i, r)
		}
	}
	if sizes := g.flushSizes(); len(sizes) != 1 || sizes[0] != 4 {
		t.Fatalf("flushes %v, want [4]", sizes)
	}
}

// A lone request flushes when max-wait fires.
func TestBatcherFlushesOnMaxWait(t *testing.T) {
	g := newGatedRunner()
	b := newBatcher(16, 64, 5*time.Millisecond, g.run, nil, nil)
	defer b.close()
	ch := submitN(t, b, 1, 7)[0]
	<-g.started
	close(g.gate)
	r := await(t, ch)
	if r.err != nil || r.batchSize != 1 || r.prediction != 7 {
		t.Fatalf("response %+v", r)
	}
}

// Backpressure: with the dispatcher busy, submissions beyond the queue
// capacity fail fast with ErrQueueFull.
func TestBatcherQueueFull(t *testing.T) {
	g := newGatedRunner()
	b := newBatcher(2, 1, time.Millisecond, g.run, nil, nil)
	// First request occupies the dispatcher (blocked in run).
	busy := submitN(t, b, 1, 0)
	<-g.started
	// Two fit in the queue, the third overflows.
	queued := submitN(t, b, 2, 1)
	if err := b.submit(&request{done: make(chan response, 1)}); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("overflow submit: %v, want ErrQueueFull", err)
	}
	close(g.gate)
	await(t, busy[0])
	for _, ch := range queued {
		await(t, ch)
	}
	b.close()
}

// Shutdown drains: every admitted request is answered, and submissions
// after close are refused with ErrClosed.
func TestBatcherCloseDrains(t *testing.T) {
	g := newGatedRunner()
	b := newBatcher(16, 2, time.Millisecond, g.run, func(int) {}, nil)
	busy := submitN(t, b, 1, 0)
	<-g.started
	queued := submitN(t, b, 5, 1)
	done := make(chan struct{})
	go func() {
		b.close()
		close(done)
	}()
	close(g.gate) // release every flush
	<-done
	await(t, busy[0])
	for i, ch := range queued {
		if r := await(t, ch); r.err != nil {
			t.Fatalf("drained request %d errored: %v", i, r.err)
		}
	}
	if err := b.submit(&request{done: make(chan response, 1)}); !errors.Is(err, ErrClosed) {
		t.Fatalf("post-close submit: %v, want ErrClosed", err)
	}
	b.close() // idempotent
}

// A runner error propagates to every request of the batch.
func TestBatcherRunnerError(t *testing.T) {
	wantErr := errors.New("boom")
	b := newBatcher(4, 2, time.Millisecond, func([]tensor.Vec, []int64) ([]perf.Result, []int, error) {
		return nil, nil, wantErr
	}, nil, nil)
	defer b.close()
	chans := submitN(t, b, 2, 0)
	for _, ch := range chans {
		if r := await(t, ch); !errors.Is(r.err, wantErr) {
			t.Fatalf("response err %v, want %v", r.err, wantErr)
		}
	}
}

// Queue depth is observable while requests wait behind a busy dispatcher.
func TestBatcherDepth(t *testing.T) {
	g := newGatedRunner()
	b := newBatcher(8, 1, time.Millisecond, g.run, nil, nil)
	busy := submitN(t, b, 1, 0)
	<-g.started
	queued := submitN(t, b, 3, 1)
	if d := b.depth(); d != 3 {
		t.Fatalf("depth %d, want 3", d)
	}
	close(g.gate)
	await(t, busy[0])
	for _, ch := range queued {
		await(t, ch)
	}
	b.close()
	if d := b.depth(); d != 0 {
		t.Fatalf("post-drain depth %d", d)
	}
}
