// Package serve implements resparc-serve: an HTTP inference service with
// dynamic micro-batching over the RESPARC simulator and its CMOS baseline.
//
// A Registry loads models once at startup — each network is converted,
// mapped onto RESPARC (core.Chip) and prepared for the digital baseline
// (cmosbase.Baseline) — and the Server batches incoming classification
// requests across the shared worker pool (internal/parallel). Determinism
// is end-to-end: a request's spike stream is keyed by its own seed via
// snn.PoissonEncoder.ForkSeed, never by arrival order or batch composition,
// so the same request returns the same answer at any concurrency.
package serve

import (
	"fmt"
	"os"
	"sync"
	"sync/atomic"

	"resparc/internal/bench"
	"resparc/internal/cmosbase"
	"resparc/internal/core"
	"resparc/internal/device"
	"resparc/internal/energy"
	"resparc/internal/mapping"
	"resparc/internal/perf"
	"resparc/internal/shard"
	"resparc/internal/sim"
	"resparc/internal/snn"
	"resparc/internal/tensor"
)

// RegistryConfig fixes the simulation fidelity shared by every model a
// registry serves.
type RegistryConfig struct {
	// Steps is the number of SNN timesteps per classification.
	Steps int
	// MCASize is the crossbar dimension for the RESPARC mapping.
	MCASize int
	// MaxProb is the Poisson encoder's peak spike probability.
	MaxProb float64
	// Seed is the base encoder seed; request streams fork from it by the
	// request's seed (see Model.ClassifyEach).
	Seed int64
	// Params is the energy/timing calibration.
	Params energy.Params
	// Tech is the memristive technology.
	Tech device.Technology
	// Stepped forces the step-major functional runner instead of the
	// default blocked layer-major one (bit-identical results; see
	// snn.RunBlocked).
	Stepped bool
	// Shards, when > 1, also registers a multi-chip pipeline backend
	// (internal/shard) per model under its own name ("resparc-x4"); the
	// shard count is clamped to the model's layer count.
	Shards int
	// Placements maps a network name to an optimized mapping.Placement
	// (resparc-map plan / resparc-serve -placement). A registered network
	// with an entry here is realized from the artifact — per-layer MCA
	// sizes, NeuroCell alignment, and (when the artifact carries cuts) the
	// shard partition — instead of the uniform MCASize mapping. Networks
	// without an entry keep the legacy path.
	Placements map[string]*mapping.Placement
}

// DefaultRegistryConfig mirrors the paper's evaluation configuration
// (experiments.DefaultConfig).
func DefaultRegistryConfig() RegistryConfig {
	return RegistryConfig{
		Steps:   48,
		MCASize: 64,
		MaxProb: 0.8,
		Seed:    1,
		Params:  energy.Default45nm(),
		Tech:    device.AgSi,
		Shards:  4,
	}
}

// Model is one servable network: pre-mapped onto RESPARC and prepared for
// the CMOS baseline at registry build time, so request handling never pays
// conversion or mapping cost.
type Model struct {
	Name string
	Net  *snn.Network
	Chip *core.Chip
	Base *cmosbase.Baseline
	Map  *mapping.Mapping
	// Placement is the artifact the mapping was realized from (nil for the
	// legacy uniform path).
	Placement *mapping.Placement

	enc *snn.PoissonEncoder // base encoder; request streams fork from it
	// backends maps wire name -> sim.Backend; order preserves registration
	// so listings are stable.
	backends map[string]sim.Backend
	order    []string

	// mu is the repair quiescence lock: classification holds the read
	// side, a repair pass (which rewrites the network's weights in place)
	// holds the write side. Uncontended when repair is off.
	mu sync.RWMutex
	// served counts crossbar inferences classified through this model —
	// the deployment age clock when repair is enabled. CMOS requests are
	// excluded: digital SRAM does not wear the crossbars.
	served atomic.Int64
}

// addBackend registers a backend under its own Name.
func (m *Model) addBackend(b sim.Backend) {
	if m.backends == nil {
		m.backends = make(map[string]sim.Backend)
	}
	m.backends[b.Name()] = b
	m.order = append(m.order, b.Name())
}

// Backend resolves a wire-form backend name.
func (m *Model) Backend(name string) (sim.Backend, bool) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	b, ok := m.backends[name]
	return b, ok
}

// Served returns how many crossbar inferences the model has classified.
func (m *Model) Served() int64 { return m.served.Load() }

// Backends lists the model's backend names in registration order.
func (m *Model) Backends() []string {
	out := make([]string, len(m.order))
	copy(out, m.order)
	return out
}

// ClassifyEach classifies the batch on the requested backend, one encoder
// fork per request seed, and returns per-request results and predictions in
// input order. Request i's outcome depends only on (inputs[i], seeds[i]), so
// it is independent of batch composition, worker count and the batch-major
// group size — the serving determinism contract. batch > 1 evaluates the
// flush batch-major inside the simulator (sim.Options.Batch); <= 1 evaluates
// per image. Every backend is driven through the one sim.Backend interface;
// the model never special-cases a backend type.
func (m *Model) ClassifyEach(backend Backend, inputs []tensor.Vec, seeds []int64, workers, batch int) ([]perf.Result, []int, error) {
	// The read lock spans the whole evaluation: a repair pass (write side)
	// rewrites the network's weights in place and must see no batch in
	// flight. Nested locking is avoided — the backend lookup happens under
	// this same acquisition, not through Backend().
	m.mu.RLock()
	defer m.mu.RUnlock()
	bk, ok := m.backends[string(backend)]
	if !ok {
		return nil, nil, fmt.Errorf("serve: unknown backend %q", backend)
	}
	enc := func(i int) snn.Encoder { return m.enc.ForkSeed(int(seeds[i])) }
	ress, reps, err := bk.ClassifyEach(inputs, enc, sim.Options{Workers: workers, Batch: batch})
	if err != nil {
		return nil, nil, err
	}
	if backend != BackendCMOS {
		m.served.Add(int64(len(inputs)))
	}
	preds := make([]int, len(reps))
	for i, r := range reps {
		preds[i] = r.Predicted
	}
	return ress, preds, nil
}

// ModelInfo is the /v1/models wire form: topology totals plus the mapping
// statistics of the RESPARC placement and the baseline's memory footprint.
type ModelInfo struct {
	Name        string   `json:"name"`
	Layers      int      `json:"layers"`
	Neurons     int      `json:"neurons"`
	Synapses    int      `json:"synapses"`
	InputSize   int      `json:"input_size"`
	Classes     int      `json:"classes"`
	Steps       int      `json:"steps"`
	MCASize     int      `json:"mca_size"`
	MCAs        int      `json:"mcas"`
	MPEs        int      `json:"mpes"`
	NeuroCells  int      `json:"neurocells"`
	Utilization float64  `json:"utilization"`
	CMOSWeightB int      `json:"cmos_weight_memory_bytes"`
	Backends    []string `json:"backends"`
	// Mapper and MCASizes describe the placement artifact the model was
	// realized from ("greedy", "annealed"); absent on the legacy uniform
	// path. MCASizes lists the per-layer crossbar sizes, which may be
	// heterogeneous.
	Mapper   string `json:"mapper,omitempty"`
	MCASizes []int  `json:"mca_sizes,omitempty"`
	// Health maps backend name to its circuit state ("closed", "open",
	// "half-open"); filled by the server, absent in a bare registry listing.
	Health map[string]string `json:"health,omitempty"`
}

// Info summarizes the model for the registry listing.
func (m *Model) Info() ModelInfo {
	info := ModelInfo{
		Name:        m.Name,
		Layers:      len(m.Net.Layers),
		Neurons:     m.Net.HiddenNeurons(),
		Synapses:    m.Net.Synapses(),
		InputSize:   m.Net.Input.Size(),
		Classes:     m.Net.OutSize(),
		Steps:       m.Chip.Opt.Steps,
		MCASize:     m.Map.Cfg.MCASize,
		MCAs:        m.Map.MCAs,
		MPEs:        m.Map.MPEs,
		NeuroCells:  m.Map.NCs,
		Utilization: m.Map.TotalUtilization(),
		CMOSWeightB: m.Base.WeightMemoryBytes(),
		Backends:    m.Backends(),
	}
	if m.Placement != nil {
		info.Mapper = m.Placement.Mapper
		info.MCASizes = m.Placement.Sizes()
	}
	return info
}

// Registry holds the servable models. It is populated at startup and
// read-only afterwards; the mutex only guards concurrent population (e.g.
// tests registering while a server is already listening).
type Registry struct {
	cfg RegistryConfig

	mu     sync.RWMutex
	order  []string
	models map[string]*Model
}

// NewRegistry returns an empty registry with the given fidelity.
func NewRegistry(cfg RegistryConfig) (*Registry, error) {
	if cfg.Steps < 1 {
		return nil, fmt.Errorf("serve: steps %d", cfg.Steps)
	}
	if cfg.MaxProb <= 0 || cfg.MaxProb > 1 {
		return nil, fmt.Errorf("serve: max spike probability %v out of (0,1]", cfg.MaxProb)
	}
	return &Registry{cfg: cfg, models: make(map[string]*Model)}, nil
}

// Config returns the registry's fidelity configuration.
func (r *Registry) Config() RegistryConfig { return r.cfg }

// AddNetwork converts and maps a network under its own name and registers
// the resulting model. A placement registered for the network's name
// (RegistryConfig.Placements) is applied instead of the uniform mapping.
func (r *Registry) AddNetwork(net *snn.Network) (*Model, error) {
	var m *mapping.Mapping
	var err error
	pl := r.cfg.Placements[net.Name]
	if pl != nil {
		m, err = pl.Apply(net)
		if err != nil {
			return nil, fmt.Errorf("serve: applying placement for %q: %w", net.Name, err)
		}
	} else {
		mc := mapping.DefaultConfig()
		mc.MCASize = r.cfg.MCASize
		mc.Tech = r.cfg.Tech
		m, err = mapping.Map(net, mc)
		if err != nil {
			return nil, fmt.Errorf("serve: mapping %q: %w", net.Name, err)
		}
	}
	copt := core.DefaultOptions()
	copt.Params = r.cfg.Params
	copt.Steps = r.cfg.Steps
	copt.Stepped = r.cfg.Stepped
	chip, err := core.New(net, m, copt)
	if err != nil {
		return nil, fmt.Errorf("serve: preparing chip for %q: %w", net.Name, err)
	}
	bopt := cmosbase.DefaultOptions()
	bopt.Params = r.cfg.Params
	bopt.Steps = r.cfg.Steps
	bopt.Stepped = r.cfg.Stepped
	base, err := cmosbase.New(net, bopt)
	if err != nil {
		return nil, fmt.Errorf("serve: preparing baseline for %q: %w", net.Name, err)
	}
	model := &Model{
		Name: net.Name, Net: net, Chip: chip, Base: base, Map: m, Placement: pl,
		enc: snn.NewPoissonEncoder(r.cfg.MaxProb, r.cfg.Seed),
	}
	model.addBackend(chip)
	model.addBackend(base)
	if pl != nil && len(pl.ShardCuts) > 0 {
		// The artifact's cut points define the partition.
		multi, err := shard.New(chip, shard.Config{Cuts: pl.ShardCuts})
		if err != nil {
			return nil, fmt.Errorf("serve: sharding %q from placement: %w", net.Name, err)
		}
		model.addBackend(multi)
	} else if r.cfg.Shards > 1 {
		multi, err := shard.New(chip, shard.Config{Shards: r.cfg.Shards})
		if err != nil {
			return nil, fmt.Errorf("serve: sharding %q: %w", net.Name, err)
		}
		model.addBackend(multi)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.models[model.Name]; dup {
		return nil, fmt.Errorf("serve: duplicate model %q", model.Name)
	}
	r.models[model.Name] = model
	r.order = append(r.order, model.Name)
	return model, nil
}

// LoadBenchmarks builds and registers the named Fig 10 benchmarks (all six
// when names is empty), pre-converted and pre-mapped.
func (r *Registry) LoadBenchmarks(names ...string) error {
	var list []bench.Benchmark
	if len(names) == 0 {
		list = bench.All()
	} else {
		for _, name := range names {
			b, err := bench.ByName(name)
			if err != nil {
				return fmt.Errorf("serve: %w", err)
			}
			list = append(list, b)
		}
	}
	for _, b := range list {
		net, err := b.Build(r.cfg.Seed)
		if err != nil {
			return fmt.Errorf("serve: building %q: %w", b.Name, err)
		}
		if _, err := r.AddNetwork(net); err != nil {
			return err
		}
	}
	return nil
}

// LoadNetworkFile registers a network serialized with snn.WriteNetwork —
// the path trained models take into the service.
func (r *Registry) LoadNetworkFile(path string) (*Model, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("serve: %w", err)
	}
	defer f.Close()
	net, err := snn.ReadNetwork(f)
	if err != nil {
		return nil, fmt.Errorf("serve: loading %s: %w", path, err)
	}
	return r.AddNetwork(net)
}

// Get returns a registered model.
func (r *Registry) Get(name string) (*Model, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	m, ok := r.models[name]
	return m, ok
}

// Models returns the registered models in registration order.
func (r *Registry) Models() []*Model {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]*Model, 0, len(r.order))
	for _, name := range r.order {
		out = append(out, r.models[name])
	}
	return out
}

// Info lists every model's statistics in registration order.
func (r *Registry) Info() []ModelInfo {
	models := r.Models()
	out := make([]ModelInfo, len(models))
	for i, m := range models {
		out[i] = m.Info()
	}
	return out
}
