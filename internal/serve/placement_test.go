package serve

import (
	"reflect"
	"testing"

	"resparc/internal/mapping"
	"resparc/internal/tensor"
)

func planFor(t *testing.T, m mapping.Mapper, cfg RegistryConfig, name string, seed int64) *mapping.Placement {
	t.Helper()
	net := testNetwork(t, name, seed)
	mc := mapping.DefaultConfig()
	mc.MCASize = cfg.MCASize
	mc.Tech = cfg.Tech
	cons := mapping.DefaultConstraints(mc)
	cons.Sizes = []int{cfg.MCASize, 2 * cfg.MCASize}
	cons.Steps = 4
	p, err := m.Plan(net, cons)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// A registry built from a placement artifact must classify bit-identically
// to the legacy direct-mapping path: functional results depend only on the
// input and the encoder, never on the layout the mapper chose.
func TestPlacementRegistryMatchesDirect(t *testing.T) {
	cfg := testConfig()
	p := planFor(t, mapping.Annealed{Seed: 3, Iters: 40, Chains: 2}, cfg, "tiny-mlp", 11)

	direct := testRegistry(t)
	cfg.Placements = map[string]*mapping.Placement{"tiny-mlp": p}
	reg, err := NewRegistry(cfg)
	if err != nil {
		t.Fatal(err)
	}
	placed, err := reg.AddNetwork(testNetwork(t, "tiny-mlp", 11))
	if err != nil {
		t.Fatal(err)
	}
	if placed.Placement == nil {
		t.Fatal("model did not record its placement")
	}

	dm, ok := direct.Get("tiny-mlp")
	if !ok {
		t.Fatal("direct registry lost the model")
	}
	inputs := inputBatch(dm.Net.Input.Size(), 6)
	seeds := make([]int64, len(inputs))
	for i := range seeds {
		seeds[i] = int64(i)
	}
	_, want, err := dm.ClassifyEach(BackendRESPARC, inputs, seeds, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	_, got, err := placed.ClassifyEach(BackendRESPARC, inputs, seeds, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("placement-loaded predictions %v differ from direct %v", got, want)
	}

	info := placed.Info()
	if info.Mapper != "annealed" {
		t.Fatalf("info mapper %q", info.Mapper)
	}
	if len(info.MCASizes) != len(placed.Net.Layers) {
		t.Fatalf("info sizes %v for %d layers", info.MCASizes, len(placed.Net.Layers))
	}
}

// A placement carrying shard cuts overrides the registry's balanced
// partitioner and still registers a working pipeline backend.
func TestPlacementShardCuts(t *testing.T) {
	cfg := testConfig()
	cfg.Shards = 3 // would be the default partition; the artifact's cuts win
	p := planFor(t, mapping.Greedy{}, cfg, "tiny-mlp", 11)
	p.ShardCuts = []int{1}
	cfg.Placements = map[string]*mapping.Placement{"tiny-mlp": p}
	reg, err := NewRegistry(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m, err := reg.AddNetwork(testNetwork(t, "tiny-mlp", 11))
	if err != nil {
		t.Fatal(err)
	}
	multi := ""
	for _, b := range m.Backends() {
		if b != string(BackendRESPARC) && b != string(BackendCMOS) {
			multi = b
		}
	}
	if multi != "resparc-x2" {
		t.Fatalf("backends %v: want a resparc-x2 pipeline from the 1-cut artifact", m.Backends())
	}
	inputs := inputBatch(m.Net.Input.Size(), 3)
	seeds := []int64{0, 1, 2}
	_, want, err := m.ClassifyEach(BackendRESPARC, inputs, seeds, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	_, got, err := m.ClassifyEach(Backend(multi), inputs, seeds, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("sharded predictions %v differ from single-chip %v", got, want)
	}
}

// The acceptance sweep: every Fig 10 benchmark served from an annealed
// placement artifact classifies exactly like the direct-mapping registry.
func TestPlacementBenchmarksMatchDirect(t *testing.T) {
	if testing.Short() {
		t.Skip("builds all six benchmarks twice")
	}
	cfg := DefaultRegistryConfig()
	cfg.Steps = 6
	cfg.Shards = 1 // the x4 pipeline backends are covered elsewhere

	direct, err := NewRegistry(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := direct.LoadBenchmarks(); err != nil {
		t.Fatal(err)
	}

	plCfg := cfg
	plCfg.Placements = make(map[string]*mapping.Placement)
	mc := mapping.DefaultConfig()
	mc.MCASize = cfg.MCASize
	mc.Tech = cfg.Tech
	for _, m := range direct.Models() {
		cons := mapping.DefaultConstraints(mc)
		cons.Steps = 4
		p, err := (mapping.Annealed{Seed: 5, Iters: 30, Chains: 2}).Plan(m.Net, cons)
		if err != nil {
			t.Fatalf("%s: %v", m.Name, err)
		}
		plCfg.Placements[m.Name] = p
	}
	placed, err := NewRegistry(plCfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := placed.LoadBenchmarks(); err != nil {
		t.Fatal(err)
	}

	for _, dm := range direct.Models() {
		pm, ok := placed.Get(dm.Name)
		if !ok {
			t.Fatalf("%s missing from placement registry", dm.Name)
		}
		if pm.Placement == nil {
			t.Fatalf("%s served without its placement", dm.Name)
		}
		inputs := inputBatch(dm.Net.Input.Size(), 2)
		seeds := []int64{3, 4}
		_, want, err := dm.ClassifyEach(BackendRESPARC, inputs, seeds, 1, 0)
		if err != nil {
			t.Fatal(err)
		}
		_, got, err := pm.ClassifyEach(BackendRESPARC, inputs, seeds, 1, 0)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("%s: placement registry predicts %v, direct %v", dm.Name, got, want)
		}
	}
}

func inputBatch(size, n int) []tensor.Vec {
	out := make([]tensor.Vec, n)
	for i := range out {
		out[i] = tensor.Vec(testInput(size, int64(100+i)))
	}
	return out
}
