package serve

import (
	"bytes"
	"fmt"
	"sync"
	"time"

	"resparc/internal/cmosbase"
	"resparc/internal/fault"
	"resparc/internal/repair"
	"resparc/internal/snn"
	"resparc/internal/tensor"
)

// Self-healing serving: when repair is enabled, every model's RESPARC
// mapping becomes a repair.Deployment that ages with the replica's served
// inference count (conductance drift plus wear-out stuck-ats, seeded and
// deterministic), and a background scheduler periodically probes it with
// canary inputs and climbs the repair ladder when degradation shows.
//
// A repair pass needs quiescent weights — it rewrites the live network's
// matrices in place — so each pass takes the model's write lock while
// classification takes the read side; requests arriving mid-pass queue
// until the pass finishes. For the repair window's duration the replica
// reports "repairing" on /readyz (503), so a load balancer routes new
// traffic to its siblings instead of letting it pile up behind the lock.
//
// Only the crossbar-backed backends age: the CMOS baseline is digital
// SRAM, so attaching a repairer rebuilds it over a clone of the original
// network and its answers stay byte-identical for the replica's life.

// RepairConfig configures the background self-healing scheduler.
type RepairConfig struct {
	// Life is the seeded lifetime model every deployment ages under.
	Life fault.Lifetime
	// Policy selects how much of the repair ladder a pass may climb.
	Policy repair.Policy
	// Ladder tunes detection and the repair tiers; a zero value takes
	// repair.DefaultConfig.
	Ladder repair.Config
	// Interval is the cadence between background passes (<= 0: 30 s).
	Interval time.Duration
	// AgePerInference converts the replica's served crossbar inferences
	// into deployment age (<= 0: 1). Raising it compresses a service life
	// into fewer requests — the lifetime campaigns' accelerated aging.
	AgePerInference float64
	// Canaries is how many known-answer probe inputs each model gets
	// (<= 0: 16). They double as the delta-rule calibration set.
	Canaries int
}

// Repairer ages one model's deployment and runs its repair passes.
type Repairer struct {
	model *Model
	dep   *repair.Deployment
	det   *repair.Detector
	cfg   RepairConfig

	mu        sync.Mutex
	repairing bool
	status    RepairStatus
}

// RepairStatus is one repairer's metrics snapshot.
type RepairStatus struct {
	Model  string
	Policy string
	// Age is the deployment age (in inferences) after the last pass.
	Age float64
	// Repairing is set while a pass holds the model's write lock.
	Repairing bool
	// Passes counts completed passes; Errors counts passes that failed.
	Passes int64
	Errors int64
	// LastAgreement and LastSeverity come from the last pass's final probe.
	LastAgreement float64
	LastSeverity  string
	// Stats is the deployment's cumulative repair activity.
	Stats repair.Stats
}

// canaryInput builds the i-th deterministic probe image for an input size.
func canaryInput(size, i int) tensor.Vec {
	v := make(tensor.Vec, size)
	for j := range v {
		v[j] = float64((i+3)*(j+7)%97) / 96
	}
	return v
}

// cloneNetwork deep-copies a network through its serialized form.
func cloneNetwork(net *snn.Network) (*snn.Network, error) {
	var buf bytes.Buffer
	if err := snn.WriteNetwork(&buf, net); err != nil {
		return nil, err
	}
	return snn.ReadNetwork(&buf)
}

// NewRepairer attaches a lifetime deployment to the model: the CMOS
// baseline is rebuilt over a clone of the still-clean network, then the
// live network is programmed through the deployment (quantized to the
// technology's conductance levels, fabrication defects applied) and a
// detector records golden canary predictions from the clean reference.
func NewRepairer(m *Model, cfg RepairConfig) (*Repairer, error) {
	if cfg.Policy < repair.PolicyNone || cfg.Policy > repair.PolicyFull {
		return nil, fmt.Errorf("serve: repair policy %d", cfg.Policy)
	}
	if cfg.Ladder.Detect.AgreementFloor == 0 && cfg.Ladder.Detect.CriticalFloor == 0 {
		cfg.Ladder = repair.DefaultConfig()
	}
	n := cfg.Canaries
	if n <= 0 {
		n = 16
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	// The baseline must fork off before the deployment quantizes the live
	// weights: digital SRAM neither drifts nor wears.
	clone, err := cloneNetwork(m.Net)
	if err != nil {
		return nil, fmt.Errorf("serve: cloning %q for the CMOS baseline: %w", m.Name, err)
	}
	base, err := cmosbase.New(clone, m.Base.Opt)
	if err != nil {
		return nil, fmt.Errorf("serve: rebuilding baseline for %q: %w", m.Name, err)
	}
	m.Base = base
	m.backends[base.Name()] = base
	dep, err := repair.NewDeployment(m.Net, m.Map, cfg.Life)
	if err != nil {
		return nil, fmt.Errorf("serve: deploying %q: %w", m.Name, err)
	}
	inputs := make([]tensor.Vec, n)
	for i := range inputs {
		inputs[i] = canaryInput(m.Net.Input.Size(), i)
	}
	// Canary streams fork from the model's base encoder on negative seeds,
	// a namespace request seeds (>= 0 by convention) never use.
	enc := func(i int) snn.Encoder { return m.enc.ForkSeed(-1 - i) }
	det, err := repair.NewDetector(dep, cfg.Ladder.Detect, inputs, enc, m.Chip.Opt.Steps)
	if err != nil {
		return nil, fmt.Errorf("serve: detector for %q: %w", m.Name, err)
	}
	r := &Repairer{model: m, dep: dep, det: det, cfg: cfg}
	r.status = RepairStatus{Model: m.Name, Policy: cfg.Policy.String()}
	return r, nil
}

// Repairing reports whether a pass currently holds the model write lock.
func (r *Repairer) Repairing() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.repairing
}

// Status returns the metrics snapshot of the last completed pass.
func (r *Repairer) Status() RepairStatus {
	r.mu.Lock()
	defer r.mu.Unlock()
	st := r.status
	st.Repairing = r.repairing
	return st
}

func (r *Repairer) setRepairing(v bool) {
	r.mu.Lock()
	r.repairing = v
	r.mu.Unlock()
}

// Pass runs one repair pass: age the deployment to the model's served
// inference count, probe it, and climb the ladder as far as the policy
// allows. It holds the model's write lock for the duration, so in-flight
// batches finish first and new ones wait; /readyz reports "repairing".
func (r *Repairer) Pass() (repair.Outcome, error) {
	r.setRepairing(true)
	defer r.setRepairing(false)
	r.model.mu.Lock()
	defer r.model.mu.Unlock()
	scale := r.cfg.AgePerInference
	if scale <= 0 {
		scale = 1
	}
	if age := float64(r.model.served.Load()) * scale; age > r.dep.Age() {
		if err := r.dep.AdvanceTo(age); err != nil {
			return repair.Outcome{}, r.record(repair.Outcome{}, err)
		}
	}
	out, err := repair.RunOnce(r.dep, r.det, r.cfg.Policy, r.cfg.Ladder)
	return out, r.record(out, err)
}

// record folds a pass outcome into the status snapshot.
func (r *Repairer) record(out repair.Outcome, err error) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if err != nil {
		r.status.Errors++
		return err
	}
	r.status.Passes++
	r.status.Age = r.dep.Age()
	r.status.LastAgreement = out.After.Agreement
	r.status.LastSeverity = out.After.Severity.String()
	r.status.Stats = r.dep.Stats
	return nil
}

// loop runs passes on the ticker until stop closes.
func (r *Repairer) loop(interval time.Duration, stop <-chan struct{}) {
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-t.C:
			// A failed pass is recorded in the status (and the error
			// counter) and the next tick retries; the scheduler never dies.
			_, _ = r.Pass()
		}
	}
}

// StartRepair attaches a repairer to every registered model and starts the
// background scheduler. The registry's networks are quantized onto their
// deployments here, so RESPARC answers may change at attach time; without
// StartRepair the serving path is untouched, bit for bit.
func (s *Server) StartRepair(cfg RepairConfig) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return fmt.Errorf("serve: server closed")
	}
	if s.repairStop != nil {
		s.mu.Unlock()
		return fmt.Errorf("serve: repair already started")
	}
	s.mu.Unlock()
	if cfg.Ladder.Detect.Workers == 0 {
		cfg.Ladder.Detect.Workers = s.cfg.Workers
	}
	var reps []*Repairer
	for _, m := range s.cfg.Registry.Models() {
		r, err := NewRepairer(m, cfg)
		if err != nil {
			return err
		}
		s.metrics.RegisterRepair(r.Status)
		reps = append(reps, r)
	}
	interval := cfg.Interval
	if interval <= 0 {
		interval = 30 * time.Second
	}
	stop := make(chan struct{})
	s.mu.Lock()
	s.repairers = reps
	s.repairStop = stop
	s.mu.Unlock()
	for _, r := range reps {
		s.repairWG.Add(1)
		go func(r *Repairer) {
			defer s.repairWG.Done()
			r.loop(interval, stop)
		}(r)
	}
	return nil
}

// StopRepair stops the scheduler and waits for any in-flight pass to
// release its model lock. The deployments stay attached (the networks
// remain programmed); call it before Close so draining batches do not
// contend with a repair pass.
func (s *Server) StopRepair() {
	s.mu.Lock()
	stop := s.repairStop
	s.repairStop = nil
	s.mu.Unlock()
	if stop == nil {
		return
	}
	close(stop)
	s.repairWG.Wait()
}

// Repairers returns the attached repairers (nil when repair is off).
func (s *Server) Repairers() []*Repairer {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]*Repairer(nil), s.repairers...)
}
