package serve

import (
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"
)

// latencyWindow is how many recent request latencies the p50/p99 quantiles
// are computed over.
const latencyWindow = 2048

// Metrics collects the serving counters exposed at /metrics in Prometheus
// text exposition format: request/response totals, batching statistics,
// per-queue depth gauges and latency quantiles over a sliding window.
type Metrics struct {
	start time.Time

	mu            sync.Mutex
	requests      int64
	codes         map[int]int64
	batches       int64
	batchImages   int64
	batchFailures int64
	timeouts      int64
	panics        int64
	latencies     []float64 // ring buffer, seconds
	latNext       int
	latCount      int

	queues   []queueGauge
	breakers []breakerGauge
	repairs  []func() RepairStatus
}

type queueGauge struct {
	model   string
	backend string
	depth   func() int
}

type breakerGauge struct {
	model   string
	backend string
	state   func() BreakerState
}

// NewMetrics returns an empty collector.
func NewMetrics() *Metrics {
	return &Metrics{start: time.Now(), codes: make(map[int]int64)}
}

// Request counts one accepted classification request.
func (m *Metrics) Request() {
	m.mu.Lock()
	m.requests++
	m.mu.Unlock()
}

// Response counts one classification response by status code and records
// its end-to-end latency in the quantile window.
func (m *Metrics) Response(code int, latency time.Duration) {
	m.mu.Lock()
	m.codes[code]++
	if m.latencies == nil {
		m.latencies = make([]float64, latencyWindow)
	}
	m.latencies[m.latNext] = latency.Seconds()
	m.latNext = (m.latNext + 1) % latencyWindow
	if m.latCount < latencyWindow {
		m.latCount++
	}
	m.mu.Unlock()
}

// Batch counts one dispatched batch of the given size.
func (m *Metrics) Batch(size int) {
	m.mu.Lock()
	m.batches++
	m.batchImages += int64(size)
	m.mu.Unlock()
}

// BatchFailure counts one failed batch (backend error or recovered panic).
func (m *Metrics) BatchFailure() {
	m.mu.Lock()
	m.batchFailures++
	m.mu.Unlock()
}

// Timeout counts one request that hit its per-request deadline (504).
func (m *Metrics) Timeout() {
	m.mu.Lock()
	m.timeouts++
	m.mu.Unlock()
}

// Panic counts one HTTP handler panic converted to a 500 by the recovery
// middleware.
func (m *Metrics) Panic() {
	m.mu.Lock()
	m.panics++
	m.mu.Unlock()
}

// RegisterQueue adds a queue-depth gauge for one (model, backend) batcher.
func (m *Metrics) RegisterQueue(model, backend string, depth func() int) {
	m.mu.Lock()
	m.queues = append(m.queues, queueGauge{model: model, backend: backend, depth: depth})
	m.mu.Unlock()
}

// RegisterBreaker adds a circuit-state gauge for one (model, backend) pair.
func (m *Metrics) RegisterBreaker(model, backend string, state func() BreakerState) {
	m.mu.Lock()
	m.breakers = append(m.breakers, breakerGauge{model: model, backend: backend, state: state})
	m.mu.Unlock()
}

// RegisterRepair adds one model's self-healing status to the exposition.
func (m *Metrics) RegisterRepair(status func() RepairStatus) {
	m.mu.Lock()
	m.repairs = append(m.repairs, status)
	m.mu.Unlock()
}

// Snapshot is a consistent copy of the counters, for tests and for the
// load driver's reconciliation report.
type Snapshot struct {
	Requests      int64
	Codes         map[int]int64
	Batches       int64
	BatchImages   int64
	BatchFailures int64
	Timeouts      int64
	Panics        int64
	P50, P99      float64
	ImagesPerSec  float64
}

// Snapshot returns the current counters.
func (m *Metrics) Snapshot() Snapshot {
	m.mu.Lock()
	defer m.mu.Unlock()
	codes := make(map[int]int64, len(m.codes))
	for k, v := range m.codes {
		codes[k] = v
	}
	p50, p99 := m.quantilesLocked()
	return Snapshot{
		Requests:      m.requests,
		Codes:         codes,
		Batches:       m.batches,
		BatchImages:   m.batchImages,
		BatchFailures: m.batchFailures,
		Timeouts:      m.timeouts,
		Panics:        m.panics,
		P50:           p50,
		P99:           p99,
		ImagesPerSec:  m.imagesPerSecLocked(),
	}
}

func (m *Metrics) imagesPerSecLocked() float64 {
	up := time.Since(m.start).Seconds()
	if up <= 0 {
		return 0
	}
	return float64(m.batchImages) / up
}

// quantilesLocked computes p50/p99 over the latency window (nearest-rank).
func (m *Metrics) quantilesLocked() (p50, p99 float64) {
	if m.latCount == 0 {
		return 0, 0
	}
	window := append([]float64(nil), m.latencies[:m.latCount]...)
	sort.Float64s(window)
	rank := func(q float64) float64 {
		i := int(q*float64(len(window))+0.5) - 1
		if i < 0 {
			i = 0
		}
		if i >= len(window) {
			i = len(window) - 1
		}
		return window[i]
	}
	return rank(0.50), rank(0.99)
}

// ServeHTTP renders the Prometheus text exposition.
func (m *Metrics) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	m.mu.Lock()
	requests := m.requests
	codes := make([]int, 0, len(m.codes))
	for c := range m.codes {
		codes = append(codes, c)
	}
	sort.Ints(codes)
	counts := make([]int64, len(codes))
	for i, c := range codes {
		counts[i] = m.codes[c]
	}
	batches, images := m.batches, m.batchImages
	failures, timeouts, panics := m.batchFailures, m.timeouts, m.panics
	p50, p99 := m.quantilesLocked()
	ips := m.imagesPerSecLocked()
	queues := append([]queueGauge(nil), m.queues...)
	breakers := append([]breakerGauge(nil), m.breakers...)
	repairFns := append([]func() RepairStatus(nil), m.repairs...)
	uptime := time.Since(m.start).Seconds()
	m.mu.Unlock()
	repairs := make([]RepairStatus, len(repairFns))
	for i, fn := range repairFns {
		repairs[i] = fn()
	}

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	fmt.Fprintf(w, "# HELP resparc_serve_requests_total Classification requests accepted for processing.\n")
	fmt.Fprintf(w, "# TYPE resparc_serve_requests_total counter\n")
	fmt.Fprintf(w, "resparc_serve_requests_total %d\n", requests)
	fmt.Fprintf(w, "# HELP resparc_serve_responses_total Classification responses by HTTP status code.\n")
	fmt.Fprintf(w, "# TYPE resparc_serve_responses_total counter\n")
	for i, c := range codes {
		fmt.Fprintf(w, "resparc_serve_responses_total{code=%q} %d\n", strconv.Itoa(c), counts[i])
	}
	fmt.Fprintf(w, "# HELP resparc_serve_batches_total Micro-batches dispatched to the simulator pool.\n")
	fmt.Fprintf(w, "# TYPE resparc_serve_batches_total counter\n")
	fmt.Fprintf(w, "resparc_serve_batches_total %d\n", batches)
	fmt.Fprintf(w, "# HELP resparc_serve_batch_images_total Images classified through dispatched batches.\n")
	fmt.Fprintf(w, "# TYPE resparc_serve_batch_images_total counter\n")
	fmt.Fprintf(w, "resparc_serve_batch_images_total %d\n", images)
	fmt.Fprintf(w, "# HELP resparc_serve_batch_failures_total Batches that failed (backend error or recovered panic).\n")
	fmt.Fprintf(w, "# TYPE resparc_serve_batch_failures_total counter\n")
	fmt.Fprintf(w, "resparc_serve_batch_failures_total %d\n", failures)
	fmt.Fprintf(w, "# HELP resparc_serve_timeouts_total Requests that exceeded the per-request deadline (504).\n")
	fmt.Fprintf(w, "# TYPE resparc_serve_timeouts_total counter\n")
	fmt.Fprintf(w, "resparc_serve_timeouts_total %d\n", timeouts)
	fmt.Fprintf(w, "# HELP resparc_serve_panics_total HTTP handler panics converted to 500s by the recovery middleware.\n")
	fmt.Fprintf(w, "# TYPE resparc_serve_panics_total counter\n")
	fmt.Fprintf(w, "resparc_serve_panics_total %d\n", panics)
	fmt.Fprintf(w, "# HELP resparc_serve_breaker_state Circuit state per model/backend (0 closed, 1 open, 2 half-open).\n")
	fmt.Fprintf(w, "# TYPE resparc_serve_breaker_state gauge\n")
	for _, b := range breakers {
		fmt.Fprintf(w, "resparc_serve_breaker_state{model=%q,backend=%q} %d\n", b.model, b.backend, int(b.state()))
	}
	fmt.Fprintf(w, "# HELP resparc_serve_queue_depth Queued (undispatched) requests per model/backend.\n")
	fmt.Fprintf(w, "# TYPE resparc_serve_queue_depth gauge\n")
	for _, q := range queues {
		fmt.Fprintf(w, "resparc_serve_queue_depth{model=%q,backend=%q} %d\n", q.model, q.backend, q.depth())
	}
	fmt.Fprintf(w, "# HELP resparc_serve_request_latency_seconds End-to-end classification latency quantiles over the last %d requests.\n", latencyWindow)
	fmt.Fprintf(w, "# TYPE resparc_serve_request_latency_seconds gauge\n")
	fmt.Fprintf(w, "resparc_serve_request_latency_seconds{quantile=\"0.5\"} %g\n", p50)
	fmt.Fprintf(w, "resparc_serve_request_latency_seconds{quantile=\"0.99\"} %g\n", p99)
	fmt.Fprintf(w, "# HELP resparc_serve_images_per_second Classified images per second of uptime.\n")
	fmt.Fprintf(w, "# TYPE resparc_serve_images_per_second gauge\n")
	fmt.Fprintf(w, "resparc_serve_images_per_second %g\n", ips)
	fmt.Fprintf(w, "# HELP resparc_serve_uptime_seconds Seconds since the server started.\n")
	fmt.Fprintf(w, "# TYPE resparc_serve_uptime_seconds gauge\n")
	fmt.Fprintf(w, "resparc_serve_uptime_seconds %g\n", uptime)
	if len(repairs) > 0 {
		writeRepairMetrics(w, repairs)
	}
}

// writeRepairMetrics renders the self-healing exposition: per-model pass
// and activity counters from the deployment's repair.Stats, plus the age
// and last-probe gauges the dashboards alert on.
func writeRepairMetrics(w http.ResponseWriter, repairs []RepairStatus) {
	counter := func(name, help string, value func(RepairStatus) int64) {
		fmt.Fprintf(w, "# HELP %s %s\n", name, help)
		fmt.Fprintf(w, "# TYPE %s counter\n", name)
		for _, st := range repairs {
			fmt.Fprintf(w, "%s{model=%q,policy=%q} %d\n", name, st.Model, st.Policy, value(st))
		}
	}
	counter("resparc_repair_passes_total", "Completed repair passes.",
		func(st RepairStatus) int64 { return st.Passes })
	counter("resparc_repair_errors_total", "Repair passes that failed.",
		func(st RepairStatus) int64 { return st.Errors })
	counter("resparc_repair_probes_total", "Detector probes run (canary classification plus scan).",
		func(st RepairStatus) int64 { return int64(st.Stats.Probes) })
	counter("resparc_repair_refreshed_slots_total", "Slots rewritten by program-verify refresh.",
		func(st RepairStatus) int64 { return int64(st.Stats.Refreshes) })
	counter("resparc_repair_cells_rewritten_total", "Cross-points rewritten by refreshes.",
		func(st RepairStatus) int64 { return int64(st.Stats.CellsRewritten) })
	counter("resparc_repair_delta_allocs_total", "Allocations delta-rule tuned.",
		func(st RepairStatus) int64 { return int64(st.Stats.DeltaAllocs) })
	counter("resparc_repair_moves_total", "Allocations remapped to spare MPEs.",
		func(st RepairStatus) int64 { return int64(st.Stats.Moves) })
	counter("resparc_repair_escalations_total", "Remap escalations triggered.",
		func(st RepairStatus) int64 { return int64(st.Stats.Escalations) })
	fmt.Fprintf(w, "# HELP resparc_repair_age_inferences Deployment age in inferences after the last pass.\n")
	fmt.Fprintf(w, "# TYPE resparc_repair_age_inferences gauge\n")
	for _, st := range repairs {
		fmt.Fprintf(w, "resparc_repair_age_inferences{model=%q,policy=%q} %g\n", st.Model, st.Policy, st.Age)
	}
	fmt.Fprintf(w, "# HELP resparc_repair_agreement Canary agreement of the last pass's final probe.\n")
	fmt.Fprintf(w, "# TYPE resparc_repair_agreement gauge\n")
	for _, st := range repairs {
		fmt.Fprintf(w, "resparc_repair_agreement{model=%q,policy=%q} %g\n", st.Model, st.Policy, st.LastAgreement)
	}
	fmt.Fprintf(w, "# HELP resparc_repair_active Whether a repair pass currently holds the model write lock.\n")
	fmt.Fprintf(w, "# TYPE resparc_repair_active gauge\n")
	for _, st := range repairs {
		active := 0
		if st.Repairing {
			active = 1
		}
		fmt.Fprintf(w, "resparc_repair_active{model=%q,policy=%q} %d\n", st.Model, st.Policy, active)
	}
}
