package serve

import (
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

// Backpressure over HTTP: with the dispatcher pinned and the queue full,
// the server answers 429; after shutdown it answers 503.
func TestHTTPBackpressureAndShutdown(t *testing.T) {
	reg := testRegistry(t)
	model, _ := reg.Get("tiny-mlp")
	cfg := DefaultConfig(reg)
	cfg.MaxBatch = 1
	cfg.QueueSize = 1
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Pin the resparc batcher on a gate before any traffic flows. The swap
	// happens-before every submit, so the dispatcher observes it.
	g := newGatedRunner()
	srv.batchers[batcherKey("tiny-mlp", BackendRESPARC)].run = g.run
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	input := testInput(model.Net.Input.Size(), 1)
	async := func() chan int {
		out := make(chan int, 1)
		go func() {
			resp, _, _ := postClassify(t, ts.URL, ClassifyRequest{Model: "tiny-mlp", Input: input})
			out <- resp.StatusCode
		}()
		return out
	}
	// First request occupies the dispatcher...
	first := async()
	select {
	case <-g.started:
	case <-time.After(5 * time.Second):
		t.Fatal("dispatcher never started")
	}
	// ...the second fills the queue (the dispatcher is pinned, so the
	// request stays queued; poll until its goroutine has submitted)...
	second := async()
	for deadline := time.Now().Add(5 * time.Second); srv.batchers[batcherKey("tiny-mlp", BackendRESPARC)].depth() != 1; {
		if time.Now().After(deadline) {
			t.Fatal("queue never filled")
		}
		time.Sleep(time.Millisecond)
	}
	// ...and the third bounces with 429.
	resp, _, body := postClassify(t, ts.URL, ClassifyRequest{Model: "tiny-mlp", Input: input})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow status %d (%s)", resp.StatusCode, body)
	}
	close(g.gate)
	if code := <-first; code != http.StatusOK {
		t.Fatalf("pinned request status %d", code)
	}
	if code := <-second; code != http.StatusOK {
		t.Fatalf("queued request status %d", code)
	}

	// Graceful shutdown: admitted work drained above, new work is refused.
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		srv.Close()
	}()
	wg.Wait()
	resp2, _, body2 := postClassify(t, ts.URL, ClassifyRequest{Model: "tiny-mlp", Input: input})
	if resp2.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("post-shutdown status %d (%s)", resp2.StatusCode, body2)
	}
}

func TestMetricsQuantilesAndReconciliation(t *testing.T) {
	m := NewMetrics()
	for i := 1; i <= 100; i++ {
		m.Request()
		m.Response(200, time.Duration(i)*time.Millisecond)
	}
	m.Request()
	m.Response(429, 1*time.Millisecond)
	m.Batch(8)
	m.Batch(2)
	snap := m.Snapshot()
	if snap.Requests != 101 {
		t.Fatalf("requests %d", snap.Requests)
	}
	var total int64
	for _, c := range snap.Codes {
		total += c
	}
	if total != snap.Requests {
		t.Fatalf("codes %v don't reconcile with %d requests", snap.Codes, snap.Requests)
	}
	if snap.Batches != 2 || snap.BatchImages != 10 {
		t.Fatalf("batches %d images %d", snap.Batches, snap.BatchImages)
	}
	// 101 samples: p50 near 50ms, p99 near 100ms.
	if snap.P50 < 0.040 || snap.P50 > 0.060 {
		t.Fatalf("p50 %v", snap.P50)
	}
	if snap.P99 < 0.090 || snap.P99 > 0.101 {
		t.Fatalf("p99 %v", snap.P99)
	}
	if snap.ImagesPerSec <= 0 {
		t.Fatalf("images/sec %v", snap.ImagesPerSec)
	}

	rec := httptest.NewRecorder()
	m.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("scrape status %d", rec.Code)
	}
	rec2 := httptest.NewRecorder()
	m.ServeHTTP(rec2, httptest.NewRequest(http.MethodPost, "/metrics", nil))
	if rec2.Code != http.StatusMethodNotAllowed {
		t.Fatalf("POST scrape status %d", rec2.Code)
	}
}

func TestParseBackend(t *testing.T) {
	if b, err := ParseBackend("", BackendCMOS); err != nil || b != BackendCMOS {
		t.Fatalf("empty backend: %v %v", b, err)
	}
	if b, err := ParseBackend("resparc", BackendCMOS); err != nil || b != BackendRESPARC {
		t.Fatalf("resparc: %v %v", b, err)
	}
	if _, err := ParseBackend("tpu", BackendCMOS); err == nil {
		t.Fatal("tpu accepted")
	}
}
