package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync"
	"testing"
	"time"

	"resparc/internal/fault"
	"resparc/internal/perf"
	"resparc/internal/tensor"
)

// The breaker state machine under an injectable clock: closed opens after
// threshold consecutive failures, rejects during the cooldown, lets exactly
// one probe through after it, and closes (or reopens) on the probe's
// outcome.
func TestBreakerStateMachine(t *testing.T) {
	now := time.Unix(0, 0)
	b := newBreaker(3, time.Second)
	b.now = func() time.Time { return now }

	if ok, _ := b.allow(); !ok {
		t.Fatal("fresh breaker rejected a request")
	}
	b.onFailure()
	b.onFailure()
	if st := b.State(); st != BreakerClosed {
		t.Fatalf("state %v after 2/3 failures, want closed", st)
	}
	b.onFailure()
	if st := b.State(); st != BreakerOpen {
		t.Fatalf("state %v after 3/3 failures, want open", st)
	}
	ok, retry := b.allow()
	if ok {
		t.Fatal("open breaker admitted a request")
	}
	if retry <= 0 || retry > time.Second {
		t.Fatalf("retry-after %v outside (0, 1s]", retry)
	}

	// Cooldown elapses: exactly one probe gets through.
	now = now.Add(time.Second)
	if ok, _ := b.allow(); !ok {
		t.Fatal("post-cooldown probe rejected")
	}
	if st := b.State(); st != BreakerHalfOpen {
		t.Fatalf("state %v during probe, want half-open", st)
	}
	if ok, _ := b.allow(); ok {
		t.Fatal("second request admitted while the probe is in flight")
	}

	// Probe fails: straight back to open, cooldown restarts.
	b.onFailure()
	if st := b.State(); st != BreakerOpen {
		t.Fatalf("state %v after failed probe, want open", st)
	}
	if ok, _ := b.allow(); ok {
		t.Fatal("reopened breaker admitted a request")
	}

	// Next probe succeeds: closed, and the failure streak is forgotten.
	now = now.Add(time.Second)
	if ok, _ := b.allow(); !ok {
		t.Fatal("second probe rejected")
	}
	b.onSuccess()
	if st := b.State(); st != BreakerClosed {
		t.Fatalf("state %v after successful probe, want closed", st)
	}
	b.onFailure()
	b.onFailure()
	if st := b.State(); st != BreakerClosed {
		t.Fatalf("state %v, recovery should have reset the failure streak", st)
	}

	// An aborted probe frees the slot instead of wedging half-open.
	b.onFailure()
	if st := b.State(); st != BreakerOpen {
		t.Fatalf("state %v, want open", st)
	}
	now = now.Add(time.Second)
	if ok, _ := b.allow(); !ok {
		t.Fatal("probe rejected")
	}
	b.probeAborted()
	if ok, _ := b.allow(); !ok {
		t.Fatal("slot not freed after probeAborted")
	}
}

// The graceful-degradation acceptance test: a whole-mPE fault injected into
// one model's chip opens that (model, backend) circuit — 503 + Retry-After
// — while the same model's CMOS backend and a second model keep serving;
// clearing the fault lets the half-open probe close the circuit again.
// Run under -race: the fault flips while concurrent requests are in flight.
func TestBackendFaultCircuitBreaker(t *testing.T) {
	reg := testRegistry(t)
	if _, err := reg.AddNetwork(testNetwork(t, "other-mlp", 21)); err != nil {
		t.Fatal(err)
	}
	model, _ := reg.Get("tiny-mlp")
	other, _ := reg.Get("other-mlp")
	cfg := DefaultConfig(reg)
	cfg.MaxBatch = 4
	cfg.MaxWait = time.Millisecond
	cfg.BreakerThreshold = 2
	cfg.BreakerCooldown = 100 * time.Millisecond
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Close()

	// Kill an mPE that carries tiny-mlp allocations. The chip's batch entry
	// points fail fast with ErrDegraded, so every RESPARC batch errors.
	model.Chip.SetFaults(fault.Campaign{DeadMPEs: []int{0}})

	// Sequential requests: the first BreakerThreshold fail with 500 (each
	// rides its own failing batch), then the open circuit answers 503 with
	// a Retry-After hint, without touching the backend.
	var got500, got503 bool
	var retryAfter string
	for i := 0; i < 20 && !got503; i++ {
		resp, _, body := postClassify(t, ts.URL, ClassifyRequest{
			Model: "tiny-mlp", Backend: "resparc",
			Input: testInput(model.Net.Input.Size(), int64(i)), Seed: int64(i),
		})
		switch resp.StatusCode {
		case http.StatusInternalServerError:
			got500 = true
		case http.StatusServiceUnavailable:
			got503 = true
			retryAfter = resp.Header.Get("Retry-After")
		default:
			t.Fatalf("request %d: status %d body %s", i, resp.StatusCode, body)
		}
	}
	if !got500 || !got503 {
		t.Fatalf("saw 500=%v 503=%v, want both (failures then open circuit)", got500, got503)
	}
	if secs, err := strconv.Atoi(retryAfter); err != nil || secs < 1 {
		t.Fatalf("Retry-After %q, want a positive integer of seconds", retryAfter)
	}

	// Concurrent mixed traffic while the circuit is open: the healthy
	// backends must be unaffected.
	const n = 24
	codes := make([]int, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			req := ClassifyRequest{Seed: int64(i)}
			switch i % 3 {
			case 0: // broken
				req.Model, req.Backend = "tiny-mlp", "resparc"
				req.Input = testInput(model.Net.Input.Size(), int64(i))
			case 1: // same model, healthy backend
				req.Model, req.Backend = "tiny-mlp", "cmos"
				req.Input = testInput(model.Net.Input.Size(), int64(i))
			default: // healthy model
				req.Model, req.Backend = "other-mlp", "resparc"
				req.Input = testInput(other.Net.Input.Size(), int64(i))
			}
			resp, _, _ := postClassify(t, ts.URL, req)
			codes[i] = resp.StatusCode
		}(i)
	}
	wg.Wait()
	for i, code := range codes {
		if i%3 == 0 {
			// Broken backend: rejected by the circuit, or a 500 if the
			// request rode a probe batch.
			if code != http.StatusServiceUnavailable && code != http.StatusInternalServerError {
				t.Fatalf("broken backend request %d: status %d, want 503 or 500", i, code)
			}
		} else if code != http.StatusOK {
			t.Fatalf("healthy request %d: status %d, want 200", i, code)
		}
	}

	// The health surfaces agree: /healthz is degraded and /v1/models pins
	// the blame on tiny-mlp/resparc.
	var health HealthResponse
	getJSON(t, ts.URL+"/healthz", &health)
	if health.Status != "degraded" {
		t.Fatalf("healthz status %q, want degraded", health.Status)
	}
	var models struct {
		Models []ModelInfo `json:"models"`
	}
	getJSON(t, ts.URL+"/v1/models", &models)
	for _, m := range models.Models {
		if m.Name == "tiny-mlp" && m.Health["resparc"] == "closed" {
			t.Fatalf("tiny-mlp resparc health %q, want open/half-open", m.Health["resparc"])
		}
		if m.Name == "other-mlp" && m.Health["resparc"] != "closed" {
			t.Fatalf("other-mlp resparc health %q, want closed", m.Health["resparc"])
		}
	}

	// Clear the fault: after the cooldown the next request is the probe,
	// it succeeds, and the circuit closes — automatic recovery.
	model.Chip.ClearFaults()
	deadline := time.Now().Add(10 * time.Second)
	recovered := false
	for time.Now().Before(deadline) {
		time.Sleep(cfg.BreakerCooldown)
		resp, _, _ := postClassify(t, ts.URL, ClassifyRequest{
			Model: "tiny-mlp", Backend: "resparc",
			Input: testInput(model.Net.Input.Size(), 99), Seed: 7,
		})
		if resp.StatusCode == http.StatusOK {
			recovered = true
			break
		}
	}
	if !recovered {
		t.Fatal("circuit never recovered after the fault was cleared")
	}
	getJSON(t, ts.URL+"/healthz", &health)
	if health.Status != "ok" {
		t.Fatalf("healthz status %q after recovery, want ok", health.Status)
	}
	if snap := srv.Metrics().Snapshot(); snap.BatchFailures < int64(cfg.BreakerThreshold) {
		t.Fatalf("batch_failures_total %d, want >= %d", snap.BatchFailures, cfg.BreakerThreshold)
	}
}

// A backend that panics mid-batch must not kill the dispatcher goroutine
// (or the process): the whole batch gets a 500 and the breaker counts the
// failure like any other.
func TestBackendPanicBecomesBatchError(t *testing.T) {
	reg := testRegistry(t)
	cfg := DefaultConfig(reg)
	cfg.MaxWait = time.Millisecond
	cfg.BreakerThreshold = 100 // keep the circuit closed; this test is about the panic path
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Close()

	// Swap the RESPARC batcher for one whose runner panics, reusing the
	// server's breaker hook so the failure is observable.
	key := batcherKey("tiny-mlp", BackendRESPARC)
	br := srv.breakers[key]
	old := srv.batchers[key]
	srv.batchers[key] = newBatcher(4, 1, time.Millisecond,
		func([]tensor.Vec, []int64) ([]perf.Result, []int, error) { panic("crossbar on fire") },
		nil,
		func(err error) {
			if err != nil {
				br.onFailure()
				srv.metrics.BatchFailure()
			} else {
				br.onSuccess()
			}
		})
	defer srv.batchers[key].close()
	defer func() { srv.batchers[key] = old }()

	model, _ := reg.Get("tiny-mlp")
	resp, _, body := postClassify(t, ts.URL, ClassifyRequest{
		Model: "tiny-mlp", Backend: "resparc", Input: testInput(model.Net.Input.Size(), 1),
	})
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status %d body %s, want 500", resp.StatusCode, body)
	}
	if !bytes.Contains([]byte(body), []byte("panicked")) {
		t.Fatalf("body %q does not mention the recovered panic", body)
	}
	if snap := srv.Metrics().Snapshot(); snap.BatchFailures < 1 {
		t.Fatal("panicking batch not counted as a batch failure")
	}
	// The CMOS backend of the same model is untouched.
	resp, _, body = postClassify(t, ts.URL, ClassifyRequest{
		Model: "tiny-mlp", Backend: "cmos", Input: testInput(model.Net.Input.Size(), 1),
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cmos after resparc panic: status %d body %s", resp.StatusCode, body)
	}
}

// The recovery middleware converts a panicking HTTP handler into a 500 and
// a panics_total increment instead of a dropped connection.
func TestHandlerPanicRecoveryMiddleware(t *testing.T) {
	reg := testRegistry(t)
	srv, err := New(DefaultConfig(reg))
	if err != nil {
		t.Fatal(err)
	}
	srv.mux.HandleFunc("/boom", func(http.ResponseWriter, *http.Request) { panic("kaboom") })
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Close()

	resp, err := http.Get(ts.URL + "/boom")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status %d, want 500", resp.StatusCode)
	}
	if snap := srv.Metrics().Snapshot(); snap.Panics != 1 {
		t.Fatalf("panics_total %d, want 1", snap.Panics)
	}
}

// A batch that outlives the per-request deadline answers 504 and counts a
// timeout; the late dispatcher send lands in the buffered done channel and
// is garbage-collected.
func TestRequestDeadline504(t *testing.T) {
	reg := testRegistry(t)
	cfg := DefaultConfig(reg)
	cfg.RequestTimeout = 20 * time.Millisecond
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Close()

	// Swap in a batcher whose runner sleeps past the deadline.
	key := batcherKey("tiny-mlp", BackendRESPARC)
	old := srv.batchers[key]
	slow := newBatcher(4, 1, time.Millisecond,
		func(inputs []tensor.Vec, _ []int64) ([]perf.Result, []int, error) {
			time.Sleep(200 * time.Millisecond)
			return make([]perf.Result, len(inputs)), make([]int, len(inputs)), nil
		}, nil, nil)
	srv.batchers[key] = slow
	defer func() {
		srv.batchers[key] = old
		slow.close()
	}()

	model, _ := reg.Get("tiny-mlp")
	resp, _, body := postClassify(t, ts.URL, ClassifyRequest{
		Model: "tiny-mlp", Backend: "resparc", Input: testInput(model.Net.Input.Size(), 1),
	})
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d body %s, want 504", resp.StatusCode, body)
	}
	if snap := srv.Metrics().Snapshot(); snap.Timeouts != 1 {
		t.Fatalf("timeouts_total %d, want 1", snap.Timeouts)
	}
}

func getJSON(t *testing.T, url string, into any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(into); err != nil {
		t.Fatal(err)
	}
}
