package serve

import (
	"sync"
	"time"
)

// BreakerState is the health of one (model, backend) circuit.
type BreakerState int32

const (
	// BreakerClosed: healthy, requests flow.
	BreakerClosed BreakerState = iota
	// BreakerOpen: the backend failed repeatedly; requests are rejected
	// with 503 + Retry-After until the cooldown elapses.
	BreakerOpen
	// BreakerHalfOpen: cooldown over; a single probe request is allowed
	// through to test recovery.
	BreakerHalfOpen
)

func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	default:
		return "unknown"
	}
}

// breaker is a per-(model, backend) circuit breaker:
//
//	closed    -- threshold consecutive batch failures --> open
//	open      -- cooldown elapses, next request probes --> half-open
//	half-open -- probe batch succeeds --> closed
//	half-open -- probe batch fails    --> open (cooldown restarts)
//
// Failures are batch outcomes (backend error or recovered panic), reported
// by the batcher's onResult hook; admission is gated by allow() in the
// request handler. The clock is injectable for tests.
type breaker struct {
	threshold int
	cooldown  time.Duration
	now       func() time.Time

	mu       sync.Mutex
	state    BreakerState
	failures int // consecutive
	openedAt time.Time
	probing  bool // a half-open probe is in flight
}

func newBreaker(threshold int, cooldown time.Duration) *breaker {
	if threshold < 1 {
		threshold = 3
	}
	if cooldown <= 0 {
		cooldown = 2 * time.Second
	}
	return &breaker{threshold: threshold, cooldown: cooldown, now: time.Now}
}

// allow reports whether a request may proceed. When it returns false,
// retryAfter is the suggested client backoff (the Retry-After header).
func (b *breaker) allow() (ok bool, retryAfter time.Duration) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return true, 0
	case BreakerOpen:
		wait := b.openedAt.Add(b.cooldown).Sub(b.now())
		if wait > 0 {
			return false, wait
		}
		b.state = BreakerHalfOpen
		b.probing = true
		return true, 0
	default: // BreakerHalfOpen
		if b.probing {
			return false, b.cooldown
		}
		b.probing = true
		return true, 0
	}
}

// probeAborted releases the half-open probe slot when an admitted probe
// never reached a batch (queue full, shutdown): without an outcome the
// circuit would wait forever for one.
func (b *breaker) probeAborted() {
	b.mu.Lock()
	if b.state == BreakerHalfOpen {
		b.probing = false
	}
	b.mu.Unlock()
}

// onSuccess records a successful batch: the circuit closes and the failure
// streak resets.
func (b *breaker) onSuccess() {
	b.mu.Lock()
	b.state = BreakerClosed
	b.failures = 0
	b.probing = false
	b.mu.Unlock()
}

// onFailure records a failed batch: a half-open probe reopens the circuit
// immediately, a closed one opens after threshold consecutive failures.
func (b *breaker) onFailure() {
	b.mu.Lock()
	b.failures++
	b.probing = false
	if b.state == BreakerHalfOpen || b.failures >= b.threshold {
		b.state = BreakerOpen
		b.openedAt = b.now()
	}
	b.mu.Unlock()
}

// State returns the current circuit state.
func (b *breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}
