package serve

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"resparc/internal/fault"
	"resparc/internal/repair"
)

// repairTestServer builds a one-model server with an aggressive lifetime
// model attached: strong drift, some wear, and an age scale that reaches
// end of life after ~100 served inferences.
func repairTestServer(t *testing.T, policy repair.Policy) (*Server, *httptest.Server) {
	t.Helper()
	reg := testRegistry(t)
	srv, err := New(DefaultConfig(reg))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	camp := fault.NewCampaign(7, reg.Config().Tech)
	camp.DriftSigma = 0.6
	err = srv.StartRepair(RepairConfig{
		Life:            fault.Lifetime{Camp: camp, EOL: 1e4, WearFraction: 0.01},
		Policy:          policy,
		Interval:        time.Hour, // passes are triggered explicitly
		AgePerInference: 100,
		Canaries:        8,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts
}

func readyzStatus(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body HealthResponse
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body.Status
}

// The serving repair loop end-to-end: requests age the deployment, a pass
// detects the degradation and repairs it, the repair window flips /readyz
// to "repairing", and the resparc_repair_* metrics appear.
func TestRepairerLifecycle(t *testing.T) {
	srv, ts := repairTestServer(t, repair.PolicyFull)
	model := srv.cfg.Registry.Models()[0]
	input := testInput(model.Net.Input.Size(), 5)

	if code, status := readyzStatus(t, ts.URL); code != http.StatusOK || status != "ready" {
		t.Fatalf("fresh replica readyz %d %q, want 200 ready", code, status)
	}

	// Age the deployment to EOL through real served traffic.
	for i := 0; i < 100; i++ {
		resp, _, body := postClassify(t, ts.URL, ClassifyRequest{
			Model: model.Name, Backend: string(BackendRESPARC), Input: input, Seed: int64(i),
		})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d: status %d (%s)", i, resp.StatusCode, body)
		}
	}
	if got := model.Served(); got != 100 {
		t.Fatalf("served counter %d after 100 resparc requests", got)
	}

	reps := srv.Repairers()
	if len(reps) != 1 {
		t.Fatalf("%d repairers for a one-model registry", len(reps))
	}
	r := reps[0]
	out, err := r.Pass()
	if err != nil {
		t.Fatal(err)
	}
	if age := r.Status().Age; age != 1e4 {
		t.Fatalf("deployment age %g after 100 inferences at scale 100, want 1e4", age)
	}
	if !out.Before.Degraded() {
		t.Fatalf("EOL drift (sigma %.2f effective) not detected: %+v",
			r.cfg.Life.Camp.DriftSigmaAt(1e4), out.Before)
	}
	if out.Refreshed == 0 {
		t.Fatalf("full policy ran no refresh on a degraded deployment: %+v", out)
	}
	if out.After.Agreement < out.Before.Agreement {
		t.Fatalf("repair lowered agreement %.3f -> %.3f", out.Before.Agreement, out.After.Agreement)
	}

	// The repair window: readiness flips to 503 "repairing" while a pass
	// holds the model write lock, and back to ready afterwards.
	r.setRepairing(true)
	if code, status := readyzStatus(t, ts.URL); code != http.StatusServiceUnavailable || status != "repairing" {
		t.Fatalf("mid-pass readyz %d %q, want 503 repairing", code, status)
	}
	r.setRepairing(false)
	if code, status := readyzStatus(t, ts.URL); code != http.StatusOK || status != "ready" {
		t.Fatalf("post-pass readyz %d %q, want 200 ready", code, status)
	}

	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	raw, err := io.ReadAll(mresp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(raw)
	for _, want := range []string{
		`resparc_repair_passes_total{model="tiny-mlp",policy="full"} 1`,
		`resparc_repair_age_inferences{model="tiny-mlp",policy="full"} 10000`,
		"resparc_repair_refreshed_slots_total",
		"resparc_repair_agreement",
		"resparc_repair_active",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics exposition missing %q", want)
		}
	}

	if err := srv.StartRepair(RepairConfig{Life: r.cfg.Life}); err == nil {
		t.Fatal("second StartRepair accepted")
	}
	srv.StopRepair()
	srv.StopRepair() // idempotent
}

// The CMOS baseline forks off a clone before the deployment quantizes the
// live network: its answers are byte-identical before and after attaching
// the repairer, and survive aging plus a repair pass untouched.
func TestRepairLeavesCMOSBaselineUntouched(t *testing.T) {
	reg := testRegistry(t)
	model := reg.Models()[0]
	srv, err := New(DefaultConfig(reg))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	inputs := make([][]float64, 4)
	before := make([]ClassifyResponse, len(inputs))
	for i := range inputs {
		inputs[i] = testInput(model.Net.Input.Size(), int64(20+i))
		resp, out, body := postClassify(t, ts.URL, ClassifyRequest{
			Model: model.Name, Backend: string(BackendCMOS), Input: inputs[i], Seed: int64(i),
		})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("pre-attach cmos request %d: %d (%s)", i, resp.StatusCode, body)
		}
		before[i] = out
	}

	camp := fault.NewCampaign(7, reg.Config().Tech)
	camp.DriftSigma = 0.6
	err = srv.StartRepair(RepairConfig{
		Life:            fault.Lifetime{Camp: camp, EOL: 1e4, WearFraction: 0.01},
		Policy:          repair.PolicyFull,
		Interval:        time.Hour,
		AgePerInference: 100,
		Canaries:        8,
	})
	if err != nil {
		t.Fatal(err)
	}

	check := func(stage string) {
		t.Helper()
		for i := range inputs {
			resp, out, body := postClassify(t, ts.URL, ClassifyRequest{
				Model: model.Name, Backend: string(BackendCMOS), Input: inputs[i], Seed: int64(i),
			})
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("%s cmos request %d: %d (%s)", stage, i, resp.StatusCode, body)
			}
			if out.Prediction != before[i].Prediction {
				t.Fatalf("%s: cmos prediction for input %d changed %d -> %d",
					stage, i, before[i].Prediction, out.Prediction)
			}
		}
	}
	check("post-attach")

	// Age via resparc traffic, repair, and re-check: the baseline clock
	// never ticks (CMOS requests are excluded from the served counter).
	served := model.Served()
	for i := 0; i < 50; i++ {
		resp, _, body := postClassify(t, ts.URL, ClassifyRequest{
			Model: model.Name, Backend: string(BackendRESPARC), Input: inputs[0], Seed: int64(i),
		})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("aging request %d: %d (%s)", i, resp.StatusCode, body)
		}
	}
	if got := model.Served(); got != served+50 {
		t.Fatalf("served counter %d, want %d (cmos requests must not count)", got, served+50)
	}
	if _, err := srv.Repairers()[0].Pass(); err != nil {
		t.Fatal(err)
	}
	check("post-repair")
}

// Classification and repair passes interleave safely: the model write lock
// quiesces the weights per pass, so concurrent requests either run before
// or after a pass, never during (exercised under -race in CI).
func TestRepairConcurrentWithClassification(t *testing.T) {
	srv, ts := repairTestServer(t, repair.PolicyRefresh)
	model := srv.cfg.Registry.Models()[0]
	input := testInput(model.Net.Input.Size(), 9)

	var wg sync.WaitGroup
	errc := make(chan error, 1)
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				resp, _, _ := postClassify(t, ts.URL, ClassifyRequest{
					Model: model.Name, Input: input, Seed: int64(c*100 + i),
				})
				if resp.StatusCode != http.StatusOK {
					select {
					case errc <- nil:
					default:
					}
				}
			}
		}(c)
	}
	r := srv.Repairers()[0]
	for i := 0; i < 3; i++ {
		if _, err := r.Pass(); err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()
	select {
	case <-errc:
		t.Fatal("a request failed while repair passes interleaved")
	default:
	}
	if got := r.Status().Passes; got != 3 {
		t.Fatalf("pass counter %d, want 3", got)
	}
}
