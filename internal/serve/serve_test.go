package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"resparc/internal/snn"
	"resparc/internal/tensor"
)

// testConfig keeps registry builds fast: few steps, small crossbars.
func testConfig() RegistryConfig {
	cfg := DefaultRegistryConfig()
	cfg.Steps = 10
	cfg.MCASize = 16
	return cfg
}

func testNetwork(t *testing.T, name string, seed int64) *snn.Network {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	mk := func(in, out int) *snn.Layer {
		w := tensor.NewMat(out, in)
		for i := range w.Data {
			w.Data[i] = rng.NormFloat64() * 0.3
		}
		l, err := snn.NewDense(fmt.Sprintf("d%dx%d", in, out), in, out, w, 1)
		if err != nil {
			t.Fatal(err)
		}
		return l
	}
	net, err := snn.NewNetwork(name, tensor.Shape3{H: 1, W: 1, C: 24}, mk(24, 16), mk(16, 6))
	if err != nil {
		t.Fatal(err)
	}
	return net
}

func testRegistry(t *testing.T) *Registry {
	t.Helper()
	reg, err := NewRegistry(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := reg.AddNetwork(testNetwork(t, "tiny-mlp", 11)); err != nil {
		t.Fatal(err)
	}
	return reg
}

func testInput(size int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]float64, size)
	for i := range out {
		out[i] = rng.Float64()
	}
	return out
}

func postClassify(t *testing.T, url string, req ClassifyRequest) (*http.Response, ClassifyResponse, string) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/v1/classify", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	var out ClassifyResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
			t.Fatalf("decoding %q: %v", buf.String(), err)
		}
	}
	return resp, out, buf.String()
}

// The acceptance test: >= 64 simultaneous requests against a running
// server, every response bit-identical to the serial single-image
// reference, and /metrics counters reconciling with the request count.
func TestConcurrentRequestsMatchSerialReference(t *testing.T) {
	reg := testRegistry(t)
	model, _ := reg.Get("tiny-mlp")
	cfg := DefaultConfig(reg)
	cfg.MaxBatch = 8
	cfg.MaxWait = time.Millisecond
	cfg.QueueSize = 256
	cfg.Workers = 4
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Close()

	const n = 80 // 64 would do; spread over both backends
	type result struct {
		idx  int
		code int
		resp ClassifyResponse
		body string
	}
	inputs := make([][]float64, n)
	backends := make([]string, n)
	for i := range inputs {
		inputs[i] = testInput(model.Net.Input.Size(), int64(1000+i%7))
		if i%3 == 0 {
			backends[i] = "cmos"
		} else {
			backends[i] = "resparc"
		}
	}
	results := make([]result, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, out, body := postClassify(t, ts.URL, ClassifyRequest{
				Model:   "tiny-mlp",
				Backend: backends[i],
				Input:   inputs[i],
				Seed:    int64(i % 13),
			})
			results[i] = result{idx: i, code: resp.StatusCode, resp: out, body: body}
		}(i)
	}
	wg.Wait()

	rcfg := reg.Config()
	base := snn.NewPoissonEncoder(rcfg.MaxProb, rcfg.Seed)
	sawBatched := false
	for _, r := range results {
		if r.code != http.StatusOK {
			t.Fatalf("request %d: status %d body %s", r.idx, r.code, r.body)
		}
		// Serial single-image reference through the public simulator API,
		// with the same fork the server derives from the request seed.
		in := make(tensor.Vec, len(inputs[r.idx]))
		copy(in, inputs[r.idx])
		enc := base.ForkSeed(r.idx % 13)
		var wantPred int
		var wantEnergy, wantLatency float64
		if backends[r.idx] == "cmos" {
			res, rep := model.Base.Classify(in, enc)
			wantPred, wantEnergy, wantLatency = rep.Predicted, res.Energy, res.Latency
		} else {
			res, rep := model.Chip.Classify(in, enc)
			wantPred, wantEnergy, wantLatency = rep.Predicted, res.Energy, res.Latency
		}
		if r.resp.Prediction != wantPred {
			t.Fatalf("request %d (%s): prediction %d, serial reference %d", r.idx, backends[r.idx], r.resp.Prediction, wantPred)
		}
		if r.resp.Perf.Energy != wantEnergy || r.resp.Perf.Latency != wantLatency {
			t.Fatalf("request %d (%s): perf %v/%v, serial reference %v/%v",
				r.idx, backends[r.idx], r.resp.Perf.Energy, r.resp.Perf.Latency, wantEnergy, wantLatency)
		}
		if r.resp.BatchSize < 1 || r.resp.BatchSize > cfg.MaxBatch {
			t.Fatalf("request %d: batch size %d outside [1, %d]", r.idx, r.resp.BatchSize, cfg.MaxBatch)
		}
		if r.resp.BatchSize > 1 {
			sawBatched = true
		}
	}
	if !sawBatched {
		t.Log("note: no request shared a batch (timing-dependent); determinism still verified")
	}

	// Metrics must reconcile with what we sent.
	snap := srv.Metrics().Snapshot()
	if snap.Requests != n {
		t.Fatalf("requests_total %d, want %d", snap.Requests, n)
	}
	if snap.Codes[http.StatusOK] != n {
		t.Fatalf("responses{200} %d, want %d", snap.Codes[http.StatusOK], n)
	}
	var total int64
	for _, c := range snap.Codes {
		total += c
	}
	if total != snap.Requests {
		t.Fatalf("responses %d don't reconcile with requests %d", total, snap.Requests)
	}
	if snap.BatchImages != n {
		t.Fatalf("batch_images_total %d, want %d", snap.BatchImages, n)
	}
	if snap.Batches < 1 || snap.Batches > n {
		t.Fatalf("batches_total %d outside [1, %d]", snap.Batches, n)
	}

	// And the scrape endpoint must agree with the snapshot.
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(mresp.Body); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{
		fmt.Sprintf("resparc_serve_requests_total %d", n),
		fmt.Sprintf("resparc_serve_responses_total{code=\"200\"} %d", n),
		fmt.Sprintf("resparc_serve_batch_images_total %d", n),
		"resparc_serve_queue_depth{model=\"tiny-mlp\",backend=\"resparc\"}",
		"resparc_serve_request_latency_seconds{quantile=\"0.5\"}",
		"resparc_serve_request_latency_seconds{quantile=\"0.99\"}",
		"resparc_serve_images_per_second",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("metrics missing %q in:\n%s", want, text)
		}
	}
}

// Identical requests return bit-identical responses even when re-sent into
// a differently composed batch.
func TestSameRequestSameAnswer(t *testing.T) {
	reg := testRegistry(t)
	model, _ := reg.Get("tiny-mlp")
	cfg := DefaultConfig(reg)
	cfg.MaxBatch = 4
	cfg.MaxWait = time.Millisecond
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Close()

	req := ClassifyRequest{Model: "tiny-mlp", Input: testInput(model.Net.Input.Size(), 5), Seed: 42}
	_, first, _ := postClassify(t, ts.URL, req)
	// Re-send alone and alongside unrelated traffic.
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			postClassify(t, ts.URL, ClassifyRequest{
				Model: "tiny-mlp", Input: testInput(model.Net.Input.Size(), int64(50+i)), Seed: int64(i),
			})
		}(i)
	}
	_, again, _ := postClassify(t, ts.URL, req)
	wg.Wait()
	if first.Prediction != again.Prediction || !reflect.DeepEqual(first.Perf, again.Perf) {
		t.Fatalf("same request diverged: %+v vs %+v", first, again)
	}
}

func TestClassifyValidation(t *testing.T) {
	reg := testRegistry(t)
	srv, err := New(DefaultConfig(reg))
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Close()

	size := 24
	cases := []struct {
		name string
		req  ClassifyRequest
		code int
	}{
		{"unknown model", ClassifyRequest{Model: "nope", Input: testInput(size, 1)}, http.StatusNotFound},
		{"bad backend", ClassifyRequest{Model: "tiny-mlp", Backend: "tpu", Input: testInput(size, 1)}, http.StatusBadRequest},
		{"short input", ClassifyRequest{Model: "tiny-mlp", Input: testInput(size-1, 1)}, http.StatusBadRequest},
		{"out of range", ClassifyRequest{Model: "tiny-mlp", Input: append(testInput(size-1, 1), 1.5)}, http.StatusBadRequest},
	}
	for _, c := range cases {
		resp, _, body := postClassify(t, ts.URL, c.req)
		if resp.StatusCode != c.code {
			t.Fatalf("%s: status %d want %d (%s)", c.name, resp.StatusCode, c.code, body)
		}
	}
	// Wrong method.
	resp, err := http.Get(ts.URL + "/v1/classify")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET classify: %d", resp.StatusCode)
	}
	// Garbage body.
	gresp, err := http.Post(ts.URL+"/v1/classify", "application/json", strings.NewReader("{"))
	if err != nil {
		t.Fatal(err)
	}
	gresp.Body.Close()
	if gresp.StatusCode != http.StatusBadRequest {
		t.Fatalf("garbage body: %d", gresp.StatusCode)
	}
}

func TestModelsEndpoint(t *testing.T) {
	reg := testRegistry(t)
	srv, err := New(DefaultConfig(reg))
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Close()

	resp, err := http.Get(ts.URL + "/v1/models")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out struct {
		Models []ModelInfo `json:"models"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out.Models) != 1 {
		t.Fatalf("models %d, want 1", len(out.Models))
	}
	m := out.Models[0]
	if m.Name != "tiny-mlp" || m.InputSize != 24 || m.Classes != 6 || m.MCAs < 1 || m.Utilization <= 0 {
		t.Fatalf("model info %+v", m)
	}
	// The default config also registers the multi-chip pipeline, clamped to
	// the model's two layers.
	if len(m.Backends) != 3 || m.Backends[0] != "resparc" || m.Backends[1] != "cmos" || m.Backends[2] != "resparc-x2" {
		t.Fatalf("backends %v", m.Backends)
	}
}

// A network serialized with snn.WriteNetwork loads into the registry and
// serves — the registry's dependence on the serialize round trip.
func TestRegistryLoadsSerializedNetwork(t *testing.T) {
	net := testNetwork(t, "from-disk", 77)
	path := filepath.Join(t.TempDir(), "net.gob")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := snn.WriteNetwork(f, net); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	reg, err := NewRegistry(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	model, err := reg.LoadNetworkFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if model.Name != "from-disk" {
		t.Fatalf("loaded model %q", model.Name)
	}
	srv, err := New(DefaultConfig(reg))
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Close()
	resp, out, body := postClassify(t, ts.URL, ClassifyRequest{
		Model: "from-disk", Input: testInput(net.Input.Size(), 3), Seed: 9,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if out.Prediction < 0 || out.Perf.Energy <= 0 {
		t.Fatalf("response %+v", out)
	}
}

func TestRegistryValidation(t *testing.T) {
	if _, err := NewRegistry(RegistryConfig{Steps: 0, MaxProb: 0.5}); err == nil {
		t.Fatal("zero steps accepted")
	}
	cfg := testConfig()
	cfg.MaxProb = 1.5
	if _, err := NewRegistry(cfg); err == nil {
		t.Fatal("bad MaxProb accepted")
	}
	reg := testRegistry(t)
	if _, err := reg.AddNetwork(testNetwork(t, "tiny-mlp", 12)); err == nil {
		t.Fatal("duplicate model accepted")
	}
	if _, err := reg.LoadNetworkFile("/does/not/exist.gob"); err == nil {
		t.Fatal("missing file accepted")
	}
	if err := reg.LoadBenchmarks("not-a-benchmark"); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
	if _, err := New(Config{}); err == nil {
		t.Fatal("nil registry accepted")
	}
	empty, err := NewRegistry(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(DefaultConfig(empty)); err == nil {
		t.Fatal("empty registry accepted")
	}
}

// Config.SimBatch routes every flushed micro-batch through the simulator's
// batch-major runner; request outcomes must stay bit-identical to the
// per-image evaluation for every backend and any group size.
func TestSimBatchMatchesPerImage(t *testing.T) {
	reg := testRegistry(t)
	model := reg.Models()[0]
	inputs := make([]tensor.Vec, 7)
	seeds := make([]int64, 7)
	for i := range inputs {
		inputs[i] = tensor.Vec(testInput(model.Net.Input.Size(), 900+int64(i)))
		seeds[i] = int64(10 + i)
	}
	for _, backend := range model.Backends() {
		ref, refPreds, err := model.ClassifyEach(Backend(backend), inputs, seeds, 1, 0)
		if err != nil {
			t.Fatal(err)
		}
		for _, batch := range []int{2, 4, 16} {
			got, preds, err := model.ClassifyEach(Backend(backend), inputs, seeds, 1, batch)
			if err != nil {
				t.Fatal(err)
			}
			for i := range inputs {
				if !reflect.DeepEqual(got[i], ref[i]) || preds[i] != refPreds[i] {
					t.Fatalf("%s batch=%d request %d: %+v pred %d, want %+v pred %d",
						backend, batch, i, got[i], preds[i], ref[i], refPreds[i])
				}
			}
		}
	}
}
