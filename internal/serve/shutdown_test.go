package serve

import (
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"resparc/internal/snn"
	"resparc/internal/tensor"
)

// Mid-stream shutdown variant of the 80-request race test: Close fires
// while the flood is in flight. Every request must get exactly one clean
// answer — a 200 that is bit-identical to the serial single-image
// reference (it was admitted before the drain) or a 503 (it arrived after
// admission stopped) — and the metrics must reconcile. Run under -race:
// this is the submit/close interleaving the batcher's RWMutex exists for.
func TestShutdownMidStreamDrainsInFlight(t *testing.T) {
	reg := testRegistry(t)
	model, _ := reg.Get("tiny-mlp")
	cfg := DefaultConfig(reg)
	cfg.MaxBatch = 8
	cfg.MaxWait = time.Millisecond
	cfg.QueueSize = 256
	cfg.Workers = 4
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Close()

	const n = 80
	type result struct {
		code int
		resp ClassifyResponse
		body string
	}
	inputs := make([][]float64, n)
	backends := make([]string, n)
	for i := range inputs {
		inputs[i] = testInput(model.Net.Input.Size(), int64(1000+i%7))
		if i%3 == 0 {
			backends[i] = "cmos"
		} else {
			backends[i] = "resparc"
		}
	}
	results := make([]result, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, out, body := postClassify(t, ts.URL, ClassifyRequest{
				Model:   "tiny-mlp",
				Backend: backends[i],
				Input:   inputs[i],
				Seed:    int64(i % 13),
			})
			results[i] = result{code: resp.StatusCode, resp: out, body: body}
		}(i)
	}
	// Close once a chunk of the flood has reached the server and at least
	// one batch has dispatched (so some 200s are guaranteed), leaving the
	// drain to race the remaining live submissions.
	for {
		snap := srv.Metrics().Snapshot()
		if snap.Requests >= n/4 && snap.BatchImages >= 1 {
			break
		}
		time.Sleep(100 * time.Microsecond)
	}
	srv.Close()
	wg.Wait()

	rcfg := reg.Config()
	base := snn.NewPoissonEncoder(rcfg.MaxProb, rcfg.Seed)
	var ok200, drained503 int
	for i, r := range results {
		switch r.code {
		case http.StatusOK:
			ok200++
			// Admitted before the drain: the answer must still be the exact
			// serial reference — shutdown must not corrupt in-flight work.
			in := make(tensor.Vec, len(inputs[i]))
			copy(in, inputs[i])
			enc := base.ForkSeed(i % 13)
			var wantPred int
			if backends[i] == "cmos" {
				_, rep := model.Base.Classify(in, enc)
				wantPred = rep.Predicted
			} else {
				_, rep := model.Chip.Classify(in, enc)
				wantPred = rep.Predicted
			}
			if r.resp.Prediction != wantPred {
				t.Fatalf("request %d (%s): prediction %d, serial reference %d", i, backends[i], r.resp.Prediction, wantPred)
			}
		case http.StatusServiceUnavailable:
			drained503++
		default:
			t.Fatalf("request %d: status %d body %s, want 200 or 503", i, r.code, r.body)
		}
	}
	if ok200 == 0 {
		t.Fatal("no request completed before the drain — Close raced ahead of the whole flood")
	}
	t.Logf("drained mid-stream: %d completed, %d rejected with 503", ok200, drained503)

	// After Close: new requests are 503. Liveness stays true through the
	// drain (the process is healthy, killing it would lose in-flight work)
	// while readiness goes 503 so load balancers stop routing here.
	resp, _, body := postClassify(t, ts.URL, ClassifyRequest{
		Model: "tiny-mlp", Input: inputs[0], Seed: 1,
	})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("post-close request: status %d body %s, want 503", resp.StatusCode, body)
	}
	hresp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusOK {
		t.Fatalf("healthz while draining: status %d, want 200 (liveness holds through drain)", hresp.StatusCode)
	}
	var health HealthResponse
	getJSON(t, ts.URL+"/healthz", &health)
	if health.Status != "draining" {
		t.Fatalf("healthz status %q, want draining", health.Status)
	}
	rresp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	rresp.Body.Close()
	if rresp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz while draining: status %d, want 503", rresp.StatusCode)
	}
	var ready HealthResponse
	getJSON(t, ts.URL+"/readyz", &ready)
	if ready.Status != "draining" {
		t.Fatalf("readyz status %q, want draining", ready.Status)
	}
	snap := srv.Metrics().Snapshot()
	var total int64
	for _, c := range snap.Codes {
		total += c
	}
	if total != snap.Requests {
		t.Fatalf("responses %d don't reconcile with requests %d", total, snap.Requests)
	}
	if snap.Codes[http.StatusOK] != int64(ok200) {
		t.Fatalf("responses{200} %d, want %d", snap.Codes[http.StatusOK], ok200)
	}
}

// Close is idempotent and safe to race against itself.
func TestCloseIdempotent(t *testing.T) {
	reg := testRegistry(t)
	srv, err := New(DefaultConfig(reg))
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			srv.Close()
		}()
	}
	wg.Wait()
	srv.Close()
}
