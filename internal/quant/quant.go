// Package quant implements the weight discretization imposed by memristive
// synapses (Fig 14's bit-discretization axis) and the mapping from signed
// synaptic weights to device conductances.
//
// A memristor stores one of Levels conductance values; signed weights use
// the standard differential-pair convention (a positive and a negative
// column per logical column), so a weight w in [-wmax, +wmax] maps to a
// conductance pair (G+, G-) with w proportional to G+ - G-.
package quant

import (
	"fmt"
	"math"

	"resparc/internal/device"
	"resparc/internal/snn"
	"resparc/internal/tensor"
)

// Quantize returns a copy of w with every element snapped to the closest of
// 2^bits uniform levels spanning [-maxAbs, +maxAbs]. bits must be >= 1. The
// level grid always contains 0 when bits >= 1 is odd-symmetric around 0
// (we use levels = 2^bits - 1 signed steps so zero is representable, which
// is essential for sparse connectivity).
func Quantize(w *tensor.Mat, bits int) *tensor.Mat {
	if bits < 1 {
		panic(fmt.Sprintf("quant: bits %d < 1", bits))
	}
	out := w.Clone()
	maxAbs := w.MaxAbs()
	if maxAbs == 0 {
		return out
	}
	// 2^bits levels per polarity side including zero: steps in
	// [-L, +L] where L = 2^(bits-1) gives 2^bits + 1 representable values
	// realized by the differential pair (each device has 2^(bits-1)+1
	// usable levels of its own; Fig 14 counts the logical weight bits).
	half := float64(int(1) << uint(bits-1))
	step := maxAbs / half
	for i, x := range out.Data {
		q := math.Round(x/step) * step
		if q > maxAbs {
			q = maxAbs
		}
		if q < -maxAbs {
			q = -maxAbs
		}
		out.Data[i] = q
	}
	return out
}

// QuantizeNetwork returns a deep copy of net with every weighted layer
// quantized to the given bit precision. Pool layers (fixed weights) are
// shared unchanged.
func QuantizeNetwork(net *snn.Network, bits int) (*snn.Network, error) {
	layers := make([]*snn.Layer, 0, len(net.Layers))
	for _, l := range net.Layers {
		switch l.Kind {
		case snn.DenseLayer:
			nl, err := snn.NewDense(l.Name, l.InSize(), l.OutSize(), Quantize(l.W, bits), l.Threshold)
			if err != nil {
				return nil, err
			}
			nl.In, nl.Out = l.In, l.Out
			layers = append(layers, nl)
		case snn.ConvLayer:
			nl, err := snn.NewConv(l.Name, l.Geom, Quantize(l.W, bits), l.Threshold)
			if err != nil {
				return nil, err
			}
			layers = append(layers, nl)
		case snn.PoolLayer:
			nl, err := snn.NewPool(l.Name, l.In, l.Geom.K, l.Threshold)
			if err != nil {
				return nil, err
			}
			layers = append(layers, nl)
		default:
			return nil, fmt.Errorf("quant: unknown layer kind %v", l.Kind)
		}
	}
	return snn.NewNetwork(fmt.Sprintf("%s-q%d", net.Name, bits), net.Input, layers...)
}

// Prune returns a deep copy of net with every weight whose magnitude is
// below threshold zeroed. Pruned synapses vanish from the crossbar mapping
// when the mapper's sparse-dense packing is enabled — the §3.1.1
// sparse-connectivity optimization applied to compressed MLPs. Pool layers
// (fixed weights) are rebuilt unchanged. It also returns the overall
// fraction of weights pruned.
func Prune(net *snn.Network, threshold float64) (*snn.Network, float64, error) {
	if threshold < 0 {
		return nil, 0, fmt.Errorf("quant: negative prune threshold %v", threshold)
	}
	pruned, total := 0, 0
	layers := make([]*snn.Layer, 0, len(net.Layers))
	for _, l := range net.Layers {
		switch l.Kind {
		case snn.DenseLayer, snn.ConvLayer:
			w := l.W.Clone()
			for i, x := range w.Data {
				total++
				if math.Abs(x) < threshold && x != 0 {
					w.Data[i] = 0
					pruned++
				}
			}
			var nl *snn.Layer
			var err error
			if l.Kind == snn.DenseLayer {
				nl, err = snn.NewDense(l.Name, l.InSize(), l.OutSize(), w, l.Threshold)
				if err == nil {
					nl.In, nl.Out = l.In, l.Out
				}
			} else {
				nl, err = snn.NewConv(l.Name, l.Geom, w, l.Threshold)
			}
			if err != nil {
				return nil, 0, err
			}
			nl.Leak, nl.HardReset = l.Leak, l.HardReset
			layers = append(layers, nl)
		case snn.PoolLayer:
			nl, err := snn.NewPool(l.Name, l.In, l.Geom.K, l.Threshold)
			if err != nil {
				return nil, 0, err
			}
			layers = append(layers, nl)
		default:
			return nil, 0, fmt.Errorf("quant: unknown layer kind %v", l.Kind)
		}
	}
	out, err := snn.NewNetwork(fmt.Sprintf("%s-pruned", net.Name), net.Input, layers...)
	if err != nil {
		return nil, 0, err
	}
	frac := 0.0
	if total > 0 {
		frac = float64(pruned) / float64(total)
	}
	return out, frac, nil
}

// ConductancePair is the differential-pair encoding of one signed weight.
type ConductancePair struct {
	GPos, GNeg float64 // siemens
}

// Mapper converts signed weights to conductance pairs for a technology.
type Mapper struct {
	Tech   device.Technology
	WMax   float64 // weight magnitude mapped to full-scale conductance
	levels int
}

// NewMapper returns a conductance mapper. wmax must be positive.
func NewMapper(tech device.Technology, wmax float64) (*Mapper, error) {
	if err := tech.Validate(); err != nil {
		return nil, err
	}
	if wmax <= 0 {
		return nil, fmt.Errorf("quant: wmax %v must be positive", wmax)
	}
	return &Mapper{Tech: tech, WMax: wmax, levels: tech.Levels}, nil
}

// Map returns the conductance pair for weight w (clipped to ±WMax). The
// magnitude is snapped to the technology's level grid between GMin and
// GMax; the inactive device of the pair rests at GMin.
func (m *Mapper) Map(w float64) ConductancePair {
	mag := math.Abs(w)
	if mag > m.WMax {
		mag = m.WMax
	}
	gmin, gmax := m.Tech.GMin(), m.Tech.GMax()
	// Snap |w|/WMax into one of Levels conductance values.
	frac := mag / m.WMax
	lvl := math.Round(frac * float64(m.levels-1))
	g := gmin + (gmax-gmin)*lvl/float64(m.levels-1)
	if w >= 0 {
		return ConductancePair{GPos: g, GNeg: gmin}
	}
	return ConductancePair{GPos: gmin, GNeg: g}
}

// Weight inverts Map: it returns the logical weight represented by a pair.
func (m *Mapper) Weight(p ConductancePair) float64 {
	gmin, gmax := m.Tech.GMin(), m.Tech.GMax()
	span := gmax - gmin
	return (p.GPos - p.GNeg) / span * m.WMax
}
