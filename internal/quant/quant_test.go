package quant

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"resparc/internal/device"
	"resparc/internal/snn"
	"resparc/internal/tensor"
)

func TestQuantizeIdempotentAtHighBits(t *testing.T) {
	w := tensor.NewMat(2, 2)
	copy(w.Data, tensor.Vec{1, -0.5, 0.25, 0})
	q := Quantize(w, 8)
	for i := range w.Data {
		if math.Abs(q.Data[i]-w.Data[i]) > 1.0/256 {
			t.Fatalf("8-bit quantization moved %v to %v", w.Data[i], q.Data[i])
		}
	}
}

func TestQuantizeOneBit(t *testing.T) {
	w := tensor.NewMat(1, 4)
	copy(w.Data, tensor.Vec{1, -1, 0.2, -0.7})
	q := Quantize(w, 1)
	// 1 bit: levels {-1, 0, +1} (times maxAbs).
	for i, v := range q.Data {
		if v != -1 && v != 0 && v != 1 {
			t.Fatalf("1-bit level %d = %v", i, v)
		}
	}
	if q.Data[0] != 1 || q.Data[1] != -1 {
		t.Fatalf("extremes wrong: %v", q.Data)
	}
}

func TestQuantizeZeroMatrix(t *testing.T) {
	w := tensor.NewMat(2, 2)
	q := Quantize(w, 4)
	for _, v := range q.Data {
		if v != 0 {
			t.Fatal("zero matrix must stay zero")
		}
	}
}

func TestQuantizePanicsOnBadBits(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Quantize(tensor.NewMat(1, 1), 0)
}

// Property: quantization error is bounded by half a step and preserves sign
// of large-magnitude entries; zero is always representable.
func TestQuantizeErrorBound(t *testing.T) {
	f := func(seed int64, bits uint8) bool {
		b := int(bits%8) + 1
		rng := rand.New(rand.NewSource(seed))
		w := tensor.NewMat(4, 4)
		for i := range w.Data {
			w.Data[i] = rng.NormFloat64()
		}
		q := Quantize(w, b)
		maxAbs := w.MaxAbs()
		step := maxAbs / float64(int(1)<<uint(b-1))
		for i := range w.Data {
			if math.Abs(q.Data[i]-w.Data[i]) > step/2+1e-12 {
				return false
			}
			if math.Abs(q.Data[i]) > maxAbs+1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestQuantizeDoesNotMutate(t *testing.T) {
	w := tensor.NewMat(1, 2)
	copy(w.Data, tensor.Vec{0.3, -0.7})
	_ = Quantize(w, 2)
	if w.Data[0] != 0.3 || w.Data[1] != -0.7 {
		t.Fatal("Quantize mutated input")
	}
}

func TestQuantizeNetwork(t *testing.T) {
	// conv (4x4x1 -> 3x3x2) -> pool (3x3 is not divisible; use 4x4 out) —
	// build a consistent stack: conv same-pad (4x4x2), pool 2 (2x2x2),
	// dense (8 -> 3).
	rng := rand.New(rand.NewSource(1))
	geom := tensor.ConvGeom{In: tensor.Shape3{H: 4, W: 4, C: 1}, K: 3, Stride: 1, Pad: 1, OutC: 2}
	cw := tensor.NewMat(2, 9)
	for i := range cw.Data {
		cw.Data[i] = rng.NormFloat64()
	}
	cv, err := snn.NewConv("c", geom, cw, 1)
	if err != nil {
		t.Fatal(err)
	}
	p, err := snn.NewPool("p", tensor.Shape3{H: 4, W: 4, C: 2}, 2, 0.499)
	if err != nil {
		t.Fatal(err)
	}
	dw := tensor.NewMat(3, 8)
	for i := range dw.Data {
		dw.Data[i] = rng.NormFloat64()
	}
	d, err := snn.NewDense("d", 8, 3, dw, 1)
	if err != nil {
		t.Fatal(err)
	}
	net, err := snn.NewNetwork("n", tensor.Shape3{H: 4, W: 4, C: 1}, cv, p, d)
	if err != nil {
		t.Fatal(err)
	}
	q, err := QuantizeNetwork(net, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Layers) != 3 || q.Name != "n-q2" {
		t.Fatalf("quantized network %q layers %d", q.Name, len(q.Layers))
	}
	// Originals unchanged; quantized layers differ (2 bits is coarse).
	if cw.Data[0] != net.Layers[0].W.Data[0] {
		t.Fatal("QuantizeNetwork mutated original conv weights")
	}
	changed := false
	for i := range dw.Data {
		if q.Layers[2].W.Data[i] != dw.Data[i] {
			changed = true
		}
	}
	if !changed {
		t.Fatal("2-bit quantization changed nothing")
	}
	// Thresholds and shapes preserved.
	for i := range net.Layers {
		if q.Layers[i].Threshold != net.Layers[i].Threshold {
			t.Fatal("threshold changed")
		}
		if q.Layers[i].OutSize() != net.Layers[i].OutSize() {
			t.Fatal("shape changed")
		}
	}
}

func TestMapperRoundTrip(t *testing.T) {
	m, err := NewMapper(device.PCM, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []float64{1, -1, 0.5, -0.25, 0} {
		p := m.Map(w)
		got := m.Weight(p)
		// Round trip within one conductance level.
		lvl := 1.0 / float64(device.PCM.Levels-1)
		if math.Abs(got-w) > lvl {
			t.Fatalf("round trip %v -> %v (tolerance %v)", w, got, lvl)
		}
		if p.GPos < device.PCM.GMin() || p.GPos > device.PCM.GMax() ||
			p.GNeg < device.PCM.GMin() || p.GNeg > device.PCM.GMax() {
			t.Fatalf("conductances out of range: %+v", p)
		}
	}
}

func TestMapperClips(t *testing.T) {
	m, _ := NewMapper(device.PCM, 1.0)
	p := m.Map(5.0)
	if p.GPos != device.PCM.GMax() {
		t.Fatal("overrange weight must clip to GMax")
	}
	p = m.Map(-5.0)
	if p.GNeg != device.PCM.GMax() {
		t.Fatal("negative overrange must clip")
	}
}

func TestMapperSignConvention(t *testing.T) {
	m, _ := NewMapper(device.AgSi, 2.0)
	pos := m.Map(1.5)
	if pos.GPos <= pos.GNeg {
		t.Fatal("positive weight must have GPos > GNeg")
	}
	neg := m.Map(-1.5)
	if neg.GNeg <= neg.GPos {
		t.Fatal("negative weight must have GNeg > GPos")
	}
	zero := m.Map(0)
	if zero.GPos != zero.GNeg {
		t.Fatal("zero weight must balance the pair")
	}
}

func TestNewMapperValidation(t *testing.T) {
	if _, err := NewMapper(device.PCM, 0); err == nil {
		t.Fatal("wmax 0 accepted")
	}
	bad := device.Technology{Name: "bad"}
	if _, err := NewMapper(bad, 1); err == nil {
		t.Fatal("invalid tech accepted")
	}
}

func TestPrune(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	w := tensor.NewMat(8, 8)
	for i := range w.Data {
		w.Data[i] = rng.NormFloat64()
	}
	l, err := snn.NewDense("d", 8, 8, w, 1)
	if err != nil {
		t.Fatal(err)
	}
	net, err := snn.NewNetwork("n", tensor.Shape3{H: 1, W: 1, C: 8}, l)
	if err != nil {
		t.Fatal(err)
	}
	pruned, frac, err := Prune(net, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if frac <= 0 || frac >= 1 {
		t.Fatalf("pruned fraction %v", frac)
	}
	for i, x := range pruned.Layers[0].W.Data {
		orig := w.Data[i]
		if math.Abs(orig) < 0.5 && orig != 0 && x != 0 {
			t.Fatalf("weight %d (%v) survived pruning", i, orig)
		}
		if math.Abs(orig) >= 0.5 && x != orig {
			t.Fatalf("weight %d (%v) changed to %v", i, orig, x)
		}
	}
	// Original untouched.
	if w.Data[0] != net.Layers[0].W.Data[0] {
		t.Fatal("Prune mutated the original")
	}
	// Zero threshold prunes nothing.
	same, frac0, err := Prune(net, 0)
	if err != nil || frac0 != 0 {
		t.Fatalf("zero threshold: frac %v err %v", frac0, err)
	}
	for i := range w.Data {
		if same.Layers[0].W.Data[i] != w.Data[i] {
			t.Fatal("zero-threshold prune changed weights")
		}
	}
	// Negative threshold rejected.
	if _, _, err := Prune(net, -1); err == nil {
		t.Fatal("negative threshold accepted")
	}
}
