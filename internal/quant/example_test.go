package quant_test

import (
	"fmt"

	"resparc/internal/device"
	"resparc/internal/quant"
	"resparc/internal/tensor"
)

// Two-bit quantization snaps weights to five symmetric levels; the
// conductance mapper then realizes each as a differential device pair.
func ExampleQuantize() {
	w := tensor.NewMat(1, 4)
	copy(w.Data, tensor.Vec{1.0, 0.6, -0.3, 0.1})
	q := quant.Quantize(w, 2)
	fmt.Println(q.Data)

	m, err := quant.NewMapper(device.AgSi, 1.0)
	if err != nil {
		fmt.Println(err)
		return
	}
	pair := m.Map(q.Data[0])
	fmt.Printf("w=1.0 -> G+ %.1f uS, G- %.1f uS\n", pair.GPos*1e6, pair.GNeg*1e6)
	// Output:
	// [1 0.5 -0.5 0]
	// w=1.0 -> G+ 50.0 uS, G- 5.0 uS
}
