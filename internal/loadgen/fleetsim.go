package loadgen

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"resparc/internal/lb"
)

// FleetSim is a virtual-time discrete-event model of the serving fleet. It
// routes a generated trace exactly the way resparc-lb does — consistent
// hashing by model, health-aware failover, shed to the CMOS baseline when
// the RESPARC tier is out, tiered admission — but against modeled replicas
// with deterministic service times, so the resulting latency and SLO rows
// are a pure function of the seed. The live HTTP path (real replicas, real
// sockets) is exercised by the -race end-to-end tests; this model is what
// backs the reproducible `resparc-bench -fig fleet` rows.

// SimReplica models one replica: a number of parallel service slots plus
// optional outage and breaker-open windows in trace time.
type SimReplica struct {
	Name string
	// Slots is the replica's service parallelism (batcher workers).
	Slots int
	// DownFrom/DownTo is a window during which the replica is unreachable
	// (crash or drain); zero-zero means always up.
	DownFrom, DownTo time.Duration
	// OpenFrom/OpenTo is a window during which the replica's RESPARC
	// circuits are open (fault campaign tripped the breakers); the replica
	// still serves CMOS. Zero-zero means never open.
	OpenFrom, OpenTo time.Duration
}

func (r SimReplica) up(t time.Duration) bool {
	if r.DownTo > r.DownFrom && t >= r.DownFrom && t < r.DownTo {
		return false
	}
	return true
}

func (r SimReplica) resparcOpen(t time.Duration) bool {
	return r.OpenTo > r.OpenFrom && t >= r.OpenFrom && t < r.OpenTo
}

// FleetConfig parameterizes a fleet simulation.
type FleetConfig struct {
	Replicas []SimReplica
	// ServiceMs maps "model/backend" to the mean service time in
	// milliseconds. Every (model, backend) a trace can route to must be
	// present.
	ServiceMs map[string]float64
	// JitterFrac adds a deterministic ±fraction of service-time noise
	// drawn from the seeded stream (0 disables).
	JitterFrac float64
	// SLOTargetMs is each tier's latency objective.
	SLOTargetMs map[lb.Tier]float64
	// MaxWaitMs is each tier's admission wait budget: an arrival whose
	// queueing delay would exceed it is rejected (503). Giving batch a
	// smaller budget than interactive is how the fleet protects the
	// interactive tier under bursts.
	MaxWaitMs map[lb.Tier]float64
	// Seed drives the service-time jitter stream.
	Seed int64
}

// TierSummary aggregates one (model, tier)'s outcomes over a simulation.
type TierSummary struct {
	Model string  `json:"model"`
	Tier  lb.Tier `json:"tier"`
	// Count is the offered load; OK the requests served; Shed the subset
	// of OK served by the CMOS baseline; Rejected the admission rejects;
	// Failed the arrivals no replica could serve.
	Count    int `json:"count"`
	OK       int `json:"ok"`
	Shed     int `json:"shed"`
	Rejected int `json:"rejected"`
	Failed   int `json:"failed"`
	// P50/P99/P999 are latency quantiles over served requests, ms.
	P50Ms  float64 `json:"p50_ms"`
	P99Ms  float64 `json:"p99_ms"`
	P999Ms float64 `json:"p999_ms"`
	// SLOTargetMs is the tier's objective; Attainment is the fraction of
	// ALL arrivals (rejected and failed included) answered within it.
	SLOTargetMs float64 `json:"slo_target_ms"`
	Attainment  float64 `json:"slo_attainment"`
	// MeanMs is the mean served latency, ms.
	MeanMs float64 `json:"mean_ms"`
}

// SimResult is a finished simulation.
type SimResult struct {
	// Summaries is sorted by (model, tier).
	Summaries []TierSummary
	// Duration is the virtual time from first arrival to last completion.
	Duration time.Duration
}

// Summary returns the (model, tier) row, if present.
func (r SimResult) Summary(model string, tier lb.Tier) (TierSummary, bool) {
	for _, s := range r.Summaries {
		if s.Model == model && s.Tier == tier {
			return s, true
		}
	}
	return TierSummary{}, false
}

type simKey struct {
	model string
	tier  lb.Tier
}

type simAgg struct {
	count, ok, shed, rejected, failed int
	inSLO                             int
	latencies                         []float64 // ms
}

// Simulate routes the trace through the modeled fleet and aggregates
// latency and SLO outcomes per (model, tier).
func Simulate(cfg FleetConfig, events []Event) (SimResult, error) {
	if len(cfg.Replicas) == 0 {
		return SimResult{}, fmt.Errorf("loadgen: fleet has no replicas")
	}
	ring := lb.NewRing(0)
	replicas := make(map[string]SimReplica, len(cfg.Replicas))
	slots := make(map[string][]time.Duration, len(cfg.Replicas))
	for _, r := range cfg.Replicas {
		if r.Slots <= 0 {
			return SimResult{}, fmt.Errorf("loadgen: replica %q has no slots", r.Name)
		}
		if _, dup := replicas[r.Name]; dup {
			return SimResult{}, fmt.Errorf("loadgen: duplicate replica %q", r.Name)
		}
		replicas[r.Name] = r
		slots[r.Name] = make([]time.Duration, r.Slots)
		ring.Add(r.Name)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	aggs := make(map[simKey]*simAgg)
	var end time.Duration
	for _, ev := range events {
		key := simKey{model: ev.Model, tier: ev.Tier}
		agg := aggs[key]
		if agg == nil {
			agg = &simAgg{}
			aggs[key] = agg
		}
		agg.count++
		// Consume the jitter draw unconditionally so one rejected request
		// does not shift every later request's service time.
		jitter := 1.0
		if cfg.JitterFrac > 0 {
			jitter = 1 + cfg.JitterFrac*(2*rng.Float64()-1)
		}

		// Route the way resparc-lb does: walk the model's ring sequence for
		// a replica with RESPARC available; if the whole fleet's RESPARC
		// tier is out, shed to CMOS on the sequence.
		backend := "resparc"
		replica := ""
		for _, name := range ring.Sequence(ev.Model) {
			r := replicas[name]
			if r.up(ev.At) && !r.resparcOpen(ev.At) {
				replica = name
				break
			}
		}
		shed := false
		if replica == "" {
			backend = "cmos"
			shed = true
			for _, name := range ring.Sequence(ev.Model) {
				if replicas[name].up(ev.At) {
					replica = name
					break
				}
			}
		}
		if replica == "" {
			agg.failed++
			continue
		}
		serviceMs, ok := cfg.ServiceMs[ev.Model+"/"+backend]
		if !ok {
			return SimResult{}, fmt.Errorf("loadgen: no service time for %s/%s", ev.Model, backend)
		}
		service := time.Duration(serviceMs * jitter * float64(time.Millisecond))

		// Earliest free slot on the replica; arrivals are time-ordered so a
		// slot's free time only moves forward.
		lane := slots[replica]
		best := 0
		for i := range lane {
			if lane[i] < lane[best] {
				best = i
			}
		}
		start := ev.At
		if lane[best] > start {
			start = lane[best]
		}
		waitMs := float64(start-ev.At) / float64(time.Millisecond)
		if budget, ok := cfg.MaxWaitMs[ev.Tier]; ok && waitMs > budget {
			agg.rejected++
			continue
		}
		finish := start + service
		lane[best] = finish
		if finish > end {
			end = finish
		}
		latencyMs := float64(finish-ev.At) / float64(time.Millisecond)
		agg.ok++
		if shed {
			agg.shed++
		}
		agg.latencies = append(agg.latencies, latencyMs)
		if latencyMs <= cfg.SLOTargetMs[ev.Tier] {
			agg.inSLO++
		}
	}

	keys := make([]simKey, 0, len(aggs))
	for k := range aggs {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].model != keys[j].model {
			return keys[i].model < keys[j].model
		}
		return keys[i].tier < keys[j].tier
	})
	result := SimResult{Duration: end}
	for _, k := range keys {
		agg := aggs[k]
		s := TierSummary{
			Model:       k.model,
			Tier:        k.tier,
			Count:       agg.count,
			OK:          agg.ok,
			Shed:        agg.shed,
			Rejected:    agg.rejected,
			Failed:      agg.failed,
			SLOTargetMs: cfg.SLOTargetMs[k.tier],
		}
		if len(agg.latencies) > 0 {
			sorted := append([]float64(nil), agg.latencies...)
			sort.Float64s(sorted)
			s.P50Ms = quantile(sorted, 0.50)
			s.P99Ms = quantile(sorted, 0.99)
			s.P999Ms = quantile(sorted, 0.999)
			sum := 0.0
			for _, l := range sorted {
				sum += l
			}
			s.MeanMs = sum / float64(len(sorted))
		}
		if agg.count > 0 {
			s.Attainment = float64(agg.inSLO) / float64(agg.count)
		}
		result.Summaries = append(result.Summaries, s)
	}
	return result, nil
}

// quantile is the nearest-rank quantile of a sorted slice.
func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q*float64(len(sorted))+0.5) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}
