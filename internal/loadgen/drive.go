package loadgen

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"time"

	"resparc/internal/lb"
	"resparc/internal/serve"
)

// DriveConfig parameterizes a live replay of a trace against a running
// fleet (the balancer's /v1/classify).
type DriveConfig struct {
	// TargetURL is the balancer's base URL.
	TargetURL string
	// Client performs the requests (nil: 30 s timeout).
	Client *http.Client
	// Input supplies the model's input vector; required.
	Input func(model string) []float64
	// TimeScale compresses (< 1) or stretches (> 1) the trace clock; a
	// 10 s trace at TimeScale 0.01 replays in ~100 ms (<= 0 selects 1).
	TimeScale float64
}

// Outcome is one replayed event's result.
type Outcome struct {
	Event Event
	// Status is the HTTP status (0 on transport error).
	Status int
	// Latency is the end-to-end request latency (wall clock).
	Latency time.Duration
	// Backend is the X-Resparc-Backend response header: set when the
	// balancer shed the request to the baseline backend.
	Backend string
	// Replica is the X-Resparc-Replica response header.
	Replica string
	// Err is the transport error, if any.
	Err error
}

// Drive replays the trace open-loop: each event fires at its trace offset
// (scaled by TimeScale) regardless of how the fleet is keeping up, so
// queueing shows up as latency, not as a slower trace. Returns one outcome
// per event, in trace order.
func Drive(ctx context.Context, cfg DriveConfig, events []Event) ([]Outcome, error) {
	if cfg.TargetURL == "" {
		return nil, fmt.Errorf("loadgen: no target URL")
	}
	if cfg.Input == nil {
		return nil, fmt.Errorf("loadgen: no input source")
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{Timeout: 30 * time.Second}
	}
	scale := cfg.TimeScale
	if scale <= 0 {
		scale = 1
	}
	outcomes := make([]Outcome, len(events))
	start := time.Now()
	var wg sync.WaitGroup
	for i, ev := range events {
		at := time.Duration(float64(ev.At) * scale)
		select {
		case <-ctx.Done():
			return outcomes[:i], ctx.Err()
		case <-time.After(time.Until(start.Add(at))):
		}
		wg.Add(1)
		go func(i int, ev Event) {
			defer wg.Done()
			outcomes[i] = shoot(ctx, client, cfg, ev)
		}(i, ev)
	}
	wg.Wait()
	return outcomes, nil
}

// shoot fires one event and records its outcome.
func shoot(ctx context.Context, client *http.Client, cfg DriveConfig, ev Event) Outcome {
	out := Outcome{Event: ev}
	body, err := json.Marshal(serve.ClassifyRequest{
		Model: ev.Model,
		Input: cfg.Input(ev.Model),
		Seed:  ev.Seed,
	})
	if err != nil {
		out.Err = err
		return out
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, cfg.TargetURL+"/v1/classify", bytes.NewReader(body))
	if err != nil {
		out.Err = err
		return out
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(lb.HeaderTenant, ev.Tenant)
	req.Header.Set(lb.HeaderPriority, string(ev.Tier))
	begin := time.Now()
	resp, err := client.Do(req)
	out.Latency = time.Since(begin)
	if err != nil {
		out.Err = err
		return out
	}
	defer resp.Body.Close()
	_, _ = io.Copy(io.Discard, resp.Body)
	out.Status = resp.StatusCode
	out.Backend = resp.Header.Get(lb.HeaderBackend)
	out.Replica = resp.Header.Get(lb.HeaderReplica)
	return out
}

// Report aggregates live outcomes per (model, tier), same shape as the
// simulator's summaries so tests and tools can treat both alike.
func Report(outcomes []Outcome, sloTargetMs map[lb.Tier]float64) []TierSummary {
	aggs := make(map[simKey]*simAgg)
	for _, o := range outcomes {
		key := simKey{model: o.Event.Model, tier: o.Event.Tier}
		agg := aggs[key]
		if agg == nil {
			agg = &simAgg{}
			aggs[key] = agg
		}
		agg.count++
		switch {
		case o.Err != nil || o.Status == 0:
			agg.failed++
		case o.Status == http.StatusOK:
			agg.ok++
			if o.Backend != "" {
				agg.shed++
			}
			ms := float64(o.Latency) / float64(time.Millisecond)
			agg.latencies = append(agg.latencies, ms)
			if ms <= sloTargetMs[o.Event.Tier] {
				agg.inSLO++
			}
		case o.Status == http.StatusTooManyRequests || o.Status == http.StatusServiceUnavailable:
			agg.rejected++
		default:
			agg.failed++
		}
	}
	keys := make([]simKey, 0, len(aggs))
	for k := range aggs {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].model != keys[j].model {
			return keys[i].model < keys[j].model
		}
		return keys[i].tier < keys[j].tier
	})
	summaries := make([]TierSummary, 0, len(keys))
	for _, k := range keys {
		agg := aggs[k]
		s := TierSummary{
			Model:       k.model,
			Tier:        k.tier,
			Count:       agg.count,
			OK:          agg.ok,
			Shed:        agg.shed,
			Rejected:    agg.rejected,
			Failed:      agg.failed,
			SLOTargetMs: sloTargetMs[k.tier],
		}
		if len(agg.latencies) > 0 {
			sorted := append([]float64(nil), agg.latencies...)
			sort.Float64s(sorted)
			s.P50Ms = quantile(sorted, 0.50)
			s.P99Ms = quantile(sorted, 0.99)
			s.P999Ms = quantile(sorted, 0.999)
			sum := 0.0
			for _, l := range sorted {
				sum += l
			}
			s.MeanMs = sum / float64(len(sorted))
		}
		if agg.count > 0 {
			s.Attainment = float64(agg.inSLO) / float64(agg.count)
		}
		summaries = append(summaries, s)
	}
	return summaries
}
