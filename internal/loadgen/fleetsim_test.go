package loadgen

import (
	"reflect"
	"testing"
	"time"

	"resparc/internal/lb"
)

func msEvents(model string, tier lb.Tier, atMs ...int) []Event {
	events := make([]Event, len(atMs))
	for i, at := range atMs {
		events[i] = Event{At: time.Duration(at) * time.Millisecond, Model: model, Tenant: "t", Tier: tier}
	}
	return events
}

func oneReplicaFleet(slots int) FleetConfig {
	return FleetConfig{
		Replicas:    []SimReplica{{Name: "r0", Slots: slots}},
		ServiceMs:   map[string]float64{"m/resparc": 10, "m/cmos": 30},
		SLOTargetMs: map[lb.Tier]float64{lb.TierInteractive: 50, lb.TierBatch: 200},
	}
}

func TestSimulateSlotQueueing(t *testing.T) {
	// One slot, three arrivals at t=0: they serialize at 10 ms each.
	res, err := Simulate(oneReplicaFleet(1), msEvents("m", lb.TierInteractive, 0, 0, 0))
	if err != nil {
		t.Fatal(err)
	}
	s, ok := res.Summary("m", lb.TierInteractive)
	if !ok || s.OK != 3 {
		t.Fatalf("summary %+v, want 3 served", s)
	}
	if s.P50Ms < 15 || s.P50Ms > 25 {
		t.Fatalf("p50 %.1f ms, want ~20 (second request queued behind the first)", s.P50Ms)
	}
	// With three slots nothing queues.
	res, err = Simulate(oneReplicaFleet(3), msEvents("m", lb.TierInteractive, 0, 0, 0))
	if err != nil {
		t.Fatal(err)
	}
	s, _ = res.Summary("m", lb.TierInteractive)
	if s.P999Ms > 15 {
		t.Fatalf("p999 %.1f ms with free slots, want ~10", s.P999Ms)
	}
	if s.Attainment != 1 {
		t.Fatalf("attainment %.2f, want 1", s.Attainment)
	}
}

func TestSimulateShedsToCMOSWhenBreakersOpen(t *testing.T) {
	cfg := oneReplicaFleet(2)
	cfg.Replicas[0].OpenFrom = 0
	cfg.Replicas[0].OpenTo = time.Second
	res, err := Simulate(cfg, msEvents("m", lb.TierInteractive, 0, 100, 2000))
	if err != nil {
		t.Fatal(err)
	}
	s, _ := res.Summary("m", lb.TierInteractive)
	if s.OK != 3 {
		t.Fatalf("served %d, want all 3", s.OK)
	}
	// The two arrivals inside the open window ride CMOS; the later one is
	// back on RESPARC.
	if s.Shed != 2 {
		t.Fatalf("shed %d, want 2", s.Shed)
	}
}

func TestSimulateCountsFailuresWhenFleetDown(t *testing.T) {
	cfg := oneReplicaFleet(2)
	cfg.Replicas[0].DownFrom = 0
	cfg.Replicas[0].DownTo = time.Second
	res, err := Simulate(cfg, msEvents("m", lb.TierInteractive, 100, 2000))
	if err != nil {
		t.Fatal(err)
	}
	s, _ := res.Summary("m", lb.TierInteractive)
	if s.Failed != 1 || s.OK != 1 {
		t.Fatalf("summary %+v, want 1 failed (outage) and 1 served", s)
	}
}

func TestSimulateWaitBudgetRejects(t *testing.T) {
	cfg := oneReplicaFleet(1)
	cfg.MaxWaitMs = map[lb.Tier]float64{lb.TierBatch: 5}
	// Two batch arrivals at t=0: the second would wait 10 ms > 5 ms budget.
	res, err := Simulate(cfg, msEvents("m", lb.TierBatch, 0, 0))
	if err != nil {
		t.Fatal(err)
	}
	s, _ := res.Summary("m", lb.TierBatch)
	if s.OK != 1 || s.Rejected != 1 {
		t.Fatalf("summary %+v, want 1 served + 1 rejected", s)
	}
}

func TestSimulateDeterministic(t *testing.T) {
	trace := testTrace()
	events, err := Generate(trace)
	if err != nil {
		t.Fatal(err)
	}
	fleet := FleetConfig{
		Replicas: []SimReplica{
			{Name: "a", Slots: 2},
			{Name: "b", Slots: 2, DownFrom: 10 * time.Second, DownTo: 20 * time.Second},
		},
		ServiceMs: map[string]float64{
			"alpha/resparc": 5, "alpha/cmos": 15,
			"beta/resparc": 10, "beta/cmos": 30,
		},
		JitterFrac:  0.2,
		SLOTargetMs: map[lb.Tier]float64{lb.TierInteractive: 100, lb.TierBatch: 400},
		MaxWaitMs:   map[lb.Tier]float64{lb.TierInteractive: 500, lb.TierBatch: 50},
		Seed:        7,
	}
	r1, err := Simulate(fleet, events)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Simulate(fleet, events)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r1, r2) {
		t.Fatal("same inputs simulated to different results")
	}
	for _, s := range r1.Summaries {
		if s.Count != s.OK+s.Rejected+s.Failed {
			t.Fatalf("summary %+v does not reconcile", s)
		}
	}
}

func TestSimulateValidation(t *testing.T) {
	if _, err := Simulate(FleetConfig{}, nil); err == nil {
		t.Fatal("empty fleet accepted")
	}
	cfg := oneReplicaFleet(0)
	if _, err := Simulate(cfg, nil); err == nil {
		t.Fatal("zero-slot replica accepted")
	}
	cfg = oneReplicaFleet(1)
	cfg.ServiceMs = map[string]float64{}
	if _, err := Simulate(cfg, msEvents("m", lb.TierInteractive, 0)); err == nil {
		t.Fatal("missing service time accepted")
	}
}
