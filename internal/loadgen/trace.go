// Package loadgen generates and replays open-loop request traces against
// the resparc fleet.
//
// Open-loop means arrivals follow the trace clock, not the fleet's response
// times: a slow fleet does not slow the offered load down, so queueing
// delay shows up in the measured latencies instead of silently vanishing
// (the coordinated-omission trap of closed-loop drivers). Traces are a pure
// function of their seed: the same TraceConfig and seed produce the same
// event sequence byte for byte, which is what lets fleet benchmark rows be
// reproduced exactly.
//
// The arrival process is a non-homogeneous Poisson process sampled by
// thinning: a diurnal sinusoid models the daily load swing, and configured
// burst windows multiply the rate to model flash crowds. Each event carries
// the model it targets, the tenant it bills to, and its priority tier.
package loadgen

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"

	"resparc/internal/lb"
)

// Event is one request arrival in a trace.
type Event struct {
	// At is the arrival offset from the trace start.
	At time.Duration
	// Model is the model the request targets.
	Model string
	// Tenant is the quota bucket the request bills to.
	Tenant string
	// Tier is the request's priority class.
	Tier lb.Tier
	// Seed rides into the ClassifyRequest for deterministic replicas.
	Seed int64
}

// ModelMix is one model's share of the trace traffic.
type ModelMix struct {
	Model string
	// Weight is the model's relative share (any positive scale).
	Weight float64
}

// Burst is a window during which the arrival rate is multiplied — a flash
// crowd on top of the diurnal baseline.
type Burst struct {
	From, To time.Duration
	// Multiplier scales the arrival rate inside the window (> 1).
	Multiplier float64
}

// TraceConfig parameterizes a generated trace.
type TraceConfig struct {
	// Seed makes the trace reproducible; the same seed yields the same
	// events.
	Seed int64
	// Duration is the trace length in trace time.
	Duration time.Duration
	// BaseRPS is the mean arrival rate before diurnal/burst modulation.
	BaseRPS float64
	// DiurnalAmplitude in [0, 1) scales the sinusoidal swing around
	// BaseRPS (0 disables it).
	DiurnalAmplitude float64
	// DiurnalPeriod is the sinusoid's period (<= 0 disables the sinusoid).
	DiurnalPeriod time.Duration
	// Bursts are the flash-crowd windows.
	Bursts []Burst
	// Models is the traffic mix; required (>= 1 entry, positive weights).
	Models []ModelMix
	// Tenants is how many synthetic tenants ("tenant-0"...) share the
	// trace (<= 0 selects 1).
	Tenants int
	// BatchFraction in [0, 1] is the share of events on the batch tier.
	BatchFraction float64
}

// Rate returns the instantaneous arrival rate at trace offset t, in
// requests per second.
func (c TraceConfig) Rate(t time.Duration) float64 {
	rate := c.BaseRPS
	if c.DiurnalPeriod > 0 && c.DiurnalAmplitude > 0 {
		phase := 2 * math.Pi * float64(t) / float64(c.DiurnalPeriod)
		rate *= 1 + c.DiurnalAmplitude*math.Sin(phase)
	}
	for _, b := range c.Bursts {
		if t >= b.From && t < b.To && b.Multiplier > 0 {
			rate *= b.Multiplier
		}
	}
	if rate < 0 {
		rate = 0
	}
	return rate
}

// maxRate bounds Rate over the whole trace (the thinning envelope).
func (c TraceConfig) maxRate() float64 {
	peak := c.BaseRPS * (1 + math.Abs(c.DiurnalAmplitude))
	burst := 1.0
	for _, b := range c.Bursts {
		if b.Multiplier > burst {
			burst = b.Multiplier
		}
	}
	return peak * burst
}

// Generate samples the trace. The result is sorted by arrival time and is a
// deterministic function of the config (including Seed).
func Generate(c TraceConfig) ([]Event, error) {
	if c.Duration <= 0 {
		return nil, fmt.Errorf("loadgen: non-positive trace duration %s", c.Duration)
	}
	if c.BaseRPS <= 0 {
		return nil, fmt.Errorf("loadgen: non-positive base rate %g", c.BaseRPS)
	}
	if len(c.Models) == 0 {
		return nil, fmt.Errorf("loadgen: empty model mix")
	}
	total := 0.0
	for _, m := range c.Models {
		if m.Weight <= 0 {
			return nil, fmt.Errorf("loadgen: model %q has non-positive weight %g", m.Model, m.Weight)
		}
		total += m.Weight
	}
	if c.BatchFraction < 0 || c.BatchFraction > 1 {
		return nil, fmt.Errorf("loadgen: batch fraction %g outside [0, 1]", c.BatchFraction)
	}
	tenants := c.Tenants
	if tenants <= 0 {
		tenants = 1
	}
	rng := rand.New(rand.NewSource(c.Seed))
	envelope := c.maxRate()
	var events []Event
	// Thinning: draw homogeneous-Poisson arrivals at the envelope rate and
	// keep each with probability rate(t)/envelope.
	t := time.Duration(0)
	for {
		t += time.Duration(rng.ExpFloat64() / envelope * float64(time.Second))
		if t >= c.Duration {
			break
		}
		if rng.Float64()*envelope > c.Rate(t) {
			continue
		}
		pick := rng.Float64() * total
		model := c.Models[len(c.Models)-1].Model
		for _, m := range c.Models {
			if pick < m.Weight {
				model = m.Model
				break
			}
			pick -= m.Weight
		}
		tier := lb.TierInteractive
		if rng.Float64() < c.BatchFraction {
			tier = lb.TierBatch
		}
		events = append(events, Event{
			At:     t,
			Model:  model,
			Tenant: fmt.Sprintf("tenant-%d", rng.Intn(tenants)),
			Tier:   tier,
			Seed:   rng.Int63(),
		})
	}
	sort.SliceStable(events, func(i, j int) bool { return events[i].At < events[j].At })
	return events, nil
}
