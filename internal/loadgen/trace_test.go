package loadgen

import (
	"reflect"
	"sort"
	"strings"
	"testing"
	"time"

	"resparc/internal/lb"
)

func testTrace() TraceConfig {
	return TraceConfig{
		Seed:             7,
		Duration:         time.Minute,
		BaseRPS:          100,
		DiurnalAmplitude: 0.4,
		DiurnalPeriod:    time.Minute,
		Bursts:           []Burst{{From: 20 * time.Second, To: 30 * time.Second, Multiplier: 3}},
		Models:           []ModelMix{{Model: "alpha", Weight: 3}, {Model: "beta", Weight: 1}},
		Tenants:          4,
		BatchFraction:    0.25,
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(testTrace())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(testTrace())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed generated different traces")
	}
	cfg := testTrace()
	cfg.Seed = 8
	c, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(c) == len(a) && reflect.DeepEqual(a, c) {
		t.Fatal("different seeds generated identical traces")
	}
}

func TestGenerateShape(t *testing.T) {
	events, err := Generate(testTrace())
	if err != nil {
		t.Fatal(err)
	}
	if len(events) == 0 {
		t.Fatal("empty trace")
	}
	if !sort.SliceIsSorted(events, func(i, j int) bool { return events[i].At < events[j].At }) {
		t.Fatal("trace not sorted by arrival time")
	}
	counts := map[string]int{}
	batch := 0
	for _, ev := range events {
		if ev.At < 0 || ev.At >= time.Minute {
			t.Fatalf("event at %v outside the trace", ev.At)
		}
		if ev.Model != "alpha" && ev.Model != "beta" {
			t.Fatalf("unknown model %q", ev.Model)
		}
		if !strings.HasPrefix(ev.Tenant, "tenant-") {
			t.Fatalf("unexpected tenant %q", ev.Tenant)
		}
		if ev.Tier != lb.TierInteractive && ev.Tier != lb.TierBatch {
			t.Fatalf("unexpected tier %q", ev.Tier)
		}
		counts[ev.Model]++
		if ev.Tier == lb.TierBatch {
			batch++
		}
	}
	// 3:1 model mix and 25% batch share, loosely.
	if counts["alpha"] < counts["beta"] {
		t.Fatalf("model mix inverted: %v", counts)
	}
	frac := float64(batch) / float64(len(events))
	if frac < 0.15 || frac > 0.35 {
		t.Fatalf("batch fraction %.2f, want near 0.25", frac)
	}
}

// The burst window must be visibly denser than a same-width quiet window.
func TestGenerateBurstDensity(t *testing.T) {
	events, err := Generate(testTrace())
	if err != nil {
		t.Fatal(err)
	}
	inWindow := func(from, to time.Duration) int {
		n := 0
		for _, ev := range events {
			if ev.At >= from && ev.At < to {
				n++
			}
		}
		return n
	}
	burst := inWindow(20*time.Second, 30*time.Second)
	quiet := inWindow(40*time.Second, 50*time.Second)
	if burst < 2*quiet {
		t.Fatalf("burst window has %d events vs %d quiet, want at least 2x", burst, quiet)
	}
}

func TestRateModulation(t *testing.T) {
	cfg := testTrace()
	// Peak of the sinusoid is at a quarter period.
	peak := cfg.Rate(15 * time.Second)
	trough := cfg.Rate(45 * time.Second)
	if peak <= cfg.BaseRPS || trough >= cfg.BaseRPS {
		t.Fatalf("diurnal modulation missing: peak %.1f, trough %.1f around base %.1f", peak, trough, cfg.BaseRPS)
	}
	inBurst := cfg.Rate(25 * time.Second)
	outBurst := cfg.Rate(35 * time.Second)
	if inBurst < 2*outBurst {
		t.Fatalf("burst rate %.1f not well above post-burst %.1f", inBurst, outBurst)
	}
}

func TestGenerateValidation(t *testing.T) {
	bad := []TraceConfig{
		{},
		{Duration: time.Second},
		{Duration: time.Second, BaseRPS: 10},
		{Duration: time.Second, BaseRPS: 10, Models: []ModelMix{{Model: "a", Weight: -1}}},
		{Duration: time.Second, BaseRPS: 10, Models: []ModelMix{{Model: "a", Weight: 1}}, BatchFraction: 1.5},
	}
	for i, cfg := range bad {
		if _, err := Generate(cfg); err == nil {
			t.Errorf("config %d accepted, want error", i)
		}
	}
}
