package trace

import (
	"bytes"
	"strings"
	"testing"
)

func TestRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	events := []Event{
		{Step: 0, Layer: 0, Name: "fc0", InputSpikes: 10, OutputSpikes: 3, Packets: 4, Suppressed: 2, BusWords: 1, Activations: 5, RowsDriven: 9, EnergyJ: 1e-9},
		{Step: 0, Layer: 1, Name: "fc1", InputSpikes: 3, OutputSpikes: 1, Packets: 2, Activations: 2, RowsDriven: 3, EnergyJ: 5e-10},
		{Step: 1, Layer: 0, Name: "fc0", InputSpikes: 8, OutputSpikes: 2, Packets: 4, Activations: 4, RowsDriven: 7, EnergyJ: 9e-10},
	}
	for _, e := range events {
		if err := w.Write(e); err != nil {
			t.Fatal(err)
		}
	}
	if w.Count() != 3 {
		t.Fatalf("Count = %d", w.Count())
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(events) {
		t.Fatalf("read %d events", len(got))
	}
	for i := range events {
		if got[i] != events[i] {
			t.Fatalf("event %d: %+v != %+v", i, got[i], events[i])
		}
	}
}

func TestWriteValidation(t *testing.T) {
	w := NewWriter(&bytes.Buffer{})
	if err := w.Write(Event{Step: -1}); err == nil {
		t.Fatal("negative step accepted")
	}
	if err := w.Write(Event{Layer: -2}); err == nil {
		t.Fatal("negative layer accepted")
	}
}

func TestReadErrors(t *testing.T) {
	if _, err := Read(strings.NewReader("{not json")); err == nil {
		t.Fatal("garbage accepted")
	}
	got, err := Read(strings.NewReader(""))
	if err != nil || len(got) != 0 {
		t.Fatalf("empty trace: %v %v", got, err)
	}
}

func TestSummarize(t *testing.T) {
	events := []Event{
		{Step: 0, Layer: 0, Name: "a", InputSpikes: 2, OutputSpikes: 1, Packets: 3, Suppressed: 1, Activations: 2, EnergyJ: 1},
		{Step: 0, Layer: 1, Name: "b", InputSpikes: 1, OutputSpikes: 1, Packets: 1, Activations: 1, EnergyJ: 2},
		{Step: 1, Layer: 0, Name: "a", InputSpikes: 4, OutputSpikes: 2, Packets: 3, Suppressed: 2, Activations: 2, EnergyJ: 3},
	}
	s := Summarize(events)
	if len(s) != 2 {
		t.Fatalf("%d summaries", len(s))
	}
	a := s[0]
	if a.Layer != 0 || a.Name != "a" || a.Steps != 2 || a.InputSpikes != 6 ||
		a.OutputSpikes != 3 || a.Packets != 6 || a.Suppressed != 3 || a.Activations != 4 || a.EnergyJ != 4 {
		t.Fatalf("summary a: %+v", a)
	}
	if s[1].Layer != 1 || s[1].EnergyJ != 2 {
		t.Fatalf("summary b: %+v", s[1])
	}
}
