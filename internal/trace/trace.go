// Package trace records per-timestep, per-layer event traces from the
// RESPARC simulators as JSON lines — the raw material for debugging
// mappings, visualizing spike activity, and auditing the energy accounting
// event by event.
package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// Event is one (timestep, layer) record.
type Event struct {
	Step  int    `json:"step"`
	Layer int    `json:"layer"`
	Name  string `json:"name,omitempty"`

	InputSpikes  int `json:"in_spikes"`
	OutputSpikes int `json:"out_spikes"`
	Packets      int `json:"packets"`
	Suppressed   int `json:"suppressed"`
	BusWords     int `json:"bus_words,omitempty"`
	Activations  int `json:"activations"`
	RowsDriven   int `json:"rows"`

	EnergyJ float64 `json:"energy_j,omitempty"`
}

// Writer streams events as JSON lines.
type Writer struct {
	bw  *bufio.Writer
	enc *json.Encoder
	n   int
}

// NewWriter wraps w.
func NewWriter(w io.Writer) *Writer {
	bw := bufio.NewWriter(w)
	return &Writer{bw: bw, enc: json.NewEncoder(bw)}
}

// Write appends one event.
func (w *Writer) Write(e Event) error {
	if e.Step < 0 || e.Layer < 0 {
		return fmt.Errorf("trace: negative step/layer in %+v", e)
	}
	w.n++
	return w.enc.Encode(e)
}

// Count returns the number of events written.
func (w *Writer) Count() int { return w.n }

// Flush drains the buffer; call before closing the underlying writer.
func (w *Writer) Flush() error { return w.bw.Flush() }

// Read parses a JSONL trace back into events.
func Read(r io.Reader) ([]Event, error) {
	dec := json.NewDecoder(bufio.NewReader(r))
	var out []Event
	for {
		var e Event
		if err := dec.Decode(&e); err == io.EOF {
			return out, nil
		} else if err != nil {
			return nil, fmt.Errorf("trace: event %d: %w", len(out), err)
		}
		out = append(out, e)
	}
}

// Summary aggregates a trace per layer.
type Summary struct {
	Layer        int
	Name         string
	Steps        int
	InputSpikes  int
	OutputSpikes int
	Packets      int
	Suppressed   int
	Activations  int
	EnergyJ      float64
}

// Summarize groups events by layer in first-seen order.
func Summarize(events []Event) []Summary {
	idx := map[int]int{}
	var out []Summary
	for _, e := range events {
		i, ok := idx[e.Layer]
		if !ok {
			i = len(out)
			idx[e.Layer] = i
			out = append(out, Summary{Layer: e.Layer, Name: e.Name})
		}
		s := &out[i]
		s.Steps++
		s.InputSpikes += e.InputSpikes
		s.OutputSpikes += e.OutputSpikes
		s.Packets += e.Packets
		s.Suppressed += e.Suppressed
		s.Activations += e.Activations
		s.EnergyJ += e.EnergyJ
	}
	return out
}
