// Package mpe implements the macro Processing Engine (§3.1.1, Fig 4): the
// lowest reconfigurable tier of RESPARC. An mPE holds up to four MCAs, each
// with its input/output/target buffers, a bank of IF neurons, a Local
// Control Unit sequencing time-multiplexed integration of MCA currents onto
// the neurons, and a Current Control Unit (CCU) that ships analog MCA
// currents to a neighboring mPE when a neuron's fan-in spans mPEs (C_ext).
//
// The model is functional with event accounting: the NeuroCell simulator
// (internal/neurocell) sequences packet delivery and integration cycles and
// reads the counters; numerical behaviour is bit-faithful to the functional
// SNN model (internal/snn) in Ideal weight mode, or runs through the
// physical crossbar model (internal/xbar) when a technology is attached.
package mpe

import (
	"fmt"
	"math/bits"
	"math/rand"

	"resparc/internal/bitvec"
	"resparc/internal/fault"
	"resparc/internal/mapping"
	"resparc/internal/snn"
	"resparc/internal/tensor"
	"resparc/internal/xbar"
)

// Mode selects how an MCA slot evaluates its inner products.
type Mode int

const (
	// Ideal stores exact float weights: the slot computes the same values
	// as the functional SNN model (used for equivalence testing and fast
	// simulation).
	Ideal Mode = iota
	// Physical programs a real crossbar (quantized conductances,
	// optionally perturbed) and evaluates through the electrical model.
	Physical
)

// MCASlot is one crossbar with its buffers inside an mPE.
type MCASlot struct {
	Alloc *mapping.MCA
	Size  int
	Mode  Mode

	// rowOf maps a global presynaptic index to the local row.
	rowOf map[int32]int
	// weights is the logical Rows x Cols weight block (Ideal mode and
	// read-back reference).
	weights *tensor.Mat
	// xb is the physical crossbar (Physical mode).
	xb *xbar.Crossbar

	// active marks local rows that spiked this timestep (the iBUFF state
	// after packet delivery).
	active *bitvec.Bits

	// dead marks a killed crossbar (whole-slot or whole-mPE fault): the slot
	// still receives packets (the switch fabric does not know) but computes
	// nothing.
	dead bool

	// Counters (cleared by ResetCounters).
	Activations  int // timesteps in which the MCA computed
	PacketsIn    int // non-zero packets delivered to the iBUFF
	PacketsZero  int // packets suppressed by zero-check before delivery
	RowsDriven   int // total active rows across activations
	ExtTransfers int // CCU analog transfers to the group owner
}

// NewSlot builds a slot for one mapped MCA, extracting its weight block
// from the layer. xb may be nil for Ideal mode.
func NewSlot(layer *snn.Layer, alloc *mapping.MCA, size int, mode Mode, xb *xbar.Crossbar) (*MCASlot, error) {
	if len(alloc.Inputs) > size || len(alloc.Outputs) > size {
		return nil, fmt.Errorf("mpe: allocation %dx%d exceeds MCA size %d", len(alloc.Inputs), len(alloc.Outputs), size)
	}
	if mode == Physical && xb == nil {
		return nil, fmt.Errorf("mpe: physical mode requires a crossbar")
	}
	s := &MCASlot{
		Alloc: alloc, Size: size, Mode: mode,
		rowOf:   make(map[int32]int, len(alloc.Inputs)),
		weights: tensor.NewMat(len(alloc.Inputs), len(alloc.Outputs)),
		xb:      xb,
		active:  bitvec.New(len(alloc.Inputs)),
	}
	for r, in := range alloc.Inputs {
		s.rowOf[in] = r
	}
	for c, out := range alloc.Outputs {
		for r, in := range alloc.Inputs {
			w, ok := layer.Weight(int(out), int(in))
			if !ok {
				continue
			}
			s.weights.Set(r, c, w)
			if mode == Physical {
				xb.Program(r, c, w)
			}
		}
	}
	return s, nil
}

// ResetTimestep clears the delivered-spike state (between timesteps).
func (s *MCASlot) ResetTimestep() { s.active.Reset() }

// ResetCounters zeroes the event counters.
func (s *MCASlot) ResetCounters() {
	s.Activations, s.PacketsIn, s.PacketsZero, s.RowsDriven, s.ExtTransfers = 0, 0, 0, 0, 0
}

// DeliverPacket delivers one spike packet for this timestep: bits holds
// spikes of the slot's inputs [base, base+64) (local row indexing). Zero
// packets count as suppressed and are not delivered.
func (s *MCASlot) DeliverPacket(base int, bits uint64) {
	if bits == 0 {
		s.PacketsZero++
		return
	}
	s.PacketsIn++
	for b := bits; b != 0; b &= b - 1 {
		i := base + trailingZerosU64(b)
		if i < len(s.Alloc.Inputs) {
			s.active.Set(i)
		}
	}
}

// MarkActive marks the slot's spiking rows directly from the layer-wide
// input spike vector. Packet accounting is done separately (per mPE — the
// mPE's buffers receive each source word once and fan it out to the
// resident MCAs), and zero-word suppression never hides a spiking row, so
// row marking is independent of the transfer path.
func (s *MCASlot) MarkActive(layerInput *bitvec.Bits) {
	for r, in := range s.Alloc.Inputs {
		if layerInput.Get(int(in)) {
			s.active.Set(r)
		}
	}
}

// InputWords returns the ascending width-bit source-word indices this
// slot's inputs occupy.
func (s *MCASlot) InputWords(width int) []int {
	var out []int
	last := -1
	for _, in := range s.Alloc.Inputs {
		w := int(in) / width
		if w != last {
			out = append(out, w)
			last = w
		}
	}
	return out
}

// DeliverFrom delivers the layer-wide input spike vector to this slot using
// source-word packets: spike packets are the width-bit aligned words of the
// producer layer's spike vector (the packets the producing mPEs emit), and
// the slot receives every word that covers at least one of its input rows.
// The zero-check suppresses all-zero source words (§3.2) — this is how MLPs
// "find zero run-lengths" in their 1-D input vectors (§5.3). It returns the
// number of non-zero packets delivered.
func (s *MCASlot) DeliverFrom(layerInput *bitvec.Bits, width int) int {
	delivered := 0
	lastWord := -1
	zero := false
	for r, in := range s.Alloc.Inputs {
		word := int(in) / width
		if word != lastWord {
			lastWord = word
			// Zero-check the whole source word once.
			zero = sourceWordZero(layerInput, word, width)
			if zero {
				s.PacketsZero++
			} else {
				s.PacketsIn++
				delivered++
			}
		}
		if !zero && layerInput.Get(int(in)) {
			s.active.Set(r)
		}
	}
	return delivered
}

// sourceWordZero reports whether source word w (width bits) of the spike
// vector is all zero.
func sourceWordZero(v *bitvec.Bits, word, width int) bool {
	start := word * width
	end := start + width
	if end > v.Len() {
		end = v.Len()
	}
	for i := start; i < end; i++ {
		if v.Get(i) {
			return false
		}
	}
	return true
}

// Active reports whether any row spiked this timestep.
func (s *MCASlot) Active() bool { return s.active.Any() }

// ActiveRows returns the number of driven rows this timestep.
func (s *MCASlot) ActiveRows() int { return s.active.Count() }

// Currents evaluates the slot's column outputs for the delivered spikes, in
// weight units (what the neurons integrate). In Physical mode the values
// pass through the electrical crossbar model. A dead slot contributes
// nothing (and computes nothing — the LCU skips it).
func (s *MCASlot) Currents(cfg xbar.Config) tensor.Vec {
	if s.dead {
		return tensor.NewVec(len(s.Alloc.Outputs))
	}
	s.Activations++
	s.RowsDriven += s.active.Count()
	if s.Mode == Physical {
		// The crossbar is Size x Size; pad the active rows.
		full := bitvec.New(s.xb.Rows)
		s.active.ForEachSet(func(i int) { full.Set(i) })
		out := s.xb.Compute(full, cfg, nil)
		return out[:len(s.Alloc.Outputs)]
	}
	out := tensor.NewVec(len(s.Alloc.Outputs))
	s.active.ForEachSet(func(r int) {
		row := s.weights.Row(r)
		for c, w := range row {
			out[c] += w
		}
	})
	return out
}

// Perturb injects device non-idealities into the slot's physical crossbar
// (no-op in Ideal mode).
func (s *MCASlot) Perturb(cfg xbar.Config, rng *rand.Rand) {
	if s.Mode == Physical {
		s.xb.Perturb(cfg, rng)
	}
}

// SetDead marks the slot killed (whole-crossbar or whole-mPE fault).
func (s *MCASlot) SetDead(dead bool) { s.dead = dead }

// Dead reports whether the slot is killed.
func (s *MCASlot) Dead() bool { return s.dead }

// SetFaults installs a per-device fault map on the slot's physical crossbar
// and reprograms the weight block through it, so stuck devices take effect
// immediately. Error in Ideal mode (there is no device to fault).
func (s *MCASlot) SetFaults(m *fault.CellMap) error {
	if s.Mode != Physical {
		return fmt.Errorf("mpe: fault maps need a physical crossbar")
	}
	s.xb.SetFaults(m)
	return s.reprogram(nil)
}

// Verify reprograms the slot's weight block with the crossbar's
// program-verify loop and returns the report; the unrepairable cells are
// what the fault-aware mapping pass uses to decide remapping. Error in
// Ideal mode.
func (s *MCASlot) Verify(cfg xbar.VerifyConfig) (xbar.VerifyReport, error) {
	if s.Mode != Physical {
		return xbar.VerifyReport{}, fmt.Errorf("mpe: verify needs a physical crossbar")
	}
	var rep xbar.VerifyReport
	err := s.reprogram(func(x *xbar.Crossbar) error {
		var verr error
		rep, verr = x.ProgramVerify(s.weights, cfg)
		return verr
	})
	return rep, err
}

// Scan runs a read-only verify scan of the slot's physical crossbar against
// its logical weight block — the sampled degradation probe of the lifetime
// repair loop. No write pulses are issued; tol <= 0 selects half a
// quantization step. Error in Ideal mode.
func (s *MCASlot) Scan(tol float64) (xbar.ScanReport, error) {
	if s.Mode != Physical {
		return xbar.ScanReport{}, fmt.Errorf("mpe: scan needs a physical crossbar")
	}
	return s.xb.ScanVerify(s.weights, tol)
}

// reprogram rewrites the logical weight block into the crossbar, through fn
// when given (e.g. the verify loop) or plain Program otherwise.
func (s *MCASlot) reprogram(fn func(*xbar.Crossbar) error) error {
	if fn != nil {
		return fn(s.xb)
	}
	for c := range s.Alloc.Outputs {
		for r := range s.Alloc.Inputs {
			s.xb.Program(r, c, s.weights.At(r, c))
		}
	}
	return nil
}

// ReadbackWeight returns the logical weight stored at (global out, global
// in) after programming — in Physical mode this includes conductance
// quantization, so tests can build an exact digital reference.
func (s *MCASlot) ReadbackWeight(out, in int32) (float64, bool) {
	r, ok := s.rowOf[in]
	if !ok {
		return 0, false
	}
	for c, o := range s.Alloc.Outputs {
		if o == out {
			if s.Mode == Physical {
				return s.xb.Weight(r, c), true
			}
			return s.weights.At(r, c), true
		}
	}
	return 0, false
}

func trailingZerosU64(b uint64) int { return bits.TrailingZeros64(b) }

// MPE is one macro processing engine: up to MCAsPerMPE slots. Neuron state
// lives with the owning group (managed by the NeuroCell simulator); the mPE
// provides the slot containers and aggregated counters.
type MPE struct {
	ID    int
	Slots []*MCASlot
}

// Counters aggregates the event counters of every slot.
type Counters struct {
	Activations, PacketsIn, PacketsZero, RowsDriven, ExtTransfers int
}

// SetDead kills (or revives) every slot of the mPE — the whole-mPE kill
// switch of a fault campaign (power gating failure, dead local control unit).
func (m *MPE) SetDead(dead bool) {
	for _, s := range m.Slots {
		s.SetDead(dead)
	}
}

// Counters sums the slot counters.
func (m *MPE) Counters() Counters {
	var c Counters
	for _, s := range m.Slots {
		c.Activations += s.Activations
		c.PacketsIn += s.PacketsIn
		c.PacketsZero += s.PacketsZero
		c.RowsDriven += s.RowsDriven
		c.ExtTransfers += s.ExtTransfers
	}
	return c
}
