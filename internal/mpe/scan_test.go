package mpe

import (
	"testing"

	"resparc/internal/fault"
)

// A freshly programmed slot scans clean; installing a stuck-at map degrades
// the scan without any reprogram (the scan is the detection probe, not the
// repair). Ideal mode has no devices to scan.
func TestSlotScan(t *testing.T) {
	s := faultSlot(t, Physical)
	clean, err := s.Scan(0)
	if err != nil {
		t.Fatal(err)
	}
	if clean.Degraded() {
		t.Fatalf("fresh slot scans degraded: %v", clean)
	}
	m := fault.NewCellMap(8, 8)
	m.Set(1, 2, fault.Pos, fault.StuckHigh)
	if err := s.SetFaults(m); err != nil {
		t.Fatal(err)
	}
	bad, err := s.Scan(0)
	if err != nil {
		t.Fatal(err)
	}
	if !bad.Degraded() {
		t.Fatalf("stuck-high slot scans clean: %v", bad)
	}

	if _, err := faultSlot(t, Ideal).Scan(0); err == nil {
		t.Fatal("ideal-mode scan accepted")
	}
}
