package mpe

import (
	"math"
	"testing"

	"resparc/internal/device"
	"resparc/internal/fault"
	"resparc/internal/mapping"
	"resparc/internal/snn"
	"resparc/internal/tensor"
	"resparc/internal/xbar"
)

func faultSlot(t *testing.T, mode Mode) *MCASlot {
	t.Helper()
	w := tensor.NewMat(4, 8)
	for i := range w.Data {
		w.Data[i] = 0.25 + float64(i%3)*0.25
	}
	l, err := snn.NewDense("d", 8, 4, w, 1)
	if err != nil {
		t.Fatal(err)
	}
	alloc := &mapping.MCA{
		Inputs:  []int32{0, 1, 2, 3, 4, 5, 6, 7},
		Outputs: []int32{0, 1, 2, 3},
		Taps:    32,
	}
	var xb *xbar.Crossbar
	if mode == Physical {
		xb, err = xbar.New(8, 8, device.PCM, 1)
		if err != nil {
			t.Fatal(err)
		}
	}
	s, err := NewSlot(l, alloc, 8, mode, xb)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestDeadSlotComputesNothing(t *testing.T) {
	s := faultSlot(t, Ideal)
	s.DeliverPacket(0, 0xff)
	live := s.Currents(xbar.Config{})
	if live.Sum() == 0 {
		t.Fatal("live slot produced no current")
	}
	s.SetDead(true)
	if !s.Dead() {
		t.Fatal("Dead() false after SetDead(true)")
	}
	acts := s.Activations
	out := s.Currents(xbar.Config{})
	for _, v := range out {
		if v != 0 {
			t.Fatal("dead slot produced current")
		}
	}
	if s.Activations != acts {
		t.Fatal("dead slot counted an activation")
	}
	s.SetDead(false)
	if s.Currents(xbar.Config{}).Sum() == 0 {
		t.Fatal("revived slot produced no current")
	}
}

func TestMPESetDeadKillsAllSlots(t *testing.T) {
	m := &MPE{Slots: []*MCASlot{faultSlot(t, Ideal), faultSlot(t, Ideal)}}
	m.SetDead(true)
	for i, s := range m.Slots {
		if !s.Dead() {
			t.Fatalf("slot %d alive after mPE kill", i)
		}
	}
	m.SetDead(false)
	for i, s := range m.Slots {
		if s.Dead() {
			t.Fatalf("slot %d dead after revive", i)
		}
	}
}

func TestSlotSetFaultsAndVerify(t *testing.T) {
	s := faultSlot(t, Physical)
	// Fault the device under (row 0, col 0): weight 0.25 reads as 0.
	fm := fault.NewCellMap(8, 8)
	fm.Set(0, 0, fault.Pos, fault.StuckLow)
	if err := s.SetFaults(fm); err != nil {
		t.Fatal(err)
	}
	if w, ok := s.ReadbackWeight(0, 0); !ok || math.Abs(w) > 1e-12 {
		t.Fatalf("faulted cell reads %v", w)
	}
	rep, err := s.Verify(xbar.VerifyConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Unrepairable) != 1 || rep.Unrepairable[0].R != 0 || rep.Unrepairable[0].C != 0 {
		t.Fatalf("verify report %+v, want exactly cell (0,0)", rep.Unrepairable)
	}
	// Ideal slots have no devices to fault or verify.
	ideal := faultSlot(t, Ideal)
	if err := ideal.SetFaults(fm); err == nil {
		t.Fatal("SetFaults accepted in Ideal mode")
	}
	if _, err := ideal.Verify(xbar.VerifyConfig{}); err == nil {
		t.Fatal("Verify accepted in Ideal mode")
	}
}
