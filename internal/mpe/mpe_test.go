package mpe

import (
	"math"
	"math/rand"
	"testing"

	"resparc/internal/bitvec"
	"resparc/internal/device"
	"resparc/internal/mapping"
	"resparc/internal/snn"
	"resparc/internal/tensor"
	"resparc/internal/xbar"
)

func slotFixture(t *testing.T, size int, mode Mode) (*MCASlot, *snn.Layer, *mapping.MCA) {
	t.Helper()
	rng := rand.New(rand.NewSource(1))
	w := tensor.NewMat(4, 6)
	for i := range w.Data {
		w.Data[i] = rng.NormFloat64()
	}
	layer, err := snn.NewDense("d", 6, 4, w, 1)
	if err != nil {
		t.Fatal(err)
	}
	alloc := &mapping.MCA{
		Inputs:  []int32{0, 1, 2, 3, 4, 5},
		Outputs: []int32{0, 1, 2, 3},
		Taps:    24,
	}
	var xb *xbar.Crossbar
	if mode == Physical {
		xb, err = xbar.New(size, size, device.PCM, w.MaxAbs())
		if err != nil {
			t.Fatal(err)
		}
	}
	s, err := NewSlot(layer, alloc, size, mode, xb)
	if err != nil {
		t.Fatal(err)
	}
	return s, layer, alloc
}

func TestNewSlotValidation(t *testing.T) {
	_, layer, alloc := slotFixture(t, 8, Ideal)
	if _, err := NewSlot(layer, alloc, 4, Ideal, nil); err == nil {
		t.Fatal("oversized allocation accepted")
	}
	if _, err := NewSlot(layer, alloc, 8, Physical, nil); err == nil {
		t.Fatal("physical mode without crossbar accepted")
	}
}

func TestIdealCurrentsMatchWeights(t *testing.T) {
	s, layer, _ := slotFixture(t, 8, Ideal)
	in := bitvec.New(6)
	in.Set(0)
	in.Set(3)
	s.DeliverFrom(in, 64)
	out := s.Currents(xbar.Config{})
	for c := 0; c < 4; c++ {
		w0, _ := layer.Weight(c, 0)
		w3, _ := layer.Weight(c, 3)
		if math.Abs(out[c]-(w0+w3)) > 1e-12 {
			t.Fatalf("col %d: %v want %v", c, out[c], w0+w3)
		}
	}
}

func TestPhysicalCurrentsMatchReadback(t *testing.T) {
	s, _, alloc := slotFixture(t, 8, Physical)
	in := bitvec.New(6)
	in.Set(1)
	in.Set(5)
	s.DeliverFrom(in, 64)
	out := s.Currents(xbar.Config{})
	for c, o := range alloc.Outputs {
		w1, _ := s.ReadbackWeight(o, 1)
		w5, _ := s.ReadbackWeight(o, 5)
		if math.Abs(out[c]-(w1+w5)) > 1e-9 {
			t.Fatalf("col %d: %v want %v", c, out[c], w1+w5)
		}
	}
}

func TestZeroPacketSuppression(t *testing.T) {
	s, _, _ := slotFixture(t, 8, Ideal)
	s.DeliverPacket(0, 0)
	if s.PacketsZero != 1 || s.PacketsIn != 0 {
		t.Fatalf("counters %d %d", s.PacketsZero, s.PacketsIn)
	}
	if s.Active() {
		t.Fatal("zero packet activated slot")
	}
	s.DeliverPacket(0, 0b101)
	if s.PacketsIn != 1 || !s.Active() || s.ActiveRows() != 2 {
		t.Fatalf("delivery broken: in=%d active=%v rows=%d", s.PacketsIn, s.Active(), s.ActiveRows())
	}
}

func TestResetTimestepAndCounters(t *testing.T) {
	s, _, _ := slotFixture(t, 8, Ideal)
	s.DeliverPacket(0, 0xF)
	s.Currents(xbar.Config{})
	s.ResetTimestep()
	if s.Active() {
		t.Fatal("ResetTimestep failed")
	}
	if s.Activations != 1 || s.RowsDriven != 4 {
		t.Fatalf("counters: %d %d", s.Activations, s.RowsDriven)
	}
	s.ResetCounters()
	if s.Activations != 0 || s.RowsDriven != 0 || s.PacketsIn != 0 {
		t.Fatal("ResetCounters failed")
	}
}

func TestDeliverFromSourceWords(t *testing.T) {
	s, _, _ := slotFixture(t, 8, Ideal)
	// 6 inputs (indices 0..5) live in one 64-bit source word; a spike
	// anywhere in the word delivers exactly one packet.
	in := bitvec.New(6)
	in.Set(2)
	if got := s.DeliverFrom(in, 64); got != 1 {
		t.Fatalf("delivered %d packets, want 1", got)
	}
	if !s.Active() || s.ActiveRows() != 1 {
		t.Fatalf("active=%v rows=%d", s.Active(), s.ActiveRows())
	}
	// With 4-bit words the inputs span 2 words; spikes in both deliver 2.
	s.ResetTimestep()
	s.ResetCounters()
	in.Set(5)
	if got := s.DeliverFrom(in, 4); got != 2 {
		t.Fatalf("delivered %d packets with 4-bit words, want 2", got)
	}
	// An all-zero word is suppressed.
	s.ResetTimestep()
	s.ResetCounters()
	empty := bitvec.New(6)
	if got := s.DeliverFrom(empty, 4); got != 0 {
		t.Fatalf("delivered %d packets from silence", got)
	}
	if s.PacketsZero != 2 {
		t.Fatalf("suppressed %d, want 2", s.PacketsZero)
	}
}

func TestMPECounters(t *testing.T) {
	s1, _, _ := slotFixture(t, 8, Ideal)
	s2, _, _ := slotFixture(t, 8, Ideal)
	m := &MPE{ID: 0, Slots: []*MCASlot{s1, s2}}
	s1.DeliverPacket(0, 1)
	s1.Currents(xbar.Config{})
	s2.DeliverPacket(0, 0)
	c := m.Counters()
	if c.Activations != 1 || c.PacketsIn != 1 || c.PacketsZero != 1 || c.RowsDriven != 1 {
		t.Fatalf("aggregate counters %+v", c)
	}
}

func TestReadbackWeightMisses(t *testing.T) {
	s, _, _ := slotFixture(t, 8, Ideal)
	if _, ok := s.ReadbackWeight(0, 99); ok {
		t.Fatal("unknown input accepted")
	}
	if _, ok := s.ReadbackWeight(99, 0); ok {
		t.Fatal("unknown output accepted")
	}
}

func TestMarkActiveAndInputWords(t *testing.T) {
	s, _, _ := slotFixture(t, 8, Ideal)
	in := bitvec.New(6)
	in.Set(0)
	in.Set(4)
	s.MarkActive(in)
	if !s.Active() || s.ActiveRows() != 2 {
		t.Fatalf("MarkActive: active=%v rows=%d", s.Active(), s.ActiveRows())
	}
	// Inputs 0..5 at width 4 span source words 0 and 1.
	words := s.InputWords(4)
	if len(words) != 2 || words[0] != 0 || words[1] != 1 {
		t.Fatalf("InputWords = %v", words)
	}
	// At width 64 they fit one word.
	if w := s.InputWords(64); len(w) != 1 || w[0] != 0 {
		t.Fatalf("InputWords(64) = %v", w)
	}
}
