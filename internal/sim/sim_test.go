package sim

import (
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"resparc/internal/bitvec"
	"resparc/internal/perf"
	"resparc/internal/snn"
	"resparc/internal/tensor"
)

// testNet builds a tiny dense network for the early-exit runner.
func testNet(t *testing.T) *snn.Network {
	t.Helper()
	rng := rand.New(rand.NewSource(3))
	w := tensor.NewMat(4, 8)
	for i := range w.Data {
		w.Data[i] = rng.NormFloat64() * 0.5
	}
	l, err := snn.NewDense("o", 8, 4, w, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	net, err := snn.NewNetwork("tiny", tensor.Shape3{H: 1, W: 1, C: 8}, l)
	if err != nil {
		t.Fatal(err)
	}
	return net
}

func TestEachValidation(t *testing.T) {
	newSession := func() Session {
		return func(tensor.Vec, snn.Encoder) (perf.Result, Report) {
			return perf.Result{}, Report{}
		}
	}
	enc := func(i int) snn.Encoder { return snn.NewPoissonEncoder(0.5, int64(i)) }
	if _, _, err := Each(nil, enc, Options{}, newSession); err == nil {
		t.Fatal("empty batch accepted")
	}
	if _, _, err := Each([]tensor.Vec{make(tensor.Vec, 4)}, nil, Options{}, newSession); err == nil {
		t.Fatal("nil encoder factory accepted")
	}
}

// Each must build exactly one session per worker, hand every input to some
// session in input order, and index results by input — the contract every
// backend's ClassifyEach inherits.
func TestEachSessionsAndOrdering(t *testing.T) {
	inputs := make([]tensor.Vec, 17)
	for i := range inputs {
		inputs[i] = tensor.Vec{float64(i)}
	}
	enc := func(i int) snn.Encoder { return snn.NewPoissonEncoder(0.5, int64(i)) }
	for _, workers := range []int{1, 4} {
		var mu sync.Mutex
		built := 0
		newSession := func() Session {
			mu.Lock()
			built++
			mu.Unlock()
			return func(in tensor.Vec, _ snn.Encoder) (perf.Result, Report) {
				return perf.Result{Energy: in[0]}, Report{Predicted: int(in[0])}
			}
		}
		ress, reps, err := Each(inputs, enc, Options{Workers: workers}, newSession)
		if err != nil {
			t.Fatal(err)
		}
		if built != workers {
			t.Fatalf("built %d sessions for %d workers", built, workers)
		}
		for i := range inputs {
			if ress[i].Energy != float64(i) || reps[i].Predicted != i {
				t.Fatalf("workers=%d: result %d out of order: %+v %+v", workers, i, ress[i], reps[i])
			}
		}
	}
}

// EachGrouped must cut the inputs into contiguous groups of up to Batch
// images (clamped to the input count), build one session per worker, hand
// every image to exactly one group with its own encoder index, and scatter
// results back in input order — the contract every backend's batch-major
// ClassifyEach inherits.
func TestEachGroupedGroupsAndOrdering(t *testing.T) {
	inputs := make([]tensor.Vec, 17)
	for i := range inputs {
		inputs[i] = tensor.Vec{float64(i)}
	}
	enc := func(i int) snn.Encoder { return snn.NewPoissonEncoder(0.5, int64(i)) }
	for _, batch := range []int{2, 5, 32} {
		for _, workers := range []int{1, 4} {
			var mu sync.Mutex
			built := 0
			var sizes []int
			newSession := func(b int) GroupSession {
				mu.Lock()
				built++
				mu.Unlock()
				want := batch
				if want > len(inputs) {
					want = len(inputs)
				}
				if b != want {
					t.Errorf("session built for batch %d, want %d", b, want)
				}
				return func(ins []tensor.Vec, encs []snn.Encoder, base int) ([]perf.Result, []Report) {
					mu.Lock()
					sizes = append(sizes, len(ins))
					mu.Unlock()
					if len(encs) != len(ins) {
						t.Errorf("group of %d inputs got %d encoders", len(ins), len(encs))
					}
					ress := make([]perf.Result, len(ins))
					reps := make([]Report, len(ins))
					for i, in := range ins {
						if in[0] != float64(base+i) {
							t.Errorf("group base %d slot %d holds input %v", base, i, in[0])
						}
						ress[i] = perf.Result{Energy: in[0]}
						reps[i] = Report{Predicted: int(in[0])}
					}
					return ress, reps
				}
			}
			ress, reps, err := EachGrouped(inputs, enc, Options{Workers: workers, Batch: batch}, newSession)
			if err != nil {
				t.Fatal(err)
			}
			b := batch
			if b > len(inputs) {
				b = len(inputs)
			}
			groups := (len(inputs) + b - 1) / b
			wantSessions := workers
			if wantSessions > groups {
				wantSessions = groups
			}
			if built != wantSessions {
				t.Fatalf("batch=%d workers=%d: built %d sessions, want %d", batch, workers, built, wantSessions)
			}
			total := 0
			for _, n := range sizes {
				if n < 1 || n > b {
					t.Fatalf("batch=%d: group of %d images", batch, n)
				}
				total += n
			}
			if total != len(inputs) || len(sizes) != groups {
				t.Fatalf("batch=%d: %d groups covering %d images, want %d covering %d",
					batch, len(sizes), total, groups, len(inputs))
			}
			for i := range inputs {
				if ress[i].Energy != float64(i) || reps[i].Predicted != i {
					t.Fatalf("batch=%d workers=%d: result %d out of order: %+v %+v",
						batch, workers, i, ress[i], reps[i])
				}
			}
		}
	}
}

func TestEachGroupedValidation(t *testing.T) {
	newSession := func(int) GroupSession {
		return func(ins []tensor.Vec, _ []snn.Encoder, _ int) ([]perf.Result, []Report) {
			return make([]perf.Result, len(ins)), make([]Report, len(ins))
		}
	}
	enc := func(i int) snn.Encoder { return snn.NewPoissonEncoder(0.5, int64(i)) }
	one := []tensor.Vec{make(tensor.Vec, 4)}
	if _, _, err := EachGrouped(nil, enc, Options{Batch: 4}, newSession); err == nil {
		t.Fatal("empty batch accepted")
	}
	if _, _, err := EachGrouped(one, nil, Options{Batch: 4}, newSession); err == nil {
		t.Fatal("nil encoder factory accepted")
	}
	if _, _, err := EachGrouped(one, enc, Options{Batch: 1}, newSession); err == nil {
		t.Fatal("Batch <= 1 accepted")
	}
}

// The early-exit runner must stop at the first output spike, agree with the
// functional TTFS decode at that step, and feed the observer every executed
// step.
func TestEarlyExitRunMatchesTTFS(t *testing.T) {
	net := testNet(t)
	intensity := tensor.Vec{0.9, 0.8, 0.7, 0.9, 0.6, 0.8, 0.9, 0.7}
	const maxSteps = 30
	st := snn.NewState(net)
	steps, predicted := EarlyExitRun(st, intensity, snn.NewPoissonEncoder(0.9, 5), maxSteps, nil)
	if steps <= 0 || steps > maxSteps {
		t.Fatalf("steps %d", steps)
	}
	ref := snn.NewState(net).Run(intensity, snn.NewPoissonEncoder(0.9, 5), steps)
	if predicted != ref.TTFSPrediction() {
		t.Fatalf("early exit predicted %d, functional TTFS %d at step %d", predicted, ref.TTFSPrediction(), steps)
	}

	// Observer sees exactly `steps` timesteps with ascending t.
	var seen []int
	st2 := snn.NewState(net)
	steps2, _ := EarlyExitRun(st2, intensity, snn.NewPoissonEncoder(0.9, 5), maxSteps, observerFunc(func(t int) {
		seen = append(seen, t)
	}))
	want := make([]int, steps2)
	for i := range want {
		want[i] = i
	}
	if !reflect.DeepEqual(seen, want) {
		t.Fatalf("observed steps %v, want %v", seen, want)
	}

	// Silence runs the full budget and predicts -1.
	steps3, pred3 := EarlyExitRun(snn.NewState(net), make(tensor.Vec, 8), snn.NewPoissonEncoder(0.9, 6), maxSteps, nil)
	if steps3 != maxSteps || pred3 != -1 {
		t.Fatalf("silent run: steps %d predicted %d", steps3, pred3)
	}
}

type observerFunc func(t int)

func (f observerFunc) ObserveStep(t int, _ *bitvec.Bits, _ []*bitvec.Bits) { f(t) }
