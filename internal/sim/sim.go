// Package sim defines the backend-neutral simulation interface: every
// architecture simulator (the RESPARC chip, the CMOS baseline, the
// multi-chip shard executor) presents the same three entry points —
// Classify, ClassifyEach, ClassifyBatch — behind one Backend interface, so
// the serving layer, the experiment drivers and the command-line tools never
// special-case a backend type.
//
// The batch fan-out is expressed exactly once (Each): worker clamping,
// per-worker session state and the deterministic per-sample encoder contract
// live here, and backends supply only the per-image classification closure.
// Aggregation stays with the backend (ClassifyBatch), because the reduction
// is architecture-specific: the chip averages energies and sums counters,
// the baseline averages counters and recomputes energy.
package sim

import (
	"fmt"

	"resparc/internal/bitvec"
	"resparc/internal/parallel"
	"resparc/internal/perf"
	"resparc/internal/snn"
	"resparc/internal/tensor"
)

// EncoderFactory builds a deterministic per-sample encoder — typically
// baseEncoder.ForkSeed(i) — so sample i's spike stream depends only on its
// index, never on worker scheduling. See snn.PoissonEncoder.ForkSeed for the
// determinism contract.
type EncoderFactory func(sample int) snn.Encoder

// Options select how a batch call executes. The zero value is the default:
// the backend's configured runner, one worker per CPU, full-length runs.
type Options struct {
	// Workers is the worker-pool size (<= 0 selects one per CPU). Results
	// are bit-identical for any value; Workers: 1 is the serial reference.
	Workers int
	// Stepped forces the step-major functional runner instead of the
	// default blocked layer-major one (bit-identical; a performance escape
	// hatch). It ors with the backend's own construction-time setting.
	Stepped bool
	// BlockSize overrides the blocked runner's temporal block length
	// (<= 0 keeps the backend's configured length). Ignored when stepped.
	BlockSize int
	// EarlyExit decodes by time-to-first-spike and stops simulating at the
	// first output spike (or after the full step budget if none arrives).
	// Report.Steps records the steps actually executed. Backends without an
	// early-exit path reject the option with an error.
	EarlyExit bool
	// Batch selects batch-major (structure-of-arrays) evaluation: inputs are
	// cut into contiguous groups of up to Batch images and each group is
	// integrated by one network instance per layer visit, amortizing weight
	// traffic across the group. Results stay bit-identical to the per-image
	// runners for any value. <= 1 keeps per-image evaluation; the option is
	// ignored when Stepped or EarlyExit forces a per-image runner.
	Batch int
	// EventEngine selects the event-driven cycle-accounting path on backends
	// that support it (the RESPARC chip and its sharded executor): per-layer
	// phase durations are composed by a virtual-time discrete-event engine
	// (pipeline overlap, shared-bus contention) instead of the stepped serial
	// sum. Predictions and energies are bit-identical either way; only
	// Cycles/Latency change. It ors with the backend's construction-time
	// setting; backends without an event path ignore it.
	EventEngine bool
}

// Report is the backend-neutral outcome of one classification (or, for
// ClassifyBatch, of the batch aggregate, where Predicted is -1).
type Report struct {
	// Predicted is the decoded class (-1 when silent or for aggregates).
	Predicted int
	// Steps is the number of timesteps actually simulated (early exit may
	// stop short of the configured budget).
	Steps int
	// Detail carries the backend's own report type (core.Report,
	// cmosbase.Report, shard.Report) for callers that need breakdowns.
	Detail any
}

// Backend is one simulated architecture instance with a prepared network.
// All three classification entry points are deterministic: the outcome of
// image i depends only on (input, encoder) — never on batch composition,
// worker count or scheduling.
type Backend interface {
	// Name identifies the backend on the wire ("resparc", "cmos",
	// "resparc-x4", ...).
	Name() string
	// Network returns the prepared network.
	Network() *snn.Network
	// Healthy reports whether the backend can currently serve (fault
	// campaigns may degrade a chip below its functional threshold).
	Healthy() error
	// Classify simulates one classification with the backend's configured
	// runner and step budget.
	Classify(input tensor.Vec, enc snn.Encoder) (perf.Result, Report)
	// ClassifyEach classifies every input across a worker pool and returns
	// per-image results in input order.
	ClassifyEach(inputs []tensor.Vec, enc EncoderFactory, opt Options) ([]perf.Result, []Report, error)
	// ClassifyBatch classifies every input and reduces to the backend's
	// batch aggregate (per-classification averages; Predicted == -1).
	ClassifyBatch(inputs []tensor.Vec, enc EncoderFactory, opt Options) (perf.Result, Report, error)
}

// Session classifies one input on worker-owned state. Backends hand Each a
// session constructor; each worker gets its own session, so simulation
// state is never shared across goroutines.
type Session func(input tensor.Vec, enc snn.Encoder) (perf.Result, Report)

// Each is the one shared batch fan-out behind every Backend.ClassifyEach:
// it validates the batch, clamps the worker count, builds one session per
// worker and classifies every input in input order across the pool. Image
// i's outcome depends only on (inputs[i], enc(i)), so results are
// bit-identical for any worker count.
func Each(inputs []tensor.Vec, enc EncoderFactory, opt Options, newSession func() Session) ([]perf.Result, []Report, error) {
	if len(inputs) == 0 {
		return nil, nil, fmt.Errorf("sim: empty batch")
	}
	if enc == nil {
		return nil, nil, fmt.Errorf("sim: nil encoder factory")
	}
	workers := parallel.Clamp(opt.Workers, len(inputs))
	sessions := make([]Session, workers)
	for w := range sessions {
		sessions[w] = newSession()
	}
	ress := make([]perf.Result, len(inputs))
	reps := make([]Report, len(inputs))
	parallel.ForEach(len(inputs), workers, func(worker, i int) {
		ress[i], reps[i] = sessions[worker](inputs[i], enc(i))
	})
	return ress, reps, nil
}

// GroupSession classifies one contiguous group of inputs batch-major on
// worker-owned state, returning per-image results and reports in group
// order. base is the global index of the group's first input. encs[i] is the
// deterministic encoder for global sample base+i.
type GroupSession func(inputs []tensor.Vec, encs []snn.Encoder, base int) ([]perf.Result, []Report)

// EachGrouped is the batch-major counterpart of Each: it cuts the inputs
// into contiguous groups of up to opt.Batch images, builds one group session
// per worker and classifies the groups across the pool, scattering per-image
// results back in input order. Grouping never changes results — image i's
// outcome depends only on (inputs[i], enc(i)) — so any (Batch, Workers)
// combination is bit-identical to the serial per-image reference.
func EachGrouped(inputs []tensor.Vec, enc EncoderFactory, opt Options, newSession func(batch int) GroupSession) ([]perf.Result, []Report, error) {
	if len(inputs) == 0 {
		return nil, nil, fmt.Errorf("sim: empty batch")
	}
	if enc == nil {
		return nil, nil, fmt.Errorf("sim: nil encoder factory")
	}
	if opt.Batch <= 1 {
		return nil, nil, fmt.Errorf("sim: EachGrouped requires Options.Batch > 1 (got %d)", opt.Batch)
	}
	b := opt.Batch
	if b > len(inputs) {
		b = len(inputs)
	}
	groups := (len(inputs) + b - 1) / b
	workers := parallel.Clamp(opt.Workers, groups)
	sessions := make([]GroupSession, workers)
	for w := range sessions {
		sessions[w] = newSession(b)
	}
	ress := make([]perf.Result, len(inputs))
	reps := make([]Report, len(inputs))
	parallel.ForEach(groups, workers, func(worker, g int) {
		lo := g * b
		hi := lo + b
		if hi > len(inputs) {
			hi = len(inputs)
		}
		encs := make([]snn.Encoder, hi-lo)
		for i := range encs {
			encs[i] = enc(lo + i)
		}
		rs, rp := sessions[worker](inputs[lo:hi], encs, lo)
		copy(ress[lo:hi], rs)
		copy(reps[lo:hi], rp)
	})
	return ress, reps, nil
}

// EarlyExitRun is the shared time-to-first-spike runner: it resets the
// state, steps the network until an output neuron fires (or maxSteps
// elapse), feeding every executed step to obs, and returns the steps
// executed plus the TTFS prediction (-1 if no output neuron fired). Ties at
// the exit step break toward the higher spike count, then the lower index —
// the same rule as snn.RunResult.TTFSPrediction at that step.
func EarlyExitRun(st *snn.State, intensity tensor.Vec, enc snn.Encoder, maxSteps int, obs snn.Observer) (steps, predicted int) {
	st.Reset()
	net := st.Net
	in := bitvec.New(net.Input.Size())
	counts := make([]int, net.OutSize())
	layers := make([]*bitvec.Bits, len(net.Layers))
	for t := 0; t < maxSteps; t++ {
		enc.Encode(intensity, in)
		out := st.Step(in)
		if obs != nil {
			for i := range layers {
				layers[i] = st.LayerSpikes(i)
			}
			obs.ObserveStep(t, st.InputSpikes(), layers)
		}
		fired := false
		out.ForEachSet(func(i int) {
			counts[i]++
			fired = true
		})
		if fired {
			best, bestN := -1, 0
			for i, n := range counts {
				if n > bestN {
					best, bestN = i, n
				}
			}
			return t + 1, best
		}
	}
	return maxSteps, -1
}
