// Package event is the deterministic discrete-event engine underlying the
// transaction-level simulators. Virtual time is an integer tick counter; the
// pending-event set is a binary min-heap ordered by the composite key
// (tick, priority, seq), where seq is a monotonically increasing insertion
// stamp assigned by the engine. The ordering contract:
//
//   - events fire in non-decreasing tick order;
//   - events at the same tick fire in ascending priority (lower first);
//   - events at the same (tick, priority) fire in the order they were
//     scheduled (FIFO via seq).
//
// Because every component of the key is an integer fixed at Schedule time,
// the pop sequence is a pure function of the schedule — independent of heap
// internals, map iteration, goroutines or wall clock — which is what makes
// event-driven simulation results reproducible across runs and platforms
// (and is covered by a randomized-insertion property test).
//
// The engine is intentionally single-threaded: handlers run on the caller's
// goroutine inside Run/Step, and may schedule further events. Simulators
// that need parallelism fan out whole engine instances per image/shard, the
// same per-task isolation contract as internal/parallel.
package event

import "container/heap"

// Handler is an event callback. It runs with the engine clock set to the
// event's tick and may schedule further events (at the current tick or
// later — scheduling into the past panics).
type Handler func()

// Item is one pending event. Exported so tests (and tools) can express a
// schedule as plain data; simulators normally go through Engine.Schedule.
type Item struct {
	Tick int64   // virtual time the event fires at
	Prio int32   // tie-break within a tick: lower fires first
	Seq  uint64  // insertion stamp: FIFO within (Tick, Prio)
	Fn   Handler // callback; nil items pop but do nothing
}

// Less orders items by the composite key (Tick, Prio, Seq).
func (a Item) Less(b Item) bool {
	if a.Tick != b.Tick {
		return a.Tick < b.Tick
	}
	if a.Prio != b.Prio {
		return a.Prio < b.Prio
	}
	return a.Seq < b.Seq
}

// Queue is a min-heap of Items keyed by (Tick, Prio, Seq). The zero value is
// an empty queue ready for use. It does not assign Seq — callers that want
// the engine's FIFO stamping use Engine.Schedule instead.
type Queue struct{ h itemHeap }

// Len reports the number of pending items.
func (q *Queue) Len() int { return len(q.h) }

// Push inserts an item.
func (q *Queue) Push(it Item) { heap.Push(&q.h, it) }

// Pop removes and returns the minimum item. It panics on an empty queue;
// check Len first.
func (q *Queue) Pop() Item { return heap.Pop(&q.h).(Item) }

// Peek returns the minimum item without removing it.
func (q *Queue) Peek() Item { return q.h[0] }

type itemHeap []Item

func (h itemHeap) Len() int            { return len(h) }
func (h itemHeap) Less(i, j int) bool  { return h[i].Less(h[j]) }
func (h itemHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *itemHeap) Push(x interface{}) { *h = append(*h, x.(Item)) }
func (h *itemHeap) Pop() interface{} {
	old := *h
	n := len(old) - 1
	it := old[n]
	old[n] = Item{}
	*h = old[:n]
	return it
}

// Engine owns a queue and the virtual clock. The zero value is a ready
// engine at tick 0.
type Engine struct {
	q   Queue
	now int64
	seq uint64
}

// Now returns the current virtual tick. Inside a handler this is the tick
// the event was scheduled for.
func (e *Engine) Now() int64 { return e.now }

// Pending reports the number of scheduled events not yet fired.
func (e *Engine) Pending() int { return e.q.Len() }

// Schedule registers fn to run at the given absolute tick with the given
// priority. Scheduling before the current tick panics — virtual time never
// rewinds. Returns the assigned insertion stamp (useful only for debugging).
func (e *Engine) Schedule(tick int64, prio int32, fn Handler) uint64 {
	if tick < e.now {
		panic("event: schedule into the past")
	}
	e.seq++
	e.q.Push(Item{Tick: tick, Prio: prio, Seq: e.seq, Fn: fn})
	return e.seq
}

// After schedules fn delay ticks after the current tick.
func (e *Engine) After(delay int64, prio int32, fn Handler) uint64 {
	if delay < 0 {
		panic("event: negative delay")
	}
	return e.Schedule(e.now+delay, prio, fn)
}

// Step fires the single next event (advancing the clock to its tick) and
// reports whether one was pending.
func (e *Engine) Step() bool {
	if e.q.Len() == 0 {
		return false
	}
	it := e.q.Pop()
	e.now = it.Tick
	if it.Fn != nil {
		it.Fn()
	}
	return true
}

// Run fires events until the queue drains and returns the final tick. A
// handler that always reschedules itself never terminates; simulators bound
// such loops themselves (see RunUntil).
func (e *Engine) Run() int64 {
	for e.Step() {
	}
	return e.now
}

// RunUntil fires events while the next event's tick is <= limit. It returns
// the final clock value and whether the queue drained. Events beyond the
// limit stay pending, so a caller can inspect them (e.g. to report a
// deadlock with stuck work still queued).
func (e *Engine) RunUntil(limit int64) (int64, bool) {
	for e.q.Len() > 0 && e.q.Peek().Tick <= limit {
		e.Step()
	}
	return e.now, e.q.Len() == 0
}

// Resource models a FIFO-exclusive unit (a shared bus, a link direction): at
// most one hold at a time, grants in request order. Acquire returns the tick
// the hold begins — max(now, previous release) — and advances the release
// horizon by the hold duration. Busy and Wait accumulate utilization and
// queuing-delay totals for reporting.
type Resource struct {
	free int64 // tick the resource next becomes idle
	busy int64 // total ticks held
	wait int64 // total ticks requests spent queued
}

// Acquire requests the resource at tick `at` for `dur` ticks and returns the
// tick service starts. Callers schedule their completion at start+dur.
func (r *Resource) Acquire(at, dur int64) (start int64) {
	start = at
	if r.free > start {
		start = r.free
	}
	r.wait += start - at
	r.free = start + dur
	r.busy += dur
	return start
}

// FreeAt returns the tick the resource next becomes idle.
func (r *Resource) FreeAt() int64 { return r.free }

// Busy returns total ticks the resource was held.
func (r *Resource) Busy() int64 { return r.busy }

// Wait returns total ticks requests spent waiting for a grant.
func (r *Resource) Wait() int64 { return r.wait }
