package event

import (
	"math/rand"
	"testing"
)

// TestQueueOrderingDeterministic is the satellite property test: the pop
// sequence of a (tick, priority, seq) schedule is identical no matter what
// order the items were inserted in. 200 random schedules, each inserted in 5
// different shuffles, must pop in exactly the same order every time.
func TestQueueOrderingDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(64)
		sched := make([]Item, n)
		for i := range sched {
			sched[i] = Item{
				// Small ranges force heavy collisions on every key prefix.
				Tick: int64(rng.Intn(8)),
				Prio: int32(rng.Intn(3)),
				Seq:  uint64(rng.Intn(16)),
			}
		}
		var ref []Item
		for shuffle := 0; shuffle < 5; shuffle++ {
			perm := rng.Perm(n)
			var q Queue
			for _, idx := range perm {
				q.Push(sched[idx])
			}
			got := make([]Item, 0, n)
			for q.Len() > 0 {
				got = append(got, q.Pop())
			}
			// Popped order must be sorted by the composite key.
			for i := 1; i < len(got); i++ {
				if got[i].Less(got[i-1]) {
					t.Fatalf("trial %d shuffle %d: pop %d (%+v) out of order after %+v",
						trial, shuffle, i, got[i], got[i-1])
				}
			}
			if shuffle == 0 {
				ref = got
				continue
			}
			for i := range got {
				if got[i].Tick != ref[i].Tick || got[i].Prio != ref[i].Prio || got[i].Seq != ref[i].Seq {
					t.Fatalf("trial %d shuffle %d: pop %d = %+v, want %+v (insertion order leaked into pop order)",
						trial, shuffle, i, got[i], ref[i])
				}
			}
		}
	}
}

// TestEngineFIFOWithinKey verifies Schedule's seq stamping: events at the
// same (tick, prio) fire in scheduling order.
func TestEngineFIFOWithinKey(t *testing.T) {
	var e Engine
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(5, 1, func() { got = append(got, i) })
	}
	e.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("fire order %v, want FIFO 0..9", got)
		}
	}
}

// TestEnginePriorityAndTick checks the full composite ordering across
// handlers that schedule further events.
func TestEnginePriorityAndTick(t *testing.T) {
	var e Engine
	var got []string
	e.Schedule(2, 0, func() { got = append(got, "t2p0") })
	e.Schedule(1, 1, func() {
		got = append(got, "t1p1")
		// Same-tick scheduling from inside a handler: fires after all
		// already-queued tick-1 events of lower priority, before tick 2.
		e.Schedule(1, 2, func() { got = append(got, "t1p2-nested") })
	})
	e.Schedule(1, 0, func() { got = append(got, "t1p0") })
	end := e.Run()
	want := []string{"t1p0", "t1p1", "t1p2-nested", "t2p0"}
	if len(got) != len(want) {
		t.Fatalf("fired %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("fired %v, want %v", got, want)
		}
	}
	if end != 2 {
		t.Fatalf("final tick %d, want 2", end)
	}
}

func TestSchedulePastPanics(t *testing.T) {
	var e Engine
	e.Schedule(5, 0, nil)
	e.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling into the past did not panic")
		}
	}()
	e.Schedule(3, 0, nil)
}

// TestRunUntil checks that events beyond the limit stay pending (the
// deadlock-detection hook for the NoC simulator).
func TestRunUntil(t *testing.T) {
	var e Engine
	fired := 0
	e.Schedule(1, 0, func() { fired++ })
	e.Schedule(10, 0, func() { fired++ })
	now, drained := e.RunUntil(5)
	if drained || fired != 1 || now != 1 {
		t.Fatalf("RunUntil(5): now=%d drained=%v fired=%d, want 1 false 1", now, drained, fired)
	}
	now, drained = e.RunUntil(10)
	if !drained || fired != 2 || now != 10 {
		t.Fatalf("RunUntil(10): now=%d drained=%v fired=%d, want 10 true 2", now, drained, fired)
	}
}

// TestResource verifies FIFO-exclusive grant timing and the busy/wait
// accounting used by the bus and link models.
func TestResource(t *testing.T) {
	var r Resource
	if s := r.Acquire(3, 4); s != 3 {
		t.Fatalf("first acquire start %d, want 3", s)
	}
	// Requested at 5, but busy until 7 → waits 2.
	if s := r.Acquire(5, 2); s != 7 {
		t.Fatalf("second acquire start %d, want 7", s)
	}
	// Requested after the release horizon → no wait.
	if s := r.Acquire(20, 1); s != 20 {
		t.Fatalf("third acquire start %d, want 20", s)
	}
	if r.Busy() != 7 {
		t.Fatalf("busy %d, want 7", r.Busy())
	}
	if r.Wait() != 2 {
		t.Fatalf("wait %d, want 2", r.Wait())
	}
	if r.FreeAt() != 21 {
		t.Fatalf("free at %d, want 21", r.FreeAt())
	}
}
