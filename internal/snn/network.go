// Package snn implements the spiking-neural-network model that RESPARC
// accelerates: multi-layer topologies of Integrate-and-Fire (IF) neurons
// with dense (MLP) or convolutional (CNN) connectivity, Poisson rate
// encoding of inputs, time-stepped functional simulation, and conversion
// from conventionally trained ANNs via weight/threshold balancing (the
// paper's reference [4], Diehl et al. 2015).
//
// The functional model here is the golden reference: the architecture
// simulators in internal/mpe, internal/neurocell and internal/core consume
// the spike trains it produces and are tested against it.
package snn

import (
	"fmt"
	"strings"
	"sync/atomic"

	"resparc/internal/bitvec"
	"resparc/internal/tensor"
)

// LayerKind distinguishes the connectivity structure of a layer.
type LayerKind int

const (
	// DenseLayer is all-to-all connectivity (MLP layers, CNN classifiers).
	DenseLayer LayerKind = iota
	// ConvLayer is weight-shared local connectivity.
	ConvLayer
	// PoolLayer is K x K average pooling (sub-sampling), a fixed-weight
	// sparse linear layer.
	PoolLayer
)

func (k LayerKind) String() string {
	switch k {
	case DenseLayer:
		return "dense"
	case ConvLayer:
		return "conv"
	case PoolLayer:
		return "pool"
	default:
		return fmt.Sprintf("LayerKind(%d)", int(k))
	}
}

// Layer is one SNN layer: a connectivity matrix feeding a population of
// spiking neurons with a common firing threshold.
type Layer struct {
	Kind LayerKind
	Name string
	In   tensor.Shape3
	Out  tensor.Shape3
	// Geom is set for ConvLayer and PoolLayer.
	Geom tensor.ConvGeom
	// W holds the weights: Dense = Out.Size() x In.Size(); Conv = OutC x
	// (K*K*InC) shared kernels; Pool = nil (fixed weight 1/K*K).
	W *tensor.Mat
	// Threshold is the firing threshold of every neuron in the layer.
	Threshold float64
	// Leak is the per-timestep membrane decay factor in [0, 1): 0 gives the
	// pure Integrate-and-Fire neuron the paper evaluates; a positive value
	// gives Leaky-Integrate-and-Fire (v <- v*(1-Leak) before integration).
	// The paper notes any spiking neuron model can be interfaced with the
	// MCA (§3.1.1); the architecture simulators are agnostic to it.
	Leak float64
	// HardReset resets a fired neuron's potential to zero instead of
	// subtracting the threshold. Reset-by-subtraction (the default)
	// preserves rate codes through deep converted stacks; hard reset is the
	// variant used by some trained-from-scratch SNNs.
	HardReset bool

	// Lazily built simulation caches behind atomic pointers, so the hot
	// path stays lock-free and concurrent first use from parallel
	// evaluation workers is safe. Each cached layout is a pure function of
	// W (and the fixed geometry), so a duplicate concurrent build is
	// benign: every builder produces bit-identical content and the last
	// Store wins. Code that mutates W after construction — fault
	// injection, in-place repair — must call InvalidateWeightCaches so the
	// weight-derived layouts (adj, wT, pan) are rebuilt; cp depends only
	// on geometry and survives weight mutation.
	adj atomic.Pointer[adjacency]  // input->output adjacency for event-driven sim
	wT  atomic.Pointer[tensor.Mat] // dense W^T: one contiguous row per input neuron
	pan atomic.Pointer[panelCache] // W packed into 8-row panels (see panelW)
	cp  atomic.Pointer[convPlan]   // conv valid-tap ranges (see convPlan)
}

// InSize returns the flattened input length.
func (l *Layer) InSize() int { return l.In.Size() }

// OutSize returns the number of neurons in the layer.
func (l *Layer) OutSize() int { return l.Out.Size() }

// FanIn returns the number of synapses feeding one neuron of the layer.
func (l *Layer) FanIn() int {
	switch l.Kind {
	case DenseLayer:
		return l.In.Size()
	case ConvLayer:
		return l.Geom.FanIn()
	case PoolLayer:
		return l.Geom.K * l.Geom.K
	default:
		panic("snn: unknown layer kind")
	}
}

// Synapses returns the connection count of the layer using the paper's
// Fig 10 convention: every (output neuron, input tap) pair counts once,
// including shared conv weights at each output location.
func (l *Layer) Synapses() int {
	switch l.Kind {
	case DenseLayer:
		return l.In.Size() * l.Out.Size()
	case ConvLayer:
		n, err := l.Geom.Connections()
		if err != nil {
			panic("snn: " + err.Error())
		}
		return n
	case PoolLayer:
		return l.Out.Size() * l.Geom.K * l.Geom.K
	default:
		panic("snn: unknown layer kind")
	}
}

// PoolWeight is the fixed synaptic weight of pooling taps.
func (l *Layer) PoolWeight() float64 {
	return 1.0 / float64(l.Geom.K*l.Geom.K)
}

// NewDense returns a dense layer with the given Out x In weight matrix.
func NewDense(name string, in, out int, w *tensor.Mat, threshold float64) (*Layer, error) {
	if w == nil || w.Rows != out || w.Cols != in {
		return nil, fmt.Errorf("snn: dense %q wants %dx%d weights", name, out, in)
	}
	if threshold <= 0 {
		return nil, fmt.Errorf("snn: dense %q threshold %v must be positive", name, threshold)
	}
	return &Layer{
		Kind: DenseLayer, Name: name,
		In:  tensor.Shape3{H: 1, W: 1, C: in},
		Out: tensor.Shape3{H: 1, W: 1, C: out},
		W:   w, Threshold: threshold,
	}, nil
}

// NewConv returns a convolution layer with shared kernels (OutC x K*K*InC).
func NewConv(name string, geom tensor.ConvGeom, w *tensor.Mat, threshold float64) (*Layer, error) {
	out, err := geom.OutShape()
	if err != nil {
		return nil, fmt.Errorf("snn: conv %q: %w", name, err)
	}
	if w == nil || w.Rows != geom.OutC || w.Cols != geom.FanIn() {
		return nil, fmt.Errorf("snn: conv %q wants %dx%d weights", name, geom.OutC, geom.FanIn())
	}
	if threshold <= 0 {
		return nil, fmt.Errorf("snn: conv %q threshold %v must be positive", name, threshold)
	}
	return &Layer{Kind: ConvLayer, Name: name, In: geom.In, Out: out, Geom: geom, W: w, Threshold: threshold}, nil
}

// NewPool returns a K x K average-pooling layer. Pooled IF neurons fire when
// enough window inputs spiked; threshold is typically just under 1 pool
// weight times K*K/2 — callers choose.
func NewPool(name string, in tensor.Shape3, k int, threshold float64) (*Layer, error) {
	geom := tensor.ConvGeom{In: in, K: k, Stride: k, Pad: 0, OutC: in.C}
	out, err := geom.OutShape()
	if err != nil {
		return nil, fmt.Errorf("snn: pool %q: %w", name, err)
	}
	if threshold <= 0 {
		return nil, fmt.Errorf("snn: pool %q threshold %v must be positive", name, threshold)
	}
	return &Layer{Kind: PoolLayer, Name: name, In: in, Out: out, Geom: geom, Threshold: threshold}, nil
}

// Network is an ordered stack of SNN layers.
type Network struct {
	Name   string
	Input  tensor.Shape3
	Layers []*Layer
}

// NewNetwork validates inter-layer shape agreement.
func NewNetwork(name string, input tensor.Shape3, layers ...*Layer) (*Network, error) {
	size := input.Size()
	for i, l := range layers {
		if l.InSize() != size {
			return nil, fmt.Errorf("snn: %s layer %d (%s) expects %d inputs, previous produces %d",
				name, i, l.Name, l.InSize(), size)
		}
		size = l.OutSize()
	}
	return &Network{Name: name, Input: input, Layers: layers}, nil
}

// Neurons returns the total neuron count: input neurons plus every layer's
// population (the counting convention of Fig 10).
func (n *Network) Neurons() int {
	total := n.Input.Size()
	for _, l := range n.Layers {
		total += l.OutSize()
	}
	return total
}

// HiddenNeurons returns the neuron count excluding the input layer.
func (n *Network) HiddenNeurons() int { return n.Neurons() - n.Input.Size() }

// Synapses returns the total connection count across layers.
func (n *Network) Synapses() int {
	total := 0
	for _, l := range n.Layers {
		total += l.Synapses()
	}
	return total
}

// OutSize returns the size of the final layer (the class count for
// classifiers).
func (n *Network) OutSize() int {
	if len(n.Layers) == 0 {
		return n.Input.Size()
	}
	return n.Layers[len(n.Layers)-1].OutSize()
}

// Summary returns a human-readable multi-line description of the network:
// one line per layer with kind, shapes, synapses and threshold.
func (n *Network) Summary() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s: input %s, %d neurons, %d synapses\n",
		n.Name, n.Input, n.HiddenNeurons(), n.Synapses())
	for i, l := range n.Layers {
		fmt.Fprintf(&sb, "  %2d %-5s %-20s %s -> %s  syn=%d th=%.3g",
			i, l.Kind, l.Name, l.In, l.Out, l.Synapses(), l.Threshold)
		if l.Leak > 0 {
			fmt.Fprintf(&sb, " leak=%.2g", l.Leak)
		}
		if l.HardReset {
			sb.WriteString(" hard-reset")
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// FanOut returns how many postsynaptic neurons the presynaptic neuron in
// drives in this layer (dense: every output; conv/pool: from the adjacency
// index). The event-driven CMOS baseline uses it to count synaptic
// operations per input spike.
func (l *Layer) FanOut(in int) int {
	if in < 0 || in >= l.InSize() {
		return 0
	}
	if l.Kind == DenseLayer {
		return l.OutSize()
	}
	adj := l.buildAdjacency()
	return int(adj.start[in+1] - adj.start[in])
}

// Weight returns the synaptic weight between flat postsynaptic index out
// and flat presynaptic index in, and whether the connection exists. Used by
// the mPE programmer to fill crossbar cross-points.
func (l *Layer) Weight(out, in int) (float64, bool) {
	if out < 0 || out >= l.OutSize() || in < 0 || in >= l.InSize() {
		return 0, false
	}
	switch l.Kind {
	case DenseLayer:
		return l.W.At(out, in), true
	case ConvLayer, PoolLayer:
		// Invert the geometry: out = (oy, ox, oc), in = (iy, ix, ic).
		g := l.Geom
		oc := out % l.Out.C
		oxy := out / l.Out.C
		oy, ox := oxy/l.Out.W, oxy%l.Out.W
		ic := in % g.In.C
		ixy := in / g.In.C
		iy, ix := ixy/g.In.W, ixy%g.In.W
		ky := iy - oy*g.Stride + g.Pad
		kx := ix - ox*g.Stride + g.Pad
		if ky < 0 || ky >= g.K || kx < 0 || kx >= g.K {
			return 0, false
		}
		if l.Kind == PoolLayer {
			if ic != oc {
				return 0, false
			}
			return l.PoolWeight(), true
		}
		return l.W.At(oc, (ky*g.K+kx)*g.In.C+ic), true
	default:
		panic("snn: unknown layer kind")
	}
}

// adjacency is a CSR-like input->output tap index enabling event-driven
// propagation: for each presynaptic neuron, the list of (postsynaptic
// neuron, weight) pairs. Weights are resolved at build time into wval so
// the per-spike inner loop is a pure contiguous accumulate with no index
// arithmetic or matrix lookups.
type adjacency struct {
	start []int32   // len InSize+1
	out   []int32   // postsynaptic flat index
	kidx  []int32   // kernel weight index (conv/pool); -1 semantics unused for dense
	wval  []float64 // resolved synaptic weight per tap
}

// buildAdjacency constructs the event-driven index. Dense layers do not
// need one (they use the transposed-weight cache instead); conv and pool
// layers get a flat CSR built from the shared ConvGeom walker. Safe for
// concurrent first use.
func (l *Layer) buildAdjacency() *adjacency {
	if a := l.adj.Load(); a != nil {
		return a
	}
	a := l.makeAdjacency()
	l.adj.Store(a)
	return a
}

func (l *Layer) makeAdjacency() *adjacency {
	// Pool layers connect same-channel only; the geometry walker enumerates
	// every channel combination, so filter the cross-channel taps out.
	keep := func(outIdx, inIdx int) bool {
		if inIdx < 0 {
			return false
		}
		if l.Kind == PoolLayer {
			return inIdx%l.In.C == outIdx%l.Out.C
		}
		return true
	}
	counts := make([]int32, l.InSize()+1)
	err := l.Geom.ForEachTap(func(outIdx, inIdx, _ int) {
		if keep(outIdx, inIdx) {
			counts[inIdx+1]++
		}
	})
	if err != nil {
		panic("snn: " + err.Error())
	}
	for i := 1; i < len(counts); i++ {
		counts[i] += counts[i-1]
	}
	total := counts[len(counts)-1]
	adj := &adjacency{
		start: counts,
		out:   make([]int32, total),
		kidx:  make([]int32, total),
		wval:  make([]float64, total),
	}
	cursor := make([]int32, l.InSize())
	copy(cursor, counts[:l.InSize()])
	pw := l.PoolWeight()
	_ = l.Geom.ForEachTap(func(outIdx, inIdx, kIdx int) {
		if !keep(outIdx, inIdx) {
			return
		}
		p := cursor[inIdx]
		adj.out[p] = int32(outIdx)
		adj.kidx[p] = int32(kIdx)
		if l.Kind == PoolLayer {
			adj.wval[p] = pw
		} else {
			adj.wval[p] = l.W.At(outIdx%l.Out.C, kIdx)
		}
		cursor[inIdx] = p + 1
	})
	return adj
}

// transposedW returns the lazily built W^T of a dense layer: row i holds the
// weights every output neuron receives from input i, contiguously. It turns
// the event-driven dense integration from a stride-Cols column walk into a
// streaming row accumulation per input spike. Safe for concurrent first use.
func (l *Layer) transposedW() *tensor.Mat {
	if t := l.wT.Load(); t != nil {
		return t
	}
	t := l.W.Transpose()
	l.wT.Store(t)
	return t
}

// panelCache wraps the packed panel slice so it can live behind an
// atomic.Pointer (a slice header is not directly atomically storable).
type panelCache struct{ w []float64 }

// panelLanes is the row-group width of the packed panel layout: the blocked
// dense kernel advances this many output neurons per spike, and packing puts
// their weights for one input side by side (8 float64 = one cache line).
const panelLanes = 8

// panelW returns the layer's weight matrix packed into 8-row panels:
// pan[g*cols*8 + i*8 + lane] = W[8g+lane][i]. The blocked kernel reads the
// eight weights of one input spike as a single contiguous cache line with
// constant displacements instead of gathering from eight distant rows (which
// costs eight slice headers and spills them off the register file). Only
// full groups of eight rows are packed; the remainder rows (< 8) fall back
// to the row-major W. Safe for concurrent first use.
//
// For dense layers the rows are output neurons and the columns input
// neurons; for conv layers the same packing applies verbatim to the shared
// OutC x FanIn kernel matrix — a panel groups 8 output channels and a
// "column" is one kernel tap index, so one accumPanel call integrates a
// spiking tap into 8 feature maps at once. Never called for pool layers
// (W == nil).
func (l *Layer) panelW() []float64 {
	if p := l.pan.Load(); p != nil {
		return p.w
	}
	cols := l.W.Cols
	groups := l.W.Rows / panelLanes
	pan := make([]float64, groups*cols*panelLanes)
	for g := 0; g < groups; g++ {
		block := pan[g*cols*panelLanes:]
		for lane := 0; lane < panelLanes; lane++ {
			row := l.W.Row((g*panelLanes + lane))
			for i, x := range row {
				block[i*panelLanes+lane] = x
			}
		}
	}
	l.pan.Store(&panelCache{w: pan})
	return pan
}

// InvalidateWeightCaches drops the layer's weight-derived simulation
// layouts (event adjacency, transposed weights, packed panels) so the next
// integration rebuilds them from the current W. It must be called after any
// in-place mutation of W — fault injection or crossbar repair — or stepped,
// blocked and batch-major evaluation keep reading the stale layouts. The
// conv tap plan depends only on geometry and is deliberately kept.
//
// The caller is responsible for quiescence: invalidate while no evaluation
// over this layer is in flight (the serving integration takes the model's
// repair write-lock for exactly this reason). Concurrent rebuilds after the
// invalidation are safe.
func (l *Layer) InvalidateWeightCaches() {
	l.adj.Store(nil)
	l.wT.Store(nil)
	l.pan.Store(nil)
}

// InvalidateWeightCaches invalidates the weight-derived caches of every
// layer. See Layer.InvalidateWeightCaches.
func (n *Network) InvalidateWeightCaches() {
	for _, l := range n.Layers {
		l.InvalidateWeightCaches()
	}
}

// convPlan caches, per conv output row/column, the range of kernel
// rows/columns whose taps land inside the input volume — everything outside
// is zero padding and contributes nothing. With it, the conv block kernel
// enumerates exactly the valid taps of a receptive field with no per-tap
// bounds checks: for output row oy, ky ranges over [kyLo[oy], kyHi[oy]),
// and likewise kx over [kxLo[ox], kxHi[ox]).
type convPlan struct {
	kyLo, kyHi []int
	kxLo, kxHi []int
}

// convPlan returns the lazily built valid-tap plan of a conv layer. Safe
// for concurrent first use.
func (l *Layer) convPlan() *convPlan {
	if p := l.cp.Load(); p != nil {
		return p
	}
	p := l.makeConvPlan()
	l.cp.Store(p)
	return p
}

func (l *Layer) makeConvPlan() *convPlan {
	g := l.Geom
	clampRange := func(o, in int) (int, int) {
		lo, hi := 0, g.K
		i0 := o*g.Stride - g.Pad
		if i0 < 0 {
			lo = -i0
		}
		if i0+g.K > in {
			hi = in - i0
		}
		if hi < lo {
			hi = lo
		}
		return lo, hi
	}
	p := &convPlan{
		kyLo: make([]int, l.Out.H), kyHi: make([]int, l.Out.H),
		kxLo: make([]int, l.Out.W), kxHi: make([]int, l.Out.W),
	}
	for oy := 0; oy < l.Out.H; oy++ {
		p.kyLo[oy], p.kyHi[oy] = clampRange(oy, g.In.H)
	}
	for ox := 0; ox < l.Out.W; ox++ {
		p.kxLo[ox], p.kxHi[ox] = clampRange(ox, g.In.W)
	}
	return p
}

// ActiveSynOps returns the number of synaptic accumulations an event-driven
// pass over the layer performs for the given input spike vector — the hot
// counter of the CMOS baseline model. The adjacency lookup is hoisted out of
// the per-spike loop.
func (l *Layer) ActiveSynOps(in *bitvec.Bits) int {
	if l.Kind == DenseLayer {
		return in.Count() * l.OutSize()
	}
	adj := l.buildAdjacency()
	ops := 0
	in.ForEachSet(func(i int) {
		ops += int(adj.start[i+1] - adj.start[i])
	})
	return ops
}
