package snn_test

import (
	"fmt"

	"resparc/internal/bitvec"
	"resparc/internal/snn"
	"resparc/internal/tensor"
)

// A single Integrate-and-Fire neuron with weight 0.5 and threshold 1 fires
// on every second input spike.
func ExampleState_Step() {
	w := tensor.NewMat(1, 1)
	w.Set(0, 0, 0.5)
	layer, err := snn.NewDense("n", 1, 1, w, 1)
	if err != nil {
		fmt.Println(err)
		return
	}
	net, err := snn.NewNetwork("if", tensor.Shape3{H: 1, W: 1, C: 1}, layer)
	if err != nil {
		fmt.Println(err)
		return
	}
	st := snn.NewState(net)
	in := bitvec.New(1)
	in.Set(0)
	for step := 1; step <= 4; step++ {
		out := st.Step(in)
		fmt.Printf("step %d: fired=%v\n", step, out.Get(0))
	}
	// Output:
	// step 1: fired=false
	// step 2: fired=true
	// step 3: fired=false
	// step 4: fired=true
}

// Rate coding with the deterministic encoder: intensity 0.5 at peak
// probability 1 spikes every other step.
func ExampleRegularEncoder() {
	enc := snn.NewRegularEncoder(1)
	dst := bitvec.New(1)
	for step := 1; step <= 4; step++ {
		enc.Encode(tensor.Vec{0.5}, dst)
		fmt.Printf("step %d: spike=%v\n", step, dst.Get(0))
	}
	// Output:
	// step 1: spike=false
	// step 2: spike=true
	// step 3: spike=false
	// step 4: spike=true
}
