// External test package: quant imports snn, so the quantized round-trip
// coverage for serialize.go lives here to avoid an import cycle.
package snn_test

import (
	"bytes"
	"math/rand"
	"testing"

	"resparc/internal/quant"
	"resparc/internal/snn"
	"resparc/internal/tensor"
)

func roundTripNetwork(t *testing.T, net *snn.Network) *snn.Network {
	t.Helper()
	var buf bytes.Buffer
	if err := snn.WriteNetwork(&buf, net); err != nil {
		t.Fatal(err)
	}
	got, err := snn.ReadNetwork(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return got
}

func convPoolFixture(t *testing.T) *snn.Network {
	t.Helper()
	rng := rand.New(rand.NewSource(91))
	geom := tensor.ConvGeom{In: tensor.Shape3{H: 10, W: 10, C: 1}, K: 3, Stride: 1, Pad: 1, OutC: 3}
	cw := tensor.NewMat(3, 9)
	for i := range cw.Data {
		cw.Data[i] = rng.NormFloat64() * 0.4
	}
	conv, err := snn.NewConv("conv", geom, cw, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	pool, err := snn.NewPool("pool", tensor.Shape3{H: 10, W: 10, C: 3}, 2, 0.499)
	if err != nil {
		t.Fatal(err)
	}
	dw := tensor.NewMat(4, 75)
	for i := range dw.Data {
		dw.Data[i] = rng.NormFloat64() * 0.4
	}
	fc, err := snn.NewDense("fc", 75, 4, dw, 1.1)
	if err != nil {
		t.Fatal(err)
	}
	net, err := snn.NewNetwork("conv-pool-rt", geom.In, conv, pool, fc)
	if err != nil {
		t.Fatal(err)
	}
	return net
}

// assertIdenticalInference runs full classifications (Poisson encoding over
// many steps) through both networks and requires bit-identical outcomes:
// same prediction, same output spike counts, same first-spike latencies.
func assertIdenticalInference(t *testing.T, want, got *snn.Network, steps int) {
	t.Helper()
	ws, gs := snn.NewState(want), snn.NewState(got)
	n := want.Input.Size()
	for trial := 0; trial < 5; trial++ {
		in := make(tensor.Vec, n)
		for i := range in {
			in[i] = float64((trial*31+i*7)%100) / 99
		}
		enc := snn.NewPoissonEncoder(0.8, 11).ForkSeed(trial)
		enc2 := snn.NewPoissonEncoder(0.8, 11).ForkSeed(trial)
		wr, gr := ws.Run(in, enc, steps), gs.Run(in, enc2, steps)
		if wr.Prediction != gr.Prediction || wr.InputSpikes != gr.InputSpikes {
			t.Fatalf("trial %d: prediction %d/%d, input spikes %d/%d",
				trial, wr.Prediction, gr.Prediction, wr.InputSpikes, gr.InputSpikes)
		}
		for c := range wr.OutCounts {
			if wr.OutCounts[c] != gr.OutCounts[c] || wr.FirstSpike[c] != gr.FirstSpike[c] {
				t.Fatalf("trial %d class %d: counts %d/%d, first spike %d/%d",
					trial, c, wr.OutCounts[c], gr.OutCounts[c], wr.FirstSpike[c], gr.FirstSpike[c])
			}
		}
	}
}

// A conv+pool topology survives serialization with bit-identical inference.
func TestRoundTripConvPoolInference(t *testing.T) {
	net := convPoolFixture(t)
	got := roundTripNetwork(t, net)
	assertIdenticalInference(t, net, got, 24)
}

// A 4-bit quantized network survives serialization: the quantized weight
// levels are preserved exactly and inference after reload is bit-identical.
func TestRoundTripQuantizedNetwork(t *testing.T) {
	qnet, err := quant.QuantizeNetwork(convPoolFixture(t), 4)
	if err != nil {
		t.Fatal(err)
	}
	got := roundTripNetwork(t, qnet)
	for i, l := range qnet.Layers {
		g := got.Layers[i]
		if (l.W == nil) != (g.W == nil) {
			t.Fatalf("layer %d weight presence mismatch", i)
		}
		if l.W == nil {
			continue
		}
		levels := make(map[float64]bool)
		for j := range l.W.Data {
			if g.W.Data[j] != l.W.Data[j] {
				t.Fatalf("layer %d weight %d: %v != %v", i, j, g.W.Data[j], l.W.Data[j])
			}
			levels[g.W.Data[j]] = true
		}
		// 4-bit quantization admits at most 2^4 - 1 = 15 signed levels.
		if len(levels) > 15 {
			t.Fatalf("layer %d has %d distinct weight levels after 4-bit quantization", i, len(levels))
		}
	}
	assertIdenticalInference(t, qnet, got, 24)
}
