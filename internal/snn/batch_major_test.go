// Equivalence suite for batch-major evaluation: a BatchState integrating a
// group of images must be bit-identical, per image, to the step-major
// reference — same predictions, spike counts, first-spike latencies, and
// per-step rasters — for every batch size, group fill, block size, layer
// kind, leak/reset mode, and quantization.
package snn_test

import (
	"fmt"
	"testing"

	"resparc/internal/quant"
	"resparc/internal/snn"
	"resparc/internal/tensor"
)

var batchSizes = []int{1, 3, 8}

// batchInputs builds nb distinct deterministic images for a network.
func batchInputs(net *snn.Network, nb int) []tensor.Vec {
	inputs := make([]tensor.Vec, nb)
	n := net.Input.Size()
	for b := range inputs {
		in := make(tensor.Vec, n)
		for i := range in {
			in[i] = float64((i*13+7*b+5)%100) / 99
		}
		inputs[b] = in
	}
	return inputs
}

// assertBatchMatchesStepped runs nb images through one BatchState (batch B,
// block size K) and through the per-image step-major reference, and requires
// identical results and identical observed rasters for every image.
func assertBatchMatchesStepped(t *testing.T, net *snn.Network, nb, blockK int) {
	t.Helper()
	const steps = 20
	inputs := batchInputs(net, nb)
	base := snn.NewPoissonEncoder(0.8, 23)
	encs := make([]snn.Encoder, nb)
	obs := make([]snn.Observer, nb)
	recs := make([]*rasterRecorder, nb)
	for b := range encs {
		encs[b] = base.ForkSeed(b)
		recs[b] = &rasterRecorder{}
		obs[b] = recs[b]
	}
	bst := snn.NewBatchState(net, nb)
	got := bst.RunBlocked(inputs, encs, steps, blockK, obs)
	for b := 0; b < nb; b++ {
		var ref rasterRecorder
		sr := snn.NewState(net).RunObserved(inputs[b], base.ForkSeed(b), steps, &ref)
		br := got[b]
		label := fmt.Sprintf("B=%d K=%d image %d", nb, blockK, b)
		if sr.Prediction != br.Prediction || sr.InputSpikes != br.InputSpikes || sr.Steps != br.Steps {
			t.Fatalf("%s: prediction %d/%d, input spikes %d/%d, steps %d/%d",
				label, sr.Prediction, br.Prediction, sr.InputSpikes, br.InputSpikes, sr.Steps, br.Steps)
		}
		for c := range sr.OutCounts {
			if sr.OutCounts[c] != br.OutCounts[c] || sr.FirstSpike[c] != br.FirstSpike[c] {
				t.Fatalf("%s class %d: counts %d/%d, first spike %d/%d",
					label, c, sr.OutCounts[c], br.OutCounts[c], sr.FirstSpike[c], br.FirstSpike[c])
			}
		}
		rec := recs[b]
		if len(rec.input) != steps || len(ref.input) != steps {
			t.Fatalf("%s: observed %d/%d steps, want %d", label, len(rec.input), len(ref.input), steps)
		}
		for step := range ref.input {
			if !equalIdx(ref.input[step], rec.input[step]) {
				t.Fatalf("%s step %d: input rasters differ", label, step)
			}
			for li := range ref.layers[step] {
				if !equalIdx(ref.layers[step][li], rec.layers[step][li]) {
					t.Fatalf("%s step %d layer %d: rasters differ\nstepped %v\nbatched %v",
						label, step, li, ref.layers[step][li], rec.layers[step][li])
				}
			}
		}
	}
}

// The batch-major runner matches the reference on the conv+pool+dense fixture
// for every (batch, block size) combination.
func TestBatchMajorMatchesSteppedConvPool(t *testing.T) {
	net := convPoolFixture(t)
	for _, nb := range batchSizes {
		for _, k := range blockSizes {
			assertBatchMatchesStepped(t, net, nb, k)
		}
	}
}

// 4-bit quantized weights (the memristive crossbar configuration) stay
// bit-identical through the batch-major path.
func TestBatchMajorMatchesSteppedQuantized(t *testing.T) {
	qnet, err := quant.QuantizeNetwork(convPoolFixture(t), 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, nb := range batchSizes {
		for _, k := range blockSizes {
			assertBatchMatchesStepped(t, qnet, nb, k)
		}
	}
}

// Leaky integration and hard reset take the batch kernels' fallback paths;
// both must stay bit-identical.
func TestBatchMajorMatchesSteppedLeaky(t *testing.T) {
	net := mlpFixture(t, 0.12, false)
	for _, nb := range batchSizes {
		assertBatchMatchesStepped(t, net, nb, 7)
	}
}

func TestBatchMajorMatchesSteppedHardReset(t *testing.T) {
	net := mlpFixture(t, 0.05, true)
	for _, nb := range batchSizes {
		assertBatchMatchesStepped(t, net, nb, 7)
	}
}

// A partially filled group (fewer images than the state's batch capacity)
// must leave results identical and independent of the unused slots.
func TestBatchMajorPartialGroup(t *testing.T) {
	net := convPoolFixture(t)
	const steps = 16
	inputs := batchInputs(net, 5)
	base := snn.NewPoissonEncoder(0.8, 31)
	bst := snn.NewBatchState(net, 8)
	// First fill all 8 slots so stale state exists, then run a group of 3.
	full := batchInputs(net, 8)
	encsFull := make([]snn.Encoder, 8)
	for b := range encsFull {
		encsFull[b] = base.ForkSeed(100 + b)
	}
	bst.RunBlocked(full, encsFull, steps, 0, nil)
	encs := make([]snn.Encoder, 3)
	for b := range encs {
		encs[b] = base.ForkSeed(b)
	}
	got := bst.RunBlocked(inputs[:3], encs, steps, 0, nil)
	for b := 0; b < 3; b++ {
		want := snn.NewState(net).Run(inputs[b], base.ForkSeed(b), steps)
		if got[b].Prediction != want.Prediction {
			t.Fatalf("image %d: prediction %d, want %d", b, got[b].Prediction, want.Prediction)
		}
		for c := range want.OutCounts {
			if got[b].OutCounts[c] != want.OutCounts[c] {
				t.Fatalf("image %d class %d: counts %d, want %d", b, c, got[b].OutCounts[c], want.OutCounts[c])
			}
		}
	}
}

// RunBatch with Options.Batch must be bit-identical to the serial stepped
// runner for every batch size, including batches that don't divide the input
// count, and regardless of worker count.
func TestRunBatchBatchMajorEquivalence(t *testing.T) {
	net := convPoolFixture(t)
	const steps, n = 16, 7
	inputs := batchInputs(net, n)
	base := snn.NewPoissonEncoder(0.8, 47)
	enc := func(i int) snn.Encoder { return base.ForkSeed(i) }
	want, err := snn.RunBatch(net, inputs, enc, steps, snn.Options{Workers: 1, Stepped: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, batch := range batchSizes {
		for _, workers := range []int{1, 3} {
			got, err := snn.RunBatch(net, inputs, enc, steps, snn.Options{Workers: workers, Batch: batch})
			if err != nil {
				t.Fatal(err)
			}
			for i := range want {
				if got[i].Prediction != want[i].Prediction || got[i].InputSpikes != want[i].InputSpikes {
					t.Fatalf("batch=%d workers=%d image %d: prediction %d/%d, input spikes %d/%d",
						batch, workers, i, got[i].Prediction, want[i].Prediction,
						got[i].InputSpikes, want[i].InputSpikes)
				}
				for c := range want[i].OutCounts {
					if got[i].OutCounts[c] != want[i].OutCounts[c] || got[i].FirstSpike[c] != want[i].FirstSpike[c] {
						t.Fatalf("batch=%d workers=%d image %d class %d: counts %d/%d first %d/%d",
							batch, workers, i, c, got[i].OutCounts[c], want[i].OutCounts[c],
							got[i].FirstSpike[c], want[i].FirstSpike[c])
					}
				}
			}
		}
	}
}
