package snn

import (
	"fmt"

	"resparc/internal/ann"
	"resparc/internal/dataset"
	"resparc/internal/tensor"
)

// FromANN converts a trained ANN into a spiking network using the
// weight/threshold balancing method of Diehl et al. (the paper's reference
// [4]): every ReLU layer's weights are rescaled by the ratio of the previous
// and current layers' maximum observed activations, so that each IF layer
// can use a unit threshold while preserving the ANN's relative activations
// as spike rates.
//
// calib supplies calibration inputs (a modest sample of the training set is
// enough). The returned network owns fresh weight copies; the ANN is not
// modified.
func FromANN(name string, n *ann.Network, calib *dataset.Set) (*Network, error) {
	if len(n.Layers) == 0 {
		return nil, fmt.Errorf("snn: cannot convert empty network")
	}
	maxAct := calibrate(n, calib)
	layers := make([]*Layer, 0, len(n.Layers))
	prevScale := 1.0
	for i, al := range n.Layers {
		scale := maxAct[i]
		if scale <= 0 {
			scale = 1 // dead layer; keep weights as-is
		}
		switch l := al.(type) {
		case *ann.Dense:
			w := l.W.Clone()
			// w' = w * prevScale / scale, threshold 1.
			factor := prevScale / scale
			w.Data.Scale(factor)
			sl, err := NewDense(fmt.Sprintf("%s/dense%d", name, i), l.InSize(), l.OutSize(), w, 1)
			if err != nil {
				return nil, err
			}
			// Preserve the volume shapes for conv-successor layers.
			sl.In = layerInShape(n, i)
			sl.Out = layerOutShape(n, i)
			layers = append(layers, sl)
		case *ann.Conv:
			w := l.W.Clone()
			factor := prevScale / scale
			w.Data.Scale(factor)
			sl, err := NewConv(fmt.Sprintf("%s/conv%d", name, i), l.Geom, w, 1)
			if err != nil {
				return nil, err
			}
			layers = append(layers, sl)
		case *ann.AvgPool:
			// Pooling passes activations through unscaled; its "max
			// activation" equals the input scale, so propagate prevScale.
			sl, err := NewPool(fmt.Sprintf("%s/pool%d", name, i), l.Geom.In, l.Geom.K, poolThreshold(l.Geom.K))
			if err != nil {
				return nil, err
			}
			layers = append(layers, sl)
			scale = prevScale
		default:
			return nil, fmt.Errorf("snn: cannot convert layer %d (%T)", i, al)
		}
		prevScale = scale
	}
	return NewNetwork(name, n.Input, layers...)
}

// poolThreshold fires a pooled IF neuron once roughly half its window
// spiked; with weight 1/K² that is just under 0.5 to avoid systematic rate
// loss in converted networks.
func poolThreshold(k int) float64 { return 0.499 }

// calibrate runs the ANN over the calibration set and records the maximum
// post-activation value of every layer. Pooling layers inherit their input
// scale (they are linear with unit gain over rates).
func calibrate(n *ann.Network, calib *dataset.Set) []float64 {
	maxAct := make([]float64, len(n.Layers))
	if calib == nil || len(calib.Samples) == 0 {
		for i := range maxAct {
			maxAct[i] = 1
		}
		return maxAct
	}
	for _, s := range calib.Samples {
		x := s.Input
		for i, l := range n.Layers {
			x = l.Forward(x)
			if _, isPool := l.(*ann.AvgPool); isPool {
				continue // handled below via propagation
			}
			if m := x.Max(); m > maxAct[i] {
				maxAct[i] = m
			}
		}
	}
	// Pool layers: use the previous layer's scale (unit-gain linear).
	for i, l := range n.Layers {
		if _, isPool := l.(*ann.AvgPool); isPool {
			if i > 0 {
				maxAct[i] = maxAct[i-1]
			} else {
				maxAct[i] = 1
			}
		}
	}
	return maxAct
}

func layerInShape(n *ann.Network, i int) tensor.Shape3 {
	if i == 0 {
		return n.Input
	}
	return flatOrVolume(n.Layers[i-1])
}

func layerOutShape(n *ann.Network, i int) tensor.Shape3 {
	l := n.Layers[i]
	if d, ok := l.(*ann.Dense); ok {
		return tensor.Shape3{H: 1, W: 1, C: d.OutSize()}
	}
	return flatOrVolume(l)
}

func flatOrVolume(l ann.Layer) tensor.Shape3 {
	switch t := l.(type) {
	case *ann.Conv:
		return t.OutShape()
	case *ann.AvgPool:
		return t.OutShape()
	default:
		return tensor.Shape3{H: 1, W: 1, C: l.OutSize()}
	}
}

// Evaluate classifies every sample of the set with T timesteps and returns
// accuracy. enc is reused across samples (its RNG advances), keeping runs
// deterministic for a fixed encoder seed.
func Evaluate(net *Network, set *dataset.Set, enc Encoder, steps int) float64 {
	if len(set.Samples) == 0 {
		return 0
	}
	st := NewState(net)
	correct := 0
	for _, s := range set.Samples {
		r := st.Run(s.Input, enc, steps)
		if r.Prediction == s.Label {
			correct++
		}
	}
	return float64(correct) / float64(len(set.Samples))
}

// ConfusionMatrix classifies the set and returns counts[true][predicted] —
// the standard per-class error breakdown.
func ConfusionMatrix(net *Network, set *dataset.Set, enc Encoder, steps int) [][]int {
	m := make([][]int, set.Classes)
	for i := range m {
		m[i] = make([]int, set.Classes)
	}
	st := NewState(net)
	for _, s := range set.Samples {
		r := st.Run(s.Input, enc, steps)
		if s.Label >= 0 && s.Label < set.Classes && r.Prediction >= 0 && r.Prediction < set.Classes {
			m[s.Label][r.Prediction]++
		}
	}
	return m
}

// EvaluateTTFS is Evaluate with time-to-first-spike decoding: the class
// whose output neuron fires first wins. Latency decoding enables the
// early-exit optimization; this measures its accuracy cost.
func EvaluateTTFS(net *Network, set *dataset.Set, enc Encoder, steps int) float64 {
	if len(set.Samples) == 0 {
		return 0
	}
	st := NewState(net)
	correct := 0
	for _, s := range set.Samples {
		r := st.Run(s.Input, enc, steps)
		if r.TTFSPrediction() == s.Label {
			correct++
		}
	}
	return float64(correct) / float64(len(set.Samples))
}
