package snn

import (
	"math/rand"
	"reflect"
	"testing"

	"resparc/internal/bitvec"
	"resparc/internal/tensor"
)

// testMLP builds a small random 64-32-10 dense network.
func testMLP(t *testing.T) *Network {
	t.Helper()
	rng := rand.New(rand.NewSource(11))
	w1 := tensor.NewMat(32, 64)
	w2 := tensor.NewMat(10, 32)
	for i := range w1.Data {
		w1.Data[i] = rng.NormFloat64() * 0.3
	}
	for i := range w2.Data {
		w2.Data[i] = rng.NormFloat64() * 0.3
	}
	l1, err := NewDense("h", 64, 32, w1, 1)
	if err != nil {
		t.Fatal(err)
	}
	l2, err := NewDense("o", 32, 10, w2, 1)
	if err != nil {
		t.Fatal(err)
	}
	net, err := NewNetwork("mlp", tensor.Shape3{H: 8, W: 8, C: 1}, l1, l2)
	if err != nil {
		t.Fatal(err)
	}
	return net
}

// testCNN builds a small conv-pool-dense network.
func testCNN(t *testing.T) *Network {
	t.Helper()
	rng := rand.New(rand.NewSource(12))
	geom := tensor.ConvGeom{In: tensor.Shape3{H: 8, W: 8, C: 1}, K: 3, Stride: 1, Pad: 1, OutC: 4}
	cw := tensor.NewMat(4, geom.FanIn())
	for i := range cw.Data {
		cw.Data[i] = rng.NormFloat64() * 0.4
	}
	conv, err := NewConv("c", geom, cw, 1)
	if err != nil {
		t.Fatal(err)
	}
	convOut, _ := geom.OutShape()
	pool, err := NewPool("p", convOut, 2, 0.45)
	if err != nil {
		t.Fatal(err)
	}
	dw := tensor.NewMat(10, pool.OutSize())
	for i := range dw.Data {
		dw.Data[i] = rng.NormFloat64() * 0.4
	}
	dense, err := NewDense("o", pool.OutSize(), 10, dw, 1)
	if err != nil {
		t.Fatal(err)
	}
	net, err := NewNetwork("cnn", geom.In, conv, pool, dense)
	if err != nil {
		t.Fatal(err)
	}
	return net
}

func batchInputs(n, size int, seed int64) []tensor.Vec {
	rng := rand.New(rand.NewSource(seed))
	out := make([]tensor.Vec, n)
	for i := range out {
		v := tensor.NewVec(size)
		for j := range v {
			v[j] = rng.Float64()
		}
		out[i] = v
	}
	return out
}

// The core determinism contract of the evaluation pipeline: parallel
// evaluation must be bit-identical to the serial path — same predictions,
// spike counts, input-spike totals and first-spike times — for any worker
// count, on dense and convolutional topologies alike.
func TestRunBatchParallelMatchesSerial(t *testing.T) {
	for _, tc := range []struct {
		name string
		net  *Network
	}{
		{"mlp", testMLP(t)},
		{"cnn", testCNN(t)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			inputs := batchInputs(13, tc.net.Input.Size(), 99)
			base := NewPoissonEncoder(0.8, 7)
			enc := func(i int) Encoder { return base.ForkSeed(i) }
			serial, err := RunBatch(tc.net, inputs, enc, 20, Options{Workers: 1})
			if err != nil {
				t.Fatal(err)
			}
			for _, workers := range []int{2, 4, 16} {
				par, err := RunBatch(tc.net, inputs, enc, 20, Options{Workers: workers})
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(serial, par) {
					t.Fatalf("workers=%d: parallel results differ from serial\nserial: %+v\nparallel: %+v",
						workers, serial, par)
				}
			}
		})
	}
}

// Default worker selection (workers <= 0) must also reproduce the serial
// results exactly.
func TestRunBatchDefaultWorkers(t *testing.T) {
	net := testMLP(t)
	inputs := batchInputs(5, net.Input.Size(), 3)
	base := NewPoissonEncoder(0.8, 7)
	enc := func(i int) Encoder { return base.ForkSeed(i) }
	serial, err := RunBatch(net, inputs, enc, 12, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	auto, err := RunBatch(net, inputs, enc, 12, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, auto) {
		t.Fatal("default worker count changed results")
	}
}

func TestRunBatchValidation(t *testing.T) {
	net := testMLP(t)
	enc := func(i int) Encoder { return NewPoissonEncoder(0.8, int64(i)) }
	if _, err := RunBatch(net, nil, enc, 10, Options{Workers: 2}); err == nil {
		t.Fatal("empty batch accepted")
	}
	if _, err := RunBatch(net, batchInputs(2, net.Input.Size(), 1), enc, 0, Options{Workers: 2}); err == nil {
		t.Fatal("zero steps accepted")
	}
}

func TestEvaluateBatchMatchesEvaluateSemantics(t *testing.T) {
	net := testMLP(t)
	inputs := batchInputs(9, net.Input.Size(), 42)
	base := NewPoissonEncoder(0.8, 7)
	enc := func(i int) Encoder { return base.ForkSeed(i) }
	results, err := RunBatch(net, inputs, enc, 16, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	labels := make([]int, len(inputs))
	for i, r := range results {
		labels[i] = r.Prediction // accuracy 1 by construction
	}
	acc, err := EvaluateBatch(net, inputs, labels, enc, 16, 4)
	if err != nil {
		t.Fatal(err)
	}
	if acc != 1 {
		t.Fatalf("accuracy %v, want 1 (labels set from predictions)", acc)
	}
	if _, err := EvaluateBatch(net, inputs, labels[:2], enc, 16, 2); err == nil {
		t.Fatal("label length mismatch accepted")
	}
}

// ForkSeed's determinism contract: a fork's stream depends only on the base
// seed and the index — not on how much the parent or other forks have been
// used — and fork 0 reproduces the base encoder's own stream.
func TestPoissonForkSeedContract(t *testing.T) {
	img := make(tensor.Vec, 32)
	for i := range img {
		img[i] = float64(i%7) / 7
	}
	record := func(e *PoissonEncoder) [][]int {
		dst := bitvec.New(len(img))
		var out [][]int
		for t := 0; t < 8; t++ {
			e.Encode(img, dst)
			out = append(out, dst.Slice())
		}
		return out
	}

	a := NewPoissonEncoder(0.8, 21).ForkSeed(3)
	// Heavily use the parent and sibling forks before forking index 3 again.
	base := NewPoissonEncoder(0.8, 21)
	burn := bitvec.New(len(img))
	for t := 0; t < 50; t++ {
		base.Encode(img, burn)
		base.ForkSeed(1).Encode(img, burn)
	}
	b := base.ForkSeed(3)
	if !reflect.DeepEqual(record(a), record(b)) {
		t.Fatal("fork stream depends on parent usage")
	}

	// Fork 0 equals a fresh base encoder.
	f0 := NewPoissonEncoder(0.8, 21).ForkSeed(0)
	fresh := NewPoissonEncoder(0.8, 21)
	if !reflect.DeepEqual(record(f0), record(fresh)) {
		t.Fatal("fork 0 must reproduce the base stream")
	}

	// Distinct indices give distinct streams.
	f5 := NewPoissonEncoder(0.8, 21).ForkSeed(5)
	f6 := NewPoissonEncoder(0.8, 21).ForkSeed(6)
	if reflect.DeepEqual(record(f5), record(f6)) {
		t.Fatal("distinct forks produced identical streams")
	}
}

// The transposed-weight fast path must match the naive column walk over W.
func TestDenseIntegrateMatchesColumnWalk(t *testing.T) {
	net := testMLP(t)
	l := net.Layers[0]
	in := bitvec.New(l.InSize())
	for i := 0; i < l.InSize(); i += 3 {
		in.Set(i)
	}
	got := tensor.NewVec(l.OutSize())
	integrate(l, in, got, nil)
	want := tensor.NewVec(l.OutSize())
	in.ForEachSet(func(i int) {
		for o := 0; o < l.W.Rows; o++ {
			want[o] += l.W.At(o, i)
		}
	})
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("transposed integrate diverged:\ngot  %v\nwant %v", got, want)
	}
}
