//go:build amd64

#include "textflag.h"

// func accumPanel(panel []float64, list []int32, acc *[8]float64)
//
// For each int32 input index in list, add the eight contiguous panel
// doubles at panel[idx*8 .. idx*8+8] into the eight accumulators at acc.
// SSE2 only (guaranteed on amd64): four MOVUPD/ADDPD pairs per spike, each
// ADDPD performing two independent IEEE double adds — lane i sees exactly
// the scalar sequence acc[i] += panel[idx*8+i] in list order, so the result
// is bit-identical to the generic Go implementation.
//
// Two spikes are processed per loop iteration with separate temporary
// registers (X4..X7 and X8..X11); both ADDPD groups target the same
// accumulators in list order, preserving each lane's add sequence.
TEXT ·accumPanel(SB), NOSPLIT, $0-56
	MOVQ panel_base+0(FP), SI
	MOVQ list_base+24(FP), DI
	MOVQ list_len+32(FP), CX
	MOVQ acc+48(FP), DX

	MOVUPD (DX), X0
	MOVUPD 16(DX), X1
	MOVUPD 32(DX), X2
	MOVUPD 48(DX), X3

	SUBQ $2, CX
	JLT  tail

pair:
	MOVLQSX (DI), AX
	MOVLQSX 4(DI), BX
	SHLQ    $6, AX
	SHLQ    $6, BX

	MOVUPD (SI)(AX*1), X4
	MOVUPD 16(SI)(AX*1), X5
	MOVUPD 32(SI)(AX*1), X6
	MOVUPD 48(SI)(AX*1), X7
	MOVUPD (SI)(BX*1), X8
	MOVUPD 16(SI)(BX*1), X9
	MOVUPD 32(SI)(BX*1), X10
	MOVUPD 48(SI)(BX*1), X11

	ADDPD X4, X0
	ADDPD X5, X1
	ADDPD X6, X2
	ADDPD X7, X3
	ADDPD X8, X0
	ADDPD X9, X1
	ADDPD X10, X2
	ADDPD X11, X3

	ADDQ $8, DI
	SUBQ $2, CX
	JGE  pair

tail:
	ADDQ $2, CX
	JZ   done

	MOVLQSX (DI), AX
	SHLQ    $6, AX
	MOVUPD  (SI)(AX*1), X4
	MOVUPD  16(SI)(AX*1), X5
	MOVUPD  32(SI)(AX*1), X6
	MOVUPD  48(SI)(AX*1), X7
	ADDPD   X4, X0
	ADDPD   X5, X1
	ADDPD   X6, X2
	ADDPD   X7, X3

done:
	MOVUPD X0, (DX)
	MOVUPD X1, 16(DX)
	MOVUPD X2, 32(DX)
	MOVUPD X3, 48(DX)
	RET

// func blockPanel(panel []float64, flat []int32, offs []int32, fires []uint8, acc *[8]float64, th float64, hard bool) uint64
//
// Integrate one packed 8-lane panel across a whole temporal block with the
// accumulators held in XMM registers. Step k's spike indices are
// flat[offs[k]:offs[k+1]]; for each, the eight contiguous panel doubles are
// added (ADDPD: independent per-lane IEEE adds, in list order), then the
// step's threshold test runs as CMPPD(th, acc, LE) — the packed equivalent
// of the scalar acc[i] >= th including its NaN behavior (a NaN lane never
// fires) — and fired lanes reset branchlessly: soft reset subtracts the
// mask-selected threshold (p - th on fired lanes, p - 0.0 == p bitwise on
// the rest), hard reset clears fired lanes to +0. fires[k] receives the
// step's fired-lane byte; the returned word has bit k set if any lane fired
// on step k, so the caller commits fire bytes without rescanning.
TEXT ·blockPanel(SB), NOSPLIT, $0-128
	MOVQ     panel_base+0(FP), SI
	MOVQ     flat_base+24(FP), DI
	MOVQ     offs_base+48(FP), R8
	MOVQ     fires_base+72(FP), R9
	MOVQ     fires_len+80(FP), CX
	MOVQ     acc+96(FP), DX
	MOVSD    th+104(FP), X12
	UNPCKLPD X12, X12
	MOVBQZX  hard+112(FP), R10

	MOVUPD (DX), X0
	MOVUPD 16(DX), X1
	MOVUPD 32(DX), X2
	MOVUPD 48(DX), X3

	// DI = &flat[offs[0]] (offs entries are absolute into flat).
	MOVLQSX (R8), AX
	LEAQ    (DI)(AX*4), DI

	XORQ R11, R11 // k
	XORQ R13, R13 // fired-steps bitmask

step:
	CMPQ    R11, CX
	JGE     done
	MOVLQSX 4(R8)(R11*4), AX // offs[k+1]
	MOVQ    flat_base+24(FP), BX
	LEAQ    (BX)(AX*4), BX   // end of step k's spikes

adds:
	CMPQ    DI, BX
	JGE     endadds
	MOVLQSX (DI), AX
	SHLQ    $6, AX
	MOVUPD  (SI)(AX*1), X4
	MOVUPD  16(SI)(AX*1), X5
	MOVUPD  32(SI)(AX*1), X6
	MOVUPD  48(SI)(AX*1), X7
	ADDPD   X4, X0
	ADDPD   X5, X1
	ADDPD   X6, X2
	ADDPD   X7, X3
	ADDQ    $4, DI
	JMP     adds

endadds:
	// Packed threshold test: X8..X11 = (th <= acc) per lane.
	MOVAPD   X12, X8
	MOVAPD   X12, X9
	MOVAPD   X12, X10
	MOVAPD   X12, X11
	CMPPD    X0, X8, $2
	CMPPD    X1, X9, $2
	CMPPD    X2, X10, $2
	CMPPD    X3, X11, $2
	MOVMSKPD X8, AX
	MOVMSKPD X9, BX
	SHLQ     $2, BX
	ORQ      BX, AX
	MOVMSKPD X10, BX
	SHLQ     $4, BX
	ORQ      BX, AX
	MOVMSKPD X11, BX
	SHLQ     $6, BX
	ORQ      BX, AX
	MOVB     AX, (R9)(R11*1)
	TESTQ    AX, AX
	JZ       next
	BTSQ     R11, R13
	CMPQ     R10, $0
	JNE      hardreset

	// Soft reset: acc -= mask & th (p - th on fired lanes, p - 0.0 else).
	ANDPD X12, X8
	ANDPD X12, X9
	ANDPD X12, X10
	ANDPD X12, X11
	SUBPD X8, X0
	SUBPD X9, X1
	SUBPD X10, X2
	SUBPD X11, X3
	JMP   next

hardreset:
	// Hard reset: acc &= ^mask (fired lanes to +0).
	ANDNPD X0, X8
	ANDNPD X1, X9
	ANDNPD X2, X10
	ANDNPD X3, X11
	MOVAPD X8, X0
	MOVAPD X9, X1
	MOVAPD X10, X2
	MOVAPD X11, X3

next:
	INCQ R11
	JMP  step

done:
	MOVUPD X0, (DX)
	MOVUPD X1, 16(DX)
	MOVUPD X2, 32(DX)
	MOVUPD X3, 48(DX)
	MOVQ   R13, ret+120(FP)
	RET
