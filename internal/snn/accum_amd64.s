//go:build amd64

#include "textflag.h"

// func accumPanel(panel []float64, list []int32, acc *[8]float64)
//
// For each int32 input index in list, add the eight contiguous panel
// doubles at panel[idx*8 .. idx*8+8] into the eight accumulators at acc.
// SSE2 only (guaranteed on amd64): four MOVUPD/ADDPD pairs per spike, each
// ADDPD performing two independent IEEE double adds — lane i sees exactly
// the scalar sequence acc[i] += panel[idx*8+i] in list order, so the result
// is bit-identical to the generic Go implementation.
//
// Two spikes are processed per loop iteration with separate temporary
// registers (X4..X7 and X8..X11); both ADDPD groups target the same
// accumulators in list order, preserving each lane's add sequence.
TEXT ·accumPanel(SB), NOSPLIT, $0-56
	MOVQ panel_base+0(FP), SI
	MOVQ list_base+24(FP), DI
	MOVQ list_len+32(FP), CX
	MOVQ acc+48(FP), DX

	MOVUPD (DX), X0
	MOVUPD 16(DX), X1
	MOVUPD 32(DX), X2
	MOVUPD 48(DX), X3

	SUBQ $2, CX
	JLT  tail

pair:
	MOVLQSX (DI), AX
	MOVLQSX 4(DI), BX
	SHLQ    $6, AX
	SHLQ    $6, BX

	MOVUPD (SI)(AX*1), X4
	MOVUPD 16(SI)(AX*1), X5
	MOVUPD 32(SI)(AX*1), X6
	MOVUPD 48(SI)(AX*1), X7
	MOVUPD (SI)(BX*1), X8
	MOVUPD 16(SI)(BX*1), X9
	MOVUPD 32(SI)(BX*1), X10
	MOVUPD 48(SI)(BX*1), X11

	ADDPD X4, X0
	ADDPD X5, X1
	ADDPD X6, X2
	ADDPD X7, X3
	ADDPD X8, X0
	ADDPD X9, X1
	ADDPD X10, X2
	ADDPD X11, X3

	ADDQ $8, DI
	SUBQ $2, CX
	JGE  pair

tail:
	ADDQ $2, CX
	JZ   done

	MOVLQSX (DI), AX
	SHLQ    $6, AX
	MOVUPD  (SI)(AX*1), X4
	MOVUPD  16(SI)(AX*1), X5
	MOVUPD  32(SI)(AX*1), X6
	MOVUPD  48(SI)(AX*1), X7
	ADDPD   X4, X0
	ADDPD   X5, X1
	ADDPD   X6, X2
	ADDPD   X7, X3

done:
	MOVUPD X0, (DX)
	MOVUPD X1, 16(DX)
	MOVUPD X2, 32(DX)
	MOVUPD X3, 48(DX)
	RET
