package snn

import (
	"math"
	"strings"
	"testing"

	"resparc/internal/bitvec"
	"resparc/internal/tensor"
)

func TestRegularEncoderCounts(t *testing.T) {
	enc := NewRegularEncoder(0.8)
	in := tensor.Vec{1, 0.5, 0, 0.25}
	dst := newTestBits(4)
	counts := make([]int, 4)
	const steps = 100
	for s := 0; s < steps; s++ {
		enc.Encode(in, dst)
		dst.ForEachSet(func(i int) { counts[i]++ })
	}
	wants := []float64{80, 40, 0, 20}
	for i, w := range wants {
		if math.Abs(float64(counts[i])-w) > 1 {
			t.Fatalf("neuron %d: %d spikes, want ~%v", i, counts[i], w)
		}
	}
}

func TestRegularEncoderDeterministic(t *testing.T) {
	a, b := NewRegularEncoder(0.6), NewRegularEncoder(0.6)
	in := tensor.Vec{0.3, 0.7}
	da, db := newTestBits(2), newTestBits(2)
	for s := 0; s < 20; s++ {
		a.Encode(in, da)
		b.Encode(in, db)
		for i := 0; i < 2; i++ {
			if da.Get(i) != db.Get(i) {
				t.Fatal("regular encoders diverged")
			}
		}
	}
	a.Reset()
	c := NewRegularEncoder(0.6)
	dc := newTestBits(2)
	a.Encode(in, da)
	c.Encode(in, dc)
	if da.Get(0) != dc.Get(0) || da.Get(1) != dc.Get(1) {
		t.Fatal("Reset did not restore the initial phase")
	}
}

func TestRegularEncoderValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewRegularEncoder(0)
}

func TestRasterRecords(t *testing.T) {
	l := mustDense(t, 4, 3, 0.5, 1)
	net, _ := NewNetwork("n", tensor.Shape3{H: 1, W: 1, C: 4}, l)
	st := NewState(net)
	r := NewRaster(0)
	in := tensor.Vec{1, 1, 1, 1}
	res := st.RunObserved(in, NewRegularEncoder(1), 10, r)
	if r.Steps() != 10 {
		t.Fatalf("Steps = %d", r.Steps())
	}
	// Weight 0.5 x 4 inputs = 2 per step >= threshold 1: every neuron
	// spikes every step.
	if r.TotalSpikes() != 30 {
		t.Fatalf("TotalSpikes = %d, want 30", r.TotalSpikes())
	}
	if r.MeanRate() != 1 {
		t.Fatalf("MeanRate = %v", r.MeanRate())
	}
	if res.OutCounts[0] != 10 {
		t.Fatalf("functional run disagrees: %v", res.OutCounts)
	}
	// Input raster.
	ri := NewRaster(-1)
	st.RunObserved(in, NewRegularEncoder(1), 5, ri)
	if ri.TotalSpikes() != 20 { // 4 inputs x 5 steps at p=1
		t.Fatalf("input raster %d spikes", ri.TotalSpikes())
	}
}

func TestRasterRender(t *testing.T) {
	l := mustDense(t, 2, 2, 1, 1)
	net, _ := NewNetwork("n", tensor.Shape3{H: 1, W: 1, C: 2}, l)
	st := NewState(net)
	r := NewRaster(0)
	st.RunObserved(tensor.Vec{1, 0}, NewRegularEncoder(1), 6, r)
	var sb strings.Builder
	if err := r.Render(&sb, 0, 0); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "2 neurons x 6 steps") {
		t.Fatalf("header missing:\n%s", out)
	}
	if !strings.Contains(out, "|") {
		t.Fatalf("no spikes rendered:\n%s", out)
	}
	// Capped render mentions the remainder.
	var sb2 strings.Builder
	if err := r.Render(&sb2, 1, 3); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb2.String(), "more neurons") {
		t.Fatalf("truncation notice missing:\n%s", sb2.String())
	}
}

// newTestBits is a local alias for bit-vector construction in these tests.
func newTestBits(n int) *bitvec.Bits { return bitvec.New(n) }
